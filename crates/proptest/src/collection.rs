//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// A length specification: an exact size or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    start: usize,
    end: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { start: n, end: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty vec length range");
        SizeRange { start: r.start, end: r.end }
    }
}

/// The strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A vector of values from `element`, with length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}
