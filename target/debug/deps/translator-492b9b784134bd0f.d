/root/repo/target/debug/deps/translator-492b9b784134bd0f.d: crates/bench/benches/translator.rs

/root/repo/target/debug/deps/translator-492b9b784134bd0f: crates/bench/benches/translator.rs

crates/bench/benches/translator.rs:
