//! Cross-ISA differential testing: the same algorithms, compiled for
//! two different guest ISAs, driven through the same translation core,
//! must produce identical observable results.
//!
//! For each ported algorithm this harness runs four executions — the
//! PowerPC binary and the RV32I binary, each through `DaisySystem`
//! translation and through its own interpreter oracle — then asserts:
//!
//! 1. each guest's translated run matches its interpreter oracle
//!    (bit-exact architected state, the §3.5 contract),
//! 2. the scalar results agree *across* ISAs (PowerPC `r3` vs RV32
//!    `a0`), and
//! 3. for `hist`, the 256-counter result array in guest memory is
//!    byte-identical across ISAs (both images are big-endian).
//!
//! The inputs come from the shared `daisy_isa::synth` generators, so
//! any divergence is a translator or frontend bug, not input skew.

use daisy::prelude::*;
use daisy_ppc::PpcIsa;
use daisy_rv32::Rv32Isa;

/// Runs one workload through translation and through its interpreter
/// oracle; checks both and returns (translated system state, oracle
/// state) after asserting they agree.
fn run_both<I: Isa>(w: &Workload<I>) -> (I::Cpu, daisy_isa::mem::Memory) {
    let prog = w.program();

    let mut sys = DaisySystem::<I>::builder().mem_size(w.mem_size).build();
    sys.load(&prog).unwrap();
    let stop = sys.run(10 * w.max_instrs).unwrap();
    assert_eq!(stop, StopReason::Syscall, "{} (daisy): {stop:?}", w.name);
    w.check(&sys.cpu, &sys.mem).unwrap_or_else(|e| panic!("{} (daisy): {e}", w.name));

    let mut mem = daisy_isa::mem::Memory::new(w.mem_size);
    prog.load_into(&mut mem).unwrap();
    let mut cpu = I::Cpu::new(prog.entry);
    let istop = cpu.interp_run(&mut mem, w.max_instrs);
    assert_eq!(istop, StopReason::Syscall, "{} (interp): {istop:?}", w.name);
    w.check(&cpu, &mem).unwrap_or_else(|e| panic!("{} (interp): {e}", w.name));

    if let Some(diff) = sys.cpu.state_diff(&cpu, true) {
        panic!("{}: translated vs interpreted state differs: {diff}", w.name);
    }
    (sys.cpu, sys.mem)
}

fn cross_check(name: &str) -> (u32, u32, daisy_isa::mem::Memory, daisy_isa::mem::Memory) {
    let pw: Workload<PpcIsa> = daisy_workloads::by_name(name).unwrap();
    let rw: Workload<Rv32Isa> = daisy_rv32::workloads::by_name(name).unwrap();
    let (pcpu, pmem) = run_both(&pw);
    let (rcpu, rmem) = run_both(&rw);
    // Scalar result: PowerPC r3 vs RV32 a0 (x10).
    (pcpu.gpr[3], rcpu.x[10], pmem, rmem)
}

#[test]
fn sieve_prime_counts_agree_across_isas() {
    let (ppc, rv32, _, _) = cross_check("c_sieve");
    assert_eq!(ppc, rv32, "prime count differs across guest ISAs");
}

#[test]
fn cmp_difference_indices_agree_across_isas() {
    let (ppc, rv32, _, _) = cross_check("cmp");
    assert_eq!(ppc, rv32, "first-difference index differs across guest ISAs");
}

#[test]
fn hist_sums_and_counter_memory_agree_across_isas() {
    let (ppc, rv32, pmem, rmem) = cross_check("hist");
    assert_eq!(ppc, rv32, "weighted histogram sum differs across guest ISAs");
    // The counter array itself must be byte-identical: same layout,
    // same endianness, same counts.
    let base = daisy_rv32::workloads::HIST_BASE;
    let len = daisy_rv32::workloads::HIST_BYTES;
    let p = pmem.read_bytes(base, len).unwrap();
    let r = rmem.read_bytes(base, len).unwrap();
    assert_eq!(p, r, "histogram counter memory differs across guest ISAs");
    assert_ne!(p.iter().map(|&b| u32::from(b)).sum::<u32>(), 0, "counters all zero");
}
