/root/repo/target/release/deps/proptest-2c19a0cc31914433.d: crates/proptest/src/lib.rs crates/proptest/src/arbitrary.rs crates/proptest/src/collection.rs crates/proptest/src/strategy.rs crates/proptest/src/test_runner.rs

/root/repo/target/release/deps/proptest-2c19a0cc31914433: crates/proptest/src/lib.rs crates/proptest/src/arbitrary.rs crates/proptest/src/collection.rs crates/proptest/src/strategy.rs crates/proptest/src/test_runner.rs

crates/proptest/src/lib.rs:
crates/proptest/src/arbitrary.rs:
crates/proptest/src/collection.rs:
crates/proptest/src/strategy.rs:
crates/proptest/src/test_runner.rs:
