//! Observability contract tests: the tracer must be inert when no sink
//! is installed, and a ring sink must capture the exact structured
//! event sequence for a small self-modifying program — translations,
//! chain installs, the code-modification store, the page invalidation,
//! and the resulting chain severs, in dispatch order.

use daisy::prelude::*;
use daisy::trace::Tier;
use daisy_ppc::encode::encode;
use daisy_ppc::insn::Insn;
use daisy_ppc::interp::StopReason;
use daisy_ppc::PpcIsa;
use daisy_ppc::{Asm, Gpr};

const PAGE: u32 = 256;
const TABLE: u32 = 0x8000;

/// Three-iteration self-modifying loop: each pass stores a fresh
/// `addi r5, 0, imm` encoding over the `patch:` site (parked on the
/// next page so the store invalidates a unit other than the one it
/// executes from) and accumulates r5 into r7.
fn selfmod_program(imms: &[i16]) -> daisy_ppc::asm::Program {
    let mut a = Asm::new(0x1F00);
    a.li(Gpr(7), 0);
    a.li32(Gpr(9), TABLE);
    a.li(Gpr(8), 0);
    a.li(Gpr(31), imms.len() as i16);
    a.mtctr(Gpr(31));
    a.label("loop");
    a.lwzx(Gpr(4), Gpr(9), Gpr(8));
    a.la(Gpr(3), "patch");
    a.stw(Gpr(4), 0, Gpr(3));
    while !a.here().is_multiple_of(PAGE) {
        a.nop();
    }
    a.label("patch");
    a.li(Gpr(5), 0);
    a.add(Gpr(7), Gpr(7), Gpr(5));
    a.addi(Gpr(8), Gpr(8), 4);
    a.bdnz("loop");
    a.sc();
    let words: Vec<u32> =
        imms.iter().map(|&si| encode(&Insn::Addi { rt: Gpr(5), ra: Gpr(0), si })).collect();
    a.data_words(TABLE, &words);
    a.finish().expect("selfmod program assembles")
}

fn small_pages() -> TranslatorConfig {
    TranslatorConfig { page_size: PAGE, ..TranslatorConfig::default() }
}

fn run_selfmod(sink: Option<RingSink>) -> DaisySystem<PpcIsa> {
    let prog = selfmod_program(&[11, 31, 50]);
    let mut b = DaisySystem::<PpcIsa>::builder().mem_size(0x2_0000).translator(small_pages());
    if let Some(sink) = sink {
        b = b.trace_sink(sink);
    }
    let mut sys = b.build();
    sys.load(&prog).unwrap();
    let stop = sys.run(1_000_000).unwrap();
    assert_eq!(stop, StopReason::Syscall);
    assert_eq!(sys.cpu.gpr[7], 92, "accumulator saw a stale patch");
    sys
}

/// Without a sink the tracer reports disabled (no sink to feed) but
/// the always-on flight recorder still taps the stream: the recent
/// ring is populated, capped at its capacity, and the run performs the
/// same work (events are a pure tap). Building with
/// `.flight_recorder(false)` silences even that.
#[test]
fn no_sink_records_nothing() {
    let sys = run_selfmod(None);
    assert!(!sys.vmm.tracer.enabled());
    assert!(sys.stats.code_modifications >= 1);

    let rec = sys.flight_recorder();
    assert!(rec.enabled, "the flight recorder is on by default");
    assert!(rec.recorded() > 0, "the ring taps events with no sink installed");
    assert!(rec.len() as u64 <= daisy::trace::DEFAULT_FLIGHT_RECORDER_CAPACITY as u64);
    assert_eq!(rec.dropped(), rec.recorded() - rec.len() as u64);
    assert!(
        rec.events().iter().any(|(_, ev)| matches!(ev, TraceEvent::CodeModified { .. })),
        "the self-modifying store reached the ring"
    );

    let prog = selfmod_program(&[11, 31, 50]);
    let mut sys = DaisySystem::<PpcIsa>::builder()
        .mem_size(0x2_0000)
        .translator(small_pages())
        .flight_recorder(false)
        .build();
    sys.load(&prog).unwrap();
    sys.run(1_000_000).unwrap();
    assert_eq!(sys.cpu.gpr[7], 92);
    assert_eq!(sys.flight_recorder().recorded(), 0, "opting out silences the ring");
}

/// `NullSink` accepts every event and stores none of them.
#[test]
fn null_sink_stores_no_events() {
    let prog = selfmod_program(&[11, 31, 50]);
    let mut sys = DaisySystem::<PpcIsa>::builder()
        .mem_size(0x2_0000)
        .translator(small_pages())
        .trace_sink(NullSink)
        .build();
    sys.load(&prog).unwrap();
    sys.run(1_000_000).unwrap();
    assert!(sys.vmm.tracer.enabled(), "a null sink still counts as a sink");
    assert_eq!(sys.cpu.gpr[7], 92);
}

/// The ring sink sees the exact event sequence of the self-modifying
/// run: cold translations as each page is first touched, a chain
/// install on the hot edge, then for every patch store a
/// code-modification event, the page invalidation, a sever of the link
/// into the dead group, and the retranslation of the patched page.
#[test]
fn ring_sink_captures_selfmod_event_sequence() {
    let sink = RingSink::new(256);
    let _ = run_selfmod(Some(sink.clone()));

    let events = sink.events();
    assert_eq!(sink.dropped(), 0, "256 entries must be enough for this program");
    let kinds: Vec<&'static str> = events.iter().map(|e| e.kind()).collect();

    // Exact sequence, pinned. Iteration 1 stores before the patch page
    // is ever translated, so it triggers no protection; iteration 2's
    // store invalidates the patch unit, but execution resumes past the
    // store and freshly retranslates, so the dead link into the old
    // patch group is not *observed* until iteration 3 re-follows it.
    assert_eq!(
        kinds,
        vec![
            "translate",     // entry group (0x1F00), first touch
            "translate",     // patch page (0x2000), first touch
            "chain_install", // entry group -> patch group
            "translate",     // loop head (0x1F18), back-edge target
            "chain_install", // patch group -> loop head
            "code_modified", // iteration 2 rewrites the patch site...
            "invalidate",    // ...killing the patch page's unit
            "translate",     // resume group after the store (0x1F28)
            "translate",     // patch page retranslated
            "chain_install", // resume group -> new patch group
            "chain_install", // new patch group -> loop head
            "code_modified", // iteration 3 rewrites it again...
            "invalidate",    // ...killing the unit again
            "chain_sever",   // resume group finds its link dead
            "translate",     // patch page retranslated once more
            "chain_install", // link re-established
        ],
        "event sequence changed; full events: {events:#?}"
    );

    // Cross-check the structured payloads, not just the kinds.
    match &events[0] {
        TraceEvent::Translate { entry, tier, .. } => {
            assert_eq!(*entry, 0x1F00);
            assert_eq!(*tier, Tier::Cold);
        }
        other => panic!("expected translate, got {other:?}"),
    }
    match &events[6] {
        TraceEvent::Invalidate { page } => assert_eq!(*page, 0x2000 / PAGE),
        other => panic!("expected invalidate, got {other:?}"),
    }
    // Severed target is the invalidated patch-page group.
    match &events[13] {
        TraceEvent::ChainSever { target, .. } => assert_eq!(*target, 0x2000),
        other => panic!("expected chain_sever, got {other:?}"),
    }

    // Every event serializes to one JSON object with its kind tagged.
    for ev in events.iter() {
        let json = ev.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "bad JSON: {json}");
        assert!(json.contains(&format!("\"event\": \"{}\"", ev.kind())), "untagged: {json}");
    }
}

/// The ring is a *ring*: beyond capacity the oldest events fall off and
/// the drop counter says how many.
#[test]
fn ring_sink_caps_and_counts_drops() {
    let sink = RingSink::new(3);
    let _ = run_selfmod(Some(sink.clone()));
    assert_eq!(sink.len(), 3);
    assert_eq!(sink.dropped(), 13, "16 events into a 3-slot ring drops 13");
    // The survivors are the *latest* three.
    let kinds: Vec<_> = sink.events().iter().map(|e| e.kind()).collect();
    assert_eq!(kinds, vec!["chain_sever", "translate", "chain_install"]);
}

/// Interrupt delivery ordering, pinned for a timer firing inside a
/// chained hot loop: the `external_interrupt` event carries the
/// group-boundary PC (the loop head — §3.7: delivery only where every
/// architected register is exact), the interrupted group is *not*
/// degraded (delivery is not an error path), and the next translation
/// after the first delivery is the handler group at the external
/// vector, first touched by that delivery.
#[test]
fn external_interrupt_orders_before_handler_translate_in_hot_loop() {
    use daisy_ppc::vectors;

    // Handler at the vector: count deliveries in r10, return.
    let mut a = Asm::new(vectors::EXTERNAL);
    a.addi(Gpr(10), Gpr(10), 1);
    a.rfi();
    // A tight self-chaining loop, hot for thousands of dispatches.
    a.entry_here();
    a.li(Gpr(3), 0);
    a.li32(Gpr(4), 20_000);
    a.mtctr(Gpr(4));
    a.label("loop");
    a.addi(Gpr(3), Gpr(3), 1);
    a.bdnz("loop");
    a.sc();
    let prog = a.finish().unwrap();
    let loop_head = prog.labels["loop"];

    let sink = RingSink::new(4096);
    let mut sys = DaisySystem::<PpcIsa>::builder()
        .mem_size(0x2_0000)
        .trace_sink(sink.clone())
        .timer_period(397)
        .build();
    sys.load(&prog).unwrap();
    sys.cpu.enable_interrupts();
    let stop = sys.run(1_000_000).unwrap();
    assert_eq!(stop, StopReason::Syscall);
    assert_eq!(sys.cpu.gpr[3], 20_000, "loop result survived preemption");
    assert!(sys.cpu.gpr[10] >= 2, "timer delivered fewer than two interrupts");

    let events = sink.events();
    let first_irq = events
        .iter()
        .position(|e| matches!(e, TraceEvent::ExternalInterrupt { .. }))
        .expect("delivery must emit external_interrupt");
    // Once the loop is chained and hot, deliveries land on its head:
    // the only group boundary left in steady state.
    let first_chain = events
        .iter()
        .position(|e| matches!(e, TraceEvent::ChainInstall { .. }))
        .expect("the loop must chain");
    assert!(
        events[first_chain..]
            .iter()
            .any(|e| matches!(e, TraceEvent::ExternalInterrupt { pc } if *pc == loop_head)),
        "no delivery ever landed on the chained loop's head boundary"
    );
    // Delivery is not an error path: nothing is ever degraded.
    assert!(
        !events.iter().any(|e| matches!(e, TraceEvent::Degraded { .. })),
        "interrupt delivery must not degrade the interrupted group"
    );
    // The next translation after the delivery is the handler group,
    // first touched by this delivery.
    let next_translate = events[first_irq..]
        .iter()
        .find(|e| matches!(e, TraceEvent::Translate { .. }))
        .expect("the handler group must be translated after the first delivery");
    match next_translate {
        TraceEvent::Translate { entry, .. } => assert_eq!(*entry, vectors::EXTERNAL),
        _ => unreachable!(),
    }
    // And the handler was never translated *before* the delivery.
    assert!(
        !events[..first_irq].iter().any(
            |e| matches!(e, TraceEvent::Translate { entry, .. } if *entry == vectors::EXTERNAL)
        ),
        "handler group translated before any delivery"
    );
}

/// Hot promotion shows up in the event stream: with a low threshold a
/// tight loop emits `hot_promotion` followed by a hot-tier translate.
#[test]
fn hot_promotion_emits_tagged_retranslation() {
    let mut a = Asm::new(0x1000);
    a.li(Gpr(3), 0);
    a.li(Gpr(4), 50);
    a.mtctr(Gpr(4));
    a.label("loop");
    a.addi(Gpr(3), Gpr(3), 1);
    a.bdnz("loop");
    a.sc();
    let prog = a.finish().unwrap();

    let sink = RingSink::new(256);
    let mut sys = DaisySystem::<PpcIsa>::builder()
        .mem_size(0x2_0000)
        .trace_sink(sink.clone())
        .tiered(TierPolicy::with_threshold(4))
        .build();
    sys.load(&prog).unwrap();
    sys.run(1_000_000).unwrap();
    assert_eq!(sys.cpu.gpr[3], 50);

    let events = sink.events();
    let promo = events
        .iter()
        .position(|e| matches!(e, TraceEvent::HotPromotion { .. }))
        .expect("threshold 4 must promote the loop group");
    let hot_translate = events[promo..]
        .iter()
        .find(|e| matches!(e, TraceEvent::Translate { tier: Tier::Hot, .. }))
        .expect("promotion must be followed by a hot-tier translation");
    match hot_translate {
        TraceEvent::Translate { entry, .. } => assert_eq!(*entry, 0x1000 + 3 * 4),
        _ => unreachable!(),
    }
}
