/root/repo/target/debug/deps/daisy_repro-0d27927f189d5ca8.d: src/lib.rs

/root/repo/target/debug/deps/daisy_repro-0d27927f189d5ca8: src/lib.rs

src/lib.rs:
