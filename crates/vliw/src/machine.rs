//! VLIW machine configurations.
//!
//! The paper evaluates ten machine sizes (Figure 5.1), written
//! `<issue>-<ALUs>-<mem accesses>-<branches>`: the number of parcels a
//! tree instruction may hold in total, how many may be ALU operations,
//! how many may be memory accesses, and how many conditional branches
//! the tree may contain. The flagship machine is configuration 10
//! (24-16-8-7) with at most 8 stores; Table 5.5 re-measures on the
//! 8-issue machine (8-8-4-3).

use std::fmt;

/// Resource class of a parcel for machine accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResClass {
    /// ALU / fixed-point operation (includes commit copies).
    Alu,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
}

/// Resource usage of one tree instruction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResCounts {
    /// ALU parcels.
    pub alu: u32,
    /// Load parcels.
    pub loads: u32,
    /// Store parcels.
    pub stores: u32,
    /// Conditional branches in the tree.
    pub branches: u32,
}

impl ResCounts {
    /// Total issue parcels (branches are accounted separately, as in the
    /// paper: "7 conditional branches ... in addition").
    pub fn issue(&self) -> u32 {
        self.alu + self.loads + self.stores
    }

    /// Memory parcels.
    pub fn mem(&self) -> u32 {
        self.loads + self.stores
    }
}

/// A VLIW machine size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineConfig {
    /// Display name, e.g. `"24-16-8-7"`.
    pub name: String,
    /// Maximum parcels per tree instruction (ALU + memory).
    pub issue: u32,
    /// Maximum ALU parcels.
    pub alu: u32,
    /// Maximum memory parcels (loads + stores).
    pub mem: u32,
    /// Maximum conditional branches per tree.
    pub branch: u32,
    /// Maximum store parcels.
    pub stores: u32,
}

impl MachineConfig {
    /// Builds a configuration in the paper's `issue-alu-mem-branch`
    /// notation, with an explicit store cap.
    pub fn new(issue: u32, alu: u32, mem: u32, branch: u32, stores: u32) -> MachineConfig {
        MachineConfig {
            name: format!("{issue}-{alu}-{mem}-{branch}"),
            issue,
            alu,
            mem,
            branch,
            stores,
        }
    }

    /// The paper's flagship machine: 24 issue, 16 ALUs, 8 memory
    /// accesses of which 8 may be stores, 7 branches (8-way branching).
    pub fn big() -> MachineConfig {
        MachineConfig::new(24, 16, 8, 7, 8)
    }

    /// The 8-issue machine of Table 5.5: 8 ALU/mem of which at most 4
    /// memory, plus 3 conditional branches.
    pub fn eight_issue() -> MachineConfig {
        MachineConfig::new(8, 8, 4, 3, 4)
    }

    /// The ten configurations of Figure 5.1, in the paper's order
    /// (configuration number = index + 1).
    pub fn paper_configs() -> Vec<MachineConfig> {
        vec![
            MachineConfig::new(4, 2, 2, 1, 2),
            MachineConfig::new(4, 4, 2, 2, 2),
            MachineConfig::new(4, 4, 4, 3, 4),
            MachineConfig::new(6, 6, 3, 3, 3),
            MachineConfig::new(8, 8, 4, 3, 4),
            MachineConfig::new(8, 8, 4, 7, 4),
            MachineConfig::new(8, 8, 8, 7, 8),
            MachineConfig::new(12, 12, 8, 7, 8),
            MachineConfig::new(16, 16, 8, 7, 8),
            MachineConfig::new(24, 16, 8, 7, 8),
        ]
    }

    /// Whether a tree with `counts` can accept one more parcel of
    /// `class`.
    pub fn has_room(&self, counts: &ResCounts, class: ResClass) -> bool {
        if counts.issue() >= self.issue {
            return false;
        }
        match class {
            ResClass::Alu => counts.alu < self.alu,
            ResClass::Load => counts.mem() < self.mem,
            ResClass::Store => counts.mem() < self.mem && counts.stores < self.stores,
        }
    }

    /// Whether a tree with `counts` can accept one more conditional
    /// branch.
    pub fn has_branch_room(&self, counts: &ResCounts) -> bool {
        counts.branches < self.branch
    }
}

impl fmt::Display for MachineConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_match_figure_5_1() {
        let cfgs = MachineConfig::paper_configs();
        assert_eq!(cfgs.len(), 10);
        assert_eq!(cfgs[0].name, "4-2-2-1");
        assert_eq!(cfgs[9].name, "24-16-8-7");
        assert_eq!(cfgs[4].name, "8-8-4-3");
    }

    #[test]
    fn room_checks() {
        let cfg = MachineConfig::new(4, 2, 2, 1, 1);
        let mut c = ResCounts::default();
        assert!(cfg.has_room(&c, ResClass::Alu));
        c.alu = 2;
        assert!(!cfg.has_room(&c, ResClass::Alu));
        assert!(cfg.has_room(&c, ResClass::Load));
        c.loads = 1;
        c.stores = 1;
        assert!(!cfg.has_room(&c, ResClass::Load));
        assert_eq!(c.issue(), 4);
        // Issue cap binds even when the class has room.
        let cfg2 = MachineConfig::new(4, 4, 4, 1, 4);
        assert!(!cfg2.has_room(&c, ResClass::Alu));
    }

    #[test]
    fn store_cap_separate_from_mem_cap() {
        let cfg = MachineConfig::big();
        let mut c = ResCounts { stores: 8, ..ResCounts::default() };
        assert!(!cfg.has_room(&c, ResClass::Store));
        assert!(!cfg.has_room(&c, ResClass::Load)); // mem cap = 8 reached too
        c.stores = 4;
        assert!(cfg.has_room(&c, ResClass::Load));
        assert!(cfg.has_room(&c, ResClass::Store));
    }
}
