//! Shared measurement plumbing: run a workload under DAISY (with any
//! translator/cache configuration), under the reference interpreter,
//! under the baselines, and collect everything the tables need.

use daisy::sched::{TierPolicy, TranslatorConfig};
use daisy::stats::RunStats;
use daisy::system::DaisySystem;
use daisy_cachesim::{CacheStats, Hierarchy};
use daisy_ppc::interp::{Cpu, StopReason};
use daisy_ppc::mem::Memory;
use daisy_ppc::PpcIsa;
use daisy_workloads::Workload;

/// Everything one DAISY run produces.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Workload name.
    pub name: &'static str,
    /// Exact dynamic base-instruction count (reference interpreter).
    pub base_instrs: u64,
    /// Static code size in instruction words.
    pub static_words: u64,
    /// Engine statistics.
    pub stats: RunStats,
    /// Translated code bytes produced (cumulative).
    pub code_bytes_total: u64,
    /// Pages translated.
    pub pages_translated: u64,
    /// Groups translated.
    pub groups_translated: u64,
    /// Hot-tier promotions performed (zero unless tiering is enabled).
    pub hot_promotions: u64,
    /// Base instructions scheduled during translation.
    pub instrs_compiled: u64,
    /// Per-cache-level statistics `(name, stats)`.
    pub cache_levels: Vec<(String, CacheStats)>,
}

impl Measurement {
    /// Infinite-cache ILP (pathlength reduction).
    pub fn ilp(&self) -> f64 {
        self.stats.pathlength_reduction(self.base_instrs)
    }

    /// Finite-cache ILP.
    pub fn finite_ilp(&self) -> f64 {
        self.stats.finite_ilp(self.base_instrs)
    }
}

/// Runs the reference interpreter, returning the CPU (for `ninstrs`
/// and final state).
pub fn run_reference(w: &Workload) -> Cpu {
    let prog = w.program();
    let mut mem = Memory::new(w.mem_size);
    prog.load_into(&mut mem).expect("workload fits in memory");
    let mut cpu = Cpu::new(prog.entry);
    let stop = cpu.run(&mut mem, w.max_instrs).expect("interpreter run");
    assert_eq!(stop, StopReason::Syscall, "{}: reference did not complete", w.name);
    cpu
}

/// Runs a workload under DAISY with the given configuration.
pub fn run_daisy(w: &Workload, cfg: TranslatorConfig, cache: Hierarchy) -> Measurement {
    run_daisy_tiered(w, cfg, cache, None)
}

/// Like [`run_daisy`], but with profile-guided tiered retranslation
/// enabled when a [`TierPolicy`] is given.
pub fn run_daisy_tiered(
    w: &Workload,
    cfg: TranslatorConfig,
    cache: Hierarchy,
    policy: Option<TierPolicy>,
) -> Measurement {
    let base_instrs = run_reference(w).ninstrs;
    let prog = w.program();
    let static_words = u64::from(prog.code_size() / 4);
    let mut builder =
        DaisySystem::<PpcIsa>::builder().mem_size(w.mem_size).translator(cfg).cache(cache);
    if let Some(policy) = policy {
        builder = builder.tiered(policy);
    }
    let mut sys = builder.build();
    sys.load(&prog).expect("workload fits in memory");
    let stop = sys.run(50 * w.max_instrs).expect("DAISY run");
    assert_eq!(stop, StopReason::Syscall, "{}: DAISY did not complete", w.name);
    w.check(&sys.cpu, &sys.mem).unwrap_or_else(|e| panic!("{}: result check failed: {e}", w.name));
    Measurement {
        name: w.name,
        base_instrs,
        static_words,
        stats: sys.stats,
        code_bytes_total: sys.vmm.stats.code_bytes_total,
        pages_translated: sys.vmm.stats.pages_translated,
        groups_translated: sys.vmm.stats.groups_translated,
        hot_promotions: sys.vmm.stats.hot_promotions,
        instrs_compiled: sys.vmm.cost.instrs_scheduled,
        cache_levels: sys.cache.level_stats(),
    }
}

/// Default (big-machine, 4 KiB pages, infinite-cache) run.
pub fn run_default(w: &Workload) -> Measurement {
    run_daisy(w, TranslatorConfig::default(), Hierarchy::infinite())
}

/// Geometric-mean-free arithmetic mean helper used by the tables.
pub fn mean(xs: impl IntoIterator<Item = f64>) -> f64 {
    let v: Vec<f64> = xs.into_iter().collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}
