//! `daisy-jit` — the native host-code tier.
//!
//! Lowers hot [`PackedGroup`]s to executable x86-64 in a W^X
//! [`arena::Arena`], with chained direct jumps between compiled groups
//! and pre-side-effect bail-out back to the packed engine for anything
//! the templates cannot reproduce exactly. See `docs/jit.md` for the
//! design: arena layout, template coverage, bail-out semantics, and
//! how the `Native` rung composes with the degradation ladder.
//!
//! This crate is deliberately engine-agnostic: it knows the packed
//! format and the [`ctx::JitCtx`] ABI, but dispatch policy, statistics
//! reconciliation, and resume-after-bail all live in the core crate's
//! `engine::native` module.
//!
//! On non-x86-64 (or non-Linux) hosts [`Jit::new`] returns `None` and
//! every caller falls back to packed execution; the crate still
//! compiles everywhere.

pub mod arena;
pub mod asm;
pub mod ctx;
pub mod lower;

use arena::{Arena, PatchSite};
use ctx::JitCtx;
use daisy_vliw::packed::PackedGroup;
use lower::{ExitSite, LowerParams, Lowered, Refusal};
use std::cell::RefCell;
use std::rc::Rc;

/// Default arena size: enough for thousands of compiled groups; a full
/// arena only stops further compilation.
pub const DEFAULT_ARENA_BYTES: usize = 16 << 20;

/// Path-log capacity handed to compiled code. Re-exported from
/// `lower`, where the static per-group bound (cond depth × executable
/// VLIW entries under the back-edge budget) is derived and enforced.
pub const LOG_CAPACITY: usize = lower::LOG_CAPACITY;

/// Associativity of the inline indirect-branch target cache. Must
/// equal the packed engine's icache associativity so the inline hit
/// set is exactly the dispatcher's hit set (the table mirrors the
/// dispatcher's icache way-for-way) and chain statistics stay
/// bit-identical. The cache is fully associative — compiled probes
/// scan every row — because indirect targets are dispatch-table
/// handlers whose aligned strides defeat any bit-sliced way index.
pub const IBTC_WAYS: usize = 8;

/// Sentinel tag no guest target can carry: guest branch targets are
/// 4-byte aligned, so bit 0 set never matches `target & !3`.
const IBTC_INVALID_TAG: u32 = 1;

/// One way of a group's inline indirect-branch target cache.
///
/// `#[repr(C)]` with the layout compiled code scans: tag at +0,
/// alive-byte address at +8, native entry at +16, in 32-byte rows.
#[repr(C)]
pub struct IbtcEntry {
    tag: std::cell::Cell<u32>,
    _pad0: u32,
    alive: std::cell::Cell<u64>,
    entry: std::cell::Cell<u64>,
    _pad1: u64,
}

/// A compiled group's inline indirect-branch target cache: one row per
/// icache way, mirroring the dispatcher's set for this group's page.
/// Heap-allocated (`Box`) before lowering so its address is stable for
/// the lifetime of the compiled code that bakes it in.
#[repr(C)]
pub struct IbtcTable {
    ways: [IbtcEntry; IBTC_WAYS],
}

impl std::fmt::Debug for IbtcTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let live = self.ways.iter().filter(|w| w.tag.get() != IBTC_INVALID_TAG).count();
        write!(f, "IbtcTable({live}/{IBTC_WAYS} live)")
    }
}

impl IbtcTable {
    fn new() -> Box<IbtcTable> {
        Box::new(IbtcTable {
            ways: std::array::from_fn(|_| IbtcEntry {
                tag: std::cell::Cell::new(IBTC_INVALID_TAG),
                _pad0: 0,
                alive: std::cell::Cell::new(0),
                entry: std::cell::Cell::new(0),
                _pad1: 0,
            }),
        })
    }

    /// Installs `target -> (entry, alive)` in `way`, evicting whatever
    /// was there. `way` is the dispatcher icache way the event landed
    /// in — the table mirrors that set way-for-way so a probe hit here
    /// is exactly a dispatcher hit.
    pub fn install(&self, way: usize, target: u32, entry: u64, alive: u64) {
        let w = &self.ways[way];
        w.entry.set(entry);
        w.alive.set(alive);
        w.tag.set(target & !3);
    }

    /// Invalidates `way` (unconditionally: the dispatcher just
    /// overwrote that way, so whatever the inline cache held there is
    /// stale).
    pub fn invalidate(&self, way: usize) {
        self.ways[way].tag.set(IBTC_INVALID_TAG);
    }

    /// Drops every entry (epoch flush / sever).
    pub fn clear(&self) {
        for w in &self.ways {
            w.tag.set(IBTC_INVALID_TAG);
        }
    }

    fn base_addr(&self) -> u64 {
        self as *const IbtcTable as u64
    }
}

/// Per-compilation feature switches (ablation levers; both default
/// on in the real system).
#[derive(Debug, Clone, Copy)]
pub struct CompileOpts {
    /// Lower `General`-class parcels (trap checks, bypassed-store
    /// commits and verifying loads) instead of refusing the group.
    pub general_templates: bool,
    /// Give groups with indirect exits an inline indirect-branch
    /// target cache.
    pub ibtc: bool,
}

impl Default for CompileOpts {
    fn default() -> Self {
        CompileOpts { general_templates: true, ibtc: true }
    }
}

/// Allocator for *alive bytes*: one byte per compiled group, flipped
/// to 0 when the group's owner drops it. Chain stubs poll the byte
/// before jumping, so severing every inbound patched edge is a single
/// non-atomic store — the native analogue of the weak-`Rc` links the
/// interpreted tiers use.
///
/// Bytes are never freed or reused: a stale patched edge can therefore
/// never observe a recycled "alive" byte that belongs to a different
/// group.
#[derive(Default)]
pub struct AliveSlab {
    // One Box per byte on purpose: compiled code polls each byte by
    // raw address, so it must never move or be freed; a Vec<u8> would
    // reallocate and relocate every byte under live patched edges.
    #[allow(clippy::vec_box)]
    bytes: RefCell<Vec<Box<u8>>>,
}

impl AliveSlab {
    /// Allocates a fresh alive byte, set to 1.
    fn alloc(self: &Rc<Self>) -> AliveHandle {
        let b = Box::new(1u8);
        let ptr = &*b as *const u8 as *mut u8;
        self.bytes.borrow_mut().push(b);
        AliveHandle { _slab: Rc::clone(self), ptr }
    }
}

/// Ownership of one alive byte; dropping it marks the group dead.
pub struct AliveHandle {
    _slab: Rc<AliveSlab>,
    ptr: *mut u8,
}

impl AliveHandle {
    /// Address chain stubs poll.
    pub fn addr(&self) -> u64 {
        self.ptr as u64
    }
}

impl Drop for AliveHandle {
    fn drop(&mut self) {
        // Single-threaded by construction; the byte outlives every
        // edge because the slab never frees.
        unsafe { *self.ptr = 0 };
    }
}

impl std::fmt::Debug for AliveHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AliveHandle({:p})", self.ptr)
    }
}

/// One group compiled into the arena. Dropping it severs all inbound
/// patched edges (via the alive byte); the arena mapping itself is
/// kept alive by the shared `Rc`.
#[derive(Debug)]
pub struct CompiledGroup {
    arena: Rc<Arena>,
    /// Blob offset within the arena.
    off: usize,
    /// Registry id baked into the code (`JitCtx::cur_group`).
    pub group_id: u32,
    /// Guest entry address of the group.
    pub entry: u32,
    /// Patchable direct exits (offsets relative to the blob).
    pub exits: Vec<ExitSite>,
    /// Bail-site table; `JitCtx::exit_b` indexes it on a bail exit.
    pub bails: Vec<lower::BailSite>,
    /// Parcels covered by this compilation (coverage accounting).
    pub parcels: u32,
    /// Inline indirect-branch target cache, present when the group has
    /// indirect exits and the cache was enabled at compile time. Boxed
    /// so the address baked into the code never moves.
    ibtc: Option<Box<IbtcTable>>,
    alive: AliveHandle,
}

impl CompiledGroup {
    /// Absolute address of the group's entry point.
    pub fn entry_addr(&self) -> u64 {
        self.arena.addr_of(self.off)
    }

    /// The group's inline indirect-branch cache, if it has one.
    pub fn ibtc(&self) -> Option<&IbtcTable> {
        self.ibtc.as_deref()
    }

    /// Address of this group's alive byte (for installing into other
    /// groups' inline caches).
    pub fn alive_addr(&self) -> u64 {
        self.alive.addr()
    }
}

/// The native-tier compiler and code cache: one W^X arena, the shared
/// entry thunk and epilogue, the alive-byte slab, and the patch log.
pub struct Jit {
    arena: Rc<Arena>,
    slab: Rc<AliveSlab>,
    thunk: u64,
    epilogue: u64,
    next_id: std::cell::Cell<u32>,
}

impl Jit {
    /// Maps the arena and emits the shared thunk and epilogue. `None`
    /// when the host cannot execute emitted code.
    pub fn new(arena_bytes: usize) -> Option<Jit> {
        if !cfg!(all(target_arch = "x86_64", target_os = "linux")) {
            return None;
        }
        let arena = Rc::new(Arena::new(arena_bytes)?);
        let (thunk_code, epilogue_code) = shared_code();
        let thunk_off = arena.install(&thunk_code)?;
        let epilogue_off = arena.install(&epilogue_code)?;
        let jit = Jit {
            thunk: arena.addr_of(thunk_off),
            epilogue: arena.addr_of(epilogue_off),
            arena,
            slab: Rc::new(AliveSlab::default()),
            next_id: std::cell::Cell::new(0),
        };
        jit.arena.seal();
        Some(jit)
    }

    /// Bytes of arena space consumed so far.
    pub fn arena_used(&self) -> usize {
        self.arena.used()
    }

    /// Number of currently patched chain edges.
    pub fn active_patches(&self) -> usize {
        self.arena.active_patches()
    }

    /// Compiles `g` and installs it. The returned group is live
    /// immediately (alive byte set), with all exits unpatched.
    pub fn compile(
        &self,
        g: &PackedGroup,
        entry: u32,
        page_size: u32,
        mem_len: u32,
        mem_page_shift: u32,
        opts: CompileOpts,
    ) -> Result<Rc<CompiledGroup>, Refusal> {
        let group_id = self.next_id.get();
        let ibtc = if opts.ibtc
            && g.nodes
                .iter()
                .any(|n| matches!(n.ctrl, daisy_vliw::packed::PackedCtrl::Indirect { .. }))
        {
            Some(IbtcTable::new())
        } else {
            None
        };
        let params = LowerParams {
            group_id,
            entry,
            page_size,
            mem_len,
            mem_page_shift,
            base: self.arena.next_addr(),
            epilogue: self.epilogue,
            ibtc_base: ibtc.as_ref().map_or(0, |t| t.base_addr()),
            general_templates: opts.general_templates,
        };
        let lowered: Lowered = lower::lower(g, params)?;
        // `install` bumps by the aligned position `next_addr` predicted
        // (install aligns first, and next_addr accounts for that).
        let off = self.arena.install(&lowered.code).ok_or(Refusal::ArenaFull)?;
        debug_assert_eq!(self.arena.addr_of(off), params.base);
        self.arena.seal();
        self.next_id.set(group_id + 1);
        Ok(Rc::new(CompiledGroup {
            arena: Rc::clone(&self.arena),
            off,
            group_id,
            entry,
            exits: lowered.exits,
            bails: lowered.bails,
            parcels: lowered.parcels,
            ibtc,
            alive: self.slab.alloc(),
        }))
    }

    /// Patches every exit of `from` that carries chain-link slot
    /// `slot` into a direct jump to `to` (through the budget/alive
    /// stub). Returns the number of sites patched.
    pub fn link(&self, from: &CompiledGroup, slot: u32, to: &CompiledGroup) -> usize {
        let mut n = 0;
        for e in from.exits.iter().filter(|e| e.slot == slot) {
            self.arena.write_imm64(from.off + e.stub_alive_imm, to.alive.addr());
            self.arena.write_rel32(from.off + e.stub_jmp, to.entry_addr());
            self.arena.patch_edge(PatchSite {
                site: from.off + e.site,
                stub: from.off + e.stub,
                fallback: from.off + e.fallback,
            });
            n += 1;
        }
        self.arena.seal();
        n
    }

    /// Restores every patched edge in the arena to its fallback path.
    /// The native analogue of severing all chain links: every
    /// group-to-group transfer goes back through the dispatcher.
    pub fn unlink_all(&self) -> u64 {
        self.arena.unpatch_all()
    }

    /// Runs compiled code starting at `group`.
    ///
    /// # Safety
    ///
    /// Every pointer field of `ctx` must be valid for the run (see
    /// [`ctx::enter`]); in particular `log_base` must provide
    /// [`LOG_CAPACITY`] writable bytes and `vals` the full register
    /// file.
    pub unsafe fn run(&self, ctx_ptr: *mut JitCtx, group: &CompiledGroup) {
        unsafe { ctx::enter(self.thunk, ctx_ptr, group.entry_addr()) }
    }
}

impl std::fmt::Debug for Jit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Jit")
            .field("arena_used", &self.arena.used())
            .field("active_patches", &self.arena.active_patches())
            .finish()
    }
}

/// Emits the shared entry thunk and epilogue.
///
/// Thunk (`extern "sysv64" fn(*mut JitCtx, u64)`): saves the
/// callee-saved registers the templates claim, loads the pinned
/// context registers, and tail-jumps to the group entry in `rsi`.
/// Epilogue: stores the log cursor and `last_base` back to the context
/// and unwinds.
fn shared_code() -> (Vec<u8>, Vec<u8>) {
    use asm::{Asm, Mem, R12, R13, R14, R15, RBP, RBX, RDI, RSI};
    let mut t = Asm::new(0);
    for r in [RBX, RBP, R12, R13, R14, R15] {
        t.push_r64(r);
    }
    t.sub_rsp_imm8(8);
    t.mov_rr64(RBX, RDI);
    t.mov_r64_m(R12, Mem::base_disp(RBX, ctx::OFF_VALS));
    t.mov_r64_m(R13, Mem::base_disp(RBX, ctx::OFF_MEM_BASE));
    t.jmp_r64(RSI);

    let mut e = Asm::new(0);
    e.mov_m_r64(Mem::base_disp(RBX, ctx::OFF_LOG_END), R14);
    e.mov_m_r32(Mem::base_disp(RBX, ctx::OFF_LAST_BASE), R15);
    e.add_rsp_imm8(8);
    for r in [R15, R14, R13, R12, RBP, RBX] {
        e.pop_r64(r);
    }
    e.ret();
    (t.finish(), e.finish())
}
