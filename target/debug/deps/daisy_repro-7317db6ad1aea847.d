/root/repo/target/debug/deps/daisy_repro-7317db6ad1aea847.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdaisy_repro-7317db6ad1aea847.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
