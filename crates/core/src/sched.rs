//! The Pathlist scheduling algorithm (paper Chapter 2 and Appendix A).
//!
//! One greedy pass over the binary: each base instruction is decoded,
//! converted to RISC primitives, and each primitive is placed into the
//! earliest tree instruction on the current path where its operands are
//! available and resources remain. Results computed before the last
//! VLIW on the path go to *non-architected rename registers* and are
//! copied ("committed") to their architected homes in the last VLIW, so
//! architected state always changes in original program order — the
//! basis of software-only precise exceptions.
//!
//! The translator maintains a list of paths ordered by probability
//! (the `Pathlist`); conditional branches clone the current path; paths
//! close at the paper's stopping points (cross-page and indirect
//! branches, over-visited join points, window exhaustion).

use daisy_isa::convert::{CondSpec, Converted, Flow};
use daisy_isa::mem::Memory;
use daisy_isa::Isa;
use daisy_vliw::machine::MachineConfig;
use daisy_vliw::op::{MemWidth, OpKind, Operation};
use daisy_vliw::reg::{Reg, RenameMask, NUM_REGS};
use daisy_vliw::tree::{Cond, Exit, Group, IndirectVia, NodeId, NodeKind, VliwId, ROOT};
use std::collections::{HashMap, HashSet};

/// Tuning knobs of the dynamic translator.
#[derive(Debug, Clone)]
pub struct TranslatorConfig {
    /// Target machine resources.
    pub machine: MachineConfig,
    /// Translation unit size in bytes (the paper sweeps 128..16384).
    pub page_size: u32,
    /// Maximum base instructions scheduled along one path (the paper's
    /// window-size code-explosion throttle).
    pub window_size: u32,
    /// Maximum times a join point may be re-scheduled (the paper's `k`;
    /// bounds unrolling so "a base instruction will not belong to more
    /// than k+1 VLIWs").
    pub max_join_visits: u32,
    /// Hard cap on tree instructions per group.
    pub max_vliws_per_group: u32,
    /// Hard cap on simultaneously open paths.
    pub max_paths: u32,
    /// Move loads above stores optimistically (verified at run time).
    pub speculate_loads: bool,
    /// Allow out-of-order placement with renaming; when false every op
    /// lands in the last VLIW (an ablation of the paper's key idea).
    pub rename: bool,
    /// Ignore page boundaries (used by the traditional-compiler
    /// baseline, never by the real VMM).
    pub whole_program: bool,
    /// Taken-probability per branch address from profile feedback; a
    /// backward-taken/forward-not heuristic is used when absent.
    pub profile: Option<HashMap<u32, f64>>,
    /// Interpretive compilation (paper Ch. 6): before translating a
    /// group, the VMM interprets ahead from the entry point, feeding
    /// observed branch outcomes (and indirect-branch targets, which get
    /// specialized as `if (lr == T) goto T`) into the scheduler.
    pub interpretive: bool,
    /// Reroll single-group loops: when a path would leave the group
    /// with a direct branch back to a VLIW already scheduled *on that
    /// path*, seal a backward `Goto` to that VLIW instead, keeping the
    /// loop inside the group. Every engine bounds the resulting cycles
    /// with [`daisy_vliw::packed::BACKEDGE_VLIW_BUDGET`]. Off by
    /// default: backward edges change group shape (and therefore
    /// per-dispatch statistics), so they are opt-in.
    pub reroll_loops: bool,
}

impl Default for TranslatorConfig {
    fn default() -> Self {
        TranslatorConfig {
            machine: MachineConfig::big(),
            page_size: daisy_isa::PAGE_SIZE,
            window_size: 64,
            max_join_visits: 3,
            max_vliws_per_group: 128,
            max_paths: 12,
            speculate_loads: true,
            rename: true,
            whole_program: false,
            profile: None,
            interpretive: false,
            reroll_loops: false,
        }
    }
}

/// Profile-guided tiered-retranslation policy (the hot-group
/// reoptimization the paper sketches in §4.3).
///
/// Groups translate cold with the base [`TranslatorConfig`] — fast,
/// narrow, cheap. The per-group profiler counts dispatches; when an
/// entry crosses [`TierPolicy::hot_threshold`], its cold translation is
/// dropped and the next dispatch retranslates it with
/// [`TierPolicy::hot_config`]: a wider scheduling window, more
/// simultaneous paths, deeper loop unrolling, and interpretive
/// compilation (Ch. 6) so observed branch outcomes and indirect targets
/// steer the richer schedule. Cold first-touch translation cost stays
/// where it was; only entries that provably repay the investment get
/// the expensive treatment.
///
/// Enabled via [`crate::system::DaisySystemBuilder::tiered`] (or
/// [`crate::system::DaisySystemBuilder::hot_threshold`] for the default
/// policy at a chosen threshold).
#[derive(Debug, Clone)]
pub struct TierPolicy {
    /// Dispatch count at which an entry is promoted to the hot tier.
    pub hot_threshold: u64,
    /// Multiplier on [`TranslatorConfig::window_size`] for hot groups.
    pub window_multiplier: u32,
    /// Multiplier on [`TranslatorConfig::max_vliws_per_group`].
    pub vliw_multiplier: u32,
    /// Multiplier on [`TranslatorConfig::max_paths`].
    pub path_multiplier: u32,
    /// Added to [`TranslatorConfig::max_join_visits`] (deeper loop
    /// unrolling in hot groups).
    pub extra_join_visits: u32,
    /// Use interpretive compilation (Ch. 6) for hot retranslations:
    /// interpret ahead from the entry on cloned state and feed observed
    /// branch probabilities / indirect targets to the scheduler.
    pub interpretive: bool,
}

impl Default for TierPolicy {
    fn default() -> TierPolicy {
        TierPolicy {
            hot_threshold: 64,
            window_multiplier: 4,
            vliw_multiplier: 2,
            path_multiplier: 2,
            extra_join_visits: 1,
            interpretive: true,
        }
    }
}

impl TierPolicy {
    /// The default policy with an explicit promotion threshold.
    pub fn with_threshold(hot_threshold: u64) -> TierPolicy {
        TierPolicy { hot_threshold, ..TierPolicy::default() }
    }

    /// Derives the hot-tier translator configuration from `base`.
    pub fn hot_config(&self, base: &TranslatorConfig) -> TranslatorConfig {
        TranslatorConfig {
            window_size: base.window_size.saturating_mul(self.window_multiplier),
            max_vliws_per_group: base.max_vliws_per_group.saturating_mul(self.vliw_multiplier),
            max_paths: base.max_paths.saturating_mul(self.path_multiplier),
            max_join_visits: base.max_join_visits + self.extra_join_visits,
            interpretive: base.interpretive || self.interpretive,
            ..base.clone()
        }
    }
}

/// Per-group scheduling hints gathered by interpreting ahead of
/// translation (paper Ch. 6). Empty hints reproduce the static
/// behaviour exactly.
#[derive(Debug, Clone, Default)]
pub struct Hints {
    /// Observed taken-probability per conditional branch address;
    /// overrides `TranslatorConfig::profile`.
    pub taken_prob: HashMap<u32, f64>,
    /// First observed target per indirect branch address, for
    /// `if (reg == T) goto T` specialization.
    pub indirect_target: HashMap<u32, u32>,
}

impl TranslatorConfig {
    fn taken_prob(&self, hints: &Hints, addr: u32, target: u32) -> f64 {
        if let Some(p) = hints.taken_prob.get(&addr) {
            return p.clamp(0.01, 0.99);
        }
        if let Some(p) = self.profile.as_ref().and_then(|m| m.get(&addr)) {
            return p.clamp(0.01, 0.99);
        }
        // Backward-taken / forward-not-taken heuristic.
        if target <= addr {
            0.8
        } else {
            0.3
        }
    }
}

/// Cost accounting for one group translation (feeds the §5.1 overhead
/// analysis and the Criterion benches).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct XlateCost {
    /// Base instructions scheduled (counting re-visits on other paths).
    pub instrs_scheduled: u64,
    /// Primitives placed into VLIWs.
    pub ops_placed: u64,
    /// Paths explored.
    pub paths: u64,
}

impl XlateCost {
    /// Accumulates another group's cost.
    pub fn add(&mut self, other: &XlateCost) {
        self.instrs_scheduled += other.instrs_scheduled;
        self.ops_placed += other.ops_placed;
        self.paths += other.paths;
    }
}

const NO_STORE: u32 = u32::MAX;

type RegMap = [Reg; NUM_REGS];

fn identity_map() -> RegMap {
    let mut m = [Reg(0); NUM_REGS];
    for (i, r) in m.iter_mut().enumerate() {
        *r = Reg(i as u8);
    }
    m
}

/// A store remembered for must-alias forwarding ("a load [that] must
/// alias with a store … is replaced with a copy of the source register
/// of the store", paper Ch. 5).
#[derive(Debug, Clone, Copy)]
struct StoreRec {
    addr_srcs: [Option<Reg>; 2],
    imm: i32,
    width: MemWidth,
    value: Reg,
}

/// One entry of the Pathlist.
#[derive(Debug, Clone)]
struct Path {
    /// VLIWs along this path, in order.
    vliws: Vec<VliwId>,
    /// This path's tip node within each VLIW.
    tips: Vec<NodeId>,
    /// Register name map per position (per-path, as the paper notes a
    /// shared VLIW can map a register differently on each path).
    maps: Vec<RegMap>,
    /// Earliest position where each register's value is available.
    avail: [u32; NUM_REGS],
    /// Continuation: next base instruction to schedule.
    cont: u32,
    /// Execution probability (product of branch probabilities).
    prob: f64,
    /// Base instructions scheduled on this path.
    window_used: u32,
    /// Position of the most recent store (`NO_STORE` if none).
    last_store_pos: u32,
    /// The most recent store, for must-alias forwarding.
    recent_store: Option<StoreRec>,
}

impl Path {
    fn last(&self) -> u32 {
        self.vliws.len() as u32 - 1
    }
}

/// Where a conditional branch's taken side goes.
enum TakenKind {
    /// On-page or off-page direct target — may spawn a new path.
    Direct(u32),
    /// Seal the taken side with this exit (indirect branches).
    Sealed(Exit),
}

struct Scheduler<'a> {
    cfg: &'a TranslatorConfig,
    hints: &'a Hints,
    mem: &'a Memory,
    group: Group,
    /// Rename registers not yet allocated in each VLIW, across *all*
    /// paths (conservative: paths share tree prefixes, so an allocation
    /// at a shared VLIW must be visible to every path through it).
    vliw_free: Vec<RenameMask>,
    paths: Vec<Path>,
    visits: HashMap<u32, u32>,
    branch_targets: HashSet<u32>,
    cost: XlateCost,
}

/// Translates the group of VLIWs for the entry point at address `entry`
/// (the paper's `CreateVLIWGroupForEntry`, Fig. A.1). The guest ISA `I`
/// supplies the decoder and RISC-primitive conversion; everything else
/// — path management, renaming, commit discipline — is guest-agnostic.
pub fn translate_group<I: Isa>(
    cfg: &TranslatorConfig,
    mem: &Memory,
    entry: u32,
) -> (Group, XlateCost) {
    translate_group_with_hints::<I>(cfg, mem, entry, &Hints::default())
}

/// [`translate_group`] with interpretive-compilation hints (Ch. 6).
pub fn translate_group_with_hints<I: Isa>(
    cfg: &TranslatorConfig,
    mem: &Memory,
    entry: u32,
    hints: &Hints,
) -> (Group, XlateCost) {
    let mut s = Scheduler {
        cfg,
        hints,
        mem,
        group: Group::new(entry),
        vliw_free: vec![RenameMask::ALL_FREE],
        paths: vec![Path {
            vliws: vec![VliwId(0)],
            tips: vec![ROOT],
            maps: vec![identity_map()],
            avail: [0; NUM_REGS],
            cont: entry,
            prob: 1.0,
            window_used: 0,
            last_store_pos: NO_STORE,
            recent_store: None,
        }],
        visits: HashMap::new(),
        branch_targets: HashSet::new(),
        cost: XlateCost { paths: 1, ..XlateCost::default() },
    };
    while let Some(idx) = s.most_probable() {
        s.step::<I>(idx);
    }
    if cfg.reroll_loops {
        s.reroll_loops();
    }
    s.group.base_instrs = s.cost.instrs_scheduled as u32;
    (s.group, s.cost)
}

// invariant: every live `Path` keeps `vliws`, `tips`, and `maps`
// non-empty (seeded at construction, pushed/popped in lockstep), path
// probabilities are products of finite branch weights, and callers of
// the placement helpers check register availability before calling —
// so the `unwrap`/`expect` calls below can only fire on a scheduler
// bug, never on guest input.
#[allow(clippy::unwrap_used, clippy::expect_used)]
impl Scheduler<'_> {
    fn most_probable(&self) -> Option<usize> {
        self.paths
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.prob.partial_cmp(&b.1.prob).expect("probs are finite"))
            .map(|(i, _)| i)
    }

    fn same_page(&self, a: u32, b: u32) -> bool {
        self.cfg.whole_program || a / self.cfg.page_size == b / self.cfg.page_size
    }

    /// The paper's stopping-point test for a path continuation.
    fn is_stopping(&self, window_used: u32, cont: u32) -> bool {
        if !self.same_page(self.group.entry, cont) {
            return true;
        }
        if window_used >= self.cfg.window_size {
            return true;
        }
        if self.group.len() as u32 >= self.cfg.max_vliws_per_group {
            return true;
        }
        if self.branch_targets.contains(&cont)
            && self.visits.get(&cont).copied().unwrap_or(0) >= self.cfg.max_join_visits
        {
            return true;
        }
        false
    }

    /// Closes a path by sealing its tip with `exit`.
    fn close(&mut self, idx: usize, exit: Exit) {
        let p = &self.paths[idx];
        let (v, t) = (*p.vliws.last().expect("paths have a VLIW"), *p.tips.last().unwrap());
        self.group.vliw_mut(v).seal(t, exit);
        self.paths.swap_remove(idx);
    }

    /// Opens a new VLIW at the end of a path (paper `OpenNewVLIW`). The
    /// new position's map is identity: every rename so far committed in
    /// the then-last VLIW, which the new one follows.
    fn open_vliw(&mut self, idx: usize) {
        let anchor = self.paths[idx].cont;
        let id = self.group.push_vliw(anchor);
        self.vliw_free.push(RenameMask::ALL_FREE);
        let p = &mut self.paths[idx];
        let (ov, ot) = (*p.vliws.last().unwrap(), *p.tips.last().unwrap());
        self.group.vliw_mut(ov).seal(ot, Exit::Goto(id));
        p.vliws.push(id);
        p.tips.push(ROOT);
        p.maps.push(identity_map());
    }

    /// Post-pass for [`TranslatorConfig::reroll_loops`]: rewrites
    /// direct-branch exits whose target is the anchor of an earlier
    /// VLIW of this group into backward `Goto` edges, so single-group
    /// loops iterate natively instead of re-dispatching every trip.
    ///
    /// Soundness: at any `Branch` exit architected state is complete
    /// (the commit discipline), so re-entering the loop header is
    /// indistinguishable from a fresh dispatch at its anchor *unless*
    /// some rename register read inside the re-entered region was
    /// defined outside it — on iteration two such a read would see a
    /// stale first-iteration value. A rewrite is therefore applied
    /// only when every rename read anywhere in the header's
    /// `Goto`-reachable region has no def outside that region anywhere
    /// in the group. Rewrites go one at a time (each new edge changes
    /// reachability) until a fixed point.
    fn reroll_loops(&mut self) {
        while self.reroll_one() {}
    }

    /// Applies at most one `Branch -> Goto` rewrite; returns whether
    /// one was applied. Terminates: each rewrite removes a `Branch`
    /// leaf and never creates one.
    fn reroll_one(&mut self) -> bool {
        let n = self.group.len();
        for wi in 0..n {
            for ni in 0..self.group.vliw(VliwId(wi as u32)).nodes().len() {
                let nid = NodeId(ni as u32);
                let target = match self.group.vliw(VliwId(wi as u32)).node(nid).kind {
                    NodeKind::Exit(Exit::Branch { target }) => target,
                    _ => continue,
                };
                // Highest-index VLIW anchored at the target whose
                // Goto-reachable region contains this exit's VLIW: the
                // innermost loop header for this back-edge.
                let header = (0..n).rev().find(|&c| {
                    self.group.vliw(VliwId(c as u32)).base_entry == target && self.goto_reach(c)[wi]
                });
                let Some(c) = header else { continue };
                let region = self.goto_reach(c);
                if !self.region_has_work(&region) {
                    // A loop with no guest work would spin until the
                    // back-edge budget for nothing; leave it to the
                    // dispatcher.
                    continue;
                }
                if !self.region_renames_invariant(&region) {
                    continue;
                }
                self.group.vliw_mut(VliwId(wi as u32)).reseal(nid, Exit::Goto(VliwId(c as u32)));
                return true;
            }
        }
        false
    }

    /// VLIWs reachable from `from` (inclusive) over `Goto` edges.
    fn goto_reach(&self, from: usize) -> Vec<bool> {
        let mut seen = vec![false; self.group.len()];
        let mut stack = vec![from];
        while let Some(v) = stack.pop() {
            if std::mem::replace(&mut seen[v], true) {
                continue;
            }
            for node in self.group.vliw(VliwId(v as u32)).nodes() {
                if let NodeKind::Exit(Exit::Goto(t)) = node.kind {
                    if !seen[t.0 as usize] {
                        stack.push(t.0 as usize);
                    }
                }
            }
        }
        seen
    }

    /// Whether the region executes any guest work (an op or a
    /// conditional split) — the guard against sealing no-op spin loops.
    fn region_has_work(&self, region: &[bool]) -> bool {
        (0..self.group.len()).filter(|&v| region[v]).any(|v| {
            self.group
                .vliw(VliwId(v as u32))
                .nodes()
                .iter()
                .any(|node| !node.ops.is_empty() || matches!(node.kind, NodeKind::Branch { .. }))
        })
    }

    /// Whether every rename register read inside the region is defined
    /// only inside the region (anywhere in the group). Architected
    /// reads are always safe: they see committed state at the region
    /// entry, same as a fresh dispatch.
    fn region_renames_invariant(&self, region: &[bool]) -> bool {
        let mut read_inside = [false; NUM_REGS];
        let mut def_outside = [false; NUM_REGS];
        for (v, &inside) in region.iter().enumerate().take(self.group.len()) {
            for node in self.group.vliw(VliwId(v as u32)).nodes() {
                for op in &node.ops {
                    if inside {
                        for &s in op.srcs() {
                            if s.is_rename() {
                                read_inside[s.index()] = true;
                            }
                        }
                    } else {
                        for d in [op.dest, op.dest2].into_iter().flatten() {
                            if d.is_rename() {
                                def_outside[d.index()] = true;
                            }
                        }
                    }
                }
                if inside {
                    match &node.kind {
                        NodeKind::Branch { cond, .. } if cond.src.is_rename() => {
                            read_inside[cond.src.index()] = true;
                        }
                        NodeKind::Exit(Exit::Indirect { src, .. }) if src.is_rename() => {
                            read_inside[src.index()] = true;
                        }
                        _ => {}
                    }
                }
            }
        }
        (0..NUM_REGS).all(|r| !(read_inside[r] && def_outside[r]))
    }

    /// Rename registers free from position `pos` to the end of the path
    /// (the paper's `FreeGprsUntilEnd`).
    fn free_until_end(&self, idx: usize, pos: u32) -> RenameMask {
        let mut m = RenameMask::ALL_FREE;
        for v in &self.paths[idx].vliws[pos as usize..] {
            m = m.and(self.vliw_free[v.0 as usize]);
        }
        m
    }

    /// Suffix-AND table of `free_until_end` for positions `from..=last`
    /// — one linear pass instead of one per candidate position (the
    /// paper's Fig. A.4 does the same backward pass).
    fn free_suffixes(&self, idx: usize, from: u32) -> Vec<RenameMask> {
        let vliws = &self.paths[idx].vliws[from as usize..];
        let mut out = vec![RenameMask::ALL_FREE; vliws.len()];
        let mut m = RenameMask::ALL_FREE;
        for (i, v) in vliws.iter().enumerate().rev() {
            m = m.and(self.vliw_free[v.0 as usize]);
            out[i] = m;
        }
        out
    }

    /// Marks `r` allocated from `pos` to the end of the path.
    fn reserve(&mut self, idx: usize, pos: u32, r: Reg) {
        let ids: Vec<VliwId> = self.paths[idx].vliws[pos as usize..].to_vec();
        for v in ids {
            self.vliw_free[v.0 as usize] = self.vliw_free[v.0 as usize].without(r);
        }
    }

    fn earliest(&self, idx: usize, op: &Operation) -> u32 {
        let p = &self.paths[idx];
        op.srcs().iter().map(|s| p.avail[s.index()]).max().unwrap_or(0)
    }

    fn rename_srcs(op: &mut Operation, map: &RegMap) {
        for i in 0..op.srcs().len() {
            let s = op.srcs()[i];
            op.set_src(i, map[s.index()]);
        }
    }

    fn kill_store_rec(p: &mut Path, def: Reg) {
        if let Some(rec) = &p.recent_store {
            if rec.value == def || rec.addr_srcs.iter().flatten().any(|r| *r == def) {
                p.recent_store = None;
            }
        }
    }

    /// Ensures the last VLIW can take one more parcel of `op`'s class,
    /// opening a new VLIW otherwise.
    fn ensure_room(&mut self, idx: usize, op: &Operation) {
        let p = &self.paths[idx];
        let vid = *p.vliws.last().unwrap();
        if !self.group.vliw(vid).has_room(&self.cfg.machine, op) {
            self.open_vliw(idx);
        }
    }

    /// Schedules one RISC primitive with an architected destination —
    /// the paper's `ScheduleThreeRegOp` (Fig. A.3) generalized to every
    /// op shape. Returns the position it landed at.
    fn schedule_op(&mut self, idx: usize, mut op: Operation) -> u32 {
        self.cost.ops_placed += 1;
        let is_store = op.kind.is_store();
        let is_trap = matches!(op.kind, OpKind::TrapIf { .. });
        let in_order_only = is_store || is_trap || !self.cfg.rename;
        let mut v = self.earliest(idx, &op);

        if op.kind.is_load() && !self.cfg.speculate_loads {
            let lsp = self.paths[idx].last_store_pos;
            if lsp != NO_STORE {
                v = v.max(lsp);
            }
        }
        if is_store || is_trap {
            v = v.max(self.paths[idx].last());
        }

        while v > self.paths[idx].last() {
            self.open_vliw(idx);
        }

        if !in_order_only && op.dest.is_some() {
            let needed = 1 + u32::from(op.dest2.is_some());
            let suffixes = self.free_suffixes(idx, v);
            let base = v;
            while v < self.paths[idx].last() {
                let vid = self.paths[idx].vliws[v as usize];
                if self.group.vliw(vid).has_room(&self.cfg.machine, &op)
                    && suffixes[(v - base) as usize].count() >= needed
                {
                    break;
                }
                v += 1;
            }
            if v < self.paths[idx].last() {
                if op.kind.is_load() {
                    let lsp = self.paths[idx].last_store_pos;
                    op.bypassed_store = lsp != NO_STORE && v < lsp;
                }
                return self.place_out_of_order(idx, v, op);
            }
        }
        self.place_in_order(idx, op)
    }

    /// Out-of-order placement: rename the destination(s), mark
    /// speculative, and commit in the last VLIW (paper Fig. A.4).
    fn place_out_of_order(&mut self, idx: usize, v: u32, mut op: Operation) -> u32 {
        let arch = op.dest.expect("out-of-order ops have a destination");
        let arch2 = op.dest2;

        let free = self.free_until_end(idx, v);
        let d1 = free.pick().expect("caller checked free registers");
        let d2 = arch2.map(|_| free.without(d1).pick().expect("caller checked two"));
        self.reserve(idx, v, d1);
        if let Some(d2) = d2 {
            self.reserve(idx, v, d2);
        }

        let base_addr = op.base_addr;
        let bypassed = op.bypassed_store;
        {
            let p = &self.paths[idx];
            let map = p.maps[v as usize];
            Scheduler::rename_srcs(&mut op, &map);
        }
        op.dest = Some(d1);
        op.dest2 = d2;
        op.speculative = true;
        let (vid, tip) = {
            let p = &self.paths[idx];
            (p.vliws[v as usize], p.tips[v as usize])
        };
        self.group.vliw_mut(vid).add_op(tip, op);

        // Commit copies in the last VLIW, program order.
        let mut commit = Operation::new(OpKind::Copy, base_addr).dst(arch).src(d1);
        commit.is_commit = true;
        commit.bypassed_store = bypassed;
        self.ensure_room(idx, &commit);
        {
            let p = &self.paths[idx];
            let (cv, ct) = (*p.vliws.last().unwrap(), *p.tips.last().unwrap());
            self.group.vliw_mut(cv).add_op(ct, commit);
        }
        if let (Some(a2), Some(d2)) = (arch2, d2) {
            let mut c2 = Operation::new(OpKind::Copy, base_addr).dst(a2).src(d2);
            c2.is_commit = true;
            self.ensure_room(idx, &c2);
            let p = &self.paths[idx];
            let (cv, ct) = (*p.vliws.last().unwrap(), *p.tips.last().unwrap());
            self.group.vliw_mut(cv).add_op(ct, c2);
        }

        let p = &mut self.paths[idx];
        let last = p.last();
        for pos in (v + 1)..=last {
            p.maps[pos as usize][arch.index()] = d1;
            if let (Some(a2), Some(d2)) = (arch2, d2) {
                p.maps[pos as usize][a2.index()] = d2;
            }
        }
        p.avail[arch.index()] = v + 1;
        p.avail[d1.index()] = v + 1;
        if let (Some(a2), Some(d2)) = (arch2, d2) {
            p.avail[a2.index()] = v + 1;
            p.avail[d2.index()] = v + 1;
        }
        Scheduler::kill_store_rec(p, arch);
        if let Some(a2) = arch2 {
            Scheduler::kill_store_rec(p, a2);
        }
        // The rename registers now hold new values; if the remembered
        // store named either of them, its record no longer identifies
        // the store's address/value and must-alias forwarding would be
        // unsound.
        Scheduler::kill_store_rec(p, d1);
        if let Some(d2) = d2 {
            Scheduler::kill_store_rec(p, d2);
        }
        v
    }

    /// In-order placement in the last VLIW, committing directly to the
    /// architected register (paper Fig. A.5).
    fn place_in_order(&mut self, idx: usize, mut op: Operation) -> u32 {
        self.ensure_room(idx, &op);
        let last = self.paths[idx].last();
        {
            let p = &self.paths[idx];
            let map = p.maps[last as usize];
            Scheduler::rename_srcs(&mut op, &map);
        }
        let store_rec = op.kind.is_store().then(|| StoreRec {
            addr_srcs: [op.srcs().get(1).copied(), op.srcs().get(2).copied()],
            imm: op.imm,
            width: match op.kind {
                OpKind::Store { width } => width,
                _ => MemWidth::Word,
            },
            value: op.srcs()[0],
        });
        let (vid, tip, dests) = {
            let p = &self.paths[idx];
            (*p.vliws.last().unwrap(), *p.tips.last().unwrap(), (op.dest, op.dest2))
        };
        let is_store = op.kind.is_store();
        self.group.vliw_mut(vid).add_op(tip, op);
        let p = &mut self.paths[idx];
        for d in [dests.0, dests.1].into_iter().flatten() {
            p.avail[d.index()] = last + 1;
            // The architected register holds its own value from here on.
            p.maps[last as usize][d.index()] = d;
            Scheduler::kill_store_rec(p, d);
        }
        if is_store {
            p.last_store_pos = last;
            p.recent_store = store_rec;
        }
        last
    }

    /// Schedules an op whose result exists only as a renamed temporary
    /// (CTR-compare conditions, pre-update LR captures). Returns the
    /// rename register holding the result.
    fn schedule_temp(&mut self, idx: usize, mut op: Operation) -> Reg {
        self.cost.ops_placed += 1;
        let mut v = self.earliest(idx, &op);
        while v > self.paths[idx].last() {
            self.open_vliw(idx);
        }
        loop {
            let last = self.paths[idx].last();
            let suffixes = self.free_suffixes(idx, v);
            let base = v;
            while v <= last {
                let vid = self.paths[idx].vliws[v as usize];
                if self.group.vliw(vid).has_room(&self.cfg.machine, &op)
                    && suffixes[(v - base) as usize].count() >= 1
                {
                    break;
                }
                v += 1;
            }
            if v <= last {
                break;
            }
            self.open_vliw(idx);
        }
        let d1 = self.free_until_end(idx, v).pick().expect("free register found above");
        self.reserve(idx, v, d1);
        {
            let p = &self.paths[idx];
            let map = p.maps[v as usize];
            Scheduler::rename_srcs(&mut op, &map);
        }
        op.dest = Some(d1);
        op.speculative = true;
        let (vid, tip) = {
            let p = &self.paths[idx];
            (p.vliws[v as usize], p.tips[v as usize])
        };
        self.group.vliw_mut(vid).add_op(tip, op);
        let p = &mut self.paths[idx];
        p.avail[d1.index()] = v + 1;
        Scheduler::kill_store_rec(p, d1);
        d1
    }

    /// Schedules a conditional branch (paper `ScheduleBranchCond`,
    /// Fig. A.6): forces the condition into an earlier VLIW, splits the
    /// tip, and clones or seals the taken side.
    fn schedule_cond_branch(
        &mut self,
        idx: usize,
        cond: CondSpec,
        temp: Option<Reg>,
        addr: u32,
        taken: TakenKind,
        spec_target: Option<u32>,
    ) {
        let cond_reg = temp.unwrap_or(cond.field);
        // Branches are scheduled in the last VLIW — later if the
        // condition is not ready, never earlier (precise interrupts).
        let v = self.paths[idx].avail[cond_reg.index()].max(self.paths[idx].last());
        while self.paths[idx].last() < v {
            self.open_vliw(idx);
        }
        {
            let vid = *self.paths[idx].vliws.last().unwrap();
            if !self.group.vliw(vid).has_branch_room(&self.cfg.machine) {
                self.open_vliw(idx);
            }
        }
        let last = self.paths[idx].last();
        let src = match temp {
            Some(t) => t,
            None => self.paths[idx].maps[last as usize][cond.field.index()],
        };
        let (vid, tip) = {
            let p = &self.paths[idx];
            (*p.vliws.last().unwrap(), *p.tips.last().unwrap())
        };
        let (taken_node, fall_node) = self.group.vliw_mut(vid).split(
            tip,
            Cond { src, mask: cond.mask, want_set: cond.want_set, spec_target, origin: addr },
        );

        match taken {
            TakenKind::Sealed(exit) => {
                self.group.vliw_mut(vid).seal(taken_node, exit);
                let p = &mut self.paths[idx];
                *p.tips.last_mut().unwrap() = fall_node;
                p.cont = addr.wrapping_add(4);
            }
            TakenKind::Direct(target) => {
                self.branch_targets.insert(target);
                let pt = self.cfg.taken_prob(self.hints, addr, target);
                let spawn = (self.paths.len() as u32) < self.cfg.max_paths
                    && !self.is_stopping(self.paths[idx].window_used, target);
                if spawn {
                    let mut p2 = self.paths[idx].clone();
                    *p2.tips.last_mut().unwrap() = taken_node;
                    p2.cont = target;
                    p2.prob = self.paths[idx].prob * pt;
                    self.cost.paths += 1;
                    let p = &mut self.paths[idx];
                    *p.tips.last_mut().unwrap() = fall_node;
                    p.cont = addr.wrapping_add(4);
                    p.prob *= 1.0 - pt;
                    self.paths.push(p2);
                } else {
                    self.group.vliw_mut(vid).seal(taken_node, Exit::Branch { target });
                    let p = &mut self.paths[idx];
                    *p.tips.last_mut().unwrap() = fall_node;
                    p.cont = addr.wrapping_add(4);
                    p.prob *= 1.0 - pt;
                }
            }
        }
    }

    /// Emits the LR update for a linking branch and, for indirect
    /// branches through LR, captures the *pre-update* LR first.
    fn indirect_src(&mut self, idx: usize, via: IndirectVia, links: bool, addr: u32) -> Reg {
        let arch = match via {
            IndirectVia::Lr => Reg::LR,
            IndirectVia::Ctr => Reg::CTR,
        };
        if links && via == IndirectVia::Lr {
            let capture = Operation::new(OpKind::Copy, addr).src(Reg::LR);
            let tmp = self.schedule_temp(idx, capture);
            self.schedule_link(idx, addr);
            return tmp;
        }
        if links {
            self.schedule_link(idx, addr);
        }
        let p = &self.paths[idx];
        p.maps[p.last() as usize][arch.index()]
    }

    fn schedule_link(&mut self, idx: usize, addr: u32) {
        let li =
            Operation::new(OpKind::Li, addr).dst(Reg::LR).with_imm(addr.wrapping_add(4) as i32);
        self.schedule_op(idx, li);
    }

    /// Schedules a converted straight-line primitive, applying
    /// must-alias store-to-load forwarding for loads.
    fn schedule_converted(&mut self, idx: usize, op: Operation) {
        if let OpKind::Load { width, algebraic: false } = op.kind {
            let forward = {
                let p = &self.paths[idx];
                let map = &p.maps[p.last() as usize];
                p.recent_store.as_ref().and_then(|rec| {
                    let mapped: Vec<Reg> = op.srcs().iter().map(|s| map[s.index()]).collect();
                    let rec_srcs: Vec<Reg> = rec.addr_srcs.iter().flatten().copied().collect();
                    (rec.width == width && rec.imm == op.imm && mapped == rec_srcs)
                        .then_some(rec.value)
                })
            };
            if let Some(value) = forward {
                // A narrow store keeps only its low bits; the matching
                // zero-extending load must see them truncated.
                let dst = op.dest.expect("loads have destinations");
                let fwd = match width {
                    MemWidth::Word => {
                        Operation::new(OpKind::Copy, op.base_addr).dst(dst).src(value)
                    }
                    MemWidth::Half => Operation::new(OpKind::AndImm, op.base_addr)
                        .dst(dst)
                        .src(value)
                        .with_imm2(0xFFFF),
                    MemWidth::Byte => Operation::new(OpKind::AndImm, op.base_addr)
                        .dst(dst)
                        .src(value)
                        .with_imm2(0xFF),
                };
                self.schedule_op(idx, fwd);
                return;
            }
        }
        self.schedule_op(idx, op);
    }

    /// Decodes and schedules the instruction at the path's continuation
    /// (paper `DecodeAndScheduleOneInstr`, Fig. A.2).
    fn step<I: Isa>(&mut self, idx: usize) {
        let addr = self.paths[idx].cont;
        if self.is_stopping(self.paths[idx].window_used, addr) {
            self.close(idx, Exit::Branch { target: addr });
            return;
        }
        let Ok(word) = self.mem.read_u32(addr) else {
            self.close(idx, Exit::Interp { addr });
            return;
        };
        *self.visits.entry(addr).or_insert(0) += 1;
        self.paths[idx].window_used += 1;
        self.cost.instrs_scheduled += 1;

        // A word the frontend cannot decode ends the path at the
        // interpreter, exactly like an instruction it converts to
        // `Flow::Interp`.
        let conv = match I::decode(word) {
            Ok(insn) => I::convert(&insn, addr),
            Err(_) => Converted::interp(),
        };
        match conv.flow {
            Flow::Fall => {
                for op in conv.ops {
                    self.schedule_converted(idx, op);
                }
                self.paths[idx].cont = addr.wrapping_add(4);
            }
            Flow::Jump { target } => {
                // Frontends may attach ops to a jump (e.g. RV32 `jal`
                // writes its link register as an explicit op); schedule
                // them before the control transfer.
                for op in conv.ops {
                    self.schedule_converted(idx, op);
                }
                if conv.links {
                    self.schedule_link(idx, addr);
                }
                if self.same_page(self.group.entry, target)
                    && !self.is_stopping(self.paths[idx].window_used, target)
                {
                    // On-page direct jump: continue scheduling at the
                    // target (join-visit caps bound loop unrolling).
                    self.branch_targets.insert(target);
                    self.paths[idx].cont = target;
                } else {
                    self.close(idx, Exit::Branch { target });
                }
            }
            Flow::CondJump { cond, target, cond_compare } => {
                let temp = self.schedule_flow_ops(idx, conv.ops, cond_compare);
                if conv.links {
                    self.schedule_link(idx, addr);
                }
                self.schedule_cond_branch(idx, cond, temp, addr, TakenKind::Direct(target), None);
            }
            Flow::IndirectJump { via } => {
                // Ops run first: e.g. RV32 `jalr` computes the target
                // into LR and writes the link register as ops, then the
                // indirect source below reads the renamed LR.
                for op in conv.ops {
                    self.schedule_converted(idx, op);
                }
                let src = self.indirect_src(idx, via, conv.links, addr);
                // Interpretive compilation (Ch. 6): a previously observed
                // target T turns the serializing indirect branch into
                // `if (reg == T) goto T` with an indirect fallback, so
                // scheduling continues through the common case.
                let hint = self.hints.indirect_target.get(&addr).copied();
                if let Some(t) = hint {
                    if self.same_page(self.group.entry, t)
                        && !self.is_stopping(self.paths[idx].window_used, t)
                        && t != addr
                    {
                        let cmp = Operation::new(OpKind::CmpUImm, addr)
                            .src(src)
                            .src(Reg::SO)
                            .with_imm(t as i32);
                        let tmp = self.schedule_temp(idx, cmp);
                        self.branch_targets.insert(t);
                        // Taken = "not equal" → the true indirect exit;
                        // fall-through = the specialized direct path.
                        let cond = CondSpec { field: tmp, mask: 0b0010, want_set: false };
                        self.schedule_cond_branch(
                            idx,
                            cond,
                            Some(tmp),
                            addr,
                            TakenKind::Sealed(Exit::Indirect { src, via }),
                            Some(t),
                        );
                        self.paths[idx].cont = t;
                        return;
                    }
                }
                self.close(idx, Exit::Indirect { src, via });
            }
            Flow::CondIndirect { cond, via, cond_compare } => {
                let temp = self.schedule_flow_ops(idx, conv.ops, cond_compare);
                let src = self.indirect_src(idx, via, conv.links, addr);
                self.schedule_cond_branch(
                    idx,
                    cond,
                    temp,
                    addr,
                    TakenKind::Sealed(Exit::Indirect { src, via }),
                    None,
                );
            }
            Flow::Interp => {
                self.close(idx, Exit::Interp { addr });
            }
        }
    }

    /// Schedules a branch's auxiliary ops. For condition-compare forms
    /// (PowerPC CTR-decrement branches, RISC-V compare-and-branch) the
    /// final op is the compare, which lives only in a rename register;
    /// its name is returned for the condition.
    fn schedule_flow_ops(
        &mut self,
        idx: usize,
        ops: Vec<Operation>,
        cond_compare: bool,
    ) -> Option<Reg> {
        let n = ops.len();
        let mut temp = None;
        for (i, mut op) in ops.into_iter().enumerate() {
            if cond_compare && i == n - 1 {
                op.dest = None; // placeholder condition dest never materializes
                temp = Some(self.schedule_temp(idx, op));
            } else {
                self.schedule_converted(idx, op);
            }
        }
        temp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_ppc::asm::Asm;
    use daisy_ppc::reg::{CrField, Gpr};
    use daisy_vliw::tree::NodeKind;

    fn translate(build: impl FnOnce(&mut Asm)) -> Group {
        let mut a = Asm::new(0x1000);
        build(&mut a);
        let prog = a.finish().unwrap();
        let mut mem = Memory::new(0x20000);
        prog.load_into(&mut mem).unwrap();
        let cfg = TranslatorConfig::default();
        translate_group::<daisy_ppc::PpcIsa>(&cfg, &mem, prog.entry).0
    }

    #[test]
    fn straight_line_packs_independent_ops() {
        // Four independent adds + sc: all four should land in VLIW 0.
        let g = translate(|a| {
            a.add(Gpr(3), Gpr(1), Gpr(2));
            a.add(Gpr(4), Gpr(1), Gpr(2));
            a.add(Gpr(5), Gpr(1), Gpr(2));
            a.add(Gpr(6), Gpr(1), Gpr(2));
            a.sc();
        });
        assert_eq!(g.vliws[0].counts().alu, 4);
        // sc seals the path with an Interp exit.
        let has_interp = g.vliws.iter().any(|v| {
            v.nodes().iter().any(|n| matches!(n.kind, NodeKind::Exit(Exit::Interp { .. })))
        });
        assert!(has_interp);
    }

    #[test]
    fn dependent_chain_spans_vliws() {
        let g = translate(|a| {
            a.add(Gpr(3), Gpr(1), Gpr(2));
            a.add(Gpr(4), Gpr(3), Gpr(3));
            a.add(Gpr(5), Gpr(4), Gpr(4));
            a.sc();
        });
        assert!(g.len() >= 3, "dependence chain needs one VLIW per link, got {}", g.len());
    }

    #[test]
    fn paper_figure_2_2_shape() {
        // The running example of the paper (Fig. 2.2): 11 instructions
        // fit in 2 VLIWs on the big machine.
        let g = translate(|a| {
            a.add(Gpr(1), Gpr(2), Gpr(3)); // 1
            a.beq(CrField(0), "L1"); // 2
            a.slwi(Gpr(12), Gpr(1), 3); // 3 (sli)
            a.xor(Gpr(4), Gpr(5), Gpr(6)); // 4
            a.and(Gpr(8), Gpr(4), Gpr(7)); // 5
            a.beq(CrField(1), "L2"); // 6
            a.b("OFFPAGE"); // 7 — resolved below as cross-page
            a.label("L1");
            a.subf(Gpr(9), Gpr(11), Gpr(10)); // 8
            a.b("OFFPAGE"); // 9
            a.label("L2");
            a.cntlzw(Gpr(11), Gpr(4)); // 10
            a.b("OFFPAGE"); // 11
                            // Place OFFPAGE outside this 4K page.
            for _ in 0..1024 {
                a.nop();
            }
            a.label("OFFPAGE");
            a.sc();
        });
        assert_eq!(g.len(), 2, "paper's example translates to exactly 2 VLIWs");
        // The xor's result must be renamed (speculative) in VLIW1.
        let v1_has_spec_xor = g.vliws[0]
            .nodes()
            .iter()
            .flat_map(|n| n.ops.iter())
            .any(|o| o.kind == OpKind::Xor && o.speculative && o.dest.unwrap().is_rename());
        assert!(v1_has_spec_xor, "xor should execute speculatively in VLIW1\n{}", g.vliws[0]);
        // And commit via a copy in VLIW2.
        let v2_commits_r4 = g.vliws[1]
            .nodes()
            .iter()
            .flat_map(|n| n.ops.iter())
            .any(|o| o.is_commit && o.dest == Some(Reg::gpr(Gpr(4))));
        assert!(v2_commits_r4, "r4 commit belongs in VLIW2\n{}", g.vliws[1]);
    }

    #[test]
    fn loop_unrolling_is_bounded_by_join_visits() {
        let g = translate(|a| {
            a.li(Gpr(3), 100);
            a.label("loop");
            a.addi(Gpr(3), Gpr(3), -1);
            a.cmpwi(CrField(0), Gpr(3), 0);
            a.bne(CrField(0), "loop");
            a.sc();
        });
        // The loop body appears at most k+1 times; the group stays small.
        assert!(g.len() <= 40, "group exploded: {} VLIWs", g.len());
        // Some exit must branch back to the loop header (0x1004).
        let exits: Vec<_> = g
            .vliws
            .iter()
            .flat_map(|v| v.nodes().iter())
            .filter_map(|n| match n.kind {
                NodeKind::Exit(Exit::Branch { target }) => Some(target),
                _ => None,
            })
            .collect();
        assert!(exits.contains(&0x1004), "loop header re-entry exit missing: {exits:x?}");
    }

    #[test]
    fn stores_stay_in_program_order() {
        let g = translate(|a| {
            a.stw(Gpr(3), 0, Gpr(1));
            a.stw(Gpr(4), 4, Gpr(1));
            a.sc();
        });
        // Both stores are on the root path in order.
        let stores: Vec<u32> = g
            .vliws
            .iter()
            .flat_map(|v| v.nodes().iter())
            .flat_map(|n| n.ops.iter())
            .filter(|o| o.kind.is_store())
            .map(|o| o.base_addr)
            .collect();
        assert_eq!(stores, vec![0x1000, 0x1004]);
    }

    #[test]
    fn load_forwards_from_matching_store() {
        let g = translate(|a| {
            a.stw(Gpr(3), 8, Gpr(1));
            a.lwz(Gpr(4), 8, Gpr(1)); // must-alias: becomes a copy
            a.sc();
        });
        let loads = g
            .vliws
            .iter()
            .flat_map(|v| v.nodes().iter())
            .flat_map(|n| n.ops.iter())
            .filter(|o| o.kind.is_load())
            .count();
        assert_eq!(loads, 0, "the load should have been forwarded to a copy");
    }

    #[test]
    fn load_above_store_is_marked_bypassed() {
        // The store's value arrives late (dependence chain), pushing it
        // to a later VLIW; the independent load hoists above it.
        let g = translate(|a| {
            a.add(Gpr(10), Gpr(8), Gpr(9));
            a.add(Gpr(11), Gpr(10), Gpr(10));
            a.stw(Gpr(11), 0, Gpr(1));
            a.lwz(Gpr(4), 0, Gpr(2)); // may alias, moved up speculatively
            a.add(Gpr(5), Gpr(4), Gpr(4));
            a.sc();
        });
        let bypassed = g
            .vliws
            .iter()
            .flat_map(|v| v.nodes().iter())
            .flat_map(|n| n.ops.iter())
            .any(|o| o.kind.is_load() && o.bypassed_store);
        assert!(bypassed, "load moved above the store must be flagged for load-verify");
    }

    #[test]
    fn no_rename_mode_serializes() {
        let mut a = Asm::new(0x1000);
        a.add(Gpr(3), Gpr(1), Gpr(2));
        a.xor(Gpr(4), Gpr(5), Gpr(6));
        a.sc();
        let prog = a.finish().unwrap();
        let mut mem = Memory::new(0x20000);
        prog.load_into(&mut mem).unwrap();
        let cfg = TranslatorConfig { rename: false, ..TranslatorConfig::default() };
        let (g, _) = translate_group::<daisy_ppc::PpcIsa>(&cfg, &mem, prog.entry);
        // Without renaming both ops still fit the first VLIW (both are
        // ready at entry), but nothing is speculative.
        let spec = g
            .vliws
            .iter()
            .flat_map(|v| v.nodes().iter())
            .flat_map(|n| n.ops.iter())
            .any(|o| o.speculative);
        assert!(!spec);
    }

    #[test]
    fn cost_accounting_counts_instructions() {
        let mut a = Asm::new(0x1000);
        a.add(Gpr(3), Gpr(1), Gpr(2));
        a.add(Gpr(4), Gpr(3), Gpr(3));
        a.sc();
        let prog = a.finish().unwrap();
        let mut mem = Memory::new(0x20000);
        prog.load_into(&mut mem).unwrap();
        let cfg = TranslatorConfig::default();
        let (_, cost) = translate_group::<daisy_ppc::PpcIsa>(&cfg, &mem, prog.entry);
        assert_eq!(cost.instrs_scheduled, 3); // two adds + sc
        assert!(cost.ops_placed >= 2);
    }
}
