/root/repo/target/release/deps/daisy_vliw-8b13566ba03ab130.d: crates/vliw/src/lib.rs crates/vliw/src/machine.rs crates/vliw/src/op.rs crates/vliw/src/reg.rs crates/vliw/src/regfile.rs crates/vliw/src/tree.rs

/root/repo/target/release/deps/libdaisy_vliw-8b13566ba03ab130.rlib: crates/vliw/src/lib.rs crates/vliw/src/machine.rs crates/vliw/src/op.rs crates/vliw/src/reg.rs crates/vliw/src/regfile.rs crates/vliw/src/tree.rs

/root/repo/target/release/deps/libdaisy_vliw-8b13566ba03ab130.rmeta: crates/vliw/src/lib.rs crates/vliw/src/machine.rs crates/vliw/src/op.rs crates/vliw/src/reg.rs crates/vliw/src/regfile.rs crates/vliw/src/tree.rs

crates/vliw/src/lib.rs:
crates/vliw/src/machine.rs:
crates/vliw/src/op.rs:
crates/vliw/src/reg.rs:
crates/vliw/src/regfile.rs:
crates/vliw/src/tree.rs:
