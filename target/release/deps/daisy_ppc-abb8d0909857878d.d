/root/repo/target/release/deps/daisy_ppc-abb8d0909857878d.d: crates/ppc/src/lib.rs crates/ppc/src/asm.rs crates/ppc/src/decode.rs crates/ppc/src/encode.rs crates/ppc/src/insn.rs crates/ppc/src/interp.rs crates/ppc/src/mem.rs crates/ppc/src/parse.rs crates/ppc/src/reg.rs

/root/repo/target/release/deps/libdaisy_ppc-abb8d0909857878d.rlib: crates/ppc/src/lib.rs crates/ppc/src/asm.rs crates/ppc/src/decode.rs crates/ppc/src/encode.rs crates/ppc/src/insn.rs crates/ppc/src/interp.rs crates/ppc/src/mem.rs crates/ppc/src/parse.rs crates/ppc/src/reg.rs

/root/repo/target/release/deps/libdaisy_ppc-abb8d0909857878d.rmeta: crates/ppc/src/lib.rs crates/ppc/src/asm.rs crates/ppc/src/decode.rs crates/ppc/src/encode.rs crates/ppc/src/insn.rs crates/ppc/src/interp.rs crates/ppc/src/mem.rs crates/ppc/src/parse.rs crates/ppc/src/reg.rs

crates/ppc/src/lib.rs:
crates/ppc/src/asm.rs:
crates/ppc/src/decode.rs:
crates/ppc/src/encode.rs:
crates/ppc/src/insn.rs:
crates/ppc/src/interp.rs:
crates/ppc/src/mem.rs:
crates/ppc/src/parse.rs:
crates/ppc/src/reg.rs:
