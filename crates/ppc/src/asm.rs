//! Label-based PowerPC assembler and program builder.
//!
//! The benchmark workloads (paper Ch. 5) are written against this API
//! and assembled to genuine 32-bit PowerPC words, which the DAISY
//! translator then consumes exactly as it would consume a real binary.
//!
//! # Example
//!
//! ```
//! use daisy_ppc::asm::Asm;
//! use daisy_ppc::reg::{CrField, Gpr};
//!
//! let mut a = Asm::new(0x1000);
//! a.li(Gpr(3), 0);
//! a.li(Gpr(4), 10);
//! a.mtctr(Gpr(4));
//! a.label("loop");
//! a.addi(Gpr(3), Gpr(3), 2);
//! a.bdnz("loop");
//! a.sc();
//! let prog = a.finish().unwrap();
//! assert_eq!(prog.code.len(), 6);
//! ```

use crate::encode::encode;
use crate::insn::{
    bo, Arith2Op, ArithOp, CrOp, Insn, LogicImmOp, LogicOp, MemWidth, ShiftOp, UnaryOp,
};
use crate::reg::{CrBit, CrField, Gpr, Spr};
use std::collections::HashMap;
use std::fmt;

/// Assembly-time errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A referenced label was never defined.
    UndefinedLabel(String),
    /// A label was defined twice.
    DuplicateLabel(String),
    /// A conditional-branch displacement exceeded ±32 KiB.
    BranchOutOfRange {
        /// The target label.
        label: String,
        /// Displacement in bytes.
        displacement: i64,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmError::BranchOutOfRange { label, displacement } => {
                write!(f, "branch to `{label}` out of range ({displacement} bytes)")
            }
        }
    }
}

impl std::error::Error for AsmError {}

#[derive(Debug, Clone)]
enum Item {
    Insn(Insn),
    /// `bc` with a label target to fix up.
    BcTo {
        bo: u8,
        bi: CrBit,
        label: String,
        lk: bool,
    },
    /// `b`/`bl` with a label target.
    BTo {
        label: String,
        lk: bool,
    },
    /// `addi rt,rt,lo(label)` following `lis rt,hi(label)`.
    LabelLo {
        rt: Gpr,
        label: String,
    },
    /// `lis rt,hi-adjusted(label)`.
    LabelHi {
        rt: Gpr,
        label: String,
    },
}

// The assembled image type is ISA-neutral and shared across guest
// frontends; it keeps its historical path here.
pub use daisy_isa::Program;

/// The assembler. Instructions append at increasing addresses from the
/// base; labels name the next instruction's address.
#[derive(Debug, Clone)]
pub struct Asm {
    base: u32,
    items: Vec<Item>,
    labels: HashMap<String, u32>,
    data: Vec<(u32, Vec<u8>)>,
    entry: Option<u32>,
    error: Option<AsmError>,
}

impl Asm {
    /// Starts assembling at `base` (must be word-aligned).
    pub fn new(base: u32) -> Asm {
        Asm {
            base: base & !3,
            items: Vec::new(),
            labels: HashMap::new(),
            data: Vec::new(),
            entry: None,
            error: None,
        }
    }

    /// Address the next emitted instruction will occupy.
    pub fn here(&self) -> u32 {
        self.base + 4 * self.items.len() as u32
    }

    /// Defines a label at the current position.
    pub fn label(&mut self, name: &str) {
        if self.labels.insert(name.to_owned(), self.here()).is_some() && self.error.is_none() {
            self.error = Some(AsmError::DuplicateLabel(name.to_owned()));
        }
    }

    /// Sets the entry point to the current position (defaults to `base`).
    pub fn entry_here(&mut self) {
        self.entry = Some(self.here());
    }

    /// Places raw bytes at an absolute address (outside the code stream).
    pub fn data(&mut self, addr: u32, bytes: &[u8]) {
        self.data.push((addr, bytes.to_vec()));
    }

    /// Places big-endian words at an absolute address.
    pub fn data_words(&mut self, addr: u32, words: &[u32]) {
        let mut bytes = Vec::with_capacity(words.len() * 4);
        for w in words {
            bytes.extend_from_slice(&w.to_be_bytes());
        }
        self.data.push((addr, bytes));
    }

    /// Emits an arbitrary instruction.
    pub fn emit(&mut self, insn: Insn) {
        self.items.push(Item::Insn(insn));
    }

    /// Emits a raw 32-bit word into the code stream (data-in-code).
    pub fn word(&mut self, w: u32) {
        self.items.push(Item::Insn(Insn::Invalid(w)));
    }

    /// Resolves labels and produces the [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`AsmError`] for undefined/duplicate labels or branch
    /// displacements that do not fit their encoding.
    pub fn finish(self) -> Result<Program, AsmError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        let lookup = |label: &str| -> Result<u32, AsmError> {
            self.labels
                .get(label)
                .copied()
                .ok_or_else(|| AsmError::UndefinedLabel(label.to_owned()))
        };
        let mut code = Vec::with_capacity(self.items.len());
        for (i, item) in self.items.iter().enumerate() {
            let pc = self.base + 4 * i as u32;
            let insn = match item {
                Item::Insn(insn) => *insn,
                Item::BcTo { bo, bi, label, lk } => {
                    let target = lookup(label)?;
                    let disp = i64::from(target) - i64::from(pc);
                    if disp > i64::from(i16::MAX) || disp < i64::from(i16::MIN) {
                        return Err(AsmError::BranchOutOfRange {
                            label: label.clone(),
                            displacement: disp,
                        });
                    }
                    Insn::BranchC { bo: *bo, bi: *bi, bd: disp as i16, aa: false, lk: *lk }
                }
                Item::BTo { label, lk } => {
                    let target = lookup(label)?;
                    let disp = i64::from(target) - i64::from(pc);
                    if !(-(1 << 25)..(1 << 25)).contains(&disp) {
                        return Err(AsmError::BranchOutOfRange {
                            label: label.clone(),
                            displacement: disp,
                        });
                    }
                    Insn::BranchI { li: disp as i32, aa: false, lk: *lk }
                }
                Item::LabelHi { rt, label } => {
                    let v = lookup(label)?;
                    // Adjust for the sign of the low half added later.
                    let hi = (v.wrapping_add(0x8000) >> 16) as i16;
                    Insn::Addis { rt: *rt, ra: Gpr(0), si: hi }
                }
                Item::LabelLo { rt, label } => {
                    let v = lookup(label)?;
                    Insn::Addi { rt: *rt, ra: *rt, si: (v & 0xFFFF) as u16 as i16 }
                }
            };
            code.push(encode(&insn));
        }
        Ok(Program {
            base: self.base,
            entry: self.entry.unwrap_or(self.base),
            code,
            data: self.data,
            labels: self.labels,
        })
    }

    // ---- Mnemonics ------------------------------------------------------

    /// `li rt,imm` (`addi rt,0,imm`).
    pub fn li(&mut self, rt: Gpr, imm: i16) {
        self.emit(Insn::Addi { rt, ra: Gpr(0), si: imm });
    }

    /// `lis rt,imm` (`addis rt,0,imm`).
    pub fn lis(&mut self, rt: Gpr, imm: i16) {
        self.emit(Insn::Addis { rt, ra: Gpr(0), si: imm });
    }

    /// Loads a full 32-bit constant with `lis`+`ori`.
    pub fn li32(&mut self, rt: Gpr, v: u32) {
        if let Ok(si) = i16::try_from(v as i32) {
            self.li(rt, si);
        } else {
            self.lis(rt, (v >> 16) as i16);
            if v & 0xFFFF != 0 {
                self.ori(rt, rt, (v & 0xFFFF) as u16);
            }
        }
    }

    /// Loads the address of a label (`lis`+`addi` pair, fixed up at finish).
    pub fn la(&mut self, rt: Gpr, label: &str) {
        self.items.push(Item::LabelHi { rt, label: label.to_owned() });
        self.items.push(Item::LabelLo { rt, label: label.to_owned() });
    }

    /// `mr rt,rs` (`or rt,rs,rs`).
    pub fn mr(&mut self, rt: Gpr, rs: Gpr) {
        self.emit(Insn::Logic { op: LogicOp::Or, ra: rt, rs, rb: rs, rc: false });
    }

    /// `nop` (`ori r0,r0,0`).
    pub fn nop(&mut self) {
        self.ori(Gpr(0), Gpr(0), 0);
    }

    /// `addi rt,ra,imm`.
    pub fn addi(&mut self, rt: Gpr, ra: Gpr, si: i16) {
        self.emit(Insn::Addi { rt, ra, si });
    }

    /// `addic rt,ra,imm` — the paper's `ai`, sets CA.
    pub fn addic(&mut self, rt: Gpr, ra: Gpr, si: i16) {
        self.emit(Insn::Addic { rt, ra, si, rc: false });
    }

    /// `addic. rt,ra,imm`.
    pub fn addic_(&mut self, rt: Gpr, ra: Gpr, si: i16) {
        self.emit(Insn::Addic { rt, ra, si, rc: true });
    }

    /// `subfic rt,ra,imm`.
    pub fn subfic(&mut self, rt: Gpr, ra: Gpr, si: i16) {
        self.emit(Insn::Subfic { rt, ra, si });
    }

    /// `mulli rt,ra,imm`.
    pub fn mulli(&mut self, rt: Gpr, ra: Gpr, si: i16) {
        self.emit(Insn::Mulli { rt, ra, si });
    }

    fn arith(&mut self, op: ArithOp, rt: Gpr, ra: Gpr, rb: Gpr) {
        self.emit(Insn::Arith { op, rt, ra, rb, oe: false, rc: false });
    }

    /// `add rt,ra,rb`.
    pub fn add(&mut self, rt: Gpr, ra: Gpr, rb: Gpr) {
        self.arith(ArithOp::Add, rt, ra, rb);
    }

    /// `add. rt,ra,rb`.
    pub fn add_(&mut self, rt: Gpr, ra: Gpr, rb: Gpr) {
        self.emit(Insn::Arith { op: ArithOp::Add, rt, ra, rb, oe: false, rc: true });
    }

    /// `addc rt,ra,rb`.
    pub fn addc(&mut self, rt: Gpr, ra: Gpr, rb: Gpr) {
        self.arith(ArithOp::Addc, rt, ra, rb);
    }

    /// `adde rt,ra,rb`.
    pub fn adde(&mut self, rt: Gpr, ra: Gpr, rb: Gpr) {
        self.arith(ArithOp::Adde, rt, ra, rb);
    }

    /// `subf rt,ra,rb` (rt = rb − ra).
    pub fn subf(&mut self, rt: Gpr, ra: Gpr, rb: Gpr) {
        self.arith(ArithOp::Subf, rt, ra, rb);
    }

    /// `subf. rt,ra,rb`.
    pub fn subf_(&mut self, rt: Gpr, ra: Gpr, rb: Gpr) {
        self.emit(Insn::Arith { op: ArithOp::Subf, rt, ra, rb, oe: false, rc: true });
    }

    /// `subfc rt,ra,rb`.
    pub fn subfc(&mut self, rt: Gpr, ra: Gpr, rb: Gpr) {
        self.arith(ArithOp::Subfc, rt, ra, rb);
    }

    /// `subfe rt,ra,rb`.
    pub fn subfe(&mut self, rt: Gpr, ra: Gpr, rb: Gpr) {
        self.arith(ArithOp::Subfe, rt, ra, rb);
    }

    /// `mullw rt,ra,rb`.
    pub fn mullw(&mut self, rt: Gpr, ra: Gpr, rb: Gpr) {
        self.arith(ArithOp::Mullw, rt, ra, rb);
    }

    /// `mulhwu rt,ra,rb`.
    pub fn mulhwu(&mut self, rt: Gpr, ra: Gpr, rb: Gpr) {
        self.arith(ArithOp::Mulhwu, rt, ra, rb);
    }

    /// `divw rt,ra,rb`.
    pub fn divw(&mut self, rt: Gpr, ra: Gpr, rb: Gpr) {
        self.arith(ArithOp::Divw, rt, ra, rb);
    }

    /// `divwu rt,ra,rb`.
    pub fn divwu(&mut self, rt: Gpr, ra: Gpr, rb: Gpr) {
        self.arith(ArithOp::Divwu, rt, ra, rb);
    }

    /// `neg rt,ra`.
    pub fn neg(&mut self, rt: Gpr, ra: Gpr) {
        self.emit(Insn::Arith2 { op: Arith2Op::Neg, rt, ra, oe: false, rc: false });
    }

    /// `addze rt,ra`.
    pub fn addze(&mut self, rt: Gpr, ra: Gpr) {
        self.emit(Insn::Arith2 { op: Arith2Op::Addze, rt, ra, oe: false, rc: false });
    }

    fn logic(&mut self, op: LogicOp, ra: Gpr, rs: Gpr, rb: Gpr, rc: bool) {
        self.emit(Insn::Logic { op, ra, rs, rb, rc });
    }

    /// `and ra,rs,rb`.
    pub fn and(&mut self, ra: Gpr, rs: Gpr, rb: Gpr) {
        self.logic(LogicOp::And, ra, rs, rb, false);
    }

    /// `and. ra,rs,rb`.
    pub fn and_(&mut self, ra: Gpr, rs: Gpr, rb: Gpr) {
        self.logic(LogicOp::And, ra, rs, rb, true);
    }

    /// `or ra,rs,rb`.
    pub fn or(&mut self, ra: Gpr, rs: Gpr, rb: Gpr) {
        self.logic(LogicOp::Or, ra, rs, rb, false);
    }

    /// `xor ra,rs,rb`.
    pub fn xor(&mut self, ra: Gpr, rs: Gpr, rb: Gpr) {
        self.logic(LogicOp::Xor, ra, rs, rb, false);
    }

    /// `nor ra,rs,rb` (`not` when rs == rb).
    pub fn nor(&mut self, ra: Gpr, rs: Gpr, rb: Gpr) {
        self.logic(LogicOp::Nor, ra, rs, rb, false);
    }

    /// `andc ra,rs,rb`.
    pub fn andc(&mut self, ra: Gpr, rs: Gpr, rb: Gpr) {
        self.logic(LogicOp::Andc, ra, rs, rb, false);
    }

    /// `andi. ra,rs,ui`.
    pub fn andi_(&mut self, ra: Gpr, rs: Gpr, ui: u16) {
        self.emit(Insn::LogicImm { op: LogicImmOp::Andi, ra, rs, ui });
    }

    /// `ori ra,rs,ui`.
    pub fn ori(&mut self, ra: Gpr, rs: Gpr, ui: u16) {
        self.emit(Insn::LogicImm { op: LogicImmOp::Ori, ra, rs, ui });
    }

    /// `xori ra,rs,ui`.
    pub fn xori(&mut self, ra: Gpr, rs: Gpr, ui: u16) {
        self.emit(Insn::LogicImm { op: LogicImmOp::Xori, ra, rs, ui });
    }

    /// `slw ra,rs,rb`.
    pub fn slw(&mut self, ra: Gpr, rs: Gpr, rb: Gpr) {
        self.emit(Insn::Shift { op: ShiftOp::Slw, ra, rs, rb, rc: false });
    }

    /// `srw ra,rs,rb`.
    pub fn srw(&mut self, ra: Gpr, rs: Gpr, rb: Gpr) {
        self.emit(Insn::Shift { op: ShiftOp::Srw, ra, rs, rb, rc: false });
    }

    /// `sraw ra,rs,rb`.
    pub fn sraw(&mut self, ra: Gpr, rs: Gpr, rb: Gpr) {
        self.emit(Insn::Shift { op: ShiftOp::Sraw, ra, rs, rb, rc: false });
    }

    /// `srawi ra,rs,sh`.
    pub fn srawi(&mut self, ra: Gpr, rs: Gpr, sh: u8) {
        self.emit(Insn::Srawi { ra, rs, sh, rc: false });
    }

    /// `slwi ra,rs,sh` (`rlwinm ra,rs,sh,0,31-sh`).
    pub fn slwi(&mut self, ra: Gpr, rs: Gpr, sh: u8) {
        self.emit(Insn::Rlwinm { ra, rs, sh, mb: 0, me: 31 - sh, rc: false });
    }

    /// `srwi ra,rs,sh` (`rlwinm ra,rs,32-sh,sh,31`).
    pub fn srwi(&mut self, ra: Gpr, rs: Gpr, sh: u8) {
        self.emit(Insn::Rlwinm { ra, rs, sh: (32 - sh) & 31, mb: sh, me: 31, rc: false });
    }

    /// `clrlwi ra,rs,n` — clear left n bits.
    pub fn clrlwi(&mut self, ra: Gpr, rs: Gpr, n: u8) {
        self.emit(Insn::Rlwinm { ra, rs, sh: 0, mb: n, me: 31, rc: false });
    }

    /// `rlwinm ra,rs,sh,mb,me`.
    pub fn rlwinm(&mut self, ra: Gpr, rs: Gpr, sh: u8, mb: u8, me: u8) {
        self.emit(Insn::Rlwinm { ra, rs, sh, mb, me, rc: false });
    }

    /// `cntlzw ra,rs`.
    pub fn cntlzw(&mut self, ra: Gpr, rs: Gpr) {
        self.emit(Insn::Unary { op: UnaryOp::Cntlzw, ra, rs, rc: false });
    }

    /// `extsb ra,rs`.
    pub fn extsb(&mut self, ra: Gpr, rs: Gpr) {
        self.emit(Insn::Unary { op: UnaryOp::Extsb, ra, rs, rc: false });
    }

    /// `extsh ra,rs`.
    pub fn extsh(&mut self, ra: Gpr, rs: Gpr) {
        self.emit(Insn::Unary { op: UnaryOp::Extsh, ra, rs, rc: false });
    }

    /// `cmpw bf,ra,rb`.
    pub fn cmpw(&mut self, bf: CrField, ra: Gpr, rb: Gpr) {
        self.emit(Insn::Cmp { bf, signed: true, ra, rb });
    }

    /// `cmplw bf,ra,rb`.
    pub fn cmplw(&mut self, bf: CrField, ra: Gpr, rb: Gpr) {
        self.emit(Insn::Cmp { bf, signed: false, ra, rb });
    }

    /// `cmpwi bf,ra,imm`.
    pub fn cmpwi(&mut self, bf: CrField, ra: Gpr, imm: i16) {
        self.emit(Insn::CmpImm { bf, signed: true, ra, imm: i32::from(imm) });
    }

    /// `cmplwi bf,ra,imm`.
    pub fn cmplwi(&mut self, bf: CrField, ra: Gpr, imm: u16) {
        self.emit(Insn::CmpImm { bf, signed: false, ra, imm: i32::from(imm) });
    }

    fn dload(&mut self, width: MemWidth, algebraic: bool, rt: Gpr, d: i16, ra: Gpr, update: bool) {
        self.emit(Insn::Load { width, algebraic, update, indexed: false, rt, ra, rb: Gpr(0), d });
    }

    fn xloadi(&mut self, width: MemWidth, algebraic: bool, rt: Gpr, ra: Gpr, rb: Gpr) {
        self.emit(Insn::Load { width, algebraic, update: false, indexed: true, rt, ra, rb, d: 0 });
    }

    /// `lwz rt,d(ra)`.
    pub fn lwz(&mut self, rt: Gpr, d: i16, ra: Gpr) {
        self.dload(MemWidth::Word, false, rt, d, ra, false);
    }

    /// `lwzu rt,d(ra)`.
    pub fn lwzu(&mut self, rt: Gpr, d: i16, ra: Gpr) {
        self.dload(MemWidth::Word, false, rt, d, ra, true);
    }

    /// `lwzx rt,ra,rb`.
    pub fn lwzx(&mut self, rt: Gpr, ra: Gpr, rb: Gpr) {
        self.xloadi(MemWidth::Word, false, rt, ra, rb);
    }

    /// `lbz rt,d(ra)`.
    pub fn lbz(&mut self, rt: Gpr, d: i16, ra: Gpr) {
        self.dload(MemWidth::Byte, false, rt, d, ra, false);
    }

    /// `lbzu rt,d(ra)`.
    pub fn lbzu(&mut self, rt: Gpr, d: i16, ra: Gpr) {
        self.dload(MemWidth::Byte, false, rt, d, ra, true);
    }

    /// `lbzx rt,ra,rb`.
    pub fn lbzx(&mut self, rt: Gpr, ra: Gpr, rb: Gpr) {
        self.xloadi(MemWidth::Byte, false, rt, ra, rb);
    }

    /// `lhz rt,d(ra)`.
    pub fn lhz(&mut self, rt: Gpr, d: i16, ra: Gpr) {
        self.dload(MemWidth::Half, false, rt, d, ra, false);
    }

    /// `lha rt,d(ra)`.
    pub fn lha(&mut self, rt: Gpr, d: i16, ra: Gpr) {
        self.dload(MemWidth::Half, true, rt, d, ra, false);
    }

    /// `lhzx rt,ra,rb`.
    pub fn lhzx(&mut self, rt: Gpr, ra: Gpr, rb: Gpr) {
        self.xloadi(MemWidth::Half, false, rt, ra, rb);
    }

    fn dstore(&mut self, width: MemWidth, rs: Gpr, d: i16, ra: Gpr, update: bool) {
        self.emit(Insn::Store { width, update, indexed: false, rs, ra, rb: Gpr(0), d });
    }

    fn xstorei(&mut self, width: MemWidth, rs: Gpr, ra: Gpr, rb: Gpr) {
        self.emit(Insn::Store { width, update: false, indexed: true, rs, ra, rb, d: 0 });
    }

    /// `stw rs,d(ra)`.
    pub fn stw(&mut self, rs: Gpr, d: i16, ra: Gpr) {
        self.dstore(MemWidth::Word, rs, d, ra, false);
    }

    /// `stwu rs,d(ra)`.
    pub fn stwu(&mut self, rs: Gpr, d: i16, ra: Gpr) {
        self.dstore(MemWidth::Word, rs, d, ra, true);
    }

    /// `stwx rs,ra,rb`.
    pub fn stwx(&mut self, rs: Gpr, ra: Gpr, rb: Gpr) {
        self.xstorei(MemWidth::Word, rs, ra, rb);
    }

    /// `stb rs,d(ra)`.
    pub fn stb(&mut self, rs: Gpr, d: i16, ra: Gpr) {
        self.dstore(MemWidth::Byte, rs, d, ra, false);
    }

    /// `stbu rs,d(ra)`.
    pub fn stbu(&mut self, rs: Gpr, d: i16, ra: Gpr) {
        self.dstore(MemWidth::Byte, rs, d, ra, true);
    }

    /// `stbx rs,ra,rb`.
    pub fn stbx(&mut self, rs: Gpr, ra: Gpr, rb: Gpr) {
        self.xstorei(MemWidth::Byte, rs, ra, rb);
    }

    /// `sth rs,d(ra)`.
    pub fn sth(&mut self, rs: Gpr, d: i16, ra: Gpr) {
        self.dstore(MemWidth::Half, rs, d, ra, false);
    }

    /// `sthx rs,ra,rb`.
    pub fn sthx(&mut self, rs: Gpr, ra: Gpr, rb: Gpr) {
        self.xstorei(MemWidth::Half, rs, ra, rb);
    }

    /// `lmw rt,d(ra)`.
    pub fn lmw(&mut self, rt: Gpr, d: i16, ra: Gpr) {
        self.emit(Insn::Lmw { rt, ra, d });
    }

    /// `stmw rs,d(ra)`.
    pub fn stmw(&mut self, rs: Gpr, d: i16, ra: Gpr) {
        self.emit(Insn::Stmw { rs, ra, d });
    }

    /// `b label`.
    pub fn b(&mut self, label: &str) {
        self.items.push(Item::BTo { label: label.to_owned(), lk: false });
    }

    /// `bl label`.
    pub fn bl(&mut self, label: &str) {
        self.items.push(Item::BTo { label: label.to_owned(), lk: true });
    }

    /// `blr`.
    pub fn blr(&mut self) {
        self.emit(Insn::BranchClr { bo: bo::ALWAYS, bi: CrBit(0), lk: false });
    }

    /// `bctr`.
    pub fn bctr(&mut self) {
        self.emit(Insn::BranchCctr { bo: bo::ALWAYS, bi: CrBit(0), lk: false });
    }

    /// `bctrl`.
    pub fn bctrl(&mut self) {
        self.emit(Insn::BranchCctr { bo: bo::ALWAYS, bi: CrBit(0), lk: true });
    }

    /// Generic conditional branch to a label.
    pub fn bc(&mut self, bo_field: u8, bi: CrBit, label: &str) {
        self.items.push(Item::BcTo { bo: bo_field, bi, label: label.to_owned(), lk: false });
    }

    /// `beq bf,label`.
    pub fn beq(&mut self, bf: CrField, label: &str) {
        self.bc(bo::IF_TRUE, CrBit::new(bf, 2), label);
    }

    /// `bne bf,label`.
    pub fn bne(&mut self, bf: CrField, label: &str) {
        self.bc(bo::IF_FALSE, CrBit::new(bf, 2), label);
    }

    /// `blt bf,label`.
    pub fn blt(&mut self, bf: CrField, label: &str) {
        self.bc(bo::IF_TRUE, CrBit::new(bf, 0), label);
    }

    /// `bge bf,label`.
    pub fn bge(&mut self, bf: CrField, label: &str) {
        self.bc(bo::IF_FALSE, CrBit::new(bf, 0), label);
    }

    /// `bgt bf,label`.
    pub fn bgt(&mut self, bf: CrField, label: &str) {
        self.bc(bo::IF_TRUE, CrBit::new(bf, 1), label);
    }

    /// `ble bf,label`.
    pub fn ble(&mut self, bf: CrField, label: &str) {
        self.bc(bo::IF_FALSE, CrBit::new(bf, 1), label);
    }

    /// `bdnz label` — decrement CTR, branch if nonzero.
    pub fn bdnz(&mut self, label: &str) {
        self.bc(bo::DNZ, CrBit(0), label);
    }

    /// `bdz label` — decrement CTR, branch if zero.
    pub fn bdz(&mut self, label: &str) {
        self.bc(bo::DZ, CrBit(0), label);
    }

    /// `mflr rt`.
    pub fn mflr(&mut self, rt: Gpr) {
        self.emit(Insn::Mfspr { rt, spr: Spr::Lr });
    }

    /// `mtlr rs`.
    pub fn mtlr(&mut self, rs: Gpr) {
        self.emit(Insn::Mtspr { spr: Spr::Lr, rs });
    }

    /// `mfctr rt`.
    pub fn mfctr(&mut self, rt: Gpr) {
        self.emit(Insn::Mfspr { rt, spr: Spr::Ctr });
    }

    /// `mtctr rs`.
    pub fn mtctr(&mut self, rs: Gpr) {
        self.emit(Insn::Mtspr { spr: Spr::Ctr, rs });
    }

    /// `mfcr rt`.
    pub fn mfcr(&mut self, rt: Gpr) {
        self.emit(Insn::Mfcr { rt });
    }

    /// `mtcrf fxm,rs`.
    pub fn mtcrf(&mut self, fxm: u8, rs: Gpr) {
        self.emit(Insn::Mtcrf { fxm, rs });
    }

    /// `crand bt,ba,bb`.
    pub fn crand(&mut self, bt: CrBit, ba: CrBit, bb: CrBit) {
        self.emit(Insn::CrLogic { op: CrOp::And, bt, ba, bb });
    }

    /// `cror bt,ba,bb`.
    pub fn cror(&mut self, bt: CrBit, ba: CrBit, bb: CrBit) {
        self.emit(Insn::CrLogic { op: CrOp::Or, bt, ba, bb });
    }

    /// `sc`.
    pub fn sc(&mut self) {
        self.emit(Insn::Sc);
    }

    /// `rfi`.
    pub fn rfi(&mut self) {
        self.emit(Insn::Rfi);
    }

    /// `twi to,ra,si`.
    pub fn twi(&mut self, to: u8, ra: Gpr, si: i16) {
        self.emit(Insn::Twi { to, ra, si });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{Cpu, StopReason};
    use crate::mem::Memory;

    #[test]
    fn forward_and_backward_branches_resolve() {
        let mut a = Asm::new(0x1000);
        a.li(Gpr(3), 0);
        a.b("fwd");
        a.label("back");
        a.addi(Gpr(3), Gpr(3), 100);
        a.sc();
        a.label("fwd");
        a.addi(Gpr(3), Gpr(3), 1);
        a.b("back");
        let prog = a.finish().unwrap();

        let mut mem = Memory::new(0x10000);
        prog.load_into(&mut mem).unwrap();
        let mut cpu = Cpu::new(prog.entry);
        assert_eq!(cpu.run(&mut mem, 100).unwrap(), StopReason::Syscall);
        assert_eq!(cpu.gpr[3], 101);
    }

    #[test]
    fn undefined_label_errors() {
        let mut a = Asm::new(0);
        a.b("nowhere");
        assert_eq!(a.finish().unwrap_err(), AsmError::UndefinedLabel("nowhere".into()));
    }

    #[test]
    fn duplicate_label_errors() {
        let mut a = Asm::new(0);
        a.label("x");
        a.nop();
        a.label("x");
        assert!(matches!(a.finish(), Err(AsmError::DuplicateLabel(_))));
    }

    #[test]
    fn la_materializes_label_address() {
        let mut a = Asm::new(0x2000);
        a.la(Gpr(3), "target");
        a.sc();
        a.label("target");
        a.nop();
        let prog = a.finish().unwrap();
        let mut mem = Memory::new(0x10000);
        prog.load_into(&mut mem).unwrap();
        let mut cpu = Cpu::new(prog.entry);
        cpu.run(&mut mem, 10).unwrap();
        assert_eq!(cpu.gpr[3], prog.addr_of("target"));
    }

    #[test]
    fn li32_covers_large_values() {
        for v in [0u32, 1, 0x7FFF, 0x8000, 0xFFFF_FFFF, 0x1234_5678, 0x8000_0000] {
            let mut a = Asm::new(0x1000);
            a.li32(Gpr(3), v);
            a.sc();
            let prog = a.finish().unwrap();
            let mut mem = Memory::new(0x10000);
            prog.load_into(&mut mem).unwrap();
            let mut cpu = Cpu::new(prog.entry);
            cpu.run(&mut mem, 10).unwrap();
            assert_eq!(cpu.gpr[3], v, "li32({v:#x})");
        }
    }

    #[test]
    fn data_words_are_big_endian() {
        let mut a = Asm::new(0x1000);
        a.sc();
        a.data_words(0x4000, &[0x0102_0304]);
        let prog = a.finish().unwrap();
        let mut mem = Memory::new(0x10000);
        prog.load_into(&mut mem).unwrap();
        assert_eq!(mem.read_u8(0x4000).unwrap(), 1);
        assert_eq!(mem.read_u32(0x4000).unwrap(), 0x0102_0304);
    }

    #[test]
    fn call_and_return() {
        let mut a = Asm::new(0x1000);
        a.li(Gpr(3), 5);
        a.bl("double");
        a.bl("double");
        a.sc();
        a.label("double");
        a.add(Gpr(3), Gpr(3), Gpr(3));
        a.blr();
        let prog = a.finish().unwrap();
        let mut mem = Memory::new(0x10000);
        prog.load_into(&mut mem).unwrap();
        let mut cpu = Cpu::new(prog.entry);
        cpu.run(&mut mem, 100).unwrap();
        assert_eq!(cpu.gpr[3], 20);
    }
}
