//! RV32I ports of benchmark workloads, for cross-ISA differential
//! testing against the PowerPC suite.
//!
//! Each port runs the *same algorithm on the same input bytes* as its
//! `daisy-workloads` counterpart (inputs come from the shared
//! [`daisy_isa::synth`] generators), produces its scalar result in
//! `a0` (`x10`) where the PowerPC version uses `r3`, and lays out its
//! result memory identically — so a differential harness can compare
//! final observable state across guest ISAs, not just against each
//! ISA's own interpreter oracle.
//!
//! One porting constraint worth noting: `hist`'s weighted reduction
//! uses `mullw` on PowerPC, but RV32I has no multiply. The port
//! computes `count * bucket` by repeated addition (at most
//! Σ₀²⁵⁵ i ≈ 33 k extra adds), which wraps identically to `mullw`.

use crate::asm::Asm;
use crate::frontend::Rv32Isa;
use crate::insn::Xr;
use crate::interp::Cpu;
use daisy_isa::mem::Memory;
use daisy_isa::synth::prose;
use daisy_isa::{Program, Workload};

// x5..x17, skipping x10 (a0, the result register) for temporaries.
const A0: Xr = Xr(10);
const X0: Xr = Xr(0);

/// All RV32 workload ports.
pub fn all() -> Vec<Workload<Rv32Isa>> {
    vec![sieve(), hist(), cmp()]
}

/// Looks up one workload by name.
pub fn by_name(name: &str) -> Option<Workload<Rv32Isa>> {
    all().into_iter().find(|w| w.name == name)
}

// ---- c_sieve --------------------------------------------------------

mod sieve_consts {
    pub const FLAGS: u32 = 0x2_0000;
    pub const SIZE: u32 = 8190;
    pub const ITERS: i16 = 3;
}

fn sieve_build() -> Program {
    use sieve_consts::{FLAGS, ITERS, SIZE};
    let mut a = Asm::new(0x1000);
    let (count, iters, i, flag, prime, k, one, base, size, t) =
        (A0, Xr(16), Xr(5), Xr(6), Xr(7), Xr(8), Xr(9), Xr(14), Xr(15), Xr(12));

    a.li(count, 0);
    a.li(iters, i32::from(ITERS));
    a.li32(base, FLAGS);
    a.li32(size, SIZE);
    a.li(one, 1);

    a.label("outer");
    // memset(flags, 1, SIZE+1)
    a.li(i, 0);
    a.label("fill");
    a.add(t, base, i);
    a.sb(one, 0, t);
    a.addi(i, i, 1);
    a.ble(i, size, "fill");

    a.li(i, 0);
    a.label("scan");
    a.add(t, base, i);
    a.lbu(flag, 0, t);
    a.beq(flag, X0, "next");
    // prime = i + i + 3; k = i + prime
    a.add(prime, i, i);
    a.addi(prime, prime, 3);
    a.add(k, i, prime);
    a.label("clear");
    a.bgt(k, size, "counted");
    a.add(t, base, k);
    a.sb(X0, 0, t);
    a.add(k, k, prime);
    a.j("clear");
    a.label("counted");
    a.addi(count, count, 1);
    a.label("next");
    a.addi(i, i, 1);
    a.ble(i, size, "scan");

    a.addi(iters, iters, -1);
    a.bne(iters, X0, "outer");
    a.ecall();
    a.finish().expect("rv32 sieve assembles")
}

/// Rust recomputation of the sieve's prime count (matches the PowerPC
/// workload's expected value).
pub fn sieve_expected() -> u32 {
    use sieve_consts::{ITERS, SIZE};
    let n = SIZE as usize;
    let mut flags = vec![true; n + 1];
    let mut count = 0u32;
    for i in 0..=n {
        if flags[i] {
            let prime = i + i + 3;
            let mut k = i + prime;
            while k <= n {
                flags[k] = false;
                k += prime;
            }
            count += 1;
        }
    }
    count * u32::from(ITERS as u16)
}

fn sieve_check(cpu: &Cpu, _mem: &Memory) -> Result<(), String> {
    let want = sieve_expected();
    if cpu.x[10] == want {
        Ok(())
    } else {
        Err(format!("prime count: got {}, want {want}", cpu.x[10]))
    }
}

/// The Stanford sieve, ported from the PowerPC `c_sieve` workload.
pub fn sieve() -> Workload<Rv32Isa> {
    Workload {
        name: "c_sieve",
        mem_size: 0x4_0000,
        max_instrs: 20_000_000,
        build: sieve_build,
        check: sieve_check,
    }
}

// ---- hist -----------------------------------------------------------

mod hist_consts {
    pub const TEXT: u32 = 0x3_0000;
    pub const HIST: u32 = 0x3_8000;
    pub const LEN: usize = 24 * 1024;
    pub const SEED: u32 = 0xA11A_5E55;
}

/// Base address of the RV32 `hist` counter array (same layout as the
/// PowerPC workload's), for cross-ISA memory comparison.
pub const HIST_BASE: u32 = hist_consts::HIST;
/// Byte length of the `hist` counter array (256 word counters).
pub const HIST_BYTES: u32 = 256 * 4;

fn hist_build() -> Program {
    use hist_consts::{HIST, LEN, SEED, TEXT};
    let mut a = Asm::new(0x1000);
    let (sum, i, j, j4, v, k, t, base, len, hbase, lim) =
        (A0, Xr(5), Xr(6), Xr(7), Xr(8), Xr(13), Xr(12), Xr(14), Xr(15), Xr(16), Xr(17));

    a.li32(base, TEXT);
    a.li32(hbase, HIST);
    a.li32(len, LEN as u32);
    a.li(i, 0);

    a.label("loop");
    a.add(t, base, i);
    a.lbu(j, 0, t);
    a.slli(j4, j, 2);
    a.add(t, hbase, j4);
    a.lw(v, 0, t);
    a.addi(v, v, 1);
    a.sw(v, 0, t);
    a.addi(i, i, 1);
    a.blt(i, len, "loop");

    // Weighted reduction so the result depends on every bucket.
    // sum += hist[i] * i, with the multiply decomposed into i
    // repeated adds (RV32I has no mul); wraps identically to mullw.
    a.li(sum, 0);
    a.li(i, 0);
    a.li(lim, 256);
    a.label("reduce");
    a.slli(j4, i, 2);
    a.add(t, hbase, j4);
    a.lw(v, 0, t);
    a.beq(i, X0, "skip");
    a.li(k, 0);
    a.label("inner");
    a.add(sum, sum, v);
    a.addi(k, k, 1);
    a.blt(k, i, "inner");
    a.label("skip");
    a.addi(i, i, 1);
    a.blt(i, lim, "reduce");
    a.ecall();

    a.data(TEXT, &prose(LEN, SEED));
    a.finish().expect("rv32 hist assembles")
}

/// Rust recomputation of the weighted bucket sum (matches the PowerPC
/// workload's expected value).
pub fn hist_expected() -> u32 {
    use hist_consts::{LEN, SEED};
    let text = prose(LEN, SEED);
    let mut hist = [0u32; 256];
    for &c in &text {
        hist[c as usize] += 1;
    }
    hist.iter().enumerate().fold(0u32, |acc, (i, &n)| acc.wrapping_add(n.wrapping_mul(i as u32)))
}

fn hist_check(cpu: &Cpu, _mem: &Memory) -> Result<(), String> {
    let want = hist_expected();
    if cpu.x[10] == want {
        Ok(())
    } else {
        Err(format!("hist: got {}, want {want}", cpu.x[10]))
    }
}

/// Indirect histogram update, ported from the PowerPC `hist` workload.
pub fn hist() -> Workload<Rv32Isa> {
    Workload {
        name: "hist",
        mem_size: 0x6_0000,
        max_instrs: 10_000_000,
        build: hist_build,
        check: hist_check,
    }
}

// ---- cmp ------------------------------------------------------------

mod cmp_consts {
    pub const A: u32 = 0x3_0000;
    pub const B: u32 = 0x4_0000;
    pub const LEN: usize = 40 * 1024;
    pub const DIFF_AT: usize = LEN - 37;
    pub const SEED: u32 = 0xC0FF_EE01;
}

fn cmp_inputs() -> (Vec<u8>, Vec<u8>) {
    use cmp_consts::{DIFF_AT, LEN, SEED};
    let a = prose(LEN, SEED);
    let mut b = a.clone();
    b[DIFF_AT] ^= 0x20;
    (a, b)
}

fn cmp_build() -> Program {
    use cmp_consts::{A, B, LEN};
    let mut a = Asm::new(0x1000);
    let (res, i, ca, cb, t, t2, basea, baseb, len) =
        (A0, Xr(5), Xr(6), Xr(7), Xr(12), Xr(13), Xr(14), Xr(15), Xr(16));
    let (bufa, bufb) = cmp_inputs();

    a.li(i, 0);
    a.li32(basea, A);
    a.li32(baseb, B);
    a.li32(len, LEN as u32);

    a.label("loop");
    a.add(t, basea, i);
    a.lbu(ca, 0, t);
    a.add(t2, baseb, i);
    a.lbu(cb, 0, t2);
    a.bne(ca, cb, "found");
    a.addi(i, i, 1);
    a.blt(i, len, "loop");
    a.li(res, -1);
    a.ecall();
    a.label("found");
    a.mv(res, i);
    a.ecall();

    a.data(A, &bufa);
    a.data(B, &bufb);
    a.finish().expect("rv32 cmp assembles")
}

fn cmp_check(cpu: &Cpu, _mem: &Memory) -> Result<(), String> {
    use cmp_consts::DIFF_AT;
    if cpu.x[10] == DIFF_AT as u32 {
        Ok(())
    } else {
        Err(format!("cmp: got index {}, want {DIFF_AT}", cpu.x[10] as i32))
    }
}

/// Byte-wise buffer comparison, ported from the PowerPC `cmp` workload.
pub fn cmp() -> Workload<Rv32Isa> {
    Workload {
        name: "cmp",
        mem_size: 0x6_0000,
        max_instrs: 10_000_000,
        build: cmp_build,
        check: cmp_check,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_isa::StopReason;

    #[test]
    fn all_workloads_run_and_check_on_the_interpreter() {
        for w in all() {
            let prog = w.program();
            let mut mem = Memory::new(w.mem_size);
            prog.load_into(&mut mem).unwrap();
            let mut cpu = Cpu::new(prog.entry);
            let stop = cpu.run(&mut mem, w.max_instrs);
            assert_eq!(stop, StopReason::Syscall, "{} did not finish: {stop:?}", w.name);
            w.check(&cpu, &mem).unwrap_or_else(|e| panic!("{} failed check: {e}", w.name));
        }
    }

    #[test]
    fn recomputations_are_deterministic_and_nontrivial() {
        // The expected values must equal the PowerPC suite's: both
        // recomputations consume the same daisy_isa::synth inputs.
        // (The cross-ISA harness at the workspace root asserts the
        // equality directly.)
        assert!(sieve_expected() > 0);
        assert!(sieve_expected().is_multiple_of(u32::from(sieve_consts::ITERS as u16)));
        assert_ne!(hist_expected(), 0);
    }
}
