//! The template lowerer: [`PackedGroup`] → x86-64 bytes.
//!
//! Every parcel class has an inline template that reproduces the
//! packed engine's semantics instruction for instruction — same
//! wrapping arithmetic, same carry conventions, same big-endian
//! memory accesses, same counter increments. There are no runtime
//! helper calls: a compiled group touches only the register-file
//! array, guest memory, the path log, and the [`crate::ctx::JitCtx`]
//! counter block.
//!
//! Anything the templates cannot reproduce exactly is handled by
//! *refusal* (the whole group stays on the packed tier: oversized
//! groups, over-deep condition nesting) or by *bailing out* at run
//! time before any side effect (memory faults, stores to translated
//! pages, firing trap checks, failed load-verify commits) so the
//! packed engine can resume mid-group and produce the architecturally
//! identical outcome. Indirect exits carry an inline branch-target
//! cache probe; rerolled loops carry a per-entry back-edge budget
//! check; both fall back to the ordinary dispatcher exit on any miss.
//!
//! Register plan, fixed for the whole native run:
//!
//! | reg  | role                                        |
//! |------|---------------------------------------------|
//! | rbx  | [`crate::ctx::JitCtx`] pointer              |
//! | r12  | architected value array (`vals`)            |
//! | r13  | guest memory bytes base                     |
//! | r14  | path-log cursor (one byte per condition)    |
//! | r15d | `last_base` dedup register                  |
//! | rax, rcx, rdx, rsi, rdi | per-template scratch     |

use crate::asm::{
    Asm, Label, Mem, CC_A, CC_AE, CC_B, CC_C, CC_E, CC_G, CC_L, CC_NE, R12, R13, R14, R15, RAX,
    RBX, RCX, RDI, RDX, RSI,
};
use crate::ctx::{
    EXIT_BAIL, EXIT_BRANCH, EXIT_INDIRECT, EXIT_INTERP, OFF_BASE_INSTRS, OFF_BUDGET, OFF_CHAINED,
    OFF_CROSSPAGE, OFF_CROSSPAGE_VIA_CTR, OFF_CROSSPAGE_VIA_LR, OFF_CUR_GROUP, OFF_ENTRY_VLIWS,
    OFF_EXIT_A, OFF_EXIT_B, OFF_EXIT_KIND, OFF_HISTOGRAM, OFF_ICACHE_HITS, OFF_LOADS, OFF_LOG_BASE,
    OFF_ONPAGE, OFF_PENDING_BASE, OFF_PENDING_GEN, OFF_STORES, OFF_VLIWS,
};
use daisy_vliw::op::{CrOp, MemWidth, OpKind, Operation};
use daisy_vliw::packed::{OpClass, OpMeta, PackedCtrl, PackedGroup, BACKEDGE_VLIW_BUDGET};
use daisy_vliw::tree::IndirectVia;

/// Structural ceiling on lowered groups: bounds emitter recursion and
/// (with [`MAX_COND_DEPTH`]) the path log.
pub const MAX_NODES: usize = 2048;

/// Ceiling on conditional nesting along any root-to-leaf path of a
/// single VLIW. Enforced at lowering (refuse [`Refusal::TooLarge`])
/// so the path-log bound below is a static guarantee — compiled code
/// never checks log capacity at run time (an early exit there would
/// diverge from packed execution).
pub const MAX_COND_DEPTH: usize = 128;

/// Static path-log capacity: one byte per executed condition plus one
/// per taken back edge. Per group entry the back-edge budget bounds
/// executed VLIW entries by `BACKEDGE_VLIW_BUDGET + MAX_NODES + 2`
/// (once over budget, only forward — acyclic — progress remains), and
/// each entry logs at most `MAX_COND_DEPTH` condition bytes plus one
/// back-edge byte.
pub const LOG_CAPACITY: usize =
    (BACKEDGE_VLIW_BUDGET as usize + MAX_NODES + 2) * (MAX_COND_DEPTH + 1);

/// Why a group could not be lowered. Refusal is permanent for the
/// group (recorded by the tier) and never an error: execution simply
/// stays packed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Refusal {
    /// Contains a [`OpClass::General`] parcel (trap check or
    /// load-verify commit). Only issued when the general-parcel
    /// templates are ablated off ([`LowerParams::general_templates`]).
    GeneralParcel,
    /// Contains a bypassed-store load. Only issued when the
    /// general-parcel templates are ablated off (the pending-table
    /// templates handle it otherwise).
    BypassedStore,
    /// Node count exceeds [`MAX_NODES`], or conditional nesting
    /// exceeds [`MAX_COND_DEPTH`].
    TooLarge,
    /// The code arena is out of space.
    ArenaFull,
    /// The host cannot execute emitted code (non-x86-64 build).
    Unsupported,
    /// Predicted template coverage is below the tier's worthwhile
    /// threshold (issued by the tier before lowering, never here).
    NotWorthwhile,
}

impl Refusal {
    /// Number of variants (refusal-histogram size).
    pub const COUNT: usize = 6;

    /// All variants, in [`Refusal::index`] order (histogram labelling).
    pub const ALL: [Refusal; Refusal::COUNT] = [
        Refusal::GeneralParcel,
        Refusal::BypassedStore,
        Refusal::TooLarge,
        Refusal::ArenaFull,
        Refusal::Unsupported,
        Refusal::NotWorthwhile,
    ];

    /// Dense index for per-variant histograms.
    pub fn index(self) -> usize {
        match self {
            Refusal::GeneralParcel => 0,
            Refusal::BypassedStore => 1,
            Refusal::TooLarge => 2,
            Refusal::ArenaFull => 3,
            Refusal::Unsupported => 4,
            Refusal::NotWorthwhile => 5,
        }
    }

    /// Stable label for stats and traces.
    pub fn as_str(self) -> &'static str {
        match self {
            Refusal::GeneralParcel => "general-parcel",
            Refusal::BypassedStore => "bypassed-store",
            Refusal::TooLarge => "too-large",
            Refusal::ArenaFull => "arena-full",
            Refusal::Unsupported => "unsupported",
            Refusal::NotWorthwhile => "not-worthwhile",
        }
    }
}

/// Compile-time parameters of one group lowering.
#[derive(Debug, Clone, Copy)]
pub struct LowerParams {
    /// Registry id the compiled code writes to `JitCtx::cur_group`.
    pub group_id: u32,
    /// Guest entry address of the group (for on-page accounting).
    pub entry: u32,
    /// Guest page size used by dispatch-locality stats.
    pub page_size: u32,
    /// Guest memory size in bytes (bounds checks are compile-time
    /// immediates — the memory image never grows).
    pub mem_len: u32,
    /// log2 of the translated-bit granule of guest memory.
    pub mem_page_shift: u32,
    /// Absolute address the blob will be installed at.
    pub base: u64,
    /// Absolute address of the shared epilogue.
    pub epilogue: u64,
    /// Absolute address of the group's inline indirect-branch target
    /// cache, or 0 when the group has none (no indirect exits, or the
    /// cache is ablated off).
    pub ibtc_base: u64,
    /// Lower `General`-class parcels and bypassed-store loads with the
    /// pending-table templates; when false they refuse the group (the
    /// seed behavior, kept as an ablation lever).
    pub general_templates: bool,
}

/// One `Leave` exit emission: a patchable 5-byte `jmp` plus its chain
/// stub and fallback, all as offsets relative to the blob start.
#[derive(Debug, Clone, Copy)]
pub struct ExitSite {
    /// Chain-link slot this exit was lowered from.
    pub slot: u32,
    /// Guest target address.
    pub target: u32,
    /// Offset of the patchable `jmp` rel32 field.
    pub site: usize,
    /// Offset of the chain stub (patch target when linked).
    pub stub: usize,
    /// Offset of the stub's alive-pointer imm64 field.
    pub stub_alive_imm: usize,
    /// Offset of the stub's final `jmp` rel32 field (retargeted to the
    /// linked group's entry).
    pub stub_jmp: usize,
    /// Offset of the fallback exit-record sequence (patch target when
    /// unlinked).
    pub fallback: usize,
}

/// One potential runtime bail point (a memory parcel), identifying
/// where the packed engine must resume.
#[derive(Debug, Clone, Copy)]
pub struct BailSite {
    /// Absolute packed-node index being executed.
    pub node: u32,
    /// Absolute op-arena index of the bailing parcel.
    pub op: u32,
    /// `parcels_this_vliw` at the bail point (the current node's run
    /// is already counted, matching the packed engine's loop).
    pub parcels: u32,
}

/// A lowered group, ready to install.
#[derive(Debug)]
pub struct Lowered {
    /// The machine code (entry at offset 0).
    pub code: Vec<u8>,
    /// Patchable direct exits, one per `Leave` leaf.
    pub exits: Vec<ExitSite>,
    /// Runtime bail points; `JitCtx::exit_b` indexes this table.
    pub bails: Vec<BailSite>,
    /// Total parcels in the group (template-coverage accounting).
    pub parcels: u32,
}

struct PendingLeave {
    fallback_label: Label,
    site: usize,
    slot: u32,
    target: u32,
}

struct PendingBail {
    label: Label,
    node: u32,
    op: u32,
    parcels: u32,
}

/// One deferred back-edge budget-exit stub: a clean architected
/// `Branch` exit through the target VLIW's anchor, shared by every
/// back edge into that VLIW.
struct PendingBudgetExit {
    label: Label,
    /// Guest anchor of the back edge's target VLIW.
    anchor: u32,
}

struct Emitter<'a> {
    a: Asm,
    g: &'a PackedGroup,
    p: LowerParams,
    vliw_labels: Vec<Label>,
    leaves: Vec<PendingLeave>,
    bails: Vec<PendingBail>,
    budget_exits: Vec<PendingBudgetExit>,
}

fn ctx(off: i32) -> Mem {
    Mem::base_disp(RBX, off)
}

fn vreg(s: u8) -> Mem {
    Mem::base_disp(R12, 4 * i32::from(s))
}

/// Lowers `g` for installation at `p.base`. Pure byte generation — no
/// arena interaction; the caller installs and links.
pub fn lower(g: &PackedGroup, p: LowerParams) -> Result<Lowered, Refusal> {
    if g.nodes.len() > MAX_NODES {
        return Err(Refusal::TooLarge);
    }
    if !p.general_templates {
        for (op, m) in g.ops.iter().zip(&g.meta) {
            if m.class == OpClass::General {
                return Err(Refusal::GeneralParcel);
            }
            if op.bypassed_store {
                return Err(Refusal::BypassedStore);
            }
        }
    }
    // Static log bound: nested conditions deeper than MAX_COND_DEPTH
    // would void the LOG_CAPACITY guarantee (a runtime capacity check
    // is not an option — exiting early where packed would continue
    // diverges the statistics). Each VLIW's nodes form a tree, so a
    // plain DFS terminates.
    for &root in &g.roots {
        let mut stack = vec![(root as usize, 0usize)];
        while let Some((idx, depth)) = stack.pop() {
            if let PackedCtrl::Cond { taken, fall, .. } = g.nodes[idx].ctrl {
                if depth + 1 > MAX_COND_DEPTH {
                    return Err(Refusal::TooLarge);
                }
                stack.push((taken as usize, depth + 1));
                stack.push((fall as usize, depth + 1));
            }
        }
    }
    let mut e = Emitter {
        a: Asm::new(p.base),
        g,
        p,
        vliw_labels: Vec::new(),
        leaves: Vec::new(),
        bails: Vec::new(),
        budget_exits: Vec::new(),
    };
    e.vliw_labels = (0..g.roots.len()).map(|_| e.a.label()).collect();

    // Group entry: register for chain attribution, reset the path-log
    // cursor and the last_base dedup register (mirrors the packed
    // engine's per-dispatch `last_base = u32::MAX`), invalidate every
    // pending-table row written by earlier group entries (mirrors the
    // packed engine's per-dispatch pending reset), and snapshot the
    // back-edge budget limit `vliws-at-entry + BACKEDGE_VLIW_BUDGET`.
    e.a.mov_m32_imm(ctx(OFF_CUR_GROUP), p.group_id);
    e.a.mov_r64_m(R14, ctx(OFF_LOG_BASE));
    e.a.mov_r32_imm(R15, u32::MAX);
    e.a.inc_m64(ctx(OFF_PENDING_GEN));
    e.a.mov_r64_m(RAX, ctx(OFF_VLIWS));
    e.a.add_r64_imm(RAX, BACKEDGE_VLIW_BUDGET as i32);
    e.a.mov_m_r64(ctx(OFF_ENTRY_VLIWS), RAX);

    for (vi, &root) in g.roots.iter().enumerate() {
        let l = e.vliw_labels[vi];
        e.a.bind(l);
        // stats.vliws_executed += 1 (per tree instruction).
        e.a.inc_m64(ctx(OFF_VLIWS));
        e.emit_node(root as usize, 0);
    }
    let stub_offs = e.emit_deferred();

    let parcels = g.ops.len() as u32;
    let bails =
        e.bails.iter().map(|b| BailSite { node: b.node, op: b.op, parcels: b.parcels }).collect();
    let exits = e
        .leaves
        .iter()
        .zip(&stub_offs)
        .map(|(l, &(fallback, stub, stub_alive_imm, stub_jmp))| ExitSite {
            slot: l.slot,
            target: l.target,
            site: l.site,
            stub,
            stub_alive_imm,
            stub_jmp,
            fallback,
        })
        .collect();
    Ok(Lowered { code: e.a.finish(), exits, bails, parcels })
}

impl<'a> Emitter<'a> {
    /// Emits the fallbacks, chain stubs, and bail stubs referenced by
    /// the bodies; returns `(fallback, stub, alive_imm, stub_jmp)`
    /// offsets per leaf.
    fn emit_deferred(&mut self) -> Vec<(usize, usize, usize, usize)> {
        // Fallback + chain stub per Leave leaf. The stub is only
        // reachable once the tier patches the site, and its own final
        // jmp is patched to the target group's entry at the same time;
        // until then it points harmlessly at the epilogue.
        let mut stub_offs = Vec::with_capacity(self.leaves.len());
        let leaves = std::mem::take(&mut self.leaves);
        for l in &leaves {
            let fallback = self.a.pos();
            self.a.bind(l.fallback_label);
            self.a.mov_m32_imm(ctx(OFF_EXIT_KIND), EXIT_BRANCH);
            self.a.mov_m32_imm(ctx(OFF_EXIT_A), l.target);
            self.a.mov_m32_imm(ctx(OFF_EXIT_B), l.slot);
            self.a.jmp_abs(self.p.epilogue);

            let stub = self.a.pos();
            // Budget: stop following edges once the VLIW quota is
            // spent, returning control to the dispatcher.
            self.a.mov_r64_m(RAX, ctx(OFF_VLIWS));
            self.a.cmp_r64_m(RAX, ctx(OFF_BUDGET));
            self.a.jcc(CC_AE, l.fallback_label);
            // Aliveness: the imm64 is patched to the target's alive
            // byte; a dead target (invalidated, cast out, or
            // retranslated) routes back through the VMM like a severed
            // weak link.
            let alive_imm = self.a.mov_r64_imm(RAX, 0);
            self.a.cmp_m8_imm(Mem::base_disp(RAX, 0), 0);
            self.a.jcc(CC_E, l.fallback_label);
            // This follow is a chained dispatch; its page locality is
            // known statically (both entries are compile-time guest
            // addresses).
            self.a.inc_m64(ctx(OFF_CHAINED));
            let onpage = l.target / self.p.page_size == self.p.entry / self.p.page_size;
            self.a.inc_m64(ctx(if onpage { OFF_ONPAGE } else { OFF_CROSSPAGE }));
            let stub_jmp = self.a.jmp_abs(self.p.epilogue);
            stub_offs.push((fallback, stub, alive_imm, stub_jmp));
        }
        self.leaves = leaves;
        // Bail stubs: record which site bailed and return.
        let bails = std::mem::take(&mut self.bails);
        for (i, b) in bails.iter().enumerate() {
            self.a.bind(b.label);
            self.a.mov_m32_imm(ctx(OFF_EXIT_KIND), EXIT_BAIL);
            self.a.mov_m32_imm(ctx(OFF_EXIT_B), i as u32);
            self.a.jmp_abs(self.p.epilogue);
        }
        self.bails = bails;
        // Back-edge budget exits: a clean architected `Branch` through
        // the loop header's anchor (state is complete at every VLIW
        // boundary, so this is an ordinary group exit, not a bail).
        // `exit_b = u32::MAX` marks "no chain slot": the anchor is a
        // VLIW root, not an entry of the exit-target table.
        let budget_exits = std::mem::take(&mut self.budget_exits);
        for pe in &budget_exits {
            self.a.bind(pe.label);
            self.a.mov_m32_imm(ctx(OFF_EXIT_KIND), EXIT_BRANCH);
            self.a.mov_m32_imm(ctx(OFF_EXIT_A), pe.anchor);
            self.a.mov_m32_imm(ctx(OFF_EXIT_B), u32::MAX);
            self.a.jmp_abs(self.p.epilogue);
        }
        self.budget_exits = budget_exits;
        stub_offs
    }

    /// Shared budget-exit stub for back edges into `vliw` (keyed by the
    /// target's anchor, so every back edge to one header shares it).
    fn budget_exit_label(&mut self, vliw: u32) -> Label {
        let anchor = self.g.anchor(vliw as usize);
        if let Some(pe) = self.budget_exits.iter().find(|pe| pe.anchor == anchor) {
            return pe.label;
        }
        let label = self.a.label();
        self.budget_exits.push(PendingBudgetExit { label, anchor });
        label
    }

    /// Inline indirect-branch target cache probe. On entry eax holds
    /// the masked guest target; on a hit the code performs the
    /// dispatcher's two steps — locality accounting for the indirect
    /// transfer, then a chained icache-hit dispatch — and jumps
    /// straight to the cached group's native entry. Any miss falls
    /// through to the ordinary indirect exit record, where the
    /// dispatcher counts exactly the same things itself, so the probe
    /// never changes statistics — only where they are counted.
    fn emit_ibtc_probe(&mut self, via: IndirectVia) {
        let miss = self.a.label();
        // Fully-associative probe: compare the target against every
        // row's tag (32-byte rows; rcx ends as the hit row's byte
        // offset). The table mirrors the dispatcher's icache
        // way-for-way, so the tag set here is exactly the dispatcher's
        // hit set.
        self.a.mov_r64_imm(RDX, self.p.ibtc_base);
        let found = self.a.label();
        let mut hit_rows = Vec::with_capacity(crate::IBTC_WAYS);
        for row in 0..crate::IBTC_WAYS {
            self.a.mov_r32_m(RSI, Mem::base_disp(RDX, (32 * row) as i32));
            self.a.cmp_rr32(RSI, RAX);
            let h = self.a.label();
            self.a.jcc(CC_E, h);
            hit_rows.push(h);
        }
        self.a.jmp(miss);
        for (row, h) in hit_rows.into_iter().enumerate() {
            self.a.bind(h);
            self.a.mov_r32_imm(RCX, (32 * row) as u32);
            if row + 1 != crate::IBTC_WAYS {
                self.a.jmp(found);
            }
        }
        self.a.bind(found);
        // Budget: stop chaining once the run quota is spent, so a hot
        // indirect loop still returns to the dispatcher (ladder,
        // timer, profiler preemption).
        self.a.mov_r64_m(RSI, ctx(OFF_VLIWS));
        self.a.cmp_r64_m(RSI, ctx(OFF_BUDGET));
        self.a.jcc(CC_AE, miss);
        // Aliveness of the cached target (retired groups flip it).
        self.a.mov_r64_m(RSI, Mem::base_index_disp(RDX, RCX, 8));
        self.a.cmp_m8_imm(Mem::base_disp(RSI, 0), 0);
        self.a.jcc(CC_E, miss);
        self.a.inc_m64(ctx(OFF_CHAINED));
        self.a.inc_m64(ctx(OFF_ICACHE_HITS));
        // Locality of the transfer: the dispatcher compares the target
        // page against the exiting group's entry page — a compile-time
        // constant here.
        let page_lo = (self.p.entry / self.p.page_size) * self.p.page_size;
        let crosspage = self.a.label();
        let go = self.a.label();
        self.a.mov_rr32(RSI, RAX);
        self.a.add_r32_imm(RSI, page_lo.wrapping_neg() as i32);
        self.a.cmp_r32_imm(RSI, self.p.page_size as i32);
        self.a.jcc(CC_AE, crosspage);
        self.a.inc_m64(ctx(OFF_ONPAGE));
        self.a.jmp(go);
        self.a.bind(crosspage);
        self.a.inc_m64(ctx(match via {
            IndirectVia::Lr => OFF_CROSSPAGE_VIA_LR,
            IndirectVia::Ctr => OFF_CROSSPAGE_VIA_CTR,
        }));
        self.a.bind(go);
        self.a.mov_r64_m(RSI, Mem::base_index_disp(RDX, RCX, 16));
        self.a.jmp_r64(RSI);
        self.a.bind(miss);
    }

    fn emit_node(&mut self, idx: usize, parcels_before: u32) {
        let n = self.g.nodes[idx];
        let parcels = parcels_before + n.len;
        for k in n.start..n.start + n.len {
            self.emit_parcel(idx as u32, k, parcels);
        }
        match n.ctrl {
            PackedCtrl::Cond { cond, taken, fall } => {
                // Every executed condition commits its originating
                // branch instruction (dedup'd via last_base), on both
                // paths — so commit before splitting.
                self.commit_base(cond.origin);
                self.a.mov_r32_m(RAX, vreg(cond.src.0));
                self.a.test_r32_imm(RAX, cond.mask);
                let t_label = self.a.label();
                self.a.jcc(if cond.want_set { CC_NE } else { CC_E }, t_label);
                // Not-taken path: log direction 0.
                self.a.mov_m8_imm(Mem::base_disp(R14, 0), 0);
                self.a.inc_r64(R14);
                self.emit_node(fall as usize, parcels);
                self.a.bind(t_label);
                self.a.mov_m8_imm(Mem::base_disp(R14, 0), 1);
                self.a.inc_r64(R14);
                self.emit_node(taken as usize, parcels);
            }
            PackedCtrl::Next { vliw } => {
                self.hist(parcels);
                let l = self.vliw_labels[vliw as usize];
                if vliw <= self.g.node_vliw(idx) {
                    // Backward edge (rerolled loop): check the
                    // per-entry budget first — once spent, leave the
                    // group through the target's anchor like any
                    // direct branch, so the dispatcher (ladder, timer,
                    // profiler) regains control. A taken back edge
                    // logs direction byte 2 (bail reconstruction must
                    // know the walk revisits nodes).
                    let stub = self.budget_exit_label(vliw);
                    self.a.mov_r64_m(RAX, ctx(OFF_VLIWS));
                    self.a.cmp_r64_m(RAX, ctx(OFF_ENTRY_VLIWS));
                    self.a.jcc(CC_AE, stub);
                    self.a.mov_m8_imm(Mem::base_disp(R14, 0), 2);
                    self.a.inc_r64(R14);
                }
                self.a.jmp(l);
            }
            PackedCtrl::Leave { target, slot } => {
                self.hist(parcels);
                let fallback_label = self.a.label();
                let site = self.a.pos() + 1; // rel32 field of the jmp
                self.a.jmp(fallback_label);
                self.leaves.push(PendingLeave { fallback_label, site, slot, target });
            }
            PackedCtrl::Indirect { src, via } => {
                self.hist(parcels);
                self.a.mov_r32_m(RAX, vreg(src.0));
                self.a.and_r32_imm(RAX, !3);
                if self.p.ibtc_base != 0 {
                    self.emit_ibtc_probe(via);
                }
                self.a.mov_m_r32(ctx(OFF_EXIT_A), RAX);
                self.a.mov_m32_imm(ctx(OFF_EXIT_KIND), EXIT_INDIRECT);
                let via_code = match via {
                    IndirectVia::Lr => 0,
                    IndirectVia::Ctr => 1,
                };
                self.a.mov_m32_imm(ctx(OFF_EXIT_B), via_code);
                self.a.jmp_abs(self.p.epilogue);
            }
            PackedCtrl::Interp { addr } => {
                self.hist(parcels);
                self.a.mov_m32_imm(ctx(OFF_EXIT_KIND), EXIT_INTERP);
                self.a.mov_m32_imm(ctx(OFF_EXIT_A), addr);
                self.a.jmp_abs(self.p.epilogue);
            }
        }
    }

    /// `issue_histogram[min(parcels, 24)] += 1` — the VLIW just
    /// finished; its parcel count along this emitted path is a
    /// compile-time constant.
    fn hist(&mut self, parcels: u32) {
        let bucket = parcels.min(24) as i32;
        self.a.inc_m64(ctx(OFF_HISTOGRAM + 8 * bucket));
    }

    /// `if last_base != addr { last_base = addr; base_instrs += 1 }`.
    fn commit_base(&mut self, addr: u32) {
        let skip = self.a.label();
        self.a.cmp_r32_imm(R15, addr as i32);
        self.a.jcc(CC_E, skip);
        self.a.mov_r32_imm(R15, addr);
        self.a.inc_m64(ctx(OFF_BASE_INSTRS));
        self.a.bind(skip);
    }

    fn bail_label(&mut self, node: u32, op: u32, parcels: u32) -> Label {
        let label = self.a.label();
        self.bails.push(PendingBail { label, node, op, parcels });
        label
    }

    fn emit_parcel(&mut self, node: u32, k: u32, parcels: u32) {
        let op = &self.g.ops[k as usize];
        let m = &self.g.meta[k as usize];
        match m.class {
            OpClass::Load => self.emit_load(op, m, node, k, parcels),
            OpClass::Store => self.emit_store(op, m, node, k, parcels),
            OpClass::General => self.emit_general(op, m, node, k, parcels),
            OpClass::SpecValue => {
                let carry = self.emit_value(op, m);
                self.store_results(m, carry);
                // Renamed destinations: no architected event, no commit.
            }
            _ => {
                let carry = self.emit_value(op, m);
                self.store_results(m, carry);
                if m.d1 != OpMeta::NONE {
                    self.commit_base(op.base_addr);
                }
            }
        }
    }

    /// `General`-class parcels: trap checks and load-verify commits
    /// (the only two shapes the scheduler produces in this class). An
    /// unrecognized shape bails statically — defensive, never reached
    /// today.
    fn emit_general(&mut self, op: &Operation, m: &OpMeta, node: u32, k: u32, parcels: u32) {
        if let OpKind::TrapIf { to } = op.kind {
            let bail = self.bail_label(node, k, parcels);
            self.a.mov_r32_m(RAX, vreg(m.s[0]));
            if m.nsrc > 1 {
                self.a.cmp_r32_m(RAX, vreg(m.s[1]));
            } else {
                self.a.cmp_r32_imm(RAX, op.imm);
            }
            // PowerPC TO bits: 16 = signed <, 8 = signed >, 4 = equal,
            // 2 = unsigned <, 1 = unsigned >. A firing trap raises a
            // precise exception only the packed engine can deliver —
            // bail pre-side-effect and let it re-evaluate the check.
            // Flags survive across jcc, so one cmp serves every bit.
            for (bit, cc) in [(16, CC_L), (8, CC_G), (4, CC_E), (2, CC_B), (1, CC_A)] {
                if to & bit != 0 {
                    self.a.jcc(cc, bail);
                }
            }
            // No fire: the check completes like any committed op.
            self.commit_base(op.base_addr);
        } else if op.is_commit && op.bypassed_store {
            self.emit_verify_commit(op, m, node, k, parcels);
        } else {
            let bail = self.bail_label(node, k, parcels);
            self.a.jmp(bail);
        }
    }

    /// Commit of a load that was moved above a store: re-read the
    /// recorded effective address and compare against the recorded
    /// value (the packed engine's pending-load verify). A stale
    /// generation means no pending load — the packed engine's
    /// `pending[s0] == None`. A mismatch means an aliasing store
    /// intervened: bail, and the packed engine re-runs the verify,
    /// counts the alias failure, and raises `AliasRestart` itself.
    /// On a match nothing is counted (the verify reload is not a
    /// load) and the row stays valid, exactly like the packed arm.
    fn emit_verify_commit(&mut self, op: &Operation, m: &OpMeta, node: u32, k: u32, parcels: u32) {
        let bail = self.bail_label(node, k, parcels);
        let row = 32 * i32::from(m.s[0]);
        let skip = self.a.label();
        self.a.mov_r64_m(RDX, ctx(OFF_PENDING_BASE));
        self.a.mov_r64_m(RAX, Mem::base_disp(RDX, row));
        self.a.cmp_r64_m(RAX, ctx(OFF_PENDING_GEN));
        self.a.jcc(CC_NE, skip);
        // Valid row: reload with the recorded width (runtime dispatch;
        // the address was bounds-checked by the original load and the
        // guest image never shrinks, so no bounds check here).
        self.a.mov_r32_m(RCX, Mem::base_disp(RDX, row + 8)); // ea
        self.a.mov_r32_m(RSI, Mem::base_disp(RDX, row + 16)); // meta
        let at = Mem::base_index(R13, RCX);
        let half = self.a.label();
        let byte = self.a.label();
        let join = self.a.label();
        self.a.mov_rr32(RDI, RSI);
        self.a.and_r32_imm(RDI, 3);
        self.a.test_rr32(RDI, RDI);
        self.a.jcc(CC_E, byte);
        self.a.cmp_r32_imm(RDI, 1);
        self.a.jcc(CC_E, half);
        self.a.mov_r32_m(RAX, at);
        self.a.bswap_r32(RAX);
        self.a.jmp(join);
        self.a.bind(half);
        self.a.movzx_r32_m16(RAX, at);
        self.a.ror_r16_imm(RAX, 8);
        self.a.test_r32_imm(RSI, 4); // algebraic?
        self.a.jcc(CC_E, join);
        self.a.movsx_r32_r16(RAX, RAX);
        self.a.jmp(join);
        self.a.bind(byte);
        // Byte reloads ignore the algebraic bit, like the packed
        // engine's byte loads.
        self.a.movzx_r32_m8(RAX, at);
        self.a.bind(join);
        self.a.cmp_r32_m(RAX, Mem::base_disp(RDX, row + 12));
        self.a.jcc(CC_NE, bail);
        self.a.bind(skip);
        // Value path of the commit, identical to a plain parcel.
        let carry = self.emit_value(op, m);
        self.store_results(m, carry);
        if !op.speculative && m.d1 != OpMeta::NONE {
            self.commit_base(op.base_addr);
        }
    }

    /// Writes eax to d1 and the carry (edx, or a fresh zero when the
    /// template produces none) to d2, mirroring the packed Value arm.
    fn store_results(&mut self, m: &OpMeta, carry_in_edx: bool) {
        if m.d1 != OpMeta::NONE {
            self.a.mov_m_r32(vreg(m.d1), RAX);
        }
        if m.d2 != OpMeta::NONE {
            if !carry_in_edx {
                self.a.xor_rr32(RDX, RDX);
            }
            self.a.mov_m_r32(vreg(m.d2), RDX);
        }
    }

    /// Effective address into ecx: sum of the value registers named by
    /// `srcs`, plus the signed displacement.
    fn ea_into_ecx(&mut self, srcs: &[u8], imm: i32) {
        match srcs.split_first() {
            None => self.a.mov_r32_imm(RCX, imm as u32),
            Some((first, rest)) => {
                self.a.mov_r32_m(RCX, vreg(*first));
                for s in rest {
                    self.a.add_r32_m(RCX, vreg(*s));
                }
                if imm != 0 {
                    self.a.add_r32_imm(RCX, imm);
                }
            }
        }
    }

    fn emit_load(&mut self, op: &Operation, m: &OpMeta, node: u32, k: u32, parcels: u32) {
        let OpKind::Load { width, algebraic } = op.kind else { unreachable!() };
        let bail = self.bail_label(node, k, parcels);
        self.ea_into_ecx(&m.s[..m.nsrc as usize], op.imm);
        // Bounds: ea > mem_len - width ⇔ ea + width > mem_len. Any
        // fault bails pre-side-effect; the packed engine resumes at
        // this parcel and raises (or poisons) exactly as it would have.
        self.a.cmp_r32_imm(RCX, (self.p.mem_len - width.bytes()) as i32);
        self.a.jcc(CC_A, bail);
        let at = Mem::base_index(R13, RCX);
        match width {
            // Byte loads zero-extend unconditionally (the packed
            // engine ignores `algebraic` for byte width).
            MemWidth::Byte => self.a.movzx_r32_m8(RAX, at),
            MemWidth::Half => {
                self.a.movzx_r32_m16(RAX, at);
                self.a.ror_r16_imm(RAX, 8); // big-endian
                if algebraic {
                    self.a.movsx_r32_r16(RAX, RAX);
                }
            }
            MemWidth::Word => {
                self.a.mov_r32_m(RAX, at);
                self.a.bswap_r32(RAX);
            }
        }
        self.a.inc_m64(ctx(OFF_LOADS));
        debug_assert!(m.d1 != OpMeta::NONE);
        self.a.mov_m_r32(vreg(m.d1), RAX);
        if op.bypassed_store {
            // Record the pending load for the later verify commit
            // (the packed engine's `scratch.pending[dest]`), tagged
            // with the current generation. ecx still holds the
            // effective address; eax the loaded value.
            let row = 32 * i32::from(m.d1);
            self.a.mov_r64_m(RDX, ctx(OFF_PENDING_BASE));
            self.a.mov_r64_m(RSI, ctx(OFF_PENDING_GEN));
            self.a.mov_m_r64(Mem::base_disp(RDX, row), RSI);
            self.a.mov_m_r32(Mem::base_disp(RDX, row + 8), RCX);
            self.a.mov_m_r32(Mem::base_disp(RDX, row + 12), RAX);
            let meta = match width {
                MemWidth::Byte => 0u32,
                MemWidth::Half => 1,
                MemWidth::Word => 2,
            } | if algebraic { 4 } else { 0 };
            self.a.mov_m32_imm(Mem::base_disp(RDX, row + 16), meta);
        }
        if !op.speculative {
            self.commit_base(op.base_addr);
        }
    }

    fn emit_store(&mut self, op: &Operation, m: &OpMeta, node: u32, k: u32, parcels: u32) {
        let OpKind::Store { width } = op.kind else { unreachable!() };
        let bail = self.bail_label(node, k, parcels);
        // Address from srcs[1..]; src0 is the value.
        self.ea_into_ecx(&m.s[1..m.nsrc as usize], op.imm);
        self.a.cmp_r32_imm(RCX, (self.p.mem_len - width.bytes()) as i32);
        self.a.jcc(CC_A, bail);
        // Translated-bit probe, *before* the write: a store into
        // translated code must take the packed engine's §3.2
        // CodeModified path, so the whole store re-executes there.
        self.a.mov_rr32(RAX, RCX);
        self.a.shr_r32_imm(RAX, self.p.mem_page_shift as u8);
        self.a.mov_r64_m(RDX, ctx(crate::ctx::OFF_TRANSLATED));
        self.a.cmp_m8_imm(Mem::base_index(RDX, RAX), 0);
        self.a.jcc(CC_NE, bail);
        if width.bytes() > 1 {
            self.a.lea_r32_m(RAX, Mem::base_disp(RCX, (width.bytes() - 1) as i32));
            self.a.shr_r32_imm(RAX, self.p.mem_page_shift as u8);
            self.a.cmp_m8_imm(Mem::base_index(RDX, RAX), 0);
            self.a.jcc(CC_NE, bail);
        }
        self.a.mov_r32_m(RAX, vreg(m.s[0]));
        let at = Mem::base_index(R13, RCX);
        match width {
            MemWidth::Byte => self.a.mov_m_r8(at, RAX),
            MemWidth::Half => {
                self.a.ror_r16_imm(RAX, 8);
                self.a.mov_m_r16(at, RAX);
            }
            MemWidth::Word => {
                self.a.bswap_r32(RAX);
                self.a.mov_m_r32(at, RAX);
            }
        }
        self.a.inc_m64(ctx(OFF_STORES));
        self.commit_base(op.base_addr);
    }

    /// Leaves the op's value in eax; returns true when edx holds the
    /// carry-out (0/1).
    fn emit_value(&mut self, op: &Operation, m: &OpMeta) -> bool {
        use OpKind::*;
        let s = |i: usize| vreg(m.s[i]);
        let a = &mut self.a;
        match op.kind {
            Nop => a.xor_rr32(RAX, RAX),
            Li => a.mov_r32_imm(RAX, op.imm as u32),
            Copy => a.mov_r32_m(RAX, s(0)),
            Add => {
                a.mov_r32_m(RAX, s(0));
                a.add_r32_m(RAX, s(1));
            }
            Subf => {
                a.mov_r32_m(RAX, s(1));
                a.sub_r32_m(RAX, s(0));
            }
            AddImm => {
                a.mov_r32_m(RAX, s(0));
                if op.imm != 0 {
                    a.add_r32_imm(RAX, op.imm);
                }
            }
            Mul => {
                a.mov_r32_m(RAX, s(0));
                a.imul_r32_m(RAX, s(1));
            }
            MulImm => a.imul_r32_m_imm(RAX, s(0), op.imm),
            Mulh => {
                a.mov_r32_m(RAX, s(0));
                a.mov_r32_m(RCX, s(1));
                a.imul_r32(RCX);
                a.mov_rr32(RAX, RDX);
            }
            Mulhu => {
                a.mov_r32_m(RAX, s(0));
                a.mov_r32_m(RCX, s(1));
                a.mul_r32(RCX);
                a.mov_rr32(RAX, RDX);
            }
            Div => {
                a.mov_r32_m(RAX, s(0));
                a.mov_r32_m(RCX, s(1));
                let zero = a.label();
                let go = a.label();
                let done = a.label();
                a.test_rr32(RCX, RCX);
                a.jcc(CC_E, zero);
                a.cmp_r32_imm(RCX, -1);
                a.jcc(CC_NE, go);
                a.cmp_r32_imm(RAX, i32::MIN);
                a.jcc(CC_E, zero);
                a.bind(go);
                a.cdq();
                a.idiv_r32(RCX);
                a.jmp(done);
                a.bind(zero);
                a.xor_rr32(RAX, RAX);
                a.bind(done);
            }
            Divu => {
                a.mov_r32_m(RAX, s(0));
                a.mov_r32_m(RCX, s(1));
                let zero = a.label();
                let done = a.label();
                a.test_rr32(RCX, RCX);
                a.jcc(CC_E, zero);
                a.xor_rr32(RDX, RDX);
                a.div_r32(RCX);
                a.jmp(done);
                a.bind(zero);
                a.xor_rr32(RAX, RAX);
                a.bind(done);
            }
            Neg => {
                a.mov_r32_m(RAX, s(0));
                a.neg_r32(RAX);
            }
            AddC => {
                a.mov_r32_m(RAX, s(0));
                a.add_r32_m(RAX, s(1));
                return set_carry(a);
            }
            AddE => {
                a.mov_r32_m(RAX, s(0));
                a.mov_r32_m(RCX, s(2));
                a.bt_r32_imm(RCX, 0);
                a.adc_r32_m(RAX, s(1));
                return set_carry(a);
            }
            SubfC => {
                // !a + b + 1 = b - a; carry-out ⇔ no borrow.
                a.mov_r32_m(RAX, s(1));
                a.sub_r32_m(RAX, s(0));
                a.setcc_r8(CC_AE, RDX);
                a.movzx_r32_r8(RDX, RDX);
                return true;
            }
            SubfE => {
                a.mov_r32_m(RAX, s(0));
                a.not_r32(RAX);
                a.mov_r32_m(RCX, s(2));
                a.bt_r32_imm(RCX, 0);
                a.adc_r32_m(RAX, s(1));
                return set_carry(a);
            }
            AddZe => {
                a.mov_r32_m(RAX, s(0));
                a.mov_r32_m(RCX, s(1));
                a.and_r32_imm(RCX, 1);
                a.add_rr32(RAX, RCX);
                return set_carry(a);
            }
            AddMe => {
                a.mov_r32_m(RAX, s(0));
                a.mov_r32_m(RCX, s(1));
                a.bt_r32_imm(RCX, 0);
                a.adc_r32_imm(RAX, -1);
                return set_carry(a);
            }
            SubfZe => {
                a.mov_r32_m(RAX, s(0));
                a.not_r32(RAX);
                a.mov_r32_m(RCX, s(1));
                a.and_r32_imm(RCX, 1);
                a.add_rr32(RAX, RCX);
                return set_carry(a);
            }
            SubfMe => {
                a.mov_r32_m(RAX, s(0));
                a.not_r32(RAX);
                a.mov_r32_m(RCX, s(1));
                a.bt_r32_imm(RCX, 0);
                a.adc_r32_imm(RAX, -1);
                return set_carry(a);
            }
            AddImmC => {
                a.mov_r32_m(RAX, s(0));
                a.add_r32_imm(RAX, op.imm);
                return set_carry(a);
            }
            SubfImmC => {
                // !a + imm + 1, via adc with a forced carry-in.
                a.mov_r32_m(RAX, s(0));
                a.not_r32(RAX);
                a.stc();
                a.adc_r32_imm(RAX, op.imm);
                return set_carry(a);
            }
            And => {
                a.mov_r32_m(RAX, s(0));
                a.and_r32_m(RAX, s(1));
            }
            Or => {
                a.mov_r32_m(RAX, s(0));
                a.or_r32_m(RAX, s(1));
            }
            Xor => {
                a.mov_r32_m(RAX, s(0));
                a.xor_r32_m(RAX, s(1));
            }
            Nand => {
                a.mov_r32_m(RAX, s(0));
                a.and_r32_m(RAX, s(1));
                a.not_r32(RAX);
            }
            Nor => {
                a.mov_r32_m(RAX, s(0));
                a.or_r32_m(RAX, s(1));
                a.not_r32(RAX);
            }
            Andc => {
                a.mov_r32_m(RCX, s(1));
                a.not_r32(RCX);
                a.mov_r32_m(RAX, s(0));
                a.and_rr32(RAX, RCX);
            }
            Orc => {
                a.mov_r32_m(RCX, s(1));
                a.not_r32(RCX);
                a.mov_r32_m(RAX, s(0));
                a.or_rr32(RAX, RCX);
            }
            Eqv => {
                a.mov_r32_m(RAX, s(0));
                a.xor_r32_m(RAX, s(1));
                a.not_r32(RAX);
            }
            AndImm => {
                a.mov_r32_m(RAX, s(0));
                a.and_r32_imm(RAX, op.imm2 as i32);
            }
            OrImm => {
                a.mov_r32_m(RAX, s(0));
                a.or_r32_imm(RAX, op.imm2 as i32);
            }
            XorImm => {
                a.mov_r32_m(RAX, s(0));
                a.xor_r32_imm(RAX, op.imm2 as i32);
            }
            Sll | Srl => {
                // n = src1 & 0x3F; result 0 when n ≥ 32 (x86 masks the
                // count to 5 bits, so patch over with a cmov).
                a.mov_r32_m(RCX, s(1));
                a.and_r32_imm(RCX, 0x3F);
                a.mov_r32_m(RAX, s(0));
                if matches!(op.kind, Sll) {
                    a.shl_r32_cl(RAX);
                } else {
                    a.shr_r32_cl(RAX);
                }
                a.xor_rr32(RDX, RDX);
                a.cmp_r32_imm(RCX, 32);
                a.cmovcc_rr32(CC_AE, RAX, RDX);
            }
            Sra => return emit_sra_reg(a, s(0), s(1)),
            SraImm => return emit_sra_imm(a, s(0), op.imm as u32 & 31),
            RotlImmMask => {
                a.mov_r32_m(RAX, s(0));
                let n = (op.imm as u32 & 31) as u8;
                if n != 0 {
                    a.rol_r32_imm(RAX, n);
                }
                a.and_r32_imm(RAX, op.imm2 as i32);
            }
            RotlRegMask => {
                a.mov_r32_m(RCX, s(1));
                a.mov_r32_m(RAX, s(0));
                a.rol_r32_cl(RAX); // hardware masks cl & 31, matching the semantics
                a.and_r32_imm(RAX, op.imm2 as i32);
            }
            RotlImmInsert => {
                a.mov_r32_m(RAX, s(0));
                let n = (op.imm as u32 & 31) as u8;
                if n != 0 {
                    a.rol_r32_imm(RAX, n);
                }
                a.and_r32_imm(RAX, op.imm2 as i32);
                a.mov_r32_m(RCX, s(1));
                a.and_r32_imm(RCX, !op.imm2 as i32);
                a.or_rr32(RAX, RCX);
            }
            Cntlz => {
                a.mov_r32_m(RCX, s(0));
                a.bsr_rr32(RDX, RCX); // ZF set when the source is 0
                a.mov_r32_imm(RAX, 32);
                let done = a.label();
                a.jcc(CC_E, done);
                a.mov_r32_imm(RAX, 31);
                a.sub_rr32(RAX, RDX);
                a.bind(done);
            }
            Extsb => {
                a.mov_r32_m(RAX, s(0));
                a.movsx_r32_r8(RAX, RAX);
            }
            Exts => {
                a.mov_r32_m(RAX, s(0));
                a.movsx_r32_r16(RAX, RAX);
            }
            CmpS | CmpU => {
                a.mov_r32_m(RCX, s(2));
                a.and_r32_imm(RCX, 1);
                a.mov_r32_m(RAX, s(0));
                a.cmp_r32_m(RAX, s(1));
                emit_compare_result(a, matches!(op.kind, CmpS));
            }
            CmpSImm | CmpUImm => {
                a.mov_r32_m(RCX, s(1));
                a.and_r32_imm(RCX, 1);
                a.mov_r32_m(RAX, s(0));
                a.cmp_r32_imm(RAX, op.imm);
                emit_compare_result(a, matches!(op.kind, CmpSImm));
            }
            CrBit { op: o, bt, ba, bb } => {
                a.mov_r32_m(RAX, s(0));
                a.shr_r32_imm(RAX, 3 - ba);
                a.and_r32_imm(RAX, 1);
                a.mov_r32_m(RCX, s(1));
                a.shr_r32_imm(RCX, 3 - bb);
                a.and_r32_imm(RCX, 1);
                match o {
                    CrOp::And => a.and_rr32(RAX, RCX),
                    CrOp::Or => a.or_rr32(RAX, RCX),
                    CrOp::Xor => a.xor_rr32(RAX, RCX),
                    CrOp::Nand => {
                        a.and_rr32(RAX, RCX);
                        a.xor_r32_imm(RAX, 1);
                    }
                    CrOp::Nor => {
                        a.or_rr32(RAX, RCX);
                        a.xor_r32_imm(RAX, 1);
                    }
                    CrOp::Eqv => {
                        a.xor_rr32(RAX, RCX);
                        a.xor_r32_imm(RAX, 1);
                    }
                    CrOp::Andc => {
                        a.xor_r32_imm(RCX, 1);
                        a.and_rr32(RAX, RCX);
                    }
                    CrOp::Orc => {
                        a.xor_r32_imm(RCX, 1);
                        a.or_rr32(RAX, RCX);
                    }
                }
                if bt != 3 {
                    a.shl_r32_imm(RAX, 3 - bt);
                }
                let mask = 1u32 << (3 - bt);
                a.mov_r32_m(RCX, s(2));
                a.and_r32_imm(RCX, !mask as i32);
                a.or_rr32(RAX, RCX);
            }
            ExtractField => {
                let sh = (4 * ((7 - op.imm as u32) & 7)) as u8;
                a.mov_r32_m(RAX, s(0));
                if sh != 0 {
                    a.shr_r32_imm(RAX, sh);
                }
                a.and_r32_imm(RAX, 0xF);
            }
            InsertField => {
                let sh = (4 * ((7 - op.imm as u32) & 7)) as u8;
                a.mov_r32_m(RCX, s(1));
                a.and_r32_imm(RCX, 0xF);
                if sh != 0 {
                    a.shl_r32_imm(RCX, sh);
                }
                a.mov_r32_m(RAX, s(0));
                a.or_rr32(RAX, RCX);
            }
            XerCompose => {
                a.mov_r32_m(RAX, s(0));
                a.and_r32_imm(RAX, 1);
                a.shl_r32_imm(RAX, 29);
                a.mov_r32_m(RCX, s(1));
                a.and_r32_imm(RCX, 1);
                a.shl_r32_imm(RCX, 30);
                a.or_rr32(RAX, RCX);
                a.mov_r32_m(RCX, s(2));
                a.shl_r32_imm(RCX, 31);
                a.or_rr32(RAX, RCX);
            }
            XerExtract => {
                a.mov_r32_m(RAX, s(0));
                let sh = (op.imm as u32 & 31) as u8;
                if sh != 0 {
                    a.shr_r32_imm(RAX, sh);
                }
                a.and_r32_imm(RAX, 1);
            }
            TrapIf { .. } | Load { .. } | Store { .. } => {
                unreachable!("handled by the dedicated memory/general templates")
            }
        }
        false
    }
}

/// Captures CF into edx as 0/1 right after the carry-producing
/// instruction.
fn set_carry(a: &mut Asm) -> bool {
    a.setcc_r8(CC_C, RDX);
    a.movzx_r32_r8(RDX, RDX);
    true
}

/// Materializes the packed `compare` result: eax = LT 0b1000 / GT
/// 0b0100 / EQ 0b0010, or'd with the summary-overflow bit already in
/// ecx. Flags from the preceding `cmp` are live on entry.
fn emit_compare_result(a: &mut Asm, signed: bool) {
    a.mov_r32_imm(RAX, 0b0010);
    a.mov_r32_imm(RDX, 0b1000);
    a.cmovcc_rr32(if signed { CC_L } else { CC_B }, RAX, RDX);
    a.mov_r32_imm(RDX, 0b0100);
    a.cmovcc_rr32(if signed { CC_G } else { CC_A }, RAX, RDX);
    a.or_rr32(RAX, RCX);
}

/// `sra` with a register count (`src1 & 0x3F`): result in eax, carry
/// in edx. Carry is set when the value is negative and 1-bits were
/// shifted out; for counts ≥ 32 that reduces to "negative".
fn emit_sra_reg(a: &mut Asm, src0: Mem, src1: Mem) -> bool {
    a.mov_r32_m(RCX, src1);
    a.and_r32_imm(RCX, 0x3F);
    a.mov_r32_m(RAX, src0);
    let big = a.label();
    let done = a.label();
    a.cmp_r32_imm(RCX, 32);
    a.jcc(CC_AE, big);
    // Small count: lost = n > 0 && (s & ((1 << n) - 1)) != 0 — with
    // n = 0 the mask is 0, so the n > 0 condition is implicit.
    a.mov_r32_imm(RSI, 1);
    a.shl_r32_cl(RSI);
    a.add_r32_imm(RSI, -1);
    a.and_rr32(RSI, RAX);
    a.xor_rr32(RDX, RDX);
    a.test_rr32(RSI, RSI);
    a.setcc_r8(CC_NE, RDX);
    a.mov_rr32(RDI, RAX);
    a.shr_r32_imm(RDI, 31);
    a.and_rr32(RDX, RDI);
    a.sar_r32_cl(RAX);
    a.jmp(done);
    a.bind(big);
    // Count ≥ 32: fill with the sign; carry ⇔ negative (a negative
    // value is never zero).
    a.mov_rr32(RDX, RAX);
    a.shr_r32_imm(RDX, 31);
    a.sar_r32_imm(RAX, 31);
    a.bind(done);
    true
}

/// `sra` with an immediate count already masked to 0..=31.
fn emit_sra_imm(a: &mut Asm, src0: Mem, n: u32) -> bool {
    a.mov_r32_m(RAX, src0);
    if n == 0 {
        a.xor_rr32(RDX, RDX);
        return true;
    }
    let mask = (1u32 << n) - 1;
    a.mov_rr32(RCX, RAX);
    a.and_r32_imm(RCX, mask as i32);
    a.xor_rr32(RDX, RDX);
    a.test_rr32(RCX, RCX);
    a.setcc_r8(CC_NE, RDX);
    a.mov_rr32(RCX, RAX);
    a.shr_r32_imm(RCX, 31);
    a.and_rr32(RDX, RCX);
    a.sar_r32_imm(RAX, n as u8);
    true
}
