//! The native host-code tier is an *observation-preserving* lowering:
//! running any program with hot groups compiled to x86-64 (chained
//! direct jumps included) must be indistinguishable from the packed
//! engine — same architected state, same memory image, same
//! [`RunStats`] to the counter, and the same structured [`TraceEvent`]
//! sequence once the native tier's own compile events are set aside.
//! On hosts without native support the builder falls back to packed
//! execution and the twins are trivially identical, so this suite runs
//! (and must pass) everywhere.

use daisy::inject::{run_campaign, CampaignConfig, FaultKind};
use daisy::stats::RunStats;
use daisy::system::DaisySystem;
use daisy::trace::{RingSink, TraceEvent};
use daisy_ppc::asm::{Asm, Program};
use daisy_ppc::insn::{bo, ArithOp, Insn};
use daisy_ppc::interp::StopReason;
use daisy_ppc::reg::{CrBit, CrField, Gpr};
use daisy_ppc::PpcIsa;
use daisy_workloads::Workload;
use proptest::prelude::*;

/// Dispatches before the tier compiles an entry. Low, so even short
/// workloads and generated programs reach compiled code.
const THRESHOLD: u64 = 2;

/// A finished run: the system plus its captured trace, with the native
/// tier's own compile events stripped (they are the one intentional
/// observable difference between the twins).
type TracedRun = (DaisySystem<PpcIsa>, Vec<TraceEvent>);

fn strip_native_events(events: Vec<TraceEvent>) -> Vec<TraceEvent> {
    events.into_iter().filter(|e| !matches!(e, TraceEvent::NativeCompile { .. })).collect()
}

fn assert_indistinguishable(
    (packed, packed_ev): &TracedRun,
    (native, native_ev): &TracedRun,
    ctx: &str,
) {
    assert_eq!(native.cpu.gpr, packed.cpu.gpr, "{ctx}: GPRs diverged");
    assert_eq!(native.cpu.cr, packed.cpu.cr, "{ctx}: CR diverged");
    assert_eq!(native.cpu.lr, packed.cpu.lr, "{ctx}: LR diverged");
    assert_eq!(native.cpu.ctr, packed.cpu.ctr, "{ctx}: CTR diverged");
    assert_eq!(native.cpu.xer, packed.cpu.xer, "{ctx}: XER diverged");
    assert_eq!(native.cpu.pc, packed.cpu.pc, "{ctx}: PC diverged");
    let size = packed.mem.size();
    assert_eq!(
        native.mem.read_bytes(0, size).unwrap(),
        packed.mem.read_bytes(0, size).unwrap(),
        "{ctx}: memory image diverged"
    );
    assert_eq!(native.stats, packed.stats, "{ctx}: RunStats diverged");
    assert_eq!(native_ev, packed_ev, "{ctx}: trace event sequences diverged");
}

// ---------------------------------------------------------------------
// The nine-workload suite.
// ---------------------------------------------------------------------

fn run_workload(w: &Workload, native: bool) -> TracedRun {
    let sink = RingSink::new(1 << 21);
    let mut sys = DaisySystem::<PpcIsa>::builder()
        .mem_size(w.mem_size)
        .native_execution(native)
        .native_threshold(THRESHOLD)
        .trace_sink(sink.clone())
        .build();
    sys.load(&w.program()).unwrap();
    let stop = sys.run(10 * w.max_instrs).unwrap();
    assert_eq!(stop, StopReason::Syscall, "{}: run did not finish", w.name);
    assert_eq!(sink.dropped(), 0, "{}: trace ring overflowed; grow the cap", w.name);
    (sys, strip_native_events(sink.events()))
}

#[test]
fn native_is_observably_the_packed_engine_on_every_workload() {
    for w in daisy_workloads::all() {
        let packed = run_workload(&w, false);
        let native = run_workload(&w, true);
        assert_indistinguishable(&packed, &native, w.name);
        // The workload's own semantic checker, on the native run.
        w.check(&native.0.cpu, &native.0.mem)
            .unwrap_or_else(|e| panic!("{}: checker failed under native tier: {e}", w.name));
        #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
        {
            assert!(native.0.native_enabled(), "{}: native tier should be active", w.name);
            let ns = native.0.native_stats().unwrap();
            assert!(ns.compiles > 0, "{}: native tier never compiled a group", w.name);
            assert!(ns.dispatches > 0, "{}: native tier never entered compiled code", w.name);
        }
    }
}

/// Configurations that keep every dispatcher boundary visible (per-group
/// profiler; timer ticks) must still be native≡packed — the tier runs
/// one group per dispatch there instead of chaining natively.
#[test]
fn native_matches_packed_with_boundary_observers() {
    let w = daisy_workloads::by_name("c_sieve").expect("sieve workload");
    let run = |native: bool, profiled: bool, timer: Option<u64>| {
        let sink = RingSink::new(1 << 21);
        let mut b = DaisySystem::<PpcIsa>::builder()
            .mem_size(w.mem_size)
            .native_execution(native)
            .native_threshold(THRESHOLD)
            .profiling(profiled)
            .trace_sink(sink.clone());
        if let Some(t) = timer {
            b = b.timer_period(t);
        }
        let mut sys = b.build();
        sys.load(&w.program()).unwrap();
        let stop = sys.run(10 * w.max_instrs).unwrap();
        assert_eq!(stop, StopReason::Syscall);
        (sys, strip_native_events(sink.events()))
    };
    for (profiled, timer) in [(true, None), (false, Some(4096)), (true, Some(4096))] {
        let packed = run(false, profiled, timer);
        let native = run(true, profiled, timer);
        let ctx = format!("profiled={profiled} timer={timer:?}");
        assert_indistinguishable(&packed, &native, &ctx);
    }
}

/// With chaining disabled every dispatch goes through the VMM; native
/// groups still run, but no edge is ever patched.
#[test]
fn native_matches_packed_without_chaining() {
    let w = daisy_workloads::by_name("wc").expect("wc workload");
    let run = |native: bool| {
        let sink = RingSink::new(1 << 21);
        let mut sys = DaisySystem::<PpcIsa>::builder()
            .mem_size(w.mem_size)
            .chaining(false)
            .native_execution(native)
            .native_threshold(THRESHOLD)
            .trace_sink(sink.clone())
            .build();
        sys.load(&w.program()).unwrap();
        let stop = sys.run(10 * w.max_instrs).unwrap();
        assert_eq!(stop, StopReason::Syscall);
        (sys, strip_native_events(sink.events()))
    };
    assert_indistinguishable(&run(false), &run(true), "chaining off");
}

// ---------------------------------------------------------------------
// Randomized programs (compact cousin of `prop_packed`'s generator:
// ALU work, CR-driven skips, CTR loops, calls through LR, loads and
// stores in a private data window, and trap parcels — the last lower
// through the general-parcel trap-check template, so generated runs
// exercise the never-taken trap fast path in compiled code).
// ---------------------------------------------------------------------

const DATA: u32 = 0x8000;
const SLOTS: u32 = 64;

#[derive(Debug, Clone)]
enum Step {
    Alu { op: u8, rt: u8, ra: u8, rb: u8, rc: bool },
    AddImm { rt: u8, ra: u8, imm: i16 },
    Cmp { bf: u8, signed: bool, ra: u8, rb: u8 },
    Load { width: u8, rt: u8, slot: u8 },
    Store { width: u8, rs: u8, slot: u8 },
    SkipIf { bf: u8, bit: u8, want: bool, skip: u8 },
    CtrLoop { count: u8, body_rt: u8 },
    Call { rt: u8, ra: u8, rb: u8 },
    Trap,
}

fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u8..6, 0u8..12, 0u8..12, 0u8..12, any::<bool>())
            .prop_map(|(op, rt, ra, rb, rc)| Step::Alu { op, rt, ra, rb, rc }),
        (0u8..12, 0u8..12, any::<i16>()).prop_map(|(rt, ra, imm)| Step::AddImm { rt, ra, imm }),
        (0u8..4, any::<bool>(), 0u8..12, 0u8..12).prop_map(|(bf, signed, ra, rb)| Step::Cmp {
            bf,
            signed,
            ra,
            rb
        }),
        (0u8..3, 0u8..12, 0u8..64).prop_map(|(width, rt, slot)| Step::Load { width, rt, slot }),
        (0u8..3, 0u8..12, 0u8..64).prop_map(|(width, rs, slot)| Step::Store { width, rs, slot }),
        (0u8..4, 0u8..4, any::<bool>(), 1u8..6).prop_map(|(bf, bit, want, skip)| Step::SkipIf {
            bf,
            bit,
            want,
            skip
        }),
        (1u8..6, 0u8..12).prop_map(|(count, body_rt)| Step::CtrLoop { count, body_rt }),
        (0u8..12, 0u8..12, 0u8..12).prop_map(|(rt, ra, rb)| Step::Call { rt, ra, rb }),
        Just(Step::Trap),
    ]
}

fn emit(a: &mut Asm, steps: &[Step]) {
    let base = Gpr(20);
    let mut label = 0usize;
    let mut fresh = || {
        label += 1;
        format!("l{label}")
    };
    a.li32(base, DATA);
    for s in steps {
        match *s {
            Step::Alu { op, rt, ra, rb, rc } => {
                let (rt, ra, rb) = (Gpr(rt), Gpr(ra), Gpr(rb));
                match op {
                    0 => a.emit(Insn::Arith { op: ArithOp::Add, rt, ra, rb, oe: false, rc }),
                    1 => a.emit(Insn::Arith { op: ArithOp::Subf, rt, ra, rb, oe: false, rc }),
                    2 => a.emit(Insn::Arith { op: ArithOp::Mullw, rt, ra, rb, oe: false, rc }),
                    3 => a.and(rt, ra, rb),
                    4 => a.or(rt, ra, rb),
                    _ => a.xor(rt, ra, rb),
                }
            }
            Step::AddImm { rt, ra, imm } => a.addi(Gpr(rt), Gpr(ra), imm),
            Step::Cmp { bf, signed, ra, rb } => {
                a.emit(Insn::Cmp { bf: CrField(bf), signed, ra: Gpr(ra), rb: Gpr(rb) });
            }
            Step::Load { width, rt, slot } => {
                let d = i16::from(slot) * 4;
                match width {
                    0 => a.lbz(Gpr(rt), d, base),
                    1 => a.lhz(Gpr(rt), d, base),
                    _ => a.lwz(Gpr(rt), d, base),
                }
            }
            Step::Store { width, rs, slot } => {
                let d = i16::from(slot) * 4;
                match width {
                    0 => a.stb(Gpr(rs), d, base),
                    1 => a.sth(Gpr(rs), d, base),
                    _ => a.stw(Gpr(rs), d, base),
                }
            }
            Step::SkipIf { bf, bit, want, skip } => {
                let l = fresh();
                let b = if want { bo::IF_TRUE } else { bo::IF_FALSE };
                a.bc(b, CrBit::new(CrField(bf), bit), &l);
                for i in 0..skip {
                    a.addi(Gpr(i % 12), Gpr((i + 1) % 12), 13);
                }
                a.label(&l);
            }
            Step::CtrLoop { count, body_rt } => {
                let l = fresh();
                a.li(Gpr(9), i16::from(count));
                a.mtctr(Gpr(9));
                a.label(&l);
                a.addi(Gpr(body_rt), Gpr(body_rt), 3);
                a.xor(Gpr((body_rt + 1) % 12), Gpr(body_rt), Gpr(9));
                a.bdnz(&l);
            }
            Step::Call { rt, ra, rb } => {
                let over = fresh();
                let func = fresh();
                a.b(&over);
                a.label(&func);
                a.add(Gpr(rt), Gpr(ra), Gpr(rb));
                a.blr();
                a.label(&over);
                a.bl(&func);
            }
            Step::Trap => {
                // Never fires; lowered by the general-parcel trap-check
                // template, so generated runs exercise it on real code.
                a.emit(Insn::Tw { to: 16, ra: Gpr(0), rb: Gpr(0) });
            }
        }
    }
    a.sc();
}

fn run_generated(prog: &Program, seeds: &[u32], native: bool) -> TracedRun {
    let sink = RingSink::new(1 << 21);
    let mut sys = DaisySystem::<PpcIsa>::builder()
        .mem_size(0x2_0000)
        .native_execution(native)
        .native_threshold(THRESHOLD)
        .trace_sink(sink.clone())
        .build();
    sys.load(prog).unwrap();
    for i in 0..SLOTS {
        sys.mem.write_u32(DATA + 4 * i, i.wrapping_mul(0x9E37_79B9)).unwrap();
    }
    for (i, s) in seeds.iter().enumerate().take(12) {
        sys.cpu.gpr[i] = *s;
    }
    let stop = sys.run(100_000_000).unwrap();
    assert_eq!(stop, StopReason::Syscall);
    assert_eq!(sink.dropped(), 0, "trace ring overflowed; grow the cap");
    (sys, strip_native_events(sink.events()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random programs: the native twin is indistinguishable from the
    /// packed twin.
    #[test]
    fn native_engine_is_observably_the_packed_engine(
        steps in prop::collection::vec(step(), 1..32),
        seeds in prop::collection::vec(any::<u32>(), 12),
    ) {
        let mut a = Asm::new(0x1000);
        emit(&mut a, &steps);
        let prog = a.finish().expect("generated program assembles");
        let packed = run_generated(&prog, &seeds, false);
        let native = run_generated(&prog, &seeds, true);
        assert_indistinguishable(&packed, &native, "generated program");
    }
}

// ---------------------------------------------------------------------
// Injection campaigns with the ladder starting at Native: every
// perturbation family stays bit-exact against the interpreter oracle
// while compiled code and patched native chains are live, and the
// §3.5/ladder recovery machinery runs unchanged above the new rung.
// ---------------------------------------------------------------------

#[test]
fn injection_campaigns_bit_exact_from_native_rung() {
    let w = daisy_workloads::by_name("c_sieve").expect("sieve workload");
    for kind in FaultKind::ALL {
        for seed in 0..3u64 {
            let cfg = CampaignConfig::new(kind, seed).with_native();
            let out = run_campaign(&w, &cfg)
                .unwrap_or_else(|e| panic!("native-rung campaign {kind} seed {seed}: {e}"));
            assert!(out.boundaries > 0, "{kind} seed {seed}: ran no groups");
        }
    }
}

/// `RunStats` must stay `PartialEq`-comparable for the twin checks
/// above to mean anything; pin it so a derive removal fails loudly.
#[test]
fn runstats_equality_is_structural() {
    assert_eq!(RunStats::default(), RunStats::default());
}
