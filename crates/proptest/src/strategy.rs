//! The `Strategy` trait and the combinators this workspace uses.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::Range;

/// A recipe for generating values of one type.
///
/// Unlike the real proptest there is no value tree and no shrinking:
/// a strategy is just a deterministic function of the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice between strategies of one value type.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; `arms` must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
