//! DAISY: dynamic compilation of PowerPC binaries to VLIW tree code.
//!
//! This crate is the paper's primary contribution — the Virtual Machine
//! Monitor (VMM) and its one-pass dynamic parallelizing translator:
//!
//! * [`convert`] — decodes base instructions into VLIW RISC primitives
//!   (CISCy operations like `lmw` decompose; `sc`, `rfi`, and privileged
//!   operations defer to the VMM).
//! * [`sched`] — the Pathlist scheduling algorithm of Chapter 2 and
//!   Appendix A: greedy, multi-path, one pass, renaming speculative
//!   results into non-architected registers and committing them in
//!   program order so exceptions stay precise.
//! * [`vmm`] — page-granular translation management of Chapter 3:
//!   translation cache, valid entry points, cross-page dispatch,
//!   invalidation on code modification.
//! * [`engine`] — executes translated tree instructions against the
//!   emulated machine, with exception tags, load-verify for speculative
//!   loads, and the cache hierarchy attached.
//! * [`precise`] — the table-free exception-address recovery of §3.5
//!   (forward matching of architected assignments).
//! * [`system`] — [`system::DaisySystem`] ties memory, VMM, engine, and
//!   emulated CPU state into a runnable whole.
//! * [`oracle`] — the oracle-parallelism schedulers of Chapter 6.
//! * [`overhead`] — the analytic compile-overhead model of §5.1.
//! * [`trace`] — structured observability: [`trace::TraceSink`] event
//!   taps, the per-group execution profiler, and the hot/cold
//!   translation tiers behind [`sched::TierPolicy`].
//! * [`profile`] — guest-level attribution (`perf` for the guest):
//!   per-guest-PC cycles, stalls, speculation waste, the §4.2
//!   VMM-overhead clock, and Chrome-trace / flamegraph / annotated
//!   disassembly exporters.
//! * [`error`] — typed faults: [`DaisyError`], and the graceful
//!   degradation ladder's [`Rung`]/[`Degradation`] vocabulary.
//! * [`inject`] — deterministic, seed-driven fault-injection campaigns
//!   diffed bit-for-bit against the reference interpreter.
//!
//! # Quick start
//!
//! ```
//! use daisy::prelude::*;
//!
//! let mut a = Asm::new(0x1000);
//! a.li(Gpr(3), 21);
//! a.add(Gpr(3), Gpr(3), Gpr(3));
//! a.sc();
//! let prog = a.finish().unwrap();
//!
//! let mut sys = DaisySystem::builder().mem_size(0x40000).build();
//! sys.load(&prog).unwrap();
//! sys.run(1_000_000).unwrap();
//! assert_eq!(sys.cpu.gpr[3], 42);
//! ```

#![warn(missing_docs)]
// Guest-reachable dispatch paths must surface faults as typed
// `DaisyError` / `Degradation` values, never panic. The few remaining
// `unwrap`/`expect` sites in non-test code are data-structure
// invariants, each carrying an explicit allow + `invariant:` note.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod convert;
pub mod engine;
pub mod error;
pub mod inject;
pub mod oracle;
pub mod overhead;
pub mod precise;
pub mod profile;
pub mod sched;
pub mod stats;
pub mod system;
pub mod trace;
pub mod vmm;

pub use error::{DaisyError, Degradation, DegradeCause, Rung};
pub use sched::{TierPolicy, TranslatorConfig};
pub use stats::RunStats;
pub use system::DaisySystem;
pub use vmm::Vmm;

/// Everything a typical harness needs in one import.
///
/// ```
/// use daisy::prelude::*;
///
/// let w: Workload = daisy_workloads::by_name("hist").unwrap();
/// let mut sys = DaisySystem::builder().mem_size(w.mem_size).build();
/// sys.load(&w.program()).unwrap();
/// ```
pub mod prelude {
    pub use crate::error::{DaisyError, Degradation, DegradeCause, Rung};
    pub use crate::profile::{GuestProfile, OverheadReport, PcStats, TimelineEvent};
    pub use crate::sched::{TierPolicy, TranslatorConfig};
    pub use crate::stats::{ChainStats, RunStats};
    pub use crate::system::{DaisySystem, DaisySystemBuilder};
    pub use crate::trace::{GroupProfiler, JsonlSink, NullSink, RingSink, TraceEvent, TraceSink};
    pub use daisy_cachesim::Hierarchy;
    pub use daisy_ppc::asm::Asm;
    pub use daisy_ppc::reg::Gpr;
    pub use daisy_workloads::Workload;
}
