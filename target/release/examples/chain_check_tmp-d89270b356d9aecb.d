/root/repo/target/release/examples/chain_check_tmp-d89270b356d9aecb.d: examples/chain_check_tmp.rs

/root/repo/target/release/examples/chain_check_tmp-d89270b356d9aecb: examples/chain_check_tmp.rs

examples/chain_check_tmp.rs:
