/root/repo/target/debug/examples/precise_exceptions-d3d26cf0fb4f2df4.d: examples/precise_exceptions.rs Cargo.toml

/root/repo/target/debug/examples/libprecise_exceptions-d3d26cf0fb4f2df4.rmeta: examples/precise_exceptions.rs Cargo.toml

examples/precise_exceptions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
