//! RISC primitive operations of the migrant VLIW and their semantics.
//!
//! The DAISY translator converts each base-architecture instruction into
//! one or more of these primitives (paper §2: "converted into RISC
//! primitives (if a CISCy operation)"). The operation set is a superset
//! of the PowerPC fixed-point primitives, plus emulation-support
//! operations the paper calls out in §2.2 and Appendix D:
//!
//! * `ExtractField` — the paper's `mtcrf2`, moving one 4-bit field,
//! * `XerExtract`/`XerCompose` — explicit CA/OV/SO bit manipulation so
//!   carry chains can rename (Appendix D's "extender bits"),
//! * explicit `Copy` commits that move speculative results into
//!   architected registers in original program order.
//!
//! [`eval`] gives the side-effect-free semantics of every non-memory
//! primitive, shared by the execution engine, the oracle scheduler, and
//! the baselines.

use crate::reg::Reg;
use std::fmt;

/// CR-logical operations (from PowerPC's op-19 family; the primitive
/// repertoire keeps them because they are ordinary 1-bit ALU ops).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrOp {
    /// `crand bt,ba,bb`
    And,
    /// `cror bt,ba,bb`
    Or,
    /// `crxor bt,ba,bb`
    Xor,
    /// `crnand bt,ba,bb`
    Nand,
    /// `crnor bt,ba,bb`
    Nor,
    /// `creqv bt,ba,bb`
    Eqv,
    /// `crandc bt,ba,bb`
    Andc,
    /// `crorc bt,ba,bb`
    Orc,
}

/// Access width of a load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// 1 byte.
    Byte,
    /// 2 bytes (big-endian).
    Half,
    /// 4 bytes (big-endian).
    Word,
}

impl MemWidth {
    /// Width in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            MemWidth::Byte => 1,
            MemWidth::Half => 2,
            MemWidth::Word => 4,
        }
    }
}

/// Rotate-left-word mask for `mb..me` in big-endian bit numbering
/// (bit 0 = MSB), with the wrap-around form when `mb > me`.
pub fn rlw_mask(mb: u8, me: u8) -> u32 {
    let m1 = 0xFFFF_FFFFu32 >> (mb & 31);
    let m2 = 0xFFFF_FFFFu32 << (31 - (me & 31));
    if mb <= me {
        m1 & m2
    } else {
        m1 | m2
    }
}

/// 4-bit condition value comparing `a` against `b` (LT/GT/EQ bits plus
/// a summary-overflow copy in the low bit).
#[inline]
pub fn compare(a: u32, b: u32, signed: bool, so: bool) -> u32 {
    let ord = if signed { (a as i32).cmp(&(b as i32)) } else { a.cmp(&b) };
    let base = match ord {
        std::cmp::Ordering::Less => 0b1000,
        std::cmp::Ordering::Greater => 0b0100,
        std::cmp::Ordering::Equal => 0b0010,
    };
    base | u32::from(so)
}

/// Evaluates a trap-word condition field against two operands.
#[inline]
pub fn trap_taken(to: u8, a: u32, b: u32) -> bool {
    let sa = a as i32;
    let sb = b as i32;
    (to & 16 != 0 && sa < sb)
        || (to & 8 != 0 && sa > sb)
        || (to & 4 != 0 && a == b)
        || (to & 2 != 0 && a < b)
        || (to & 1 != 0 && a > b)
}

/// The operation repertoire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// No operation (padding, valid-entry markers).
    Nop,
    /// `dest = imm`.
    Li,
    /// `dest = src0` — also the *commit* primitive.
    Copy,
    /// `dest = src0 + src1`.
    Add,
    /// `dest = src1 - src0` (PowerPC `subf` convention).
    Subf,
    /// `dest = src0 + imm`.
    AddImm,
    /// `dest = src0 * src1` (low 32 bits).
    Mul,
    /// `dest = src0 * imm` (low 32 bits, signed immediate).
    MulImm,
    /// Signed high 32 bits of the product.
    Mulh,
    /// Unsigned high 32 bits of the product.
    Mulhu,
    /// Signed division (0 on divide-by-zero/overflow, like PowerPC).
    Div,
    /// Unsigned division.
    Divu,
    /// `dest = -src0`.
    Neg,
    /// `dest = src0 + src1`, carry-out to dest2.
    AddC,
    /// `dest = src0 + src1 + src2(carry)`, carry-out to dest2.
    AddE,
    /// `dest = src1 - src0` with carry-out (PowerPC `subfc`).
    SubfC,
    /// `dest = ¬src0 + src1 + src2(carry)`, carry-out (PowerPC `subfe`).
    SubfE,
    /// `dest = src0 + src1(carry)`, carry-out (PowerPC `addze`).
    AddZe,
    /// `dest = src0 + src1(carry) - 1`, carry-out (PowerPC `addme`).
    AddMe,
    /// `dest = ¬src0 + src1(carry)`, carry-out (PowerPC `subfze`).
    SubfZe,
    /// `dest = ¬src0 + src1(carry) - 1`, carry-out (PowerPC `subfme`).
    SubfMe,
    /// `dest = src0 + imm`, carry-out to dest2 (PowerPC `addic`).
    AddImmC,
    /// `dest = imm - src0`, carry-out to dest2 (PowerPC `subfic`).
    SubfImmC,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Bitwise nand.
    Nand,
    /// Bitwise nor.
    Nor,
    /// `src0 & !src1`.
    Andc,
    /// `src0 | !src1`.
    Orc,
    /// `!(src0 ^ src1)`.
    Eqv,
    /// `src0 & imm2`.
    AndImm,
    /// `src0 | imm2`.
    OrImm,
    /// `src0 ^ imm2`.
    XorImm,
    /// Shift left by `src1 & 63` (0 if ≥ 32).
    Sll,
    /// Shift right logical by `src1 & 63`.
    Srl,
    /// Shift right algebraic by `src1 & 63`, carry-out to dest2.
    Sra,
    /// Shift right algebraic by `imm`, carry-out to dest2.
    SraImm,
    /// `rotl(src0, imm) & imm2` (rlwinm).
    RotlImmMask,
    /// `rotl(src0, src1 & 31) & imm2` (rlwnm).
    RotlRegMask,
    /// `(rotl(src0, imm) & imm2) | (src1 & !imm2)` (rlwimi).
    RotlImmInsert,
    /// Count leading zeros.
    Cntlz,
    /// Sign-extend byte.
    Extsb,
    /// Sign-extend halfword.
    Exts,
    /// Signed compare: `src0` vs `src1`, SO copy from `src2` → 4-bit field.
    CmpS,
    /// Unsigned compare.
    CmpU,
    /// Signed compare against `imm`, SO copy from `src1`.
    CmpSImm,
    /// Unsigned compare against `imm as u32`, SO copy from `src1`.
    CmpUImm,
    /// CR-logical on bits of fields: dest field gets bit `bt` updated
    /// from `op(src0[ba], src1[bb])`; `src2` is the old dest field.
    CrBit {
        /// The boolean operation.
        op: CrOp,
        /// Target bit within the destination field (0..4).
        bt: u8,
        /// Source bit within `src0`'s field.
        ba: u8,
        /// Source bit within `src1`'s field.
        bb: u8,
    },
    /// `dest(field) = (src0 >> (4*(7-imm))) & 0xF` — the paper's `mtcrf2`.
    ExtractField,
    /// `dest = src0 | ((src1 & 0xF) << (4*(7-imm)))` — mfcr accumulation.
    InsertField,
    /// `dest = (src0(CA) << 29) | (src1(OV) << 30) | (src2(SO) << 31)` — read XER.
    XerCompose,
    /// `dest = (src0 >> imm) & 1` — extract an XER bit to CA/OV/SO.
    XerExtract,
    /// Trap if `to`-condition holds between `src0` and `src1`
    /// (never speculative).
    TrapIf {
        /// The PowerPC TO condition field.
        to: u8,
    },
    /// Memory load.
    Load {
        /// Access width.
        width: MemWidth,
        /// Sign-extending (lha).
        algebraic: bool,
    },
    /// Memory store: value = src0, address = src1 (+ src2 if present) + imm.
    Store {
        /// Access width.
        width: MemWidth,
    },
}

impl OpKind {
    /// True for loads.
    pub fn is_load(self) -> bool {
        matches!(self, OpKind::Load { .. })
    }

    /// True for stores.
    pub fn is_store(self) -> bool {
        matches!(self, OpKind::Store { .. })
    }

    /// True for memory operations.
    pub fn is_mem(self) -> bool {
        self.is_load() || self.is_store()
    }
}

/// A scheduled RISC primitive: an operation plus its operands and the
/// bookkeeping DAISY needs (speculation flag, originating base-
/// architecture instruction, commit marker).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Operation {
    /// What to compute.
    pub kind: OpKind,
    /// Primary result register.
    pub dest: Option<Reg>,
    /// Secondary result (carry-out), renamed together with `dest`.
    pub dest2: Option<Reg>,
    srcs: [Reg; 3],
    nsrc: u8,
    /// Signed immediate (displacements, shift counts, compare values).
    pub imm: i32,
    /// Unsigned immediate (masks).
    pub imm2: u32,
    /// Executed out of order with a renamed destination: errors set the
    /// exception tag instead of faulting (paper §2.1).
    pub speculative: bool,
    /// A load that was moved above one or more stores and must be
    /// verified at commit (paper §2.1, Table 5.7).
    pub bypassed_store: bool,
    /// The base-architecture instruction address this primitive came from.
    pub base_addr: u32,
    /// True for the in-order commit copy of a renamed result.
    pub is_commit: bool,
}

impl Operation {
    /// Creates an operation with no operands.
    pub fn new(kind: OpKind, base_addr: u32) -> Operation {
        Operation {
            kind,
            dest: None,
            dest2: None,
            srcs: [Reg(0); 3],
            nsrc: 0,
            imm: 0,
            imm2: 0,
            speculative: false,
            bypassed_store: false,
            base_addr,
            is_commit: false,
        }
    }

    /// Sets the destination.
    #[must_use]
    pub fn dst(mut self, r: Reg) -> Operation {
        self.dest = Some(r);
        self
    }

    /// Sets the carry-out destination.
    #[must_use]
    pub fn dst2(mut self, r: Reg) -> Operation {
        self.dest2 = Some(r);
        self
    }

    /// Appends a source operand.
    ///
    /// # Panics
    ///
    /// Panics if more than three sources are added.
    #[must_use]
    pub fn src(mut self, r: Reg) -> Operation {
        assert!(self.nsrc < 3, "operation has at most 3 sources");
        self.srcs[self.nsrc as usize] = r;
        self.nsrc += 1;
        self
    }

    /// Sets the signed immediate.
    #[must_use]
    pub fn with_imm(mut self, v: i32) -> Operation {
        self.imm = v;
        self
    }

    /// Sets the mask immediate.
    #[must_use]
    pub fn with_imm2(mut self, v: u32) -> Operation {
        self.imm2 = v;
        self
    }

    /// The source operands.
    pub fn srcs(&self) -> &[Reg] {
        &self.srcs[..self.nsrc as usize]
    }

    /// Replaces source `i`.
    pub fn set_src(&mut self, i: usize, r: Reg) {
        assert!(i < self.nsrc as usize);
        self.srcs[i] = r;
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(d) = self.dest {
            write!(f, "{d}")?;
            if let Some(d2) = self.dest2 {
                write!(f, "/{d2}")?;
            }
            write!(f, " = ")?;
        }
        write!(f, "{:?}", self.kind)?;
        for (i, s) in self.srcs().iter().enumerate() {
            write!(f, "{}{s}", if i == 0 { " " } else { "," })?;
        }
        if self.imm != 0 {
            write!(f, " #{}", self.imm)?;
        }
        if self.imm2 != 0 {
            write!(f, " m{:#x}", self.imm2)?;
        }
        if self.speculative {
            write!(f, " (spec)")?;
        }
        if self.is_commit {
            write!(f, " (commit)")?;
        }
        Ok(())
    }
}

/// Result of evaluating a non-memory primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalOut {
    /// A value, with an optional carry-out for `dest2`.
    Value {
        /// The primary result.
        v: u32,
        /// Carry-out, when the op produces one.
        carry: Option<bool>,
    },
    /// A trap primitive: whether the trap fires.
    Trap(bool),
    /// Memory ops have no pure evaluation.
    Memory,
}

fn carry_sum(a: u32, b: u32, c: u32) -> (u32, bool) {
    let s = u64::from(a) + u64::from(b) + u64::from(c);
    (s as u32, s >> 32 != 0)
}

/// Evaluates an operation over its source values.
///
/// `vals[i]` is the runtime value of `op.srcs()[i]`. Memory operations
/// return [`EvalOut::Memory`]; use [`effective_address`] and the engine
/// for those.
///
/// Deliberately an outlined call: the reference tree engine keeps its
/// pre-packing code shape through this entry point, while the packed
/// hot loop uses [`eval_inline`].
///
/// # Panics
///
/// Panics if `vals` is shorter than the operation's source list.
pub fn eval(op: &Operation, vals: &[u32]) -> EvalOut {
    eval_impl(op, vals)
}

/// Inlining-guaranteed variant of [`eval`] for the packed engine's hot
/// loop — identical semantics, but the evaluation match is expanded at
/// the call site so primitive dispatch costs no function call.
///
/// # Panics
///
/// Panics if `vals` is shorter than the operation's source list.
#[inline(always)]
pub fn eval_inline(op: &Operation, vals: &[u32]) -> EvalOut {
    eval_impl(op, vals)
}

#[inline(always)]
fn eval_impl(op: &Operation, vals: &[u32]) -> EvalOut {
    use OpKind::*;
    let v = |i: usize| vals[i];
    let value = |x: u32| EvalOut::Value { v: x, carry: None };
    let with_carry = |(x, c): (u32, bool)| EvalOut::Value { v: x, carry: Some(c) };
    match op.kind {
        Nop => value(0),
        Li => value(op.imm as u32),
        Copy => value(v(0)),
        Add => value(v(0).wrapping_add(v(1))),
        Subf => value(v(1).wrapping_sub(v(0))),
        AddImm => value(v(0).wrapping_add(op.imm as u32)),
        Mul => value((v(0) as i32).wrapping_mul(v(1) as i32) as u32),
        MulImm => value((v(0) as i32).wrapping_mul(op.imm) as u32),
        Mulh => value(((i64::from(v(0) as i32) * i64::from(v(1) as i32)) >> 32) as u32),
        Mulhu => value(((u64::from(v(0)) * u64::from(v(1))) >> 32) as u32),
        Div => {
            let (a, b) = (v(0) as i32, v(1) as i32);
            value(if b == 0 || (a == i32::MIN && b == -1) { 0 } else { (a / b) as u32 })
        }
        Divu => value(if v(1) == 0 { 0 } else { v(0) / v(1) }),
        Neg => value((!v(0)).wrapping_add(1)),
        AddC => with_carry(carry_sum(v(0), v(1), 0)),
        AddE => with_carry(carry_sum(v(0), v(1), v(2) & 1)),
        SubfC => with_carry(carry_sum(!v(0), v(1), 1)),
        SubfE => with_carry(carry_sum(!v(0), v(1), v(2) & 1)),
        AddZe => with_carry(carry_sum(v(0), v(1) & 1, 0)),
        AddMe => with_carry(carry_sum(v(0), 0xFFFF_FFFF, v(1) & 1)),
        SubfZe => with_carry(carry_sum(!v(0), v(1) & 1, 0)),
        SubfMe => with_carry(carry_sum(!v(0), 0xFFFF_FFFF, v(1) & 1)),
        AddImmC => with_carry(carry_sum(v(0), op.imm as u32, 0)),
        SubfImmC => with_carry(carry_sum(!v(0), op.imm as u32, 1)),
        And => value(v(0) & v(1)),
        Or => value(v(0) | v(1)),
        Xor => value(v(0) ^ v(1)),
        Nand => value(!(v(0) & v(1))),
        Nor => value(!(v(0) | v(1))),
        Andc => value(v(0) & !v(1)),
        Orc => value(v(0) | !v(1)),
        Eqv => value(!(v(0) ^ v(1))),
        AndImm => value(v(0) & op.imm2),
        OrImm => value(v(0) | op.imm2),
        XorImm => value(v(0) ^ op.imm2),
        Sll => {
            let n = v(1) & 0x3F;
            value(if n >= 32 { 0 } else { v(0) << n })
        }
        Srl => {
            let n = v(1) & 0x3F;
            value(if n >= 32 { 0 } else { v(0) >> n })
        }
        Sra => with_carry(sra(v(0), v(1) & 0x3F)),
        SraImm => with_carry(sra(v(0), op.imm as u32 & 31)),
        RotlImmMask => value(v(0).rotate_left(op.imm as u32 & 31) & op.imm2),
        RotlRegMask => value(v(0).rotate_left(v(1) & 31) & op.imm2),
        RotlImmInsert => {
            value((v(0).rotate_left(op.imm as u32 & 31) & op.imm2) | (v(1) & !op.imm2))
        }
        Cntlz => value(v(0).leading_zeros()),
        Extsb => value(v(0) as u8 as i8 as i32 as u32),
        Exts => value(v(0) as u16 as i16 as i32 as u32),
        CmpS => value(compare(v(0), v(1), true, v(2) & 1 != 0)),
        CmpU => value(compare(v(0), v(1), false, v(2) & 1 != 0)),
        CmpSImm => value(compare(v(0), op.imm as u32, true, v(1) & 1 != 0)),
        CmpUImm => value(compare(v(0), op.imm as u32, false, v(1) & 1 != 0)),
        CrBit { op: o, bt, ba, bb } => {
            let bit = |field: u32, i: u8| (field >> (3 - i)) & 1 != 0;
            let a = bit(v(0), ba);
            let b = bit(v(1), bb);
            let r = match o {
                CrOp::And => a & b,
                CrOp::Or => a | b,
                CrOp::Xor => a ^ b,
                CrOp::Nand => !(a & b),
                CrOp::Nor => !(a | b),
                CrOp::Eqv => !(a ^ b),
                CrOp::Andc => a & !b,
                CrOp::Orc => a | !b,
            };
            let mask = 1u32 << (3 - bt);
            value((v(2) & !mask) | (u32::from(r) << (3 - bt)))
        }
        ExtractField => value((v(0) >> (4 * ((7 - op.imm as u32) & 7))) & 0xF),
        InsertField => value(v(0) | ((v(1) & 0xF) << (4 * ((7 - op.imm as u32) & 7)))),
        XerCompose => value(((v(0) & 1) << 29) | ((v(1) & 1) << 30) | ((v(2) & 1) << 31)),
        XerExtract => value((v(0) >> (op.imm as u32 & 31)) & 1),
        TrapIf { to } => EvalOut::Trap(trap_taken(
            to,
            v(0),
            if op.srcs().len() > 1 { v(1) } else { op.imm as u32 },
        )),
        Load { .. } | Store { .. } => EvalOut::Memory,
    }
}

fn sra(s: u32, n: u32) -> (u32, bool) {
    let neg = (s as i32) < 0;
    if n >= 32 {
        (if neg { 0xFFFF_FFFF } else { 0 }, neg && s != 0)
    } else {
        let lost = n > 0 && s & ((1u32 << n) - 1) != 0;
        (((s as i32) >> n) as u32, neg && lost)
    }
}

/// Computes a memory op's effective address from its source values.
///
/// Loads sum *all* sources (base and optional index) plus the signed
/// displacement; stores reserve `src0` for the value and sum the rest.
/// A missing base means the architected `ra = 0` literal-zero form.
pub fn effective_address(op: &Operation, vals: &[u32]) -> u32 {
    effective_address_impl(op, vals)
}

/// Inlining-guaranteed variant of [`effective_address`] for the packed
/// engine's hot loop.
///
/// # Panics
///
/// Panics on non-memory operations.
#[inline(always)]
pub fn effective_address_inline(op: &Operation, vals: &[u32]) -> u32 {
    effective_address_impl(op, vals)
}

#[inline(always)]
fn effective_address_impl(op: &Operation, vals: &[u32]) -> u32 {
    let addr_vals = match op.kind {
        OpKind::Load { .. } => vals,
        OpKind::Store { .. } => &vals[1..],
        _ => panic!("effective_address on non-memory op"),
    };
    addr_vals.iter().fold(op.imm as u32, |acc, v| acc.wrapping_add(*v))
}

#[cfg(test)]
mod tests {
    use super::*;
    fn op(kind: OpKind) -> Operation {
        Operation::new(kind, 0)
    }

    #[test]
    fn basic_alu() {
        assert_eq!(eval(&op(OpKind::Add), &[2, 3]), EvalOut::Value { v: 5, carry: None });
        assert_eq!(eval(&op(OpKind::Subf), &[2, 3]), EvalOut::Value { v: 1, carry: None });
        assert_eq!(
            eval(&op(OpKind::Li).with_imm(-1), &[]),
            EvalOut::Value { v: 0xFFFF_FFFF, carry: None }
        );
    }

    #[test]
    fn carry_ops_match_interpreter_conventions() {
        // subfc of equal values: carry (no borrow) set.
        assert_eq!(eval(&op(OpKind::SubfC), &[5, 5]), EvalOut::Value { v: 0, carry: Some(true) });
        // adde with carry-in.
        assert_eq!(
            eval(&op(OpKind::AddE), &[0xFFFF_FFFF, 0, 1]),
            EvalOut::Value { v: 0, carry: Some(true) }
        );
        // addic immediate carry.
        assert_eq!(
            eval(&op(OpKind::AddImmC).with_imm(1), &[0xFFFF_FFFF]),
            EvalOut::Value { v: 0, carry: Some(true) }
        );
    }

    #[test]
    fn rot_mask() {
        // slwi 3 == rlwinm sh=3 mask 0..28
        let o = op(OpKind::RotlImmMask).with_imm(3).with_imm2(rlw_mask(0, 28));
        assert_eq!(eval(&o, &[1]), EvalOut::Value { v: 8, carry: None });
    }

    #[test]
    fn compares_produce_cr_fields() {
        assert_eq!(eval(&op(OpKind::CmpS), &[1, 2, 0]), EvalOut::Value { v: 0b1000, carry: None });
        assert_eq!(
            eval(&op(OpKind::CmpU), &[0xFFFF_FFFF, 2, 1]),
            EvalOut::Value { v: 0b0101, carry: None }
        );
        assert_eq!(
            eval(&op(OpKind::CmpSImm).with_imm(-1), &[0xFFFF_FFFF, 0]),
            EvalOut::Value { v: 0b0010, carry: None }
        );
    }

    #[test]
    fn cr_bit_updates_one_bit() {
        // crand bt=3 (SO position) from ba=0 (LT of f1) and bb=1 (GT of f2).
        let o = op(OpKind::CrBit { op: CrOp::And, bt: 3, ba: 0, bb: 1 });
        // f1 has LT set, f2 has GT set, old dest = 0b0100.
        assert_eq!(eval(&o, &[0b1000, 0b0100, 0b0100]), EvalOut::Value { v: 0b0101, carry: None });
    }

    #[test]
    fn field_moves() {
        // Extract field 1 from a CR image.
        let o = op(OpKind::ExtractField).with_imm(1);
        assert_eq!(eval(&o, &[0x0A00_0000]), EvalOut::Value { v: 0xA, carry: None });
        // Insert it back.
        let o = op(OpKind::InsertField).with_imm(1);
        assert_eq!(eval(&o, &[0, 0xA]), EvalOut::Value { v: 0x0A00_0000, carry: None });
    }

    #[test]
    fn trap_eval() {
        let o = op(OpKind::TrapIf { to: 4 }).src(Reg(1)).src(Reg(2)); // trap if equal
        assert_eq!(eval(&o, &[3, 3]), EvalOut::Trap(true));
        assert_eq!(eval(&o, &[3, 4]), EvalOut::Trap(false));
    }

    #[test]
    fn effective_addresses() {
        let l =
            op(OpKind::Load { width: MemWidth::Word, algebraic: false }).src(Reg(1)).with_imm(8);
        assert_eq!(effective_address(&l, &[100]), 108);
        let s = op(OpKind::Store { width: MemWidth::Byte })
            .src(Reg(2))
            .src(Reg(1))
            .src(Reg(3))
            .with_imm(0);
        assert_eq!(effective_address(&s, &[7, 100, 20]), 120);
    }

    #[test]
    fn xer_roundtrip() {
        let c = op(OpKind::XerCompose);
        let EvalOut::Value { v, .. } = eval(&c, &[1, 0, 1]) else { panic!() };
        assert_eq!(v, 0xA000_0000);
        let x = op(OpKind::XerExtract).with_imm(29);
        assert_eq!(eval(&x, &[v]), EvalOut::Value { v: 1, carry: None });
        let x = op(OpKind::XerExtract).with_imm(31);
        assert_eq!(eval(&x, &[v]), EvalOut::Value { v: 1, carry: None });
    }
}
