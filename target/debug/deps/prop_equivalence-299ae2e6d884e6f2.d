/root/repo/target/debug/deps/prop_equivalence-299ae2e6d884e6f2.d: tests/prop_equivalence.rs

/root/repo/target/debug/deps/prop_equivalence-299ae2e6d884e6f2: tests/prop_equivalence.rs

tests/prop_equivalence.rs:
