/root/repo/target/release/deps/daisy_bench-76b786f9d6ed3f2a.d: crates/bench/src/lib.rs crates/bench/src/runner.rs crates/bench/src/tables.rs

/root/repo/target/release/deps/libdaisy_bench-76b786f9d6ed3f2a.rlib: crates/bench/src/lib.rs crates/bench/src/runner.rs crates/bench/src/tables.rs

/root/repo/target/release/deps/libdaisy_bench-76b786f9d6ed3f2a.rmeta: crates/bench/src/lib.rs crates/bench/src/runner.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/runner.rs:
crates/bench/src/tables.rs:
