/root/repo/target/debug/deps/daisy_cachesim-50b5e4e46dd3ba5a.d: crates/cachesim/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdaisy_cachesim-50b5e4e46dd3ba5a.rmeta: crates/cachesim/src/lib.rs Cargo.toml

crates/cachesim/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
