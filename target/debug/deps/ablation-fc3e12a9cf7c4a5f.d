/root/repo/target/debug/deps/ablation-fc3e12a9cf7c4a5f.d: crates/bench/benches/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-fc3e12a9cf7c4a5f.rmeta: crates/bench/benches/ablation.rs Cargo.toml

crates/bench/benches/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
