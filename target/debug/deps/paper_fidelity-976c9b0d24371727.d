/root/repo/target/debug/deps/paper_fidelity-976c9b0d24371727.d: crates/core/tests/paper_fidelity.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_fidelity-976c9b0d24371727.rmeta: crates/core/tests/paper_fidelity.rs Cargo.toml

crates/core/tests/paper_fidelity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
