/root/repo/target/release/deps/criterion-f74aa514288213f1.d: crates/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-f74aa514288213f1: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
