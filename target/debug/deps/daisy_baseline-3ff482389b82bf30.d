/root/repo/target/debug/deps/daisy_baseline-3ff482389b82bf30.d: crates/baseline/src/lib.rs crates/baseline/src/ppc604e.rs crates/baseline/src/profile.rs crates/baseline/src/trad.rs Cargo.toml

/root/repo/target/debug/deps/libdaisy_baseline-3ff482389b82bf30.rmeta: crates/baseline/src/lib.rs crates/baseline/src/ppc604e.rs crates/baseline/src/profile.rs crates/baseline/src/trad.rs Cargo.toml

crates/baseline/src/lib.rs:
crates/baseline/src/ppc604e.rs:
crates/baseline/src/profile.rs:
crates/baseline/src/trad.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
