//! Always-on runtime metrics: a lock-free registry of atomic counters,
//! gauges, and bucketed histograms that every layer of the VMM
//! publishes into at group-boundary granularity, plus the structured
//! post-mortem the flight recorder dumps when something degrades.
//!
//! The paper's VMM runs *under* everything, invisibly and continuously
//! — exactly the regime where a profiler cannot be attached after the
//! fact. [`crate::trace`] (opt-in event streams) and [`crate::profile`]
//! (opt-in attribution) cover deep inspection; this module is the third
//! mode: cheap, live, aggregate, and crash-surviving.
//!
//! * [`MetricsSnapshot`] — a point-in-time copy of every metric, cheap
//!   to take mid-run, diffable ([`MetricsSnapshot::delta`]), and
//!   serializable as JSON ([`MetricsSnapshot::to_json`]) or Prometheus
//!   text exposition format ([`prometheus_text`]).
//! * [`MetricsRegistry`] — a shareable (`Arc`) bank of `AtomicU64`
//!   slots the system publishes absolute counter values into every
//!   [`publish period`](crate::system::DaisySystemBuilder::metrics_publish_period)
//!   group boundaries. Readers on other threads take consistent-enough
//!   snapshots without locks; the forthcoming multi-guest translation
//!   server exports one registry per guest.
//! * [`PostMortem`] — flight-recorder ring contents + the run's full
//!   degradation chain + a final snapshot, captured automatically on
//!   every ladder degradation and on fault-injection divergence (see
//!   [`crate::trace::FlightRecorder`] and
//!   [`crate::system::DaisySystem::post_mortem`]).
//!
//! # Overhead discipline
//!
//! Nothing here touches an in-group hot path. Every value in a snapshot
//! is *derived* from the plain-`u64` counter structs the engines
//! already maintain ([`RunStats`], [`VmmStats`], [`NativeStats`]);
//! gathering is a copy at a group boundary, and registry publication
//! happens on a countdown cadence (default every 1024 boundaries).
//! `benches/engine.rs` gates the result against `BENCH_engine.json`.
//!
//! # Naming scheme
//!
//! Prometheus names are `daisy_<layer>_<what>[_total]`: layers are
//! `vmm`, `dispatch`, `chain`, `engine`, `native`, `ladder`, and the
//! bare `daisy_` prefix for whole-system events (exceptions,
//! interrupts, MMIO). Counters end in `_total`; degradations are one
//! counter family labelled by `cause`, rung occupancy one gauge family
//! labelled by `rung`.

use crate::error::{Degradation, DegradeCause, Rung};
use crate::native::NativeStats;
use crate::stats::RunStats;
use crate::trace::TraceEvent;
use crate::vmm::VmmStats;
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Every monotone counter the registry tracks, in stable index order
/// (`Counter::ALL[i] as usize == i`, pinned by a unit test).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Pages with at least one translation created.
    PagesTranslated,
    /// Groups (entry points) translated, including retranslations.
    GroupsTranslated,
    /// Page translations destroyed by code modification.
    Invalidations,
    /// Page translations evicted by the LRU code-area bound.
    CastOuts,
    /// Entries retranslated conservatively after repeated aliasing.
    AliasRetranslations,
    /// Entries promoted to the hot translation tier.
    HotPromotions,
    /// Interpret-ahead hint gatherings that ran out of budget.
    HintBudgetExhausted,
    /// Bytes of translated VLIW code ever produced (monotone).
    CodeBytesEmitted,
    /// Dispatches that went through the VMM (lookup or translation).
    VmmDispatches,
    /// Dispatches that followed a chain link or indirect-cache entry.
    ChainedDispatches,
    /// Dispatches whose branch target stayed on the same page.
    OnpageDispatches,
    /// Cross-page direct branches executed.
    CrosspageDirect,
    /// Cross-page branches via the link register.
    CrosspageViaLr,
    /// Cross-page branches via the count register.
    CrosspageViaCtr,
    /// Chain links installed on direct exits.
    LinkInstalls,
    /// Chain links found severed and cleared.
    Severs,
    /// Inline indirect-dispatch cache hits.
    IcacheHits,
    /// Inline indirect-dispatch cache misses.
    IcacheMisses,
    /// Tree instructions executed (any engine tier).
    Vliws,
    /// Cycles lost to cache misses.
    StallCycles,
    /// Instructions executed by the VMM's interpreter.
    InterpInstrs,
    /// Base instructions retired (see [`RunStats::approx_base_instrs`]).
    RetiredInstrs,
    /// Load parcels executed.
    Loads,
    /// Store parcels executed.
    Stores,
    /// Run-time load-store alias failures.
    AliasFailures,
    /// Precise exceptions delivered.
    Exceptions,
    /// External interrupts delivered to the guest.
    InterruptsTaken,
    /// Code-modification (self-modifying code) invalidations taken.
    CodeModifications,
    /// MMIO device accesses serviced via the interpreter bail path.
    MmioOps,
    /// Interrupts delivered at a boundary a native-tier run produced.
    NativeYieldPreempts,
    /// Groups lowered to native host code.
    NativeCompiles,
    /// Groups the native lowerer refused.
    NativeRefusals,
    /// Dispatches that entered native code.
    NativeDispatches,
    /// Group transfers that stayed inside native code (patched edges).
    NativeChained,
    /// Native runs that bailed back to the packed engine mid-group.
    NativeBails,
    /// Chain edges patched into direct native jumps.
    NativeEdgePatches,
    /// Native-tier epoch flushes (every patched edge restored and every
    /// compiled group retired).
    NativeFlushes,
    /// Tree instructions executed natively.
    NativeVliws,
    /// Indirect exits resolved by the inline IBTC.
    NativeIbtcHits,
    /// Flight-recorder events discarded because the ring was full.
    FlightRecorderDropped,
}

impl Counter {
    /// Number of counters.
    pub const COUNT: usize = 40;

    /// Every counter, in index order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::PagesTranslated,
        Counter::GroupsTranslated,
        Counter::Invalidations,
        Counter::CastOuts,
        Counter::AliasRetranslations,
        Counter::HotPromotions,
        Counter::HintBudgetExhausted,
        Counter::CodeBytesEmitted,
        Counter::VmmDispatches,
        Counter::ChainedDispatches,
        Counter::OnpageDispatches,
        Counter::CrosspageDirect,
        Counter::CrosspageViaLr,
        Counter::CrosspageViaCtr,
        Counter::LinkInstalls,
        Counter::Severs,
        Counter::IcacheHits,
        Counter::IcacheMisses,
        Counter::Vliws,
        Counter::StallCycles,
        Counter::InterpInstrs,
        Counter::RetiredInstrs,
        Counter::Loads,
        Counter::Stores,
        Counter::AliasFailures,
        Counter::Exceptions,
        Counter::InterruptsTaken,
        Counter::CodeModifications,
        Counter::MmioOps,
        Counter::NativeYieldPreempts,
        Counter::NativeCompiles,
        Counter::NativeRefusals,
        Counter::NativeDispatches,
        Counter::NativeChained,
        Counter::NativeBails,
        Counter::NativeEdgePatches,
        Counter::NativeFlushes,
        Counter::NativeVliws,
        Counter::NativeIbtcHits,
        Counter::FlightRecorderDropped,
    ];

    /// Stable Prometheus metric name (`daisy_<layer>_<what>_total`).
    pub fn name(self) -> &'static str {
        match self {
            Counter::PagesTranslated => "daisy_vmm_pages_translated_total",
            Counter::GroupsTranslated => "daisy_vmm_groups_translated_total",
            Counter::Invalidations => "daisy_vmm_invalidations_total",
            Counter::CastOuts => "daisy_vmm_cast_outs_total",
            Counter::AliasRetranslations => "daisy_vmm_alias_retranslations_total",
            Counter::HotPromotions => "daisy_vmm_hot_promotions_total",
            Counter::HintBudgetExhausted => "daisy_vmm_hint_budget_exhausted_total",
            Counter::CodeBytesEmitted => "daisy_vmm_code_bytes_emitted_total",
            Counter::VmmDispatches => "daisy_dispatch_vmm_total",
            Counter::ChainedDispatches => "daisy_dispatch_chained_total",
            Counter::OnpageDispatches => "daisy_dispatch_onpage_total",
            Counter::CrosspageDirect => "daisy_dispatch_crosspage_direct_total",
            Counter::CrosspageViaLr => "daisy_dispatch_crosspage_via_lr_total",
            Counter::CrosspageViaCtr => "daisy_dispatch_crosspage_via_ctr_total",
            Counter::LinkInstalls => "daisy_chain_link_installs_total",
            Counter::Severs => "daisy_chain_severs_total",
            Counter::IcacheHits => "daisy_chain_icache_hits_total",
            Counter::IcacheMisses => "daisy_chain_icache_misses_total",
            Counter::Vliws => "daisy_engine_vliws_total",
            Counter::StallCycles => "daisy_engine_stall_cycles_total",
            Counter::InterpInstrs => "daisy_engine_interp_instrs_total",
            Counter::RetiredInstrs => "daisy_engine_retired_instrs_total",
            Counter::Loads => "daisy_engine_loads_total",
            Counter::Stores => "daisy_engine_stores_total",
            Counter::AliasFailures => "daisy_engine_alias_failures_total",
            Counter::Exceptions => "daisy_exceptions_total",
            Counter::InterruptsTaken => "daisy_interrupts_taken_total",
            Counter::CodeModifications => "daisy_code_modifications_total",
            Counter::MmioOps => "daisy_mmio_ops_total",
            Counter::NativeYieldPreempts => "daisy_native_yield_preempts_total",
            Counter::NativeCompiles => "daisy_native_compiles_total",
            Counter::NativeRefusals => "daisy_native_refusals_total",
            Counter::NativeDispatches => "daisy_native_dispatches_total",
            Counter::NativeChained => "daisy_native_chained_total",
            Counter::NativeBails => "daisy_native_bails_total",
            Counter::NativeEdgePatches => "daisy_native_edge_patches_total",
            Counter::NativeFlushes => "daisy_native_flushes_total",
            Counter::NativeVliws => "daisy_native_vliws_total",
            Counter::NativeIbtcHits => "daisy_native_ibtc_hits_total",
            Counter::FlightRecorderDropped => "daisy_flight_recorder_dropped_total",
        }
    }

    /// One-line help string for the Prometheus `# HELP` header.
    pub fn help(self) -> &'static str {
        match self {
            Counter::PagesTranslated => "Pages with at least one translation created",
            Counter::GroupsTranslated => "Groups translated, including retranslations",
            Counter::Invalidations => "Page translations destroyed by code modification",
            Counter::CastOuts => "Page translations evicted by the LRU code-area bound",
            Counter::AliasRetranslations => "Entries retranslated with load speculation inhibited",
            Counter::HotPromotions => "Entries promoted to the hot translation tier",
            Counter::HintBudgetExhausted => {
                "Interpret-ahead hint gatherings that ran out of budget"
            }
            Counter::CodeBytesEmitted => "Bytes of translated VLIW code ever produced",
            Counter::VmmDispatches => "Dispatches through the VMM (lookup or translation)",
            Counter::ChainedDispatches => "Dispatches that followed a chain link or indirect cache",
            Counter::OnpageDispatches => "Dispatches whose branch target stayed on the same page",
            Counter::CrosspageDirect => "Cross-page direct branches executed",
            Counter::CrosspageViaLr => "Cross-page branches via the link register",
            Counter::CrosspageViaCtr => "Cross-page branches via the count register",
            Counter::LinkInstalls => "Chain links installed on direct exits",
            Counter::Severs => "Chain links found severed and cleared",
            Counter::IcacheHits => "Inline indirect-dispatch cache hits",
            Counter::IcacheMisses => "Inline indirect-dispatch cache misses",
            Counter::Vliws => "Tree instructions executed on any engine tier",
            Counter::StallCycles => "Cycles lost to cache misses",
            Counter::InterpInstrs => "Instructions executed by the VMM's interpreter",
            Counter::RetiredInstrs => "Base instructions retired (approximate, see RunStats)",
            Counter::Loads => "Load parcels executed",
            Counter::Stores => "Store parcels executed",
            Counter::AliasFailures => "Run-time load-store alias failures",
            Counter::Exceptions => "Precise exceptions delivered",
            Counter::InterruptsTaken => "External interrupts delivered to the guest",
            Counter::CodeModifications => "Self-modifying-code invalidations taken",
            Counter::MmioOps => "MMIO device accesses serviced via the interpreter bail",
            Counter::NativeYieldPreempts => "Interrupts delivered at a native-run boundary",
            Counter::NativeCompiles => "Groups lowered to native host code",
            Counter::NativeRefusals => "Groups the native lowerer refused",
            Counter::NativeDispatches => "Dispatches that entered native code",
            Counter::NativeChained => "Group transfers that stayed inside native code",
            Counter::NativeBails => "Native runs that bailed back to the packed engine",
            Counter::NativeEdgePatches => "Chain edges patched into direct native jumps",
            Counter::NativeFlushes => "Native-tier epoch flushes (all patched edges severed)",
            Counter::NativeVliws => "Tree instructions executed natively",
            Counter::NativeIbtcHits => "Indirect exits resolved by the inline IBTC",
            Counter::FlightRecorderDropped => "Flight-recorder events discarded (ring full)",
        }
    }
}

/// Every point-in-time gauge the registry tracks, in stable index
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gauge {
    /// Bytes of translated VLIW code currently live.
    CodeBytesLive,
    /// Pages with a live translation.
    LivePages,
    /// Groups currently live in the translation cache.
    LiveGroups,
    /// Pages abandoned to the reference interpreter (bottom rung).
    InterpPages,
    /// Entry points currently below their default ladder rung.
    DegradedEntries,
}

impl Gauge {
    /// Number of gauges.
    pub const COUNT: usize = 5;

    /// Every gauge, in index order.
    pub const ALL: [Gauge; Gauge::COUNT] = [
        Gauge::CodeBytesLive,
        Gauge::LivePages,
        Gauge::LiveGroups,
        Gauge::InterpPages,
        Gauge::DegradedEntries,
    ];

    /// Stable Prometheus metric name.
    pub fn name(self) -> &'static str {
        match self {
            Gauge::CodeBytesLive => "daisy_vmm_code_bytes_live",
            Gauge::LivePages => "daisy_vmm_live_pages",
            Gauge::LiveGroups => "daisy_vmm_live_groups",
            Gauge::InterpPages => "daisy_ladder_interp_pages",
            Gauge::DegradedEntries => "daisy_ladder_degraded_entries",
        }
    }

    /// One-line help string for the Prometheus `# HELP` header.
    pub fn help(self) -> &'static str {
        match self {
            Gauge::CodeBytesLive => "Bytes of translated VLIW code currently live",
            Gauge::LivePages => "Pages with a live translation",
            Gauge::LiveGroups => "Groups currently live in the translation cache",
            Gauge::InterpPages => "Pages abandoned to the reference interpreter",
            Gauge::DegradedEntries => "Entry points currently below their default rung",
        }
    }
}

/// Metric name of the per-cause degradation counter family
/// (`cause` label).
pub const DEGRADATIONS_METRIC: &str = "daisy_degradations_total";

/// Metric name of the per-rung ladder occupancy gauge family
/// (`rung` label).
pub const RUNG_ENTRIES_METRIC: &str = "daisy_ladder_rung_entries";

/// Metric name of the issue-width histogram (parcels per executed
/// tree instruction).
pub const ISSUE_HIST_METRIC: &str = "daisy_engine_issue_parcels";

/// Metric name of the interrupt-latency histogram (retired base
/// instructions from post to delivery).
pub const IRQ_HIST_METRIC: &str = "daisy_irq_latency_instrs";

/// Upper bucket bounds of the issue-width histogram: one bucket per
/// parcel count 0..=23; the overflow bucket holds ≥ 24 (mirroring
/// [`RunStats::issue_histogram`]).
pub const ISSUE_BOUNDS: [u64; 24] = {
    let mut a = [0u64; 24];
    let mut i = 0;
    while i < 24 {
        a[i] = i as u64;
        i += 1;
    }
    a
};

/// Upper bucket bounds of the interrupt-latency histogram, in retired
/// base instructions (log2-spaced; the overflow bucket holds
/// > 16384).
pub const IRQ_BOUNDS: [u64; 16] =
    [0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384];

/// A frozen histogram: per-bucket (non-cumulative) counts, one bucket
/// per bound plus a final overflow bucket, with the sum and count of
/// recorded samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Upper bound of each non-overflow bucket (inclusive).
    pub bounds: &'static [u64],
    /// Per-bucket counts; `bounds.len() + 1` entries, last = overflow.
    pub buckets: Vec<u64>,
    /// Sum of recorded samples (for the overflow bucket of the issue
    /// histogram, samples contribute their bucket bound — a documented
    /// approximation).
    pub sum: u64,
    /// Number of recorded samples.
    pub count: u64,
}

impl HistSnapshot {
    fn empty(bounds: &'static [u64]) -> HistSnapshot {
        HistSnapshot { bounds, buckets: vec![0; bounds.len() + 1], sum: 0, count: 0 }
    }

    /// Bucket-wise difference `self - earlier` (saturating).
    pub fn delta(&self, earlier: &HistSnapshot) -> HistSnapshot {
        HistSnapshot {
            bounds: self.bounds,
            buckets: self
                .buckets
                .iter()
                .zip(earlier.buckets.iter().chain(std::iter::repeat(&0)))
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            sum: self.sum.saturating_sub(earlier.sum),
            count: self.count.saturating_sub(earlier.count),
        }
    }

    /// Renders the histogram as one JSON object.
    pub fn to_json(&self) -> String {
        let bounds: Vec<String> = self.bounds.iter().map(u64::to_string).collect();
        let buckets: Vec<String> = self.buckets.iter().map(u64::to_string).collect();
        format!(
            "{{\"bounds\": [{}], \"buckets\": [{}], \"sum\": {}, \"count\": {}}}",
            bounds.join(", "),
            buckets.join(", "),
            self.sum,
            self.count
        )
    }
}

/// Interrupt-delivery latency accumulator: distance, in retired base
/// instructions, from the boundary where a pending interrupt was first
/// observed undeliverable to the boundary where it was delivered.
/// Maintained by [`crate::system::DaisySystem::step`]; zero cost when
/// no interrupt is pending.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IrqLatency {
    buckets: [u64; IRQ_BOUNDS.len() + 1],
    sum: u64,
    count: u64,
}

impl IrqLatency {
    /// Records one delivery `latency` (retired instructions from post
    /// to delivery; 0 when delivered at the observing boundary).
    pub fn record(&mut self, latency: u64) {
        let idx = IRQ_BOUNDS.iter().position(|&b| latency <= b).unwrap_or(IRQ_BOUNDS.len());
        self.buckets[idx] += 1;
        self.sum += latency;
        self.count += 1;
    }

    /// Deliveries recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Freezes the accumulator into a [`HistSnapshot`].
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            bounds: &IRQ_BOUNDS,
            buckets: self.buckets.to_vec(),
            sum: self.sum,
            count: self.count,
        }
    }
}

/// Everything a [`MetricsSnapshot`] is gathered from — the plain
/// counter structs each layer already maintains, plus the few
/// system-owned aggregates. [`crate::system::DaisySystem`] assembles
/// this; it is public so alternative harnesses can gather snapshots
/// from hand-built parts.
#[derive(Debug, Clone, Copy)]
pub struct MetricsSource<'a> {
    /// Engine counters.
    pub stats: &'a RunStats,
    /// VMM counters.
    pub vmm: &'a VmmStats,
    /// Native-tier counters, when the tier is active.
    pub native: Option<&'a NativeStats>,
    /// Every ladder step taken so far, in order.
    pub degradations: &'a [Degradation],
    /// Degraded-entry occupancy per rung, in [`Rung::ALL`] order.
    pub rung_entries: [u64; Rung::ALL.len()],
    /// Pages with a live translation.
    pub live_pages: u64,
    /// Groups live in the translation cache.
    pub live_groups: u64,
    /// Pages abandoned to the reference interpreter.
    pub interp_pages: u64,
    /// Interrupts delivered at a boundary a native run produced.
    pub native_yield_preempts: u64,
    /// Interrupt post-to-delivery latency accumulator.
    pub irq_latency: &'a IrqLatency,
    /// Flight-recorder events discarded because the ring was full.
    pub flight_dropped: u64,
}

/// A point-in-time copy of every metric. Plain data: cheap to clone,
/// diff, and serialize; two snapshots of identical state compare equal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values, indexed by `Counter as usize`.
    pub counters: [u64; Counter::COUNT],
    /// Gauge values, indexed by `Gauge as usize`.
    pub gauges: [u64; Gauge::COUNT],
    /// Degradations by cause, in [`DegradeCause::ALL`] order.
    pub degradations: [u64; DegradeCause::ALL.len()],
    /// Degraded-entry occupancy per rung, in [`Rung::ALL`] order.
    pub rung_entries: [u64; Rung::ALL.len()],
    /// Parcels per executed tree instruction.
    pub issue_parcels: HistSnapshot,
    /// Interrupt post-to-delivery latency, in retired instructions.
    pub irq_latency: HistSnapshot,
}

impl Default for MetricsSnapshot {
    fn default() -> MetricsSnapshot {
        MetricsSnapshot {
            counters: [0; Counter::COUNT],
            gauges: [0; Gauge::COUNT],
            degradations: [0; DegradeCause::ALL.len()],
            rung_entries: [0; Rung::ALL.len()],
            issue_parcels: HistSnapshot::empty(&ISSUE_BOUNDS),
            irq_latency: HistSnapshot::empty(&IRQ_BOUNDS),
        }
    }
}

impl MetricsSnapshot {
    /// Gathers a snapshot from the per-layer counter structs. A pure
    /// copy — no layer is perturbed, so a snapshot can be taken at any
    /// group boundary, any number of times.
    pub fn gather(src: &MetricsSource<'_>) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        let s = src.stats;
        let v = src.vmm;
        {
            let c = &mut snap.counters;
            c[Counter::PagesTranslated as usize] = v.pages_translated;
            c[Counter::GroupsTranslated as usize] = v.groups_translated;
            c[Counter::Invalidations as usize] = v.invalidations;
            c[Counter::CastOuts as usize] = v.cast_outs;
            c[Counter::AliasRetranslations as usize] = v.alias_retranslations;
            c[Counter::HotPromotions as usize] = v.hot_promotions;
            c[Counter::HintBudgetExhausted as usize] = v.hint_budget_exhausted;
            c[Counter::CodeBytesEmitted as usize] = v.code_bytes_total;
            c[Counter::VmmDispatches as usize] = s.groups_entered;
            c[Counter::ChainedDispatches as usize] = s.chain.chained_dispatches;
            c[Counter::OnpageDispatches as usize] = s.onpage_dispatches;
            c[Counter::CrosspageDirect as usize] = s.crosspage.direct;
            c[Counter::CrosspageViaLr as usize] = s.crosspage.via_lr;
            c[Counter::CrosspageViaCtr as usize] = s.crosspage.via_ctr;
            c[Counter::LinkInstalls as usize] = s.chain.link_installs;
            c[Counter::Severs as usize] = s.chain.severs;
            c[Counter::IcacheHits as usize] = s.chain.icache_hits;
            c[Counter::IcacheMisses as usize] = s.chain.icache_misses;
            c[Counter::Vliws as usize] = s.vliws_executed;
            c[Counter::StallCycles as usize] = s.stall_cycles;
            c[Counter::InterpInstrs as usize] = s.interp_instrs;
            c[Counter::RetiredInstrs as usize] = s.approx_base_instrs();
            c[Counter::Loads as usize] = s.loads;
            c[Counter::Stores as usize] = s.stores;
            c[Counter::AliasFailures as usize] = s.alias_failures;
            c[Counter::Exceptions as usize] = s.exceptions;
            c[Counter::InterruptsTaken as usize] = s.interrupts_taken;
            c[Counter::CodeModifications as usize] = s.code_modifications;
            c[Counter::MmioOps as usize] = s.mmio_ops;
            c[Counter::NativeYieldPreempts as usize] = src.native_yield_preempts;
            if let Some(n) = src.native {
                c[Counter::NativeCompiles as usize] = n.compiles;
                c[Counter::NativeRefusals as usize] = n.refusals;
                c[Counter::NativeDispatches as usize] = n.dispatches;
                c[Counter::NativeChained as usize] = n.chained;
                c[Counter::NativeBails as usize] = n.bails;
                c[Counter::NativeEdgePatches as usize] = n.edge_patches;
                c[Counter::NativeFlushes as usize] = n.flushes;
                c[Counter::NativeVliws as usize] = n.vliws_native;
                c[Counter::NativeIbtcHits as usize] = n.ibtc_hits;
            }
            c[Counter::FlightRecorderDropped as usize] = src.flight_dropped;
        }
        snap.gauges[Gauge::CodeBytesLive as usize] = v.code_bytes;
        snap.gauges[Gauge::LivePages as usize] = src.live_pages;
        snap.gauges[Gauge::LiveGroups as usize] = src.live_groups;
        snap.gauges[Gauge::InterpPages as usize] = src.interp_pages;
        snap.gauges[Gauge::DegradedEntries as usize] = src.rung_entries.iter().sum::<u64>();
        for d in src.degradations {
            snap.degradations[d.cause.index()] += 1;
        }
        snap.rung_entries = src.rung_entries;
        // Issue histogram: RunStats buckets parcels-per-VLIW linearly,
        // with index 24 holding everything ≥ 24; overflow samples
        // contribute their bound to the sum (approximation, documented
        // on `HistSnapshot::sum`).
        snap.issue_parcels.buckets.copy_from_slice(&s.issue_histogram);
        for (i, n) in s.issue_histogram.iter().enumerate() {
            snap.issue_parcels.count += n;
            snap.issue_parcels.sum += n * (i as u64).min(24);
        }
        snap.irq_latency = src.irq_latency.snapshot();
        snap
    }

    /// The value of one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// The value of one gauge.
    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges[g as usize]
    }

    /// Degradations recorded under `cause`.
    pub fn degradations_by(&self, cause: DegradeCause) -> u64 {
        self.degradations[cause.index()]
    }

    /// Degraded entries currently at `rung`.
    pub fn rung_entries(&self, rung: Rung) -> u64 {
        self.rung_entries[rung.index()]
    }

    /// The difference `self - earlier`: counters, degradation counts,
    /// and histograms subtract (saturating); gauges and rung occupancy
    /// keep `self`'s point-in-time values.
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut d = self.clone();
        for (i, v) in d.counters.iter_mut().enumerate() {
            *v = v.saturating_sub(earlier.counters[i]);
        }
        for (i, v) in d.degradations.iter_mut().enumerate() {
            *v = v.saturating_sub(earlier.degradations[i]);
        }
        d.issue_parcels = self.issue_parcels.delta(&earlier.issue_parcels);
        d.irq_latency = self.irq_latency.delta(&earlier.irq_latency);
        d
    }

    /// Renders the snapshot as one JSON object keyed by metric name
    /// (hand-rolled: every key is a static identifier and every value a
    /// number, so no escaping is ever needed).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\"counters\": {");
        for (i, c) in Counter::ALL.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\": {}", c.name(), self.counters[i]);
        }
        out.push_str("}, \"gauges\": {");
        for (i, g) in Gauge::ALL.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\": {}", g.name(), self.gauges[i]);
        }
        out.push_str("}, \"degradations_by_cause\": {");
        for (i, cause) in DegradeCause::ALL.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\": {}", cause.name(), self.degradations[i]);
        }
        out.push_str("}, \"ladder_rung_entries\": {");
        for (i, rung) in Rung::ALL.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\": {}", rung.name(), self.rung_entries[i]);
        }
        let _ = write!(
            out,
            "}}, \"histograms\": {{\"{ISSUE_HIST_METRIC}\": {}, \"{IRQ_HIST_METRIC}\": {}}}}}",
            self.issue_parcels.to_json(),
            self.irq_latency.to_json()
        );
        out
    }

    /// Renders the snapshot in Prometheus text exposition format, with
    /// no instance labels. For several snapshots in one exposition
    /// (e.g. one per workload) use [`prometheus_text`], which groups
    /// each metric's series under a single `# TYPE` header as the
    /// format requires.
    pub fn to_prometheus(&self) -> String {
        prometheus_text(&[("", self)])
    }
}

fn prom_labels(workload: &str, extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = Vec::new();
    if !workload.is_empty() {
        parts.push(format!("workload=\"{workload}\""));
    }
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn prom_histogram(out: &mut String, metric: &str, help: &str, series: &[(&str, &HistSnapshot)]) {
    let _ = writeln!(out, "# HELP {metric} {help}");
    let _ = writeln!(out, "# TYPE {metric} histogram");
    for (workload, h) in series {
        let mut cum = 0u64;
        for (i, bound) in h.bounds.iter().enumerate() {
            cum += h.buckets[i];
            let labels = prom_labels(workload, Some(("le", &bound.to_string())));
            let _ = writeln!(out, "{metric}_bucket{labels} {cum}");
        }
        cum += h.buckets.last().copied().unwrap_or(0);
        let labels = prom_labels(workload, Some(("le", "+Inf")));
        let _ = writeln!(out, "{metric}_bucket{labels} {cum}");
        let plain = prom_labels(workload, None);
        let _ = writeln!(out, "{metric}_sum{plain} {}", h.sum);
        let _ = writeln!(out, "{metric}_count{plain} {}", h.count);
    }
}

/// Renders several labelled snapshots as one Prometheus text
/// exposition: each metric appears once, with one `# HELP`/`# TYPE`
/// header followed by every series (labelled `workload="<name>"`; an
/// empty name omits the label). Label values are used verbatim —
/// workload names are plain identifiers, so no escaping is needed.
pub fn prometheus_text(series: &[(&str, &MetricsSnapshot)]) -> String {
    let mut out = String::with_capacity(4096 * series.len().max(1));
    for (i, c) in Counter::ALL.iter().enumerate() {
        let _ = writeln!(out, "# HELP {} {}", c.name(), c.help());
        let _ = writeln!(out, "# TYPE {} counter", c.name());
        for (workload, snap) in series {
            let _ =
                writeln!(out, "{}{} {}", c.name(), prom_labels(workload, None), snap.counters[i]);
        }
    }
    for (i, g) in Gauge::ALL.iter().enumerate() {
        let _ = writeln!(out, "# HELP {} {}", g.name(), g.help());
        let _ = writeln!(out, "# TYPE {} gauge", g.name());
        for (workload, snap) in series {
            let _ = writeln!(out, "{}{} {}", g.name(), prom_labels(workload, None), snap.gauges[i]);
        }
    }
    let _ = writeln!(out, "# HELP {DEGRADATIONS_METRIC} Ladder degradations by cause");
    let _ = writeln!(out, "# TYPE {DEGRADATIONS_METRIC} counter");
    for (workload, snap) in series {
        for (i, cause) in DegradeCause::ALL.iter().enumerate() {
            let labels = prom_labels(workload, Some(("cause", cause.name())));
            let _ = writeln!(out, "{DEGRADATIONS_METRIC}{labels} {}", snap.degradations[i]);
        }
    }
    let _ = writeln!(out, "# HELP {RUNG_ENTRIES_METRIC} Degraded-entry occupancy per ladder rung");
    let _ = writeln!(out, "# TYPE {RUNG_ENTRIES_METRIC} gauge");
    for (workload, snap) in series {
        for (i, rung) in Rung::ALL.iter().enumerate() {
            let labels = prom_labels(workload, Some(("rung", rung.name())));
            let _ = writeln!(out, "{RUNG_ENTRIES_METRIC}{labels} {}", snap.rung_entries[i]);
        }
    }
    let issue: Vec<(&str, &HistSnapshot)> =
        series.iter().map(|(w, s)| (*w, &s.issue_parcels)).collect();
    prom_histogram(
        &mut out,
        ISSUE_HIST_METRIC,
        "Parcels executed per tree instruction (taken path)",
        &issue,
    );
    let irq: Vec<(&str, &HistSnapshot)> =
        series.iter().map(|(w, s)| (*w, &s.irq_latency)).collect();
    prom_histogram(
        &mut out,
        IRQ_HIST_METRIC,
        "External-interrupt latency from post to delivery, in retired instructions",
        &irq,
    );
    out
}

struct RegistryInner {
    counters: [AtomicU64; Counter::COUNT],
    gauges: [AtomicU64; Gauge::COUNT],
    degradations: [AtomicU64; DegradeCause::ALL.len()],
    rung_entries: [AtomicU64; Rung::ALL.len()],
    issue: [AtomicU64; ISSUE_BOUNDS.len() + 1],
    issue_sum: AtomicU64,
    issue_count: AtomicU64,
    irq: [AtomicU64; IRQ_BOUNDS.len() + 1],
    irq_sum: AtomicU64,
    irq_count: AtomicU64,
}

impl fmt::Debug for RegistryInner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RegistryInner").finish_non_exhaustive()
    }
}

impl Default for RegistryInner {
    fn default() -> RegistryInner {
        RegistryInner {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            gauges: std::array::from_fn(|_| AtomicU64::new(0)),
            degradations: std::array::from_fn(|_| AtomicU64::new(0)),
            rung_entries: std::array::from_fn(|_| AtomicU64::new(0)),
            issue: std::array::from_fn(|_| AtomicU64::new(0)),
            issue_sum: AtomicU64::new(0),
            issue_count: AtomicU64::new(0),
            irq: std::array::from_fn(|_| AtomicU64::new(0)),
            irq_sum: AtomicU64::new(0),
            irq_count: AtomicU64::new(0),
        }
    }
}

/// A lock-free bank of `AtomicU64` metric slots shared between the
/// publishing system and any number of readers.
///
/// Cloning the registry clones the *handle* (`Arc`); all clones see the
/// same slots, so a monitoring thread (or the forthcoming translation
/// server's exporter) can hold one clone and take
/// [`MetricsRegistry::snapshot`]s while the system runs and publishes
/// into another. Publication stores absolute values with relaxed
/// ordering: individual slots are never torn, though a concurrent
/// snapshot may mix values from two adjacent publications (each of
/// which is internally consistent at a group boundary). One system
/// publishes per registry; give each guest its own.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

impl MetricsRegistry {
    /// A fresh registry with every slot zero.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Publishes `snap` into the registry (absolute values, relaxed
    /// stores). Called by the system on its publish cadence; harnesses
    /// holding their own registry can publish hand-gathered snapshots.
    pub fn publish(&self, snap: &MetricsSnapshot) {
        let r = &*self.inner;
        for (i, v) in snap.counters.iter().enumerate() {
            r.counters[i].store(*v, Ordering::Relaxed);
        }
        for (i, v) in snap.gauges.iter().enumerate() {
            r.gauges[i].store(*v, Ordering::Relaxed);
        }
        for (i, v) in snap.degradations.iter().enumerate() {
            r.degradations[i].store(*v, Ordering::Relaxed);
        }
        for (i, v) in snap.rung_entries.iter().enumerate() {
            r.rung_entries[i].store(*v, Ordering::Relaxed);
        }
        for (i, v) in snap.issue_parcels.buckets.iter().enumerate() {
            r.issue[i].store(*v, Ordering::Relaxed);
        }
        r.issue_sum.store(snap.issue_parcels.sum, Ordering::Relaxed);
        r.issue_count.store(snap.issue_parcels.count, Ordering::Relaxed);
        for (i, v) in snap.irq_latency.buckets.iter().enumerate() {
            r.irq[i].store(*v, Ordering::Relaxed);
        }
        r.irq_sum.store(snap.irq_latency.sum, Ordering::Relaxed);
        r.irq_count.store(snap.irq_latency.count, Ordering::Relaxed);
    }

    /// Reads every slot into a [`MetricsSnapshot`] (relaxed loads).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let r = &*self.inner;
        let mut snap = MetricsSnapshot::default();
        for (i, v) in snap.counters.iter_mut().enumerate() {
            *v = r.counters[i].load(Ordering::Relaxed);
        }
        for (i, v) in snap.gauges.iter_mut().enumerate() {
            *v = r.gauges[i].load(Ordering::Relaxed);
        }
        for (i, v) in snap.degradations.iter_mut().enumerate() {
            *v = r.degradations[i].load(Ordering::Relaxed);
        }
        for (i, v) in snap.rung_entries.iter_mut().enumerate() {
            *v = r.rung_entries[i].load(Ordering::Relaxed);
        }
        for (i, v) in snap.issue_parcels.buckets.iter_mut().enumerate() {
            *v = r.issue[i].load(Ordering::Relaxed);
        }
        snap.issue_parcels.sum = r.issue_sum.load(Ordering::Relaxed);
        snap.issue_parcels.count = r.issue_count.load(Ordering::Relaxed);
        for (i, v) in snap.irq_latency.buckets.iter_mut().enumerate() {
            *v = r.irq[i].load(Ordering::Relaxed);
        }
        snap.irq_latency.sum = r.irq_sum.load(Ordering::Relaxed);
        snap.irq_latency.count = r.irq_count.load(Ordering::Relaxed);
        snap
    }

    /// The current value of one counter slot.
    pub fn counter(&self, c: Counter) -> u64 {
        self.inner.counters[c as usize].load(Ordering::Relaxed)
    }

    /// The current value of one gauge slot.
    pub fn gauge(&self, g: Gauge) -> u64 {
        self.inner.gauges[g as usize].load(Ordering::Relaxed)
    }
}

/// A structured post-mortem: the flight recorder's recent events, the
/// run's full degradation chain, and a metrics snapshot, captured at
/// the moment something went wrong (or on request). Produced by
/// [`crate::system::DaisySystem::degrade`] automatically — with no
/// [`crate::trace::TraceSink`] installed — and attached to
/// fault-injection divergence reports by [`crate::inject`].
#[derive(Debug, Clone, PartialEq)]
pub struct PostMortem {
    /// Why the dump was taken.
    pub reason: String,
    /// The flight recorder's retained events, oldest first, each with
    /// its global sequence number.
    pub events: Vec<(u64, TraceEvent)>,
    /// Events the ring had already discarded when the dump was taken.
    pub dropped: u64,
    /// Every ladder step taken this run, in order (the last entries are
    /// the degradation chain that triggered the dump).
    pub chain: Vec<Degradation>,
    /// Metrics at the moment of the dump.
    pub snapshot: MetricsSnapshot,
}

impl fmt::Display for PostMortem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== daisy post-mortem: {} ===", self.reason)?;
        writeln!(f, "degradation chain ({} steps):", self.chain.len())?;
        for (i, d) in self.chain.iter().enumerate() {
            writeln!(f, "  {}. {d}", i + 1)?;
        }
        writeln!(
            f,
            "flight recorder ({} events retained, {} dropped):",
            self.events.len(),
            self.dropped
        )?;
        for (seq, ev) in &self.events {
            writeln!(f, "  [{seq}] {ev}")?;
        }
        let s = &self.snapshot;
        writeln!(
            f,
            "snapshot: dispatches={} (vmm {} + chained {}), retired={}, vliws={}, \
             translations={}, cast_outs={}, invalidations={}, interrupts={}, degradations={}",
            s.counter(Counter::VmmDispatches) + s.counter(Counter::ChainedDispatches),
            s.counter(Counter::VmmDispatches),
            s.counter(Counter::ChainedDispatches),
            s.counter(Counter::RetiredInstrs),
            s.counter(Counter::Vliws),
            s.counter(Counter::GroupsTranslated),
            s.counter(Counter::CastOuts),
            s.counter(Counter::Invalidations),
            s.counter(Counter::InterruptsTaken),
            s.degradations.iter().sum::<u64>(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_tables_are_in_order_and_unique() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i, "{c:?} out of order");
        }
        for (i, g) in Gauge::ALL.iter().enumerate() {
            assert_eq!(*g as usize, i, "{g:?} out of order");
        }
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.extend(Gauge::ALL.iter().map(|g| g.name()));
        names.extend([
            DEGRADATIONS_METRIC,
            RUNG_ENTRIES_METRIC,
            ISSUE_HIST_METRIC,
            IRQ_HIST_METRIC,
        ]);
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n, "metric names must be unique");
        for c in Counter::ALL {
            assert!(c.name().starts_with("daisy_"), "{}", c.name());
            assert!(c.name().ends_with("_total"), "counters end in _total: {}", c.name());
        }
        for g in Gauge::ALL {
            assert!(g.name().starts_with("daisy_"), "{}", g.name());
            assert!(!g.name().ends_with("_total"), "gauges do not end in _total: {}", g.name());
        }
    }

    fn sample_snapshot() -> MetricsSnapshot {
        let mut stats = RunStats { groups_entered: 10, vliws_executed: 400, ..RunStats::default() };
        stats.chain.chained_dispatches = 90;
        stats.issue_histogram[2] = 300;
        stats.issue_histogram[24] = 1;
        let vmm = VmmStats { pages_translated: 3, code_bytes: 1234, ..VmmStats::default() };
        let mut irq = IrqLatency::default();
        irq.record(0);
        irq.record(5);
        irq.record(1_000_000);
        let degs = [Degradation {
            entry: 0x1000,
            from: Rung::Packed,
            to: Rung::Tree,
            cause: DegradeCause::CastOutPressure,
        }];
        MetricsSnapshot::gather(&MetricsSource {
            stats: &stats,
            vmm: &vmm,
            native: None,
            degradations: &degs,
            rung_entries: [0, 0, 1, 0, 0],
            live_pages: 3,
            live_groups: 7,
            interp_pages: 0,
            native_yield_preempts: 0,
            irq_latency: &irq,
            flight_dropped: 2,
        })
    }

    #[test]
    fn gather_maps_counters_and_histograms() {
        let snap = sample_snapshot();
        assert_eq!(snap.counter(Counter::VmmDispatches), 10);
        assert_eq!(snap.counter(Counter::ChainedDispatches), 90);
        assert_eq!(snap.counter(Counter::Vliws), 400);
        assert_eq!(snap.counter(Counter::PagesTranslated), 3);
        assert_eq!(snap.counter(Counter::FlightRecorderDropped), 2);
        assert_eq!(snap.gauge(Gauge::CodeBytesLive), 1234);
        assert_eq!(snap.gauge(Gauge::LiveGroups), 7);
        assert_eq!(snap.gauge(Gauge::DegradedEntries), 1);
        assert_eq!(snap.degradations_by(DegradeCause::CastOutPressure), 1);
        assert_eq!(snap.rung_entries(Rung::Tree), 1);
        assert_eq!(snap.issue_parcels.count, 301);
        assert_eq!(snap.issue_parcels.sum, 300 * 2 + 24);
        assert_eq!(snap.irq_latency.count, 3);
        // 0 → bucket 0; 5 → first bound ≥ 5 is 8; 1e6 → overflow.
        assert_eq!(snap.irq_latency.buckets[0], 1);
        assert_eq!(snap.irq_latency.buckets[4], 1);
        assert_eq!(snap.irq_latency.buckets[IRQ_BOUNDS.len()], 1);
    }

    #[test]
    fn delta_subtracts_counters_and_keeps_gauges() {
        let earlier = sample_snapshot();
        let mut later = earlier.clone();
        later.counters[Counter::Vliws as usize] += 100;
        later.gauges[Gauge::LiveGroups as usize] = 2;
        later.issue_parcels.buckets[2] += 50;
        later.issue_parcels.count += 50;
        let d = later.delta(&earlier);
        assert_eq!(d.counter(Counter::Vliws), 100);
        assert_eq!(d.counter(Counter::VmmDispatches), 0);
        assert_eq!(d.gauge(Gauge::LiveGroups), 2, "gauges keep the later value");
        assert_eq!(d.issue_parcels.buckets[2], 50);
        assert_eq!(d.issue_parcels.count, 50);
    }

    #[test]
    fn json_has_every_metric_name() {
        let json = sample_snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for c in Counter::ALL {
            assert!(json.contains(c.name()), "missing {}", c.name());
        }
        for g in Gauge::ALL {
            assert!(json.contains(g.name()), "missing {}", g.name());
        }
        for cause in DegradeCause::ALL {
            assert!(json.contains(cause.name()), "missing cause {}", cause.name());
        }
        assert!(json.contains(ISSUE_HIST_METRIC) && json.contains(IRQ_HIST_METRIC));
    }

    #[test]
    fn prometheus_groups_series_under_one_type_header() {
        let a = sample_snapshot();
        let b = MetricsSnapshot::default();
        let text = prometheus_text(&[("alpha", &a), ("beta", &b)]);
        // One TYPE line per metric, even with two series.
        let type_lines = text.lines().filter(|l| l.starts_with("# TYPE ")).count();
        assert_eq!(type_lines, Counter::COUNT + Gauge::COUNT + 4);
        assert!(text.contains("daisy_dispatch_vmm_total{workload=\"alpha\"} 10"));
        assert!(text.contains("daisy_dispatch_vmm_total{workload=\"beta\"} 0"));
        assert!(text.contains(
            "daisy_degradations_total{workload=\"alpha\",cause=\"cast_out_pressure\"} 1"
        ));
        assert!(text.contains("daisy_ladder_rung_entries{workload=\"alpha\",rung=\"tree\"} 1"));
        assert!(text.contains("daisy_irq_latency_instrs_bucket{workload=\"alpha\",le=\"+Inf\"} 3"));
        assert!(text.contains("daisy_irq_latency_instrs_count{workload=\"alpha\"} 3"));
        // Cumulative buckets are monotone and end at count.
        let mut last = 0u64;
        for l in text
            .lines()
            .filter(|l| l.starts_with("daisy_engine_issue_parcels_bucket{workload=\"alpha\""))
        {
            let v: u64 = l.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "buckets must be cumulative: {l}");
            last = v;
        }
        assert_eq!(last, a.issue_parcels.count);
        // The unlabeled single-snapshot form drops the braces.
        let solo = a.to_prometheus();
        assert!(solo.contains("\ndaisy_dispatch_vmm_total 10\n"));
    }

    #[test]
    fn registry_roundtrips_snapshots_across_clones() {
        let reg = MetricsRegistry::new();
        let reader = reg.clone();
        let snap = sample_snapshot();
        reg.publish(&snap);
        assert_eq!(reader.snapshot(), snap, "clone reads what the original published");
        assert_eq!(reader.counter(Counter::VmmDispatches), 10);
        assert_eq!(reader.gauge(Gauge::LiveGroups), 7);
        // Re-publication overwrites (absolute values, not increments).
        reg.publish(&snap);
        assert_eq!(reader.counter(Counter::VmmDispatches), 10);
    }

    #[test]
    fn post_mortem_display_is_structured() {
        let pm = PostMortem {
            reason: "ladder degradation: entry 0x1000: packed -> tree (forced)".into(),
            events: vec![(7, TraceEvent::Invalidate { page: 3 })],
            dropped: 1,
            chain: vec![Degradation {
                entry: 0x1000,
                from: Rung::Packed,
                to: Rung::Tree,
                cause: DegradeCause::Forced,
            }],
            snapshot: sample_snapshot(),
        };
        let dump = pm.to_string();
        assert!(dump.contains("=== daisy post-mortem:"));
        assert!(dump.contains("degradation chain (1 steps):"));
        assert!(dump.contains("1. entry 0x1000: packed -> tree (forced)"));
        assert!(dump.contains("[7] invalidate page 3"));
        assert!(dump.contains("1 dropped"));
        assert!(dump.contains("snapshot: dispatches=100 (vmm 10 + chained 90)"));
    }
}
