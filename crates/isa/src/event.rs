//! Interpreter-step outcomes, run-stop reasons, and architected
//! exceptions — the vocabulary shared by every guest frontend.

/// What a single interpreter step produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Normal completion; keep going.
    Continue,
    /// A system call executed (PC already advanced past it).
    Syscall,
    /// A trap condition fired (PC still at the trap).
    Trap,
    /// Privileged or illegal instruction in user state (PC at the instruction).
    Program,
    /// Data storage fault: no translation or protection violation.
    Dsi {
        /// Faulting effective address.
        addr: u32,
        /// True for a store.
        write: bool,
    },
    /// Instruction storage fault at the current PC.
    Isi,
}

/// Why an interpreter run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// A system call executed and vectored delivery is disabled.
    Syscall,
    /// A trap fired and vectored delivery is disabled.
    Trap,
    /// Program (illegal/privileged) exception, vectored delivery disabled.
    Program,
    /// Unhandled storage fault.
    StorageFault {
        /// Faulting effective address (instruction address for fetch faults).
        addr: u32,
        /// True for a store fault.
        write: bool,
        /// True for an instruction-fetch fault.
        fetch: bool,
    },
    /// Instruction budget exhausted.
    MaxInstrs,
    /// The guest quiesced: it parked at an architected idle point with
    /// interrupts disabled, so no further event can ever wake it.
    /// Interrupt-driven firmware ends this way instead of via
    /// `Syscall`; the condition is observed by harness drivers, not by
    /// the interpreter core itself.
    Halted,
}

/// An architected exception to deliver to the guest, in ISA-neutral
/// terms. Each frontend maps these onto its own vectors and
/// save/restore conventions in `GuestCpu::deliver`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exception {
    /// External (timer) interrupt.
    External,
    /// System-call exception.
    Syscall,
    /// Program exception (illegal or privileged instruction).
    Program,
    /// Trap-instruction exception.
    Trap,
    /// Data storage exception.
    Data {
        /// Faulting effective address.
        addr: u32,
        /// True for a store.
        write: bool,
    },
    /// Instruction storage exception.
    Instruction,
}
