/root/repo/target/debug/deps/daisy_repro-d11306ef8654971f.d: src/lib.rs

/root/repo/target/debug/deps/libdaisy_repro-d11306ef8654971f.rlib: src/lib.rs

/root/repo/target/debug/deps/libdaisy_repro-d11306ef8654971f.rmeta: src/lib.rs

src/lib.rs:
