/root/repo/target/debug/examples/oracle_study-86c8ba853de13cfc.d: examples/oracle_study.rs

/root/repo/target/debug/examples/oracle_study-86c8ba853de13cfc: examples/oracle_study.rs

examples/oracle_study.rs:
