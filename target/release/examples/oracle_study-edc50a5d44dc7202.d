/root/repo/target/release/examples/oracle_study-edc50a5d44dc7202.d: examples/oracle_study.rs

/root/repo/target/release/examples/oracle_study-edc50a5d44dc7202: examples/oracle_study.rs

examples/oracle_study.rs:
