/root/repo/target/debug/examples/inspect-8355d14b896b6a19.d: examples/inspect.rs

/root/repo/target/debug/examples/inspect-8355d14b896b6a19: examples/inspect.rs

examples/inspect.rs:
