//! `cmp` — byte-wise comparison of two buffers, the AIX utility
//! measured in the paper.

use crate::{prose, Workload};
use daisy_ppc::asm::{Asm, Program};
use daisy_ppc::interp::Cpu;
use daisy_ppc::mem::Memory;
use daisy_ppc::reg::{CrField, Gpr};

const A: u32 = 0x3_0000;
const B: u32 = 0x4_0000;
const LEN: usize = 40 * 1024;
const DIFF_AT: usize = LEN - 37;
const SEED: u32 = 0xC0FF_EE01;

fn inputs() -> (Vec<u8>, Vec<u8>) {
    let a = prose(LEN, SEED);
    let mut b = a.clone();
    b[DIFF_AT] ^= 0x20;
    (a, b)
}

fn build() -> Program {
    let mut a = Asm::new(0x1000);
    let (res, i, ca, cb, basea, baseb, len) =
        (Gpr(3), Gpr(7), Gpr(8), Gpr(9), Gpr(14), Gpr(15), Gpr(16));
    let cr = CrField(0);
    let (bufa, bufb) = inputs();

    a.li(i, 0);
    a.li32(basea, A);
    a.li32(baseb, B);
    a.li32(len, LEN as u32);

    a.label("loop");
    a.lbzx(ca, basea, i);
    a.lbzx(cb, baseb, i);
    a.cmpw(cr, ca, cb);
    a.bne(cr, "found");
    a.addi(i, i, 1);
    a.cmpw(cr, i, len);
    a.blt(cr, "loop");
    a.li(res, -1);
    a.sc();
    a.label("found");
    a.mr(res, i);
    a.sc();

    a.data(A, &bufa);
    a.data(B, &bufb);
    a.finish().expect("cmp assembles")
}

fn check(cpu: &Cpu, _mem: &Memory) -> Result<(), String> {
    if cpu.gpr[3] == DIFF_AT as u32 {
        Ok(())
    } else {
        Err(format!("cmp: got index {}, want {DIFF_AT}", cpu.gpr[3] as i32))
    }
}

/// The workload descriptor.
pub fn workload() -> Workload {
    Workload { name: "cmp", mem_size: 0x6_0000, max_instrs: 10_000_000, build, check }
}
