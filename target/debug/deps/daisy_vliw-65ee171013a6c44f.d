/root/repo/target/debug/deps/daisy_vliw-65ee171013a6c44f.d: crates/vliw/src/lib.rs crates/vliw/src/machine.rs crates/vliw/src/op.rs crates/vliw/src/reg.rs crates/vliw/src/regfile.rs crates/vliw/src/tree.rs Cargo.toml

/root/repo/target/debug/deps/libdaisy_vliw-65ee171013a6c44f.rmeta: crates/vliw/src/lib.rs crates/vliw/src/machine.rs crates/vliw/src/op.rs crates/vliw/src/reg.rs crates/vliw/src/regfile.rs crates/vliw/src/tree.rs Cargo.toml

crates/vliw/src/lib.rs:
crates/vliw/src/machine.rs:
crates/vliw/src/op.rs:
crates/vliw/src/reg.rs:
crates/vliw/src/regfile.rs:
crates/vliw/src/tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
