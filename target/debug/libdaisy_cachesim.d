/root/repo/target/debug/libdaisy_cachesim.rlib: /root/repo/crates/cachesim/src/lib.rs
