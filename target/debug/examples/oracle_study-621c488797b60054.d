/root/repo/target/debug/examples/oracle_study-621c488797b60054.d: examples/oracle_study.rs

/root/repo/target/debug/examples/oracle_study-621c488797b60054: examples/oracle_study.rs

examples/oracle_study.rs:
