/root/repo/target/release/deps/prop_equivalence-c75491583529819f.d: tests/prop_equivalence.rs

/root/repo/target/release/deps/prop_equivalence-c75491583529819f: tests/prop_equivalence.rs

tests/prop_equivalence.rs:
