//! The unified VLIW register name space.
//!
//! DAISY's VLIW extends the base architecture's register file with
//! non-architected registers used to hold speculative results (paper
//! §2, "renamed register that is not architected in the original
//! architecture"). For PowerPC emulation the file is:
//!
//! | index   | resource                                   | architected? |
//! |---------|--------------------------------------------|--------------|
//! | 0–31    | GPR `r0`–`r31`                             | yes          |
//! | 32–63   | rename pool `r32`–`r63`                    | no           |
//! | 64–71   | CR fields `cr0`–`cr7` (4-bit values)       | yes          |
//! | 72      | LR                                         | yes          |
//! | 73      | CTR                                        | yes          |
//! | 74–76   | XER CA / OV / SO bits                      | yes          |
//!
//! Condition, carry, and counter results rename into the same pool of
//! non-architected GPRs, exactly like the single `FreeGprsUntilEnd`
//! bitmask in the paper's Figure A.4 (Appendix D discusses renaming CTR
//! and CA this way).

use std::fmt;

/// A general-purpose register of the base architecture, `r0`–`r31`.
///
/// Base architectures architect 32 GPRs; DAISY's migrant VLIW extends
/// the file to 64, with `r32`–`r63` invisible to the base architecture.
/// This type only ever names the architected 32.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Gpr(pub u8);

impl Gpr {
    /// Returns the register number, guaranteed `< 32` for valid values.
    pub fn num(self) -> u8 {
        self.0
    }

    /// Returns true if this names one of the 32 architected GPRs.
    pub fn is_valid(self) -> bool {
        self.0 < 32
    }
}

impl fmt::Display for Gpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A condition-register field, `cr0`–`cr7`.
///
/// Each field holds four bits: LT, GT, EQ, SO (most significant first).
/// RV32 has no condition register; its frontend simply never allocates
/// CR-field resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CrField(pub u8);

impl CrField {
    /// Returns the field number, `< 8` for valid values.
    pub fn num(self) -> u8 {
        self.0
    }

    /// Returns true if this names one of the 8 architected CR fields.
    pub fn is_valid(self) -> bool {
        self.0 < 8
    }
}

impl fmt::Display for CrField {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cr{}", self.0)
    }
}

/// A register in the unified VLIW file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u8);

/// Total number of registers in the unified file.
pub const NUM_REGS: usize = 77;

/// Number of non-architected rename registers (`r32`–`r63`).
pub const NUM_RENAME: usize = 32;

/// First rename-pool register.
pub const FIRST_RENAME: u8 = 32;

impl Reg {
    /// The link register.
    pub const LR: Reg = Reg(72);
    /// The count register.
    pub const CTR: Reg = Reg(73);
    /// XER carry bit.
    pub const CA: Reg = Reg(74);
    /// XER overflow bit.
    pub const OV: Reg = Reg(75);
    /// XER summary-overflow bit.
    pub const SO: Reg = Reg(76);

    /// An architected GPR.
    pub fn gpr(g: Gpr) -> Reg {
        debug_assert!(g.is_valid());
        Reg(g.0)
    }

    /// A rename-pool register by pool index (0..32).
    pub fn rename(i: u8) -> Reg {
        debug_assert!(i < NUM_RENAME as u8);
        Reg(FIRST_RENAME + i)
    }

    /// An architected CR field.
    pub fn cr(f: CrField) -> Reg {
        debug_assert!(f.is_valid());
        Reg(64 + f.0)
    }

    /// True for resources visible to the base architecture. Assignments
    /// to these must happen in original program order to keep exceptions
    /// precise; assignments to the others are invisible speculation.
    pub fn is_architected(self) -> bool {
        !(FIRST_RENAME..64).contains(&self.0)
    }

    /// True for rename-pool registers.
    pub fn is_rename(self) -> bool {
        (FIRST_RENAME..64).contains(&self.0)
    }

    /// True for CR field registers (architected only).
    pub fn is_cr_field(self) -> bool {
        (64..72).contains(&self.0)
    }

    /// The architected GPR, if this is one.
    pub fn as_gpr(self) -> Option<Gpr> {
        (self.0 < 32).then_some(Gpr(self.0))
    }

    /// The CR field, if this is one.
    pub fn as_cr_field(self) -> Option<CrField> {
        self.is_cr_field().then_some(CrField(self.0 - 64))
    }

    /// Index into a dense per-register table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            0..=31 => write!(f, "r{}", self.0),
            32..=63 => write!(f, "r{}'", self.0),
            64..=71 => write!(f, "cr{}", self.0 - 64),
            72 => write!(f, "lr"),
            73 => write!(f, "ctr"),
            74 => write!(f, "ca"),
            75 => write!(f, "ov"),
            76 => write!(f, "so"),
            _ => write!(f, "reg{}", self.0),
        }
    }
}

/// A bitmask over the rename pool, bit `i` = `Reg::rename(i)` free.
///
/// This is the `FreeGprs` / `FreeGprsUntilEnd` representation of the
/// paper's Figure A.4, which picks registers with `CountLeadingZeros`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RenameMask(pub u32);

impl RenameMask {
    /// All rename registers free.
    pub const ALL_FREE: RenameMask = RenameMask(u32::MAX);

    /// Picks the lowest-numbered free register, if any.
    pub fn pick(self) -> Option<Reg> {
        if self.0 == 0 {
            None
        } else {
            Some(Reg::rename(self.0.trailing_zeros() as u8))
        }
    }

    /// Marks a rename register allocated.
    #[must_use]
    pub fn without(self, r: Reg) -> RenameMask {
        debug_assert!(r.is_rename());
        RenameMask(self.0 & !(1 << (r.0 - FIRST_RENAME)))
    }

    /// Marks a rename register free again.
    #[must_use]
    pub fn with(self, r: Reg) -> RenameMask {
        debug_assert!(r.is_rename());
        RenameMask(self.0 | (1 << (r.0 - FIRST_RENAME)))
    }

    /// Intersection — free in both.
    #[must_use]
    pub fn and(self, other: RenameMask) -> RenameMask {
        RenameMask(self.0 & other.0)
    }

    /// True if `r` is free.
    pub fn is_free(self, r: Reg) -> bool {
        r.is_rename() && self.0 & (1 << (r.0 - FIRST_RENAME)) != 0
    }

    /// Number of free rename registers.
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(Reg::gpr(Gpr(5)).is_architected());
        assert!(!Reg::rename(0).is_architected());
        assert!(Reg::cr(CrField(0)).is_architected());
        assert!(Reg::LR.is_architected());
        assert!(Reg::CA.is_architected());
        assert!(Reg::rename(31).is_rename());
        assert!(!Reg::gpr(Gpr(31)).is_rename());
    }

    #[test]
    fn conversions() {
        assert_eq!(Reg::gpr(Gpr(7)).as_gpr(), Some(Gpr(7)));
        assert_eq!(Reg::rename(0).as_gpr(), None);
        assert_eq!(Reg::cr(CrField(3)).as_cr_field(), Some(CrField(3)));
        assert_eq!(Reg::LR.as_cr_field(), None);
    }

    #[test]
    fn rename_mask_alloc() {
        let m = RenameMask::ALL_FREE;
        let r = m.pick().unwrap();
        assert_eq!(r, Reg::rename(0));
        let m = m.without(r);
        assert_eq!(m.pick().unwrap(), Reg::rename(1));
        assert!(!m.is_free(r));
        let m = m.with(r);
        assert!(m.is_free(r));
        assert_eq!(RenameMask(0).pick(), None);
    }

    #[test]
    fn display() {
        assert_eq!(Reg::gpr(Gpr(3)).to_string(), "r3");
        assert_eq!(Reg::rename(31).to_string(), "r63'");
        assert_eq!(Reg::cr(CrField(0)).to_string(), "cr0");
        assert_eq!(Reg::CTR.to_string(), "ctr");
    }
}
