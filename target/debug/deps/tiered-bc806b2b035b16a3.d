/root/repo/target/debug/deps/tiered-bc806b2b035b16a3.d: crates/bench/benches/tiered.rs Cargo.toml

/root/repo/target/debug/deps/libtiered-bc806b2b035b16a3.rmeta: crates/bench/benches/tiered.rs Cargo.toml

crates/bench/benches/tiered.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
