//! Ablation benches for the translator's design choices: window size,
//! renaming, and load speculation all trade compile time for ILP; this
//! measures the compile-time side (the ILP side is asserted in the
//! `repro_shapes` integration tests and printed by `repro`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use daisy::sched::{translate_group, TranslatorConfig};
use daisy_ppc::mem::Memory;
use std::hint::black_box;

fn bench_ablations(c: &mut Criterion) {
    let w = daisy_workloads::by_name("compress").unwrap();
    let prog = w.program();
    let mut mem = Memory::new(w.mem_size);
    prog.load_into(&mut mem).unwrap();

    let mut g = c.benchmark_group("ablation");
    for window in [16u32, 64, 256] {
        let cfg = TranslatorConfig { window_size: window, ..TranslatorConfig::default() };
        g.bench_with_input(BenchmarkId::new("window", window), &cfg, |b, cfg| {
            b.iter(|| black_box(translate_group::<daisy_ppc::PpcIsa>(cfg, &mem, prog.entry)));
        });
    }
    for (label, rename, spec) in
        [("full", true, true), ("no_rename", false, true), ("no_load_spec", true, false)]
    {
        let cfg = TranslatorConfig { rename, speculate_loads: spec, ..TranslatorConfig::default() };
        g.bench_with_input(BenchmarkId::new("mode", label), &cfg, |b, cfg| {
            b.iter(|| black_box(translate_group::<daisy_ppc::PpcIsa>(cfg, &mem, prog.entry)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
