//! The native-call context block.
//!
//! Compiled code receives a single pointer (held in `rbx` for the
//! whole run) to a [`JitCtx`], a `#[repr(C)]` block whose field
//! offsets are frozen as `OFF_*` constants and referenced by the
//! emitter in `lower.rs`. The dispatcher fills the input fields,
//! calls the shared entry thunk, and reads the exit record plus the
//! counter deltas back out. Keeping every counter in the block (one
//! `inc qword [rbx+OFF]` each) is what lets native runs reproduce
//! `RunStats` bit-for-bit against packed execution.

/// Exit kinds written to [`JitCtx::exit_kind`] by compiled code.
pub const EXIT_BRANCH: u32 = 0;
pub const EXIT_INDIRECT: u32 = 1;
pub const EXIT_INTERP: u32 = 2;
pub const EXIT_BAIL: u32 = 3;

/// The context block shared between the dispatcher and compiled code.
///
/// Field order is ABI: the `OFF_*` constants below must match, and a
/// unit test pins them with `core::mem::offset_of!`.
#[repr(C)]
pub struct JitCtx {
    /// `*mut u32` — the 77-entry architected value array.
    pub vals: *mut u32,
    /// Base of guest memory bytes.
    pub mem_base: *mut u8,
    /// Base of the per-page translated-bit array (one byte per 4 KiB page).
    pub translated_base: *const u8,
    /// Base of the branch-direction path log (one byte per `Cond`).
    pub log_base: *mut u8,
    /// VLIW budget: chain stubs stop following edges once
    /// `vliws >= budget_vliws`, returning to the dispatcher.
    pub budget_vliws: u64,
    /// Counter mirror of `RunStats.vliws_executed` (delta).
    pub vliws: u64,
    /// Counter mirror of `RunStats.base_instrs` (delta).
    pub base_instrs: u64,
    /// Counter mirror of `RunStats.loads` (delta).
    pub loads: u64,
    /// Counter mirror of `RunStats.stores` (delta).
    pub stores: u64,
    /// Chain-follow count (delta for `ChainStats.chained_dispatches`).
    pub chained_dispatches: u64,
    /// Same-page chain follows (delta for `RunStats.onpage_dispatches`).
    pub onpage_dispatches: u64,
    /// Cross-page direct chain follows (delta for `CrossPage.direct`).
    pub crosspage_direct: u64,
    /// Path-log cursor at exit (written from `r14` by the epilogue).
    pub log_end: *mut u8,
    /// One of the `EXIT_*` constants.
    pub exit_kind: u32,
    /// Branch: exit target. Indirect: computed target. Interp: addr.
    /// Bail: unused.
    pub exit_a: u32,
    /// Branch: exit slot. Indirect: via discriminant (0=Lr, 1=Ctr).
    /// Bail: bail-site id.
    pub exit_b: u32,
    /// `last_base` dedup register at exit (written from `r15d`).
    pub last_base: u32,
    /// Group id of the group executing at exit (for chain attribution).
    pub cur_group: u32,
    pub _pad: u32,
    /// Mirror of `RunStats.issue_histogram` (deltas).
    pub histogram: [u64; 25],
    /// Base of the bypassed-load pending table: one 32-byte row per
    /// architected register (`{gen: u64, ea: u32, value: u32,
    /// meta: u32, pad}`), owned by the native tier.
    pub pending_base: *mut u8,
    /// Monotonic pending-table generation. Every compiled group's
    /// prologue increments it, so rows written by an earlier group
    /// entry are stale exactly when the packed engine's per-dispatch
    /// pending reset would have cleared them. Never reset.
    pub pending_gen: u64,
    /// Inline indirect-cache hits (delta for `ChainStats.icache_hits`;
    /// each is also a chained dispatch).
    pub icache_hits: u64,
    /// Cross-page LR-indirect chain follows (delta for
    /// `CrossPage.via_lr`).
    pub crosspage_via_lr: u64,
    /// Cross-page CTR-indirect chain follows (delta for
    /// `CrossPage.via_ctr`).
    pub crosspage_via_ctr: u64,
    /// Back-edge budget limit of the currently executing group:
    /// `vliws`-at-entry plus the shared back-edge budget, snapshotted
    /// by every group prologue.
    pub entry_vliws: u64,
}

pub const OFF_VALS: i32 = 0;
pub const OFF_MEM_BASE: i32 = 8;
pub const OFF_TRANSLATED: i32 = 16;
pub const OFF_LOG_BASE: i32 = 24;
pub const OFF_BUDGET: i32 = 32;
pub const OFF_VLIWS: i32 = 40;
pub const OFF_BASE_INSTRS: i32 = 48;
pub const OFF_LOADS: i32 = 56;
pub const OFF_STORES: i32 = 64;
pub const OFF_CHAINED: i32 = 72;
pub const OFF_ONPAGE: i32 = 80;
pub const OFF_CROSSPAGE: i32 = 88;
pub const OFF_LOG_END: i32 = 96;
pub const OFF_EXIT_KIND: i32 = 104;
pub const OFF_EXIT_A: i32 = 108;
pub const OFF_EXIT_B: i32 = 112;
pub const OFF_LAST_BASE: i32 = 116;
pub const OFF_CUR_GROUP: i32 = 120;
pub const OFF_HISTOGRAM: i32 = 128;
pub const OFF_PENDING_BASE: i32 = 328;
pub const OFF_PENDING_GEN: i32 = 336;
pub const OFF_ICACHE_HITS: i32 = 344;
pub const OFF_CROSSPAGE_VIA_LR: i32 = 352;
pub const OFF_CROSSPAGE_VIA_CTR: i32 = 360;
pub const OFF_ENTRY_VLIWS: i32 = 368;

impl JitCtx {
    /// A zeroed context with dangling (never-dereferenced-as-is)
    /// pointers; the dispatcher overwrites every pointer field before
    /// each entry.
    pub fn new() -> JitCtx {
        JitCtx {
            vals: std::ptr::null_mut(),
            mem_base: std::ptr::null_mut(),
            translated_base: std::ptr::null(),
            log_base: std::ptr::null_mut(),
            budget_vliws: 0,
            vliws: 0,
            base_instrs: 0,
            loads: 0,
            stores: 0,
            chained_dispatches: 0,
            onpage_dispatches: 0,
            crosspage_direct: 0,
            log_end: std::ptr::null_mut(),
            exit_kind: 0,
            exit_a: 0,
            exit_b: 0,
            last_base: 0,
            cur_group: 0,
            _pad: 0,
            histogram: [0; 25],
            pending_base: std::ptr::null_mut(),
            pending_gen: 0,
            icache_hits: 0,
            crosspage_via_lr: 0,
            crosspage_via_ctr: 0,
            entry_vliws: 0,
        }
    }

    /// Clears the per-run counters and exit record (pointers and
    /// budget are left for the caller to set).
    pub fn reset_counters(&mut self) {
        self.vliws = 0;
        self.base_instrs = 0;
        self.loads = 0;
        self.stores = 0;
        self.chained_dispatches = 0;
        self.onpage_dispatches = 0;
        self.crosspage_direct = 0;
        self.log_end = std::ptr::null_mut();
        self.exit_kind = 0;
        self.exit_a = 0;
        self.exit_b = 0;
        self.last_base = 0;
        self.cur_group = 0;
        self.histogram = [0; 25];
        self.icache_hits = 0;
        self.crosspage_via_lr = 0;
        self.crosspage_via_ctr = 0;
        // `pending_gen` is deliberately *not* reset: row validity is
        // "gen matches the current value", and monotonicity guarantees
        // zeroed rows (gen 0) can never become valid again.
        // `entry_vliws` is overwritten by every group prologue.
    }
}

impl Default for JitCtx {
    fn default() -> Self {
        Self::new()
    }
}

/// Calls compiled code: `thunk` is the absolute address of the shared
/// entry thunk, `entry` the absolute address of a group body.
///
/// # Safety
/// `thunk`/`entry` must point at code emitted by this crate into a
/// sealed (`r-x`) arena, and every pointer field of `ctx` must be
/// valid for the accesses the compiled group performs (vals: 77×u32,
/// mem/translated: full guest image, log: the compiler-checked
/// capacity).
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
pub unsafe fn enter(thunk: u64, ctx: *mut JitCtx, entry: u64) {
    let f: extern "sysv64" fn(*mut JitCtx, u64) = unsafe { std::mem::transmute(thunk) };
    f(ctx, entry);
}

#[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
pub unsafe fn enter(_thunk: u64, _ctx: *mut JitCtx, _entry: u64) {
    unreachable!("native tier is gated off on this platform");
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::mem::offset_of;

    #[test]
    fn offsets_match_emitter_constants() {
        assert_eq!(offset_of!(JitCtx, vals), OFF_VALS as usize);
        assert_eq!(offset_of!(JitCtx, mem_base), OFF_MEM_BASE as usize);
        assert_eq!(offset_of!(JitCtx, translated_base), OFF_TRANSLATED as usize);
        assert_eq!(offset_of!(JitCtx, log_base), OFF_LOG_BASE as usize);
        assert_eq!(offset_of!(JitCtx, budget_vliws), OFF_BUDGET as usize);
        assert_eq!(offset_of!(JitCtx, vliws), OFF_VLIWS as usize);
        assert_eq!(offset_of!(JitCtx, base_instrs), OFF_BASE_INSTRS as usize);
        assert_eq!(offset_of!(JitCtx, loads), OFF_LOADS as usize);
        assert_eq!(offset_of!(JitCtx, stores), OFF_STORES as usize);
        assert_eq!(offset_of!(JitCtx, chained_dispatches), OFF_CHAINED as usize);
        assert_eq!(offset_of!(JitCtx, onpage_dispatches), OFF_ONPAGE as usize);
        assert_eq!(offset_of!(JitCtx, crosspage_direct), OFF_CROSSPAGE as usize);
        assert_eq!(offset_of!(JitCtx, log_end), OFF_LOG_END as usize);
        assert_eq!(offset_of!(JitCtx, exit_kind), OFF_EXIT_KIND as usize);
        assert_eq!(offset_of!(JitCtx, exit_a), OFF_EXIT_A as usize);
        assert_eq!(offset_of!(JitCtx, exit_b), OFF_EXIT_B as usize);
        assert_eq!(offset_of!(JitCtx, last_base), OFF_LAST_BASE as usize);
        assert_eq!(offset_of!(JitCtx, cur_group), OFF_CUR_GROUP as usize);
        assert_eq!(offset_of!(JitCtx, histogram), OFF_HISTOGRAM as usize);
        assert_eq!(offset_of!(JitCtx, pending_base), OFF_PENDING_BASE as usize);
        assert_eq!(offset_of!(JitCtx, pending_gen), OFF_PENDING_GEN as usize);
        assert_eq!(offset_of!(JitCtx, icache_hits), OFF_ICACHE_HITS as usize);
        assert_eq!(offset_of!(JitCtx, crosspage_via_lr), OFF_CROSSPAGE_VIA_LR as usize);
        assert_eq!(offset_of!(JitCtx, crosspage_via_ctr), OFF_CROSSPAGE_VIA_CTR as usize);
        assert_eq!(offset_of!(JitCtx, entry_vliws), OFF_ENTRY_VLIWS as usize);
    }
}
