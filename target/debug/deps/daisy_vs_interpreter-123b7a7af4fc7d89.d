/root/repo/target/debug/deps/daisy_vs_interpreter-123b7a7af4fc7d89.d: tests/daisy_vs_interpreter.rs Cargo.toml

/root/repo/target/debug/deps/libdaisy_vs_interpreter-123b7a7af4fc7d89.rmeta: tests/daisy_vs_interpreter.rs Cargo.toml

tests/daisy_vs_interpreter.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
