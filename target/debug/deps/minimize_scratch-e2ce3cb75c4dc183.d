/root/repo/target/debug/deps/minimize_scratch-e2ce3cb75c4dc183.d: tests/minimize_scratch.rs

/root/repo/target/debug/deps/minimize_scratch-e2ce3cb75c4dc183: tests/minimize_scratch.rs

tests/minimize_scratch.rs:
