//! `profile` — per-group execution profile and structured-event report
//! for one or more workloads.
//!
//! ```text
//! profile [--tiered] [--top N] [--jsonl FILE] [WORKLOAD ...]
//!
//!   --tiered      enable profile-guided tiered retranslation
//!                 (default TierPolicy: promote at 64 dispatches)
//!   --top N       show the N hottest groups (default 10)
//!   --jsonl FILE  also stream every trace event to FILE as JSON lines
//!   WORKLOAD      workload names (default: all nine)
//! ```
//!
//! For each workload this prints the top-N groups by dispatch count
//! (entry address, tier, dispatches, chained share, VLIWs retired,
//! stall cycles) and a histogram of structured trace events.

use daisy::prelude::*;
use daisy_bench::reporting::{resolve_workloads, run_profiled, RunConfig};
use std::collections::BTreeMap;

struct Options {
    tiered: bool,
    top: usize,
    jsonl: Option<String>,
    workloads: Vec<String>,
}

fn parse_args() -> Options {
    let mut opts = Options { tiered: false, top: 10, jsonl: None, workloads: Vec::new() };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--tiered" => opts.tiered = true,
            "--top" => {
                let n = args.next().expect("--top needs a value");
                opts.top = n.parse().expect("--top needs an integer");
            }
            "--jsonl" => opts.jsonl = Some(args.next().expect("--jsonl needs a path")),
            "--help" | "-h" => {
                println!("profile [--tiered] [--top N] [--jsonl FILE] [WORKLOAD ...]");
                std::process::exit(0);
            }
            other => opts.workloads.push(other.to_string()),
        }
    }
    opts
}

fn profile_workload(w: &daisy_workloads::Workload, opts: &Options) {
    let sink = RingSink::new(1 << 16);
    let sys = run_profiled(
        w,
        RunConfig {
            tiered: opts.tiered.then(TierPolicy::default),
            sink: Some(sink.clone()),
            ..RunConfig::default()
        },
    );

    let profiler = sys.profiler.as_ref().expect("profiling enabled");
    let mode = if opts.tiered { "tiered" } else { "cold-only" };
    println!("== {} ({mode}, {} distinct groups) ==", w.name, profiler.len());
    println!(
        "{:>10}  {:>5}  {:>10}  {:>8}  {:>12}  {:>12}",
        "entry", "tier", "dispatches", "chained%", "vliws", "stalls"
    );
    for (entry, p) in profiler.top_by_dispatches(opts.top) {
        let chained_pct = if p.dispatches == 0 {
            0.0
        } else {
            100.0 * p.chained_dispatches as f64 / p.dispatches as f64
        };
        println!(
            "{entry:>#10x}  {:>5}  {:>10}  {chained_pct:>7.1}%  {:>12}  {:>12}",
            p.tier.name(),
            p.dispatches,
            p.vliws_retired,
            p.stall_cycles
        );
    }

    let events = sink.events();
    let mut hist: BTreeMap<&'static str, u64> = BTreeMap::new();
    for ev in &events {
        *hist.entry(ev.kind()).or_default() += 1;
    }
    println!("-- events ({} captured, {} dropped) --", events.len(), sink.dropped());
    for (kind, n) in &hist {
        println!("{kind:>18}  {n}");
    }
    if sys.vmm.stats.hot_promotions > 0 {
        println!("-- {} hot promotions --", sys.vmm.stats.hot_promotions);
    }
    println!();

    if let Some(path) = &opts.jsonl {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .expect("open --jsonl file");
        for ev in &events {
            writeln!(f, "{}", ev.to_json()).expect("write --jsonl file");
        }
    }
}

fn main() {
    let opts = parse_args();
    let workloads = resolve_workloads(&opts.workloads);
    for w in &workloads {
        profile_workload(w, &opts);
    }
}
