/root/repo/target/release/deps/daisy_workloads-b41e4d2f50f4d7d6.d: crates/workloads/src/lib.rs crates/workloads/src/cmp.rs crates/workloads/src/compress.rs crates/workloads/src/fgrep.rs crates/workloads/src/hist.rs crates/workloads/src/lex.rs crates/workloads/src/sieve.rs crates/workloads/src/sort.rs crates/workloads/src/wc.rs crates/workloads/src/xlat.rs

/root/repo/target/release/deps/libdaisy_workloads-b41e4d2f50f4d7d6.rlib: crates/workloads/src/lib.rs crates/workloads/src/cmp.rs crates/workloads/src/compress.rs crates/workloads/src/fgrep.rs crates/workloads/src/hist.rs crates/workloads/src/lex.rs crates/workloads/src/sieve.rs crates/workloads/src/sort.rs crates/workloads/src/wc.rs crates/workloads/src/xlat.rs

/root/repo/target/release/deps/libdaisy_workloads-b41e4d2f50f4d7d6.rmeta: crates/workloads/src/lib.rs crates/workloads/src/cmp.rs crates/workloads/src/compress.rs crates/workloads/src/fgrep.rs crates/workloads/src/hist.rs crates/workloads/src/lex.rs crates/workloads/src/sieve.rs crates/workloads/src/sort.rs crates/workloads/src/wc.rs crates/workloads/src/xlat.rs

crates/workloads/src/lib.rs:
crates/workloads/src/cmp.rs:
crates/workloads/src/compress.rs:
crates/workloads/src/fgrep.rs:
crates/workloads/src/hist.rs:
crates/workloads/src/lex.rs:
crates/workloads/src/sieve.rs:
crates/workloads/src/sort.rs:
crates/workloads/src/wc.rs:
crates/workloads/src/xlat.rs:
