//! Assembled guest program images.

use crate::mem::{MemFault, Memory};
use std::collections::HashMap;

/// An assembled program image, produced by a guest assembler and
/// consumed by the loader and harnesses without regard to which ISA
/// the code words encode.
#[derive(Debug, Clone)]
pub struct Program {
    /// Address of the first code word.
    pub base: u32,
    /// Execution entry point.
    pub entry: u32,
    /// Assembled instruction words, contiguous from `base`.
    pub code: Vec<u32>,
    /// Data blobs to place at absolute addresses.
    pub data: Vec<(u32, Vec<u8>)>,
    /// Label addresses, for tests and harnesses.
    pub labels: HashMap<String, u32>,
}

impl Program {
    /// Copies code and data into emulated memory.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`MemFault`] if any region falls outside
    /// physical memory.
    pub fn load_into(&self, mem: &mut Memory) -> Result<(), MemFault> {
        for (i, w) in self.code.iter().enumerate() {
            mem.write_u32(self.base + 4 * i as u32, *w)?;
        }
        for (addr, bytes) in &self.data {
            mem.write_bytes(*addr, bytes)?;
        }
        Ok(())
    }

    /// Code size in bytes.
    pub fn code_size(&self) -> u32 {
        4 * self.code.len() as u32
    }

    /// Address of a label.
    ///
    /// # Panics
    ///
    /// Panics if the label does not exist (programmer error in a test
    /// or harness).
    pub fn addr_of(&self, label: &str) -> u32 {
        self.labels[label]
    }
}
