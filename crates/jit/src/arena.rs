//! The W^X executable code arena.
//!
//! One anonymous `mmap` region holds every compiled group plus the
//! shared entry thunk and epilogue. The mapping is normally `r-x`; it
//! flips to `rw-` only for the duration of a write (initial group
//! installation, chain-edge patching) and back before any guest code
//! runs — writable and executable are never both set, and execution
//! is single-threaded so there is no window where another thread could
//! run code mid-write.
//!
//! Allocation is a bump pointer and freed code is never reclaimed:
//! compiled groups are retired by flipping their alive byte (see
//! [`crate::AliveSlab`]), which unpatches nothing and reuses nothing,
//! so stale chain edges can never jump into recycled bytes. A full
//! arena simply stops further compilation — execution falls back to
//! the packed tier, never fails.
//!
//! The container has no libc crate, so the three needed syscalls are
//! issued directly.

use std::cell::{Cell, RefCell};

const PROT_READ: usize = 1;
const PROT_WRITE: usize = 2;
const PROT_EXEC: usize = 4;
const MAP_PRIVATE: usize = 0x02;
const MAP_ANONYMOUS: usize = 0x20;

const SYS_MMAP: usize = 9;
const SYS_MPROTECT: usize = 10;
const SYS_MUNMAP: usize = 11;

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
unsafe fn syscall6(
    nr: usize,
    a1: usize,
    a2: usize,
    a3: usize,
    a4: usize,
    a5: usize,
    a6: usize,
) -> isize {
    let ret: isize;
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") nr => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            in("r8") a5,
            in("r9") a6,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret
}

/// An executable bump-allocated mapping.
///
/// All methods take `&self`: interior mutability keeps the arena
/// shareable behind `Rc` from every compiled group (whose code must
/// stay mapped as long as any of them is alive).
#[derive(Debug)]
pub struct Arena {
    base: *mut u8,
    len: usize,
    used: Cell<usize>,
    writable: Cell<bool>,
    /// Registered patch points: `(offset of a rel32 field, original
    /// target offset)` — enough to restore every chain edge to its
    /// fallback path on a global unpatch.
    patches: RefCell<Vec<PatchSite>>,
}

/// One installed chain-edge patch, recorded so severs can undo it.
#[derive(Debug, Clone, Copy)]
pub struct PatchSite {
    /// Offset of the patched `jmp` rel32 field within the arena.
    pub site: usize,
    /// Arena offset the site jumps to while patched (the chain stub).
    pub stub: usize,
    /// Arena offset the site jumps to when unpatched (the fallback).
    pub fallback: usize,
}

impl Arena {
    /// Maps `len` bytes of executable memory. Returns `None` when the
    /// platform cannot provide it (non-x86-64, non-Linux, or mmap
    /// failure) — callers then keep executing on the packed tier.
    pub fn new(len: usize) -> Option<Arena> {
        #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
        {
            let addr = unsafe {
                syscall6(
                    SYS_MMAP,
                    0,
                    len,
                    PROT_READ | PROT_WRITE,
                    MAP_PRIVATE | MAP_ANONYMOUS,
                    usize::MAX, // fd = -1
                    0,
                )
            };
            if !(0..isize::MAX).contains(&addr) || addr == 0 {
                return None;
            }
            Some(Arena {
                base: addr as *mut u8,
                len,
                used: Cell::new(0),
                writable: Cell::new(true),
                patches: RefCell::new(Vec::new()),
            })
        }
        #[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
        {
            let _ = len;
            None
        }
    }

    /// Base address of the mapping.
    pub fn base(&self) -> *const u8 {
        self.base
    }

    /// Bytes already handed out.
    pub fn used(&self) -> usize {
        self.used.get()
    }

    /// Bytes still available.
    pub fn remaining(&self) -> usize {
        self.len - self.used.get()
    }

    /// The absolute address `install` would place the next blob at
    /// (accounting for its 16-byte alignment).
    pub fn next_addr(&self) -> u64 {
        self.base as u64 + ((self.used.get() + 15) & !15) as u64
    }

    fn set_prot(&self, prot: usize) {
        #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
        {
            let r = unsafe { syscall6(SYS_MPROTECT, self.base as usize, self.len, prot, 0, 0, 0) };
            debug_assert_eq!(r, 0, "mprotect failed");
        }
        #[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
        let _ = prot;
    }

    fn make_writable(&self) {
        if !self.writable.get() {
            self.set_prot(PROT_READ | PROT_WRITE);
            self.writable.set(true);
        }
    }

    /// Flips the whole mapping to `r-x`. Must be called after any
    /// write sequence, before guest code re-enters the arena.
    pub fn seal(&self) {
        if self.writable.get() {
            self.set_prot(PROT_READ | PROT_EXEC);
            self.writable.set(false);
        }
    }

    /// Copies `code` into the arena at the current bump position and
    /// returns its offset. Returns `None` when the arena is full. The
    /// mapping is left writable; call [`Arena::seal`] before executing.
    pub fn install(&self, code: &[u8]) -> Option<usize> {
        // Align each blob so patched rel32 stores stay within the blob.
        let at = (self.used.get() + 15) & !15;
        if at + code.len() > self.len {
            return None;
        }
        self.make_writable();
        unsafe {
            std::ptr::copy_nonoverlapping(code.as_ptr(), self.base.add(at), code.len());
        }
        self.used.set(at + code.len());
        Some(at)
    }

    /// Absolute address of arena offset `off`.
    pub fn addr_of(&self, off: usize) -> u64 {
        debug_assert!(off < self.len);
        self.base as u64 + off as u64
    }

    /// Rewrites the rel32 field at arena offset `at` to land on the
    /// absolute address `target`, then records nothing — use
    /// [`Arena::patch_edge`] for tracked chain edges.
    pub fn write_rel32(&self, at: usize, target: u64) {
        self.make_writable();
        let next = self.base as u64 + at as u64 + 4;
        let rel = (target as i64).wrapping_sub(next as i64) as i32;
        unsafe {
            std::ptr::copy_nonoverlapping(rel.to_le_bytes().as_ptr(), self.base.add(at), 4);
        }
    }

    /// Writes an imm64 field at arena offset `at`.
    pub fn write_imm64(&self, at: usize, v: u64) {
        self.make_writable();
        unsafe {
            std::ptr::copy_nonoverlapping(v.to_le_bytes().as_ptr(), self.base.add(at), 8);
        }
    }

    /// Activates a chain edge: points `site.site` at `site.stub` and
    /// records the site so [`Arena::unpatch_all`] can restore it.
    pub fn patch_edge(&self, site: PatchSite) {
        self.write_rel32(site.site, self.addr_of(site.stub));
        self.patches.borrow_mut().push(site);
    }

    /// Restores every patched chain edge to its fallback path (the
    /// exit-record sequence that returns to the dispatcher). Returns
    /// how many were restored.
    pub fn unpatch_all(&self) -> u64 {
        let sites = std::mem::take(&mut *self.patches.borrow_mut());
        let n = sites.len() as u64;
        for s in &sites {
            self.write_rel32(s.site, self.addr_of(s.fallback));
        }
        if n > 0 {
            self.seal();
        }
        n
    }

    /// Number of currently active chain-edge patches.
    pub fn active_patches(&self) -> usize {
        self.patches.borrow().len()
    }
}

impl Drop for Arena {
    fn drop(&mut self) {
        #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
        unsafe {
            syscall6(SYS_MUNMAP, self.base as usize, self.len, 0, 0, 0, 0);
        }
    }
}

#[cfg(all(test, target_arch = "x86_64", target_os = "linux"))]
mod tests {
    use super::*;

    #[test]
    fn map_install_execute_roundtrip() {
        let arena = Arena::new(1 << 16).expect("mmap");
        // lea eax, [rdi+1]; ret  — fn(i32-ish in rdi low) -> edi+1
        let off = arena.install(&[0x8D, 0x47, 0x01, 0xC3]).expect("fits");
        arena.seal();
        let f: extern "sysv64" fn(u64) -> u32 = unsafe { std::mem::transmute(arena.addr_of(off)) };
        assert_eq!(f(41), 42);
    }

    #[test]
    fn patch_and_unpatch_rewrite_jump_targets() {
        let arena = Arena::new(1 << 16).expect("mmap");
        // jmp +0 (to fallback); fallback: mov eax,1; ret; stub: mov eax,2; ret
        let mut code = vec![0xE9, 0, 0, 0, 0]; // site at 0, rel at 1
        let fallback = code.len();
        code.extend_from_slice(&[0xB8, 1, 0, 0, 0, 0xC3]);
        let stub = code.len();
        code.extend_from_slice(&[0xB8, 2, 0, 0, 0, 0xC3]);
        let off = arena.install(&code).expect("fits");
        arena.write_rel32(off + 1, arena.addr_of(off + fallback));
        arena.seal();
        let f: extern "sysv64" fn() -> u32 = unsafe { std::mem::transmute(arena.addr_of(off)) };
        assert_eq!(f(), 1);
        arena.patch_edge(PatchSite { site: off + 1, stub: off + stub, fallback: off + fallback });
        arena.seal();
        assert_eq!(f(), 2);
        assert_eq!(arena.unpatch_all(), 1);
        assert_eq!(f(), 1);
        assert_eq!(arena.active_patches(), 0);
    }

    #[test]
    fn full_arena_refuses_cleanly() {
        let arena = Arena::new(4096).expect("mmap");
        assert!(arena.install(&[0x90; 4000]).is_some());
        assert!(arena.install(&[0x90; 200]).is_none());
    }
}
