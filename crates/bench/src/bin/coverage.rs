//! Native-coverage gate: runs every paper workload on the native tier
//! and compares the measured coverage (fraction of tree instructions
//! executed as compiled x86-64) against the values committed in
//! `BENCH_engine.json`. Coverage is a deterministic property of the
//! translator and lowerer — unlike wall-clock timings it does not move
//! with host load — so CI can fail on regressions without flakiness.
//!
//! Usage: `coverage --check BENCH_engine.json [--tolerance 0.05]`
//!
//! Exits nonzero if any workload's coverage drops more than
//! `tolerance` below its committed value. Without `--check` it just
//! prints the measured table (for refreshing expectations by eye).

use daisy::system::DaisySystem;
use daisy_ppc::PpcIsa;

fn measured_coverage(name: &str) -> f64 {
    let w = daisy_workloads::by_name(name).unwrap();
    let mut sys =
        DaisySystem::<PpcIsa>::builder().mem_size(w.mem_size).native_execution(true).build();
    sys.load(&w.program()).unwrap();
    sys.run(10 * w.max_instrs).unwrap();
    w.check(&sys.cpu, &sys.mem).unwrap_or_else(|e| panic!("{name}: wrong guest result: {e}"));
    sys.native_stats()
        .map(|ns| ns.vliws_native as f64 / sys.stats.vliws_executed.max(1) as f64)
        .unwrap_or(0.0)
}

/// Pulls `"coverage": <float>` out of the workload's row in the
/// committed JSON (the file is written by the engine bench with a
/// fixed shape; no JSON dependency needed).
fn committed_coverage(json: &str, name: &str) -> Option<f64> {
    let row_start = json.find(&format!("\"name\": \"{name}\""))?;
    let row = &json[row_start..];
    let row = &row[..row.find('\n').unwrap_or(row.len())];
    let key = "\"coverage\": ";
    let at = row.find(key)? + key.len();
    let rest = &row[at..];
    let end = rest.find(|c: char| c != '.' && !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut check: Option<String> = None;
    let mut tolerance = 0.05f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check" => check = Some(it.next().expect("--check needs a path").clone()),
            "--tolerance" => {
                tolerance = it.next().expect("--tolerance needs a value").parse().unwrap()
            }
            other => panic!("unknown argument {other}"),
        }
    }
    let committed = check
        .map(|p| std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("cannot read {p}: {e}")));
    let mut failures = 0;
    for w in &daisy_workloads::all() {
        let got = measured_coverage(w.name);
        match committed.as_deref().and_then(|j| committed_coverage(j, w.name)) {
            Some(want) => {
                let ok = got >= want - tolerance;
                println!(
                    "{:10} coverage {:.3} committed {:.3} {}",
                    w.name,
                    got,
                    want,
                    if ok { "ok" } else { "REGRESSED" }
                );
                if !ok {
                    failures += 1;
                }
            }
            None => println!("{:10} coverage {:.3}", w.name, got),
        }
    }
    if failures > 0 {
        eprintln!("error: native coverage regressed on {failures} workload(s)");
        std::process::exit(1);
    }
}
