/root/repo/target/release/examples/precise_exceptions-a68c3295ce285691.d: examples/precise_exceptions.rs

/root/repo/target/release/examples/precise_exceptions-a68c3295ce285691: examples/precise_exceptions.rs

examples/precise_exceptions.rs:
