//! Property tests for the cache simulator.

use daisy_cachesim::{Cache, CacheConfig, Hierarchy};
use proptest::prelude::*;

proptest! {
    /// Re-accessing an address immediately after an access always hits
    /// (the line was just filled and nothing evicted it).
    #[test]
    fn immediate_reaccess_hits(addrs in prop::collection::vec(any::<u32>(), 1..64)) {
        let mut c = Cache::new(CacheConfig::new("t", 1 << 12, 2, 32, 1));
        for a in addrs {
            let _ = c.access(a);
            prop_assert!(c.access(a), "address {a:#x} must hit on immediate re-access");
        }
    }

    /// Accesses within one line behave identically to the line address.
    #[test]
    fn line_granularity(base in any::<u32>(), offsets in prop::collection::vec(0u32..32, 1..16)) {
        let mut c = Cache::new(CacheConfig::new("t", 1 << 12, 4, 32, 1));
        let line = base & !31;
        let _ = c.access(line);
        for off in offsets {
            prop_assert!(c.access(line.wrapping_add(off)));
        }
    }

    /// A working set no larger than the associativity of one set can
    /// never conflict-miss after warmup.
    #[test]
    fn within_associativity_no_thrash(tags in prop::collection::vec(0u32..8, 2..4)) {
        // 4-way, one set of 32-byte lines → any ≤4 distinct lines co-reside.
        let mut c = Cache::new(CacheConfig::new("t", 4 * 32, 4, 32, 1));
        let lines: Vec<u32> = tags.iter().map(|t| t * 32).collect();
        for &l in &lines {
            let _ = c.access(l);
        }
        for &l in &lines {
            prop_assert!(c.access(l), "line {l:#x} evicted within associativity");
        }
    }

    /// Hierarchy penalties are monotone: an access can never be cheaper
    /// than a hit at the level it lands in, and the infinite hierarchy
    /// is always free.
    #[test]
    fn infinite_hierarchy_is_always_free(addrs in prop::collection::vec(any::<u32>(), 1..64)) {
        let mut h = Hierarchy::infinite();
        for a in addrs {
            prop_assert_eq!(h.access_data(a, false).penalty, 0);
            prop_assert_eq!(h.access_instr(a).penalty, 0);
        }
    }

    /// Miss counts never exceed access counts and stats accumulate.
    #[test]
    fn stats_are_consistent(addrs in prop::collection::vec(any::<u32>(), 1..256)) {
        let mut h = Hierarchy::paper_default();
        for a in &addrs {
            let _ = h.access_data(*a, false);
        }
        for (_, st) in h.level_stats() {
            prop_assert!(st.misses <= st.accesses);
        }
        let first = &h.level_stats()[1]; // L0 DCache
        prop_assert_eq!(first.1.accesses, addrs.len() as u64);
    }
}
