//! RV32I (subset) guest frontend for the DAISY reproduction.
//!
//! The second guest ISA behind the [`daisy_isa::Isa`] boundary,
//! proving the translation core is guest-agnostic: the same scheduler,
//! VMM, engine, and recovery machinery that runs PowerPC binaries runs
//! RV32I binaries through `DaisySystem<Rv32Isa>`. The crate provides:
//!
//! * [`insn`] — the RV32I (subset) instruction set as a typed enum
//!   with bit-exact encode/decode,
//! * [`asm`] — a label-based assembler / program builder,
//! * [`interp`] — a reference interpreter with machine-mode trap CSRs
//!   (`mepc`, `mcause`, `mtval`, `mstatus.MIE/MPIE`) that defines the
//!   semantics DAISY must preserve,
//! * [`convert`] — lowering to the shared VLIW RISC primitives,
//! * [`frontend`] — the [`Rv32Isa`] marker wiring it all to the
//!   boundary,
//! * [`workloads`] — ports of benchmark workloads consuming the same
//!   synthetic inputs as their PowerPC counterparts, for cross-ISA
//!   differential testing.
//!
//! Like the rest of this reproduction's guest memory, the emulated
//! memory image is big-endian; the interpreter and the translated code
//! agree on that convention, so the guest is self-consistent (its
//! oracle *is* this interpreter).
//!
//! # Example
//!
//! ```
//! use daisy_rv32::asm::Asm;
//! use daisy_rv32::insn::Xr;
//! use daisy_rv32::interp::Cpu;
//! use daisy_rv32::mem::Memory;
//! use daisy_isa::StopReason;
//!
//! // a0 = 6 + 7, then exit via ecall.
//! let mut a = Asm::new(0x1000);
//! a.li(Xr(5), 6);
//! a.addi(Xr(10), Xr(5), 7);
//! a.ecall();
//! let prog = a.finish().unwrap();
//!
//! let mut mem = Memory::new(0x1_0000);
//! prog.load_into(&mut mem).unwrap();
//! let mut cpu = Cpu::new(prog.entry);
//! assert_eq!(cpu.run(&mut mem, 100), StopReason::Syscall);
//! assert_eq!(cpu.x[10], 13);
//! ```

#![warn(missing_docs)]

pub mod asm;
pub mod convert;
pub mod frontend;
pub mod insn;
pub mod interp;
pub mod workloads;

// Emulated guest memory is ISA-neutral and shared across frontends.
pub use daisy_isa::mem;
pub use daisy_isa::mem::Memory;

pub use asm::{Asm, AsmError, Program};
pub use frontend::Rv32Isa;
pub use insn::{decode, encode, Insn, Xr};
pub use interp::{mcause, Cpu, DecodeCache, TRAP_VECTOR};
