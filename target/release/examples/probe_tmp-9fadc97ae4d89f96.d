/root/repo/target/release/examples/probe_tmp-9fadc97ae4d89f96.d: examples/probe_tmp.rs

/root/repo/target/release/examples/probe_tmp-9fadc97ae4d89f96: examples/probe_tmp.rs

examples/probe_tmp.rs:
