#!/usr/bin/env bash
# Lint gate: clippy warnings are errors, formatting is canonical
# (see rustfmt.toml), the API docs must build warning-free, and every
# doctest must pass. Run before sending changes; CI runs the same.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
cargo test --workspace --doc
