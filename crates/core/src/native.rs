//! The native host-code tier: dispatch policy and statistics
//! reconciliation around the `daisy-jit` compiler.
//!
//! The top rung of the execution ladder. Hot [`GroupCode`]s are
//! lowered to x86-64 (see `daisy_jit::lower`) and entered directly;
//! the compiled code mirrors every [`RunStats`] counter the packed
//! engine would have bumped, so a native dispatch is *observationally
//! identical* to a packed one — same architected state, same
//! statistics, same trace stream. `tests/prop_native.rs` pins that
//! equivalence over the full workload suite.
//!
//! Three mechanisms keep the tier honest:
//!
//! * **Refusal** — groups whose shape falls outside what the lowerer
//!   can reproduce (pathological condition depth, arena exhaustion,
//!   or — under ablation — `General`-class parcels) are never
//!   compiled; they stay on the packed engine forever. Trap checks,
//!   load-verify commits and intra-group back edges all lower to
//!   templates now, so a default-configured tier refuses almost
//!   nothing.
//! * **Bail-out** — compiled code stops *before* any side effect it
//!   cannot reproduce exactly (a faulting access, a store to a
//!   translated page). The dispatcher then reconstructs the packed
//!   engine's architected-event trail from the branch-direction path
//!   log (`reconstruct_events`) and resumes the same group mid-node
//!   on the packed engine ([`crate::engine::run_group_resume`]), so
//!   §3.5 precise-exception recovery works unchanged.
//! * **Severing** — chained direct jumps between compiled groups are
//!   guarded by per-group alive bytes and a global patch log; any
//!   invalidation or cast-out in the VMM flushes every native edge
//!   (the analogue of the weak-`Rc` chain links severing), and
//!   execution falls back to dispatcher boundaries.

use crate::engine::{EngineScratch, GroupCode, GroupExit, ResumePoint};
use crate::precise::ArchEvent;
use crate::stats::RunStats;
use crate::trace::{TraceEvent, Tracer};
use daisy_isa::mem::Memory;
use daisy_jit::ctx::{EXIT_BAIL, EXIT_INDIRECT, EXIT_INTERP};
pub use daisy_jit::lower::Refusal;
use daisy_jit::{ctx::JitCtx, CompileOpts, CompiledGroup, Jit, DEFAULT_ARENA_BYTES, LOG_CAPACITY};
use daisy_vliw::op::{MemWidth, OpKind};
use daisy_vliw::packed::{OpClass, OpMeta, PackedCtrl, PackedGroup, BACKEDGE_VLIW_BUDGET};
use daisy_vliw::reg::{Reg, NUM_REGS};
use daisy_vliw::regfile::RegFile;
use daisy_vliw::tree::IndirectVia;
use std::collections::HashMap;
use std::rc::{Rc, Weak};

/// Default dispatch count before a group is lowered to native code.
pub const DEFAULT_NATIVE_THRESHOLD: u64 = 8;

/// Tree instructions a single native entry may execute before chain
/// stubs stop following patched edges and return to the dispatcher
/// (bounds chained loops; also the granularity of run-budget checks).
const NATIVE_VLIW_BUDGET: u64 = 16_384;

/// Counters of the native tier itself (compilation and dispatch
/// behaviour; the *architectural* counters go straight into
/// [`RunStats`], where they are indistinguishable from packed
/// execution's).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NativeStats {
    /// Groups successfully lowered to host code.
    pub compiles: u64,
    /// Groups refused by the lowerer (see `daisy_jit::lower::Refusal`).
    pub refusals: u64,
    /// Dispatches that entered native code.
    pub dispatches: u64,
    /// Group-to-group transfers that stayed inside native code
    /// (patched chain edges followed without a dispatcher boundary).
    pub chained: u64,
    /// Native runs that bailed back to the packed engine mid-group.
    pub bails: u64,
    /// Chain edges patched into direct jumps.
    pub edge_patches: u64,
    /// Global severs: every patched edge restored and every compiled
    /// group retired (invalidation, cast-out, ladder engagement).
    pub flushes: u64,
    /// Tree instructions executed natively (numerator of native
    /// coverage; the denominator is [`RunStats::vliws_executed`]).
    pub vliws_native: u64,
    /// Parcels covered by successful compilations.
    pub parcels_compiled: u64,
    /// Parcels in refused groups (template-coverage ablation data).
    pub parcels_refused: u64,
    /// Refusals broken down by [`Refusal`] variant (index via
    /// [`Refusal::index`]).
    pub refusal_histogram: [u64; Refusal::COUNT],
    /// Indirect exits resolved by a group's inline indirect-branch
    /// target cache without a dispatcher boundary. Architecturally
    /// these count as icache hits + chained dispatches in [`RunStats`];
    /// this tier-side counter isolates the inline mechanism.
    pub ibtc_hits: u64,
}

/// Default predicted-coverage floor below which a warm entry is
/// refused as not worthwhile (see [`NativeTierConfig::min_coverage`]).
pub const DEFAULT_NATIVE_MIN_COVERAGE: f64 = 0.25;

/// Configuration of the native tier (the ablation levers plus the
/// warm-up threshold).
#[derive(Debug, Clone, Copy)]
pub struct NativeTierConfig {
    /// Dispatch count before a group is lowered (min 1).
    pub threshold: u64,
    /// Give groups with indirect exits an inline indirect-branch
    /// target cache (IBTC).
    pub ibtc: bool,
    /// Lower `General`-class parcels (trap checks, load-verify
    /// commits) instead of refusing groups that contain them.
    pub general_templates: bool,
    /// Worthwhile-ness floor: a warm entry whose statically predicted
    /// template coverage (lowerable parcels / total parcels) falls
    /// below this fraction is refused without attempting compilation.
    /// With `general_templates` on the prediction is always 1.0, so
    /// this only bites under ablation.
    pub min_coverage: f64,
}

impl Default for NativeTierConfig {
    fn default() -> Self {
        NativeTierConfig {
            threshold: DEFAULT_NATIVE_THRESHOLD,
            ibtc: true,
            general_templates: true,
            min_coverage: DEFAULT_NATIVE_MIN_COVERAGE,
        }
    }
}

/// Per-entry compilation state.
enum Slot {
    /// Seen `n` native-eligible dispatches; compiles at the threshold.
    Cold(u64),
    /// Lowered and installed.
    Compiled(Rc<CompiledGroup>),
    /// Permanently outside the template set (for this translation).
    Refused,
}

struct EntryState {
    /// Identity of the translation this state describes: if the VMM
    /// rebuilds the entry (retranslation, promotion), the state resets.
    identity: Weak<GroupCode>,
    slot: Slot,
}

/// Registry row resolving a compiled group id (`JitCtx::cur_group`)
/// back to its guest entry and translation.
struct RegEntry {
    entry: u32,
    code: Weak<GroupCode>,
    compiled: Weak<CompiledGroup>,
}

/// Outcome of one native dispatch.
pub enum NativeRun {
    /// The run completed natively; `exit` is exactly what the packed
    /// engine would have returned from the *final* group executed
    /// (`final_entry`, whose translation is `final_code` for chain
    /// bookkeeping).
    Done {
        /// The group exit, packed-engine-identical.
        exit: GroupExit,
        /// Entry of the group that produced the exit (chained runs may
        /// end groups away from the dispatched one).
        final_entry: u32,
        /// Translation of that group, for pending-chain bookkeeping.
        final_code: Option<Rc<GroupCode>>,
    },
    /// The run bailed pre-side-effect; the caller must resume `code`
    /// on the packed engine at `point` (scratch already reconstructed).
    Resume {
        /// Translation of the group that bailed.
        code: Rc<GroupCode>,
        /// Entry of that group.
        entry: u32,
        /// Where the packed engine re-enters.
        point: ResumePoint,
    },
}

/// The native tier: compiler, code cache, per-entry warm-up counters,
/// and the dispatch context block.
pub struct NativeTier {
    jit: Jit,
    config: NativeTierConfig,
    entries: HashMap<u32, EntryState>,
    registry: HashMap<u32, RegEntry>,
    ctx: JitCtx,
    log: Vec<u8>,
    /// Bypassed-load pending table: [`NUM_REGS`] rows of 32 bytes
    /// (`{gen: u64, ea: u32, value: u32, meta: u32, pad}`), written by
    /// the bypassed-load template and read by the verify-commit
    /// template. `u64` elements so the generation word is aligned; the
    /// prologue's `pending_gen` bump invalidates all rows at once.
    pending: Vec<u64>,
    /// `(invalidations, cast_outs, alias_retranslations)` snapshot;
    /// any drift severs all native chain edges and retires all
    /// compiled groups.
    epoch: (u64, u64, u64),
    /// Native-tier counters.
    pub stats: NativeStats,
}

impl std::fmt::Debug for NativeTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NativeTier")
            .field("config", &self.config)
            .field("entries", &self.entries.len())
            .field("stats", &self.stats)
            .finish()
    }
}

/// Bytes per pending-table row (must match the lowerer's layout).
const PENDING_ROW_BYTES: usize = 32;

// The inline IBTC reuses the dispatcher icache's way function, so the
// two must agree on geometry (see `GroupCode::icache_way`).
const _: () = assert!(daisy_jit::IBTC_WAYS == crate::engine::ICACHE_WAYS);

impl NativeTier {
    /// Creates the tier, mapping the code arena. `None` when the host
    /// cannot execute emitted code (non-x86-64/Linux) — callers then
    /// run everything on the packed engine.
    pub fn new(config: NativeTierConfig) -> Option<NativeTier> {
        Some(NativeTier {
            jit: Jit::new(DEFAULT_ARENA_BYTES)?,
            config: NativeTierConfig { threshold: config.threshold.max(1), ..config },
            entries: HashMap::new(),
            registry: HashMap::new(),
            ctx: JitCtx::new(),
            log: vec![0u8; LOG_CAPACITY],
            pending: vec![0u64; NUM_REGS * PENDING_ROW_BYTES / 8],
            epoch: (0, 0, 0),
            stats: NativeStats::default(),
        })
    }

    /// Severs every patched chain edge and retires every compiled
    /// group (their alive bytes flip, so even a stale patched edge
    /// could never enter them). Warm-up counts and refusals survive —
    /// they describe the *translations*, whose staleness the per-entry
    /// identity check handles — and retired entries stay hot, so a
    /// still-live hot group recompiles on its next dispatch instead of
    /// re-warming from zero under invalidation churn.
    pub fn flush(&mut self) {
        self.jit.unlink_all();
        let threshold = self.config.threshold;
        for st in self.entries.values_mut() {
            if let Slot::Compiled(cg) = &st.slot {
                // Drop the retiring group's inline indirect-target
                // entries too: they are the IBTC analogue of the chain
                // edges `unlink_all` just severed.
                if let Some(t) = cg.ibtc() {
                    t.clear();
                }
                st.slot = Slot::Cold(threshold);
            }
        }
        self.stats.flushes += 1;
    }

    /// Compares the VMM's invalidation/cast-out/alias-retranslation
    /// counters against the last-seen snapshot and flushes on any
    /// drift — the native analogue of weak chain links severing when
    /// translations die.
    pub fn sync_epoch(&mut self, invalidations: u64, cast_outs: u64, alias_retranslations: u64) {
        if self.epoch != (invalidations, cast_outs, alias_retranslations) {
            self.epoch = (invalidations, cast_outs, alias_retranslations);
            if !self.entries.is_empty() || self.jit.active_patches() > 0 {
                self.flush();
            }
        }
    }

    /// Looks up (or counts toward, or performs) the compilation of
    /// `code`. Returns the compiled group when this dispatch should
    /// run natively; `None` keeps it on the packed engine.
    pub fn prepare(
        &mut self,
        code: &Rc<GroupCode>,
        page_size: u32,
        mem: &mut Memory,
        tracer: &mut Tracer,
    ) -> Option<Rc<CompiledGroup>> {
        let entry = code.group.entry;
        // Reset state that describes a dead or replaced translation
        // (retranslation, hot promotion): its compiled body retires.
        let stale = self
            .entries
            .get(&entry)
            .is_some_and(|s| !s.identity.upgrade().is_some_and(|c| Rc::ptr_eq(&c, code)));
        if stale {
            self.entries.remove(&entry);
        }
        let state = self
            .entries
            .entry(entry)
            .or_insert_with(|| EntryState { identity: Rc::downgrade(code), slot: Slot::Cold(0) });
        let due = match &mut state.slot {
            Slot::Compiled(cg) => return Some(Rc::clone(cg)),
            Slot::Refused => return None,
            Slot::Cold(n) => {
                *n += 1;
                *n >= self.config.threshold
            }
        };
        if !due {
            return None;
        }
        let (_, mem_len, _) = mem.jit_view();
        let parcels = code.packed.ops.len() as u64;
        // Worthwhile-ness gate: predict the template coverage this
        // compilation would achieve and skip entries that would mostly
        // refuse anyway. Lowerable means "has a template": with the
        // general templates enabled every parcel class does, so the
        // prediction is 1.0 and the gate never fires outside ablation.
        let lowerable = if self.config.general_templates {
            parcels
        } else {
            code.packed.meta.iter().filter(|m| m.class != OpClass::General).count() as u64
        };
        let predicted = if parcels == 0 { 1.0 } else { lowerable as f64 / parcels as f64 };
        if predicted < self.config.min_coverage {
            let r = Refusal::NotWorthwhile;
            self.stats.refusals += 1;
            self.stats.parcels_refused += parcels;
            self.stats.refusal_histogram[r.index()] += 1;
            tracer.emit(|| TraceEvent::NativeCompile { entry, outcome: r.as_str() });
            state.slot = Slot::Refused;
            return None;
        }
        let opts = CompileOpts {
            general_templates: self.config.general_templates,
            ibtc: self.config.ibtc,
        };
        match self.jit.compile(&code.packed, entry, page_size, mem_len, Memory::page_shift(), opts)
        {
            Ok(cg) => {
                self.stats.compiles += 1;
                self.stats.parcels_compiled += parcels;
                self.registry.insert(
                    cg.group_id,
                    RegEntry { entry, code: Rc::downgrade(code), compiled: Rc::downgrade(&cg) },
                );
                tracer.emit(|| TraceEvent::NativeCompile { entry, outcome: "ok" });
                let out = Rc::clone(&cg);
                if let Some(s) = self.entries.get_mut(&entry) {
                    s.slot = Slot::Compiled(cg);
                }
                Some(out)
            }
            Err(r) => {
                self.stats.refusals += 1;
                self.stats.parcels_refused += parcels;
                self.stats.refusal_histogram[r.index()] += 1;
                tracer.emit(|| TraceEvent::NativeCompile { entry, outcome: r.as_str() });
                if let Some(s) = self.entries.get_mut(&entry) {
                    s.slot = Slot::Refused;
                }
                None
            }
        }
    }

    fn compiled_for(&self, code: &Rc<GroupCode>) -> Option<Rc<CompiledGroup>> {
        let st = self.entries.get(&code.group.entry)?;
        if !st.identity.upgrade().is_some_and(|c| Rc::ptr_eq(&c, code)) {
            return None;
        }
        match &st.slot {
            Slot::Compiled(cg) => Some(Rc::clone(cg)),
            _ => None,
        }
    }

    /// Patches the chain edge `from --slot--> to` into a direct native
    /// jump when both ends are compiled. Called at the dispatcher
    /// boundary that just followed the corresponding [`GroupCode`]
    /// link, so a patched edge always mirrors an installed link.
    pub fn try_patch(&mut self, from: &Rc<GroupCode>, slot: usize, to: &Rc<GroupCode>) {
        let (Some(fc), Some(tc)) = (self.compiled_for(from), self.compiled_for(to)) else {
            return;
        };
        self.stats.edge_patches += self.jit.link(&fc, slot as u32, &tc) as u64;
    }

    /// Mirrors a dispatcher indirect-icache event into `from`'s inline
    /// IBTC. Called whenever the dispatcher hits or installs way `way`
    /// of `from`'s icache for indirect target `target`: when both ends
    /// are compiled and inline dispatch is `allowed` (patching safe,
    /// IBTC enabled) the way is installed pointing at `to`'s native
    /// entry; otherwise that way is invalidated — the dispatcher just
    /// (re)wrote it, so whatever the inline cache held is stale. The
    /// invalidate half is mandatory for correctness: way overwrites
    /// must never leave an old native entry reachable under a new tag.
    pub fn icache_sync(
        &mut self,
        from: &Rc<GroupCode>,
        target: u32,
        way: usize,
        to: Option<&Rc<GroupCode>>,
        allowed: bool,
    ) {
        let Some(fc) = self.compiled_for(from) else { return };
        let Some(tbl) = fc.ibtc() else { return };
        let tc = if allowed { to.and_then(|t| self.compiled_for(t)) } else { None };
        match tc {
            Some(tc) => tbl.install(way, target, tc.entry_addr(), tc.alive_addr()),
            None => tbl.invalidate(way),
        }
    }

    /// Runs `cg` (the compilation of `code`) natively and reconciles
    /// the counter deltas into `stats`. On a bail-out, reconstructs
    /// `scratch` up to the bail point and returns
    /// [`NativeRun::Resume`] for the packed engine to finish.
    pub fn execute(
        &mut self,
        cg: &CompiledGroup,
        code: &Rc<GroupCode>,
        rf: &mut RegFile,
        mem: &mut Memory,
        stats: &mut RunStats,
        scratch: &mut EngineScratch,
    ) -> NativeRun {
        let (mem_base, _len, translated) = mem.jit_view();
        self.ctx.reset_counters();
        let (vals, _tags) = rf.arrays_mut();
        self.ctx.vals = vals.as_mut_ptr();
        self.ctx.mem_base = mem_base;
        self.ctx.translated_base = translated as *const u8;
        self.ctx.log_base = self.log.as_mut_ptr();
        self.ctx.pending_base = self.pending.as_mut_ptr() as *mut u8;
        self.ctx.budget_vliws = NATIVE_VLIW_BUDGET;
        // SAFETY: every pointer set above is valid for the run — vals
        // is the register file's fixed array, mem/translated never
        // reallocate, the log holds LOG_CAPACITY bytes, and `cg` was
        // compiled by this tier's own `Jit` into its sealed arena.
        unsafe { self.jit.run(&mut self.ctx, cg) };

        stats.vliws_executed += self.ctx.vliws;
        stats.base_instrs += self.ctx.base_instrs;
        stats.loads += self.ctx.loads;
        stats.stores += self.ctx.stores;
        stats.chain.chained_dispatches += self.ctx.chained_dispatches;
        stats.chain.icache_hits += self.ctx.icache_hits;
        stats.onpage_dispatches += self.ctx.onpage_dispatches;
        stats.crosspage.direct += self.ctx.crosspage_direct;
        stats.crosspage.via_lr += self.ctx.crosspage_via_lr;
        stats.crosspage.via_ctr += self.ctx.crosspage_via_ctr;
        for (h, d) in stats.issue_histogram.iter_mut().zip(self.ctx.histogram.iter()) {
            *h += d;
        }
        self.stats.dispatches += 1;
        self.stats.chained += self.ctx.chained_dispatches;
        self.stats.ibtc_hits += self.ctx.icache_hits;
        self.stats.vliws_native += self.ctx.vliws;

        // Resolve the group that produced the exit (chained runs end
        // away from the dispatched group). A registry row can only be
        // stale for the dispatched group itself, whose `code` we hold.
        let (final_entry, final_code, final_cg) = match self.registry.get(&self.ctx.cur_group) {
            Some(row) => (row.entry, row.code.upgrade(), row.compiled.upgrade()),
            None => (code.group.entry, Some(Rc::clone(code)), None),
        };

        match self.ctx.exit_kind {
            EXIT_INDIRECT => NativeRun::Done {
                exit: GroupExit::Branch {
                    target: self.ctx.exit_a,
                    via: Some(if self.ctx.exit_b == 0 {
                        IndirectVia::Lr
                    } else {
                        IndirectVia::Ctr
                    }),
                    slot: None,
                },
                final_entry,
                final_code,
            },
            EXIT_INTERP => NativeRun::Done {
                exit: GroupExit::Interp { addr: self.ctx.exit_a },
                final_entry,
                final_code,
            },
            EXIT_BAIL => {
                self.stats.bails += 1;
                let rcode = final_code.unwrap_or_else(|| Rc::clone(code));
                let bail_cg = match final_cg {
                    Some(c) => c,
                    // The dispatched group itself (never chained-into),
                    // whose compilation the caller holds.
                    None => match self.compiled_for(&rcode) {
                        Some(c) => c,
                        None => unreachable!("bailing group's compilation is live during its run"),
                    },
                };
                let bail = bail_cg.bails[self.ctx.exit_b as usize];
                let log_len =
                    (self.ctx.log_end as usize).saturating_sub(self.log.as_ptr() as usize);
                scratch.reset();
                reconstruct_events(
                    &rcode.packed,
                    &self.log[..log_len.min(self.log.len())],
                    bail.node as usize,
                    bail.op as usize,
                    scratch,
                );
                // Rehydrate bypassed loads the bailing group issued
                // before the bail: rows stamped with the current
                // generation are live, and the packed resume's verify
                // commits must see them.
                let words = PENDING_ROW_BYTES / 8;
                for i in 0..NUM_REGS {
                    let row = &self.pending[i * words..(i + 1) * words];
                    if row[0] == self.ctx.pending_gen {
                        let meta = row[2] as u32;
                        let width = match meta & 3 {
                            0 => MemWidth::Byte,
                            1 => MemWidth::Half,
                            _ => MemWidth::Word,
                        };
                        scratch.set_pending(
                            i,
                            row[1] as u32,
                            width,
                            meta & 4 != 0,
                            (row[1] >> 32) as u32,
                        );
                    }
                }
                // Absolute vliws_executed at the bailing group's
                // entry: the merge above already added ctx.vliws, and
                // the prologue stored entry-relative-vliws + BUDGET in
                // entry_vliws.
                let budget_base = (stats.vliws_executed - self.ctx.vliws)
                    + (self.ctx.entry_vliws - BACKEDGE_VLIW_BUDGET);
                NativeRun::Resume {
                    entry: final_entry,
                    point: ResumePoint {
                        vliw: rcode.packed.node_vliw(bail.node as usize) as usize,
                        node: bail.node as usize,
                        op: bail.op as usize,
                        parcels: bail.parcels as usize,
                        last_base: self.ctx.last_base,
                        budget_base,
                    },
                    code: rcode,
                }
            }
            // EXIT_BRANCH (0) — also the defensive default. A
            // `u32::MAX` slot is the back-edge budget stub's sentinel:
            // that exit is a yield at the loop header, not a chainable
            // group edge (the packed engine returns `slot: None` for
            // the same event).
            _ => NativeRun::Done {
                exit: GroupExit::Branch {
                    target: self.ctx.exit_a,
                    via: None,
                    slot: (self.ctx.exit_b != u32::MAX).then_some(self.ctx.exit_b as usize),
                },
                final_entry,
                final_code,
            },
        }
    }
}

/// Rebuilds the packed engine's architected-event trail for a native
/// run that bailed: replays the group's control flow from its entry
/// using the recorded branch-direction bytes (one per executed
/// condition), pushing exactly the events the packed engine would have
/// pushed for every parcel *before* the bail site. Values are not
/// recomputed — only event structure matters, and it is fully
/// determined by the path plus the op/meta tables (native code bails
/// *before* any faulting access, firing trap check, or failing load
/// verify, so no exception tags are ever set on this prefix and every
/// executed General parcel took its completing path).
///
/// The direction log holds one byte per executed condition (0/1) and
/// one `2` byte per taken backward `Next` edge; the bail site is the
/// *last* visit to `(bail_node, bail_op)` — the one that has consumed
/// the whole log — since any revisit consumes at least one byte.
fn reconstruct_events(
    packed: &PackedGroup,
    dirs: &[u8],
    bail_node: usize,
    bail_op: usize,
    scratch: &mut EngineScratch,
) {
    let mut di = 0usize;
    let mut vliw = match packed.roots.first() {
        Some(_) => 0usize,
        None => return,
    };
    'group: loop {
        let mut node = packed.roots[vliw] as usize;
        loop {
            let n = &packed.nodes[node];
            for k in n.start as usize..(n.start + n.len) as usize {
                if node == bail_node && k == bail_op && di == dirs.len() {
                    break 'group;
                }
                let op = &packed.ops[k];
                let m = &packed.meta[k];
                match m.class {
                    OpClass::Copy
                    | OpClass::LoadImm
                    | OpClass::Add
                    | OpClass::AddImm
                    | OpClass::CmpSImm
                    | OpClass::RotlImmMask => {
                        scratch.events.push(ArchEvent::Def { d1: Reg(m.d1), d2: None });
                    }
                    OpClass::Value => {
                        if m.d1 != OpMeta::NONE {
                            scratch.events.push(ArchEvent::Def { d1: Reg(m.d1), d2: op.dest2 });
                        }
                    }
                    OpClass::SpecValue => {}
                    OpClass::Load => {
                        if !op.speculative {
                            scratch.events.push(ArchEvent::Def { d1: Reg(m.d1), d2: None });
                        }
                    }
                    OpClass::Store => scratch.events.push(ArchEvent::Store),
                    // Lowered by the general templates. On the
                    // pre-bail path a trap check completed without
                    // firing and a verify commit completed without an
                    // alias restart — the same events the packed
                    // engine's general interpreter pushes.
                    OpClass::General => {
                        if matches!(op.kind, OpKind::TrapIf { .. }) {
                            scratch.events.push(ArchEvent::TrapCheck);
                        } else if !op.speculative && m.d1 != OpMeta::NONE {
                            scratch.events.push(ArchEvent::Def { d1: Reg(m.d1), d2: op.dest2 });
                        }
                    }
                }
            }
            match n.ctrl {
                PackedCtrl::Cond { cond, taken, fall } => {
                    let t = dirs.get(di).copied().unwrap_or(0) != 0;
                    di += 1;
                    match cond.spec_target {
                        Some(spec) => scratch.events.push(ArchEvent::IndirectDir(if t {
                            None
                        } else {
                            Some(spec)
                        })),
                        None => scratch.events.push(ArchEvent::Dir(t)),
                    }
                    node = if t { taken } else { fall } as usize;
                }
                PackedCtrl::Next { vliw: nv } => {
                    // A taken backward edge logged one `2` byte (so
                    // loop iterations are distinguishable); consume it.
                    if nv as usize <= vliw {
                        debug_assert_eq!(dirs.get(di).copied(), Some(2), "missing back-edge byte");
                        di += 1;
                    }
                    vliw = nv as usize;
                    break;
                }
                // A leaf before the bail site cannot happen on the
                // actually-executed path; stop defensively.
                PackedCtrl::Leave { .. }
                | PackedCtrl::Indirect { .. }
                | PackedCtrl::Interp { .. } => {
                    debug_assert!(false, "walker reached a leaf before the bail site");
                    break 'group;
                }
            }
        }
    }
}
