/root/repo/target/debug/deps/daisy_bench-407cf64ccd53ec96.d: crates/bench/src/lib.rs crates/bench/src/runner.rs crates/bench/src/tables.rs Cargo.toml

/root/repo/target/debug/deps/libdaisy_bench-407cf64ccd53ec96.rmeta: crates/bench/src/lib.rs crates/bench/src/runner.rs crates/bench/src/tables.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/runner.rs:
crates/bench/src/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
