/root/repo/target/debug/deps/daisy_vs_interpreter-d0c5e23169d6627d.d: tests/daisy_vs_interpreter.rs

/root/repo/target/debug/deps/daisy_vs_interpreter-d0c5e23169d6627d: tests/daisy_vs_interpreter.rs

tests/daisy_vs_interpreter.rs:
