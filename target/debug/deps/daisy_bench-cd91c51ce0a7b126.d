/root/repo/target/debug/deps/daisy_bench-cd91c51ce0a7b126.d: crates/bench/src/lib.rs crates/bench/src/runner.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/daisy_bench-cd91c51ce0a7b126: crates/bench/src/lib.rs crates/bench/src/runner.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/runner.rs:
crates/bench/src/tables.rs:
