/root/repo/target/debug/deps/tiered-f2f3dbab23e25c9b.d: tests/tiered.rs Cargo.toml

/root/repo/target/debug/deps/libtiered-f2f3dbab23e25c9b.rmeta: tests/tiered.rs Cargo.toml

tests/tiered.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
