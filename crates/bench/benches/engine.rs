//! Execution-engine throughput: the packed execution format versus the
//! reference tree-walking engine, end-to-end (translate and run) over
//! all nine paper workloads — the simulation speed that makes the
//! Chapter 5 sweeps practical.
//!
//! Besides the criterion timings, a full `cargo bench` run writes
//! `BENCH_engine.json` at the repository root: per workload, the
//! wall-clock time and host nanoseconds per guest instruction for each
//! engine, the packed-over-tree speedup, and the geometric-mean speedup
//! across the suite. Both engines live in the same binary
//! ([`DaisySystemBuilder::packed_execution`]) and the tree engine keeps
//! its pre-packing code shape, so the ratio is an honest before/after.
//! Under `cargo test` the suite runs a single quick correctness pass
//! (both engines, results checked) and leaves the JSON untouched —
//! debug-build timings would be meaningless.
//!
//! [`DaisySystemBuilder::packed_execution`]:
//! daisy::system::DaisySystemBuilder::packed_execution

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use daisy::system::DaisySystem;
use daisy_workloads::Workload;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

fn run_once(
    w: &Workload,
    prog: &daisy_ppc::asm::Program,
    packed: bool,
) -> DaisySystem<daisy_ppc::PpcIsa> {
    let mut sys = DaisySystem::<daisy_ppc::PpcIsa>::builder()
        .mem_size(w.mem_size)
        .packed_execution(packed)
        .build();
    sys.load(prog).unwrap();
    sys.run(10 * w.max_instrs).unwrap();
    w.check(&sys.cpu, &sys.mem)
        .unwrap_or_else(|e| panic!("{} (packed={packed}): wrong guest result: {e}", w.name));
    sys
}

/// Best-of-`reps` wall seconds plus the run's stats.
fn measure(
    w: &Workload,
    prog: &daisy_ppc::asm::Program,
    packed: bool,
    reps: u32,
) -> (f64, DaisySystem<daisy_ppc::PpcIsa>) {
    let mut best = f64::INFINITY;
    let mut sys = None;
    for _ in 0..reps {
        let t = Instant::now();
        let s = run_once(w, prog, packed);
        best = best.min(t.elapsed().as_secs_f64());
        sys = Some(s);
    }
    (best, sys.unwrap())
}

fn bench_engine(c: &mut Criterion) {
    let full = std::env::args().any(|a| a == "--bench");

    // Criterion-timed subset (kept small; the JSON below covers the
    // full suite).
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    for name in ["c_sieve", "wc", "fgrep"] {
        let w = daisy_workloads::by_name(name).unwrap();
        let prog = w.program();
        for packed in [true, false] {
            let mode = if packed { "packed" } else { "tree" };
            g.bench_with_input(BenchmarkId::new(name, mode), &packed, |b, &p| {
                b.iter(|| black_box(run_once(&w, &prog, p)));
            });
        }
    }
    g.finish();

    if !full {
        // Smoke mode: the correctness passes above already ran both
        // engines; don't overwrite the measured JSON with debug noise.
        return;
    }

    let mut rows = Vec::new();
    let mut log_ratio_sum = 0.0;
    let all = daisy_workloads::all();
    for w in &all {
        let prog = w.program();
        let (tree_s, tsys) = measure(w, &prog, false, 3);
        let (packed_s, psys) = measure(w, &prog, true, 3);
        assert_eq!(
            tsys.stats.vliws_executed, psys.stats.vliws_executed,
            "{}: engines disagree on work done",
            w.name
        );
        let guest = tsys.stats.approx_base_instrs().max(1) as f64;
        let ratio = tree_s / packed_s;
        log_ratio_sum += ratio.ln();
        let mut row = String::new();
        let _ = write!(
            row,
            concat!(
                "    {{\"name\": \"{}\", ",
                "\"tree\": {{\"wall_ms\": {:.3}, \"ns_per_guest_instr\": {:.2}}}, ",
                "\"packed\": {{\"wall_ms\": {:.3}, \"ns_per_guest_instr\": {:.2}}}, ",
                "\"speedup\": {:.3}}}"
            ),
            w.name,
            tree_s * 1e3,
            tree_s * 1e9 / guest,
            packed_s * 1e3,
            packed_s * 1e9 / guest,
            ratio
        );
        rows.push(row);
    }
    let geomean = (log_ratio_sum / all.len() as f64).exp();

    let json = format!(
        concat!(
            "{{\n  \"bench\": \"engine\",\n",
            "  \"geomean_speedup\": {:.3},\n",
            "  \"workloads\": [\n{}\n  ]\n}}\n"
        ),
        geomean,
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    std::fs::write(path, json).expect("write BENCH_engine.json");
    println!("engine geomean speedup (packed vs tree): {geomean:.3}x");
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
