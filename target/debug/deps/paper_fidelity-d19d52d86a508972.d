/root/repo/target/debug/deps/paper_fidelity-d19d52d86a508972.d: crates/core/tests/paper_fidelity.rs

/root/repo/target/debug/deps/paper_fidelity-d19d52d86a508972: crates/core/tests/paper_fidelity.rs

crates/core/tests/paper_fidelity.rs:
