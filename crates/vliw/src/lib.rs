//! The DAISY migrant VLIW architecture.
//!
//! The paper's VLIW is designed *for emulation*: its instruction set is a
//! superset of the base architecture's RISC primitives, its register file
//! extends the base architecture's with non-architected rename registers
//! and per-register exception tag bits (§2.1), and its instructions are
//! *trees* of operations with multiple conditional branches whose
//! conditions are all evaluated against instruction-entry state
//! (Ebcioglu 1988).
//!
//! This crate defines that machine:
//!
//! * [`reg`] — the unified register file name space (architected GPRs,
//!   rename pool, CR fields, LR/CTR, XER bits),
//! * [`op`] — RISC primitive operations and their pure evaluation
//!   semantics,
//! * [`tree`] — tree instructions, groups of tree instructions, and
//!   resource accounting,
//! * [`packed`] — the packed execution format: groups lowered into
//!   flat, execution-ordered arenas for the simulation hot loop,
//! * [`machine`] — parameterized machine configurations, including the
//!   ten configurations of the paper's Figure 5.1,
//! * [`regfile`] — the runtime register file with exception tags.
//!
//! Execution of translated code (which needs the emulated memory, the
//! VMM, and load-verify) lives in the `daisy` core crate; this crate is
//! purely the architecture definition plus side-effect-free operation
//! semantics, so it can be reused by the translator, the execution
//! engine, the oracle scheduler, and the baselines.

#![warn(missing_docs)]

pub mod machine;
pub mod op;
pub mod packed;
pub mod reg;
pub mod regfile;
pub mod tree;

pub use machine::MachineConfig;
pub use op::{OpKind, Operation};
pub use packed::{OpClass, OpMeta, PackedCtrl, PackedGroup, PackedNode};
pub use reg::Reg;
pub use regfile::RegFile;
pub use tree::{Exit, Group, NodeId, Vliw, VliwId};
