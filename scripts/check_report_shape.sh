#!/usr/bin/env bash
# JSON-shape assertion for BENCH_report.json: every workload entry must
# carry all five report metrics, and the document must close with the
# geomean block. Pure grep — no JSON tooling assumed on the CI host;
# the strict structural validation lives in
# crates/bench/tests/report_schema.rs.
set -euo pipefail

report="${1:?usage: check_report_shape.sh <BENCH_report.json> [expected-workloads]}"
expected="${2:-}"

[ -s "$report" ] || { echo "error: $report is missing or empty" >&2; exit 1; }

# Count only inside the workloads array — the geomean block repeats
# the ILP keys.
workloads_slice() { sed -n '/"workloads":/,/"geomean":/{/"geomean":/!p;}' "$report"; }

entries=$(workloads_slice | grep -c '"name":' || true)
for key in finite_ilp infinite_ilp ops_per_vliw overhead_per_base_instr waste_fraction; do
  n=$(workloads_slice | grep -c "\"$key\":" || true)
  if [ "$n" -ne "$entries" ]; then
    echo "error: metric '$key' appears $n times for $entries workloads in $report" >&2
    exit 1
  fi
done

grep -q '"geomean":' "$report" || { echo "error: geomean block missing in $report" >&2; exit 1; }

if [ -n "$expected" ] && [ "$entries" -ne "$expected" ]; then
  echo "error: expected $expected workloads, found $entries in $report" >&2
  exit 1
fi

echo "ok: $report carries all five metrics for $entries workload(s)"
