//! One generator per table/figure of the paper's evaluation.
//!
//! Each function returns structured rows so tests can assert on the
//! *shape* of the results (who wins, roughly by how much, where the
//! crossovers are), and each has a formatter used by the `repro`
//! binary. Absolute values differ from the paper — its substrate was an
//! RS/6000 testbed and real AIX binaries — but the relationships the
//! paper draws from each exhibit are asserted in `tests/repro_shapes.rs`.

use crate::runner::{self, mean, Measurement};
use daisy::oracle;
use daisy::overhead::{self, OverheadModel, OverheadRow, ReuseFactor};
use daisy::sched::TranslatorConfig;
use daisy_baseline::{ppc604e, trad};
use daisy_cachesim::Hierarchy;
use daisy_ppc::mem::Memory;
use daisy_vliw::machine::MachineConfig;
use daisy_workloads::Workload;
use std::fmt::Write as _;

fn workloads() -> Vec<Workload> {
    daisy_workloads::all()
}

// ---------------------------------------------------------------- 5.1

/// One row of Table 5.1: pathlength reduction and code expansion.
#[derive(Debug, Clone)]
pub struct Table51Row {
    /// Workload name.
    pub name: &'static str,
    /// PowerPC instructions per VLIW (∞-cache ILP).
    pub ilp: f64,
    /// Average translated VLIW code per translated page, in KiB (the
    /// paper's "Average Size of Translated Page").
    pub page_kib: f64,
    /// That average over the 4 KiB base page (the paper's ~4.5×).
    pub expansion: f64,
}

/// Table 5.1: pathlength reductions and code explosion on the default
/// 24-issue machine with 4 KiB pages.
pub fn table5_1() -> Vec<Table51Row> {
    workloads()
        .iter()
        .map(|w| {
            let m = runner::run_default(w);
            let per_page = m.code_bytes_total as f64 / m.pages_translated.max(1) as f64;
            Table51Row {
                name: m.name,
                ilp: m.ilp(),
                page_kib: per_page / 1024.0,
                expansion: per_page / 4096.0,
            }
        })
        .collect()
}

/// Formats Table 5.1.
pub fn print_table5_1(rows: &[Table51Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Table 5.1: Pathlength reductions and code explosion");
    let _ = writeln!(
        s,
        "{:<10} {:>14} {:>20} {:>11}",
        "Program", "PPC ins/VLIW", "avg xlated page(KiB)", "expansion"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<10} {:>14.1} {:>20.1} {:>10.1}x",
            r.name, r.ilp, r.page_kib, r.expansion
        );
    }
    let _ = writeln!(s, "{:<10} {:>14.1}", "MEAN", mean(rows.iter().map(|r| r.ilp)));
    s
}

// ---------------------------------------------------------------- 5.1 fig

/// Figure 5.1: ILP per machine configuration (1..=10) per workload.
#[derive(Debug, Clone)]
pub struct Fig51 {
    /// Configuration names in paper order.
    pub configs: Vec<String>,
    /// Per-workload ILP series across the configurations.
    pub series: Vec<(&'static str, Vec<f64>)>,
}

/// Figure 5.1: pathlength reduction vs machine size.
pub fn fig5_1() -> Fig51 {
    let cfgs = MachineConfig::paper_configs();
    let mut series = Vec::new();
    for w in workloads() {
        let mut vals = Vec::new();
        for mc in &cfgs {
            let cfg = TranslatorConfig { machine: mc.clone(), ..TranslatorConfig::default() };
            let m = runner::run_daisy(&w, cfg, Hierarchy::infinite());
            vals.push(m.ilp());
        }
        series.push((w.name, vals));
    }
    Fig51 { configs: cfgs.iter().map(|c| c.name.clone()).collect(), series }
}

/// Formats Figure 5.1.
pub fn print_fig5_1(f: &Fig51) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Figure 5.1: ILP vs machine configuration (<issue>-<alu>-<mem>-<br>)");
    let _ = write!(s, "{:<10}", "Program");
    for c in &f.configs {
        let _ = write!(s, " {c:>10}");
    }
    let _ = writeln!(s);
    for (name, vals) in &f.series {
        let _ = write!(s, "{name:<10}");
        for v in vals {
            let _ = write!(s, " {v:>10.2}");
        }
        let _ = writeln!(s);
    }
    let _ = write!(s, "{:<10}", "MEAN");
    for i in 0..f.configs.len() {
        let _ = write!(s, " {:>10.2}", mean(f.series.iter().map(|(_, v)| v[i])));
    }
    let _ = writeln!(s);
    s
}

// ---------------------------------------------------------------- 5.2

/// One row of Table 5.2: DAISY vs the traditional VLIW compiler.
#[derive(Debug, Clone)]
pub struct Table52Row {
    /// Workload name.
    pub name: &'static str,
    /// DAISY's one-pass dynamic ILP.
    pub daisy_ilp: f64,
    /// Traditional (offline, profiled, whole-program) ILP.
    pub trad_ilp: f64,
    /// Instructions scheduled by each, as a compile-cost ratio.
    pub compile_cost_ratio: f64,
}

/// Table 5.2 compares user-code benchmarks, as the paper's traditional
/// compiler "deals only with compilable user code".
pub fn table5_2() -> Vec<Table52Row> {
    let names = ["compress", "lex", "fgrep", "sort", "c_sieve"];
    names
        .iter()
        .map(|n| {
            let w = daisy_workloads::by_name(n).expect("known workload");
            let m = runner::run_default(&w);
            let prog = w.program();
            let t = trad::run_traditional(&prog, w.mem_size, MachineConfig::big(), w.max_instrs);
            Table52Row {
                name: w.name,
                daisy_ilp: m.ilp(),
                trad_ilp: t.ilp(),
                compile_cost_ratio: t.instrs_compiled as f64 / m.instrs_compiled.max(1) as f64,
            }
        })
        .collect()
}

/// Formats Table 5.2.
pub fn print_table5_2(rows: &[Table52Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Table 5.2: DAISY vs traditional VLIW compiler");
    let _ = writeln!(
        s,
        "{:<10} {:>10} {:>10} {:>18}",
        "Program", "DAISY ILP", "Trad ILP", "compile-cost ratio"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<10} {:>10.1} {:>10.1} {:>17.1}x",
            r.name, r.daisy_ilp, r.trad_ilp, r.compile_cost_ratio
        );
    }
    let _ = writeln!(
        s,
        "{:<10} {:>10.1} {:>10.1}",
        "MEAN",
        mean(rows.iter().map(|r| r.daisy_ilp)),
        mean(rows.iter().map(|r| r.trad_ilp))
    );
    s
}

// ---------------------------------------------------------------- 5.3

/// One row of Table 5.3: finite caches and the 604E comparison.
#[derive(Debug, Clone)]
pub struct Table53Row {
    /// Workload name.
    pub name: &'static str,
    /// ∞-cache ILP.
    pub inf_ilp: f64,
    /// Finite-cache ILP (paper's default hierarchy).
    pub finite_ilp: f64,
    /// PowerPC 604E model IPC with the same hierarchy.
    pub p604_ipc: f64,
    /// The finite-cache measurement (for Tables 5.4/5.7 and Fig 5.2).
    pub measurement: Measurement,
}

/// Table 5.3: ∞-cache vs finite-cache ILP vs a PowerPC 604E.
pub fn table5_3() -> Vec<Table53Row> {
    workloads()
        .iter()
        .map(|w| {
            let inf = runner::run_default(w);
            let fin = runner::run_daisy(w, TranslatorConfig::default(), Hierarchy::paper_default());
            let prog = w.program();
            let p = ppc604e::run(
                &prog,
                w.mem_size,
                &ppc604e::P604Config::default(),
                Hierarchy::paper_default(),
                w.max_instrs,
            );
            Table53Row {
                name: w.name,
                inf_ilp: inf.ilp(),
                finite_ilp: fin.finite_ilp(),
                p604_ipc: p.ipc(),
                measurement: fin,
            }
        })
        .collect()
}

/// Formats Table 5.3.
pub fn print_table5_3(rows: &[Table53Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Table 5.3: Reduction of ILP from finite caches, vs PowerPC 604E");
    let _ = writeln!(
        s,
        "{:<10} {:>9} {:>13} {:>13}",
        "Program", "inf cache", "finite cache", "PowerPC 604E"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<10} {:>9.1} {:>13.1} {:>13.1}",
            r.name, r.inf_ilp, r.finite_ilp, r.p604_ipc
        );
    }
    let _ = writeln!(
        s,
        "{:<10} {:>9.1} {:>13.1} {:>13.1}",
        "MEAN",
        mean(rows.iter().map(|r| r.inf_ilp)),
        mean(rows.iter().map(|r| r.finite_ilp)),
        mean(rows.iter().map(|r| r.p604_ipc))
    );
    s
}

// ---------------------------------------------------------------- 5.4

/// One row of Table 5.4: memory-access characteristics.
#[derive(Debug, Clone)]
pub struct Table54Row {
    /// Workload name.
    pub name: &'static str,
    /// Load parcels per VLIW.
    pub loads_per_vliw: f64,
    /// Store parcels per VLIW.
    pub stores_per_vliw: f64,
    /// Mean VLIWs between load misses (None = no misses).
    pub vliws_per_load_miss: Option<f64>,
    /// Mean VLIWs between store misses.
    pub vliws_per_store_miss: Option<f64>,
    /// Mean VLIWs between any memory miss.
    pub vliws_per_mem_miss: Option<f64>,
}

/// Table 5.4, derived from the Table 5.3 finite-cache runs.
pub fn table5_4(t53: &[Table53Row]) -> Vec<Table54Row> {
    t53.iter()
        .map(|r| {
            let st = &r.measurement.stats;
            Table54Row {
                name: r.name,
                loads_per_vliw: st.loads_per_vliw(),
                stores_per_vliw: st.stores_per_vliw(),
                vliws_per_load_miss: st.vliws_between(st.load_l0_misses),
                vliws_per_store_miss: st.vliws_between(st.store_l0_misses),
                vliws_per_mem_miss: st.vliws_between(st.load_l0_misses + st.store_l0_misses),
            }
        })
        .collect()
}

/// Renders a `RunStats::vliws_between`-style optional mean: `None`
/// means the event never occurred (see that method's contract), which
/// the tables print as `-` — never as a number.
fn opt(v: Option<f64>) -> String {
    v.map_or_else(|| "-".to_owned(), |x| format!("{x:.1}"))
}

/// Formats Table 5.4.
pub fn print_table5_4(rows: &[Table54Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Table 5.4: Load, store, first-level cache characteristics");
    let _ = writeln!(
        s,
        "{:<10} {:>10} {:>10} {:>12} {:>12} {:>12}",
        "Program", "loads/VLIW", "sts/VLIW", "VLIW/ld-miss", "VLIW/st-miss", "VLIW/miss"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<10} {:>10.2} {:>10.2} {:>12} {:>12} {:>12}",
            r.name,
            r.loads_per_vliw,
            r.stores_per_vliw,
            opt(r.vliws_per_load_miss),
            opt(r.vliws_per_store_miss),
            opt(r.vliws_per_mem_miss)
        );
    }
    s
}

// ---------------------------------------------------------------- 5.2 fig

/// Figure 5.2: per-level miss rates, from the finite-cache runs.
#[derive(Debug, Clone)]
pub struct Fig52Row {
    /// Workload name.
    pub name: &'static str,
    /// `(cache level name, miss rate percent)`.
    pub levels: Vec<(String, f64)>,
}

/// Figure 5.2 rows.
pub fn fig5_2(t53: &[Table53Row]) -> Vec<Fig52Row> {
    t53.iter()
        .map(|r| Fig52Row {
            name: r.name,
            levels: r
                .measurement
                .cache_levels
                .iter()
                .map(|(n, st)| (n.clone(), st.miss_rate()))
                .collect(),
        })
        .collect()
}

/// Formats Figure 5.2.
pub fn print_fig5_2(rows: &[Fig52Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Figure 5.2: Cache miss rates (%)");
    if let Some(first) = rows.first() {
        let _ = write!(s, "{:<10}", "Program");
        for (n, _) in &first.levels {
            let _ = write!(s, " {n:>10}");
        }
        let _ = writeln!(s);
    }
    for r in rows {
        let _ = write!(s, "{:<10}", r.name);
        for (_, v) in &r.levels {
            let _ = write!(s, " {v:>10.3}");
        }
        let _ = writeln!(s);
    }
    s
}

// ---------------------------------------------------------------- 5.5

/// One row of Table 5.5: the 8-issue machine.
#[derive(Debug, Clone)]
pub struct Table55Row {
    /// Workload name.
    pub name: &'static str,
    /// ∞-cache ILP on the 8-issue machine.
    pub inf_ilp: f64,
    /// Finite-cache ILP with the 3-level hierarchy.
    pub finite_ilp: f64,
}

/// Table 5.5: performance of the 8-issue machine.
pub fn table5_5() -> Vec<Table55Row> {
    workloads()
        .iter()
        .map(|w| {
            let cfg = TranslatorConfig {
                machine: MachineConfig::eight_issue(),
                ..TranslatorConfig::default()
            };
            let inf = runner::run_daisy(w, cfg.clone(), Hierarchy::infinite());
            let fin = runner::run_daisy(w, cfg, Hierarchy::paper_eight_issue());
            Table55Row { name: w.name, inf_ilp: inf.ilp(), finite_ilp: fin.finite_ilp() }
        })
        .collect()
}

/// Formats Table 5.5.
pub fn print_table5_5(rows: &[Table55Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Table 5.5: Performance of 8-issue machine");
    let _ = writeln!(s, "{:<10} {:>9} {:>13}", "Program", "inf cache", "finite cache");
    for r in rows {
        let _ = writeln!(s, "{:<10} {:>9.1} {:>13.1}", r.name, r.inf_ilp, r.finite_ilp);
    }
    let _ = writeln!(
        s,
        "{:<10} {:>9.1} {:>13.1}",
        "MEAN",
        mean(rows.iter().map(|r| r.inf_ilp)),
        mean(rows.iter().map(|r| r.finite_ilp))
    );
    s
}

// ---------------------------------------------------------------- 5.6

/// One row of Table 5.6: cross-page branches by type.
#[derive(Debug, Clone)]
pub struct Table56Row {
    /// Workload name.
    pub name: &'static str,
    /// Direct cross-page branches.
    pub direct: u64,
    /// Via the link register.
    pub via_lr: u64,
    /// Via the count register.
    pub via_ctr: u64,
    /// Total.
    pub total: u64,
    /// VLIWs executed per cross-page branch.
    pub vliws_per_branch: Option<f64>,
}

/// Table 5.6, from default ∞-cache runs.
pub fn table5_6() -> Vec<Table56Row> {
    workloads()
        .iter()
        .map(|w| {
            let m = runner::run_default(w);
            let c = m.stats.crosspage;
            Table56Row {
                name: m.name,
                direct: c.direct,
                via_lr: c.via_lr,
                via_ctr: c.via_ctr,
                total: c.total(),
                vliws_per_branch: m.stats.vliws_between(c.total()),
            }
        })
        .collect()
}

/// Formats Table 5.6.
pub fn print_table5_6(rows: &[Table56Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Table 5.6: Cross-page branches by type");
    let _ = writeln!(
        s,
        "{:<10} {:>10} {:>10} {:>11} {:>10} {:>14}",
        "Program", "direct", "via LR", "via CTR", "total", "VLIWs/branch"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<10} {:>10} {:>10} {:>11} {:>10} {:>14}",
            r.name,
            r.direct,
            r.via_lr,
            r.via_ctr,
            r.total,
            opt(r.vliws_per_branch)
        );
    }
    s
}

// ---------------------------------------------------------------- 5.7

/// One row of Table 5.7: run-time load/store aliasing.
#[derive(Debug, Clone)]
pub struct Table57Row {
    /// Workload name.
    pub name: &'static str,
    /// Alias failures detected by load-verify.
    pub aliases: u64,
    /// VLIWs executed.
    pub vliws: u64,
    /// VLIWs per alias (None = alias-free).
    pub vliws_per_alias: Option<f64>,
}

/// Table 5.7, from default ∞-cache runs.
pub fn table5_7() -> Vec<Table57Row> {
    workloads()
        .iter()
        .map(|w| {
            let m = runner::run_default(w);
            Table57Row {
                name: m.name,
                aliases: m.stats.alias_failures,
                vliws: m.stats.vliws_executed,
                vliws_per_alias: m.stats.vliws_between(m.stats.alias_failures),
            }
        })
        .collect()
}

/// Formats Table 5.7.
pub fn print_table5_7(rows: &[Table57Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Table 5.7: VLIWs per runtime load-store alias");
    let _ =
        writeln!(s, "{:<10} {:>10} {:>12} {:>13}", "Program", "aliases", "VLIWs", "VLIWs/alias");
    for r in rows {
        let _ = writeln!(
            s,
            "{:<10} {:>10} {:>12} {:>13}",
            r.name,
            r.aliases,
            r.vliws,
            opt(r.vliws_per_alias)
        );
    }
    s
}

// ------------------------------------------------------- 5.3/5.4/5.5 figs

/// The page sizes swept by Figures 5.3–5.5.
pub const PAGE_SIZES: [u32; 8] = [128, 256, 512, 1024, 2048, 4096, 8192, 16384];

/// One workload's page-size sweep.
#[derive(Debug, Clone)]
pub struct PageSweepRow {
    /// Workload name.
    pub name: &'static str,
    /// ∞-cache ILP per page size (Figure 5.3).
    pub ilp: Vec<f64>,
    /// Total translated code bytes per page size (Figure 5.4).
    pub code_bytes: Vec<u64>,
    /// Direct cross-page jumps per page size (Figure 5.5).
    pub direct_crosspage: Vec<u64>,
}

/// Runs the Figures 5.3–5.5 sweep.
pub fn page_sweep() -> Vec<PageSweepRow> {
    workloads()
        .iter()
        .map(|w| {
            let mut row = PageSweepRow {
                name: w.name,
                ilp: Vec::new(),
                code_bytes: Vec::new(),
                direct_crosspage: Vec::new(),
            };
            for ps in PAGE_SIZES {
                let cfg = TranslatorConfig { page_size: ps, ..TranslatorConfig::default() };
                let m = runner::run_daisy(w, cfg, Hierarchy::infinite());
                row.ilp.push(m.ilp());
                row.code_bytes.push(m.code_bytes_total);
                row.direct_crosspage.push(m.stats.crosspage.direct);
            }
            row
        })
        .collect()
}

/// Formats Figures 5.3–5.5 from the sweep.
pub fn print_page_sweep(rows: &[PageSweepRow]) -> String {
    let mut s = String::new();
    for (title, pick) in [
        ("Figure 5.3: ILP vs input page size", 0),
        ("Figure 5.4: Total VLIW code size (bytes) vs input page size", 1),
        ("Figure 5.5: Direct cross-page jumps vs input page size", 2),
    ] {
        let _ = writeln!(s, "{title}");
        let _ = write!(s, "{:<10}", "Program");
        for ps in PAGE_SIZES {
            let _ = write!(s, " {ps:>9}");
        }
        let _ = writeln!(s);
        for r in rows {
            let _ = write!(s, "{:<10}", r.name);
            for i in 0..PAGE_SIZES.len() {
                match pick {
                    0 => {
                        let _ = write!(s, " {:>9.2}", r.ilp[i]);
                    }
                    1 => {
                        let _ = write!(s, " {:>9}", r.code_bytes[i]);
                    }
                    _ => {
                        let _ = write!(s, " {:>9}", r.direct_crosspage[i]);
                    }
                }
            }
            let _ = writeln!(s);
        }
        let _ = writeln!(s);
    }
    s
}

// ---------------------------------------------------------------- 5.8/5.9

/// Table 5.8 rows from the analytic model.
pub fn table5_8() -> Vec<OverheadRow> {
    overhead::table_5_8(&OverheadModel::default())
}

/// Formats Table 5.8.
pub fn print_table5_8(rows: &[OverheadRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Table 5.8: Overhead of dynamic compilation (2 s, 1 GHz, ILP 4 program)");
    let _ = writeln!(
        s,
        "{:>14} {:>12} {:>12} {:>12}",
        "ins/compiled", "unique pages", "reuse", "time change"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:>14.0} {:>12.0} {:>12.0} {:>11.0}%",
            r.ins_to_compile, r.unique_pages, r.reuse, r.time_change_pct
        );
    }
    s
}

/// Table 5.9: reuse factors measured on this suite, with the paper's
/// SPEC95 numbers for comparison.
#[derive(Debug, Clone)]
pub struct Table59 {
    /// Measured on this reproduction's workloads.
    pub measured: Vec<ReuseFactor>,
    /// Reprinted from the paper.
    pub paper: Vec<ReuseFactor>,
}

/// Generates Table 5.9.
pub fn table5_9() -> Table59 {
    let measured = workloads()
        .iter()
        .map(|w| {
            let cpu = runner::run_reference(w);
            let prog = w.program();
            ReuseFactor {
                name: w.name.to_owned(),
                dynamic_instrs: cpu.ninstrs,
                static_words: u64::from(prog.code_size() / 4),
            }
        })
        .collect();
    Table59 { measured, paper: overhead::paper_spec95_reuse() }
}

/// Formats Table 5.9.
pub fn print_table5_9(t: &Table59) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Table 5.9: Reuse factors (dynamic ins / static ins words)");
    let _ = writeln!(s, "-- measured on this suite --");
    let _ = writeln!(s, "{:<12} {:>14} {:>12} {:>10}", "Program", "dynamic", "static", "reuse");
    for r in &t.measured {
        let _ = writeln!(
            s,
            "{:<12} {:>14} {:>12} {:>10.0}",
            r.name,
            r.dynamic_instrs,
            r.static_words,
            r.reuse()
        );
    }
    let _ = writeln!(s, "-- paper's SPEC95 numbers (reprinted) --");
    for r in &t.paper {
        let _ = writeln!(
            s,
            "{:<12} {:>14} {:>12} {:>10.0}",
            r.name,
            r.dynamic_instrs,
            r.static_words,
            r.reuse()
        );
    }
    s
}

// --------------------------------------------------------- utilization

/// Issue-slot utilization of one workload (the paper's internal "ALU
/// usage histograms").
#[derive(Debug, Clone)]
pub struct UtilizationRow {
    /// Workload name.
    pub name: &'static str,
    /// Mean parcels executed per tree instruction.
    pub mean_parcels: f64,
    /// Fraction of VLIWs executing 0–2, 3–7, 8–15, 16+ parcels.
    pub buckets: [f64; 4],
}

/// Parcel-per-VLIW utilization on the default 24-issue machine.
pub fn utilization() -> Vec<UtilizationRow> {
    workloads()
        .iter()
        .map(|w| {
            let m = runner::run_default(w);
            let h = m.stats.issue_histogram;
            let total: u64 = h.iter().sum();
            let frac = |range: std::ops::Range<usize>| {
                if total == 0 {
                    0.0
                } else {
                    h[range].iter().sum::<u64>() as f64 / total as f64
                }
            };
            UtilizationRow {
                name: m.name,
                mean_parcels: m.stats.mean_parcels_per_vliw(),
                buckets: [frac(0..3), frac(3..8), frac(8..16), frac(16..25)],
            }
        })
        .collect()
}

/// Formats the utilization histogram summary.
pub fn print_utilization(rows: &[UtilizationRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Issue-slot utilization (parcels executed per VLIW, 24-issue machine)");
    let _ = writeln!(
        s,
        "{:<10} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "Program", "mean", "0-2", "3-7", "8-15", "16-24"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<10} {:>8.2} {:>7.0}% {:>7.0}% {:>7.0}% {:>7.0}%",
            r.name,
            r.mean_parcels,
            100.0 * r.buckets[0],
            100.0 * r.buckets[1],
            100.0 * r.buckets[2],
            100.0 * r.buckets[3]
        );
    }
    s
}

// ------------------------------------------------------------ ablations

/// One row of the scheduler-ablation study: how much each design
/// choice of the paper's algorithm contributes to ILP.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Workload name.
    pub name: &'static str,
    /// The full algorithm (paper defaults).
    pub full: f64,
    /// No renaming: every op in-order in the last VLIW (§2's key idea
    /// disabled).
    pub no_rename: f64,
    /// Loads never move above stores (§2.1's reordering disabled).
    pub no_load_spec: f64,
    /// Tiny scheduling window (16 instructions).
    pub window16: f64,
    /// Join points never revisited (k = 1: no unrolling).
    pub k1: f64,
}

/// Scheduler ablations on the default machine, infinite cache.
pub fn ablation() -> Vec<AblationRow> {
    workloads()
        .iter()
        .map(|w| {
            let run =
                |cfg: TranslatorConfig| runner::run_daisy(w, cfg, Hierarchy::infinite()).ilp();
            AblationRow {
                name: w.name,
                full: run(TranslatorConfig::default()),
                no_rename: run(TranslatorConfig { rename: false, ..TranslatorConfig::default() }),
                no_load_spec: run(TranslatorConfig {
                    speculate_loads: false,
                    ..TranslatorConfig::default()
                }),
                window16: run(TranslatorConfig { window_size: 16, ..TranslatorConfig::default() }),
                k1: run(TranslatorConfig { max_join_visits: 1, ..TranslatorConfig::default() }),
            }
        })
        .collect()
}

/// Formats the ablation study.
pub fn print_ablation(rows: &[AblationRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Ablation: ILP contribution of the scheduler's design choices");
    let _ = writeln!(
        s,
        "{:<10} {:>8} {:>10} {:>13} {:>10} {:>8}",
        "Program", "full", "no-rename", "no-load-spec", "window16", "k=1"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<10} {:>8.2} {:>10.2} {:>13.2} {:>10.2} {:>8.2}",
            r.name, r.full, r.no_rename, r.no_load_spec, r.window16, r.k1
        );
    }
    let _ = writeln!(
        s,
        "{:<10} {:>8.2} {:>10.2} {:>13.2} {:>10.2} {:>8.2}",
        "MEAN",
        mean(rows.iter().map(|r| r.full)),
        mean(rows.iter().map(|r| r.no_rename)),
        mean(rows.iter().map(|r| r.no_load_spec)),
        mean(rows.iter().map(|r| r.window16)),
        mean(rows.iter().map(|r| r.k1))
    );
    s
}

// ---------------------------------------------------------------- Ch. 6

/// One row of the interpretive-compilation study.
#[derive(Debug, Clone)]
pub struct InterpretiveRow {
    /// Workload name.
    pub name: &'static str,
    /// Static (heuristic-prediction) translation ILP.
    pub static_ilp: f64,
    /// Interpretive-compilation ILP (observed branch outcomes and
    /// indirect-branch specialization).
    pub interpretive_ilp: f64,
}

/// Chapter 6's interpretive compilation versus the static translator.
pub fn interpretive() -> Vec<InterpretiveRow> {
    workloads()
        .iter()
        .map(|w| {
            let s = runner::run_default(w);
            let cfg = TranslatorConfig { interpretive: true, ..TranslatorConfig::default() };
            let i = runner::run_daisy(w, cfg, Hierarchy::infinite());
            InterpretiveRow { name: w.name, static_ilp: s.ilp(), interpretive_ilp: i.ilp() }
        })
        .collect()
}

/// Formats the interpretive-compilation study.
pub fn print_interpretive(rows: &[InterpretiveRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Chapter 6: Interpretive compilation vs static translation");
    let _ = writeln!(s, "{:<10} {:>8} {:>13}", "Program", "static", "interpretive");
    for r in rows {
        let _ = writeln!(s, "{:<10} {:>8.2} {:>13.2}", r.name, r.static_ilp, r.interpretive_ilp);
    }
    let _ = writeln!(
        s,
        "{:<10} {:>8.2} {:>13.2}",
        "MEAN",
        mean(rows.iter().map(|r| r.static_ilp)),
        mean(rows.iter().map(|r| r.interpretive_ilp))
    );
    s
}

/// One row of the oracle study.
#[derive(Debug, Clone)]
pub struct OracleRow {
    /// Workload name.
    pub name: &'static str,
    /// DAISY's dynamic-translation ILP (default machine).
    pub daisy_ilp: f64,
    /// Oracle ILP with unlimited resources.
    pub oracle_unlimited: f64,
    /// Oracle capped at the big (24-issue) machine.
    pub oracle_big: f64,
    /// Oracle capped at the 8-issue machine.
    pub oracle_eight: f64,
}

/// Chapter 6: oracle parallelism versus DAISY.
pub fn oracle_table() -> Vec<OracleRow> {
    workloads()
        .iter()
        .map(|w| {
            let m = runner::run_default(w);
            let prog = w.program();
            let run = |machine: Option<MachineConfig>| {
                let mut mem = Memory::new(w.mem_size);
                prog.load_into(&mut mem).expect("fits");
                let (r, _) = oracle::run_oracle_to_stop::<daisy_ppc::PpcIsa>(
                    &mut mem,
                    prog.entry,
                    machine,
                    w.max_instrs,
                );
                r.ilp()
            };
            OracleRow {
                name: w.name,
                daisy_ilp: m.ilp(),
                oracle_unlimited: run(None),
                oracle_big: run(Some(MachineConfig::big())),
                oracle_eight: run(Some(MachineConfig::eight_issue())),
            }
        })
        .collect()
}

/// Formats the oracle table.
pub fn print_oracle(rows: &[OracleRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Chapter 6: Oracle parallelism vs DAISY");
    let _ = writeln!(
        s,
        "{:<10} {:>10} {:>12} {:>12} {:>12}",
        "Program", "DAISY", "oracle(inf)", "oracle(24)", "oracle(8)"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<10} {:>10.1} {:>12.1} {:>12.1} {:>12.1}",
            r.name, r.daisy_ilp, r.oracle_unlimited, r.oracle_big, r.oracle_eight
        );
    }
    let _ = writeln!(
        s,
        "{:<10} {:>10.1} {:>12.1} {:>12.1} {:>12.1}",
        "MEAN",
        mean(rows.iter().map(|r| r.daisy_ilp)),
        mean(rows.iter().map(|r| r.oracle_unlimited)),
        mean(rows.iter().map(|r| r.oracle_big)),
        mean(rows.iter().map(|r| r.oracle_eight))
    );
    s
}

#[cfg(test)]
mod tests {
    use super::opt;

    /// The `vliws_between` contract surfaces here: `None` (event never
    /// occurred) must render as a placeholder, not a number.
    #[test]
    fn opt_renders_none_as_dash() {
        assert_eq!(opt(None), "-");
        assert_eq!(opt(Some(25.0)), "25.0");
        assert_eq!(opt(Some(0.04)), "0.0"); // rare-but-present rounds, still numeric
    }
}
