/root/repo/target/debug/examples/pagesize_sweep-2b4b24b35de83359.d: examples/pagesize_sweep.rs

/root/repo/target/debug/examples/pagesize_sweep-2b4b24b35de83359: examples/pagesize_sweep.rs

examples/pagesize_sweep.rs:
