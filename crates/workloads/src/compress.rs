//! `compress` — an LZW compressor with an open-hashing code table, the
//! SPECint95 benchmark whose kernel the paper's `compress` measures
//! (it reaches the suite's highest ILP in Table 5.1).

use crate::{prose, Workload};
use daisy_ppc::asm::{Asm, Program};
use daisy_ppc::interp::Cpu;
use daisy_ppc::mem::Memory;
use daisy_ppc::reg::{CrField, Gpr};

const TEXT: u32 = 0x3_0000;
const OUT: u32 = 0x5_0000;
const HTAB: u32 = 0x6_0000;
const LEN: usize = 24 * 1024;
const SEED: u32 = 0x1F2E_3D4C;
const HASH_MUL: u32 = 40503;
/// Insertion cap: bounds the hash table's load factor at ~75% so open-
/// addressing probe chains stay short (real `compress` resets its table
/// when full for the same reason).
const MAX_CODE: u32 = 256 + 3 * 1024;

fn build() -> Program {
    let mut a = Asm::new(0x1000);
    let cr = CrField(0);
    let cr1 = CrField(1);
    let (ncodes, chksum, prefix, c, key, h, ekey, nc) =
        (Gpr(3), Gpr(4), Gpr(5), Gpr(6), Gpr(7), Gpr(8), Gpr(9), Gpr(10));
    let (hmul, off, tmp, i) = (Gpr(11), Gpr(12), Gpr(13), Gpr(17));
    let (inbase, len, tbase, obase) = (Gpr(14), Gpr(15), Gpr(18), Gpr(19));

    a.li32(inbase, TEXT);
    a.li32(len, LEN as u32);
    a.li32(tbase, HTAB);
    a.li32(obase, OUT);
    a.li32(hmul, HASH_MUL);
    a.li(ncodes, 0);
    a.li(chksum, 0);
    a.li32(nc, 256);
    a.lbz(prefix, 0, inbase);
    a.li(i, 1);

    a.label("loop");
    a.cmpw(cr, i, len);
    a.bge(cr, "finish");
    a.lbzx(c, inbase, i);
    // key = prefix << 8 | c
    a.slwi(key, prefix, 8);
    a.or(key, key, c);
    // h = (key * HASH_MUL) & 0xFFF
    a.mullw(h, key, hmul);
    a.clrlwi(h, h, 20);
    a.label("probe");
    a.slwi(off, h, 3);
    a.lwzx(ekey, tbase, off);
    a.cmpwi(cr, ekey, 0);
    a.beq(cr, "miss");
    a.addi(tmp, key, 1);
    a.cmpw(cr1, ekey, tmp);
    a.beq(cr1, "hit");
    a.addi(h, h, 1);
    a.clrlwi(h, h, 20);
    a.b("probe");

    a.label("hit");
    // prefix = table[h].code
    a.addi(off, off, 4);
    a.lwzx(prefix, tbase, off);
    a.addi(i, i, 1);
    a.b("loop");

    a.label("miss");
    // emit(prefix) — a call to the output routine on the next page, so
    // the benchmark exercises cross-page calls and returns the way a
    // real compress calls its output/libc layer (Table 5.6).
    a.bl("emit_fn");
    // Insert (key+1, nc) unless the dictionary is full.
    a.cmplwi(cr, nc, MAX_CODE as u16);
    a.bge(cr, "noinsert");
    a.slwi(off, h, 3);
    a.addi(tmp, key, 1);
    a.stwx(tmp, tbase, off);
    a.addi(off, off, 4);
    a.stwx(nc, tbase, off);
    a.addi(nc, nc, 1);
    a.label("noinsert");
    a.mr(prefix, c);
    a.addi(i, i, 1);
    a.b("loop");

    a.label("finish");
    a.bl("emit_fn");
    a.sc();

    // The output routine lives on the next 4 KiB page.
    while a.here() < 0x2000 {
        a.nop();
    }
    a.label("emit_fn");
    a.slwi(tmp, ncodes, 1);
    a.sthx(prefix, obase, tmp);
    a.addi(ncodes, ncodes, 1);
    a.rlwinm(chksum, chksum, 1, 0, 31);
    a.xor(chksum, chksum, prefix);
    a.blr();

    a.data(TEXT, &prose(LEN, SEED));
    a.finish().expect("compress assembles")
}

/// Rust recomputation of `(codes emitted, checksum)`.
pub fn expected() -> (u32, u32) {
    let text = prose(LEN, SEED);
    let mut table = vec![(0u32, 0u32); 4096];
    let mut prefix = u32::from(text[0]);
    let (mut ncodes, mut chk, mut nc) = (0u32, 0u32, 256u32);
    let mut i = 1usize;
    while i < text.len() {
        let c = u32::from(text[i]);
        let key = (prefix << 8) | c;
        let mut h = key.wrapping_mul(HASH_MUL) & 0xFFF;
        loop {
            let e = table[h as usize];
            if e.0 == 0 {
                ncodes += 1;
                chk = chk.rotate_left(1) ^ prefix;
                if nc < MAX_CODE {
                    table[h as usize] = (key + 1, nc);
                    nc += 1;
                }
                prefix = c;
                i += 1;
                break;
            }
            if e.0 == key + 1 {
                prefix = e.1;
                i += 1;
                break;
            }
            h = (h + 1) & 0xFFF;
        }
    }
    ncodes += 1;
    chk = chk.rotate_left(1) ^ prefix;
    (ncodes, chk)
}

fn check(cpu: &Cpu, mem: &Memory) -> Result<(), String> {
    let (codes, chk) = expected();
    if cpu.gpr[3] != codes {
        return Err(format!("compress: {} codes, want {codes}", cpu.gpr[3]));
    }
    if cpu.gpr[4] != chk {
        return Err(format!("compress: checksum {:#x}, want {chk:#x}", cpu.gpr[4]));
    }
    // The first output code is the first input byte's code.
    let first = mem.read_u16(OUT).map_err(|e| e.to_string())?;
    let text0 = prose(LEN, SEED)[0];
    if u32::from(first) != u32::from(text0) {
        return Err(format!("compress: first code {first}, want {text0}"));
    }
    Ok(())
}

/// The workload descriptor.
pub fn workload() -> Workload {
    Workload { name: "compress", mem_size: 0x8_0000, max_instrs: 30_000_000, build, check }
}
