/root/repo/target/debug/deps/daisy_ppc-5e2984c2d39d3c3b.d: crates/ppc/src/lib.rs crates/ppc/src/asm.rs crates/ppc/src/decode.rs crates/ppc/src/encode.rs crates/ppc/src/insn.rs crates/ppc/src/interp.rs crates/ppc/src/mem.rs crates/ppc/src/parse.rs crates/ppc/src/reg.rs Cargo.toml

/root/repo/target/debug/deps/libdaisy_ppc-5e2984c2d39d3c3b.rmeta: crates/ppc/src/lib.rs crates/ppc/src/asm.rs crates/ppc/src/decode.rs crates/ppc/src/encode.rs crates/ppc/src/insn.rs crates/ppc/src/interp.rs crates/ppc/src/mem.rs crates/ppc/src/parse.rs crates/ppc/src/reg.rs Cargo.toml

crates/ppc/src/lib.rs:
crates/ppc/src/asm.rs:
crates/ppc/src/decode.rs:
crates/ppc/src/encode.rs:
crates/ppc/src/insn.rs:
crates/ppc/src/interp.rs:
crates/ppc/src/mem.rs:
crates/ppc/src/parse.rs:
crates/ppc/src/reg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
