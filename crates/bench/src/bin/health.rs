//! `health` — periodic metrics snapshots over the workload suite.
//!
//! ```text
//! health [--mode packed|tree|native] [--interval N] [--watch]
//!        [--out FILE] [--prom FILE] [WORKLOAD ...]
//!
//!   --mode MODE      execution tier: packed (default), tree, native
//!   --interval N     dispatch boundaries between snapshots
//!                    (default 4096)
//!   --watch          print a delta line per snapshot while running
//!   --out FILE       write the JSON health document here
//!                    (default BENCH_health.json)
//!   --prom FILE      also write Prometheus text exposition with one
//!                    labelled series per workload
//!   WORKLOAD         workload names (default: all nine)
//! ```
//!
//! Each workload runs to completion with the metrics registry enabled,
//! stepping one dispatch boundary at a time and snapshotting every
//! `--interval` boundaries. The final registry snapshot per workload
//! lands in the JSON document (and the optional Prometheus file);
//! `--watch` additionally prints the snapshot-over-snapshot deltas as
//! they happen — the live-health view. Results are checked: a workload
//! that computes a wrong answer aborts the run.

use daisy::metrics::{prometheus_text, Counter, Gauge};
use daisy::prelude::*;
use daisy_bench::health::{health_json, run_health, Mode};
use daisy_bench::reporting::resolve_workloads;

struct Options {
    mode: Mode,
    interval: u64,
    watch: bool,
    out: String,
    prom: Option<String>,
    workloads: Vec<String>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        mode: Mode::Packed,
        interval: 4096,
        watch: false,
        out: "BENCH_health.json".to_owned(),
        prom: None,
        workloads: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--mode" => {
                let v = args.next().expect("--mode needs a value");
                opts.mode = Mode::parse(&v)
                    .unwrap_or_else(|| panic!("unknown mode: {v} (expected packed|tree|native)"));
            }
            "--interval" => {
                opts.interval = args
                    .next()
                    .expect("--interval needs a value")
                    .parse::<u64>()
                    .expect("--interval needs a number")
                    .max(1)
            }
            "--watch" => opts.watch = true,
            "--out" => opts.out = args.next().expect("--out needs a path"),
            "--prom" => opts.prom = Some(args.next().expect("--prom needs a path")),
            "--help" | "-h" => {
                println!(
                    "health [--mode packed|tree|native] [--interval N] [--watch] \
                     [--out FILE] [--prom FILE] [WORKLOAD ...]"
                );
                std::process::exit(0);
            }
            other => opts.workloads.push(other.to_string()),
        }
    }
    opts
}

fn main() {
    let opts = parse_args();
    let workloads = resolve_workloads(&opts.workloads);
    let mut records = Vec::new();
    println!(
        "{:>12}  {:>10}  {:>9}  {:>12}  {:>10}  {:>9}  {:>8}",
        "workload", "boundaries", "snapshots", "retired", "dispatches", "cast_outs", "degraded"
    );
    for w in &workloads {
        let r = run_health(w, opts.mode, opts.interval, opts.watch);
        println!(
            "{:>12}  {:>10}  {:>9}  {:>12}  {:>10}  {:>9}  {:>8}",
            r.name,
            r.boundaries,
            r.snapshots,
            r.last.counter(Counter::RetiredInstrs),
            r.last.counter(Counter::VmmDispatches) + r.last.counter(Counter::ChainedDispatches),
            r.last.counter(Counter::CastOuts),
            r.last.gauge(Gauge::DegradedEntries),
        );
        records.push(r);
    }
    let json = health_json(&records, opts.mode, opts.interval);
    std::fs::write(&opts.out, json).expect("write health JSON");
    println!("wrote {}", opts.out);
    if let Some(prom_path) = &opts.prom {
        let series: Vec<(&str, &MetricsSnapshot)> =
            records.iter().map(|r| (r.name, &r.last)).collect();
        std::fs::write(prom_path, prometheus_text(&series)).expect("write Prometheus text");
        println!("wrote {prom_path}");
    }
}
