/root/repo/target/debug/deps/daisy_workloads-0de6bce27fe78e78.d: crates/workloads/src/lib.rs crates/workloads/src/cmp.rs crates/workloads/src/compress.rs crates/workloads/src/fgrep.rs crates/workloads/src/hist.rs crates/workloads/src/lex.rs crates/workloads/src/sieve.rs crates/workloads/src/sort.rs crates/workloads/src/wc.rs crates/workloads/src/xlat.rs Cargo.toml

/root/repo/target/debug/deps/libdaisy_workloads-0de6bce27fe78e78.rmeta: crates/workloads/src/lib.rs crates/workloads/src/cmp.rs crates/workloads/src/compress.rs crates/workloads/src/fgrep.rs crates/workloads/src/hist.rs crates/workloads/src/lex.rs crates/workloads/src/sieve.rs crates/workloads/src/sort.rs crates/workloads/src/wc.rs crates/workloads/src/xlat.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/cmp.rs:
crates/workloads/src/compress.rs:
crates/workloads/src/fgrep.rs:
crates/workloads/src/hist.rs:
crates/workloads/src/lex.rs:
crates/workloads/src/sieve.rs:
crates/workloads/src/sort.rs:
crates/workloads/src/wc.rs:
crates/workloads/src/xlat.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
