//! Inspect DAISY's output: run a workload, then list the translated
//! groups — tree instructions, parcels, renames, commits, exits — the
//! way Appendix C walks through Figure 2.2.
//!
//! ```sh
//! cargo run --release --example inspect [workload] [max_vliws]
//! ```

use daisy::prelude::*;
use daisy_ppc::PpcIsa;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "c_sieve".to_owned());
    let max_vliws: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(6);
    let w = daisy_workloads::by_name(&name).unwrap_or_else(|| panic!("unknown workload `{name}`"));
    let prog = w.program();

    let mut sys = DaisySystem::<PpcIsa>::builder().mem_size(w.mem_size).build();
    sys.load(&prog).unwrap();
    sys.run(50 * w.max_instrs).unwrap();
    w.check(&sys.cpu, &sys.mem).expect("workload result verified");

    println!(
        "{name}: {} groups on {} pages, {} bytes of VLIW code, {} VLIWs executed\n",
        sys.vmm.stats.groups_translated,
        sys.vmm.stats.pages_translated,
        sys.vmm.stats.code_bytes,
        sys.stats.vliws_executed
    );

    // Show the entry group's tree code next to the base instructions.
    let entry = prog.entry;
    let code = sys.vmm.lookup(entry).expect("entry translated");
    println!("=== base instructions at {entry:#x} ===");
    for i in 0..12u32 {
        let addr = entry + 4 * i;
        if let Ok(word) = sys.mem.read_u32(addr) {
            println!("  {addr:#x}: {}", daisy_ppc::decode(word));
        }
    }
    println!("\n=== translated group at {entry:#x} ({} VLIWs) ===", code.group.len());
    for (i, v) in code.group.vliws.iter().take(max_vliws).enumerate() {
        println!("[{i}] {v}");
    }
    if code.group.len() > max_vliws {
        println!("… {} more VLIWs (pass a larger max)", code.group.len() - max_vliws);
    }
}
