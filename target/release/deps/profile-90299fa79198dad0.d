/root/repo/target/release/deps/profile-90299fa79198dad0.d: crates/bench/src/bin/profile.rs

/root/repo/target/release/deps/profile-90299fa79198dad0: crates/bench/src/bin/profile.rs

crates/bench/src/bin/profile.rs:
