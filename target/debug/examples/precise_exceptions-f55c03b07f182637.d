/root/repo/target/debug/examples/precise_exceptions-f55c03b07f182637.d: examples/precise_exceptions.rs

/root/repo/target/debug/examples/precise_exceptions-f55c03b07f182637: examples/precise_exceptions.rs

examples/precise_exceptions.rs:
