/root/repo/target/release/deps/dispatch-24aedb80125e1657.d: crates/bench/benches/dispatch.rs

/root/repo/target/release/deps/dispatch-24aedb80125e1657: crates/bench/benches/dispatch.rs

crates/bench/benches/dispatch.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
