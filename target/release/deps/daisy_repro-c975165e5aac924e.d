/root/repo/target/release/deps/daisy_repro-c975165e5aac924e.d: src/lib.rs

/root/repo/target/release/deps/libdaisy_repro-c975165e5aac924e.rlib: src/lib.rs

/root/repo/target/release/deps/libdaisy_repro-c975165e5aac924e.rmeta: src/lib.rs

src/lib.rs:
