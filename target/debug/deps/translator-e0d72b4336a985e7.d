/root/repo/target/debug/deps/translator-e0d72b4336a985e7.d: crates/bench/benches/translator.rs Cargo.toml

/root/repo/target/debug/deps/libtranslator-e0d72b4336a985e7.rmeta: crates/bench/benches/translator.rs Cargo.toml

crates/bench/benches/translator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
