/root/repo/target/debug/deps/tiered-8a79c50e58c0f326.d: tests/tiered.rs

/root/repo/target/debug/deps/tiered-8a79c50e58c0f326: tests/tiered.rs

tests/tiered.rs:
