/root/repo/target/release/deps/daisy_cachesim-dcb9448d0b3abb1b.d: crates/cachesim/src/lib.rs

/root/repo/target/release/deps/libdaisy_cachesim-dcb9448d0b3abb1b.rlib: crates/cachesim/src/lib.rs

/root/repo/target/release/deps/libdaisy_cachesim-dcb9448d0b3abb1b.rmeta: crates/cachesim/src/lib.rs

crates/cachesim/src/lib.rs:
