//! Fault-injection campaigns: every perturbation family, driven by
//! fixed seeds, must complete without panics, without unrecoverable
//! errors, and bit-exact against the pure-interpreter oracle — with the
//! degradation ladder visibly doing the absorbing. The full 32-seed CI
//! matrix lives in the `inject` bin (`scripts/ci.sh`); this suite keeps
//! a smaller always-on slice in `cargo test`.

use daisy::inject::{run_campaign, CampaignConfig, FaultKind};
use daisy_ppc::PpcIsa;

/// Every fault kind on a real workload, a few seeds each: zero
/// divergence, and at least one ladder step recorded per kind.
#[test]
fn all_fault_kinds_bit_exact_with_degradations() {
    let w = daisy_workloads::by_name("c_sieve").expect("sieve workload");
    for kind in FaultKind::ALL {
        let mut injected = 0u64;
        for seed in 0..3u64 {
            let cfg = CampaignConfig::new(kind, seed);
            let out = run_campaign(&w, &cfg)
                .unwrap_or_else(|e| panic!("campaign must stay bit-exact: {e}"));
            assert!(
                out.degradations >= 1,
                "{kind} seed {seed}: ladder driver must record at least one step"
            );
            assert!(out.boundaries > 0, "{kind} seed {seed}: ran no groups");
            injected += out.injections;
        }
        assert!(injected > 0, "{kind}: no perturbation was ever applied");
    }
}

/// The tree engine survives the same campaigns (the ladder's first rung
/// must be as robust as the packed default).
#[test]
fn campaigns_pass_on_tree_engine() {
    let w = daisy_workloads::by_name("wc").expect("wc workload");
    for kind in [FaultKind::HotPatch, FaultKind::InterruptStorm, FaultKind::TranslationDrop] {
        let cfg = CampaignConfig { packed: false, ..CampaignConfig::new(kind, 11) };
        run_campaign(&w, &cfg).unwrap_or_else(|e| panic!("tree-engine campaign failed: {e}"));
    }
}

/// Campaigns with chaining disabled exercise the pure-VMM dispatch
/// path's recovery surface.
#[test]
fn campaigns_pass_without_chaining() {
    let w = daisy_workloads::by_name("cmp").expect("cmp workload");
    for kind in [FaultKind::IllegalOp, FaultKind::CastOutThrash, FaultKind::ChainSever] {
        let cfg = CampaignConfig { chaining: false, ..CampaignConfig::new(kind, 5) };
        run_campaign(&w, &cfg).unwrap_or_else(|e| panic!("unchained campaign failed: {e}"));
    }
}

/// Campaign effects are observable in the stats they claim to perturb:
/// cast-out thrash casts out, hot patches invalidate, storms deliver.
#[test]
fn campaigns_perturb_what_they_claim() {
    let w = daisy_workloads::by_name("c_sieve").expect("sieve workload");

    let thrash = run_campaign(&w, &CampaignConfig::new(FaultKind::CastOutThrash, 1)).unwrap();
    assert!(thrash.vmm_stats.cast_outs > 0, "clamped cache must cast out");

    let patch = run_campaign(&w, &CampaignConfig::new(FaultKind::HotPatch, 1)).unwrap();
    assert!(patch.vmm_stats.invalidations > 0, "hot patches must invalidate");

    let storm = run_campaign(&w, &CampaignConfig::new(FaultKind::InterruptStorm, 1)).unwrap();
    assert!(storm.stats.exceptions > 0, "storm must deliver interrupts");

    let drop = run_campaign(&w, &CampaignConfig::new(FaultKind::TranslationDrop, 1)).unwrap();
    assert!(
        drop.vmm_stats.groups_translated > drop.boundaries.min(3),
        "dropped translations must be rebuilt"
    );
}

/// The `TraceEvent::Degraded` stream matches the recorded degradation
/// log: the observability layer sees every ladder step, with the
/// campaign's cause attached.
#[test]
fn degraded_events_reach_the_trace_stream() {
    use daisy::prelude::*;

    let w = daisy_workloads::by_name("wc").expect("wc workload");
    let prog = w.program();
    let sink = RingSink::new(4096);
    let mut sys =
        DaisySystem::<PpcIsa>::builder().mem_size(w.mem_size).trace_sink(sink.clone()).build();
    sys.load(&prog).unwrap();
    // Prime a translation, then force two ladder steps at the entry.
    sys.step().unwrap();
    let entry = prog.entry;
    let d1 = sys.degrade(entry, DegradeCause::Forced).expect("packed -> tree");
    let d2 = sys.degrade(entry, DegradeCause::Forced).expect("tree -> conservative");
    assert_eq!((d1.from, d1.to), (daisy::Rung::Packed, daisy::Rung::Tree));
    assert_eq!((d2.from, d2.to), (daisy::Rung::Tree, daisy::Rung::Conservative));
    sys.run(10 * w.max_instrs).unwrap();
    w.check(&sys.cpu, &sys.mem).expect("result exact after degradation");

    let degraded: Vec<TraceEvent> =
        sink.events().into_iter().filter(|e| matches!(e, TraceEvent::Degraded { .. })).collect();
    assert_eq!(degraded.len(), sys.degradations().len(), "log and stream must agree");
    assert_eq!(
        degraded[0],
        TraceEvent::Degraded {
            entry,
            from: daisy::Rung::Packed,
            to: daisy::Rung::Tree,
            cause: DegradeCause::Forced,
        }
    );
}
