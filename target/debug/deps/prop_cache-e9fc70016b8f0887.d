/root/repo/target/debug/deps/prop_cache-e9fc70016b8f0887.d: crates/cachesim/tests/prop_cache.rs Cargo.toml

/root/repo/target/debug/deps/libprop_cache-e9fc70016b8f0887.rmeta: crates/cachesim/tests/prop_cache.rs Cargo.toml

crates/cachesim/tests/prop_cache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
