/root/repo/target/release/examples/quickstart-f6f249416a2950c5.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-f6f249416a2950c5: examples/quickstart.rs

examples/quickstart.rs:
