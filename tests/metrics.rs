//! The unified metrics registry and the always-on flight recorder,
//! end to end: snapshots must conserve the per-layer counters exactly
//! on every workload and every execution tier, the registry a monitor
//! scrapes must agree with a direct snapshot, and the flight
//! recorder's post-mortem must fire — with the full degradation chain
//! — with no trace sink installed.

use daisy::inject::{run_campaign, CampaignConfig, FaultKind};
use daisy::metrics::Counter;
use daisy::prelude::*;
use daisy::DegradeCause;
use daisy_ppc::PpcIsa;
use daisy_workloads::Workload;

fn run_with_metrics(w: &Workload, packed: bool, native: bool) -> DaisySystem<PpcIsa> {
    let mut sys = DaisySystem::<PpcIsa>::builder()
        .mem_size(w.mem_size)
        .packed_execution(packed)
        .native_execution(native)
        .metrics(true)
        .build();
    sys.load(&w.program()).expect("workload fits in memory");
    sys.run(50 * w.max_instrs).expect("workload completes");
    w.check(&sys.cpu, &sys.mem).unwrap_or_else(|e| panic!("{}: check failed: {e}", w.name));
    sys
}

/// Conservation: on all nine workloads, on the packed, tree, and
/// native tiers, the final snapshot agrees counter-for-counter with
/// the per-layer stats structs it is gathered from — dispatches,
/// retired instructions, cast-outs, and interrupts among them. A
/// mismatch means a publisher drifted from the source of truth.
#[test]
fn snapshot_conserves_stats_on_every_workload_and_tier() {
    for w in daisy_workloads::all() {
        for (packed, native) in [(true, false), (false, false), (true, true)] {
            let tier = if native {
                "native"
            } else if packed {
                "packed"
            } else {
                "tree"
            };
            let sys = run_with_metrics(&w, packed, native);
            let snap = sys.metrics_snapshot();
            let ctx = format!("{} ({tier})", w.name);

            assert_eq!(snap.counter(Counter::VmmDispatches), sys.stats.groups_entered, "{ctx}");
            assert_eq!(
                snap.counter(Counter::ChainedDispatches),
                sys.stats.chain.chained_dispatches,
                "{ctx}"
            );
            assert_eq!(
                snap.counter(Counter::RetiredInstrs),
                sys.stats.approx_base_instrs(),
                "{ctx}"
            );
            assert!(snap.counter(Counter::RetiredInstrs) > 0, "{ctx}: no work retired");
            assert_eq!(snap.counter(Counter::Vliws), sys.stats.vliws_executed, "{ctx}");
            assert_eq!(snap.counter(Counter::InterpInstrs), sys.stats.interp_instrs, "{ctx}");
            assert_eq!(snap.counter(Counter::Loads), sys.stats.loads, "{ctx}");
            assert_eq!(snap.counter(Counter::Stores), sys.stats.stores, "{ctx}");
            assert_eq!(snap.counter(Counter::InterruptsTaken), sys.stats.interrupts_taken, "{ctx}");
            assert_eq!(snap.counter(Counter::CastOuts), sys.vmm.stats.cast_outs, "{ctx}");
            assert_eq!(
                snap.counter(Counter::GroupsTranslated),
                sys.vmm.stats.groups_translated,
                "{ctx}"
            );
            assert_eq!(
                snap.counter(Counter::CodeBytesEmitted),
                sys.vmm.stats.code_bytes_total,
                "{ctx}"
            );
            let native_stats = sys.native_stats();
            assert_eq!(
                snap.counter(Counter::NativeCompiles),
                native_stats.map_or(0, |n| n.compiles),
                "{ctx}"
            );
            assert_eq!(
                snap.counter(Counter::NativeVliws),
                native_stats.map_or(0, |n| n.vliws_native),
                "{ctx}"
            );
            // The suite finishes on the rung it started on: no
            // degradations, nothing interpreted for ladder reasons.
            assert_eq!(snap.degradations_by(DegradeCause::Forced), 0, "{ctx}");
            assert_eq!(
                snap.gauge(daisy::metrics::Gauge::DegradedEntries),
                sys.degradations().len() as u64,
                "{ctx}"
            );
            // Issue-width histogram: every sample is a retired VLIW
            // (exit paths retire a VLIW without a histogram sample,
            // so the count is a floor, not an identity).
            assert!(snap.issue_parcels.count > 0, "{ctx}: histogram empty");
            assert!(snap.issue_parcels.count <= sys.stats.vliws_executed, "{ctx}");
        }
    }
}

/// The registry is a faithful copy: after an explicit publish, the
/// snapshot read back through the shared handle equals one gathered
/// directly from the layers — on every workload.
#[test]
fn published_registry_agrees_with_direct_snapshot() {
    for w in daisy_workloads::all() {
        let mut sys = run_with_metrics(&w, true, false);
        sys.publish_metrics_now();
        let direct = sys.metrics_snapshot();
        let scraped = sys.metrics_registry().expect("metrics enabled").snapshot();
        assert_eq!(scraped, direct, "{}: registry drifted from the layers", w.name);
    }
}

/// The flight recorder runs with no sink installed (the always-on
/// mode), and a ladder degradation auto-captures a post-mortem whose
/// ring contains the degradation event itself.
#[test]
fn post_mortem_fires_on_degradation_without_a_sink() {
    let w = daisy_workloads::by_name("wc").expect("wc workload");
    let prog = w.program();
    let mut sys = DaisySystem::<PpcIsa>::builder().mem_size(w.mem_size).build();
    sys.load(&prog).unwrap();
    sys.step().unwrap();
    assert!(!sys.vmm.tracer.enabled(), "no sink installed");
    assert!(sys.flight_recorder().recorded() > 0, "recorder taps events anyway");
    assert!(sys.post_mortem().is_none(), "nothing degraded yet");

    let d = sys.degrade(prog.entry, DegradeCause::Forced).expect("packed -> tree");
    let pm = sys.post_mortem().expect("degradation auto-captures a post-mortem");
    assert!(pm.reason.contains("ladder degradation"), "reason names the trigger: {}", pm.reason);
    assert_eq!(pm.chain, vec![d], "chain carries the recorded degradation");
    assert!(
        pm.events.iter().any(|(_, ev)| matches!(
            ev,
            TraceEvent::Degraded { entry, .. } if *entry == prog.entry
        )),
        "the ring contains the degradation event itself"
    );
    let rendered = pm.to_string();
    assert!(rendered.contains("=== daisy post-mortem"), "dump is structured: {rendered}");

    // The run continues and completes correctly after the capture.
    sys.run(10 * w.max_instrs).unwrap();
    w.check(&sys.cpu, &sys.mem).expect("result exact after degradation");
    let pm = sys.take_post_mortem().expect("still available");
    assert!(sys.post_mortem().is_none(), "take drains the slot");
    assert_eq!(pm.chain.len(), 1);
}

/// A cast-out-thrash campaign that walks one entry all the way down
/// must surface the *complete* degradation chain
/// (Packed → Tree → Conservative → Interpret, in order) in the
/// outcome's post-mortem, with the snapshot's per-cause tallies
/// agreeing with the chain.
#[test]
fn cast_out_thrash_post_mortem_carries_the_full_chain() {
    let w = daisy_workloads::by_name("c_sieve").expect("sieve workload");
    let want = [Rung::Packed, Rung::Tree, Rung::Conservative, Rung::Interpret];

    let mut found_full_walk = false;
    for seed in 0..16u64 {
        let cfg = CampaignConfig {
            max_degrades: 12,
            ..CampaignConfig::new(FaultKind::CastOutThrash, seed)
        };
        let out = run_campaign::<PpcIsa>(&w, &cfg)
            .unwrap_or_else(|e| panic!("campaign must stay bit-exact: {e}"));
        let pm = out.post_mortem.expect("forced ladder steps capture a post-mortem");
        assert!(!pm.chain.is_empty(), "seed {seed}: chain must not be empty");
        assert!(!pm.events.is_empty(), "seed {seed}: ring must not be empty");

        // Per-cause conservation between the chain and the snapshot
        // taken at capture time.
        for cause in DegradeCause::ALL {
            let in_chain = pm.chain.iter().filter(|d| d.cause == cause).count() as u64;
            assert_eq!(
                pm.snapshot.degradations_by(cause),
                in_chain,
                "seed {seed}: snapshot tally for {cause} disagrees with the chain"
            );
        }

        // Did some entry walk the whole ladder? (The driver degrades
        // at the then-current PC, so the walk can be split across
        // entries on some seeds — scan until one seed keeps it whole.)
        for entry in pm.chain.iter().map(|d| d.entry) {
            let walk: Vec<(Rung, Rung)> = pm
                .chain
                .iter()
                .filter(|d| d.entry == entry && d.from != d.to)
                .map(|d| (d.from, d.to))
                .collect();
            if walk == [(want[0], want[1]), (want[1], want[2]), (want[2], want[3])] {
                found_full_walk = true;
            }
        }
        if found_full_walk {
            break;
        }
    }
    assert!(found_full_walk, "no seed in 0..16 produced a complete Packed→Interpret walk");
}
