/root/repo/target/debug/deps/trace_events-250b4a264419ec04.d: tests/trace_events.rs

/root/repo/target/debug/deps/trace_events-250b4a264419ec04: tests/trace_events.rs

tests/trace_events.rs:
