//! `wc` — character / word / line counting over a synthetic text, the
//! AIX utility measured in the paper.

use crate::{prose, Workload};
use daisy_ppc::asm::{Asm, Program};
use daisy_ppc::interp::Cpu;
use daisy_ppc::mem::Memory;
use daisy_ppc::reg::{CrField, Gpr};

const TEXT: u32 = 0x3_0000;
const LEN: usize = 48 * 1024;
const SEED: u32 = 0x5EED_0001;

fn build() -> Program {
    let mut a = Asm::new(0x1000);
    let (chars, words, lines, inword, i, c, base, len) =
        (Gpr(3), Gpr(4), Gpr(5), Gpr(6), Gpr(7), Gpr(8), Gpr(14), Gpr(15));
    let cr = CrField(0);

    a.li(chars, 0);
    a.li(words, 0);
    a.li(lines, 0);
    a.li(inword, 0);
    a.li(i, 0);
    a.li32(base, TEXT);
    a.li32(len, LEN as u32);

    a.label("loop");
    a.lbzx(c, base, i);
    a.addi(chars, chars, 1);
    a.cmpwi(cr, c, i16::from(b'\n'));
    a.beq(cr, "newline");
    a.cmpwi(cr, c, i16::from(b' '));
    a.beq(cr, "space");
    // In a word: count its start.
    a.cmpwi(cr, inword, 0);
    a.bne(cr, "cont");
    a.addi(words, words, 1);
    a.li(inword, 1);
    a.b("cont");
    a.label("newline");
    a.addi(lines, lines, 1);
    a.label("space");
    a.li(inword, 0);
    a.label("cont");
    a.addi(i, i, 1);
    a.cmpw(cr, i, len);
    a.blt(cr, "loop");
    a.sc();

    a.data(TEXT, &prose(LEN, SEED));
    a.finish().expect("wc assembles")
}

/// Rust recomputation of the (chars, words, lines) triple.
pub fn expected() -> (u32, u32, u32) {
    let text = prose(LEN, SEED);
    let (mut words, mut lines) = (0u32, 0u32);
    let mut inword = false;
    for &c in &text {
        match c {
            b'\n' => {
                lines += 1;
                inword = false;
            }
            b' ' => inword = false,
            _ => {
                if !inword {
                    words += 1;
                    inword = true;
                }
            }
        }
    }
    (LEN as u32, words, lines)
}

fn check(cpu: &Cpu, _mem: &Memory) -> Result<(), String> {
    let (c, w, l) = expected();
    if (cpu.gpr[3], cpu.gpr[4], cpu.gpr[5]) == (c, w, l) {
        Ok(())
    } else {
        Err(format!(
            "wc: got ({}, {}, {}), want ({c}, {w}, {l})",
            cpu.gpr[3], cpu.gpr[4], cpu.gpr[5]
        ))
    }
}

/// The workload descriptor.
pub fn workload() -> Workload {
    Workload { name: "wc", mem_size: 0x6_0000, max_instrs: 10_000_000, build, check }
}
