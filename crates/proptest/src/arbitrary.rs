//! `any::<T>()` for the primitive types the tests generate.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Debug + Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
