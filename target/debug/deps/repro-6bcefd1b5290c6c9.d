/root/repo/target/debug/deps/repro-6bcefd1b5290c6c9.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-6bcefd1b5290c6c9: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
