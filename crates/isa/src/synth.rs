//! Deterministic synthetic-input generators shared by guest workloads.
//!
//! These live in the guest-agnostic crate so every frontend's port of a
//! workload consumes byte-identical input: the cross-ISA differential
//! harness relies on a PowerPC `hist` and an RV32 `hist` hashing the
//! same text and therefore producing the same counters.

/// Deterministic xorshift32 generator used for synthetic inputs (the
/// same sequence is reproduced by checkers).
#[derive(Debug, Clone)]
pub struct XorShift(pub u32);

impl XorShift {
    /// Next pseudo-random value.
    pub fn next_u32(&mut self) -> u32 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        self.0 = x;
        x
    }
}

/// Builds the synthetic "prose" input shared by `wc`, `fgrep`, and
/// `compress`: words of 1–9 lowercase letters, spaces, newlines, with
/// the literal word `needle` sprinkled in deterministically.
pub fn prose(len: usize, seed: u32) -> Vec<u8> {
    let mut rng = XorShift(seed);
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        let r = rng.next_u32();
        if r.is_multiple_of(97) {
            out.extend_from_slice(b"needle");
        } else {
            let wl = 1 + (r % 9) as usize;
            for i in 0..wl {
                out.push(b'a' + ((r >> (3 * i)) % 26) as u8);
            }
        }
        if rng.next_u32().is_multiple_of(11) {
            out.push(b'\n');
        } else {
            out.push(b' ');
        }
    }
    out.truncate(len);
    out
}

/// Builds the synthetic "source code" input for `lex`.
pub fn source_text(len: usize, seed: u32) -> Vec<u8> {
    let mut rng = XorShift(seed);
    let idents = ["count", "i", "total", "buf", "x1", "tmp", "offset"];
    let puncts = ["= ", "+ ", "; ", "( ", ") ", "* ", "{ ", "} "];
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        match rng.next_u32() % 4 {
            0 => {
                out.extend_from_slice(
                    idents[(rng.next_u32() % idents.len() as u32) as usize].as_bytes(),
                );
                out.push(b' ');
            }
            1 => {
                let n = rng.next_u32() % 10_000;
                out.extend_from_slice(n.to_string().as_bytes());
                out.push(b' ');
            }
            2 => out.extend_from_slice(
                puncts[(rng.next_u32() % puncts.len() as u32) as usize].as_bytes(),
            ),
            _ => out.push(b'\n'),
        }
    }
    out.truncate(len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prose_is_deterministic() {
        assert_eq!(prose(1000, 42), prose(1000, 42));
        assert_ne!(prose(1000, 42), prose(1000, 43));
    }
}
