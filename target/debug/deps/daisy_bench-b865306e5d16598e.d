/root/repo/target/debug/deps/daisy_bench-b865306e5d16598e.d: crates/bench/src/lib.rs crates/bench/src/runner.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/daisy_bench-b865306e5d16598e: crates/bench/src/lib.rs crates/bench/src/runner.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/runner.rs:
crates/bench/src/tables.rs:
