//! Label-based RV32I assembler and program builder.
//!
//! The RV32 workload ports are written against this API and assembled
//! to genuine 32-bit RISC-V words, which the DAISY translator then
//! consumes exactly as it would consume a real binary. The shape
//! mirrors the PowerPC assembler: instructions append from a base
//! address, labels name the next instruction, and `finish` patches
//! branch displacements.
//!
//! # Example
//!
//! ```
//! use daisy_rv32::asm::Asm;
//! use daisy_rv32::insn::Xr;
//!
//! let mut a = Asm::new(0x1000);
//! a.li(Xr(10), 0);
//! a.li(Xr(5), 10);
//! a.label("loop");
//! a.addi(Xr(10), Xr(10), 2);
//! a.addi(Xr(5), Xr(5), -1);
//! a.bne(Xr(5), Xr(0), "loop");
//! a.ecall();
//! let prog = a.finish().unwrap();
//! assert_eq!(prog.code.len(), 6);
//! ```

use crate::insn::{encode, AluImmOp, AluOp, BranchCond, Insn, MemWidth, ShiftOp, Xr};
use std::collections::HashMap;
use std::fmt;

// The assembled image type is ISA-neutral and shared across guest
// frontends.
pub use daisy_isa::Program;

/// Assembly-time errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A referenced label was never defined.
    UndefinedLabel(String),
    /// A label was defined twice.
    DuplicateLabel(String),
    /// A branch displacement exceeded its encoding range (±4 KiB for
    /// conditional branches, ±1 MiB for `jal`).
    BranchOutOfRange {
        /// The target label.
        label: String,
        /// Displacement in bytes.
        displacement: i64,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmError::BranchOutOfRange { label, displacement } => {
                write!(f, "branch to `{label}` out of range ({displacement} bytes)")
            }
        }
    }
}

impl std::error::Error for AsmError {}

#[derive(Debug, Clone)]
enum Item {
    Insn(Insn),
    /// Conditional branch with a label target to fix up.
    BranchTo {
        cond: BranchCond,
        rs1: Xr,
        rs2: Xr,
        label: String,
    },
    /// `jal` with a label target.
    JalTo {
        rd: Xr,
        label: String,
    },
}

/// The assembler. Instructions append at increasing addresses from the
/// base; labels name the next instruction's address.
#[derive(Debug, Clone)]
pub struct Asm {
    base: u32,
    items: Vec<Item>,
    labels: HashMap<String, u32>,
    data: Vec<(u32, Vec<u8>)>,
    error: Option<AsmError>,
}

impl Asm {
    /// Starts assembling at `base` (must be word-aligned).
    pub fn new(base: u32) -> Asm {
        Asm {
            base: base & !3,
            items: Vec::new(),
            labels: HashMap::new(),
            data: Vec::new(),
            error: None,
        }
    }

    /// Address the next emitted instruction will occupy.
    pub fn here(&self) -> u32 {
        self.base + 4 * self.items.len() as u32
    }

    /// Defines a label at the current address.
    pub fn label(&mut self, name: &str) {
        if self.labels.insert(name.to_owned(), self.here()).is_some() && self.error.is_none() {
            self.error = Some(AsmError::DuplicateLabel(name.to_owned()));
        }
    }

    /// Attaches raw bytes at an absolute address in the image.
    pub fn data(&mut self, addr: u32, bytes: &[u8]) {
        self.data.push((addr, bytes.to_vec()));
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, insn: Insn) {
        self.items.push(Item::Insn(insn));
    }

    /// Resolves labels and produces the program image.
    pub fn finish(self) -> Result<Program, AsmError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        let lookup = |label: &str| -> Result<u32, AsmError> {
            self.labels
                .get(label)
                .copied()
                .ok_or_else(|| AsmError::UndefinedLabel(label.to_owned()))
        };
        let mut code = Vec::with_capacity(self.items.len());
        for (i, item) in self.items.iter().enumerate() {
            let pc = self.base + 4 * i as u32;
            let insn = match item {
                Item::Insn(insn) => *insn,
                Item::BranchTo { cond, rs1, rs2, label } => {
                    let target = lookup(label)?;
                    let disp = i64::from(target) - i64::from(pc);
                    if !(-4096..4096).contains(&disp) {
                        return Err(AsmError::BranchOutOfRange {
                            label: label.clone(),
                            displacement: disp,
                        });
                    }
                    Insn::Branch { cond: *cond, rs1: *rs1, rs2: *rs2, off: disp as i16 }
                }
                Item::JalTo { rd, label } => {
                    let target = lookup(label)?;
                    let disp = i64::from(target) - i64::from(pc);
                    if !(-(1 << 20)..(1 << 20)).contains(&disp) {
                        return Err(AsmError::BranchOutOfRange {
                            label: label.clone(),
                            displacement: disp,
                        });
                    }
                    Insn::Jal { rd: *rd, off: disp as i32 }
                }
            };
            code.push(encode(&insn));
        }
        Ok(Program {
            base: self.base,
            entry: self.base,
            code,
            data: self.data,
            labels: self.labels,
        })
    }

    // ---- Mnemonics ------------------------------------------------------

    /// `addi rd, rs1, imm` (−2048..=2047).
    pub fn addi(&mut self, rd: Xr, rs1: Xr, imm: i16) {
        self.emit(Insn::OpImm { op: AluImmOp::Addi, rd, rs1, imm });
    }

    /// Loads a 32-bit constant with `addi` or `lui`+`addi`.
    pub fn li(&mut self, rd: Xr, v: i32) {
        let v = v as u32;
        let lo = ((v << 20) as i32 >> 20) as i16; // sign-extended low 12
        if lo as i32 as u32 == v {
            self.addi(rd, Xr(0), lo);
            return;
        }
        // Pre-compensate the upper part for the sign of the low half.
        let hi = v.wrapping_add(0x800) & 0xFFFF_F000;
        self.emit(Insn::Lui { rd, imm: hi });
        if lo != 0 {
            self.addi(rd, rd, lo);
        }
    }

    /// Loads a 32-bit constant (unsigned convenience form of [`Asm::li`]).
    pub fn li32(&mut self, rd: Xr, v: u32) {
        self.li(rd, v as i32);
    }

    /// `mv rd, rs` (`addi rd, rs, 0`).
    pub fn mv(&mut self, rd: Xr, rs: Xr) {
        self.addi(rd, rs, 0);
    }

    /// `add rd, rs1, rs2`.
    pub fn add(&mut self, rd: Xr, rs1: Xr, rs2: Xr) {
        self.emit(Insn::Op { op: AluOp::Add, rd, rs1, rs2 });
    }

    /// `sub rd, rs1, rs2`.
    pub fn sub(&mut self, rd: Xr, rs1: Xr, rs2: Xr) {
        self.emit(Insn::Op { op: AluOp::Sub, rd, rs1, rs2 });
    }

    /// `and rd, rs1, rs2`.
    pub fn and(&mut self, rd: Xr, rs1: Xr, rs2: Xr) {
        self.emit(Insn::Op { op: AluOp::And, rd, rs1, rs2 });
    }

    /// `or rd, rs1, rs2`.
    pub fn or(&mut self, rd: Xr, rs1: Xr, rs2: Xr) {
        self.emit(Insn::Op { op: AluOp::Or, rd, rs1, rs2 });
    }

    /// `xor rd, rs1, rs2`.
    pub fn xor(&mut self, rd: Xr, rs1: Xr, rs2: Xr) {
        self.emit(Insn::Op { op: AluOp::Xor, rd, rs1, rs2 });
    }

    /// `slt rd, rs1, rs2`.
    pub fn slt(&mut self, rd: Xr, rs1: Xr, rs2: Xr) {
        self.emit(Insn::Op { op: AluOp::Slt, rd, rs1, rs2 });
    }

    /// `sltu rd, rs1, rs2`.
    pub fn sltu(&mut self, rd: Xr, rs1: Xr, rs2: Xr) {
        self.emit(Insn::Op { op: AluOp::Sltu, rd, rs1, rs2 });
    }

    /// `andi rd, rs1, imm`.
    pub fn andi(&mut self, rd: Xr, rs1: Xr, imm: i16) {
        self.emit(Insn::OpImm { op: AluImmOp::Andi, rd, rs1, imm });
    }

    /// `ori rd, rs1, imm`.
    pub fn ori(&mut self, rd: Xr, rs1: Xr, imm: i16) {
        self.emit(Insn::OpImm { op: AluImmOp::Ori, rd, rs1, imm });
    }

    /// `xori rd, rs1, imm`.
    pub fn xori(&mut self, rd: Xr, rs1: Xr, imm: i16) {
        self.emit(Insn::OpImm { op: AluImmOp::Xori, rd, rs1, imm });
    }

    /// `slli rd, rs1, shamt`.
    pub fn slli(&mut self, rd: Xr, rs1: Xr, shamt: u8) {
        self.emit(Insn::ShiftImm { op: ShiftOp::Sll, rd, rs1, shamt });
    }

    /// `srli rd, rs1, shamt`.
    pub fn srli(&mut self, rd: Xr, rs1: Xr, shamt: u8) {
        self.emit(Insn::ShiftImm { op: ShiftOp::Srl, rd, rs1, shamt });
    }

    /// `srai rd, rs1, shamt`.
    pub fn srai(&mut self, rd: Xr, rs1: Xr, shamt: u8) {
        self.emit(Insn::ShiftImm { op: ShiftOp::Sra, rd, rs1, shamt });
    }

    /// `sll rd, rs1, rs2`.
    pub fn sll(&mut self, rd: Xr, rs1: Xr, rs2: Xr) {
        self.emit(Insn::OpShift { op: ShiftOp::Sll, rd, rs1, rs2 });
    }

    /// `lb rd, off(rs1)`.
    pub fn lb(&mut self, rd: Xr, off: i16, rs1: Xr) {
        self.emit(Insn::Load { rd, rs1, off, width: MemWidth::Byte, unsigned: false });
    }

    /// `lbu rd, off(rs1)`.
    pub fn lbu(&mut self, rd: Xr, off: i16, rs1: Xr) {
        self.emit(Insn::Load { rd, rs1, off, width: MemWidth::Byte, unsigned: true });
    }

    /// `lh rd, off(rs1)`.
    pub fn lh(&mut self, rd: Xr, off: i16, rs1: Xr) {
        self.emit(Insn::Load { rd, rs1, off, width: MemWidth::Half, unsigned: false });
    }

    /// `lhu rd, off(rs1)`.
    pub fn lhu(&mut self, rd: Xr, off: i16, rs1: Xr) {
        self.emit(Insn::Load { rd, rs1, off, width: MemWidth::Half, unsigned: true });
    }

    /// `lw rd, off(rs1)`.
    pub fn lw(&mut self, rd: Xr, off: i16, rs1: Xr) {
        self.emit(Insn::Load { rd, rs1, off, width: MemWidth::Word, unsigned: false });
    }

    /// `sb rs2, off(rs1)`.
    pub fn sb(&mut self, rs2: Xr, off: i16, rs1: Xr) {
        self.emit(Insn::Store { rs2, rs1, off, width: MemWidth::Byte });
    }

    /// `sh rs2, off(rs1)`.
    pub fn sh(&mut self, rs2: Xr, off: i16, rs1: Xr) {
        self.emit(Insn::Store { rs2, rs1, off, width: MemWidth::Half });
    }

    /// `sw rs2, off(rs1)`.
    pub fn sw(&mut self, rs2: Xr, off: i16, rs1: Xr) {
        self.emit(Insn::Store { rs2, rs1, off, width: MemWidth::Word });
    }

    fn branch(&mut self, cond: BranchCond, rs1: Xr, rs2: Xr, label: &str) {
        self.items.push(Item::BranchTo { cond, rs1, rs2, label: label.to_owned() });
    }

    /// `beq rs1, rs2, label`.
    pub fn beq(&mut self, rs1: Xr, rs2: Xr, label: &str) {
        self.branch(BranchCond::Eq, rs1, rs2, label);
    }

    /// `bne rs1, rs2, label`.
    pub fn bne(&mut self, rs1: Xr, rs2: Xr, label: &str) {
        self.branch(BranchCond::Ne, rs1, rs2, label);
    }

    /// `blt rs1, rs2, label` (signed).
    pub fn blt(&mut self, rs1: Xr, rs2: Xr, label: &str) {
        self.branch(BranchCond::Lt, rs1, rs2, label);
    }

    /// `bge rs1, rs2, label` (signed).
    pub fn bge(&mut self, rs1: Xr, rs2: Xr, label: &str) {
        self.branch(BranchCond::Ge, rs1, rs2, label);
    }

    /// `bltu rs1, rs2, label`.
    pub fn bltu(&mut self, rs1: Xr, rs2: Xr, label: &str) {
        self.branch(BranchCond::Ltu, rs1, rs2, label);
    }

    /// `bgeu rs1, rs2, label`.
    pub fn bgeu(&mut self, rs1: Xr, rs2: Xr, label: &str) {
        self.branch(BranchCond::Geu, rs1, rs2, label);
    }

    /// `ble rs1, rs2, label` — pseudo: `bge rs2, rs1, label`.
    pub fn ble(&mut self, rs1: Xr, rs2: Xr, label: &str) {
        self.branch(BranchCond::Ge, rs2, rs1, label);
    }

    /// `bgt rs1, rs2, label` — pseudo: `blt rs2, rs1, label`.
    pub fn bgt(&mut self, rs1: Xr, rs2: Xr, label: &str) {
        self.branch(BranchCond::Lt, rs2, rs1, label);
    }

    /// `j label` — pseudo: `jal x0, label`.
    pub fn j(&mut self, label: &str) {
        self.items.push(Item::JalTo { rd: Xr(0), label: label.to_owned() });
    }

    /// `jal rd, label`.
    pub fn jal(&mut self, rd: Xr, label: &str) {
        self.items.push(Item::JalTo { rd, label: label.to_owned() });
    }

    /// `jalr rd, off(rs1)`.
    pub fn jalr(&mut self, rd: Xr, rs1: Xr, off: i16) {
        self.emit(Insn::Jalr { rd, rs1, off });
    }

    /// `ecall`.
    pub fn ecall(&mut self) {
        self.emit(Insn::Ecall);
    }

    /// `ebreak`.
    pub fn ebreak(&mut self) {
        self.emit(Insn::Ebreak);
    }

    /// `mret`.
    pub fn mret(&mut self) {
        self.emit(Insn::Mret);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn li_expands_and_roundtrips() {
        for v in [0i32, 1, -1, 42, -2048, 2047, 0x3_0000, -0x1234_5678, 0x7FFF_FFFF, 0x800] {
            let mut a = Asm::new(0x1000);
            a.li(Xr(5), v);
            a.ecall();
            let prog = a.finish().unwrap();
            let mut mem = daisy_isa::mem::Memory::new(0x1_0000);
            prog.load_into(&mut mem).unwrap();
            let mut cpu = crate::interp::Cpu::new(prog.entry);
            assert_eq!(cpu.run(&mut mem, 10), daisy_isa::StopReason::Syscall);
            assert_eq!(cpu.x[5], v as u32, "li {v:#x}");
        }
    }

    #[test]
    fn branch_fixups_resolve_both_directions() {
        let mut a = Asm::new(0x1000);
        a.li(Xr(5), 3);
        a.label("loop");
        a.addi(Xr(5), Xr(5), -1);
        a.bne(Xr(5), Xr(0), "loop");
        a.j("done");
        a.ebreak();
        a.label("done");
        a.ecall();
        let prog = a.finish().unwrap();
        let mut mem = daisy_isa::mem::Memory::new(0x1_0000);
        prog.load_into(&mut mem).unwrap();
        let mut cpu = crate::interp::Cpu::new(prog.entry);
        assert_eq!(cpu.run(&mut mem, 100), daisy_isa::StopReason::Syscall);
        assert_eq!(cpu.x[5], 0);
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut a = Asm::new(0x1000);
        a.j("nowhere");
        assert_eq!(a.finish().unwrap_err(), AsmError::UndefinedLabel("nowhere".into()));
    }
}
