//! Conversion of RV32I instructions into VLIW RISC primitives.
//!
//! The second frontend behind the [`daisy_isa::Isa`] boundary. The op
//! repertoire (see `daisy_vliw::op`) was shaped by the PowerPC
//! frontend, so a few RV32 idioms lower through PowerPC-flavoured
//! primitives:
//!
//! - `slt`/`sltu` produce a 4-bit compare field and extract its LT bit
//!   with [`OpKind::XerExtract`].
//! - Immediate shifts use rotate-and-mask ([`OpKind::RotlImmMask`]),
//!   exactly how `slwi`/`srwi` lower.
//! - Register shifts pre-mask the amount to 5 bits into a scratch
//!   (the non-architected-for-RV32 [`Reg::CTR`]), matching the
//!   PowerPC 6-bit shifter's semantics for all RV32 inputs.
//! - `jalr` computes its target into [`Reg::LR`] so the group exits
//!   through the existing `via-LR` indirect path.
//!
//! Writes to `x0` are never emitted as ops (the guest register file
//! slot for `Reg(0)` always holds zero), so reads of `x0` need no
//! special-casing.

use crate::insn::{AluImmOp, AluOp, BranchCond, Insn, MemWidth, ShiftOp, Xr};
use daisy_isa::convert::{BranchInfo, BranchKind, CondSpec, Converted, Flow};
use daisy_vliw::op::{rlw_mask, OpKind, Operation};
use daisy_vliw::reg::{CrField, Reg};
use daisy_vliw::tree::IndirectVia;

fn g(r: Xr) -> Reg {
    Reg(r.0)
}

/// Compare-field bit masks (paper §2.2's CR field layout).
mod crbit {
    pub const LT: u32 = 0b1000;
    pub const EQ: u32 = 0b0010;
}

fn op0(kind: OpKind, addr: u32) -> Operation {
    Operation::new(kind, addr)
}

/// Lowers a conditional branch: one fresh compare (scheduled as a
/// renamed temp via `cond_compare`) plus a conditional flow on the
/// relevant bit of its field.
fn convert_branch(addr: u32, cond: BranchCond, rs1: Xr, rs2: Xr, off: i16) -> Converted {
    let signed = matches!(cond, BranchCond::Lt | BranchCond::Ge);
    let kind = if signed { OpKind::CmpS } else { OpKind::CmpU };
    let cmp = op0(kind, addr)
        .dst(Reg::cr(CrField(0))) // placeholder dest; scheduler renames
        .src(g(rs1))
        .src(g(rs2))
        .src(Reg::SO);
    let (mask, want_set) = match cond {
        BranchCond::Eq => (crbit::EQ, true),
        BranchCond::Ne => (crbit::EQ, false),
        BranchCond::Lt | BranchCond::Ltu => (crbit::LT, true),
        BranchCond::Ge | BranchCond::Geu => (crbit::LT, false),
    };
    let cond = CondSpec { field: Reg::cr(CrField(0)), mask, want_set };
    let target = addr.wrapping_add(off as i32 as u32);
    Converted {
        ops: vec![cmp],
        flow: Flow::CondJump { cond, target, cond_compare: true },
        links: false,
    }
}

/// Lowers `slt`-family results: compare into `rd`, then extract the
/// LT bit (bit 3 of the 4-bit field) as the 0/1 value.
fn slt_ops(cmp: Operation, rd: Xr, addr: u32) -> Vec<Operation> {
    vec![cmp, op0(OpKind::XerExtract, addr).dst(g(rd)).src(g(rd)).with_imm(3)]
}

/// Converts one decoded instruction at `addr` into RISC primitives
/// plus a control-flow disposition.
#[allow(clippy::too_many_lines)]
pub fn convert(insn: &Insn, addr: u32) -> Converted {
    let next = addr.wrapping_add(4);
    match *insn {
        Insn::Lui { rd, imm } => {
            if rd.0 == 0 {
                return Converted::fall(vec![]);
            }
            Converted::fall(vec![op0(OpKind::Li, addr).dst(g(rd)).with_imm(imm as i32)])
        }
        Insn::Auipc { rd, imm } => {
            if rd.0 == 0 {
                return Converted::fall(vec![]);
            }
            let v = addr.wrapping_add(imm);
            Converted::fall(vec![op0(OpKind::Li, addr).dst(g(rd)).with_imm(v as i32)])
        }
        Insn::Jal { rd, off } => {
            let mut ops = Vec::new();
            if rd.0 != 0 {
                ops.push(op0(OpKind::Li, addr).dst(g(rd)).with_imm(next as i32));
            }
            let target = addr.wrapping_add(off as u32);
            Converted { ops, flow: Flow::Jump { target }, links: false }
        }
        Insn::Jalr { rd, rs1, off } => {
            // Target into LR *before* the link write, so `jalr rd, rs1`
            // with rd == rs1 reads the pre-link value.
            let mut ops = vec![
                op0(OpKind::AddImm, addr).dst(Reg::LR).src(g(rs1)).with_imm(i32::from(off)),
                op0(OpKind::AndImm, addr).dst(Reg::LR).src(Reg::LR).with_imm2(!1u32),
            ];
            if rd.0 != 0 {
                ops.push(op0(OpKind::Li, addr).dst(g(rd)).with_imm(next as i32));
            }
            Converted { ops, flow: Flow::IndirectJump { via: IndirectVia::Lr }, links: false }
        }
        Insn::Branch { cond, rs1, rs2, off } => convert_branch(addr, cond, rs1, rs2, off),
        Insn::Load { rd, rs1, off, width, unsigned } => {
            if rd.0 == 0 {
                // A load to x0 still probes memory for faults; rather
                // than model a discarded destination, defer to the
                // interpreter (the workloads never emit this).
                return Converted::interp();
            }
            let algebraic = width == MemWidth::Half && !unsigned;
            let mut ops = vec![op0(OpKind::Load { width, algebraic }, addr)
                .dst(g(rd))
                .src(g(rs1))
                .with_imm(i32::from(off))];
            if width == MemWidth::Byte && !unsigned {
                ops.push(op0(OpKind::Extsb, addr).dst(g(rd)).src(g(rd)));
            }
            Converted::fall(ops)
        }
        Insn::Store { rs2, rs1, off, width } => {
            Converted::fall(vec![op0(OpKind::Store { width }, addr)
                .src(g(rs2))
                .src(g(rs1))
                .with_imm(i32::from(off))])
        }
        Insn::OpImm { op, rd, rs1, imm } => {
            if rd.0 == 0 {
                return Converted::fall(vec![]);
            }
            let i = i32::from(imm);
            let bits = i as u32;
            let ops = match op {
                AluImmOp::Addi => {
                    vec![op0(OpKind::AddImm, addr).dst(g(rd)).src(g(rs1)).with_imm(i)]
                }
                AluImmOp::Xori => {
                    vec![op0(OpKind::XorImm, addr).dst(g(rd)).src(g(rs1)).with_imm2(bits)]
                }
                AluImmOp::Ori => {
                    vec![op0(OpKind::OrImm, addr).dst(g(rd)).src(g(rs1)).with_imm2(bits)]
                }
                AluImmOp::Andi => {
                    vec![op0(OpKind::AndImm, addr).dst(g(rd)).src(g(rs1)).with_imm2(bits)]
                }
                AluImmOp::Slti => {
                    let cmp =
                        op0(OpKind::CmpSImm, addr).dst(g(rd)).src(g(rs1)).src(Reg::SO).with_imm(i);
                    slt_ops(cmp, rd, addr)
                }
                AluImmOp::Sltiu => {
                    let cmp =
                        op0(OpKind::CmpUImm, addr).dst(g(rd)).src(g(rs1)).src(Reg::SO).with_imm(i);
                    slt_ops(cmp, rd, addr)
                }
            };
            Converted::fall(ops)
        }
        Insn::ShiftImm { op, rd, rs1, shamt } => {
            if rd.0 == 0 {
                return Converted::fall(vec![]);
            }
            let n = shamt & 31;
            let o = match op {
                ShiftOp::Sll => op0(OpKind::RotlImmMask, addr)
                    .dst(g(rd))
                    .src(g(rs1))
                    .with_imm(i32::from(n))
                    .with_imm2(rlw_mask(0, 31 - n)),
                ShiftOp::Srl => op0(OpKind::RotlImmMask, addr)
                    .dst(g(rd))
                    .src(g(rs1))
                    .with_imm(i32::from(32 - n) & 31)
                    .with_imm2(rlw_mask(n, 31)),
                ShiftOp::Sra => {
                    op0(OpKind::SraImm, addr).dst(g(rd)).src(g(rs1)).with_imm(i32::from(n))
                }
            };
            Converted::fall(vec![o])
        }
        Insn::Op { op, rd, rs1, rs2 } => {
            if rd.0 == 0 {
                return Converted::fall(vec![]);
            }
            let ops = match op {
                AluOp::Add => vec![op0(OpKind::Add, addr).dst(g(rd)).src(g(rs1)).src(g(rs2))],
                // Subf computes src1 - src0.
                AluOp::Sub => vec![op0(OpKind::Subf, addr).dst(g(rd)).src(g(rs2)).src(g(rs1))],
                AluOp::Xor => vec![op0(OpKind::Xor, addr).dst(g(rd)).src(g(rs1)).src(g(rs2))],
                AluOp::Or => vec![op0(OpKind::Or, addr).dst(g(rd)).src(g(rs1)).src(g(rs2))],
                AluOp::And => vec![op0(OpKind::And, addr).dst(g(rd)).src(g(rs1)).src(g(rs2))],
                AluOp::Slt => {
                    let cmp =
                        op0(OpKind::CmpS, addr).dst(g(rd)).src(g(rs1)).src(g(rs2)).src(Reg::SO);
                    slt_ops(cmp, rd, addr)
                }
                AluOp::Sltu => {
                    let cmp =
                        op0(OpKind::CmpU, addr).dst(g(rd)).src(g(rs1)).src(g(rs2)).src(Reg::SO);
                    slt_ops(cmp, rd, addr)
                }
            };
            Converted::fall(ops)
        }
        Insn::OpShift { op, rd, rs1, rs2 } => {
            if rd.0 == 0 {
                return Converted::fall(vec![]);
            }
            // RV32 shifts use the low 5 bits of rs2; the VLIW shifter
            // uses 6. Pre-mask into a scratch so the semantics agree.
            let mask = op0(OpKind::AndImm, addr).dst(Reg::CTR).src(g(rs2)).with_imm2(31);
            let kind = match op {
                ShiftOp::Sll => OpKind::Sll,
                ShiftOp::Srl => OpKind::Srl,
                ShiftOp::Sra => OpKind::Sra,
            };
            let shift = op0(kind, addr).dst(g(rd)).src(g(rs1)).src(Reg::CTR);
            Converted::fall(vec![mask, shift])
        }
        Insn::Fence => Converted::fall(vec![]),
        Insn::Ecall | Insn::Ebreak | Insn::Mret | Insn::Invalid(_) => Converted::interp(),
    }
}

/// Branch analysis for the scheduler's window policy and the VMM's
/// interpretive-compilation hints.
pub fn branch_info(insn: &Insn, pc: u32) -> Option<BranchInfo> {
    match *insn {
        Insn::Jal { rd, off } => Some(BranchInfo {
            kind: BranchKind::Direct(pc.wrapping_add(off as u32)),
            unconditional: true,
            links: rd.0 != 0,
            decrements_ctr: false,
        }),
        // jalr resolves through LR at run time (see [`convert`]).
        Insn::Jalr { rd, .. } => Some(BranchInfo {
            kind: BranchKind::ViaLr,
            unconditional: true,
            links: rd.0 != 0,
            decrements_ctr: false,
        }),
        Insn::Branch { off, .. } => Some(BranchInfo {
            kind: BranchKind::Direct(pc.wrapping_add(off as i32 as u32)),
            unconditional: false,
            links: false,
            decrements_ctr: false,
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x0_destinations_emit_no_ops() {
        for insn in [
            Insn::Lui { rd: Xr(0), imm: 0x1000 },
            Insn::OpImm { op: AluImmOp::Addi, rd: Xr(0), rs1: Xr(5), imm: 1 },
            Insn::Op { op: AluOp::Add, rd: Xr(0), rs1: Xr(5), rs2: Xr(6) },
        ] {
            let c = convert(&insn, 0x1000);
            assert!(c.ops.is_empty(), "{insn:?}");
            assert!(matches!(c.flow, Flow::Fall));
        }
    }

    #[test]
    fn no_op_ever_writes_reg0() {
        use crate::insn::decode;
        // Sweep a pile of encodings; whatever converts must not write
        // the x0 slot (its regfile slot is the architected zero).
        for w in (0..0x40_0000u32).step_by(97) {
            let c = convert(&decode(w), 0x1000);
            for op in &c.ops {
                assert_ne!(op.dest, Some(Reg(0)), "word {w:#010x}");
            }
        }
    }

    #[test]
    fn branch_lowering_uses_fresh_compare() {
        let c = convert(
            &Insn::Branch { cond: BranchCond::Ltu, rs1: Xr(3), rs2: Xr(4), off: -8 },
            0x2000,
        );
        assert_eq!(c.ops.len(), 1);
        assert!(matches!(c.ops[0].kind, OpKind::CmpU));
        match c.flow {
            Flow::CondJump { cond, target, cond_compare } => {
                assert!(cond_compare);
                assert_eq!(target, 0x2000 - 8);
                assert_eq!(cond.mask, crbit::LT);
                assert!(cond.want_set);
            }
            other => panic!("unexpected flow {other:?}"),
        }
    }

    #[test]
    fn jalr_computes_target_before_link() {
        let c = convert(&Insn::Jalr { rd: Xr(1), rs1: Xr(1), off: 12 }, 0x3000);
        assert!(matches!(c.flow, Flow::IndirectJump { via: IndirectVia::Lr }));
        assert_eq!(c.ops[0].dest, Some(Reg::LR));
        assert_eq!(c.ops.last().unwrap().dest, Some(Reg(1)));
    }
}
