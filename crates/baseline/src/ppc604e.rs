//! A PowerPC 604E-like in-order timing model (Table 5.3's comparator).
//!
//! The paper compares DAISY's finite-cache ILP against "a PowerPC 604E
//! with 128 Mbytes of memory", where the 604E achieves a mean of only
//! 0.7 sustained instructions per cycle on these workloads. This model
//! captures the first-order effects that produce that number: limited
//! issue width, in-order issue blocked by register dependences,
//! multi-cycle latencies for multiplies/divides/loads, a static-
//! prediction branch penalty, and the same cache hierarchy DAISY is
//! measured with.
//!
//! The instruction stream is decomposed through the *same* RISC
//! primitive converter the translator uses, so CISCy instructions
//! (`lmw`, record forms) naturally occupy multiple issue slots.

use daisy_cachesim::Hierarchy;
use daisy_isa::convert::Flow;
use daisy_isa::GuestCpu;
use daisy_ppc::asm::Program;
use daisy_ppc::convert::convert;
use daisy_ppc::interp::{Cpu, Event, StopReason};
use daisy_ppc::mem::Memory;
use daisy_vliw::op::OpKind;
use daisy_vliw::reg::NUM_REGS;

/// Microarchitectural parameters.
#[derive(Debug, Clone)]
pub struct P604Config {
    /// Sustained issue width (primitives per cycle).
    pub issue: u64,
    /// Cycles lost on a conditional-branch misprediction.
    pub mispredict_penalty: u64,
    /// Extra latency of a multiply.
    pub mul_latency: u64,
    /// Extra latency of a divide.
    pub div_latency: u64,
    /// Load-use latency on a cache hit.
    pub load_latency: u64,
}

impl Default for P604Config {
    fn default() -> Self {
        P604Config {
            issue: 2,
            mispredict_penalty: 3,
            mul_latency: 4,
            div_latency: 20,
            load_latency: 2,
        }
    }
}

/// Result of a 604E model run.
#[derive(Debug, Clone, Copy)]
pub struct P604Result {
    /// Base instructions retired.
    pub instrs: u64,
    /// Simulated cycles.
    pub cycles: u64,
    /// How the run stopped.
    pub stop: StopReason,
}

impl P604Result {
    /// Sustained instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instrs as f64 / self.cycles as f64
        }
    }
}

/// Runs the timing model over a loaded program.
pub fn run(
    prog: &Program,
    mem_size: u32,
    cfg: &P604Config,
    mut cache: Hierarchy,
    max_instrs: u64,
) -> P604Result {
    let mut mem = Memory::new(mem_size);
    prog.load_into(&mut mem).expect("program fits");
    let mut cpu = Cpu::new(prog.entry);

    let mut cycle: u64 = 0;
    let mut slots_used: u64 = 0;
    let mut ready = [0u64; NUM_REGS];
    let mut instrs = 0u64;

    let stop = loop {
        if instrs >= max_instrs {
            break StopReason::MaxInstrs;
        }
        let insn = match cpu.fetch(&mem) {
            Ok(i) => i,
            Err(_) => break StopReason::StorageFault { addr: cpu.pc, write: false, fetch: true },
        };
        let pc = cpu.pc;
        let ea = GuestCpu::effective_address(&cpu, &insn);

        // Instruction fetch through the I-side hierarchy.
        cycle += u64::from(cache.access_instr(pc).penalty);

        let conv = convert(&insn, pc);
        for op in &conv.ops {
            // In-order issue: stall until operands are ready.
            let ready_at = op.srcs().iter().map(|s| ready[s.index()]).max().unwrap_or(0);
            if ready_at > cycle {
                cycle = ready_at;
                slots_used = 0;
            }
            // Issue-slot accounting.
            slots_used += 1;
            if slots_used >= cfg.issue {
                cycle += 1;
                slots_used = 0;
            }
            let mut lat = 1;
            match op.kind {
                OpKind::Mul | OpKind::MulImm | OpKind::Mulh | OpKind::Mulhu => {
                    lat = cfg.mul_latency;
                }
                OpKind::Div | OpKind::Divu => lat = cfg.div_latency,
                OpKind::Load { .. } => {
                    let a = cache.access_data(ea.unwrap_or(0), false);
                    lat = cfg.load_latency + u64::from(a.penalty);
                }
                OpKind::Store { .. } => {
                    let a = cache.access_data(ea.unwrap_or(0), true);
                    cycle += u64::from(a.penalty);
                }
                _ => {}
            }
            for d in [op.dest, op.dest2].into_iter().flatten() {
                ready[d.index()] = cycle + lat;
            }
        }

        // Static prediction (backward taken, forward not) vs outcome.
        let predicted_taken = match conv.flow {
            Flow::CondJump { target, .. } => Some(target <= pc),
            Flow::CondIndirect { .. } => Some(false),
            _ => None,
        };
        let ev = cpu.execute(&mut mem, insn);
        instrs += 1;
        if let Some(pred) = predicted_taken {
            let taken = cpu.pc != pc.wrapping_add(4);
            if taken != pred {
                cycle += cfg.mispredict_penalty;
                slots_used = 0;
            }
        }
        match ev {
            Event::Continue => {}
            Event::Syscall => break StopReason::Syscall,
            Event::Trap => break StopReason::Trap,
            Event::Program => break StopReason::Program,
            Event::Dsi { addr, write } => {
                break StopReason::StorageFault { addr, write, fetch: false }
            }
            Event::Isi => {
                break StopReason::StorageFault { addr: cpu.pc, write: false, fetch: true }
            }
        }
    };
    P604Result { instrs, cycles: cycle.max(1), stop }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_ppc::asm::Asm;
    use daisy_ppc::reg::Gpr;

    fn program_loop(n: i16) -> Program {
        let mut a = Asm::new(0x1000);
        a.li(Gpr(4), n);
        a.mtctr(Gpr(4));
        a.label("loop");
        a.addi(Gpr(3), Gpr(3), 1);
        a.addi(Gpr(5), Gpr(5), 1);
        a.bdnz("loop");
        a.sc();
        a.finish().unwrap()
    }

    #[test]
    fn ipc_is_bounded_by_issue_width() {
        let r = run(
            &program_loop(1000),
            0x10000,
            &P604Config::default(),
            Hierarchy::infinite(),
            1_000_000,
        );
        assert_eq!(r.stop, StopReason::Syscall);
        assert!(r.ipc() <= 2.0 + 1e-9, "ipc {}", r.ipc());
        assert!(r.ipc() > 0.3, "ipc {}", r.ipc());
    }

    #[test]
    fn finite_caches_reduce_ipc() {
        let inf = run(
            &program_loop(2000),
            0x10000,
            &P604Config::default(),
            Hierarchy::infinite(),
            1_000_000,
        );
        let fin = run(
            &program_loop(2000),
            0x10000,
            &P604Config::default(),
            Hierarchy::paper_default(),
            1_000_000,
        );
        assert!(fin.ipc() <= inf.ipc() + 1e-9);
    }

    #[test]
    fn mispredictions_cost_cycles() {
        use daisy_ppc::reg::CrField;
        // An alternating branch defeats static prediction half the time.
        let build = |alternating: bool| {
            let mut a = Asm::new(0x1000);
            a.li(Gpr(4), 400);
            a.mtctr(Gpr(4));
            a.label("loop");
            a.mfctr(Gpr(5));
            a.andi_(Gpr(6), Gpr(5), 1);
            if alternating {
                // Taken every other iteration: 50% mispredicted.
                a.cmpwi(CrField(1), Gpr(6), 0);
            } else {
                // Never taken: forward-not-taken predicts perfectly.
                a.cmpwi(CrField(1), Gpr(6), 9);
            }
            a.beq(CrField(1), "even");
            a.addi(Gpr(3), Gpr(3), 1);
            a.label("even");
            a.bdnz("loop");
            a.sc();
            a.finish().unwrap()
        };
        let cfg = P604Config::default();
        let pred = run(&build(false), 0x10000, &cfg, Hierarchy::infinite(), 1_000_000);
        let mispred = run(&build(true), 0x10000, &cfg, Hierarchy::infinite(), 1_000_000);
        assert!(
            mispred.ipc() < pred.ipc(),
            "mispredictions should cost: {} vs {}",
            mispred.ipc(),
            pred.ipc()
        );
    }

    #[test]
    fn multiply_latency_slows_dependent_chains() {
        let mut a = Asm::new(0x1000);
        for _ in 0..64 {
            a.mullw(Gpr(3), Gpr(3), Gpr(3));
        }
        a.sc();
        let prog = a.finish().unwrap();
        let cfg = P604Config::default();
        let r = run(&prog, 0x10000, &cfg, Hierarchy::infinite(), 10_000);
        // Each multiply waits out the previous one's latency.
        assert!(r.ipc() < 0.4, "ipc {}", r.ipc());
    }

    #[test]
    fn dependence_chains_serialize() {
        // A chain of dependent adds cannot exceed 1 IPC.
        let mut a = Asm::new(0x1000);
        for _ in 0..64 {
            a.add(Gpr(3), Gpr(3), Gpr(3));
        }
        a.sc();
        let prog = a.finish().unwrap();
        let r = run(&prog, 0x10000, &P604Config::default(), Hierarchy::infinite(), 10_000);
        assert!(r.ipc() <= 1.05, "ipc {}", r.ipc());
    }
}
