//! Translator throughput: how fast the one-pass Pathlist scheduler
//! turns PowerPC pages into VLIW groups. The paper's headline overhead
//! number (4315 RS/6000 instructions per translated instruction,
//! reducible to <1000) is about exactly this loop.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use daisy::sched::{translate_group, TranslatorConfig};
use daisy_ppc::mem::Memory;
use std::hint::black_box;

fn bench_translate(c: &mut Criterion) {
    let mut g = c.benchmark_group("translate_group");
    for w in daisy_workloads::all() {
        let prog = w.program();
        let mut mem = Memory::new(w.mem_size);
        prog.load_into(&mut mem).unwrap();
        let cfg = TranslatorConfig::default();
        // Report throughput in base instructions scheduled per second.
        let (_, cost) = translate_group::<daisy_ppc::PpcIsa>(&cfg, &mem, prog.entry);
        g.throughput(Throughput::Elements(cost.instrs_scheduled));
        g.bench_function(w.name, |b| {
            b.iter(|| {
                black_box(translate_group::<daisy_ppc::PpcIsa>(&cfg, &mem, black_box(prog.entry)))
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_translate);
criterion_main!(benches);
