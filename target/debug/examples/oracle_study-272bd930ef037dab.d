/root/repo/target/debug/examples/oracle_study-272bd930ef037dab.d: examples/oracle_study.rs Cargo.toml

/root/repo/target/debug/examples/liboracle_study-272bd930ef037dab.rmeta: examples/oracle_study.rs Cargo.toml

examples/oracle_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
