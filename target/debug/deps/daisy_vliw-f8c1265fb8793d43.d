/root/repo/target/debug/deps/daisy_vliw-f8c1265fb8793d43.d: crates/vliw/src/lib.rs crates/vliw/src/machine.rs crates/vliw/src/op.rs crates/vliw/src/reg.rs crates/vliw/src/regfile.rs crates/vliw/src/tree.rs

/root/repo/target/debug/deps/libdaisy_vliw-f8c1265fb8793d43.rmeta: crates/vliw/src/lib.rs crates/vliw/src/machine.rs crates/vliw/src/op.rs crates/vliw/src/reg.rs crates/vliw/src/regfile.rs crates/vliw/src/tree.rs

crates/vliw/src/lib.rs:
crates/vliw/src/machine.rs:
crates/vliw/src/op.rs:
crates/vliw/src/reg.rs:
crates/vliw/src/regfile.rs:
crates/vliw/src/tree.rs:
