//! `report` — guest-level performance report over the workload suite.
//!
//! ```text
//! report [--out FILE] [--trace-dir DIR] [--folded-dir DIR]
//!        [--annotate-dir DIR] [WORKLOAD ...]
//!
//!   --out FILE       write the JSON report here
//!                    (default BENCH_report.json)
//!   --trace-dir DIR  also write a Chrome trace_event JSON per
//!                    workload to DIR/<workload>.trace.json
//!                    (load in chrome://tracing or Perfetto)
//!   --folded-dir DIR also write flamegraph-folded stacks to
//!                    DIR/<workload>.folded
//!   --annotate-dir DIR
//!                    also write an annotated guest disassembly to
//!                    DIR/<workload>.txt
//!   WORKLOAD         workload names (default: all nine)
//! ```
//!
//! Each workload runs once to completion under the paper's finite
//! cache with guest profiling on, and publishes five metrics: finite
//! ILP, infinite ILP (pathlength reduction), parcels per VLIW, modeled
//! VMM overhead per base instruction (§4.2 buckets), and the fraction
//! of speculative parcels wasted. Results are checked — a workload
//! that computes a wrong answer aborts the report.

use daisy::profile::{annotated_disassembly, folded_stacks};
use daisy_bench::reporting::{chrome_trace_for, report_json, report_workload, resolve_workloads};

struct Options {
    out: String,
    trace_dir: Option<String>,
    folded_dir: Option<String>,
    annotate_dir: Option<String>,
    workloads: Vec<String>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        out: "BENCH_report.json".to_owned(),
        trace_dir: None,
        folded_dir: None,
        annotate_dir: None,
        workloads: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => opts.out = args.next().expect("--out needs a path"),
            "--trace-dir" => opts.trace_dir = Some(args.next().expect("--trace-dir needs a path")),
            "--folded-dir" => {
                opts.folded_dir = Some(args.next().expect("--folded-dir needs a path"))
            }
            "--annotate-dir" => {
                opts.annotate_dir = Some(args.next().expect("--annotate-dir needs a path"))
            }
            "--help" | "-h" => {
                println!(
                    "report [--out FILE] [--trace-dir DIR] [--folded-dir DIR] \
                     [--annotate-dir DIR] [WORKLOAD ...]"
                );
                std::process::exit(0);
            }
            other => opts.workloads.push(other.to_string()),
        }
    }
    opts
}

fn write_artifact(dir: &str, file: String, contents: &str) {
    std::fs::create_dir_all(dir).expect("create artifact dir");
    let path = std::path::Path::new(dir).join(file);
    std::fs::write(&path, contents).expect("write artifact");
    println!("  wrote {}", path.display());
}

fn main() {
    let opts = parse_args();
    let workloads = resolve_workloads(&opts.workloads);
    let mut reports = Vec::new();
    println!(
        "{:>10}  {:>12}  {:>10}  {:>12}  {:>9}  {:>12}  {:>8}",
        "workload", "base_instrs", "finite_ilp", "infinite_ilp", "ops/vliw", "ovh/instr", "waste%"
    );
    for w in &workloads {
        let (r, sys) = report_workload(w);
        println!(
            "{:>10}  {:>12}  {:>10.3}  {:>12.3}  {:>9.3}  {:>12.3}  {:>7.2}%",
            r.name,
            r.base_instrs,
            r.finite_ilp,
            r.infinite_ilp,
            r.ops_per_vliw,
            r.overhead_per_base_instr,
            100.0 * r.waste_fraction,
        );
        if let Some(dir) = &opts.trace_dir {
            write_artifact(dir, format!("{}.trace.json", w.name), &chrome_trace_for(&sys, w.name));
        }
        let gp = sys.guest_profile.as_ref().expect("guest profiling enabled");
        if let Some(dir) = &opts.folded_dir {
            let folded = folded_stacks(gp, w.name, sys.vmm.cfg.page_size);
            write_artifact(dir, format!("{}.folded", w.name), &folded);
        }
        if let Some(dir) = &opts.annotate_dir {
            let annotated = annotated_disassembly::<daisy_ppc::PpcIsa>(gp, &sys.mem, w.name);
            write_artifact(dir, format!("{}.txt", w.name), &annotated);
        }
        reports.push(r);
    }
    let json = report_json(&reports);
    std::fs::write(&opts.out, json).expect("write report JSON");
    println!("wrote {}", opts.out);
}
