/root/repo/target/debug/deps/daisy_cachesim-6c795e32d89985b5.d: crates/cachesim/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdaisy_cachesim-6c795e32d89985b5.rmeta: crates/cachesim/src/lib.rs Cargo.toml

crates/cachesim/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
