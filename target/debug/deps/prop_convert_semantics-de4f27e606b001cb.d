/root/repo/target/debug/deps/prop_convert_semantics-de4f27e606b001cb.d: tests/prop_convert_semantics.rs

/root/repo/target/debug/deps/prop_convert_semantics-de4f27e606b001cb: tests/prop_convert_semantics.rs

tests/prop_convert_semantics.rs:
