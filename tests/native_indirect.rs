//! The native tier's two in-arena control-flow shortcuts — the inline
//! indirect-branch target cache (IBTC) and rerolled single-group loop
//! back edges — must never be *observable*: they only remove
//! dispatcher boundaries that nothing is watching. This suite stresses
//! exactly the situations where that promise is easiest to break:
//! aligned computed-dispatch tables (the access pattern that defeats
//! bit-sliced way selection), injection campaigns that invalidate and
//! sever translations while inline IBTC entries are live, and a
//! rerolled loop spinning inside one compiled group while a timer
//! needs every budget exit to actually reach the dispatcher.

use daisy::inject::{run_campaign, CampaignConfig, FaultKind};
use daisy::system::DaisySystem;
use daisy::trace::{RingSink, TraceEvent};
use daisy::TranslatorConfig;
use daisy_isa::{GuestCpu, Isa};
use daisy_ppc::asm::{Asm, Program};
use daisy_ppc::interp::StopReason;
use daisy_ppc::reg::{CrField, Gpr};
use daisy_ppc::PpcIsa;
use daisy_vliw::packed::BACKEDGE_VLIW_BUDGET;

/// Dispatches before the tier compiles an entry (same as prop_native).
const THRESHOLD: u64 = 2;

type TracedRun = (DaisySystem<PpcIsa>, Vec<TraceEvent>);

fn strip_native_events(events: Vec<TraceEvent>) -> Vec<TraceEvent> {
    events.into_iter().filter(|e| !matches!(e, TraceEvent::NativeCompile { .. })).collect()
}

fn assert_indistinguishable(
    (packed, packed_ev): &TracedRun,
    (native, native_ev): &TracedRun,
    ctx: &str,
) {
    assert_eq!(native.cpu.gpr, packed.cpu.gpr, "{ctx}: GPRs diverged");
    assert_eq!(native.cpu.cr, packed.cpu.cr, "{ctx}: CR diverged");
    assert_eq!(native.cpu.lr, packed.cpu.lr, "{ctx}: LR diverged");
    assert_eq!(native.cpu.ctr, packed.cpu.ctr, "{ctx}: CTR diverged");
    assert_eq!(native.cpu.xer, packed.cpu.xer, "{ctx}: XER diverged");
    assert_eq!(native.cpu.pc, packed.cpu.pc, "{ctx}: PC diverged");
    let size = packed.mem.size();
    assert_eq!(
        native.mem.read_bytes(0, size).unwrap(),
        packed.mem.read_bytes(0, size).unwrap(),
        "{ctx}: memory image diverged"
    );
    assert_eq!(native.stats, packed.stats, "{ctx}: RunStats diverged");
    assert_eq!(native_ev, packed_ev, "{ctx}: trace event sequences diverged");
}

// ---------------------------------------------------------------------
// Inline IBTC on an aligned computed-dispatch table.
// ---------------------------------------------------------------------

/// Handler stride. Power-of-two alignment makes every `bctr` target
/// share its low bits — the xlat-style pattern that collapses any
/// bit-sliced way function and forced the fully associative design.
const HSIZE: u32 = 0x200;
const HBASE: u32 = 0x2000;
const HANDLERS: u32 = 4;
const DISPATCHES: u32 = 20_000;

/// A tight dispatch loop: `HANDLERS` aligned handlers entered through a
/// computed `mtctr`/`bctr`, each bumping the accumulator by a distinct
/// amount and looping back until `DISPATCHES` rounds are done.
fn indirect_loop_program() -> Program {
    let mut a = Asm::new(0x1000);
    let cr = CrField(0);
    let (i, acc, n, t1, hbase) = (Gpr(3), Gpr(4), Gpr(5), Gpr(7), Gpr(12));

    a.li(i, 0);
    a.li(acc, 0);
    a.li32(n, DISPATCHES);
    a.li32(hbase, HBASE);
    a.label("loop");
    a.rlwinm(t1, i, 0, 30, 31); // t1 = i & (HANDLERS - 1)
    a.slwi(t1, t1, 9); // * HSIZE
    a.add(t1, t1, hbase);
    a.mtctr(t1);
    a.bctr();

    for k in 0..HANDLERS {
        assert!(a.here() <= HBASE + k * HSIZE, "handler overflowed its slot");
        while a.here() < HBASE + k * HSIZE {
            a.nop();
        }
        a.addi(acc, acc, (k + 1) as i16);
        a.addi(i, i, 1);
        a.cmpw(cr, i, n);
        a.blt(cr, "loop");
        a.b("done");
    }
    a.label("done");
    a.sc();
    a.finish().expect("indirect loop assembles")
}

fn expected_acc() -> u32 {
    // Handlers cycle evenly; handler k adds k+1.
    DISPATCHES / HANDLERS * (HANDLERS * (HANDLERS + 1) / 2)
}

fn run_indirect_loop(native: bool) -> TracedRun {
    let sink = RingSink::new(1 << 21);
    let mut sys = DaisySystem::<PpcIsa>::builder()
        .mem_size(0x1_0000)
        .native_execution(native)
        .native_threshold(THRESHOLD)
        .trace_sink(sink.clone())
        .build();
    sys.load(&indirect_loop_program()).unwrap();
    let stop = sys.run(10_000_000).unwrap();
    assert_eq!(stop, StopReason::Syscall, "indirect loop did not finish");
    assert_eq!(sink.dropped(), 0, "trace ring overflowed; grow the cap");
    assert_eq!(sys.cpu.gpr[4], expected_acc(), "wrong accumulator");
    (sys, strip_native_events(sink.events()))
}

/// The aligned dispatch table is indistinguishable between the twins,
/// and on x86-64 the hot `bctr` exits actually resolve through the
/// inline IBTC rather than bouncing off the dispatcher every round.
#[test]
fn inline_ibtc_resolves_aligned_dispatch_table() {
    let packed = run_indirect_loop(false);
    let native = run_indirect_loop(true);
    assert_indistinguishable(&packed, &native, "aligned dispatch table");
    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    {
        let ns = native.0.native_stats().unwrap();
        assert!(ns.compiles > 0, "native tier never compiled the dispatch loop");
        assert!(
            ns.ibtc_hits > u64::from(DISPATCHES) / 2,
            "inline IBTC barely hit ({} of {DISPATCHES} dispatches) — \
             aligned targets are defeating the cache again",
            ns.ibtc_hits
        );
    }
}

// ---------------------------------------------------------------------
// IBTC under fire: invalidation-heavy injection campaigns on xlat, the
// indirect-branch-heavy workload, with the ladder starting at Native.
// Hot-patch stores kill translations whose entries live in inline IBTC
// rows; cast-out thrash recycles arena code under live caches;
// chain-sever clears every link and IBTC row at every boundary. Each
// campaign cross-checks against the interpreter oracle bit-for-bit.
// ---------------------------------------------------------------------

#[test]
fn ibtc_stays_bit_exact_under_invalidation_campaigns() {
    let w = daisy_workloads::by_name("xlat").expect("xlat workload");
    for kind in [FaultKind::HotPatch, FaultKind::CastOutThrash, FaultKind::ChainSever] {
        for seed in 0..3u64 {
            let cfg = CampaignConfig::new(kind, seed).with_native();
            let out = run_campaign(&w, &cfg)
                .unwrap_or_else(|e| panic!("xlat native campaign {kind} seed {seed}: {e}"));
            assert!(out.boundaries > 0, "{kind} seed {seed}: ran no groups");
        }
    }
}

// ---------------------------------------------------------------------
// Rerolled back edges versus the back-edge budget and the timer.
// ---------------------------------------------------------------------

const SPINS: u32 = 50_000;

/// A loop whose body rerolls into a single group: one counted spin with
/// no calls, no indirects, no memory traffic.
fn spin_program() -> Program {
    let mut a = Asm::new(0x1000);
    let cr = CrField(0);
    let (acc, n) = (Gpr(3), Gpr(4));
    a.li(acc, 0);
    a.li32(n, SPINS);
    a.label("spin");
    a.addi(acc, acc, 1);
    a.cmpw(cr, acc, n);
    a.blt(cr, "spin");
    a.sc();
    a.finish().expect("spin loop assembles")
}

fn run_spin(native: bool, timer: Option<u64>) -> TracedRun {
    let sink = RingSink::new(1 << 21);
    let mut b = DaisySystem::<PpcIsa>::builder()
        .mem_size(0x1_0000)
        .translator(TranslatorConfig { reroll_loops: true, ..TranslatorConfig::default() })
        .native_execution(native)
        .native_threshold(THRESHOLD)
        .trace_sink(sink.clone());
    if let Some(t) = timer {
        b = b.timer_period(t);
    }
    let mut sys = b.build();
    sys.load(&spin_program()).unwrap();
    if timer.is_some() {
        // Pure-`rfi` handler at the external vector, interrupts on, so
        // timer ticks deliver and return invisibly (the storm-campaign
        // setup) — the loop must keep surfacing for them.
        sys.mem.write_u32(PpcIsa::external_vector(), PpcIsa::interrupt_return_word()).unwrap();
        sys.cpu.enable_interrupts();
    }
    let stop = sys.run(10_000_000).unwrap();
    assert_eq!(stop, StopReason::Syscall, "spin loop did not finish");
    assert_eq!(sink.dropped(), 0, "trace ring overflowed; grow the cap");
    assert_eq!(sys.cpu.gpr[3], SPINS, "wrong spin count");
    (sys, strip_native_events(sink.events()))
}

/// A rerolled single-group loop exhausts its back-edge budget instead
/// of spinning forever, and a timer still preempts it: every budget
/// exit is a real dispatcher boundary where ticks deliver. The twins
/// stay indistinguishable with and without the timer watching.
#[test]
fn rerolled_loop_budget_exit_keeps_timer_preemption() {
    for timer in [None, Some(3_000u64)] {
        let packed = run_spin(false, timer);
        let native = run_spin(true, timer);
        let ctx = format!("rerolled spin, timer={timer:?}");
        assert_indistinguishable(&packed, &native, &ctx);
        if timer.is_some() {
            let ticks = packed
                .1
                .iter()
                .filter(|e| matches!(e, TraceEvent::ExternalInterrupt { .. }))
                .count();
            assert!(ticks >= 3, "{ctx}: timer only delivered {ticks} ticks mid-loop");
        }
        #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
        {
            let ns = native.0.native_stats().unwrap();
            assert!(ns.compiles > 0, "{ctx}: native tier never compiled the spin");
            // The loop iterated *inside* the compiled group (far fewer
            // native entries than iterations — a failed reroll would
            // dispatch once per trip) …
            let entries = ns.dispatches + ns.chained;
            assert!(
                entries < u64::from(SPINS) / 4,
                "{ctx}: {entries} native entries for {SPINS} iterations — loop did not reroll"
            );
            // … yet never spun past its per-entry budget: the emitted
            // check forced it back out through the anchor, so entries
            // scale with iterations / budget.
            assert!(
                entries >= u64::from(SPINS) / (BACKEDGE_VLIW_BUDGET * 4),
                "{ctx}: only {entries} native entries — back-edge budget never triggered"
            );
        }
    }
}
