//! Emulated base-architecture physical memory and address translation.
//!
//! Two pieces of paper machinery live here:
//!
//! * **Read-only (translated) bits** (§3.2): each 4 KiB unit of base
//!   physical memory carries a bit, invisible to the base architecture,
//!   that the VMM sets when it translates code from that unit. Stores to
//!   marked units are recorded so the VMM can invalidate the translation
//!   (self-modifying code, overlays, program loads).
//! * **The base architecture's own virtual memory** ([`Mmu`]): when the
//!   emulated MSR enables relocation, data and instruction accesses go
//!   through a page table; a missing or protection-violating mapping
//!   raises the storage interrupts that the VMM forwards to the emulated
//!   operating system (§3.3).

use crate::PAGE_SIZE;
use std::collections::HashMap;
use std::fmt;

/// A failed physical memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFault {
    /// The faulting physical address.
    pub addr: u32,
    /// True when the access was a store.
    pub write: bool,
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} fault at physical address {:#010x}",
            if self.write { "store" } else { "load" },
            self.addr
        )
    }
}

impl std::error::Error for MemFault {}

/// Emulated physical memory of the base architecture.
///
/// This corresponds to the identity-mapped low section of the VLIW
/// virtual address space in paper Fig. 3.1. The VLIW's own translated
/// code lives *outside* this array (in the VMM's data structures), just
/// as the paper keeps it in a region the base architecture cannot see.
#[derive(Debug, Clone)]
pub struct Memory {
    bytes: Vec<u8>,
    /// Per-4K-page "read-only because translated" bit (§3.2).
    translated: Vec<bool>,
    /// Pages whose translated bit was set when a store hit them, in
    /// order of first occurrence since the last [`Memory::drain_code_writes`].
    code_writes: Vec<u32>,
    code_write_seen: Vec<bool>,
}

impl Memory {
    /// Creates `size` bytes of zeroed physical memory (rounded up to a
    /// whole number of pages).
    pub fn new(size: u32) -> Memory {
        let size = size.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        let pages = (size / PAGE_SIZE) as usize;
        Memory {
            bytes: vec![0; size as usize],
            translated: vec![false; pages],
            code_writes: Vec::new(),
            code_write_seen: vec![false; pages],
        }
    }

    /// Total size in bytes.
    pub fn size(&self) -> u32 {
        self.bytes.len() as u32
    }

    #[inline(always)]
    fn check(&self, addr: u32, len: u32, write: bool) -> Result<usize, MemFault> {
        let end = addr as u64 + len as u64;
        if end > self.bytes.len() as u64 {
            Err(MemFault { addr, write })
        } else {
            Ok(addr as usize)
        }
    }

    #[inline(always)]
    fn note_store(&mut self, addr: u32, len: u32) {
        let first = addr / PAGE_SIZE;
        let last = (addr + len - 1) / PAGE_SIZE;
        for page in first..=last {
            let i = page as usize;
            if self.translated[i] && !self.code_write_seen[i] {
                self.code_write_seen[i] = true;
                self.code_writes.push(page);
            }
        }
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u32) -> Result<u8, MemFault> {
        self.read_u8_impl(addr)
    }

    /// Reads a big-endian halfword.
    pub fn read_u16(&self, addr: u32) -> Result<u16, MemFault> {
        self.read_u16_impl(addr)
    }

    /// Reads a big-endian word.
    pub fn read_u32(&self, addr: u32) -> Result<u32, MemFault> {
        self.read_u32_impl(addr)
    }

    /// Writes one byte, recording code-modification events.
    pub fn write_u8(&mut self, addr: u32, v: u8) -> Result<(), MemFault> {
        self.write_u8_impl(addr, v)
    }

    /// Writes a big-endian halfword.
    pub fn write_u16(&mut self, addr: u32, v: u16) -> Result<(), MemFault> {
        self.write_u16_impl(addr, v)
    }

    /// Writes a big-endian word.
    pub fn write_u32(&mut self, addr: u32, v: u32) -> Result<(), MemFault> {
        self.write_u32_impl(addr, v)
    }

    /// Inlining-guaranteed variant of [`Memory::read_u8`] for the
    /// packed execution engine's hot loop (the unsuffixed accessors
    /// deliberately stay outlined calls so the reference tree engine
    /// keeps its pre-packing code shape).
    #[inline(always)]
    pub fn read_u8_inline(&self, addr: u32) -> Result<u8, MemFault> {
        self.read_u8_impl(addr)
    }

    /// Inlining-guaranteed variant of [`Memory::read_u16`].
    #[inline(always)]
    pub fn read_u16_inline(&self, addr: u32) -> Result<u16, MemFault> {
        self.read_u16_impl(addr)
    }

    /// Inlining-guaranteed variant of [`Memory::read_u32`].
    #[inline(always)]
    pub fn read_u32_inline(&self, addr: u32) -> Result<u32, MemFault> {
        self.read_u32_impl(addr)
    }

    /// Inlining-guaranteed variant of [`Memory::write_u8`].
    #[inline(always)]
    pub fn write_u8_inline(&mut self, addr: u32, v: u8) -> Result<(), MemFault> {
        self.write_u8_impl(addr, v)
    }

    /// Inlining-guaranteed variant of [`Memory::write_u16`].
    #[inline(always)]
    pub fn write_u16_inline(&mut self, addr: u32, v: u16) -> Result<(), MemFault> {
        self.write_u16_impl(addr, v)
    }

    /// Inlining-guaranteed variant of [`Memory::write_u32`].
    #[inline(always)]
    pub fn write_u32_inline(&mut self, addr: u32, v: u32) -> Result<(), MemFault> {
        self.write_u32_impl(addr, v)
    }

    /// Inlining-guaranteed variant of [`Memory::has_code_writes`].
    #[inline(always)]
    pub fn has_code_writes_inline(&self) -> bool {
        !self.code_writes.is_empty()
    }

    #[inline(always)]
    fn read_u8_impl(&self, addr: u32) -> Result<u8, MemFault> {
        let i = self.check(addr, 1, false)?;
        Ok(self.bytes[i])
    }

    #[inline(always)]
    fn read_u16_impl(&self, addr: u32) -> Result<u16, MemFault> {
        let i = self.check(addr, 2, false)?;
        Ok(u16::from_be_bytes([self.bytes[i], self.bytes[i + 1]]))
    }

    #[inline(always)]
    fn read_u32_impl(&self, addr: u32) -> Result<u32, MemFault> {
        let i = self.check(addr, 4, false)?;
        Ok(u32::from_be_bytes([
            self.bytes[i],
            self.bytes[i + 1],
            self.bytes[i + 2],
            self.bytes[i + 3],
        ]))
    }

    #[inline(always)]
    fn write_u8_impl(&mut self, addr: u32, v: u8) -> Result<(), MemFault> {
        let i = self.check(addr, 1, true)?;
        self.note_store(addr, 1);
        self.bytes[i] = v;
        Ok(())
    }

    #[inline(always)]
    fn write_u16_impl(&mut self, addr: u32, v: u16) -> Result<(), MemFault> {
        let i = self.check(addr, 2, true)?;
        self.note_store(addr, 2);
        self.bytes[i..i + 2].copy_from_slice(&v.to_be_bytes());
        Ok(())
    }

    #[inline(always)]
    fn write_u32_impl(&mut self, addr: u32, v: u32) -> Result<(), MemFault> {
        let i = self.check(addr, 4, true)?;
        self.note_store(addr, 4);
        self.bytes[i..i + 4].copy_from_slice(&v.to_be_bytes());
        Ok(())
    }

    /// Copies a byte slice into memory (used by program loading; does
    /// *not* count as a store for code-modification purposes).
    pub fn write_bytes(&mut self, addr: u32, data: &[u8]) -> Result<(), MemFault> {
        let i = self.check(addr, data.len() as u32, true)?;
        self.bytes[i..i + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Reads `len` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u32, len: u32) -> Result<&[u8], MemFault> {
        let i = self.check(addr, len, false)?;
        Ok(&self.bytes[i..i + len as usize])
    }

    /// Marks a page's read-only (translated) bit. The VMM calls this
    /// whenever it translates code from the page (§3.2).
    pub fn set_translated_bit(&mut self, page_addr: u32) {
        let i = (page_addr / PAGE_SIZE) as usize;
        if i < self.translated.len() {
            self.translated[i] = true;
        }
    }

    /// Clears a page's read-only (translated) bit (translation cast out
    /// or invalidated).
    pub fn clear_translated_bit(&mut self, page_addr: u32) {
        let i = (page_addr / PAGE_SIZE) as usize;
        if i < self.translated.len() {
            self.translated[i] = false;
            self.code_write_seen[i] = false;
        }
    }

    /// True if the page holding `page_addr` has its translated bit set.
    pub fn translated_bit(&self, page_addr: u32) -> bool {
        let i = (page_addr / PAGE_SIZE) as usize;
        i < self.translated.len() && self.translated[i]
    }

    /// Returns (and clears) the list of translated pages that have been
    /// stored to since the last call — the code-modification interrupts
    /// of §3.2, delivered in batch to the VMM. Page *indices* (address /
    /// 4 KiB) are returned.
    pub fn drain_code_writes(&mut self) -> Vec<u32> {
        for &p in &self.code_writes {
            self.code_write_seen[p as usize] = false;
        }
        std::mem::take(&mut self.code_writes)
    }

    /// True if any code-modification event is pending.
    pub fn has_code_writes(&self) -> bool {
        !self.code_writes.is_empty()
    }

    /// Raw view for the native (JIT) tier: base pointer and length of
    /// the byte array plus the translated-bit array (one byte per 4 KiB
    /// page — `Vec<bool>` stores each flag as a byte, which is exactly
    /// the shape compiled probes test with `cmp byte [..], 0`).
    ///
    /// Compiled code accesses guest bytes directly but bails back to
    /// the packed engine *before* any store whose target page has its
    /// translated bit set, so the code-modification bookkeeping above
    /// is never bypassed. Both arrays are sized at construction and
    /// never reallocate, so the pointers stay valid for the `Memory`'s
    /// lifetime.
    pub fn jit_view(&mut self) -> (*mut u8, u32, *const bool) {
        (self.bytes.as_mut_ptr(), self.bytes.len() as u32, self.translated.as_ptr())
    }

    /// log2 of the translated-bit granule, for the native tier's
    /// compiled page probes.
    pub const fn page_shift() -> u32 {
        PAGE_SIZE.trailing_zeros()
    }
}

/// Why an address translation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XlateFault {
    /// No mapping for the virtual page.
    NotMapped,
    /// Mapping exists but forbids writes.
    Protection,
}

/// A virtual→physical page mapping entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageMapping {
    /// Physical page address (page-aligned).
    pub phys: u32,
    /// Whether stores are permitted.
    pub writable: bool,
}

/// The base architecture's page table, consulted when the emulated MSR
/// enables instruction or data relocation.
///
/// Real PowerPC uses hashed page tables; the structure is irrelevant to
/// DAISY's mechanisms (the VMM only needs *a* virtual-to-physical map to
/// implement `GO_ACROSS_PAGE`'s effective-address translation), so a
/// software-managed map keyed by virtual page number stands in.
#[derive(Debug, Clone, Default)]
pub struct Mmu {
    map: HashMap<u32, PageMapping>,
}

impl Mmu {
    /// Creates an empty page table.
    pub fn new() -> Mmu {
        Mmu::default()
    }

    /// Maps the virtual page containing `virt` to the physical page
    /// containing `phys`.
    pub fn map(&mut self, virt: u32, phys: u32, writable: bool) {
        self.map
            .insert(virt / PAGE_SIZE, PageMapping { phys: phys / PAGE_SIZE * PAGE_SIZE, writable });
    }

    /// Removes the mapping for the virtual page containing `virt`.
    pub fn unmap(&mut self, virt: u32) {
        self.map.remove(&(virt / PAGE_SIZE));
    }

    /// Translates a virtual address, honoring write protection.
    pub fn translate(&self, virt: u32, write: bool) -> Result<u32, XlateFault> {
        match self.map.get(&(virt / PAGE_SIZE)) {
            None => Err(XlateFault::NotMapped),
            Some(m) if write && !m.writable => Err(XlateFault::Protection),
            Some(m) => Ok(m.phys + virt % PAGE_SIZE),
        }
    }

    /// Number of mapped pages.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no pages are mapped.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_endian_layout() {
        let mut m = Memory::new(0x1000);
        m.write_u32(0x10, 0x1122_3344).unwrap();
        assert_eq!(m.read_u8(0x10).unwrap(), 0x11);
        assert_eq!(m.read_u8(0x13).unwrap(), 0x44);
        assert_eq!(m.read_u16(0x12).unwrap(), 0x3344);
    }

    #[test]
    fn out_of_range_faults() {
        let mut m = Memory::new(0x1000);
        assert!(m.read_u32(0x0FFE).is_err());
        assert!(m.write_u8(0x1000, 0).is_err());
        assert_eq!(m.read_u32(0x0FFC).unwrap(), 0);
    }

    #[test]
    fn translated_bit_records_code_writes() {
        let mut m = Memory::new(0x4000);
        m.set_translated_bit(0x2000);
        m.write_u32(0x1000, 1).unwrap();
        assert!(!m.has_code_writes());
        m.write_u32(0x2008, 2).unwrap();
        m.write_u8(0x2100, 3).unwrap(); // same page: recorded once
        assert_eq!(m.drain_code_writes(), vec![2]);
        assert!(!m.has_code_writes());
        // After draining, a new store records again.
        m.write_u8(0x2000, 4).unwrap();
        assert_eq!(m.drain_code_writes(), vec![2]);
    }

    #[test]
    fn straddling_store_marks_both_pages() {
        let mut m = Memory::new(0x4000);
        m.set_translated_bit(0x1000);
        m.set_translated_bit(0x2000);
        m.write_u32(0x1FFE, 0xAABB_CCDD).unwrap();
        assert_eq!(m.drain_code_writes(), vec![1, 2]);
    }

    #[test]
    fn mmu_translate() {
        let mut mmu = Mmu::new();
        mmu.map(0x0003_0000, 0x2000, true);
        mmu.map(0x0003_1000, 0x5000, false);
        assert_eq!(mmu.translate(0x0003_0104, false), Ok(0x2104));
        assert_eq!(mmu.translate(0x0003_1004, false), Ok(0x5004));
        assert_eq!(mmu.translate(0x0003_1004, true), Err(XlateFault::Protection));
        assert_eq!(mmu.translate(0x0004_0000, false), Err(XlateFault::NotMapped));
    }
}
