/root/repo/target/debug/examples/selfmod-4aff460db51b0fd5.d: examples/selfmod.rs

/root/repo/target/debug/examples/selfmod-4aff460db51b0fd5: examples/selfmod.rs

examples/selfmod.rs:
