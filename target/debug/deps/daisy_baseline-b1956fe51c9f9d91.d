/root/repo/target/debug/deps/daisy_baseline-b1956fe51c9f9d91.d: crates/baseline/src/lib.rs crates/baseline/src/ppc604e.rs crates/baseline/src/profile.rs crates/baseline/src/trad.rs

/root/repo/target/debug/deps/libdaisy_baseline-b1956fe51c9f9d91.rlib: crates/baseline/src/lib.rs crates/baseline/src/ppc604e.rs crates/baseline/src/profile.rs crates/baseline/src/trad.rs

/root/repo/target/debug/deps/libdaisy_baseline-b1956fe51c9f9d91.rmeta: crates/baseline/src/lib.rs crates/baseline/src/ppc604e.rs crates/baseline/src/profile.rs crates/baseline/src/trad.rs

crates/baseline/src/lib.rs:
crates/baseline/src/ppc604e.rs:
crates/baseline/src/profile.rs:
crates/baseline/src/trad.rs:
