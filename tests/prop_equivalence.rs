//! Randomized architectural-compatibility testing: arbitrary (safe)
//! PowerPC programs must leave *identical* architected state whether
//! run by the reference interpreter or by DAISY's translate-and-execute
//! pipeline, for every machine configuration and page size.
//!
//! This is the paper's central claim — "gives the same results that
//! plain interpretation would" — exercised over thousands of program
//! shapes: dependence chains, carry chains, record forms, compares and
//! forward branches, loads/stores (aliased and not), CTR loops, and
//! calls/returns.

use daisy::sched::TranslatorConfig;
use daisy::system::DaisySystem;
use daisy_cachesim::Hierarchy;
use daisy_ppc::asm::Asm;
use daisy_ppc::insn::{bo, Insn};
use daisy_ppc::interp::{Cpu, StopReason};
use daisy_ppc::mem::Memory;
use daisy_ppc::reg::{CrBit, CrField, Gpr};
use daisy_ppc::PpcIsa;
use daisy_vliw::machine::MachineConfig;
use proptest::prelude::*;

/// One step of a generated program. Field values are constrained so the
/// program always terminates and only touches the data window.
#[derive(Debug, Clone)]
enum Step {
    Alu { op: u8, rt: u8, ra: u8, rb: u8, rc: bool },
    AluImm { op: u8, rt: u8, ra: u8, imm: i16 },
    Carry { op: u8, rt: u8, ra: u8, rb: u8 },
    Shift { op: u8, rt: u8, ra: u8, sh: u8 },
    Cmp { bf: u8, signed: bool, ra: u8, rb: u8 },
    Load { width: u8, rt: u8, slot: u8 },
    Store { width: u8, rs: u8, slot: u8 },
    LoadIdx { rt: u8, ridx: u8 },
    StoreIdx { rs: u8, ridx: u8 },
    SkipIf { bf: u8, bit: u8, want: bool, skip: u8 },
    CtrLoop { count: u8, body_rt: u8 },
    Call { rt: u8, ra: u8, rb: u8 },
    CrOp { bt: u8, ba: u8, bb: u8 },
    Trap { never: bool },
}

const DATA: u32 = 0x8000;
const SLOTS: u32 = 64;

fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u8..8, 0u8..12, 0u8..12, 0u8..12, any::<bool>())
            .prop_map(|(op, rt, ra, rb, rc)| Step::Alu { op, rt, ra, rb, rc }),
        (0u8..3, 0u8..12, 0u8..12, any::<i16>()).prop_map(|(op, rt, ra, imm)| Step::AluImm {
            op,
            rt,
            ra,
            imm
        }),
        (0u8..4, 0u8..12, 0u8..12, 0u8..12).prop_map(|(op, rt, ra, rb)| Step::Carry {
            op,
            rt,
            ra,
            rb
        }),
        (0u8..4, 0u8..12, 0u8..12, 0u8..32).prop_map(|(op, rt, ra, sh)| Step::Shift {
            op,
            rt,
            ra,
            sh
        }),
        (0u8..4, any::<bool>(), 0u8..12, 0u8..12).prop_map(|(bf, signed, ra, rb)| Step::Cmp {
            bf,
            signed,
            ra,
            rb
        }),
        (0u8..3, 0u8..12, 0u8..64).prop_map(|(width, rt, slot)| Step::Load { width, rt, slot }),
        (0u8..3, 0u8..12, 0u8..64).prop_map(|(width, rs, slot)| Step::Store { width, rs, slot }),
        (0u8..12, 0u8..12).prop_map(|(rt, ridx)| Step::LoadIdx { rt, ridx }),
        (0u8..12, 0u8..12).prop_map(|(rs, ridx)| Step::StoreIdx { rs, ridx }),
        (0u8..4, 0u8..4, any::<bool>(), 1u8..6).prop_map(|(bf, bit, want, skip)| Step::SkipIf {
            bf,
            bit,
            want,
            skip
        }),
        (1u8..6, 0u8..12).prop_map(|(count, body_rt)| Step::CtrLoop { count, body_rt }),
        (0u8..12, 0u8..12, 0u8..12).prop_map(|(rt, ra, rb)| Step::Call { rt, ra, rb }),
        (0u8..16, 0u8..16, 0u8..16).prop_map(|(bt, ba, bb)| Step::CrOp { bt, ba, bb }),
        any::<bool>().prop_map(|_| Step::Trap { never: true }),
    ]
}

/// Emits the generated steps as real instructions. r20 is reserved as
/// the data-window base, r21 as a bounded index register.
fn emit(a: &mut Asm, steps: &[Step]) {
    let base = Gpr(20);
    let idx = Gpr(21);
    a.li32(base, DATA);
    a.li(idx, 0);
    let mut label = 0usize;
    let mut fresh = || {
        label += 1;
        format!("l{label}")
    };
    for s in steps {
        match *s {
            Step::Alu { op, rt, ra, rb, rc } => {
                let (rt, ra, rb) = (Gpr(rt), Gpr(ra), Gpr(rb));
                match op {
                    0 => a.emit(Insn::Arith {
                        op: daisy_ppc::insn::ArithOp::Add,
                        rt,
                        ra,
                        rb,
                        oe: false,
                        rc,
                    }),
                    1 => a.emit(Insn::Arith {
                        op: daisy_ppc::insn::ArithOp::Subf,
                        rt,
                        ra,
                        rb,
                        oe: false,
                        rc,
                    }),
                    2 => a.emit(Insn::Arith {
                        op: daisy_ppc::insn::ArithOp::Mullw,
                        rt,
                        ra,
                        rb,
                        oe: false,
                        rc,
                    }),
                    3 => a.emit(Insn::Arith {
                        op: daisy_ppc::insn::ArithOp::Divwu,
                        rt,
                        ra,
                        rb,
                        oe: false,
                        rc,
                    }),
                    4 => a.and(rt, ra, rb),
                    5 => a.or(rt, ra, rb),
                    6 => a.xor(rt, ra, rb),
                    _ => a.nor(rt, ra, rb),
                }
            }
            Step::AluImm { op, rt, ra, imm } => match op {
                0 => a.addi(Gpr(rt), Gpr(ra), imm),
                1 => a.ori(Gpr(rt), Gpr(ra), imm as u16),
                _ => a.xori(Gpr(rt), Gpr(ra), imm as u16),
            },
            Step::Carry { op, rt, ra, rb } => match op {
                0 => a.addc(Gpr(rt), Gpr(ra), Gpr(rb)),
                1 => a.adde(Gpr(rt), Gpr(ra), Gpr(rb)),
                2 => a.subfc(Gpr(rt), Gpr(ra), Gpr(rb)),
                _ => a.addic(Gpr(rt), Gpr(ra), 0x77),
            },
            Step::Shift { op, rt, ra, sh } => match op {
                0 => a.slwi(Gpr(rt), Gpr(ra), sh & 31),
                1 => a.srwi(Gpr(rt), Gpr(ra), sh & 31),
                2 => a.srawi(Gpr(rt), Gpr(ra), sh & 31),
                _ => a.rlwinm(Gpr(rt), Gpr(ra), sh & 31, (sh / 2) & 31, 31),
            },
            Step::Cmp { bf, signed, ra, rb } => {
                a.emit(Insn::Cmp { bf: CrField(bf), signed, ra: Gpr(ra), rb: Gpr(rb) });
            }
            Step::Load { width, rt, slot } => {
                let d = i16::from(slot) * 4;
                match width {
                    0 => a.lbz(Gpr(rt), d, base),
                    1 => a.lhz(Gpr(rt), d, base),
                    _ => a.lwz(Gpr(rt), d, base),
                }
            }
            Step::Store { width, rs, slot } => {
                let d = i16::from(slot) * 4;
                match width {
                    0 => a.stb(Gpr(rs), d, base),
                    1 => a.sth(Gpr(rs), d, base),
                    _ => a.stw(Gpr(rs), d, base),
                }
            }
            Step::LoadIdx { rt, ridx } => {
                // Clamp the index register into the window, then load.
                a.rlwinm(idx, Gpr(ridx), 2, 32 - 8, 29); // (r << 2) & 0xFC
                a.lwzx(Gpr(rt), base, idx);
            }
            Step::StoreIdx { rs, ridx } => {
                a.rlwinm(idx, Gpr(ridx), 2, 32 - 8, 29);
                a.stwx(Gpr(rs), base, idx);
            }
            Step::SkipIf { bf, bit, want, skip } => {
                let l = fresh();
                let b = if want { bo::IF_TRUE } else { bo::IF_FALSE };
                a.bc(b, CrBit::new(CrField(bf), bit), &l);
                for i in 0..skip {
                    a.addi(Gpr(i % 12), Gpr((i + 1) % 12), 13);
                }
                a.label(&l);
            }
            Step::CtrLoop { count, body_rt } => {
                let l = fresh();
                a.li(Gpr(9), i16::from(count));
                a.mtctr(Gpr(9));
                a.label(&l);
                a.addi(Gpr(body_rt), Gpr(body_rt), 3);
                a.xor(Gpr((body_rt + 1) % 12), Gpr(body_rt), Gpr(9));
                a.bdnz(&l);
            }
            Step::Call { rt, ra, rb } => {
                let over = fresh();
                let func = fresh();
                a.b(&over);
                a.label(&func);
                a.add(Gpr(rt), Gpr(ra), Gpr(rb));
                a.blr();
                a.label(&over);
                a.bl(&func);
            }
            Step::CrOp { bt, ba, bb } => {
                a.cror(CrBit(bt), CrBit(ba), CrBit(bb));
            }
            Step::Trap { never } => {
                if never {
                    // Trap-if-r0-less-than-itself: never fires, but the
                    // parcel is scheduled and checked.
                    a.emit(Insn::Tw { to: 16, ra: Gpr(0), rb: Gpr(0) });
                }
            }
        }
    }
    a.sc();
}

fn run_both(steps: &[Step], seeds: &[u32], cfg: TranslatorConfig) -> (Cpu, DaisySystem<PpcIsa>) {
    let mut a = Asm::new(0x1000);
    emit(&mut a, steps);
    let prog = a.finish().expect("generated program assembles");

    // Structural invariants of the translation itself.
    {
        let mut mem = Memory::new(0x2_0000);
        prog.load_into(&mut mem).unwrap();
        let (group, _) = daisy::sched::translate_group::<PpcIsa>(&cfg, &mem, prog.entry);
        group.validate().expect("translated group is structurally valid");
    }

    let mut mem = Memory::new(0x2_0000);
    prog.load_into(&mut mem).unwrap();
    // Pre-fill the data window deterministically.
    for i in 0..SLOTS {
        mem.write_u32(DATA + 4 * i, i.wrapping_mul(0x9E37_79B9)).unwrap();
    }
    let mut cpu = Cpu::new(prog.entry);
    for (i, s) in seeds.iter().enumerate().take(12) {
        cpu.gpr[i] = *s;
    }
    let stop = cpu.run(&mut mem, 1_000_000).unwrap();
    assert_eq!(stop, StopReason::Syscall);

    let mut sys = DaisySystem::<PpcIsa>::builder()
        .mem_size(0x2_0000)
        .translator(cfg)
        .cache(Hierarchy::infinite())
        .build();
    sys.load(&prog).unwrap();
    for i in 0..SLOTS {
        sys.mem.write_u32(DATA + 4 * i, i.wrapping_mul(0x9E37_79B9)).unwrap();
    }
    for (i, s) in seeds.iter().enumerate().take(12) {
        sys.cpu.gpr[i] = *s;
    }
    let stop = sys.run(100_000_000).unwrap();
    assert_eq!(stop, StopReason::Syscall);
    (cpu, sys)
}

fn assert_same(cpu: &Cpu, sys: &DaisySystem<PpcIsa>, ctx: &str) {
    assert_eq!(sys.cpu.gpr, cpu.gpr, "{ctx}: GPRs diverged");
    assert_eq!(sys.cpu.cr, cpu.cr, "{ctx}: CR diverged");
    assert_eq!(sys.cpu.lr, cpu.lr, "{ctx}: LR diverged");
    assert_eq!(sys.cpu.ctr, cpu.ctr, "{ctx}: CTR diverged");
    assert_eq!(sys.cpu.xer, cpu.xer, "{ctx}: XER diverged");
    assert_eq!(sys.cpu.pc, cpu.pc, "{ctx}: PC diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Default machine: random programs, random initial state.
    #[test]
    fn daisy_matches_interpreter(
        steps in prop::collection::vec(step(), 1..40),
        seeds in prop::collection::vec(any::<u32>(), 12),
    ) {
        let (cpu, sys) = run_both(&steps, &seeds, TranslatorConfig::default());
        assert_same(&cpu, &sys, "default config");
    }

    /// The smallest paper machine and a tiny page size stress resource
    /// limits, VLIW splitting, and cross-page dispatch.
    #[test]
    fn daisy_matches_interpreter_on_small_machine(
        steps in prop::collection::vec(step(), 1..24),
        seeds in prop::collection::vec(any::<u32>(), 12),
    ) {
        let cfg = TranslatorConfig {
            machine: MachineConfig::paper_configs()[0].clone(),
            page_size: 256,
            ..TranslatorConfig::default()
        };
        let (cpu, sys) = run_both(&steps, &seeds, cfg);
        assert_same(&cpu, &sys, "4-issue machine, 256-byte pages");
    }

    /// Interpretive compilation (Ch. 6) — observed-path scheduling and
    /// indirect-branch specialization — must stay architecturally exact.
    #[test]
    fn interpretive_mode_stays_exact(
        steps in prop::collection::vec(step(), 1..32),
        seeds in prop::collection::vec(any::<u32>(), 12),
    ) {
        let cfg = TranslatorConfig { interpretive: true, ..TranslatorConfig::default() };
        let (cpu, sys) = run_both(&steps, &seeds, cfg);
        assert_same(&cpu, &sys, "interpretive");
    }

    /// Renaming and load speculation disabled (the ablation modes) must
    /// still be architecturally exact.
    #[test]
    fn ablation_modes_stay_exact(
        steps in prop::collection::vec(step(), 1..24),
        seeds in prop::collection::vec(any::<u32>(), 12),
        rename in any::<bool>(),
    ) {
        let cfg = TranslatorConfig {
            rename,
            speculate_loads: !rename,
            ..TranslatorConfig::default()
        };
        let (cpu, sys) = run_both(&steps, &seeds, cfg);
        assert_same(&cpu, &sys, "ablation");
    }
}

/// Regression: must-alias store-to-load forwarding matched on rename
/// register *names*, so a later out-of-order address computation that
/// reused the store's rename register made an unrelated load "must
/// alias" the store and forward a stale value. Minimized from a
/// generated program on the 4-issue machine with 256-byte pages.
#[test]
fn regression_forwarding_must_not_match_reused_rename_regs() {
    let steps = vec![
        Step::LoadIdx { rt: 2, ridx: 0 },
        Step::StoreIdx { rs: 10, ridx: 3 },
        Step::Alu { op: 1, rt: 1, ra: 10, rb: 4, rc: false },
        Step::LoadIdx { rt: 6, ridx: 5 },
        Step::LoadIdx { rt: 5, ridx: 10 },
    ];
    let seeds: Vec<u32> = vec![
        876982966, 3232715410, 1162039537, 114046226, 3492058626, 3919515819, 2759707427,
        4098963321, 2925207062, 939715675, 269612705, 1212412170,
    ];
    let cfg = TranslatorConfig {
        machine: MachineConfig::paper_configs()[0].clone(),
        page_size: 256,
        ..TranslatorConfig::default()
    };
    let (cpu, sys) = run_both(&steps, &seeds, cfg);
    assert_same(&cpu, &sys, "reused rename register in store record");
}

/// A deterministic regression corpus for the same generator (fast path
/// in CI; proptest explores beyond it).
#[test]
fn equivalence_smoke_memory_width_mix() {
    let steps = vec![
        Step::Store { width: 2, rs: 1, slot: 0 },
        Step::Load { width: 0, rt: 2, slot: 0 },
        Step::Store { width: 0, rs: 2, slot: 1 },
        Step::Load { width: 2, rt: 3, slot: 0 },
        Step::Carry { op: 0, rt: 4, ra: 2, rb: 3 },
        Step::Carry { op: 1, rt: 5, ra: 4, rb: 4 },
        Step::Cmp { bf: 0, signed: true, ra: 5, rb: 4 },
        Step::SkipIf { bf: 0, bit: 0, want: true, skip: 3 },
        Step::CtrLoop { count: 4, body_rt: 6 },
    ];
    let seeds: Vec<u32> = (0..12).map(|i| 0xABCD_0123u32.wrapping_mul(i + 1)).collect();
    let (cpu, sys) = run_both(&steps, &seeds, TranslatorConfig::default());
    assert_same(&cpu, &sys, "smoke");
}
