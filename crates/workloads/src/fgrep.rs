//! `fgrep` — fixed-string search over a synthetic text, the AIX
//! utility measured in the paper.

use crate::{prose, Workload};
use daisy_ppc::asm::{Asm, Program};
use daisy_ppc::interp::Cpu;
use daisy_ppc::mem::Memory;
use daisy_ppc::reg::{CrField, Gpr};

const TEXT: u32 = 0x3_0000;
const PAT: u32 = 0x4_8000;
const LEN: usize = 32 * 1024;
const PATTERN: &[u8] = b"needle";
const SEED: u32 = 0xF6E3_0007;

fn build() -> Program {
    let mut a = Asm::new(0x1000);
    let (count, i, j, tc, pc, tbase, pbase, limit, plen, at) =
        (Gpr(3), Gpr(7), Gpr(8), Gpr(9), Gpr(10), Gpr(14), Gpr(15), Gpr(16), Gpr(17), Gpr(18));
    let cr = CrField(0);

    a.li(count, 0);
    a.li(i, 0);
    a.li32(tbase, TEXT);
    a.li32(pbase, PAT);
    a.li32(limit, (LEN - PATTERN.len()) as u32);
    a.li(plen, PATTERN.len() as i16);

    a.label("outer");
    // First-byte filter keeps the common path short, like real fgrep.
    a.lbzx(tc, tbase, i);
    a.lbz(pc, 0, pbase);
    a.cmpw(cr, tc, pc);
    a.bne(cr, "advance");
    a.li(j, 1);
    a.add(at, tbase, i);
    a.label("inner");
    a.cmpw(cr, j, plen);
    a.bge(cr, "matched");
    a.lbzx(tc, at, j);
    a.lbzx(pc, pbase, j);
    a.cmpw(cr, tc, pc);
    a.bne(cr, "advance");
    a.addi(j, j, 1);
    a.b("inner");
    a.label("matched");
    a.addi(count, count, 1);
    a.label("advance");
    a.addi(i, i, 1);
    a.cmpw(cr, i, limit);
    a.ble(cr, "outer");
    a.sc();

    a.data(TEXT, &prose(LEN, SEED));
    a.data(PAT, PATTERN);
    a.finish().expect("fgrep assembles")
}

/// Rust recomputation of the match count.
pub fn expected() -> u32 {
    let text = prose(LEN, SEED);
    let mut count = 0u32;
    for i in 0..=(LEN - PATTERN.len()) {
        if &text[i..i + PATTERN.len()] == PATTERN {
            count += 1;
        }
    }
    count
}

fn check(cpu: &Cpu, _mem: &Memory) -> Result<(), String> {
    let want = expected();
    if cpu.gpr[3] == want {
        Ok(())
    } else {
        Err(format!("fgrep: got {} matches, want {want}", cpu.gpr[3]))
    }
}

/// The workload descriptor.
pub fn workload() -> Workload {
    Workload { name: "fgrep", mem_size: 0x6_0000, max_instrs: 20_000_000, build, check }
}
