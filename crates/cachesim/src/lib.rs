//! Multi-level cache hierarchy simulator.
//!
//! DAISY's finite-cache results (paper Ch. 5) come from "a simple cache
//! simulator" attached to the VLIW execution engine: every tree
//! instruction fetch probes the instruction side, every executed load or
//! store probes the data side, and miss penalties stretch execution time.
//! This crate reproduces that simulator with the two hierarchies the
//! paper measures:
//!
//! * [`Hierarchy::paper_default`] — 64 KiB L1 I/D (0 cycles), 4 MiB
//!   combined L2 (12 cycles), 88-cycle memory (used for Table 5.3).
//! * [`Hierarchy::paper_eight_issue`] — 4 KiB L1s, 64 KiB L2s, 4 MiB
//!   combined L3 (16 cycles), 92-cycle memory (used for Table 5.5).
//!
//! # Example
//!
//! ```
//! use daisy_cachesim::Hierarchy;
//!
//! let mut h = Hierarchy::paper_default();
//! let first = h.access_data(0x1000, false);
//! assert_eq!(first.penalty, 100); // cold miss: L2 12 + memory 88
//! let second = h.access_data(0x1004, false);
//! assert_eq!(second.penalty, 0); // same 256-byte line
//! ```

use std::fmt;

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Display name, e.g. `"L0 DCache"`.
    pub name: String,
    /// Total size in bytes.
    pub size: u32,
    /// Associativity (1 = direct mapped).
    pub assoc: u32,
    /// Line size in bytes (power of two).
    pub line: u32,
    /// Added latency in cycles when the access *misses above* and hits
    /// here.
    pub latency: u32,
}

impl CacheConfig {
    /// Creates a level configuration.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (size not divisible by
    /// `assoc * line`, or line not a power of two).
    pub fn new(name: &str, size: u32, assoc: u32, line: u32, latency: u32) -> CacheConfig {
        assert!(line.is_power_of_two(), "line size must be a power of two");
        assert!(assoc >= 1 && size.is_multiple_of(assoc * line), "inconsistent cache geometry");
        CacheConfig { name: name.to_owned(), size, assoc, line, latency }
    }

    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.size / (self.assoc * self.line)
    }
}

/// Hit/miss counters for one level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses that reached this level.
    pub accesses: u64,
    /// Misses at this level.
    pub misses: u64,
}

impl CacheStats {
    /// Miss rate in percent (0 when never accessed).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            100.0 * self.misses as f64 / self.accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u32,
    last_use: u64,
    valid: bool,
}

/// One cache level with LRU replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Line>,
    stats: CacheStats,
    tick: u64,
}

impl Cache {
    /// Builds an empty (cold) cache.
    pub fn new(cfg: CacheConfig) -> Cache {
        let n = (cfg.sets() * cfg.assoc) as usize;
        Cache {
            cfg,
            lines: vec![Line { tag: 0, last_use: 0, valid: false }; n],
            stats: CacheStats::default(),
            tick: 0,
        }
    }

    /// The level's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// The level's counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Probes the cache; fills the line on miss. Returns true on hit.
    pub fn access(&mut self, addr: u32) -> bool {
        self.tick += 1;
        self.stats.accesses += 1;
        let line_addr = addr / self.cfg.line;
        let set = line_addr % self.cfg.sets();
        let tag = line_addr / self.cfg.sets();
        let base = (set * self.cfg.assoc) as usize;
        let ways = &mut self.lines[base..base + self.cfg.assoc as usize];
        if let Some(way) = ways.iter_mut().find(|w| w.valid && w.tag == tag) {
            way.last_use = self.tick;
            return true;
        }
        self.stats.misses += 1;
        let victim = ways
            .iter_mut()
            .min_by_key(|w| if w.valid { w.last_use } else { 0 })
            .expect("assoc >= 1");
        *victim = Line { tag, last_use: self.tick, valid: true };
        false
    }
}

impl fmt::Display for Cache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} accesses, {} misses ({:.3}%)",
            self.cfg.name,
            self.stats.accesses,
            self.stats.misses,
            self.stats.miss_rate()
        )
    }
}

/// Result of one hierarchy access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Total stall cycles added by misses on the path to the hit level.
    pub penalty: u32,
    /// True when the first (level-0) cache missed.
    pub l0_miss: bool,
}

/// A full memory hierarchy: private instruction levels, private data
/// levels, shared combined levels, and a flat memory latency behind them.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    ilevels: Vec<Cache>,
    dlevels: Vec<Cache>,
    shared: Vec<Cache>,
    mem_latency: u32,
}

impl Hierarchy {
    /// Builds a hierarchy from per-side levels plus shared levels.
    pub fn new(
        ilevels: Vec<CacheConfig>,
        dlevels: Vec<CacheConfig>,
        shared: Vec<CacheConfig>,
        mem_latency: u32,
    ) -> Hierarchy {
        Hierarchy {
            ilevels: ilevels.into_iter().map(Cache::new).collect(),
            dlevels: dlevels.into_iter().map(Cache::new).collect(),
            shared: shared.into_iter().map(Cache::new).collect(),
            mem_latency,
        }
    }

    /// The paper's default configuration (Ch. 5): 64 KiB 4-way 256 B L1
    /// data (0 cycles), 64 KiB direct-mapped 256 B L1 instruction
    /// (0 cycles), 4 MiB 4-way 256 B combined L2 (12 cycles), 88-cycle
    /// memory.
    pub fn paper_default() -> Hierarchy {
        Hierarchy::new(
            vec![CacheConfig::new("L0 ICache", 64 << 10, 1, 256, 0)],
            vec![CacheConfig::new("L0 DCache", 64 << 10, 4, 256, 0)],
            vec![CacheConfig::new("L1 JCache", 4 << 20, 4, 256, 12)],
            88,
        )
    }

    /// The 8-issue machine's hierarchy (Table 5.5): 4 KiB L1s, 64 KiB
    /// L2s, 4 MiB combined L3, 92-cycle memory.
    pub fn paper_eight_issue() -> Hierarchy {
        Hierarchy::new(
            vec![
                CacheConfig::new("L1 ICache", 4 << 10, 1, 64, 0),
                CacheConfig::new("L2 ICache", 64 << 10, 2, 128, 4),
            ],
            vec![
                CacheConfig::new("L1 DCache", 4 << 10, 4, 64, 0),
                CacheConfig::new("L2 DCache", 64 << 10, 4, 128, 4),
            ],
            vec![CacheConfig::new("L3 JCache", 4 << 20, 4, 256, 16)],
            92,
        )
    }

    /// An infinite cache: every access hits with no penalty. Used for
    /// the paper's "∞ cache" columns.
    pub fn infinite() -> Hierarchy {
        Hierarchy::new(Vec::new(), Vec::new(), Vec::new(), 0)
    }

    fn walk(levels: &mut [Cache], shared: &mut [Cache], addr: u32, mem_latency: u32) -> Access {
        let mut penalty = 0;
        let mut l0_miss = false;
        let mut first = true;
        let mut any = false;
        for c in levels.iter_mut().chain(shared.iter_mut()) {
            any = true;
            let hit = c.access(addr);
            if !hit && first {
                l0_miss = true;
            }
            first = false;
            penalty += c.cfg.latency;
            if hit {
                return Access { penalty, l0_miss };
            }
        }
        if any {
            Access { penalty: penalty + mem_latency, l0_miss }
        } else {
            // No caches at all: the infinite-cache model.
            Access { penalty: 0, l0_miss: false }
        }
    }

    /// Probes the instruction side.
    pub fn access_instr(&mut self, addr: u32) -> Access {
        Hierarchy::walk(&mut self.ilevels, &mut self.shared, addr, self.mem_latency)
    }

    /// Probes the data side.
    pub fn access_data(&mut self, addr: u32, _write: bool) -> Access {
        Hierarchy::walk(&mut self.dlevels, &mut self.shared, addr, self.mem_latency)
    }

    /// Per-level statistics `(name, stats)` in probe order: instruction
    /// levels, data levels, shared levels.
    pub fn level_stats(&self) -> Vec<(String, CacheStats)> {
        self.ilevels
            .iter()
            .chain(self.dlevels.iter())
            .chain(self.shared.iter())
            .map(|c| (c.cfg.name.clone(), *c.stats()))
            .collect()
    }

    /// True when this hierarchy has no cache levels (infinite cache).
    pub fn is_infinite(&self) -> bool {
        self.ilevels.is_empty() && self.dlevels.is_empty() && self.shared.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_mapped_conflict() {
        // 2 lines of 16 bytes, direct mapped: addresses 0 and 32 collide.
        let mut c = Cache::new(CacheConfig::new("t", 32, 1, 16, 1));
        assert!(!c.access(0));
        assert!(c.access(4));
        assert!(!c.access(32)); // evicts line 0
        assert!(!c.access(0)); // conflict miss
        assert_eq!(c.stats().misses, 3);
    }

    #[test]
    fn lru_replacement_in_set() {
        // One set, 2 ways, 16-byte lines: 0, 32, then touch 0, then 64
        // should evict 32 (LRU), keeping 0.
        let mut c = Cache::new(CacheConfig::new("t", 32, 2, 16, 1));
        assert!(!c.access(0));
        assert!(!c.access(32));
        assert!(c.access(0));
        assert!(!c.access(64));
        assert!(c.access(0));
        assert!(!c.access(32));
    }

    #[test]
    fn hierarchy_penalties_accumulate() {
        let mut h = Hierarchy::new(
            vec![CacheConfig::new("L1I", 64, 1, 16, 0)],
            vec![CacheConfig::new("L1D", 64, 1, 16, 0)],
            vec![CacheConfig::new("L2", 256, 1, 16, 10)],
            50,
        );
        // Cold: L1 miss (0) + L2 miss (10) + memory (50).
        assert_eq!(h.access_data(0, false), Access { penalty: 60, l0_miss: true });
        // L1 hit.
        assert_eq!(h.access_data(8, false), Access { penalty: 0, l0_miss: false });
        // Fill the other L1 sets, then wrap to evict line 0 from L1 only.
        h.access_data(64, false);
        let a = h.access_data(0, false);
        assert_eq!(a, Access { penalty: 10, l0_miss: true }); // L1 miss, L2 hit
    }

    #[test]
    fn instruction_and_data_sides_are_separate() {
        let mut h = Hierarchy::new(
            vec![CacheConfig::new("L1I", 64, 1, 16, 0)],
            vec![CacheConfig::new("L1D", 64, 1, 16, 0)],
            vec![],
            30,
        );
        assert!(h.access_instr(0).l0_miss);
        // Same address on the data side still cold.
        assert!(h.access_data(0, false).l0_miss);
        assert!(!h.access_instr(0).l0_miss);
    }

    #[test]
    fn infinite_cache_is_free() {
        let mut h = Hierarchy::infinite();
        assert_eq!(h.access_data(0x1234, true).penalty, 0);
        assert_eq!(h.access_instr(0xFFFF_0000).penalty, 0);
        assert!(h.is_infinite());
        assert!(h.level_stats().is_empty());
    }

    #[test]
    fn paper_hierarchies_construct() {
        let h = Hierarchy::paper_default();
        let names: Vec<_> = h.level_stats().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["L0 ICache", "L0 DCache", "L1 JCache"]);
        let h8 = Hierarchy::paper_eight_issue();
        assert_eq!(h8.level_stats().len(), 5);
    }

    #[test]
    fn miss_rate_percent() {
        let mut s = CacheStats::default();
        assert_eq!(s.miss_rate(), 0.0);
        s.accesses = 200;
        s.misses = 3;
        assert!((s.miss_rate() - 1.5).abs() < 1e-9);
    }
}
