//! The graceful-degradation ladder under pressure: a translation cache
//! clamped to a page or two of code, the full Packed → Tree →
//! Conservative → Interpret walk, and interpret-ahead budget
//! exhaustion. Every configuration must stay bit-exact against the
//! pure-interpreter reference.

use daisy::prelude::*;
use daisy::DegradeCause;
use daisy_ppc::interp::{Cpu, StopReason};
use daisy_ppc::mem::Memory;
use daisy_ppc::PpcIsa;
use daisy_ppc::{Asm, Gpr};
use daisy_workloads::Workload;

fn run_reference(w: &Workload) -> (Cpu, Memory) {
    let prog = w.program();
    let mut mem = Memory::new(w.mem_size);
    prog.load_into(&mut mem).unwrap();
    let mut cpu = Cpu::new(prog.entry);
    let stop = cpu.run(&mut mem, w.max_instrs).unwrap();
    assert_eq!(stop, StopReason::Syscall, "{}: reference run did not finish", w.name);
    (cpu, mem)
}

fn assert_state_matches(w: &Workload, sys: &DaisySystem<PpcIsa>, ref_cpu: &Cpu, ref_mem: &Memory) {
    assert_eq!(sys.cpu.gpr, ref_cpu.gpr, "{}: GPR state diverged", w.name);
    assert_eq!(sys.cpu.cr, ref_cpu.cr, "{}: CR diverged", w.name);
    assert_eq!(sys.cpu.lr, ref_cpu.lr, "{}: LR diverged", w.name);
    assert_eq!(sys.cpu.ctr, ref_cpu.ctr, "{}: CTR diverged", w.name);
    assert_eq!(sys.cpu.xer, ref_cpu.xer, "{}: XER diverged", w.name);
    assert_eq!(sys.cpu.pc, ref_cpu.pc, "{}: PC diverged", w.name);
    let size = ref_mem.size();
    assert_eq!(
        sys.mem.read_bytes(0, size).unwrap(),
        ref_mem.read_bytes(0, size).unwrap(),
        "{}: memory image diverged",
        w.name
    );
}

/// Satellite: all nine workloads with the translation cache clamped to
/// roughly two small pages of translated code. Continuous cast-out is
/// the normal operating mode here, and semantics must not budge.
#[test]
fn clamped_cache_is_bit_exact_on_all_workloads() {
    let mut cast_outs_total = 0u64;
    for w in daisy_workloads::all() {
        let (ref_cpu, ref_mem) = run_reference(&w);

        let prog = w.program();
        let mut sys = DaisySystem::<PpcIsa>::builder()
            .mem_size(w.mem_size)
            .translator(TranslatorConfig { page_size: 256, ..TranslatorConfig::default() })
            .code_capacity(512)
            .build();
        sys.load(&prog).unwrap();
        let stop = sys.run(50 * w.max_instrs).unwrap();
        assert_eq!(stop, StopReason::Syscall, "{}: clamped run did not finish", w.name);

        assert_state_matches(&w, &sys, &ref_cpu, &ref_mem);
        w.check(&sys.cpu, &sys.mem)
            .unwrap_or_else(|e| panic!("{}: checker failed under clamp: {e}", w.name));
        cast_outs_total += sys.vmm.stats.cast_outs;
    }
    // Workloads whose text spans several translation pages must have
    // thrashed; single-page workloads structurally cannot cast out.
    assert!(cast_outs_total > 0, "the clamp must force cast-outs somewhere");
}

/// The full ladder walk on every workload: force Packed → Tree →
/// Conservative → Interpret at the entry point, run to completion, and
/// demand bit-exactness. The floor rung refuses to step further.
#[test]
fn full_ladder_walk_is_bit_exact() {
    for w in daisy_workloads::all() {
        let (ref_cpu, ref_mem) = run_reference(&w);

        let prog = w.program();
        let mut sys = DaisySystem::<PpcIsa>::builder().mem_size(w.mem_size).build();
        sys.load(&prog).unwrap();
        let entry = prog.entry;
        for expect_to in [daisy::Rung::Tree, daisy::Rung::Conservative, daisy::Rung::Interpret] {
            let d = sys.degrade(entry, DegradeCause::Forced).expect("ladder has a rung left");
            assert_eq!(d.to, expect_to, "{}: ladder out of order", w.name);
        }
        assert_eq!(sys.rung(entry), daisy::Rung::Interpret, "{}: floor not reached", w.name);
        assert!(
            sys.degrade(entry, DegradeCause::Forced).is_none(),
            "{}: interpretation is the floor",
            w.name
        );

        let stop = sys.run(50 * w.max_instrs).unwrap();
        assert_eq!(stop, StopReason::Syscall, "{}: degraded run did not finish", w.name);
        assert_state_matches(&w, &sys, &ref_cpu, &ref_mem);
        w.check(&sys.cpu, &sys.mem)
            .unwrap_or_else(|e| panic!("{}: checker failed on the floor: {e}", w.name));
        assert_eq!(sys.degradations().len(), 3, "{}: exactly three steps recorded", w.name);
    }
}

/// Satellite: interpret-ahead budget exhaustion surfaces as a typed
/// `HintBudget` degradation (and a `Degraded` trace event), never as a
/// silent hint truncation. A straight-line run longer than
/// `window_size * 8` instructions guarantees the budget trips.
#[test]
fn hint_budget_exhaustion_is_surfaced() {
    let mut a = Asm::new(0x1000);
    a.li(Gpr(3), 0);
    for _ in 0..100 {
        a.addi(Gpr(3), Gpr(3), 1);
    }
    a.sc();
    let prog = a.finish().unwrap();

    let sink = RingSink::new(1024);
    let mut sys = DaisySystem::<PpcIsa>::builder()
        .mem_size(0x20000)
        .translator(TranslatorConfig {
            interpretive: true,
            window_size: 8,
            ..TranslatorConfig::default()
        })
        .trace_sink(sink.clone())
        .build();
    sys.load(&prog).unwrap();
    let stop = sys.run(1_000_000).unwrap();
    assert_eq!(stop, StopReason::Syscall);
    assert_eq!(sys.cpu.gpr[3], 100);

    assert!(sys.vmm.stats.hint_budget_exhausted > 0, "budget must have tripped");
    assert!(
        sys.degradations().iter().any(|d| d.cause == DegradeCause::HintBudget),
        "exhaustion must be recorded as a typed degradation"
    );
    assert!(
        sink.events()
            .iter()
            .any(|e| matches!(e, TraceEvent::Degraded { cause: DegradeCause::HintBudget, .. })),
        "exhaustion must reach the trace stream"
    );
}

/// Guest-level attribution must survive the degradation ladder: with
/// profiling on, a full Packed → Tree → Conservative → Interpret walk
/// still records every forced step as a `"degrade"` instant on the
/// timeline, and the conservation invariant (attributed issue and
/// stall cycles equal the run totals) holds across the tier changes.
#[test]
fn guest_profile_survives_ladder_walk() {
    let w = daisy_workloads::by_name("cmp").expect("known workload");
    let prog = w.program();
    let mut sys =
        DaisySystem::<PpcIsa>::builder().mem_size(w.mem_size).guest_profiling(true).build();
    sys.load(&prog).unwrap();
    let entry = prog.entry;
    // Two rungs down: Conservative still dispatches translated groups,
    // so attribution keeps flowing after the tier changes.
    for _ in 0..2 {
        sys.degrade(entry, DegradeCause::Forced).expect("ladder has a rung left");
    }
    let stop = sys.run(50 * w.max_instrs).unwrap();
    assert_eq!(stop, StopReason::Syscall);
    w.check(&sys.cpu, &sys.mem).expect("checker passes under profiling + degradation");

    let gp = sys.guest_profile.as_ref().expect("profiling was enabled");
    let degrade_instants = gp
        .timeline()
        .iter()
        .filter(|e| matches!(e, TimelineEvent::Instant { label: "degrade", .. }))
        .count();
    assert_eq!(degrade_instants, 2, "both forced steps must appear on the timeline");

    let issue = gp.total_issue_cycles();
    let stalls = gp.total_stall_cycles();
    let tol = |x: f64| 1e-6 * x.max(1.0);
    assert!(
        (issue - sys.stats.vliws_executed as f64).abs() <= tol(issue),
        "attributed issue cycles {} must match vliws_executed {}",
        issue,
        sys.stats.vliws_executed
    );
    assert!(
        (stalls - sys.stats.stall_cycles as f64).abs() <= tol(stalls),
        "attributed stall cycles {} must match stall_cycles {}",
        stalls,
        sys.stats.stall_cycles
    );
    assert!(gp.dispatches() > 0, "degraded tiers still dispatch translated groups");
}

/// Cast-outs forced by a clamped translation cache must surface as
/// `"cast_out"` instants on the profiled timeline, so a trace viewer
/// shows exactly when the cache thrashed. Every workload must show one
/// instant per recorded cast-out (including zero for single-page
/// programs that structurally cannot thrash), and the clamp must force
/// thrash somewhere in the suite.
#[test]
fn guest_profile_records_cast_outs_under_clamp() {
    let mut cast_outs_total = 0u64;
    for w in daisy_workloads::all() {
        let (ref_cpu, ref_mem) = run_reference(&w);

        let prog = w.program();
        let mut sys = DaisySystem::<PpcIsa>::builder()
            .mem_size(w.mem_size)
            .translator(TranslatorConfig { page_size: 256, ..TranslatorConfig::default() })
            .code_capacity(512)
            .guest_profiling(true)
            .build();
        sys.load(&prog).unwrap();
        let stop = sys.run(50 * w.max_instrs).unwrap();
        assert_eq!(stop, StopReason::Syscall, "{}: profiled clamped run did not finish", w.name);
        assert_state_matches(&w, &sys, &ref_cpu, &ref_mem);

        let gp = sys.guest_profile.as_ref().expect("profiling was enabled");
        let cast_out_instants = gp
            .timeline()
            .iter()
            .filter(|e| matches!(e, TimelineEvent::Instant { label: "cast_out", .. }))
            .count() as u64;
        assert_eq!(
            cast_out_instants, sys.vmm.stats.cast_outs,
            "{}: every cast-out must appear as a timeline instant",
            w.name
        );
        cast_outs_total += sys.vmm.stats.cast_outs;
    }
    assert!(cast_outs_total > 0, "the clamp must force cast-outs somewhere");
}

/// A short program comfortably inside the budget must NOT trip it:
/// exhaustion means "ran dry before a natural stopping point", not
/// "gathered hints at all".
#[test]
fn hint_budget_not_exhausted_on_short_code() {
    let mut a = Asm::new(0x1000);
    a.li(Gpr(3), 21);
    a.add(Gpr(3), Gpr(3), Gpr(3));
    a.sc();
    let prog = a.finish().unwrap();

    let mut sys = DaisySystem::<PpcIsa>::builder()
        .mem_size(0x20000)
        .translator(TranslatorConfig { interpretive: true, ..TranslatorConfig::default() })
        .build();
    sys.load(&prog).unwrap();
    sys.run(1_000_000).unwrap();
    assert_eq!(sys.cpu.gpr[3], 42);
    assert_eq!(sys.vmm.stats.hint_budget_exhausted, 0, "short code fits the budget");
    assert!(sys.degradations().is_empty());
}
