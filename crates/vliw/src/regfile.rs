//! The runtime VLIW register file with exception tag bits.
//!
//! "Each register of the VLIW has an additional exception tag bit,
//! indicating that the register contains the result of an operation that
//! caused an error. … When a register with the exception tag is used by
//! a non-speculative commit operation, or any non-speculative operation,
//! an exception occurs" (paper §2.1).
//!
//! The file extends the base architecture's state; [`RegFile::from_cpu`]
//! and [`RegFile::write_back`] convert between the two. Non-architected
//! registers are *not* part of base state and are deliberately dropped
//! by `write_back` — the paper's point that nothing extra needs saving
//! at context switches.

use crate::reg::{Reg, NUM_REGS};
use daisy_ppc::interp::Cpu;
use daisy_ppc::reg::{xer_bits, CrField};

/// Runtime register values plus exception tags.
#[derive(Debug, Clone)]
pub struct RegFile {
    vals: [u32; NUM_REGS],
    tags: [bool; NUM_REGS],
}

impl Default for RegFile {
    fn default() -> Self {
        RegFile::new()
    }
}

impl RegFile {
    /// All-zero file with no tags set.
    pub fn new() -> RegFile {
        RegFile { vals: [0; NUM_REGS], tags: [false; NUM_REGS] }
    }

    /// Reads a register value.
    pub fn get(&self, r: Reg) -> u32 {
        self.vals[r.index()]
    }

    /// Writes a register value, clearing its exception tag.
    pub fn set(&mut self, r: Reg, v: u32) {
        self.vals[r.index()] = v;
        self.tags[r.index()] = false;
    }

    /// Reads an exception tag.
    pub fn tag(&self, r: Reg) -> bool {
        self.tags[r.index()]
    }

    /// Marks a register as holding a poisoned speculative result.
    pub fn set_tag(&mut self, r: Reg, t: bool) {
        self.tags[r.index()] = t;
    }

    /// Direct mutable views of the value and tag arrays, indexed by
    /// [`Reg::index`]. The packed execution engine borrows these once
    /// per dispatch so its inlined hot loop reads and writes registers
    /// as plain array accesses instead of per-operand accessor calls
    /// (which stay outlined for the reference tree engine).
    #[inline]
    pub fn arrays_mut(&mut self) -> (&mut [u32; NUM_REGS], &mut [bool; NUM_REGS]) {
        (&mut self.vals, &mut self.tags)
    }

    /// Loads architected base state into the unified file (rename
    /// registers are zeroed — they carry no base state).
    pub fn from_cpu(cpu: &Cpu) -> RegFile {
        let mut f = RegFile::new();
        for i in 0..32 {
            f.vals[i] = cpu.gpr[i];
        }
        for c in 0..8u8 {
            f.vals[Reg::cr(CrField(c)).index()] = cpu.cr_field(CrField(c));
        }
        f.vals[Reg::LR.index()] = cpu.lr;
        f.vals[Reg::CTR.index()] = cpu.ctr;
        f.vals[Reg::CA.index()] = u32::from(cpu.xer & xer_bits::CA != 0);
        f.vals[Reg::OV.index()] = u32::from(cpu.xer & xer_bits::OV != 0);
        f.vals[Reg::SO.index()] = u32::from(cpu.xer & xer_bits::SO != 0);
        f
    }

    /// Stores the architected portion back into base state. The PC and
    /// MSR are managed by the VMM, not the register file.
    pub fn write_back(&self, cpu: &mut Cpu) {
        for i in 0..32 {
            cpu.gpr[i] = self.vals[i];
        }
        for c in 0..8u8 {
            cpu.set_cr_field(CrField(c), self.vals[Reg::cr(CrField(c)).index()]);
        }
        cpu.lr = self.vals[Reg::LR.index()];
        cpu.ctr = self.vals[Reg::CTR.index()];
        let mut xer = cpu.xer & !(xer_bits::CA | xer_bits::OV | xer_bits::SO);
        if self.vals[Reg::CA.index()] & 1 != 0 {
            xer |= xer_bits::CA;
        }
        if self.vals[Reg::OV.index()] & 1 != 0 {
            xer |= xer_bits::OV;
        }
        if self.vals[Reg::SO.index()] & 1 != 0 {
            xer |= xer_bits::SO;
        }
        cpu.xer = xer;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_ppc::reg::Gpr;

    #[test]
    fn roundtrip_through_cpu() {
        let mut cpu = Cpu::new(0x1000);
        cpu.gpr[5] = 0xDEAD;
        cpu.set_cr_field(CrField(2), 0b1010);
        cpu.lr = 0x44;
        cpu.ctr = 7;
        cpu.xer = xer_bits::CA | xer_bits::SO;

        let f = RegFile::from_cpu(&cpu);
        assert_eq!(f.get(Reg::gpr(Gpr(5))), 0xDEAD);
        assert_eq!(f.get(Reg::cr(CrField(2))), 0b1010);
        assert_eq!(f.get(Reg::CA), 1);
        assert_eq!(f.get(Reg::OV), 0);
        assert_eq!(f.get(Reg::SO), 1);

        let mut cpu2 = Cpu::new(0);
        f.write_back(&mut cpu2);
        assert_eq!(cpu2.gpr[5], 0xDEAD);
        assert_eq!(cpu2.cr_field(CrField(2)), 0b1010);
        assert_eq!(cpu2.lr, 0x44);
        assert_eq!(cpu2.ctr, 7);
        assert_eq!(cpu2.xer, xer_bits::CA | xer_bits::SO);
    }

    #[test]
    fn set_clears_tag() {
        let mut f = RegFile::new();
        let r = Reg::rename(3);
        f.set_tag(r, true);
        assert!(f.tag(r));
        f.set(r, 9);
        assert!(!f.tag(r));
        assert_eq!(f.get(r), 9);
    }

    #[test]
    fn write_back_ignores_rename_registers() {
        let mut f = RegFile::new();
        f.set(Reg::rename(0), 123);
        let mut cpu = Cpu::new(0);
        f.write_back(&mut cpu);
        // No architected register changed.
        assert!(cpu.gpr.iter().all(|&g| g == 0));
    }
}
