//! Comparators for the DAISY evaluation.
//!
//! * [`trad`] — the "traditional VLIW compiler" of Table 5.2: the same
//!   scheduling substrate given the advantages the paper attributes to
//!   an offline compiler (whole-program scope, profile-directed path
//!   selection, much larger windows and unroll budgets).
//! * [`ppc604e`] — an in-order superscalar timing model standing in for
//!   the PowerPC 604E of Table 5.3.
//! * [`profile`] — edge-profile collection shared by both.

pub mod ppc604e;
pub mod profile;
pub mod trad;
