/root/repo/target/debug/deps/chaining-a936c8533b9defb2.d: tests/chaining.rs

/root/repo/target/debug/deps/chaining-a936c8533b9defb2: tests/chaining.rs

tests/chaining.rs:
