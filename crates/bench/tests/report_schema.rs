//! Schema tests for the `report` binary's artifacts: the
//! `BENCH_report.json` document and the Chrome `trace_event` export
//! must be valid JSON with the shapes the consumers (CI's shape
//! assertion, `chrome://tracing`, Perfetto) expect.
//!
//! The environment is offline, so validation uses the minimal
//! recursive-descent parser in [`daisy_bench::json`] — strict enough
//! to reject malformed output (trailing commas, bare NaN, unquoted
//! keys), small enough to audit at a glance.

use daisy_bench::json::{parse, Json};
use daisy_bench::reporting::{chrome_trace_for, report_json, report_workload};

// ------------------------------------------------------------- schemas

/// The five metrics every workload entry must publish, plus the raw
/// counts behind the waste fraction.
const METRICS: &[&str] =
    &["finite_ilp", "infinite_ilp", "ops_per_vliw", "overhead_per_base_instr", "waste_fraction"];

/// Acceptance: `BENCH_report.json` parses as JSON and carries all five
/// metrics (finite, non-negative numbers) for every workload, plus the
/// geomean block. Runs two real workloads — the same pair CI smokes.
#[test]
fn bench_report_json_schema_holds() {
    let reports: Vec<_> = ["wc", "cmp"]
        .iter()
        .map(|n| report_workload(&daisy_workloads::by_name(n).expect("known workload")).0)
        .collect();
    let text = report_json(&reports);
    let doc = parse(&text).expect("report output must parse as JSON");

    assert_eq!(doc.get("cache").and_then(Json::str), Some("paper_default"));
    let workloads = doc.get("workloads").and_then(Json::arr).expect("workloads array");
    assert_eq!(workloads.len(), 2);
    for (entry, want_name) in workloads.iter().zip(["wc", "cmp"]) {
        assert_eq!(entry.get("name").and_then(Json::str), Some(want_name));
        let base = entry.get("base_instrs").and_then(Json::num).expect("base_instrs");
        assert!(base > 0.0, "{want_name}: base_instrs must be positive");
        for metric in METRICS {
            let v = entry
                .get(metric)
                .and_then(Json::num)
                .unwrap_or_else(|| panic!("{want_name}: missing metric {metric}"));
            assert!(v >= 0.0, "{want_name}: {metric} = {v} must be non-negative");
        }
        let spec = entry.get("spec_ops").and_then(Json::num).expect("spec_ops");
        let wasted = entry.get("wasted_spec_ops").and_then(Json::num).expect("wasted_spec_ops");
        assert!(wasted <= spec, "{want_name}: wasted > speculative");
    }
    let geomean = doc.get("geomean").expect("geomean block");
    for k in ["finite_ilp", "infinite_ilp"] {
        assert!(geomean.get(k).and_then(Json::num).expect("geomean metric") > 0.0);
    }
}

/// Acceptance: the Chrome export is valid `trace_event` JSON — a
/// `traceEvents` array whose entries all carry `ph`/`pid`/`tid`, with
/// duration events (`ph:"X"`) carrying numeric `ts`/`dur` and instants
/// (`ph:"i"`) a scope — loadable by `chrome://tracing` and Perfetto.
#[test]
fn chrome_trace_is_valid_trace_event_json() {
    let w = daisy_workloads::by_name("cmp").expect("known workload");
    let (_, sys) = report_workload(&w);
    let text = chrome_trace_for(&sys, w.name);
    let doc = parse(&text).expect("trace must parse as JSON");

    let events = doc.get("traceEvents").and_then(Json::arr).expect("traceEvents array");
    assert!(events.len() > 2, "a completed run must emit dispatch events");
    let mut saw_meta = false;
    let mut saw_duration = false;
    for ev in events {
        let ph = ev.get("ph").and_then(Json::str).expect("every event has ph");
        assert!(ev.get("pid").and_then(Json::num).is_some(), "every event has pid");
        assert!(ev.get("tid").and_then(Json::num).is_some(), "every event has tid");
        match ph {
            "M" => saw_meta = true,
            "X" => {
                saw_duration = true;
                let ts = ev.get("ts").and_then(Json::num).expect("X has ts");
                let dur = ev.get("dur").and_then(Json::num).expect("X has dur");
                assert!(ts >= 0.0 && dur >= 1.0, "dispatch spans are visible");
                let args = ev.get("args").expect("X has args");
                assert!(args.get("entry").and_then(Json::str).is_some());
                assert!(args.get("tier").and_then(Json::str).is_some());
            }
            "i" => {
                assert!(ev.get("ts").and_then(Json::num).is_some(), "instant has ts");
                assert!(ev.get("s").and_then(Json::str).is_some(), "instant has scope");
            }
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    assert!(saw_meta, "process_name metadata event present");
    assert!(saw_duration, "at least one dispatch duration event");
}
