//! The packed execution format is an *observation-preserving* lowering:
//! running any program with the packed engine must be indistinguishable
//! from the reference tree-walking engine — same architected state,
//! same memory image, same [`RunStats`] (to the counter), and the same
//! structured [`TraceEvent`] sequence. These tests pin that equivalence
//! over randomized programs and over the packed form of the chain-link
//! protocol (slot-indexed links must still sever on invalidation).

use daisy::sched::TranslatorConfig;
use daisy::stats::RunStats;
use daisy::system::DaisySystem;
use daisy::trace::{RingSink, TraceEvent};
use daisy_cachesim::Hierarchy;
use daisy_ppc::asm::{Asm, Program};
use daisy_ppc::encode::encode;
use daisy_ppc::insn::{bo, Insn};
use daisy_ppc::interp::StopReason;
use daisy_ppc::reg::{CrBit, CrField, Gpr};
use daisy_ppc::PpcIsa;
use daisy_vliw::machine::MachineConfig;
use proptest::prelude::*;

const DATA: u32 = 0x8000;
const SLOTS: u32 = 64;

/// One step of a generated program; constrained to terminate and to
/// touch only the data window (same discipline as `prop_equivalence`).
#[derive(Debug, Clone)]
enum Step {
    Alu { op: u8, rt: u8, ra: u8, rb: u8, rc: bool },
    AddImm { rt: u8, ra: u8, imm: i16 },
    Carry { op: u8, rt: u8, ra: u8, rb: u8 },
    Shift { op: u8, rt: u8, ra: u8, sh: u8 },
    Cmp { bf: u8, signed: bool, ra: u8, rb: u8 },
    Load { width: u8, rt: u8, slot: u8 },
    Store { width: u8, rs: u8, slot: u8 },
    LoadIdx { rt: u8, ridx: u8 },
    StoreIdx { rs: u8, ridx: u8 },
    SkipIf { bf: u8, bit: u8, want: bool, skip: u8 },
    CtrLoop { count: u8, body_rt: u8 },
    Call { rt: u8, ra: u8, rb: u8 },
    Trap,
}

fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u8..8, 0u8..12, 0u8..12, 0u8..12, any::<bool>())
            .prop_map(|(op, rt, ra, rb, rc)| Step::Alu { op, rt, ra, rb, rc }),
        (0u8..12, 0u8..12, any::<i16>()).prop_map(|(rt, ra, imm)| Step::AddImm { rt, ra, imm }),
        (0u8..4, 0u8..12, 0u8..12, 0u8..12).prop_map(|(op, rt, ra, rb)| Step::Carry {
            op,
            rt,
            ra,
            rb
        }),
        (0u8..4, 0u8..12, 0u8..12, 0u8..32).prop_map(|(op, rt, ra, sh)| Step::Shift {
            op,
            rt,
            ra,
            sh
        }),
        (0u8..4, any::<bool>(), 0u8..12, 0u8..12).prop_map(|(bf, signed, ra, rb)| Step::Cmp {
            bf,
            signed,
            ra,
            rb
        }),
        (0u8..3, 0u8..12, 0u8..64).prop_map(|(width, rt, slot)| Step::Load { width, rt, slot }),
        (0u8..3, 0u8..12, 0u8..64).prop_map(|(width, rs, slot)| Step::Store { width, rs, slot }),
        (0u8..12, 0u8..12).prop_map(|(rt, ridx)| Step::LoadIdx { rt, ridx }),
        (0u8..12, 0u8..12).prop_map(|(rs, ridx)| Step::StoreIdx { rs, ridx }),
        (0u8..4, 0u8..4, any::<bool>(), 1u8..6).prop_map(|(bf, bit, want, skip)| Step::SkipIf {
            bf,
            bit,
            want,
            skip
        }),
        (1u8..6, 0u8..12).prop_map(|(count, body_rt)| Step::CtrLoop { count, body_rt }),
        (0u8..12, 0u8..12, 0u8..12).prop_map(|(rt, ra, rb)| Step::Call { rt, ra, rb }),
        Just(Step::Trap),
    ]
}

fn emit(a: &mut Asm, steps: &[Step]) {
    let base = Gpr(20);
    let idx = Gpr(21);
    a.li32(base, DATA);
    a.li(idx, 0);
    let mut label = 0usize;
    let mut fresh = || {
        label += 1;
        format!("l{label}")
    };
    for s in steps {
        match *s {
            Step::Alu { op, rt, ra, rb, rc } => {
                let (rt, ra, rb) = (Gpr(rt), Gpr(ra), Gpr(rb));
                use daisy_ppc::insn::ArithOp;
                match op {
                    0 => a.emit(Insn::Arith { op: ArithOp::Add, rt, ra, rb, oe: false, rc }),
                    1 => a.emit(Insn::Arith { op: ArithOp::Subf, rt, ra, rb, oe: false, rc }),
                    2 => a.emit(Insn::Arith { op: ArithOp::Mullw, rt, ra, rb, oe: false, rc }),
                    3 => a.emit(Insn::Arith { op: ArithOp::Divwu, rt, ra, rb, oe: false, rc }),
                    4 => a.and(rt, ra, rb),
                    5 => a.or(rt, ra, rb),
                    6 => a.xor(rt, ra, rb),
                    _ => a.nor(rt, ra, rb),
                }
            }
            Step::AddImm { rt, ra, imm } => a.addi(Gpr(rt), Gpr(ra), imm),
            Step::Carry { op, rt, ra, rb } => match op {
                0 => a.addc(Gpr(rt), Gpr(ra), Gpr(rb)),
                1 => a.adde(Gpr(rt), Gpr(ra), Gpr(rb)),
                2 => a.subfc(Gpr(rt), Gpr(ra), Gpr(rb)),
                _ => a.addic(Gpr(rt), Gpr(ra), 0x77),
            },
            Step::Shift { op, rt, ra, sh } => match op {
                0 => a.slwi(Gpr(rt), Gpr(ra), sh & 31),
                1 => a.srwi(Gpr(rt), Gpr(ra), sh & 31),
                2 => a.srawi(Gpr(rt), Gpr(ra), sh & 31),
                _ => a.rlwinm(Gpr(rt), Gpr(ra), sh & 31, (sh / 2) & 31, 31),
            },
            Step::Cmp { bf, signed, ra, rb } => {
                a.emit(Insn::Cmp { bf: CrField(bf), signed, ra: Gpr(ra), rb: Gpr(rb) });
            }
            Step::Load { width, rt, slot } => {
                let d = i16::from(slot) * 4;
                match width {
                    0 => a.lbz(Gpr(rt), d, base),
                    1 => a.lhz(Gpr(rt), d, base),
                    _ => a.lwz(Gpr(rt), d, base),
                }
            }
            Step::Store { width, rs, slot } => {
                let d = i16::from(slot) * 4;
                match width {
                    0 => a.stb(Gpr(rs), d, base),
                    1 => a.sth(Gpr(rs), d, base),
                    _ => a.stw(Gpr(rs), d, base),
                }
            }
            Step::LoadIdx { rt, ridx } => {
                a.rlwinm(idx, Gpr(ridx), 2, 32 - 8, 29);
                a.lwzx(Gpr(rt), base, idx);
            }
            Step::StoreIdx { rs, ridx } => {
                a.rlwinm(idx, Gpr(ridx), 2, 32 - 8, 29);
                a.stwx(Gpr(rs), base, idx);
            }
            Step::SkipIf { bf, bit, want, skip } => {
                let l = fresh();
                let b = if want { bo::IF_TRUE } else { bo::IF_FALSE };
                a.bc(b, CrBit::new(CrField(bf), bit), &l);
                for i in 0..skip {
                    a.addi(Gpr(i % 12), Gpr((i + 1) % 12), 13);
                }
                a.label(&l);
            }
            Step::CtrLoop { count, body_rt } => {
                let l = fresh();
                a.li(Gpr(9), i16::from(count));
                a.mtctr(Gpr(9));
                a.label(&l);
                a.addi(Gpr(body_rt), Gpr(body_rt), 3);
                a.xor(Gpr((body_rt + 1) % 12), Gpr(body_rt), Gpr(9));
                a.bdnz(&l);
            }
            Step::Call { rt, ra, rb } => {
                let over = fresh();
                let func = fresh();
                a.b(&over);
                a.label(&func);
                a.add(Gpr(rt), Gpr(ra), Gpr(rb));
                a.blr();
                a.label(&over);
                a.bl(&func);
            }
            Step::Trap => {
                // Never fires, but schedules and checks the parcel.
                a.emit(Insn::Tw { to: 16, ra: Gpr(0), rb: Gpr(0) });
            }
        }
    }
    a.sc();
}

/// A finished run: the system plus its captured trace.
type TracedRun = (DaisySystem<PpcIsa>, Vec<TraceEvent>);

/// Runs one program under both engines — identical systems except for
/// `packed_execution` — returning `(tree, packed)` with their traces.
fn run_twins(
    prog: &Program,
    seeds: &[u32],
    cfg: TranslatorConfig,
    cache: &Hierarchy,
) -> (TracedRun, TracedRun) {
    let run = |packed: bool| {
        let sink = RingSink::new(1 << 16);
        let mut sys = DaisySystem::<PpcIsa>::builder()
            .mem_size(0x2_0000)
            .translator(cfg.clone())
            .cache(cache.clone())
            .packed_execution(packed)
            .trace_sink(sink.clone())
            .build();
        sys.load(prog).unwrap();
        for i in 0..SLOTS {
            sys.mem.write_u32(DATA + 4 * i, i.wrapping_mul(0x9E37_79B9)).unwrap();
        }
        for (i, s) in seeds.iter().enumerate().take(12) {
            sys.cpu.gpr[i] = *s;
        }
        let stop = sys.run(100_000_000).unwrap();
        assert_eq!(stop, StopReason::Syscall);
        assert_eq!(sink.dropped(), 0, "trace ring overflowed; grow the cap");
        (sys, sink.events())
    };
    (run(false), run(true))
}

/// Every observation the two engines make must agree.
fn assert_indistinguishable(
    (tree, tree_ev): &(DaisySystem<PpcIsa>, Vec<TraceEvent>),
    (packed, packed_ev): &(DaisySystem<PpcIsa>, Vec<TraceEvent>),
    ctx: &str,
) {
    assert_eq!(packed.cpu.gpr, tree.cpu.gpr, "{ctx}: GPRs diverged");
    assert_eq!(packed.cpu.cr, tree.cpu.cr, "{ctx}: CR diverged");
    assert_eq!(packed.cpu.lr, tree.cpu.lr, "{ctx}: LR diverged");
    assert_eq!(packed.cpu.ctr, tree.cpu.ctr, "{ctx}: CTR diverged");
    assert_eq!(packed.cpu.xer, tree.cpu.xer, "{ctx}: XER diverged");
    assert_eq!(packed.cpu.pc, tree.cpu.pc, "{ctx}: PC diverged");
    let size = tree.mem.size();
    assert_eq!(
        packed.mem.read_bytes(0, size).unwrap(),
        tree.mem.read_bytes(0, size).unwrap(),
        "{ctx}: memory image diverged"
    );
    assert_eq!(packed.stats, tree.stats, "{ctx}: RunStats diverged");
    assert_eq!(packed_ev, tree_ev, "{ctx}: trace event sequences diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Default machine, infinite cache: random programs.
    #[test]
    fn packed_engine_is_observably_the_tree_engine(
        steps in prop::collection::vec(step(), 1..40),
        seeds in prop::collection::vec(any::<u32>(), 12),
    ) {
        let mut a = Asm::new(0x1000);
        emit(&mut a, &steps);
        let prog = a.finish().expect("generated program assembles");
        let (tree, packed) =
            run_twins(&prog, &seeds, TranslatorConfig::default(), &Hierarchy::infinite());
        assert_indistinguishable(&tree, &packed, "default config");
    }

    /// Injection equivalence: randomized programs under identical
    /// fault-injection campaigns must stay bit-exact against the
    /// interpreter oracle on BOTH engines — the packed lowering adds no
    /// new failure modes under adversarial perturbation. (Equivalence
    /// between the engines follows transitively through the oracle.)
    #[test]
    fn packed_engine_survives_injection_like_the_tree_engine(
        steps in prop::collection::vec(step(), 1..20),
        seed in 0u64..1024,
    ) {
        use daisy::inject::{run_campaign_on_program, CampaignConfig, FaultKind};

        let mut a = Asm::new(0x1000);
        emit(&mut a, &steps);
        let prog = a.finish().expect("generated program assembles");
        for kind in [FaultKind::IllegalOp, FaultKind::InterruptStorm, FaultKind::ChainSever] {
            for packed in [false, true] {
                let cfg = CampaignConfig { packed, ..CampaignConfig::new(kind, seed) };
                run_campaign_on_program::<PpcIsa>(&prog, 0x2_0000, 1_000_000, &cfg).unwrap_or_else(|e| {
                    panic!("injection broke the {} engine: {e}",
                        if packed { "packed" } else { "tree" })
                });
            }
        }
    }

    /// The smallest paper machine, tiny translation pages, and a
    /// *finite* cache hierarchy: exercises VLIW splitting, cross-page
    /// dispatch, and the per-access cache-probe paths of both engines
    /// (stall cycles must agree to the cycle).
    #[test]
    fn packed_engine_matches_on_small_machine_finite_cache(
        steps in prop::collection::vec(step(), 1..24),
        seeds in prop::collection::vec(any::<u32>(), 12),
    ) {
        let cfg = TranslatorConfig {
            machine: MachineConfig::paper_configs()[0].clone(),
            page_size: 256,
            ..TranslatorConfig::default()
        };
        let mut a = Asm::new(0x1000);
        emit(&mut a, &steps);
        let prog = a.finish().expect("generated program assembles");
        let (tree, packed) = run_twins(&prog, &seeds, cfg, &Hierarchy::paper_default());
        assert_indistinguishable(&tree, &packed, "4-issue, 256-byte pages, finite cache");
    }
}

/// All nine paper workloads, packed vs tree: the guest-visible results
/// must be bit-exact and every runtime counter identical. This is the
/// acceptance bar for the packed format stated directly as a test.
#[test]
fn workloads_bit_exact_across_engines() {
    for w in daisy_workloads::all() {
        let prog = w.program();
        let run = |packed: bool| {
            let mut sys = DaisySystem::<PpcIsa>::builder()
                .mem_size(w.mem_size)
                .packed_execution(packed)
                .build();
            sys.load(&prog).unwrap();
            let stop = sys.run(50 * w.max_instrs).unwrap();
            assert_eq!(stop, StopReason::Syscall, "{}: did not finish", w.name);
            w.check(&sys.cpu, &sys.mem).unwrap_or_else(|e| {
                panic!("{} (packed={packed}): wrong guest result: {e}", w.name)
            });
            sys
        };
        let tree = run(false);
        let packed = run(true);
        assert_eq!(packed.cpu.gpr, tree.cpu.gpr, "{}: GPRs diverged", w.name);
        assert_eq!(packed.cpu.pc, tree.cpu.pc, "{}: PC diverged", w.name);
        assert_eq!(packed.stats, tree.stats, "{}: RunStats diverged", w.name);
    }
}

/// The packed chain-link protocol under self-modifying code: links are
/// installed against packed slot indices, and invalidating the patch
/// page must sever them before the next dispatch — in lockstep with the
/// tree engine's counters.
#[test]
fn packed_links_sever_on_invalidation() {
    const PAGE: u32 = 256;
    const TABLE: u32 = 0x8000;
    let imms: Vec<i16> = (1..=8).collect();

    // A loop that rewrites one of its own instructions each iteration
    // (patch site parked on the next 4 KiB invalidation unit, so the
    // storing group survives to observe the sever).
    let mut a = Asm::new(0x1F00);
    for r in [0u8, 1, 2, 3, 6] {
        a.li(Gpr(r), i16::from(r) + 1);
    }
    a.li(Gpr(7), 0);
    a.li32(Gpr(9), TABLE);
    a.li(Gpr(8), 0);
    a.li(Gpr(31), imms.len() as i16);
    a.mtctr(Gpr(31));
    a.label("loop");
    a.lwzx(Gpr(4), Gpr(9), Gpr(8));
    a.la(Gpr(3), "patch");
    a.stw(Gpr(4), 0, Gpr(3));
    while !a.here().is_multiple_of(PAGE) {
        a.nop();
    }
    a.label("patch");
    a.li(Gpr(5), 0);
    a.add(Gpr(7), Gpr(7), Gpr(5));
    a.addi(Gpr(8), Gpr(8), 4);
    a.bdnz("loop");
    a.sc();
    let words: Vec<u32> =
        imms.iter().map(|&si| encode(&Insn::Addi { rt: Gpr(5), ra: Gpr(0), si })).collect();
    a.data_words(TABLE, &words);
    let prog = a.finish().expect("selfmod program assembles");

    let cfg = TranslatorConfig { page_size: PAGE, ..TranslatorConfig::default() };
    let run = |packed: bool| {
        let mut sys = DaisySystem::<PpcIsa>::builder()
            .mem_size(0x2_0000)
            .translator(cfg.clone())
            .chaining(true)
            .packed_execution(packed)
            .build();
        sys.load(&prog).unwrap();
        let stop = sys.run(10_000_000).unwrap();
        assert_eq!(stop, StopReason::Syscall);
        sys
    };
    let tree = run(false);
    let packed = run(true);

    let want: u32 = imms.iter().map(|&i| i as u32).sum();
    assert_eq!(packed.cpu.gpr[7], want, "accumulator saw a stale patch");
    assert!(packed.stats.chain.link_installs >= 1, "hot exits should get links");
    assert!(
        packed.stats.chain.severs >= 1,
        "invalidating the patch page must sever packed slot links; stats: {:?}",
        packed.stats.chain
    );
    assert_eq!(packed.stats, tree.stats, "selfmod: RunStats diverged across engines");
    assert_eq!(packed.cpu.gpr, tree.cpu.gpr, "selfmod: GPRs diverged across engines");
}

/// `RunStats` equality in these tests is meaningful only if the type
/// actually compares every counter; guard against a field being dropped
/// from the comparison by a future manual `PartialEq` impl.
#[test]
fn runstats_equality_covers_counters() {
    let mut a = RunStats::default();
    let b = RunStats::default();
    assert_eq!(a, b);
    a.issue_histogram[3] = 1;
    assert_ne!(a, b);
}
