//! Benchmark workloads, generic over the guest frontend.

use crate::mem::Memory;
use crate::{Isa, Program};

/// A benchmark: a program builder plus a result checker, for guest `I`.
///
/// The same algorithm implemented for two guests (with the same result
/// memory layout) gives the cross-ISA differential harness its
/// observable-output comparison axis.
pub struct Workload<I: Isa> {
    /// Benchmark name as used in the paper's tables.
    pub name: &'static str,
    /// Emulated physical memory required.
    pub mem_size: u32,
    /// Interpreter/engine instruction budget (generous).
    pub max_instrs: u64,
    /// Assembles the program image.
    pub build: fn() -> Program,
    /// Validates final architected state against a Rust recomputation.
    pub check: fn(&I::Cpu, &Memory) -> Result<(), String>,
}

impl<I: Isa> Workload<I> {
    /// Assembles the program image.
    pub fn program(&self) -> Program {
        (self.build)()
    }

    /// Validates the final architected state against a Rust
    /// recomputation of the expected result.
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatch.
    pub fn check(&self, cpu: &I::Cpu, mem: &Memory) -> Result<(), String> {
        (self.check)(cpu, mem)
    }
}

impl<I: Isa> std::fmt::Debug for Workload<I> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload").field("name", &self.name).finish()
    }
}
