//! The complete DAISY machine: emulated memory, base-architecture
//! state, VMM, translated-code engine, and cache hierarchy.
//!
//! [`DaisySystem::run`] is the paper's execution model end to end:
//! dispatch the current PC through the VMM (translating on first
//! touch), execute tree instructions until the group exits, and handle
//! the exit — cross-page and indirect branches re-dispatch, system
//! calls, interrupt returns and privileged instructions drop to the
//! VMM's interpreter, stores into translated pages invalidate and
//! resume, precise exceptions are delivered to the base architecture's
//! own vectors.
//!
//! The system is generic over the guest: [`DaisySystem<I>`] emulates
//! whichever [`Isa`] its type parameter names, holding that guest's
//! architected state as `I::Cpu` and translating its instructions
//! through `I::decode`/`I::convert`. Nothing in this module knows which
//! ISA it is running.

use crate::engine::{
    run_group, run_group_profiled, run_group_resume, run_group_tree, run_group_tree_profiled,
    ChainLink, EngineScratch, ExcKind, GroupCode, GroupExit,
};
use crate::error::{DaisyError, Degradation, DegradeCause, Rung};
use crate::metrics::{IrqLatency, MetricsRegistry, MetricsSnapshot, MetricsSource, PostMortem};
use crate::native::{NativeRun, NativeStats, NativeTier, NativeTierConfig};
use crate::precise::{self, ArchEvent, RecoverError};
use crate::profile::GuestProfile;
use crate::sched::{TierPolicy, TranslatorConfig};
use crate::stats::RunStats;
use crate::trace::{
    ExcClass, FlightRecorder, GroupProfiler, Tier, TraceEvent, TraceSink, Tracer,
    DEFAULT_FLIGHT_RECORDER_CAPACITY,
};
use crate::vmm::Vmm;
use daisy_cachesim::Hierarchy;
use daisy_isa::convert::BranchKind;
use daisy_isa::mem::{MemFault, Memory};
use daisy_isa::{Event, Exception, GuestCpu, Isa, Program, StopReason};
use daisy_vliw::regfile::RegFile;
use daisy_vliw::tree::IndirectVia;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

/// Default group-boundary cadence of metrics publication: the system
/// republishes its [`MetricsSnapshot`] into the registry every this
/// many dispatch boundaries (see
/// [`DaisySystemBuilder::metrics_publish_period`]).
pub const DEFAULT_METRICS_PUBLISH_PERIOD: u32 = 1024;

/// How the previous group exited, carried to the next dispatch so a
/// chain link can be followed or installed.
#[derive(Debug)]
enum PendingChain {
    /// A static direct-branch exit: the `from` group has a link slot
    /// for `target`.
    Direct { from: Rc<GroupCode>, slot: usize, target: u32 },
    /// An indirect (LR/CTR) exit, served by `from`'s inline dispatch
    /// cache.
    Indirect { from: Rc<GroupCode>, target: u32 },
}

/// A fully wired DAISY machine, emulating the guest ISA `I`.
#[derive(Debug)]
pub struct DaisySystem<I: Isa> {
    /// Emulated base-architecture physical memory.
    pub mem: Memory,
    /// Architected base state (registers, PC, machine state).
    pub cpu: I::Cpu,
    /// The Virtual Machine Monitor.
    pub vmm: Vmm<I>,
    /// Cache hierarchy probed by the engine.
    pub cache: Hierarchy,
    /// Run statistics.
    pub stats: RunStats,
    /// Cross-check the §3.5 recovery algorithm against parcel metadata
    /// on every exception (cheap: exceptions are rare).
    pub check_precise_recovery: bool,
    /// Deliver an external interrupt every this many cycles (a timer
    /// tick), when the emulated machine state has interrupts enabled.
    /// External interrupts are taken at group boundaries — the
    /// translated-code analogue of the paper's "to the external
    /// interrupt handler the program will appear to be at [a precise]
    /// point" (§3.7).
    pub timer_period: Option<u64>,
    next_timer: u64,
    pending_external: bool,
    /// Recorded external-interrupt deliveries — `(retired guest
    /// instructions, architected PC)` per delivery — when enabled
    /// through [`DaisySystemBuilder::record_deliveries`]. The
    /// preemption-fuzz harness replays this log on the interpreter
    /// oracle to reproduce the exact delivery schedule.
    delivery_log: Option<Vec<(u64, u32)>>,
    /// External interrupts delivered at a boundary produced by a
    /// native-tier run (including rerolled back-edge yields).
    native_yield_preempts: u64,
    /// Whether the previous dispatch executed (at least partly) as
    /// native host code.
    last_exit_native: bool,
    scratch: EngineScratch,
    /// Follow direct group-to-group chain links, skipping the VMM on
    /// hot exits (on by default; [`DaisySystem::builder`] can disable
    /// it to reproduce pure per-dispatch VMM counts).
    chaining: bool,
    /// The previous group's exit, if a chain link may apply to it.
    pending_chain: Option<PendingChain>,
    /// Execute groups through the packed format (default) or the
    /// reference tree walk.
    packed: bool,
    /// Per-group execution profiler (`None` unless enabled through the
    /// builder; tiered retranslation enables it implicitly).
    pub profiler: Option<GroupProfiler>,
    /// Guest-level attribution profile (`None` unless enabled through
    /// [`DaisySystemBuilder::guest_profiling`]): per-guest-PC cycles,
    /// stalls, speculation waste, the §4.2 overhead clock, and the
    /// dispatch timeline the exporters render (see [`crate::profile`]).
    pub guest_profile: Option<GuestProfile>,
    /// Promotion threshold, copied out of the VMM's tier policy so the
    /// dispatch loop can test it without borrowing the VMM.
    hot_threshold: Option<u64>,
    /// Graceful-degradation ladder: entries faulted down from the
    /// default execution mode (see [`crate::error`]). Empty on the
    /// happy path.
    ladder: HashMap<u32, Rung>,
    /// Translation pages that fell to the bottom rung and are executed
    /// by the reference interpreter. Empty on the happy path.
    interp_pages: HashSet<u32>,
    /// True once anything was ever degraded: the one flag the hot
    /// dispatch path tests before touching `ladder`/`interp_pages`.
    ladder_engaged: bool,
    /// The native host-code tier (see [`crate::native`]): present only
    /// when enabled through [`DaisySystemBuilder::native_execution`]
    /// *and* the host can execute emitted x86-64. When present, entries
    /// default to [`Rung::Native`] and hot groups run as compiled host
    /// code; everything else (cold groups, refused groups, other
    /// ladder rungs) runs on the packed engine as before.
    native: Option<NativeTier>,
    /// The metrics registry this system publishes into (`None` unless
    /// enabled through [`DaisySystemBuilder::metrics`] or
    /// [`DaisySystemBuilder::metrics_registry`]).
    metrics: Option<MetricsRegistry>,
    /// Boundaries between registry publications.
    metrics_period: u32,
    /// Boundaries left until the next publication.
    metrics_countdown: u32,
    /// Interrupt post-to-delivery latency accumulator (observed at
    /// group boundaries — see the delivery block in `step`).
    irq_latency: IrqLatency,
    /// Retired-instruction count at the boundary where the currently
    /// pending interrupt was first observed undeliverable.
    irq_posted_at: Option<u64>,
    /// The most recent automatic flight-recorder dump (captured on
    /// every ladder degradation; boxed — it is large and usually
    /// absent).
    last_post_mortem: Option<Box<PostMortem>>,
}

/// Configures and creates a [`DaisySystem`]; obtained from
/// [`DaisySystem::builder`]. The builder carries the guest ISA as its
/// type parameter, so one turbofish (or an inferred binding) selects
/// the frontend and everything downstream is typed by it.
///
/// ```
/// use daisy::prelude::*;
/// use daisy_ppc::PpcIsa;
///
/// let sys = DaisySystem::<PpcIsa>::builder()
///     .mem_size(0x40000)
///     .translator(TranslatorConfig::default())
///     .cache(Hierarchy::infinite())
///     .build();
/// assert!(sys.chaining_enabled());
/// ```
#[derive(Debug)]
pub struct DaisySystemBuilder<I: Isa> {
    mem_size: u32,
    cfg: TranslatorConfig,
    cache: Hierarchy,
    timer_period: Option<u64>,
    check_precise_recovery: bool,
    code_capacity: Option<u64>,
    chaining: bool,
    trace_sink: Option<Box<dyn TraceSink>>,
    profiling: bool,
    guest_profiling: bool,
    tier_policy: Option<TierPolicy>,
    packed: bool,
    native: bool,
    native_config: NativeTierConfig,
    record_deliveries: bool,
    metrics: Option<MetricsRegistry>,
    metrics_period: u32,
    flight_recorder: bool,
    flight_capacity: usize,
    _isa: std::marker::PhantomData<I>,
}

impl<I: Isa> Default for DaisySystemBuilder<I> {
    fn default() -> DaisySystemBuilder<I> {
        DaisySystemBuilder {
            mem_size: 0x40000,
            cfg: TranslatorConfig::default(),
            cache: Hierarchy::infinite(),
            timer_period: None,
            check_precise_recovery: true,
            code_capacity: None,
            chaining: true,
            trace_sink: None,
            profiling: false,
            guest_profiling: false,
            tier_policy: None,
            packed: true,
            native: false,
            native_config: NativeTierConfig::default(),
            record_deliveries: false,
            metrics: None,
            metrics_period: DEFAULT_METRICS_PUBLISH_PERIOD,
            flight_recorder: true,
            flight_capacity: DEFAULT_FLIGHT_RECORDER_CAPACITY,
            _isa: std::marker::PhantomData,
        }
    }
}

impl<I: Isa> DaisySystemBuilder<I> {
    /// Bytes of emulated base-architecture memory (default 256 KiB).
    pub fn mem_size(mut self, bytes: u32) -> Self {
        self.mem_size = bytes;
        self
    }

    /// Translator configuration (machine, page size, window…).
    pub fn translator(mut self, cfg: TranslatorConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Cache hierarchy probed by the engine (default infinite).
    pub fn cache(mut self, cache: Hierarchy) -> Self {
        self.cache = cache;
        self
    }

    /// Deliver an external interrupt every `cycles` cycles (default:
    /// no timer).
    pub fn timer_period(mut self, cycles: u64) -> Self {
        self.timer_period = Some(cycles);
        self
    }

    /// Cross-check §3.5 precise-exception recovery on every exception
    /// (default on).
    pub fn check_precise_recovery(mut self, on: bool) -> Self {
        self.check_precise_recovery = on;
        self
    }

    /// Bound the translated-code area to `bytes`, casting out LRU page
    /// translations beyond it (default unbounded).
    pub fn code_capacity(mut self, bytes: u64) -> Self {
        self.code_capacity = Some(bytes);
        self
    }

    /// Enable or disable direct group chaining (default on). With
    /// chaining off every dispatch goes through the VMM, reproducing
    /// the pre-chaining dispatch counts exactly.
    pub fn chaining(mut self, on: bool) -> Self {
        self.chaining = on;
        self
    }

    /// Execute translated groups through the packed format (default
    /// on). Off selects the reference tree-walking engine — observably
    /// identical, slower; kept for measurement and differential
    /// testing (see [`crate::engine::run_group_tree`]).
    pub fn packed_execution(mut self, on: bool) -> Self {
        self.packed = on;
        self
    }

    /// Enables the native host-code tier (default off): groups whose
    /// dispatch count crosses [`DaisySystemBuilder::native_threshold`]
    /// are lowered to executable x86-64 and entered directly, with
    /// chained direct jumps between compiled groups (see
    /// [`crate::native`] and `docs/jit.md`). Requires packed execution;
    /// silently falls back to the packed engine when the host is not
    /// x86-64 Linux, when guest profiling is enabled (native code
    /// records no retirement trace), or when the cache hierarchy is
    /// finite (native code does not probe the cache model).
    pub fn native_execution(mut self, on: bool) -> Self {
        self.native = on;
        self
    }

    /// Dispatches before a group is lowered to native code (default
    /// [`crate::native::DEFAULT_NATIVE_THRESHOLD`]; clamped to at
    /// least 1). Only meaningful with
    /// [`DaisySystemBuilder::native_execution`] on.
    pub fn native_threshold(mut self, dispatches: u64) -> Self {
        self.native_config.threshold = dispatches;
        self
    }

    /// Inline indirect-branch target cache (default on): compiled
    /// groups with indirect exits resolve guest target → native entry
    /// inside the arena, skipping the dispatcher boundary the
    /// icache-hit path would otherwise take. Ablation lever for
    /// `EXPERIMENTS.md`.
    pub fn native_ibtc(mut self, on: bool) -> Self {
        self.native_config.ibtc = on;
        self
    }

    /// General-parcel templates and partial-group compilation (default
    /// on): trap checks and load-verify commits lower to native
    /// templates instead of refusing the whole group, with mid-group
    /// bails resuming on the packed engine. Ablation lever for
    /// `EXPERIMENTS.md`.
    pub fn native_partial_groups(mut self, on: bool) -> Self {
        self.native_config.general_templates = on;
        self
    }

    /// Worthwhile-ness floor for native compilation (default
    /// [`crate::native::DEFAULT_NATIVE_MIN_COVERAGE`]): warm entries
    /// whose statically predicted template coverage falls below this
    /// fraction are refused without attempting compilation.
    pub fn native_min_coverage(mut self, fraction: f64) -> Self {
        self.native_config.min_coverage = fraction;
        self
    }

    /// Records every external-interrupt delivery as `(retired guest
    /// instructions, PC)` in [`DaisySystem::delivery_log`] (default
    /// off). The preemption-fuzz harness replays the log on the
    /// interpreter oracle to reproduce a translated run's exact
    /// delivery schedule.
    pub fn record_deliveries(mut self, on: bool) -> Self {
        self.record_deliveries = on;
        self
    }

    /// Installs a structured-event sink (see [`crate::trace`]). Without
    /// one, tracing is disabled and event closures are never evaluated.
    pub fn trace_sink(mut self, sink: impl TraceSink + 'static) -> Self {
        self.trace_sink = Some(Box::new(sink));
        self
    }

    /// Enables metrics publication into a fresh
    /// [`MetricsRegistry`] (default off; read it back through
    /// [`DaisySystem::metrics_registry`]). Publication happens on the
    /// [`DaisySystemBuilder::metrics_publish_period`] cadence at group
    /// boundaries and costs nothing on in-group hot paths;
    /// [`DaisySystem::metrics_snapshot`] works with or without this.
    pub fn metrics(mut self, on: bool) -> Self {
        self.metrics = on.then(MetricsRegistry::new);
        self
    }

    /// Publishes into an existing shared registry handle instead of a
    /// fresh one (a monitoring thread — or the forthcoming translation
    /// server — holds a clone and snapshots it while the system runs).
    pub fn metrics_registry(mut self, registry: MetricsRegistry) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Group boundaries between registry publications (default
    /// [`DEFAULT_METRICS_PUBLISH_PERIOD`]; clamped to at least 1).
    /// Snapshots are exact regardless of cadence — the registry is a
    /// periodically refreshed *copy* of counters every layer maintains
    /// continuously.
    pub fn metrics_publish_period(mut self, boundaries: u32) -> Self {
        self.metrics_period = boundaries.max(1);
        self
    }

    /// Enables or disables the always-on flight recorder (default on):
    /// a fixed ring of recent trace events kept with no sink installed,
    /// dumped as a [`PostMortem`] on ladder degradation (see
    /// [`crate::trace::FlightRecorder`]).
    pub fn flight_recorder(mut self, on: bool) -> Self {
        self.flight_recorder = on;
        self
    }

    /// Capacity of the flight-recorder ring (default
    /// [`DEFAULT_FLIGHT_RECORDER_CAPACITY`]; clamped to at least 1).
    pub fn flight_recorder_capacity(mut self, events: usize) -> Self {
        self.flight_capacity = events;
        self
    }

    /// Enables the per-group execution profiler
    /// ([`DaisySystem::profiler`]): dispatch counts, VLIWs retired, and
    /// stall cycles attributed per group entry (default off; implied by
    /// [`DaisySystemBuilder::tiered`]).
    pub fn profiling(mut self, on: bool) -> Self {
        self.profiling = on;
        self
    }

    /// Enables guest-level attribution ([`DaisySystem::guest_profile`]):
    /// per-guest-PC cycle/stall/waste accounting plus the dispatch
    /// timeline and §4.2 overhead clock behind the exporters in
    /// [`crate::profile`] (default off). Selects the profiled engine
    /// variants, which record each dispatch's retirement trace; the
    /// non-profiled engines carry zero recording code.
    pub fn guest_profiling(mut self, on: bool) -> Self {
        self.guest_profiling = on;
        self
    }

    /// Enables profile-guided tiered retranslation under `policy`:
    /// groups whose dispatch count crosses the policy's hot threshold
    /// are dropped and rebuilt with the policy's wider scheduling
    /// window and deeper speculation. Implies [`profiling`].
    ///
    /// [`profiling`]: DaisySystemBuilder::profiling
    pub fn tiered(mut self, policy: TierPolicy) -> Self {
        self.tier_policy = Some(policy);
        self.profiling = true;
        self
    }

    /// Shorthand for [`DaisySystemBuilder::tiered`] with the default
    /// [`TierPolicy`] at the given promotion threshold.
    pub fn hot_threshold(self, dispatches: u64) -> Self {
        self.tiered(TierPolicy::with_threshold(dispatches))
    }

    /// Builds the system.
    pub fn build(self) -> DaisySystem<I> {
        let mut vmm = Vmm::new(self.cfg);
        vmm.set_code_capacity(self.code_capacity);
        if let Some(sink) = self.trace_sink {
            vmm.tracer = Tracer::new(sink);
        }
        vmm.tracer.recorder = if self.flight_recorder {
            FlightRecorder::with_capacity(self.flight_capacity)
        } else {
            FlightRecorder::disabled()
        };
        let hot_threshold = self.tier_policy.as_ref().map(|p| p.hot_threshold);
        vmm.tier_policy = self.tier_policy;
        // The native tier only composes with configurations it can
        // reproduce exactly: packed execution (it lowers the packed
        // format), no guest profiling (native code records no
        // retirement trace), and an infinite cache (native code does
        // not probe the cache model). `NativeTier::new` additionally
        // returns `None` on hosts that cannot execute emitted x86-64.
        let native =
            (self.native && self.packed && !self.guest_profiling && self.cache.is_infinite())
                .then(|| NativeTier::new(self.native_config))
                .flatten();
        DaisySystem {
            mem: Memory::new(self.mem_size),
            cpu: <I::Cpu as GuestCpu>::new(0),
            vmm,
            cache: self.cache,
            stats: RunStats::default(),
            check_precise_recovery: self.check_precise_recovery,
            timer_period: self.timer_period,
            next_timer: 0,
            pending_external: false,
            delivery_log: self.record_deliveries.then(Vec::new),
            native_yield_preempts: 0,
            last_exit_native: false,
            scratch: EngineScratch::new(),
            chaining: self.chaining,
            pending_chain: None,
            packed: self.packed,
            profiler: self.profiling.then(GroupProfiler::new),
            guest_profile: self.guest_profiling.then(GuestProfile::new),
            hot_threshold,
            ladder: HashMap::new(),
            interp_pages: HashSet::new(),
            ladder_engaged: false,
            native,
            metrics: self.metrics,
            metrics_period: self.metrics_period,
            metrics_countdown: self.metrics_period,
            irq_latency: IrqLatency::default(),
            irq_posted_at: None,
            last_post_mortem: None,
        }
    }
}

impl<I: Isa> DaisySystem<I> {
    /// Starts configuring a system.
    pub fn builder() -> DaisySystemBuilder<I> {
        DaisySystemBuilder::default()
    }

    /// Creates a system with `mem_size` bytes of base memory, the
    /// default translator configuration, and an infinite cache (the
    /// paper's pathlength-reduction setup).
    ///
    /// Note: prefer [`DaisySystem::builder`], which exposes every
    /// configuration knob; this constructor remains for convenience.
    pub fn new(mem_size: u32) -> DaisySystem<I> {
        DaisySystem::builder().mem_size(mem_size).build()
    }

    /// Creates a system with explicit translator and cache
    /// configurations.
    ///
    /// Note: prefer [`DaisySystem::builder`], which exposes every
    /// configuration knob; this constructor remains for convenience.
    pub fn with_config(mem_size: u32, cfg: TranslatorConfig, cache: Hierarchy) -> DaisySystem<I> {
        DaisySystem::builder().mem_size(mem_size).translator(cfg).cache(cache).build()
    }

    /// Whether direct group chaining is enabled.
    pub fn chaining_enabled(&self) -> bool {
        self.chaining
    }

    /// Posts an external interrupt, delivered at the next group
    /// boundary while the emulated machine state has interrupts
    /// enabled.
    pub fn post_external_interrupt(&mut self) {
        self.pending_external = true;
    }

    /// Loads a program image and points the PC at its entry.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] if the image does not fit in memory.
    pub fn load(&mut self, prog: &Program) -> Result<(), MemFault> {
        prog.load_into(&mut self.mem)?;
        self.cpu.set_pc(prog.entry);
        Ok(())
    }

    fn handle_code_writes(&mut self) {
        for unit in self.mem.drain_code_writes() {
            self.vmm.invalidate_unit(&mut self.mem, unit);
        }
    }

    /// Runs translated execution until a stop condition or until the
    /// simulated cycle count reaches `max_cycles`.
    ///
    /// # Errors
    ///
    /// Returns [`DaisyError`] only if a fault cannot be absorbed by the
    /// graceful-degradation ladder (see [`crate::error`]) — a
    /// translator-invariant violation, never expected in a correct
    /// build.
    pub fn run(&mut self, max_cycles: u64) -> Result<StopReason, DaisyError> {
        let stop = loop {
            if self.stats.cycles() >= max_cycles {
                break StopReason::MaxInstrs;
            }
            if let Some(stop) = self.step()? {
                break stop;
            }
        };
        // VMM events are mirrored into the guest profile at the start
        // of each step; flush whatever the final step produced (e.g. a
        // cast-out during the last translation) before returning.
        if let Some(gp) = &mut self.guest_profile {
            gp.sync_vmm_events(
                self.vmm.degradations(),
                self.vmm.stats.cast_outs,
                self.stats.cycles(),
            );
        }
        Ok(stop)
    }

    /// Executes exactly one dispatch step — one group boundary: pending
    /// code-modification flushes, interrupt delivery, then one group
    /// execution (or one bounded interpretation burst, for pages on the
    /// bottom ladder rung). Returns `Ok(Some(stop))` when execution
    /// cannot continue.
    ///
    /// Fault-injection campaigns ([`crate::inject`]) drive this
    /// directly so they can perturb the system between groups; ordinary
    /// harnesses should call [`DaisySystem::run`].
    ///
    /// # Errors
    ///
    /// See [`DaisySystem::run`].
    // invariant-free hot path: `run` is a tight trampoline around this,
    // and the packed engine's short groups make the call boundary
    // itself measurable — keep it inlinable.
    #[inline]
    pub fn step(&mut self) -> Result<Option<StopReason>, DaisyError> {
        self.handle_code_writes();
        // Metrics publication cadence: one decrement-and-test per
        // boundary when enabled, with the publication itself outlined
        // and cold. Snapshots read counters the layers maintain anyway,
        // so the cadence bounds staleness, not accuracy.
        if self.metrics.is_some() {
            self.metrics_countdown -= 1;
            if self.metrics_countdown == 0 {
                self.publish_metrics_now();
            }
        }
        // Mirror VMM events (degradations, cast-outs) into the guest
        // profile's timeline; syncing at the group boundary keeps the
        // hot paths that produce them free of profiling hooks.
        if let Some(gp) = &mut self.guest_profile {
            gp.sync_vmm_events(
                self.vmm.degradations(),
                self.vmm.stats.cast_outs,
                self.stats.cycles(),
            );
        }
        // Timer tick / posted external interrupts, at precise group
        // boundaries (every architected register is exact here). The
        // cadence is fixed: ticks land on multiples of `period`
        // regardless of how far a long group overshot the deadline,
        // and overshooting several periods yields one tick, not a
        // burst (the level stays asserted until delivered anyway).
        if let Some(period) = self.timer_period {
            if self.stats.cycles() >= self.next_timer {
                let missed = (self.stats.cycles() - self.next_timer) / period;
                self.next_timer += period * (missed + 1);
                self.pending_external = true;
            }
        }
        // Advance the modeled SoC's device clock to the retired-
        // instruction count — the one clock the interpreter oracle
        // reproduces exactly — then sample its interrupt line.
        // Level-triggered: the line is *not* latched into
        // `pending_external`; it stays asserted until the handler
        // acknowledges the device.
        let bus_line = self.mem.has_bus() && {
            self.mem.set_bus_time(self.stats.base_instrs);
            self.mem.bus_irq_level()
        };
        // Gated by the architected interrupt-enable state alone (clear
        // by default), so harnesses can take timer ticks while still
        // stopping at a final system call with vectored delivery off.
        // With no interrupt asserted this whole block is the same
        // single short-circuit test it always was; latency bookkeeping
        // only runs while one is pending.
        if self.pending_external || bus_line {
            if self.cpu.interrupts_enabled() {
                self.pending_external = false;
                self.stats.exceptions += 1;
                self.stats.interrupts_taken += 1;
                if self.last_exit_native {
                    self.native_yield_preempts += 1;
                }
                // Post-to-delivery latency, observed at boundaries: an
                // interrupt first seen here with interrupts *enabled*
                // is delivered at its observing boundary (latency 0);
                // one that had to wait measures from the boundary that
                // first saw it blocked.
                let posted = self.irq_posted_at.take().unwrap_or(self.stats.base_instrs);
                self.irq_latency.record(self.stats.base_instrs.saturating_sub(posted));
                let at = self.cpu.pc();
                if let Some(log) = &mut self.delivery_log {
                    log.push((self.stats.base_instrs, at));
                }
                self.vmm.tracer.emit(|| TraceEvent::ExternalInterrupt { pc: at });
                self.cpu.deliver(Exception::External, at);
            } else if self.irq_posted_at.is_none() {
                self.irq_posted_at = Some(self.stats.base_instrs);
            }
        }
        let pc = self.cpu.pc();
        // Pages on the bottom ladder rung bypass translation
        // entirely: the reference interpreter executes them (groups
        // never span pages, so page granularity is always sound).
        if self.ladder_engaged && self.interp_pages.contains(&(pc / self.vmm.cfg.page_size)) {
            self.pending_chain = None;
            self.last_exit_native = false;
            return Ok(self.interp_burst());
        }
        // Chained dispatch: follow the link installed on the
        // previous group's exit straight to the next translation,
        // bypassing the VMM. The `target == pc` guard keeps this
        // sound across interrupt delivery and externally swapped
        // CPU state; weak links make it sound across invalidation
        // (`handle_code_writes` above already dropped any
        // translation a store killed, so its links cannot upgrade).
        let pending = self.pending_chain.take();
        let mut chained: Option<Rc<GroupCode>> = None;
        // A direct link followed at this boundary, remembered so the
        // native tier can patch the same edge into a direct jump (only
        // under configurations where skipping the dispatcher between
        // these two groups is invisible — see `native_patching_ok`).
        let mut followed_edge: Option<(Rc<GroupCode>, usize)> = None;
        if self.chaining {
            match &pending {
                Some(PendingChain::Direct { from, slot, target }) if *target == pc => {
                    match from.follow_link(*slot) {
                        ChainLink::Live(code) => {
                            if self.native.is_some() {
                                followed_edge = Some((Rc::clone(from), *slot));
                            }
                            chained = Some(code);
                        }
                        ChainLink::Severed => {
                            self.stats.chain.severs += 1;
                            from.clear_link(*slot);
                            let from_entry = from.group.entry;
                            self.vmm
                                .tracer
                                .emit(|| TraceEvent::ChainSever { from: from_entry, target: pc });
                        }
                        ChainLink::Empty => {}
                    }
                }
                Some(PendingChain::Indirect { from, target }) if *target == pc => {
                    match from.icache_lookup(pc) {
                        Some((code, way)) => {
                            self.stats.chain.icache_hits += 1;
                            // Mirror the hit into `from`'s inline IBTC
                            // so the next indirect exit resolves
                            // without this dispatcher boundary (or
                            // drop the stale way if inline dispatch
                            // is currently unsafe).
                            let allowed = self.native_patching_ok();
                            if let Some(nt) = self.native.as_mut() {
                                nt.icache_sync(from, pc, way, Some(&code), allowed);
                            }
                            chained = Some(code);
                        }
                        None => self.stats.chain.icache_misses += 1,
                    }
                }
                _ => {}
            }
        }
        let was_chained = chained.is_some();
        let code = match chained {
            Some(code) => {
                self.stats.chain.chained_dispatches += 1;
                code
            }
            None => {
                self.stats.groups_entered += 1;
                let xlate_before = self
                    .guest_profile
                    .as_ref()
                    .map(|_| (self.vmm.stats.groups_translated, self.vmm.cost.instrs_scheduled));
                let code = self.vmm.entry_with_cpu(&mut self.mem, pc, Some(&self.cpu));
                // Feed any translation work this dispatch triggered
                // into the §4.2 overhead clock (first-touch vs
                // retranslation is classified by the clock itself).
                if let (Some(gp), Some((g0, i0))) = (&mut self.guest_profile, xlate_before) {
                    if self.vmm.stats.groups_translated > g0 {
                        gp.overhead_mut().note_translation(pc, self.vmm.cost.instrs_scheduled - i0);
                    }
                }
                if self.chaining {
                    match pending {
                        Some(PendingChain::Direct { from, slot, target }) if target == pc => {
                            from.install_link(slot, &code);
                            self.stats.chain.link_installs += 1;
                            let from_entry = from.group.entry;
                            self.vmm.tracer.emit(|| TraceEvent::ChainInstall {
                                from: from_entry,
                                to: pc,
                                indirect: false,
                            });
                        }
                        Some(PendingChain::Indirect { from, target }) if target == pc => {
                            let way = from.icache_install(pc, &code);
                            // The install overwrote a way: the inline
                            // IBTC must never keep an entry the
                            // dispatcher's icache no longer holds, so
                            // sync (install or invalidate) that way.
                            let allowed = self.native_patching_ok();
                            if let Some(nt) = self.native.as_mut() {
                                nt.icache_sync(&from, pc, way, Some(&code), allowed);
                            }
                            let from_entry = from.group.entry;
                            self.vmm.tracer.emit(|| TraceEvent::ChainInstall {
                                from: from_entry,
                                to: pc,
                                indirect: true,
                            });
                        }
                        _ => {}
                    }
                }
                code
            }
        };
        let profiled_before =
            self.profiler.as_ref().map(|_| (self.stats.vliws_executed, self.stats.stall_cycles));
        let guest_before =
            self.guest_profile.as_ref().map(|_| (self.stats.cycles(), self.stats.stall_cycles));
        // Snapshot for the recovery-retry path below: a dispatch whose
        // recovery cross-check fails is re-run in full one rung down,
        // so its base-instruction commits must not count twice.
        let base_instrs_before = self.stats.base_instrs;
        let mut rf = RegFile::new();
        self.cpu.fill_regfile(&mut rf);
        // Entries faulted down the ladder run on the reference tree
        // engine (the conservative rung also retranslated without
        // load speculation, upstream in the VMM).
        let default_rung = if self.native.is_some() { Rung::Native } else { Rung::Packed };
        let rung = if self.ladder_engaged {
            self.ladder.get(&code.group.entry).copied().unwrap_or(default_rung)
        } else {
            default_rung
        };
        // Native tier: compile-or-count the entry, enter compiled code,
        // and (where the dispatcher can be skipped invisibly) patch the
        // chain edge just followed into a direct native jump. A bailed
        // native run resumes the same group mid-node on the packed
        // engine with the architected-event trail reconstructed, so
        // everything downstream (recovery cross-check, exception
        // delivery, exit handling) is rung-oblivious. `run_from` names
        // the group that produced the exit — a chained native run may
        // end groups away from the dispatched one.
        let mut native_result: Option<(GroupExit, u32, Option<Rc<GroupCode>>)> = None;
        if rung == Rung::Native {
            let patching_ok = self.native_patching_ok();
            if let Some(nt) = self.native.as_mut() {
                nt.sync_epoch(
                    self.vmm.stats.invalidations,
                    self.vmm.stats.cast_outs,
                    self.vmm.stats.alias_retranslations,
                );
                if let Some(cg) =
                    nt.prepare(&code, self.vmm.cfg.page_size, &mut self.mem, &mut self.vmm.tracer)
                {
                    if patching_ok {
                        if let Some((pfrom, pslot)) = &followed_edge {
                            nt.try_patch(pfrom, *pslot, &code);
                        }
                    }
                    match nt.execute(
                        &cg,
                        &code,
                        &mut rf,
                        &mut self.mem,
                        &mut self.stats,
                        &mut self.scratch,
                    ) {
                        NativeRun::Done { exit, final_entry, final_code } => {
                            native_result = Some((exit, final_entry, final_code));
                        }
                        NativeRun::Resume { code: rcode, entry, point } => {
                            let exit = run_group_resume(
                                &rcode,
                                &mut rf,
                                &mut self.mem,
                                &mut self.cache,
                                &mut self.stats,
                                &mut self.scratch,
                                point,
                            );
                            native_result = Some((exit, entry, Some(rcode)));
                        }
                    }
                }
            }
        }
        self.last_exit_native = native_result.is_some();
        let (exit, run_entry, run_code) = match native_result {
            Some(r) => r,
            None => {
                let engine = match (
                    self.packed && matches!(rung, Rung::Packed | Rung::Native),
                    self.guest_profile.is_some(),
                ) {
                    (true, false) => run_group,
                    (true, true) => run_group_profiled,
                    (false, false) => run_group_tree,
                    (false, true) => run_group_tree_profiled,
                };
                let exit = engine(
                    &code,
                    &mut rf,
                    &mut self.mem,
                    &mut self.cache,
                    &mut self.stats,
                    &mut self.scratch,
                );
                (exit, code.group.entry, None)
            }
        };
        let from_page = run_entry / self.vmm.cfg.page_size;
        // §3.5 recovery cross-check, *before* committing the
        // register file: a failed check means the translation's
        // metadata cannot be trusted, and retrying the group one
        // rung down is sound exactly when no architected state was
        // mutated yet — registers are still in `rf`, and memory is
        // clean unless a store committed before the fault.
        if let GroupExit::Exception { base_addr, fault_idx, .. } = exit {
            if self.check_precise_recovery
                && self.recovery_cross_check(run_entry, base_addr, fault_idx)?
            {
                // Discard `rf`; architected state is untouched, so the
                // next step re-dispatches the same PC one rung down.
                // The retry re-executes (and re-counts) every base
                // instruction the aborted attempt committed — roll the
                // counter back so each executes-once instruction counts
                // once. Cycles stay: the failed attempt's time is real.
                self.stats.base_instrs = base_instrs_before;
                return Ok(None);
            }
        }
        self.cpu.write_back(&rf);

        // Guest-level attribution: distribute the dispatch's cycles,
        // stalls, and speculation waste over the guest PCs on its taken
        // path, from the retirement trace the profiled engine recorded.
        if let (Some(gp), Some((c0, s0))) = (&mut self.guest_profile, guest_before) {
            gp.record_dispatch(
                &code,
                &self.scratch.visited,
                self.stats.stall_cycles - s0,
                c0,
                self.stats.cycles() - c0,
            );
        }

        // Attribute this dispatch to the group's entry and promote
        // it to the hot tier when its dispatch count crosses the
        // configured threshold (profile-guided retranslation).
        let mut promoted = false;
        if let (Some(profiler), Some((v0, s0))) = (&mut self.profiler, profiled_before) {
            let entry = code.group.entry;
            profiler.record(
                entry,
                code.tier,
                was_chained,
                self.stats.vliws_executed - v0,
                self.stats.stall_cycles - s0,
            );
            if let Some(threshold) = self.hot_threshold {
                if code.tier == Tier::Cold
                    && !self.vmm.is_hot(entry)
                    && profiler.get(entry).is_some_and(|p| p.dispatches >= threshold)
                {
                    let dispatches = profiler.get(entry).map_or(0, |p| p.dispatches);
                    promoted = self.vmm.promote_hot(entry, dispatches);
                }
            }
        }

        match exit {
            GroupExit::Branch { target, via, slot } => {
                if target / self.vmm.cfg.page_size == from_page {
                    self.stats.onpage_dispatches += 1;
                } else {
                    match via {
                        None => self.stats.crosspage.direct += 1,
                        Some(IndirectVia::Lr) => self.stats.crosspage.via_lr += 1,
                        Some(IndirectVia::Ctr) => self.stats.crosspage.via_ctr += 1,
                    }
                }
                self.cpu.set_pc(target);
                if self.chaining {
                    // The slot was lowered into the packed exit at
                    // translation time — no exit-table search here. The
                    // link hangs off the group that produced the exit
                    // (for a chained native run, the final group).
                    let from = run_code.unwrap_or(code);
                    self.pending_chain = match via {
                        None => slot.map(|slot| PendingChain::Direct {
                            from: Rc::clone(&from),
                            slot,
                            target,
                        }),
                        Some(_) => Some(PendingChain::Indirect { from, target }),
                    };
                }
            }
            GroupExit::Interp { addr } => {
                self.cpu.set_pc(addr);
                if let Some(stop) = self.interp_service() {
                    return Ok(Some(stop));
                }
            }
            GroupExit::Mmio { addr } => {
                // A translated load/store reached a device window. The
                // engines bail *before* touching the device, with every
                // architected register exact at the accessing
                // instruction — re-execute it on the interpreter, which
                // routes the access through the bus at the precise
                // retired-instruction time.
                self.stats.mmio_ops += 1;
                self.vmm.tracer.emit(|| TraceEvent::MmioBail { addr });
                self.cpu.set_pc(addr);
                if let Some(stop) = self.interp_service() {
                    return Ok(Some(stop));
                }
            }
            GroupExit::CodeModified { addr } => {
                // §3.2: invalidate, then restart by re-interpreting
                // the modifying instruction (its store is
                // idempotent — same values to the same addresses).
                self.vmm.tracer.emit(|| TraceEvent::CodeModified { addr });
                self.handle_code_writes();
                self.cpu.set_pc(addr);
                // The group already counted the modifying store's
                // commit; its idempotent re-interpretation must not
                // count the instruction a second time (the interpreter
                // cycle stays — the service time is real).
                let base_before = self.stats.base_instrs;
                let stop = self.interp_one();
                if self.stats.base_instrs > base_before {
                    self.stats.base_instrs -= 1;
                }
                if let Some(stop) = stop {
                    return Ok(Some(stop));
                }
            }
            GroupExit::Exception { kind, base_addr, fault_idx: _ } => {
                self.stats.exceptions += 1;
                self.vmm.tracer.emit(|| TraceEvent::Exception {
                    class: match kind {
                        ExcKind::Dsi { write: true, .. } => ExcClass::StoreFault,
                        ExcKind::Dsi { write: false, .. } => ExcClass::LoadFault,
                        ExcKind::Trap => ExcClass::Trap,
                    },
                    base_addr,
                });
                if !self.cpu.vectored() {
                    return Ok(Some(match kind {
                        ExcKind::Dsi { addr, write } => {
                            self.cpu.record_data_fault(addr, write);
                            StopReason::StorageFault { addr, write, fetch: false }
                        }
                        ExcKind::Trap => StopReason::Trap,
                    }));
                }
                match kind {
                    ExcKind::Dsi { addr, write } => {
                        // §3.3's example: fault registers, then
                        // save/restore state and the guest's own
                        // data-storage vector.
                        self.cpu.deliver(Exception::Data { addr, write }, base_addr);
                    }
                    ExcKind::Trap => self.cpu.deliver(Exception::Trap, base_addr),
                }
            }
            GroupExit::AliasRestart { addr } => {
                // Re-commence from the point of the load; the fresh
                // dispatch re-executes it after the aliasing store.
                // Repeated offenders may trigger a conservative
                // retranslation of their entry point. Attribute the
                // restart to the group whose verify failed — for a
                // chained native run that is the bailed group, not the
                // dispatched one (matching what the packed engine
                // reports when it dispatches that group directly).
                let entry = run_entry;
                self.vmm.tracer.emit(|| TraceEvent::AliasRestart { entry, addr });
                self.vmm.note_alias_restart(entry);
                self.cpu.set_pc(addr);
            }
        }
        if promoted {
            // The promoted entry's cold translation may still be
            // reachable through a pending chain whose `from` is the
            // group we just ran (a self-loop keeps itself alive via
            // the strong reference in the pending link, so the weak
            // auto-sever never fires). Dropping the pending link
            // forces the next dispatch through the VMM, which
            // rebuilds the entry under the hot tier.
            self.pending_chain = None;
        }
        Ok(None)
    }

    /// §3.5 recovery cross-check on an exception exit, run *before* the
    /// register file commits. Returns `Ok(true)` when the translation's
    /// metadata failed the check but the group can soundly retry one
    /// rung down (no store had committed, and a rung was left);
    /// `Ok(false)` when the check passed.
    ///
    /// Outlined and cold: the hot dispatch path only pays the call on
    /// exception exits, and only with `check_precise_recovery` on.
    #[cold]
    #[inline(never)]
    fn recovery_cross_check(
        &mut self,
        entry: u32,
        base_addr: u32,
        fault_idx: usize,
    ) -> Result<bool, DaisyError> {
        let events = &self.scratch.events;
        let n = fault_idx.min(events.len());
        let checked = precise::recover::<I>(&self.mem, entry, &events[..n], fault_idx);
        let mismatch = match checked {
            Ok(recovered) if recovered == base_addr => None,
            Ok(recovered) => Some(RecoverError {
                message: format!("recovered {recovered:#x} but engine reports {base_addr:#x}"),
            }),
            Err(err) => Some(err),
        };
        let Some(err) = mismatch else { return Ok(false) };
        // Retrying is sound exactly when no architected state was
        // mutated yet — registers are still in the discarded `rf`, and
        // memory is clean unless a store committed before the fault.
        let stores_committed = events[..n].iter().any(|e| matches!(e, ArchEvent::Store));
        if !stores_committed && self.degrade(entry, DegradeCause::RecoveryMismatch).is_some() {
            return Ok(true);
        }
        Err(DaisyError::Recovery { entry, source: err })
    }

    /// Steps `entry` one rung down the graceful-degradation ladder (see
    /// [`crate::error`]), recording the transition in
    /// [`DaisySystem::degradations`] and emitting it as
    /// [`TraceEvent::Degraded`]. Returns `None` — and changes nothing —
    /// when the entry is already at the bottom rung.
    pub fn degrade(&mut self, entry: u32, cause: DegradeCause) -> Option<Degradation> {
        self.ladder_engaged = true;
        let from = self.rung(entry);
        let to = from.next_down()?;
        self.ladder.insert(entry, to);
        match to {
            Rung::Tree => {}
            Rung::Conservative => {
                // Drop the entry's translation; the next dispatch
                // rebuilds it with load speculation inhibited.
                self.vmm.force_conservative(entry);
            }
            Rung::Interpret => {
                // Abandon the whole page to the reference interpreter.
                self.interp_pages.insert(entry / self.vmm.cfg.page_size);
                self.vmm.drop_page_of(entry);
            }
            // Native→Packed: nothing to rebuild — the ladder entry
            // alone routes the entry to the packed engine, and the
            // flush below retires its compiled body.
            Rung::Packed => {}
            // invariant: next_down never yields the top rung.
            Rung::Native => {}
        }
        // Any step down retires the native tier's compiled code and
        // severs its patched edges: a patched chain could otherwise
        // carry execution natively *through* a degraded entry without
        // consulting the ladder. Engaging the ladder also disables
        // future patching, so boundaries stay visible from here on.
        if let Some(nt) = self.native.as_mut() {
            nt.flush();
        }
        // The pending chain may target a translation the step above
        // just dropped, or carry execution past the ladder check.
        self.pending_chain = None;
        let d = Degradation { entry, from, to, cause };
        self.vmm.record_degradation(d);
        // Auto-dump: every ladder step captures a post-mortem from the
        // always-on flight recorder (the `Degraded` event just emitted
        // is the ring's newest entry), replacing the previous one so
        // [`DaisySystem::post_mortem`] always shows the latest — whose
        // chain ends with the full degradation history.
        self.last_post_mortem =
            Some(Box::new(self.build_post_mortem(format!("ladder degradation: {d}"))));
        Some(d)
    }

    /// Gathers a [`MetricsSnapshot`] directly from the system's
    /// counters, bypassing the registry: exact at any group boundary
    /// regardless of the publish cadence, and available with metrics
    /// publication off.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut rung_entries = [0u64; Rung::ALL.len()];
        for r in self.ladder.values() {
            rung_entries[r.index()] += 1;
        }
        MetricsSnapshot::gather(&MetricsSource {
            stats: &self.stats,
            vmm: &self.vmm.stats,
            native: self.native.as_ref().map(|nt| &nt.stats),
            degradations: self.vmm.degradations(),
            rung_entries,
            live_pages: self.vmm.live_pages() as u64,
            live_groups: self.vmm.live_groups() as u64,
            interp_pages: self.interp_pages.len() as u64,
            native_yield_preempts: self.native_yield_preempts,
            irq_latency: &self.irq_latency,
            flight_dropped: self.vmm.tracer.recorder.dropped(),
        })
    }

    /// Publishes a fresh snapshot into the registry immediately and
    /// re-arms the cadence countdown. A no-op without a registry.
    ///
    /// Outlined and cold: `step` only pays the call on the publish
    /// cadence, never on the per-boundary path.
    #[cold]
    #[inline(never)]
    pub fn publish_metrics_now(&mut self) {
        self.metrics_countdown = self.metrics_period;
        if self.metrics.is_some() {
            let snap = self.metrics_snapshot();
            if let Some(reg) = &self.metrics {
                reg.publish(&snap);
            }
        }
    }

    /// The registry this system publishes into, when metrics are
    /// enabled. Clone it to read snapshots elsewhere while the system
    /// runs.
    pub fn metrics_registry(&self) -> Option<&MetricsRegistry> {
        self.metrics.as_ref()
    }

    /// The always-on flight recorder (ring of recent trace events).
    pub fn flight_recorder(&self) -> &FlightRecorder {
        &self.vmm.tracer.recorder
    }

    /// The latest automatic post-mortem, captured when the ladder last
    /// degraded. `None` on the happy path.
    pub fn post_mortem(&self) -> Option<&PostMortem> {
        self.last_post_mortem.as_deref()
    }

    /// Takes ownership of the latest automatic post-mortem, leaving
    /// `None` (fault-injection outcomes carry it out this way).
    pub fn take_post_mortem(&mut self) -> Option<PostMortem> {
        self.last_post_mortem.take().map(|b| *b)
    }

    /// Builds a post-mortem on request — same structure as the
    /// automatic ladder dump, with the caller's `reason`.
    pub fn request_post_mortem(&self, reason: &str) -> PostMortem {
        self.build_post_mortem(reason.to_string())
    }

    fn build_post_mortem(&self, reason: String) -> PostMortem {
        PostMortem {
            reason,
            events: self.vmm.tracer.recorder.events(),
            dropped: self.vmm.tracer.recorder.dropped(),
            chain: self.vmm.degradations().to_vec(),
            snapshot: self.metrics_snapshot(),
        }
    }

    /// The ladder rung `entry` currently executes at ([`Rung::Native`]
    /// with the native tier present, [`Rung::Packed`] otherwise, unless
    /// it was degraded; every entry on an interpret-rung page reports
    /// [`Rung::Interpret`]).
    pub fn rung(&self, entry: u32) -> Rung {
        if !self.interp_pages.is_empty()
            && self.interp_pages.contains(&(entry / self.vmm.cfg.page_size))
        {
            return Rung::Interpret;
        }
        let default_rung = if self.native.is_some() { Rung::Native } else { Rung::Packed };
        self.ladder.get(&entry).copied().unwrap_or(default_rung)
    }

    /// Whether the native host-code tier is active (enabled through the
    /// builder *and* supported by this host and configuration).
    pub fn native_enabled(&self) -> bool {
        self.native.is_some()
    }

    /// The native tier's own counters (compiles, refusals, bails,
    /// patched edges…), when the tier is active. The *architectural*
    /// counters of native runs land in [`DaisySystem::stats`], exactly
    /// where packed execution puts them.
    pub fn native_stats(&self) -> Option<NativeStats> {
        self.native.as_ref().map(|nt| nt.stats)
    }

    /// Whether chain edges between compiled native groups may be
    /// patched into direct jumps. Patching removes the dispatcher
    /// boundary between the linked groups, so it is only sound when
    /// nothing observes that boundary: no per-group profiler, no guest
    /// profile, no timer (interrupts are taken at boundaries), and no
    /// engaged degradation ladder (rung checks happen at boundaries).
    /// In every other configuration native groups still run one group
    /// per dispatch, which preserves boundary-exact behaviour.
    fn native_patching_ok(&self) -> bool {
        self.chaining
            && self.profiler.is_none()
            && self.guest_profile.is_none()
            && self.timer_period.is_none()
            && !self.mem.has_bus()
            && !self.ladder_engaged
    }

    /// Every ladder step taken this run, in order.
    pub fn degradations(&self) -> &[Degradation] {
        self.vmm.degradations()
    }

    /// The recorded delivery schedule, when
    /// [`DaisySystemBuilder::record_deliveries`] was enabled: one
    /// `(retired guest instructions, PC)` pair per external interrupt
    /// delivered, in delivery order. The instruction counts are
    /// strictly increasing — delivery clears the architected
    /// interrupt-enable bit, and re-enabling retires at least the
    /// interrupt return.
    pub fn delivery_log(&self) -> Option<&[(u64, u32)]> {
        self.delivery_log.as_deref()
    }

    /// External interrupts that preempted the guest at a boundary a
    /// native-tier run produced (direct exits and rerolled back-edge
    /// yields alike).
    pub fn native_yield_preempts(&self) -> u64 {
        self.native_yield_preempts
    }

    /// Severs every chain link in the system: all outbound links and
    /// inline indirect caches of live translations, plus any pending
    /// chain from the previous group's exit. Execution recovers through
    /// the VMM on every cut edge (fault injection's chain-sever
    /// campaigns exercise exactly this).
    pub fn sever_chains(&mut self) {
        self.pending_chain = None;
        // Patched native edges mirror installed links; cutting the
        // links must cut the native jumps too, or a patched chain
        // would carry execution across an edge the Rust side believes
        // severed.
        if let Some(nt) = self.native.as_mut() {
            nt.flush();
        }
        self.vmm.sever_all_links();
    }

    /// Runs the reference interpreter for one bounded burst on the
    /// current interpret-rung page, returning early when control leaves
    /// the page (the next step re-checks the ladder). The bound keeps
    /// interrupt delivery and the run budget at group-boundary
    /// granularity even for fully interpreted pages.
    fn interp_burst(&mut self) -> Option<StopReason> {
        let page_size = self.vmm.cfg.page_size;
        let page = self.cpu.pc() / page_size;
        for _ in 0..128 {
            if self.cpu.pc() / page_size != page {
                return None;
            }
            if let Some(stop) = self.interp_one() {
                return Some(stop);
            }
        }
        None
    }

    /// Interprets exactly one instruction, handling its events. Returns
    /// a stop reason when execution cannot continue.
    fn interp_one(&mut self) -> Option<StopReason> {
        // MMIO accesses interpret here; the device observes the
        // retired-instruction clock as of *before* this instruction —
        // exactly what an oracle stepping `instret` sees.
        if self.mem.has_bus() {
            self.mem.set_bus_time(self.stats.base_instrs);
        }
        let insn = match self.cpu.fetch(&self.mem) {
            Ok(i) => i,
            Err(_) => {
                return Some(StopReason::StorageFault {
                    addr: self.cpu.pc(),
                    write: false,
                    fetch: true,
                })
            }
        };
        let ev = self.cpu.execute(&mut self.mem, insn);
        if matches!(ev, Event::Continue | Event::Syscall) {
            self.stats.interp_instrs += 1;
            self.stats.base_instrs += 1;
        }
        if ev == Event::Continue {
            if I::ends_interp_window(&insn) {
                // §3.4: after an interrupt return, interpret until the
                // next subroutine call, cross-page branch, or backward
                // branch, to limit entry-point creation.
                return self.interp_window();
            }
            return None;
        }
        self.cpu.handle_event(ev)
    }

    /// One VMM interpreter service: execute the instruction the group
    /// deferred (system call, interrupt return, privileged,
    /// unsupported).
    fn interp_service(&mut self) -> Option<StopReason> {
        self.interp_one()
    }

    /// Post-interrupt-return interpretation window (§3.4).
    fn interp_window(&mut self) -> Option<StopReason> {
        for _ in 0..256 {
            let pc = self.cpu.pc();
            let insn = match self.cpu.fetch(&self.mem) {
                Ok(i) => i,
                Err(_) => {
                    return Some(StopReason::StorageFault { addr: pc, write: false, fetch: true })
                }
            };
            // Boundary test: subroutine call, cross-page branch, or
            // backward branch ends interpretation (after executing it).
            let boundary = I::branch_info(&insn, pc).map(|info| {
                info.links
                    || match info.kind {
                        BranchKind::Direct(t) => {
                            t <= pc || t / self.vmm.cfg.page_size != pc / self.vmm.cfg.page_size
                        }
                        BranchKind::ViaLr | BranchKind::ViaCtr => true,
                    }
            });
            if let Some(stop) = self.interp_one_decoded(insn) {
                return Some(stop);
            }
            if boundary == Some(true) {
                break;
            }
        }
        None
    }

    fn interp_one_decoded(&mut self, insn: I::Insn) -> Option<StopReason> {
        if self.mem.has_bus() {
            self.mem.set_bus_time(self.stats.base_instrs);
        }
        let ev = self.cpu.execute(&mut self.mem, insn);
        if matches!(ev, Event::Continue | Event::Syscall) {
            self.stats.interp_instrs += 1;
            self.stats.base_instrs += 1;
        }
        // Unlike `interp_one`, traps, program exceptions and fetch
        // faults inside the post-interrupt-return window always stop
        // the run; system calls and data faults follow the guest's
        // vectored-delivery rules.
        match ev {
            Event::Continue => None,
            Event::Trap => Some(StopReason::Trap),
            Event::Program => Some(StopReason::Program),
            Event::Isi => {
                Some(StopReason::StorageFault { addr: self.cpu.pc(), write: false, fetch: true })
            }
            ev => self.cpu.handle_event(ev),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_ppc::asm::Asm;
    use daisy_ppc::reg::Gpr;
    use daisy_ppc::{vectors, Cpu, Insn, PpcIsa};

    fn run_program(build: impl FnOnce(&mut Asm)) -> (DaisySystem<PpcIsa>, StopReason) {
        let mut a = Asm::new(0x1000);
        build(&mut a);
        let prog = a.finish().unwrap();
        let mut sys = DaisySystem::<PpcIsa>::new(0x40000);
        sys.load(&prog).unwrap();
        let stop = sys.run(10_000_000).unwrap();
        (sys, stop)
    }

    /// Runs the same program on the reference interpreter and asserts
    /// identical final architected state.
    fn check_against_interpreter(build: impl Fn(&mut Asm)) -> DaisySystem<PpcIsa> {
        let (sys, stop) = run_program(&build);

        let mut a = Asm::new(0x1000);
        build(&mut a);
        let prog = a.finish().unwrap();
        let mut mem = Memory::new(0x40000);
        prog.load_into(&mut mem).unwrap();
        let mut cpu = Cpu::new(prog.entry);
        let ref_stop = cpu.run(&mut mem, 100_000_000).unwrap();

        assert_eq!(stop, ref_stop, "stop reasons must agree");
        assert_eq!(sys.cpu.gpr, cpu.gpr, "GPR state must agree");
        assert_eq!(sys.cpu.cr, cpu.cr, "CR must agree");
        assert_eq!(sys.cpu.lr, cpu.lr, "LR must agree");
        assert_eq!(sys.cpu.ctr, cpu.ctr, "CTR must agree");
        assert_eq!(sys.cpu.pc, cpu.pc, "PC must agree");
        sys
    }

    #[test]
    fn quickstart_runs() {
        let (sys, stop) = run_program(|a| {
            a.li(Gpr(3), 21);
            a.add(Gpr(3), Gpr(3), Gpr(3));
            a.sc();
        });
        assert_eq!(stop, StopReason::Syscall);
        assert_eq!(sys.cpu.gpr[3], 42);
        assert!(sys.stats.vliws_executed >= 1);
    }

    #[test]
    fn loop_matches_interpreter() {
        check_against_interpreter(|a| {
            a.li(Gpr(3), 0);
            a.li(Gpr(4), 100);
            a.mtctr(Gpr(4));
            a.label("loop");
            a.addi(Gpr(3), Gpr(3), 7);
            a.bdnz("loop");
            a.sc();
        });
    }

    #[test]
    fn calls_and_memory_match_interpreter() {
        check_against_interpreter(|a| {
            a.li32(Gpr(1), 0x9000);
            a.li(Gpr(3), 5);
            a.bl("store_sq");
            a.li(Gpr(3), 9);
            a.bl("store_sq");
            a.lwz(Gpr(6), 0, Gpr(1));
            a.sc();
            a.label("store_sq");
            a.mullw(Gpr(4), Gpr(3), Gpr(3));
            a.stw(Gpr(4), 0, Gpr(1));
            a.addi(Gpr(1), Gpr(1), 4);
            a.blr();
        });
    }

    #[test]
    fn self_modifying_code_is_retranslated() {
        // The program overwrites the instruction at `patch` (li r5,1)
        // with `li r5,99`, then executes it — both on the same page.
        let (sys, stop) = run_program(|a| {
            // Build the encoding of "li r5,99" in r4.
            a.li32(Gpr(4), daisy_ppc::encode(&Insn::Addi { rt: Gpr(5), ra: Gpr(0), si: 99 }));
            a.la(Gpr(3), "patch");
            a.stw(Gpr(4), 0, Gpr(3)); // modifies code!
            a.label("patch");
            a.li(Gpr(5), 1);
            a.sc();
        });
        assert_eq!(stop, StopReason::Syscall);
        assert_eq!(sys.cpu.gpr[5], 99, "modified instruction must execute");
        assert!(sys.stats.code_modifications >= 1);
        assert!(sys.vmm.stats.invalidations >= 1);
    }

    #[test]
    fn precise_exception_reported_with_faulting_address() {
        let (sys, stop) = run_program(|a| {
            a.li(Gpr(3), 1); // completes
            a.li32(Gpr(9), 0x00F0_0000);
            a.lwz(Gpr(5), 8, Gpr(9)); // faults
            a.li(Gpr(3), 2); // must not complete
            a.sc();
        });
        assert_eq!(
            stop,
            StopReason::StorageFault { addr: 0x00F0_0008, write: false, fetch: false }
        );
        assert_eq!(sys.cpu.gpr[3], 1, "state precise at the faulting load");
        assert_eq!(sys.cpu.dar, 0x00F0_0008);
        assert_eq!(sys.stats.exceptions, 1);
    }

    #[test]
    fn vectored_dsi_reaches_emulated_os_handler() {
        let mut a = Asm::new(0x1000);
        a.li32(Gpr(9), 0x00F0_0000);
        a.lwz(Gpr(5), 0, Gpr(9)); // faults → handler
        a.label("after");
        a.sc();
        let prog = a.finish().unwrap();

        // A tiny "OS": the DSI handler at 0x300 records DAR into r7 and
        // returns past the faulting instruction.
        let mut os = Asm::new(vectors::DSI);
        os.emit(Insn::Mfspr { rt: Gpr(7), spr: daisy_ppc::reg::Spr::Dar });
        os.emit(Insn::Mfspr { rt: Gpr(8), spr: daisy_ppc::reg::Spr::Srr0 });
        os.addi(Gpr(8), Gpr(8), 4);
        os.emit(Insn::Mtspr { spr: daisy_ppc::reg::Spr::Srr0, rs: Gpr(8) });
        os.rfi();
        let os_prog = os.finish().unwrap();

        let mut sys = DaisySystem::<PpcIsa>::new(0x40000);
        sys.load(&prog).unwrap();
        os_prog.load_into(&mut sys.mem).unwrap();
        sys.cpu.vectored = true;
        let stop = sys.run(1_000_000).unwrap();
        // The final sc vectors to 0xC00 where memory is zero (invalid)
        // → program stop; what matters is the handler ran.
        let _ = stop;
        assert_eq!(sys.cpu.gpr[7], 0x00F0_0000, "handler saw DAR");
        assert_eq!(sys.cpu.gpr[8], prog.addr_of("after"));
    }

    #[test]
    fn indirect_branches_count_by_type() {
        let (sys, _) = run_program(|a| {
            a.la(Gpr(4), "faraway");
            a.mtctr(Gpr(4));
            a.bctr();
            // Force the target onto another page.
            for _ in 0..1100 {
                a.nop();
            }
            a.label("faraway");
            a.sc();
        });
        assert_eq!(sys.stats.crosspage.via_ctr, 1);
    }

    #[test]
    fn timer_ticks_on_fixed_cadence() {
        // Every timer re-arm must land on the fixed grid (a multiple
        // of the period), no matter how far a long group overshot the
        // previous deadline — and overshooting several periods yields
        // one tick, not a burst. This pins against the drifting re-arm
        // `next_timer = cycles() + period`, which re-phases at every
        // tick and (with a prime period) lands off-grid almost surely.
        let mut a = Asm::new(0x1000);
        a.li(Gpr(3), 0);
        a.li(Gpr(4), 2000);
        a.mtctr(Gpr(4));
        a.label("loop");
        a.addi(Gpr(3), Gpr(3), 1);
        a.bdnz("loop");
        a.sc();
        let prog = a.finish().unwrap();

        let period = 997;
        let mut sys =
            DaisySystem::<PpcIsa>::builder().mem_size(0x40000).timer_period(period).build();
        sys.load(&prog).unwrap();
        let _ = sys.mem.write_u32(PpcIsa::external_vector(), PpcIsa::interrupt_return_word());
        sys.cpu.enable_interrupts();
        let stop = sys.run(1_000_000).unwrap();
        assert_eq!(stop, StopReason::Syscall);
        assert!(sys.stats.interrupts_taken >= 2, "timer must fire repeatedly");
        assert_eq!(sys.next_timer % period, 0, "re-arm must stay on the fixed grid");
    }

    #[test]
    fn posted_interrupt_survives_ladder_degradation() {
        // An interrupt posted mid-run must survive degradation steps
        // and the retry they force: delivered exactly once — never
        // dropped, never doubled. Degradation flushes translations,
        // native code, and chains, but interrupt state is the guest's.
        let mut a = Asm::new(0x1000);
        a.li(Gpr(3), 0);
        a.li(Gpr(4), 400);
        a.mtctr(Gpr(4));
        a.label("loop");
        a.addi(Gpr(3), Gpr(3), 1);
        a.bdnz("loop");
        a.sc();
        let prog = a.finish().unwrap();

        let mut sys = DaisySystem::<PpcIsa>::new(0x40000);
        sys.load(&prog).unwrap();
        let _ = sys.mem.write_u32(PpcIsa::external_vector(), PpcIsa::interrupt_return_word());
        let entry = prog.addr_of("loop");
        let mut steps = 0u64;
        let stop = loop {
            if steps == 3 {
                // Post while interrupts are disabled, then knock the
                // hot loop down the ladder twice with the post still
                // pending.
                sys.post_external_interrupt();
                sys.degrade(entry, DegradeCause::Forced);
                sys.degrade(entry, DegradeCause::Forced);
                assert_eq!(sys.stats.interrupts_taken, 0, "EE clear: not deliverable yet");
                sys.cpu.enable_interrupts();
            }
            if let Some(stop) = sys.step().unwrap() {
                break stop;
            }
            steps += 1;
            assert!(steps < 1_000_000, "runaway");
        };
        assert_eq!(stop, StopReason::Syscall);
        assert_eq!(sys.stats.interrupts_taken, 1, "delivered exactly once");
        assert!(sys.degradations().len() >= 2, "the ladder really stepped");
        assert_eq!(sys.cpu.gpr[3], 400, "loop result intact across degrade + preempt");
    }

    /// Minimal MMIO device for bail-path tests: a write latches a
    /// value, a read returns it plus the register offset.
    #[derive(Debug, Clone, Default)]
    struct Latch {
        last: u32,
        reads: u32,
        writes: u32,
    }

    impl daisy_isa::mem::Bus for Latch {
        fn read(&mut self, _now: u64, offset: u32, _width: u32) -> u32 {
            self.reads += 1;
            self.last.wrapping_add(offset)
        }
        fn write(&mut self, _now: u64, _offset: u32, _width: u32, value: u32) {
            self.writes += 1;
            self.last = value;
        }
        fn irq_level(&mut self, _now: u64) -> bool {
            false
        }
        fn snapshot(&mut self, _now: u64) -> Vec<u8> {
            let mut v = self.last.to_be_bytes().to_vec();
            v.extend([self.reads as u8, self.writes as u8]);
            v
        }
        fn clone_box(&self) -> Box<dyn daisy_isa::mem::Bus> {
            Box::new(self.clone())
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn mmio_accesses_bail_to_the_interpreter() {
        // A translated load/store that reaches the device window must
        // bail pre-side-effect and re-execute on the interpreter: the
        // device sees each access exactly once, on both the packed and
        // tree tiers, and `mmio_ops` counts each bail.
        let mut a = Asm::new(0x1000);
        a.li32(Gpr(9), 0x2000_0000);
        a.li(Gpr(5), 77);
        a.stw(Gpr(5), 0, Gpr(9)); // MMIO store
        a.lwz(Gpr(3), 4, Gpr(9)); // MMIO load: 77 + 4
        a.addi(Gpr(3), Gpr(3), 1);
        a.sc();
        let prog = a.finish().unwrap();

        for packed in [true, false] {
            let mut sys =
                DaisySystem::<PpcIsa>::builder().mem_size(0x40000).packed_execution(packed).build();
            sys.mem.attach_bus(0x2000_0000, 0x100, Box::new(Latch::default()));
            sys.load(&prog).unwrap();
            let stop = sys.run(1_000_000).unwrap();
            assert_eq!(stop, StopReason::Syscall, "packed={packed}");
            assert_eq!(sys.cpu.gpr[3], 82, "store then load through the device");
            assert_eq!(sys.stats.mmio_ops, 2, "one bail per device access");
            let dev = sys
                .mem
                .with_bus(|_, dev| {
                    let latch = dev.as_any_mut().downcast_mut::<Latch>().unwrap();
                    (latch.reads, latch.writes)
                })
                .unwrap();
            assert_eq!(dev, (1, 1), "device saw each access exactly once");
        }
    }
}
