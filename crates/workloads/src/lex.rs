//! `lex` — a table-driven DFA tokenizer over synthetic source text,
//! standing in for the AIX `lex` utility measured in the paper. The
//! kernel is the classic scanner inner loop: classify the byte, index
//! the transition table, count token boundaries.

use crate::{source_text, Workload};
use daisy_ppc::asm::{Asm, Program};
use daisy_ppc::interp::Cpu;
use daisy_ppc::mem::Memory;
use daisy_ppc::reg::{CrField, Gpr};

const TEXT: u32 = 0x3_0000;
const CLASS: u32 = 0x4_8000;
const TRANS: u32 = 0x4_9000;
const LEN: usize = 40 * 1024;
const SEED: u32 = 0x1E8A_77C3;

/// Character classes.
const CL_LETTER: u8 = 0;
const CL_DIGIT: u8 = 1;
const CL_SPACE: u8 = 2;
const CL_NEWLINE: u8 = 3;
const CL_PUNCT: u8 = 4;
/// Number of character classes (must fit the 8-byte table stride).
pub const NUM_CLASSES: usize = 5;

/// DFA states (low 7 bits); bit 0x80 marks "a token just ended".
const ST_START: u8 = 0;
const ST_IDENT: u8 = 1;
const ST_NUMBER: u8 = 2;
const EMIT: u8 = 0x80;

/// The byte→class table.
pub fn class_table() -> [u8; 256] {
    let mut t = [CL_PUNCT; 256];
    for c in b'a'..=b'z' {
        t[c as usize] = CL_LETTER;
    }
    for c in b'A'..=b'Z' {
        t[c as usize] = CL_LETTER;
    }
    t[b'_' as usize] = CL_LETTER;
    for c in b'0'..=b'9' {
        t[c as usize] = CL_DIGIT;
    }
    t[b' ' as usize] = CL_SPACE;
    t[b'\t' as usize] = CL_SPACE;
    t[b'\n' as usize] = CL_NEWLINE;
    t
}

/// The state-transition table, 8-byte stride per state.
pub fn trans_table() -> [u8; 3 * 8] {
    let mut t = [0u8; 3 * 8];
    let set = |t: &mut [u8], s: u8, c: u8, v: u8| t[s as usize * 8 + c as usize] = v;
    // start
    set(&mut t, ST_START, CL_LETTER, ST_IDENT);
    set(&mut t, ST_START, CL_DIGIT, ST_NUMBER);
    set(&mut t, ST_START, CL_SPACE, ST_START);
    set(&mut t, ST_START, CL_NEWLINE, ST_START);
    set(&mut t, ST_START, CL_PUNCT, ST_START | EMIT); // punct is a token
                                                      // identifier
    set(&mut t, ST_IDENT, CL_LETTER, ST_IDENT);
    set(&mut t, ST_IDENT, CL_DIGIT, ST_IDENT);
    set(&mut t, ST_IDENT, CL_SPACE, ST_START | EMIT);
    set(&mut t, ST_IDENT, CL_NEWLINE, ST_START | EMIT);
    set(&mut t, ST_IDENT, CL_PUNCT, ST_START | EMIT);
    // number
    set(&mut t, ST_NUMBER, CL_LETTER, ST_NUMBER); // suffixes stay numeric
    set(&mut t, ST_NUMBER, CL_DIGIT, ST_NUMBER);
    set(&mut t, ST_NUMBER, CL_SPACE, ST_START | EMIT);
    set(&mut t, ST_NUMBER, CL_NEWLINE, ST_START | EMIT);
    set(&mut t, ST_NUMBER, CL_PUNCT, ST_START | EMIT);
    t
}

fn build() -> Program {
    let mut a = Asm::new(0x1000);
    let cr = CrField(0);
    let cr1 = CrField(1);
    let (tokens, chk, state, clsum, i, c, cls, idx, tmp) =
        (Gpr(3), Gpr(4), Gpr(5), Gpr(6), Gpr(7), Gpr(8), Gpr(9), Gpr(10), Gpr(11));
    let (inbase, len, clbase, trbase) = (Gpr(14), Gpr(15), Gpr(16), Gpr(17));

    a.li(tokens, 0);
    a.li(chk, 0);
    a.li(clsum, 0);
    a.li(state, i16::from(ST_START));
    a.li(i, 0);
    a.li32(inbase, TEXT);
    a.li32(len, LEN as u32);
    a.li32(clbase, CLASS);
    a.li32(trbase, TRANS);

    a.label("loop");
    a.lbzx(c, inbase, i);
    a.lbzx(cls, clbase, c);
    // Lexeme bookkeeping off the critical state chain, as real lex's
    // yytext copying and line accounting would be.
    a.rlwinm(chk, chk, 1, 0, 31);
    a.xor(chk, chk, c);
    a.add(clsum, clsum, cls);
    a.slwi(idx, state, 3);
    a.add(idx, idx, cls);
    a.lbzx(state, trbase, idx);
    a.andi_(tmp, state, u16::from(EMIT));
    a.beq(cr, "nocount");
    a.addi(tokens, tokens, 1);
    a.clrlwi(state, state, 25);
    a.label("nocount");
    a.addi(i, i, 1);
    a.cmpw(cr1, i, len);
    a.blt(cr1, "loop");
    a.sc();

    a.data(TEXT, &source_text(LEN, SEED));
    a.data(CLASS, &class_table());
    a.data(TRANS, &trans_table());
    a.finish().expect("lex assembles")
}

/// Rust recomputation of `(tokens, checksum, class sum)`.
pub fn expected() -> (u32, u32, u32) {
    let text = source_text(LEN, SEED);
    let classes = class_table();
    let trans = trans_table();
    let mut state = ST_START;
    let (mut tokens, mut chk, mut clsum) = (0u32, 0u32, 0u32);
    for &c in &text {
        let cls = classes[c as usize];
        chk = chk.rotate_left(1) ^ u32::from(c);
        clsum = clsum.wrapping_add(u32::from(cls));
        state = trans[state as usize * 8 + cls as usize];
        if state & EMIT != 0 {
            tokens += 1;
            state &= 0x7F;
        }
    }
    (tokens, chk, clsum)
}

fn check(cpu: &Cpu, _mem: &Memory) -> Result<(), String> {
    let (tokens, chk, clsum) = expected();
    if (cpu.gpr[3], cpu.gpr[4], cpu.gpr[6]) == (tokens, chk, clsum) {
        Ok(())
    } else {
        Err(format!(
            "lex: got ({}, {:#x}, {}), want ({tokens}, {chk:#x}, {clsum})",
            cpu.gpr[3], cpu.gpr[4], cpu.gpr[6]
        ))
    }
}

/// The workload descriptor.
pub fn workload() -> Workload {
    Workload { name: "lex", mem_size: 0x6_0000, max_instrs: 10_000_000, build, check }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_classes_fit_stride() {
        const { assert!(NUM_CLASSES <= 8) };
    }
}
