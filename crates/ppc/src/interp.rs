//! Reference interpreter for the PowerPC base architecture.
//!
//! The interpreter serves three roles in the reproduction:
//!
//! 1. **Semantics oracle** — DAISY-translated execution must leave the
//!    architected state (GPRs, CR, LR, CTR, XER, memory) exactly as this
//!    interpreter does; the integration tests diff the two.
//! 2. **Trace generator** — the oracle-parallelism study (paper Ch. 6)
//!    and the traditional-compiler baseline profile runs consume traces
//!    produced by [`Cpu::run_traced`].
//! 3. **Interpretive fallback** — the VMM interprets a few instructions
//!    after `rfi` instead of creating new entry points (paper §3.4), and
//!    this is the interpreter it uses.

use crate::decode::{decode, DecodeCache};
use crate::insn::{
    bo, Arith2Op, ArithOp, CrOp, Insn, LogicImmOp, LogicOp, MemWidth, ShiftOp, UnaryOp,
};
use crate::mem::{Memory, Mmu, XlateFault};
use crate::reg::{msr_bits, xer_bits, CrBit, CrField, Gpr, Spr};
use crate::vectors;

// Shared with every guest frontend; historical paths preserved here.
pub use daisy_isa::{Event, StopReason};
pub use daisy_vliw::op::{compare, rlw_mask, trap_taken};

/// Full architected processor state of the emulated PowerPC.
///
/// All registers the paper lists as needing to be produced precisely on
/// an interrupt are here: the GPRs, CR, LR, CTR, XER, MSR, and the
/// interrupt bookkeeping registers SRR0/SRR1/DAR/DSISR (paper §3.3).
#[derive(Debug, Clone)]
pub struct Cpu {
    /// General-purpose registers.
    pub gpr: [u32; 32],
    /// Condition register (8 four-bit fields, cr0 in the high nibble).
    pub cr: u32,
    /// Link register.
    pub lr: u32,
    /// Count register.
    pub ctr: u32,
    /// Fixed-point exception register (SO/OV/CA in the top bits).
    pub xer: u32,
    /// Machine state register.
    pub msr: u32,
    /// Save/restore 0: interrupted instruction address.
    pub srr0: u32,
    /// Save/restore 1: interrupted MSR.
    pub srr1: u32,
    /// Data address register: faulting data address.
    pub dar: u32,
    /// DSI status register.
    pub dsisr: u32,
    /// OS scratch registers.
    pub sprg: [u32; 2],
    /// Program counter.
    pub pc: u32,
    /// The base architecture's own page table.
    pub mmu: Mmu,
    /// When true, `run` delivers interrupts to the architected vectors
    /// instead of stopping (used when emulating OS-present systems).
    pub vectored: bool,
    /// Dynamic instruction count.
    pub ninstrs: u64,
}

impl Cpu {
    /// Creates a CPU in supervisor state, real addressing, at `entry`.
    pub fn new(entry: u32) -> Cpu {
        Cpu {
            gpr: [0; 32],
            cr: 0,
            lr: 0,
            ctr: 0,
            xer: 0,
            msr: 0,
            srr0: 0,
            srr1: 0,
            dar: 0,
            dsisr: 0,
            sprg: [0; 2],
            pc: entry,
            mmu: Mmu::new(),
            vectored: false,
            ninstrs: 0,
        }
    }

    /// Reads a CR field (4 bits).
    pub fn cr_field(&self, f: CrField) -> u32 {
        (self.cr >> (28 - 4 * u32::from(f.0))) & 0xF
    }

    /// Writes a CR field (4 bits).
    pub fn set_cr_field(&mut self, f: CrField, v: u32) {
        let sh = 28 - 4 * u32::from(f.0);
        self.cr = (self.cr & !(0xF << sh)) | ((v & 0xF) << sh);
    }

    /// Reads a single CR bit.
    pub fn cr_bit(&self, b: CrBit) -> bool {
        (self.cr >> (31 - u32::from(b.0))) & 1 != 0
    }

    /// Writes a single CR bit.
    pub fn set_cr_bit(&mut self, b: CrBit, v: bool) {
        let sh = 31 - u32::from(b.0);
        self.cr = (self.cr & !(1 << sh)) | ((v as u32) << sh);
    }

    /// True when in problem (user) state.
    pub fn user_mode(&self) -> bool {
        self.msr & msr_bits::PR != 0
    }

    fn set_so(&mut self) {
        self.xer |= xer_bits::SO;
    }

    fn set_ov(&mut self, ov: bool) {
        if ov {
            self.xer |= xer_bits::OV;
            self.set_so();
        } else {
            self.xer &= !xer_bits::OV;
        }
    }

    fn set_ca(&mut self, ca: bool) {
        if ca {
            self.xer |= xer_bits::CA;
        } else {
            self.xer &= !xer_bits::CA;
        }
    }

    fn ca(&self) -> u32 {
        u32::from(self.xer & xer_bits::CA != 0)
    }

    /// The 4-bit compare result of `v` against zero, with the SO copy.
    pub fn cr0_value(&self, v: u32) -> u32 {
        let so = u32::from(self.xer & xer_bits::SO != 0);
        let v = v as i32;
        if v < 0 {
            0b1000 | so
        } else if v > 0 {
            0b0100 | so
        } else {
            0b0010 | so
        }
    }

    fn record(&mut self, v: u32) {
        let f = self.cr0_value(v);
        self.set_cr_field(CrField(0), f);
    }

    fn xlate_data(&self, ea: u32, write: bool) -> Result<u32, Event> {
        if self.msr & msr_bits::DR == 0 {
            return Ok(ea);
        }
        self.mmu.translate(ea, write).map_err(|f| {
            let _ = matches!(f, XlateFault::Protection);
            Event::Dsi { addr: ea, write }
        })
    }

    fn xlate_fetch(&self, ea: u32) -> Result<u32, Event> {
        if self.msr & msr_bits::IR == 0 {
            return Ok(ea);
        }
        self.mmu.translate(ea, false).map_err(|_| Event::Isi)
    }

    fn load(&self, mem: &Memory, ea: u32, width: MemWidth, algebraic: bool) -> Result<u32, Event> {
        let pa = self.xlate_data(ea, false)?;
        let v =
            match width {
                MemWidth::Byte => mem.read_u8(pa).map(u32::from),
                MemWidth::Half => mem.read_u16(pa).map(|v| {
                    if algebraic {
                        v as i16 as i32 as u32
                    } else {
                        u32::from(v)
                    }
                }),
                MemWidth::Word => mem.read_u32(pa),
            };
        v.map_err(|_| Event::Dsi { addr: ea, write: false })
    }

    fn store(&self, mem: &mut Memory, ea: u32, width: MemWidth, v: u32) -> Result<(), Event> {
        let pa = self.xlate_data(ea, true)?;
        let r = match width {
            MemWidth::Byte => mem.write_u8(pa, v as u8),
            MemWidth::Half => mem.write_u16(pa, v as u16),
            MemWidth::Word => mem.write_u32(pa, v),
        };
        r.map_err(|_| Event::Dsi { addr: ea, write: true })
    }

    /// Fetches and decodes the instruction at the current PC without
    /// executing it.
    pub fn fetch(&self, mem: &Memory) -> Result<Insn, Event> {
        let pa = self.xlate_fetch(self.pc)?;
        mem.read_u32(pa).map(decode).map_err(|_| Event::Isi)
    }

    /// Like [`Cpu::fetch`], memoizing the decode through `dcache`. The
    /// raw word is still read every time (so self-modifying code is
    /// observed), but revisited words skip the decoder.
    pub fn fetch_cached(&self, mem: &Memory, dcache: &mut DecodeCache) -> Result<Insn, Event> {
        let pa = self.xlate_fetch(self.pc)?;
        let word = mem.read_u32(pa).map_err(|_| Event::Isi)?;
        Ok(dcache.decode_at(pa, word, decode))
    }

    /// Executes one instruction. On [`Event::Continue`]/[`Event::Syscall`]
    /// the PC has advanced; on faults the PC still addresses the faulting
    /// instruction and no architected state has changed.
    pub fn step(&mut self, mem: &mut Memory) -> Event {
        match self.fetch(mem) {
            Ok(insn) => self.execute(mem, insn),
            Err(e) => e,
        }
    }

    /// Executes an already-decoded instruction at the current PC.
    pub fn execute(&mut self, mem: &mut Memory, insn: Insn) -> Event {
        let next = self.pc.wrapping_add(4);
        let ev = self.execute_inner(mem, insn, next);
        if matches!(ev, Event::Continue | Event::Syscall) {
            self.ninstrs += 1;
        }
        ev
    }

    fn ea_d(&self, ra: Gpr, d: i16) -> u32 {
        let base = if ra.0 == 0 { 0 } else { self.gpr[ra.0 as usize] };
        base.wrapping_add(d as i32 as u32)
    }

    fn ea_x(&self, ra: Gpr, rb: Gpr) -> u32 {
        let base = if ra.0 == 0 { 0 } else { self.gpr[ra.0 as usize] };
        base.wrapping_add(self.gpr[rb.0 as usize])
    }

    #[allow(clippy::too_many_lines)]
    fn execute_inner(&mut self, mem: &mut Memory, insn: Insn, next: u32) -> Event {
        let g = |r: Gpr| self.gpr[r.0 as usize];
        match insn {
            Insn::Addi { rt, ra, si } => {
                let base = if ra.0 == 0 { 0 } else { g(ra) };
                self.gpr[rt.0 as usize] = base.wrapping_add(si as i32 as u32);
            }
            Insn::Addis { rt, ra, si } => {
                let base = if ra.0 == 0 { 0 } else { g(ra) };
                self.gpr[rt.0 as usize] = base.wrapping_add((si as i32 as u32) << 16);
            }
            Insn::Addic { rt, ra, si, rc } => {
                let a = g(ra);
                let b = si as i32 as u32;
                let s = u64::from(a) + u64::from(b);
                self.gpr[rt.0 as usize] = s as u32;
                self.set_ca(s >> 32 != 0);
                if rc {
                    self.record(s as u32);
                }
            }
            Insn::Subfic { rt, ra, si } => {
                let a = g(ra);
                let b = si as i32 as u32;
                let s = u64::from(!a) + u64::from(b) + 1;
                self.gpr[rt.0 as usize] = s as u32;
                self.set_ca(s >> 32 != 0);
            }
            Insn::Mulli { rt, ra, si } => {
                self.gpr[rt.0 as usize] = (g(ra) as i32).wrapping_mul(si as i32) as u32;
            }
            Insn::Arith { op, rt, ra, rb, oe, rc } => {
                let a = g(ra);
                let b = g(rb);
                let (r, ca, ov) = match op {
                    ArithOp::Add => {
                        let s = u64::from(a) + u64::from(b);
                        let r = s as u32;
                        (r, None, ((a ^ r) & (b ^ r)) >> 31 != 0)
                    }
                    ArithOp::Addc => {
                        let s = u64::from(a) + u64::from(b);
                        let r = s as u32;
                        (r, Some(s >> 32 != 0), ((a ^ r) & (b ^ r)) >> 31 != 0)
                    }
                    ArithOp::Adde => {
                        let s = u64::from(a) + u64::from(b) + u64::from(self.ca());
                        let r = s as u32;
                        (r, Some(s >> 32 != 0), ((a ^ r) & (b ^ r)) >> 31 != 0)
                    }
                    ArithOp::Subf => {
                        let s = u64::from(!a) + u64::from(b) + 1;
                        let r = s as u32;
                        (r, None, ((!a ^ r) & (b ^ r)) >> 31 != 0)
                    }
                    ArithOp::Subfc => {
                        let s = u64::from(!a) + u64::from(b) + 1;
                        let r = s as u32;
                        (r, Some(s >> 32 != 0), ((!a ^ r) & (b ^ r)) >> 31 != 0)
                    }
                    ArithOp::Subfe => {
                        let s = u64::from(!a) + u64::from(b) + u64::from(self.ca());
                        let r = s as u32;
                        (r, Some(s >> 32 != 0), ((!a ^ r) & (b ^ r)) >> 31 != 0)
                    }
                    ArithOp::Mullw => {
                        let p = i64::from(a as i32) * i64::from(b as i32);
                        (p as u32, None, p != i64::from(p as i32))
                    }
                    ArithOp::Mulhw => {
                        let p = i64::from(a as i32) * i64::from(b as i32);
                        ((p >> 32) as u32, None, false)
                    }
                    ArithOp::Mulhwu => {
                        let p = u64::from(a) * u64::from(b);
                        ((p >> 32) as u32, None, false)
                    }
                    ArithOp::Divw => {
                        if b == 0 || (a == 0x8000_0000 && b == 0xFFFF_FFFF) {
                            (0, None, true)
                        } else {
                            (((a as i32) / (b as i32)) as u32, None, false)
                        }
                    }
                    ArithOp::Divwu => match a.checked_div(b) {
                        Some(q) => (q, None, false),
                        None => (0, None, true),
                    },
                };
                self.gpr[rt.0 as usize] = r;
                if let Some(c) = ca {
                    self.set_ca(c);
                }
                if oe {
                    self.set_ov(ov);
                }
                if rc {
                    self.record(r);
                }
            }
            Insn::Arith2 { op, rt, ra, oe, rc } => {
                let a = g(ra);
                let (r, ca, ov) = match op {
                    Arith2Op::Neg => {
                        let r = (!a).wrapping_add(1);
                        (r, None, a == 0x8000_0000)
                    }
                    Arith2Op::Addze => {
                        let s = u64::from(a) + u64::from(self.ca());
                        let r = s as u32;
                        // Signed overflow: positive + carry wrapped negative.
                        (r, Some(s >> 32 != 0), (!a & r) >> 31 != 0)
                    }
                    Arith2Op::Addme => {
                        let s = u64::from(a) + u64::from(self.ca()) + 0xFFFF_FFFF;
                        (s as u32, Some(s >> 32 != 0), false)
                    }
                    Arith2Op::Subfze => {
                        let s = u64::from(!a) + u64::from(self.ca());
                        (s as u32, Some(s >> 32 != 0), false)
                    }
                    Arith2Op::Subfme => {
                        let s = u64::from(!a) + u64::from(self.ca()) + 0xFFFF_FFFF;
                        (s as u32, Some(s >> 32 != 0), false)
                    }
                };
                self.gpr[rt.0 as usize] = r;
                if let Some(c) = ca {
                    self.set_ca(c);
                }
                if oe {
                    self.set_ov(ov);
                }
                if rc {
                    self.record(r);
                }
            }
            Insn::Logic { op, ra, rs, rb, rc } => {
                let s = g(rs);
                let b = g(rb);
                let r = match op {
                    LogicOp::And => s & b,
                    LogicOp::Or => s | b,
                    LogicOp::Xor => s ^ b,
                    LogicOp::Nand => !(s & b),
                    LogicOp::Nor => !(s | b),
                    LogicOp::Andc => s & !b,
                    LogicOp::Orc => s | !b,
                    LogicOp::Eqv => !(s ^ b),
                };
                self.gpr[ra.0 as usize] = r;
                if rc {
                    self.record(r);
                }
            }
            Insn::LogicImm { op, ra, rs, ui } => {
                let s = g(rs);
                let u = u32::from(ui);
                let r = match op {
                    LogicImmOp::Andi => s & u,
                    LogicImmOp::Andis => s & (u << 16),
                    LogicImmOp::Ori => s | u,
                    LogicImmOp::Oris => s | (u << 16),
                    LogicImmOp::Xori => s ^ u,
                    LogicImmOp::Xoris => s ^ (u << 16),
                };
                self.gpr[ra.0 as usize] = r;
                if op.records() {
                    self.record(r);
                }
            }
            Insn::Shift { op, ra, rs, rb, rc } => {
                let s = g(rs);
                let n = g(rb) & 0x3F;
                let r = match op {
                    ShiftOp::Slw => {
                        if n >= 32 {
                            0
                        } else {
                            s << n
                        }
                    }
                    ShiftOp::Srw => {
                        if n >= 32 {
                            0
                        } else {
                            s >> n
                        }
                    }
                    ShiftOp::Sraw => {
                        let neg = (s as i32) < 0;
                        let (r, ca) = if n >= 32 {
                            (if neg { 0xFFFF_FFFF } else { 0 }, neg && s != 0)
                        } else {
                            let lost = n > 0 && s & ((1u32 << n) - 1) != 0;
                            (((s as i32) >> n) as u32, neg && lost)
                        };
                        self.set_ca(ca);
                        r
                    }
                };
                self.gpr[ra.0 as usize] = r;
                if rc {
                    self.record(r);
                }
            }
            Insn::Srawi { ra, rs, sh, rc } => {
                let s = g(rs);
                let n = u32::from(sh & 31);
                let neg = (s as i32) < 0;
                let lost = n > 0 && s & ((1u32 << n) - 1) != 0;
                let r = ((s as i32) >> n) as u32;
                self.set_ca(neg && lost);
                self.gpr[ra.0 as usize] = r;
                if rc {
                    self.record(r);
                }
            }
            Insn::Rlwinm { ra, rs, sh, mb, me, rc } => {
                let r = g(rs).rotate_left(u32::from(sh & 31)) & rlw_mask(mb, me);
                self.gpr[ra.0 as usize] = r;
                if rc {
                    self.record(r);
                }
            }
            Insn::Rlwimi { ra, rs, sh, mb, me, rc } => {
                let m = rlw_mask(mb, me);
                let r = (g(rs).rotate_left(u32::from(sh & 31)) & m) | (g(ra) & !m);
                self.gpr[ra.0 as usize] = r;
                if rc {
                    self.record(r);
                }
            }
            Insn::Rlwnm { ra, rs, rb, mb, me, rc } => {
                let r = g(rs).rotate_left(g(rb) & 31) & rlw_mask(mb, me);
                self.gpr[ra.0 as usize] = r;
                if rc {
                    self.record(r);
                }
            }
            Insn::Unary { op, ra, rs, rc } => {
                let s = g(rs);
                let r = match op {
                    UnaryOp::Cntlzw => s.leading_zeros(),
                    UnaryOp::Extsb => s as u8 as i8 as i32 as u32,
                    UnaryOp::Extsh => s as u16 as i16 as i32 as u32,
                };
                self.gpr[ra.0 as usize] = r;
                if rc {
                    self.record(r);
                }
            }
            Insn::Cmp { bf, signed, ra, rb } => {
                let f = compare(g(ra), g(rb), signed, self.xer & xer_bits::SO != 0);
                self.set_cr_field(bf, f);
            }
            Insn::CmpImm { bf, signed, ra, imm } => {
                let f = compare(g(ra), imm as u32, signed, self.xer & xer_bits::SO != 0);
                self.set_cr_field(bf, f);
            }
            Insn::Load { width, algebraic, update, indexed, rt, ra, rb, d } => {
                let ea = if indexed { self.ea_x(ra, rb) } else { self.ea_d(ra, d) };
                match self.load(mem, ea, width, algebraic) {
                    Ok(v) => {
                        self.gpr[rt.0 as usize] = v;
                        if update {
                            self.gpr[ra.0 as usize] = ea;
                        }
                    }
                    Err(e) => return self.data_fault(e),
                }
            }
            Insn::Store { width, update, indexed, rs, ra, rb, d } => {
                let ea = if indexed { self.ea_x(ra, rb) } else { self.ea_d(ra, d) };
                match self.store(mem, ea, width, g(rs)) {
                    Ok(()) => {
                        if update {
                            self.gpr[ra.0 as usize] = ea;
                        }
                    }
                    Err(e) => return self.data_fault(e),
                }
            }
            Insn::Lmw { rt, ra, d } => {
                let base = self.ea_d(ra, d);
                // Pre-check the whole range so the instruction is atomic
                // with respect to faults (restartable, paper §3.6).
                let count = 32 - u32::from(rt.0);
                for i in 0..count {
                    let ea = base.wrapping_add(4 * i);
                    if let Err(e) = self.load(mem, ea, MemWidth::Word, false) {
                        return self.data_fault(e);
                    }
                }
                for i in 0..count {
                    let ea = base.wrapping_add(4 * i);
                    let v = self.load(mem, ea, MemWidth::Word, false).expect("pre-checked");
                    self.gpr[(u32::from(rt.0) + i) as usize] = v;
                }
            }
            Insn::Stmw { rs, ra, d } => {
                let base = self.ea_d(ra, d);
                let count = 32 - u32::from(rs.0);
                for i in 0..count {
                    let ea = base.wrapping_add(4 * i);
                    if self.xlate_data(ea, true).is_err() {
                        return self.data_fault(Event::Dsi { addr: ea, write: true });
                    }
                }
                for i in 0..count {
                    let ea = base.wrapping_add(4 * i);
                    let v = self.gpr[(u32::from(rs.0) + i) as usize];
                    if let Err(e) = self.store(mem, ea, MemWidth::Word, v) {
                        return self.data_fault(e);
                    }
                }
            }
            Insn::BranchI { .. }
            | Insn::BranchC { .. }
            | Insn::BranchClr { .. }
            | Insn::BranchCctr { .. } => {
                return self.branch(insn, next);
            }
            Insn::CrLogic { op, bt, ba, bb } => {
                let a = self.cr_bit(ba);
                let b = self.cr_bit(bb);
                let r = match op {
                    CrOp::And => a & b,
                    CrOp::Or => a | b,
                    CrOp::Xor => a ^ b,
                    CrOp::Nand => !(a & b),
                    CrOp::Nor => !(a | b),
                    CrOp::Eqv => !(a ^ b),
                    CrOp::Andc => a & !b,
                    CrOp::Orc => a | !b,
                };
                self.set_cr_bit(bt, r);
            }
            Insn::Mcrf { bf, bfa } => {
                let v = self.cr_field(bfa);
                self.set_cr_field(bf, v);
            }
            Insn::Mfcr { rt } => self.gpr[rt.0 as usize] = self.cr,
            Insn::Mtcrf { fxm, rs } => {
                let v = g(rs);
                for f in 0..8 {
                    if fxm & (0x80 >> f) != 0 {
                        let sh = 28 - 4 * f;
                        self.cr = (self.cr & !(0xF << sh)) | (v & (0xF << sh));
                    }
                }
            }
            Insn::Mfspr { rt, spr } => {
                if spr.user_accessible() || !self.user_mode() {
                    self.gpr[rt.0 as usize] = self.read_spr(spr);
                } else {
                    return Event::Program;
                }
            }
            Insn::Mtspr { spr, rs } => {
                if spr.user_accessible() || !self.user_mode() {
                    let v = g(rs);
                    self.write_spr(spr, v);
                } else {
                    return Event::Program;
                }
            }
            Insn::Mfmsr { rt } => {
                if self.user_mode() {
                    return Event::Program;
                }
                self.gpr[rt.0 as usize] = self.msr;
            }
            Insn::Mtmsr { rs } => {
                if self.user_mode() {
                    return Event::Program;
                }
                self.msr = g(rs);
            }
            Insn::Sc => {
                self.pc = next;
                return Event::Syscall;
            }
            Insn::Rfi => {
                if self.user_mode() {
                    return Event::Program;
                }
                self.msr = self.srr1;
                self.pc = self.srr0 & !3;
                // Counted by `execute` like every completed
                // instruction — no extra increment here.
                return Event::Continue;
            }
            Insn::Sync | Insn::Isync | Insn::Eieio => {}
            Insn::Tw { to, ra, rb } => {
                if trap_taken(to, g(ra), g(rb)) {
                    return Event::Trap;
                }
            }
            Insn::Twi { to, ra, si } => {
                if trap_taken(to, g(ra), si as i32 as u32) {
                    return Event::Trap;
                }
            }
            Insn::Invalid(_) => return Event::Program,
        }
        self.pc = next;
        Event::Continue
    }

    fn data_fault(&mut self, e: Event) -> Event {
        if let Event::Dsi { addr, write } = e {
            self.record_data_fault_regs(addr, write);
        }
        e
    }

    /// Records a data-fault address and direction in DAR/DSISR without
    /// redirecting control.
    pub fn record_data_fault_regs(&mut self, addr: u32, write: bool) {
        self.dar = addr;
        self.dsisr = if write { 0x4200_0000 } else { 0x4000_0000 };
    }

    fn branch(&mut self, insn: Insn, next: u32) -> Event {
        let (taken, target, lk) = match insn {
            Insn::BranchI { li, aa, lk } => {
                let t = if aa { li as u32 } else { self.pc.wrapping_add(li as u32) };
                (true, t, lk)
            }
            Insn::BranchC { bo: b, bi, bd, aa, lk } => {
                let t = if aa { bd as i32 as u32 } else { self.pc.wrapping_add(bd as i32 as u32) };
                (self.branch_taken(b, bi), t, lk)
            }
            Insn::BranchClr { bo: b, bi, lk } => (self.branch_taken(b, bi), self.lr & !3, lk),
            Insn::BranchCctr { bo: b, bi, lk } => {
                // bcctr must not use a CTR-decrementing BO; treat as non-ctr.
                let cond_ok = bo::ignores_cond(b) || self.cr_bit(bi) == bo::wants_true(b);
                (cond_ok, self.ctr & !3, lk)
            }
            _ => unreachable!("branch() called on non-branch"),
        };
        if lk {
            self.lr = next;
        }
        self.pc = if taken { target } else { next };
        // Counted by `execute` like every completed instruction — an
        // extra increment here double-counted every branch, inflating
        // each ILP denominator (see `tests/stats_pin.rs`).
        Event::Continue
    }

    /// Evaluates the BO/BI condition, decrementing CTR when BO asks.
    pub fn branch_taken(&mut self, b: u8, bi: CrBit) -> bool {
        let ctr_ok = if bo::ignores_ctr(b) {
            true
        } else {
            self.ctr = self.ctr.wrapping_sub(1);
            (self.ctr != 0) != bo::wants_ctr_zero(b)
        };
        let cond_ok = bo::ignores_cond(b) || self.cr_bit(bi) == bo::wants_true(b);
        ctr_ok && cond_ok
    }

    fn read_spr(&self, spr: Spr) -> u32 {
        match spr {
            Spr::Xer => self.xer,
            Spr::Lr => self.lr,
            Spr::Ctr => self.ctr,
            Spr::Srr0 => self.srr0,
            Spr::Srr1 => self.srr1,
            Spr::Dar => self.dar,
            Spr::Dsisr => self.dsisr,
            Spr::Sprg0 => self.sprg[0],
            Spr::Sprg1 => self.sprg[1],
        }
    }

    fn write_spr(&mut self, spr: Spr, v: u32) {
        match spr {
            // Only SO/OV/CA are architected in this subset; the XER
            // byte-count field exists solely for the string instructions
            // (lswx/stswx), which it does not include.
            Spr::Xer => self.xer = v & (xer_bits::SO | xer_bits::OV | xer_bits::CA),
            Spr::Lr => self.lr = v,
            Spr::Ctr => self.ctr = v,
            Spr::Srr0 => self.srr0 = v,
            Spr::Srr1 => self.srr1 = v,
            Spr::Dar => self.dar = v,
            Spr::Dsisr => self.dsisr = v,
            Spr::Sprg0 => self.sprg[0] = v,
            Spr::Sprg1 => self.sprg[1] = v,
        }
    }

    /// Delivers an interrupt to the architected vector: saves PC/MSR to
    /// SRR0/SRR1, drops to supervisor real mode, jumps to the vector.
    pub fn deliver(&mut self, vector: u32, srr0: u32) {
        self.srr0 = srr0;
        self.srr1 = self.msr;
        self.msr &= !(msr_bits::EE | msr_bits::PR | msr_bits::IR | msr_bits::DR);
        self.pc = vector;
    }

    /// Resolves an interpreter event: delivers it to an architected
    /// vector (when [`Cpu::vectored`](Cpu)) or turns it into a stop.
    pub fn handle_event(&mut self, ev: Event) -> Option<StopReason> {
        match ev {
            Event::Continue => None,
            Event::Syscall => {
                if self.vectored {
                    self.deliver(vectors::SYSCALL, self.pc);
                    None
                } else {
                    Some(StopReason::Syscall)
                }
            }
            Event::Trap | Event::Program => {
                if self.vectored {
                    self.deliver(vectors::PROGRAM, self.pc);
                    None
                } else if ev == Event::Trap {
                    Some(StopReason::Trap)
                } else {
                    Some(StopReason::Program)
                }
            }
            Event::Dsi { addr, write } => {
                if self.vectored {
                    self.deliver(vectors::DSI, self.pc);
                    None
                } else {
                    Some(StopReason::StorageFault { addr, write, fetch: false })
                }
            }
            Event::Isi => {
                if self.vectored {
                    self.deliver(vectors::ISI, self.pc);
                    None
                } else {
                    Some(StopReason::StorageFault { addr: self.pc, write: false, fetch: true })
                }
            }
        }
    }

    /// Runs until a stop condition or `max_instrs` instructions.
    pub fn run(&mut self, mem: &mut Memory, max_instrs: u64) -> Result<StopReason, MemTooSmall> {
        self.run_traced(mem, max_instrs, |_, _| {})
    }

    /// Like [`Cpu::run`], invoking `trace(pc, insn)` for every
    /// successfully executed instruction.
    pub fn run_traced(
        &mut self,
        mem: &mut Memory,
        max_instrs: u64,
        mut trace: impl FnMut(u32, &Insn),
    ) -> Result<StopReason, MemTooSmall> {
        let limit = self.ninstrs.saturating_add(max_instrs);
        let mut dcache = DecodeCache::new(daisy_isa::IsaId::PPC);
        while self.ninstrs < limit {
            let pc = self.pc;
            let ev = match self.fetch_cached(mem, &mut dcache) {
                Ok(insn) => {
                    let ev = self.execute(mem, insn);
                    if matches!(ev, Event::Continue | Event::Syscall) {
                        trace(pc, &insn);
                    }
                    ev
                }
                Err(e) => e,
            };
            if let Some(stop) = self.handle_event(ev) {
                return Ok(stop);
            }
        }
        Ok(StopReason::MaxInstrs)
    }
}

/// Error for impossible configurations (kept for future use; `run` is
/// currently infallible).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemTooSmall;

impl std::fmt::Display for MemTooSmall {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "memory too small for requested operation")
    }
}

impl std::error::Error for MemTooSmall {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;

    fn setup(words: &[u32]) -> (Cpu, Memory) {
        let mut mem = Memory::new(0x2_0000);
        for (i, w) in words.iter().enumerate() {
            mem.write_u32(0x1000 + 4 * i as u32, *w).unwrap();
        }
        (Cpu::new(0x1000), mem)
    }

    fn asm(insns: &[Insn]) -> Vec<u32> {
        insns.iter().map(encode).collect()
    }

    #[test]
    fn rlw_mask_values() {
        assert_eq!(rlw_mask(0, 31), 0xFFFF_FFFF);
        assert_eq!(rlw_mask(0, 0), 0x8000_0000);
        assert_eq!(rlw_mask(31, 31), 1);
        assert_eq!(rlw_mask(24, 31), 0xFF);
        // Wraparound mask.
        assert_eq!(rlw_mask(31, 0), 0x8000_0001);
    }

    #[test]
    fn add_and_record() {
        let (mut cpu, mut mem) = setup(&asm(&[
            Insn::Addi { rt: Gpr(1), ra: Gpr(0), si: -5 },
            Insn::Addi { rt: Gpr(2), ra: Gpr(0), si: 5 },
            Insn::Arith {
                op: ArithOp::Add,
                rt: Gpr(3),
                ra: Gpr(1),
                rb: Gpr(2),
                oe: false,
                rc: true,
            },
            Insn::Sc,
        ]));
        assert_eq!(cpu.run(&mut mem, 100).unwrap(), StopReason::Syscall);
        assert_eq!(cpu.gpr[3], 0);
        assert_eq!(cpu.cr_field(CrField(0)), 0b0010); // EQ
    }

    #[test]
    fn carry_chain_64bit_add() {
        // 64-bit add of 0x1_0000_0000 via addc/adde.
        let (mut cpu, mut mem) = setup(&asm(&[
            Insn::Arith {
                op: ArithOp::Addc,
                rt: Gpr(5),
                ra: Gpr(1),
                rb: Gpr(3),
                oe: false,
                rc: false,
            },
            Insn::Arith {
                op: ArithOp::Adde,
                rt: Gpr(6),
                ra: Gpr(2),
                rb: Gpr(4),
                oe: false,
                rc: false,
            },
            Insn::Sc,
        ]));
        cpu.gpr[1] = 0xFFFF_FFFF; // low a
        cpu.gpr[2] = 0x0000_0001; // high a
        cpu.gpr[3] = 0x0000_0001; // low b
        cpu.gpr[4] = 0x0000_0002; // high b
        cpu.run(&mut mem, 10).unwrap();
        assert_eq!(cpu.gpr[5], 0); // low sum
        assert_eq!(cpu.gpr[6], 4); // high sum with carry
    }

    #[test]
    fn bdnz_loop_counts() {
        // li r3,0; li r4,5; mtctr r4; loop: addi r3,r3,1; bdnz loop; sc
        let (mut cpu, mut mem) = setup(&asm(&[
            Insn::Addi { rt: Gpr(3), ra: Gpr(0), si: 0 },
            Insn::Addi { rt: Gpr(4), ra: Gpr(0), si: 5 },
            Insn::Mtspr { spr: Spr::Ctr, rs: Gpr(4) },
            Insn::Addi { rt: Gpr(3), ra: Gpr(3), si: 1 },
            Insn::BranchC { bo: bo::DNZ, bi: CrBit(0), bd: -4, aa: false, lk: false },
            Insn::Sc,
        ]));
        cpu.run(&mut mem, 100).unwrap();
        assert_eq!(cpu.gpr[3], 5);
        assert_eq!(cpu.ctr, 0);
    }

    #[test]
    fn load_store_roundtrip_widths() {
        let (mut cpu, mut mem) = setup(&asm(&[
            Insn::Store {
                width: MemWidth::Word,
                update: false,
                indexed: false,
                rs: Gpr(3),
                ra: Gpr(1),
                rb: Gpr(0),
                d: 0,
            },
            Insn::Load {
                width: MemWidth::Half,
                algebraic: true,
                update: false,
                indexed: false,
                rt: Gpr(4),
                ra: Gpr(1),
                rb: Gpr(0),
                d: 0,
            },
            Insn::Load {
                width: MemWidth::Byte,
                algebraic: false,
                update: false,
                indexed: false,
                rt: Gpr(5),
                ra: Gpr(1),
                rb: Gpr(0),
                d: 3,
            },
            Insn::Sc,
        ]));
        cpu.gpr[1] = 0x8000;
        cpu.gpr[3] = 0xFFFE_1234;
        cpu.run(&mut mem, 10).unwrap();
        assert_eq!(cpu.gpr[4], 0xFFFF_FFFE); // lha sign-extends
        assert_eq!(cpu.gpr[5], 0x34);
    }

    #[test]
    fn update_forms_write_back_ea() {
        let (mut cpu, mut mem) = setup(&asm(&[
            Insn::Store {
                width: MemWidth::Word,
                update: true,
                indexed: false,
                rs: Gpr(3),
                ra: Gpr(1),
                rb: Gpr(0),
                d: 4,
            },
            Insn::Load {
                width: MemWidth::Word,
                algebraic: false,
                update: true,
                indexed: false,
                rt: Gpr(4),
                ra: Gpr(2),
                rb: Gpr(0),
                d: 4,
            },
            Insn::Sc,
        ]));
        cpu.gpr[1] = 0x8000;
        cpu.gpr[2] = 0x8000;
        cpu.gpr[3] = 99;
        cpu.run(&mut mem, 10).unwrap();
        assert_eq!(cpu.gpr[1], 0x8004);
        assert_eq!(cpu.gpr[2], 0x8004);
        assert_eq!(cpu.gpr[4], 99);
    }

    #[test]
    fn lmw_stmw_roundtrip() {
        let (mut cpu, mut mem) = setup(&asm(&[
            Insn::Stmw { rs: Gpr(28), ra: Gpr(1), d: 0 },
            Insn::Lmw { rt: Gpr(28), ra: Gpr(2), d: 0 },
            Insn::Sc,
        ]));
        cpu.gpr[1] = 0x8000;
        cpu.gpr[2] = 0x8000;
        cpu.gpr[28] = 11;
        cpu.gpr[29] = 22;
        cpu.gpr[30] = 33;
        cpu.gpr[31] = 44;
        cpu.run(&mut mem, 10).unwrap();
        assert_eq!(mem.read_u32(0x800C).unwrap(), 44);
        assert_eq!(cpu.gpr[28], 11);
    }

    #[test]
    fn bl_blr_call_return() {
        // bl +8; sc;  target: blr
        let (mut cpu, mut mem) = setup(&asm(&[
            Insn::BranchI { li: 8, aa: false, lk: true },
            Insn::Sc,
            Insn::BranchClr { bo: bo::ALWAYS, bi: CrBit(0), lk: false },
        ]));
        assert_eq!(cpu.run(&mut mem, 10).unwrap(), StopReason::Syscall);
        assert_eq!(cpu.lr, 0x1004);
        assert_eq!(cpu.pc, 0x1008); // advanced past sc
    }

    #[test]
    fn srawi_sets_carry_only_when_ones_lost() {
        let (mut cpu, mut mem) =
            setup(&asm(&[Insn::Srawi { ra: Gpr(3), rs: Gpr(1), sh: 2, rc: false }, Insn::Sc]));
        cpu.gpr[1] = 0xFFFF_FFFC; // -4: no 1 bits lost
        cpu.run(&mut mem, 10).unwrap();
        assert_eq!(cpu.gpr[3], 0xFFFF_FFFF);
        assert_eq!(cpu.xer & xer_bits::CA, 0);

        let (mut cpu, mut mem) =
            setup(&asm(&[Insn::Srawi { ra: Gpr(3), rs: Gpr(1), sh: 2, rc: false }, Insn::Sc]));
        cpu.gpr[1] = 0xFFFF_FFFD; // -3: a 1 bit is lost
        cpu.run(&mut mem, 10).unwrap();
        assert_eq!(cpu.xer & xer_bits::CA, xer_bits::CA);
    }

    #[test]
    fn trap_stops() {
        let (mut cpu, mut mem) = setup(&asm(&[
            Insn::Twi { to: 4, ra: Gpr(3), si: 0 }, // trap if r3 == 0
            Insn::Sc,
        ]));
        assert_eq!(cpu.run(&mut mem, 10).unwrap(), StopReason::Trap);
    }

    #[test]
    fn privileged_in_user_mode_is_program_exception() {
        let (mut cpu, mut mem) = setup(&asm(&[Insn::Mfmsr { rt: Gpr(3) }]));
        cpu.msr |= msr_bits::PR;
        assert_eq!(cpu.run(&mut mem, 10).unwrap(), StopReason::Program);
    }

    #[test]
    fn vectored_syscall_and_rfi() {
        // Program at 0x1000: sc; then (after return) li r7,1; sc.
        // Handler at 0xC00: rfi (just returns).
        let (mut cpu, mut mem) =
            setup(&asm(&[Insn::Sc, Insn::Addi { rt: Gpr(7), ra: Gpr(0), si: 1 }, Insn::Sc]));
        mem.write_u32(vectors::SYSCALL, encode(&Insn::Addi { rt: Gpr(9), ra: Gpr(0), si: 42 }))
            .unwrap();
        mem.write_u32(vectors::SYSCALL + 4, encode(&Insn::Rfi)).unwrap();
        cpu.vectored = true;
        // First sc vectors, handler sets r9 and rfi's back; the second
        // sc vectors again and the handler's rfi is the 7th completed
        // instruction — stop exactly there via max instrs (running
        // further would fall off the program into zeroed memory).
        let stop = cpu.run(&mut mem, 7).unwrap();
        assert_eq!(stop, StopReason::MaxInstrs);
        assert_eq!(cpu.ninstrs, 7, "sc/addi/rfi twice plus li r7 count once each");
        assert_eq!(cpu.gpr[9], 42);
        assert_eq!(cpu.gpr[7], 1);
    }

    #[test]
    fn dsi_reports_dar() {
        let (mut cpu, mut mem) = setup(&asm(&[Insn::Load {
            width: MemWidth::Word,
            algebraic: false,
            update: false,
            indexed: false,
            rt: Gpr(3),
            ra: Gpr(1),
            rb: Gpr(0),
            d: 0,
        }]));
        cpu.gpr[1] = 0x00F0_0000; // beyond memory
        let stop = cpu.run(&mut mem, 10).unwrap();
        assert_eq!(
            stop,
            StopReason::StorageFault { addr: 0x00F0_0000, write: false, fetch: false }
        );
        assert_eq!(cpu.dar, 0x00F0_0000);
    }

    #[test]
    fn mmu_relocated_load() {
        let (mut cpu, mut mem) = setup(&asm(&[
            Insn::Load {
                width: MemWidth::Word,
                algebraic: false,
                update: false,
                indexed: false,
                rt: Gpr(3),
                ra: Gpr(1),
                rb: Gpr(0),
                d: 0,
            },
            Insn::Sc,
        ]));
        mem.write_u32(0x5008, 0xDEAD_BEEF).unwrap();
        cpu.mmu.map(0x0030_0000, 0x5000, true);
        cpu.msr |= msr_bits::DR;
        cpu.gpr[1] = 0x0030_0008;
        cpu.run(&mut mem, 10).unwrap();
        assert_eq!(cpu.gpr[3], 0xDEAD_BEEF);
    }

    #[test]
    fn cr_field_helpers() {
        let mut cpu = Cpu::new(0);
        cpu.set_cr_field(CrField(3), 0b1010);
        assert_eq!(cpu.cr_field(CrField(3)), 0b1010);
        assert!(cpu.cr_bit(CrBit::new(CrField(3), 0)));
        assert!(!cpu.cr_bit(CrBit::new(CrField(3), 1)));
        cpu.set_cr_bit(CrBit::new(CrField(3), 3), true);
        assert_eq!(cpu.cr_field(CrField(3)), 0b1011);
    }
}
