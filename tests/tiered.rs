//! Tiered retranslation must never change semantics: with an
//! aggressively low hot threshold (so every workload takes many hot
//! promotions mid-run), final architected state must still match the
//! reference interpreter bit for bit on all nine workloads.

use daisy::prelude::*;
use daisy_ppc::interp::{Cpu, StopReason};
use daisy_ppc::mem::Memory;
use daisy_ppc::PpcIsa;
use daisy_ppc::{Asm, Gpr};
use daisy_workloads::Workload;

fn run_reference(w: &Workload) -> (Cpu, Memory) {
    let prog = w.program();
    let mut mem = Memory::new(w.mem_size);
    prog.load_into(&mut mem).unwrap();
    let mut cpu = Cpu::new(prog.entry);
    let stop = cpu.run(&mut mem, w.max_instrs).unwrap();
    assert_eq!(stop, StopReason::Syscall, "{}: reference run did not finish", w.name);
    (cpu, mem)
}

#[test]
fn tiered_retranslation_is_bit_exact_on_all_workloads() {
    let mut promoted_anywhere = false;
    for w in daisy_workloads::all() {
        let (ref_cpu, ref_mem) = run_reference(&w);

        let prog = w.program();
        let mut sys = DaisySystem::<PpcIsa>::builder()
            .mem_size(w.mem_size)
            .tiered(TierPolicy::with_threshold(8))
            .build();
        sys.load(&prog).unwrap();
        let stop = sys.run(10 * w.max_instrs).unwrap();
        assert_eq!(stop, StopReason::Syscall, "{}: tiered run did not finish", w.name);

        assert_eq!(sys.cpu.gpr, ref_cpu.gpr, "{}: GPR state diverged", w.name);
        assert_eq!(sys.cpu.cr, ref_cpu.cr, "{}: CR diverged", w.name);
        assert_eq!(sys.cpu.lr, ref_cpu.lr, "{}: LR diverged", w.name);
        assert_eq!(sys.cpu.ctr, ref_cpu.ctr, "{}: CTR diverged", w.name);
        assert_eq!(sys.cpu.xer, ref_cpu.xer, "{}: XER diverged", w.name);
        assert_eq!(sys.cpu.pc, ref_cpu.pc, "{}: PC diverged", w.name);
        let size = ref_mem.size();
        assert_eq!(
            sys.mem.read_bytes(0, size).unwrap(),
            ref_mem.read_bytes(0, size).unwrap(),
            "{}: memory image diverged",
            w.name
        );
        w.check(&sys.cpu, &sys.mem)
            .unwrap_or_else(|e| panic!("{}: checker failed under tiering: {e}", w.name));

        promoted_anywhere |= sys.vmm.stats.hot_promotions > 0;
        // The profiler is implied by tiering and must have attributed
        // every dispatch.
        let profiler = sys.profiler.as_ref().expect("tiering implies profiling");
        let attributed: u64 = profiler.iter().map(|(_, p)| p.dispatches).sum();
        assert_eq!(attributed, sys.stats.total_dispatches(), "{}: dispatches lost", w.name);
    }
    assert!(promoted_anywhere, "threshold 8 must promote at least one group somewhere");
}

#[test]
fn hot_promotion_retranslates_wider() {
    // A tight self-loop crosses the threshold and must be rebuilt hot.
    let mut a = Asm::new(0x1000);
    a.li(Gpr(3), 0);
    a.li(Gpr(4), 200);
    a.mtctr(Gpr(4));
    a.label("loop");
    a.addi(Gpr(3), Gpr(3), 3);
    a.bdnz("loop");
    a.sc();
    let prog = a.finish().unwrap();

    let mut sys = DaisySystem::<PpcIsa>::builder()
        .mem_size(0x20000)
        .tiered(TierPolicy::with_threshold(4))
        .build();
    sys.load(&prog).unwrap();
    let stop = sys.run(1_000_000).unwrap();
    assert_eq!(stop, StopReason::Syscall);
    assert_eq!(sys.cpu.gpr[3], 600);
    assert!(sys.vmm.stats.hot_promotions >= 1, "hot loop must be promoted");
    // The loop entry's profile must have reached the hot tier.
    let profiler = sys.profiler.as_ref().unwrap();
    let hot_entries = profiler.iter().filter(|(_, p)| p.tier == daisy::trace::Tier::Hot).count();
    assert!(hot_entries >= 1, "some entry must have executed hot code");
}
