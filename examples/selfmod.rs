//! Self-modifying code under DAISY (paper §3.2).
//!
//! The program builds a new instruction in a register, stores it over
//! its own code, and executes it. The store hits a page whose
//! read-only (translated) bit is set; the VMM invalidates the page's
//! translations, re-interprets the modifying instruction, and
//! retranslates — the program observes exactly the base architecture's
//! behaviour.
//!
//! ```sh
//! cargo run --release --example selfmod
//! ```

use daisy::prelude::*;
use daisy_ppc::encode::encode;
use daisy_ppc::insn::Insn;
use daisy_ppc::PpcIsa;
use daisy_ppc::{Asm, Gpr};

fn main() {
    let mut a = Asm::new(0x1000);
    // Patch target starts as "li r5, 111".
    // The program overwrites it with "li r5, 999" before reaching it.
    let patched = encode(&Insn::Addi { rt: Gpr(5), ra: Gpr(0), si: 999 });
    a.li32(Gpr(4), patched);
    a.la(Gpr(3), "patch");
    a.stw(Gpr(4), 0, Gpr(3)); // the code modification
    a.label("patch");
    a.li(Gpr(5), 111); // will be replaced at run time
    a.sc();
    let prog = a.finish().unwrap();

    let mut sys = DaisySystem::<PpcIsa>::builder().mem_size(0x10000).build();
    sys.load(&prog).unwrap();
    sys.run(1_000_000).unwrap();

    println!("r5 = {} (the patched instruction executed)", sys.cpu.gpr[5]);
    println!(
        "code-modification events: {}, page invalidations: {}, groups translated: {}",
        sys.stats.code_modifications, sys.vmm.stats.invalidations, sys.vmm.stats.groups_translated,
    );
    assert_eq!(sys.cpu.gpr[5], 999);
    assert!(sys.vmm.stats.invalidations >= 1);
}
