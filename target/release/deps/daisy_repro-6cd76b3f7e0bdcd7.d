/root/repo/target/release/deps/daisy_repro-6cd76b3f7e0bdcd7.d: src/lib.rs

/root/repo/target/release/deps/libdaisy_repro-6cd76b3f7e0bdcd7.rlib: src/lib.rs

/root/repo/target/release/deps/libdaisy_repro-6cd76b3f7e0bdcd7.rmeta: src/lib.rs

src/lib.rs:
