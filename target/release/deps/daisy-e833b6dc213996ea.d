/root/repo/target/release/deps/daisy-e833b6dc213996ea.d: crates/core/src/lib.rs crates/core/src/convert.rs crates/core/src/engine.rs crates/core/src/oracle.rs crates/core/src/overhead.rs crates/core/src/precise.rs crates/core/src/sched.rs crates/core/src/stats.rs crates/core/src/system.rs crates/core/src/trace.rs crates/core/src/vmm.rs

/root/repo/target/release/deps/daisy-e833b6dc213996ea: crates/core/src/lib.rs crates/core/src/convert.rs crates/core/src/engine.rs crates/core/src/oracle.rs crates/core/src/overhead.rs crates/core/src/precise.rs crates/core/src/sched.rs crates/core/src/stats.rs crates/core/src/system.rs crates/core/src/trace.rs crates/core/src/vmm.rs

crates/core/src/lib.rs:
crates/core/src/convert.rs:
crates/core/src/engine.rs:
crates/core/src/oracle.rs:
crates/core/src/overhead.rs:
crates/core/src/precise.rs:
crates/core/src/sched.rs:
crates/core/src/stats.rs:
crates/core/src/system.rs:
crates/core/src/trace.rs:
crates/core/src/vmm.rs:
