/root/repo/target/debug/deps/daisy_ppc-7339e57df5f7f264.d: crates/ppc/src/lib.rs crates/ppc/src/asm.rs crates/ppc/src/decode.rs crates/ppc/src/encode.rs crates/ppc/src/insn.rs crates/ppc/src/interp.rs crates/ppc/src/mem.rs crates/ppc/src/parse.rs crates/ppc/src/reg.rs Cargo.toml

/root/repo/target/debug/deps/libdaisy_ppc-7339e57df5f7f264.rmeta: crates/ppc/src/lib.rs crates/ppc/src/asm.rs crates/ppc/src/decode.rs crates/ppc/src/encode.rs crates/ppc/src/insn.rs crates/ppc/src/interp.rs crates/ppc/src/mem.rs crates/ppc/src/parse.rs crates/ppc/src/reg.rs Cargo.toml

crates/ppc/src/lib.rs:
crates/ppc/src/asm.rs:
crates/ppc/src/decode.rs:
crates/ppc/src/encode.rs:
crates/ppc/src/insn.rs:
crates/ppc/src/interp.rs:
crates/ppc/src/mem.rs:
crates/ppc/src/parse.rs:
crates/ppc/src/reg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
