/root/repo/target/debug/deps/translator-6630f3959cb90ddd.d: crates/bench/benches/translator.rs

/root/repo/target/debug/deps/translator-6630f3959cb90ddd: crates/bench/benches/translator.rs

crates/bench/benches/translator.rs:
