//! Execution-engine throughput: the native host-code tier versus the
//! packed execution format versus the reference tree-walking engine,
//! end-to-end (translate and run) over all nine paper workloads — the
//! simulation speed that makes the Chapter 5 sweeps practical.
//!
//! Besides the criterion timings, a full `cargo bench` run writes
//! `BENCH_engine.json` at the repository root: per workload, the
//! wall-clock time and host nanoseconds per guest instruction for each
//! engine, the packed-over-tree and native-over-packed speedups, the
//! fraction of tree instructions the native tier executed as compiled
//! x86-64 (`native_coverage`), and the geometric-mean speedups across
//! the suite. All three tiers live in the same binary
//! ([`DaisySystemBuilder::packed_execution`],
//! [`DaisySystemBuilder::native_execution`]) and each keeps its code
//! shape, so the ratios are an honest before/after. Under `cargo test`
//! the suite runs a single quick correctness pass (all engines,
//! results checked) and leaves the JSON untouched — debug-build
//! timings would be meaningless.
//!
//! On hosts without native support (non-x86-64) the native column
//! falls back to packed execution; regenerate the JSON on x86-64.
//!
//! [`DaisySystemBuilder::packed_execution`]:
//! daisy::system::DaisySystemBuilder::packed_execution
//! [`DaisySystemBuilder::native_execution`]:
//! daisy::system::DaisySystemBuilder::native_execution

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use daisy::system::DaisySystem;
use daisy_workloads::Workload;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Tree,
    Packed,
    Native,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Tree => "tree",
            Mode::Packed => "packed",
            Mode::Native => "native",
        }
    }
}

fn run_once(
    w: &Workload,
    prog: &daisy_ppc::asm::Program,
    mode: Mode,
) -> DaisySystem<daisy_ppc::PpcIsa> {
    let mut sys = DaisySystem::<daisy_ppc::PpcIsa>::builder()
        .mem_size(w.mem_size)
        .packed_execution(mode != Mode::Tree)
        .native_execution(mode == Mode::Native)
        .build();
    sys.load(prog).unwrap();
    sys.run(10 * w.max_instrs).unwrap();
    w.check(&sys.cpu, &sys.mem)
        .unwrap_or_else(|e| panic!("{} ({}): wrong guest result: {e}", w.name, mode.name()));
    sys
}

/// Best-of-`reps` wall seconds plus the run's stats.
fn measure(
    w: &Workload,
    prog: &daisy_ppc::asm::Program,
    mode: Mode,
    reps: u32,
) -> (f64, DaisySystem<daisy_ppc::PpcIsa>) {
    let mut best = f64::INFINITY;
    let mut sys = None;
    for _ in 0..reps {
        let t = Instant::now();
        let s = run_once(w, prog, mode);
        best = best.min(t.elapsed().as_secs_f64());
        sys = Some(s);
    }
    (best, sys.unwrap())
}

fn bench_engine(c: &mut Criterion) {
    let full = std::env::args().any(|a| a == "--bench");

    // Criterion-timed subset (kept small; the JSON below covers the
    // full suite).
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    for name in ["c_sieve", "wc", "fgrep"] {
        let w = daisy_workloads::by_name(name).unwrap();
        let prog = w.program();
        for mode in [Mode::Native, Mode::Packed, Mode::Tree] {
            g.bench_with_input(BenchmarkId::new(name, mode.name()), &mode, |b, &m| {
                b.iter(|| black_box(run_once(&w, &prog, m)));
            });
        }
    }
    g.finish();

    if !full {
        // Smoke mode: the correctness passes above already ran all
        // engines; don't overwrite the measured JSON with debug noise.
        return;
    }

    let mut rows = Vec::new();
    let mut log_ratio_sum = 0.0;
    let mut log_native_ratio_sum = 0.0;
    let all = daisy_workloads::all();
    for w in &all {
        let prog = w.program();
        let (tree_s, tsys) = measure(w, &prog, Mode::Tree, 3);
        let (packed_s, psys) = measure(w, &prog, Mode::Packed, 3);
        let (native_s, nsys) = measure(w, &prog, Mode::Native, 3);
        assert_eq!(
            tsys.stats.vliws_executed, psys.stats.vliws_executed,
            "{}: engines disagree on work done",
            w.name
        );
        assert_eq!(
            psys.stats.vliws_executed, nsys.stats.vliws_executed,
            "{}: native tier disagrees on work done",
            w.name
        );
        let guest = tsys.stats.approx_base_instrs().max(1) as f64;
        let ratio = tree_s / packed_s;
        let native_ratio = packed_s / native_s;
        log_ratio_sum += ratio.ln();
        log_native_ratio_sum += native_ratio.ln();
        let coverage = nsys
            .native_stats()
            .map(|ns| ns.vliws_native as f64 / nsys.stats.vliws_executed.max(1) as f64)
            .unwrap_or(0.0);
        // Why the tier fell short of full coverage, by refusal kind
        // (all zeros on a fully covered workload).
        let refusals = nsys
            .native_stats()
            .map(|ns| ns.refusal_histogram)
            .unwrap_or([0; daisy::native::Refusal::COUNT]);
        let refusal_json = daisy::native::Refusal::ALL
            .iter()
            .map(|r| format!("\"{}\": {}", r.as_str(), refusals[r.index()]))
            .collect::<Vec<_>>()
            .join(", ");
        let mut row = String::new();
        let _ = write!(
            row,
            concat!(
                "    {{\"name\": \"{}\", ",
                "\"tree\": {{\"wall_ms\": {:.3}, \"ns_per_guest_instr\": {:.2}}}, ",
                "\"packed\": {{\"wall_ms\": {:.3}, \"ns_per_guest_instr\": {:.2}}}, ",
                "\"native\": {{\"wall_ms\": {:.3}, \"ns_per_guest_instr\": {:.2}, ",
                "\"coverage\": {:.3}, \"refusals\": {{{}}}}}, ",
                "\"speedup\": {:.3}, \"native_speedup\": {:.3}}}"
            ),
            w.name,
            tree_s * 1e3,
            tree_s * 1e9 / guest,
            packed_s * 1e3,
            packed_s * 1e9 / guest,
            native_s * 1e3,
            native_s * 1e9 / guest,
            coverage,
            refusal_json,
            ratio,
            native_ratio
        );
        rows.push(row);
    }
    let geomean = (log_ratio_sum / all.len() as f64).exp();
    let native_geomean = (log_native_ratio_sum / all.len() as f64).exp();
    let json = format!(
        concat!(
            "{{\n  \"bench\": \"engine\",\n",
            "  \"geomean_speedup\": {:.3},\n",
            "  \"native_geomean_speedup\": {:.3},\n",
            "  \"workloads\": [\n{}\n  ]\n}}\n"
        ),
        geomean,
        native_geomean,
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    std::fs::write(path, json).expect("write BENCH_engine.json");
    println!("engine geomean speedup (packed vs tree): {geomean:.3}x");
    println!("engine geomean speedup (native vs packed): {native_geomean:.3}x");
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
