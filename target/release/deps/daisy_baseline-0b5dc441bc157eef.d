/root/repo/target/release/deps/daisy_baseline-0b5dc441bc157eef.d: crates/baseline/src/lib.rs crates/baseline/src/ppc604e.rs crates/baseline/src/profile.rs crates/baseline/src/trad.rs

/root/repo/target/release/deps/libdaisy_baseline-0b5dc441bc157eef.rlib: crates/baseline/src/lib.rs crates/baseline/src/ppc604e.rs crates/baseline/src/profile.rs crates/baseline/src/trad.rs

/root/repo/target/release/deps/libdaisy_baseline-0b5dc441bc157eef.rmeta: crates/baseline/src/lib.rs crates/baseline/src/ppc604e.rs crates/baseline/src/profile.rs crates/baseline/src/trad.rs

crates/baseline/src/lib.rs:
crates/baseline/src/ppc604e.rs:
crates/baseline/src/profile.rs:
crates/baseline/src/trad.rs:
