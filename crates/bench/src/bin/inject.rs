//! `inject` — run deterministic fault-injection campaigns against the
//! VMM and report per-kind results. Exits non-zero if any campaign
//! panics, diverges from the pure-interpreter oracle, or fails to
//! record a ladder step.
//!
//! ```text
//! inject [--seed N] [--seeds N] [--kind NAME] [--tree] [--no-chain] [--native] [WORKLOAD ...]
//!
//!   --seed N      run exactly one seed (default: a seed sweep)
//!   --seeds N     seeds per (workload, kind) pair (default 32)
//!   --kind NAME   restrict to one fault kind (default: all six;
//!                 `preempt` selects preemption fuzzing against the
//!                 modeled SoC and defaults WORKLOAD to soc_firmware)
//!   --tree        use the reference tree engine instead of packed
//!   --no-chain    disable direct group chaining
//!   --native      start the ladder at the native x86-64 rung
//!   WORKLOAD      workload names (default: c_sieve wc cmp hist)
//! ```
//!
//! Every campaign's final architected state — registers and all of
//! memory — is diffed bit for bit against the interpreter. This is the
//! CI smoke gate for the graceful-degradation ladder (`scripts/ci.sh`).

use daisy::inject::{run_campaign, CampaignConfig, FaultKind};
use std::panic::{catch_unwind, AssertUnwindSafe};

struct Options {
    seed: Option<u64>,
    seeds: u64,
    kinds: Vec<FaultKind>,
    packed: bool,
    chaining: bool,
    native: bool,
    workloads: Vec<String>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        seed: None,
        seeds: 32,
        kinds: FaultKind::ALL.to_vec(),
        packed: true,
        chaining: true,
        native: false,
        workloads: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                let n = args.next().expect("--seed needs a value");
                opts.seed = Some(n.parse().expect("--seed needs an integer"));
            }
            "--seeds" => {
                let n = args.next().expect("--seeds needs a value");
                opts.seeds = n.parse().expect("--seeds needs an integer");
            }
            "--kind" => {
                let name = args.next().expect("--kind needs a name");
                let kind = FaultKind::by_name(&name)
                    .unwrap_or_else(|| panic!("unknown fault kind {name:?}"));
                opts.kinds = vec![kind];
            }
            "--tree" => opts.packed = false,
            "--no-chain" => opts.chaining = false,
            "--native" => opts.native = true,
            "--help" | "-h" => {
                println!(
                    "inject [--seed N] [--seeds N] [--kind NAME] [--tree] [--no-chain] \
                     [--native] [WORKLOAD ...]"
                );
                std::process::exit(0);
            }
            other => opts.workloads.push(other.to_string()),
        }
    }
    if opts.workloads.is_empty() {
        // Preemption fuzzing targets interrupt-handling firmware; the
        // user-style kernels can't satisfy its clock-exactness
        // contract (they contain unconditional branches).
        if opts.kinds == [FaultKind::Preempt] {
            opts.workloads = vec!["soc_firmware".to_string()];
        } else {
            opts.workloads = ["c_sieve", "wc", "cmp", "hist"].map(String::from).to_vec();
        }
    }
    opts
}

fn main() {
    let opts = parse_args();
    let seeds: Vec<u64> = match opts.seed {
        Some(s) => vec![s],
        None => (0..opts.seeds).collect(),
    };

    let mut ran = 0u64;
    let mut failures = 0u64;
    for name in &opts.workloads {
        let w =
            daisy_workloads::by_name(name).unwrap_or_else(|| panic!("unknown workload {name:?}"));
        for &kind in &opts.kinds {
            let mut injections = 0u64;
            let mut degradations = 0usize;
            let mut interrupts = 0u64;
            let mut native_yields = 0u64;
            let mut kind_failures = 0u64;
            for &seed in &seeds {
                ran += 1;
                let mut cfg = CampaignConfig {
                    packed: opts.packed,
                    chaining: opts.chaining,
                    native: opts.native,
                    ..CampaignConfig::new(kind, seed)
                };
                if kind == FaultKind::Preempt {
                    cfg = cfg.with_bus(daisy_soc::standard_bus);
                }
                match catch_unwind(AssertUnwindSafe(|| run_campaign(&w, &cfg))) {
                    Ok(Ok(out)) => {
                        injections += out.injections;
                        degradations += out.degradations;
                        interrupts += out.interrupts_taken;
                        native_yields += out.native_yield_preempts;
                    }
                    Ok(Err(e)) => {
                        eprintln!("FAIL {name}/{kind} seed {seed}: {e}");
                        kind_failures += 1;
                    }
                    Err(_) => {
                        eprintln!("PANIC {name}/{kind} seed {seed}");
                        kind_failures += 1;
                    }
                }
            }
            if degradations == 0 && kind_failures == 0 {
                eprintln!("FAIL {name}/{kind}: no campaign recorded a ladder step");
                kind_failures += 1;
            }
            failures += kind_failures;
            println!(
                "{name:>12} {kind:>15}  seeds {:>3}  injections {injections:>6}  \
                 degradations {degradations:>4}  interrupts {interrupts:>5}  \
                 native-yield-preempts {native_yields:>4}  failures {kind_failures}",
                seeds.len()
            );
        }
    }
    println!("{ran} campaigns, {failures} failures");
    if failures > 0 {
        std::process::exit(1);
    }
}
