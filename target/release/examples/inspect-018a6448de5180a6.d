/root/repo/target/release/examples/inspect-018a6448de5180a6.d: examples/inspect.rs

/root/repo/target/release/examples/inspect-018a6448de5180a6: examples/inspect.rs

examples/inspect.rs:
