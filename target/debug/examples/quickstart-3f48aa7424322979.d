/root/repo/target/debug/examples/quickstart-3f48aa7424322979.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-3f48aa7424322979: examples/quickstart.rs

examples/quickstart.rs:
