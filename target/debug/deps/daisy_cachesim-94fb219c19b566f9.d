/root/repo/target/debug/deps/daisy_cachesim-94fb219c19b566f9.d: crates/cachesim/src/lib.rs

/root/repo/target/debug/deps/libdaisy_cachesim-94fb219c19b566f9.rmeta: crates/cachesim/src/lib.rs

crates/cachesim/src/lib.rs:
