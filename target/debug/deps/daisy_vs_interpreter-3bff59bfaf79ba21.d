/root/repo/target/debug/deps/daisy_vs_interpreter-3bff59bfaf79ba21.d: tests/daisy_vs_interpreter.rs

/root/repo/target/debug/deps/daisy_vs_interpreter-3bff59bfaf79ba21: tests/daisy_vs_interpreter.rs

tests/daisy_vs_interpreter.rs:
