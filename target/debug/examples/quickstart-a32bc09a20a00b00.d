/root/repo/target/debug/examples/quickstart-a32bc09a20a00b00.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-a32bc09a20a00b00: examples/quickstart.rs

examples/quickstart.rs:
