/root/repo/target/release/deps/dispatch-16d1aae2033cec12.d: crates/bench/benches/dispatch.rs

/root/repo/target/release/deps/dispatch-16d1aae2033cec12: crates/bench/benches/dispatch.rs

crates/bench/benches/dispatch.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
