//! Textual PowerPC assembly parser.
//!
//! A front end over [`crate::asm::Asm`] accepting the familiar
//! AIX-style syntax, so programs can be written as text instead of
//! builder calls:
//!
//! ```
//! use daisy_ppc::parse::assemble;
//!
//! let prog = assemble(
//!     0x1000,
//!     r"
//!     ; sum 1..10
//!         li      r3, 0
//!         li      r4, 10
//!         mtctr   r4
//!     loop:
//!         mfctr   r5
//!         add     r3, r3, r5
//!         bdnz    loop
//!         sc
//!     ",
//! )
//! .unwrap();
//! assert_eq!(prog.code.len(), 7);
//! ```
//!
//! Supported: the fixed-point subset this crate architects — register
//! and immediate arithmetic/logic, shifts and rotates, `d(rA)` and
//! indexed loads/stores, `lmw`/`stmw`, compares, CR logic, SPR moves,
//! all branch forms with label targets, `sc`/`rfi`/`sync`/`tw[i]`,
//! comments (`#` or `;`), and `label:` definitions.

use crate::asm::{Asm, AsmError, Program};
use crate::insn::{bo, Insn, MemWidth};
use crate::reg::{CrBit, CrField, Gpr, Spr};
use std::fmt;

/// A parse failure, with the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Assembler-or-parse error from [`assemble`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TextAsmError {
    /// The text failed to parse.
    Parse(ParseError),
    /// Labels failed to resolve or a branch went out of range.
    Asm(AsmError),
}

impl fmt::Display for TextAsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TextAsmError::Parse(e) => e.fmt(f),
            TextAsmError::Asm(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for TextAsmError {}

impl From<ParseError> for TextAsmError {
    fn from(e: ParseError) -> Self {
        TextAsmError::Parse(e)
    }
}

impl From<AsmError> for TextAsmError {
    fn from(e: AsmError) -> Self {
        TextAsmError::Asm(e)
    }
}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError { line, message: message.into() }
}

struct Operands<'a> {
    parts: Vec<&'a str>,
    at: usize,
    line: usize,
}

impl<'a> Operands<'a> {
    fn new(rest: &'a str, line: usize) -> Operands<'a> {
        let parts = rest.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
        Operands { parts, at: 0, line }
    }

    fn next(&mut self) -> Result<&'a str, ParseError> {
        let p = self.parts.get(self.at).ok_or_else(|| err(self.line, "missing operand"))?;
        self.at += 1;
        Ok(p)
    }

    fn done(&self) -> Result<(), ParseError> {
        if self.at == self.parts.len() {
            Ok(())
        } else {
            Err(err(self.line, format!("unexpected extra operand `{}`", self.parts[self.at])))
        }
    }

    fn gpr(&mut self) -> Result<Gpr, ParseError> {
        let t = self.next()?;
        parse_gpr(t).ok_or_else(|| err(self.line, format!("expected a GPR, got `{t}`")))
    }

    fn crf(&mut self) -> Result<CrField, ParseError> {
        let t = self.next()?;
        let n = t
            .strip_prefix("cr")
            .and_then(|s| s.parse::<u8>().ok())
            .filter(|n| *n < 8)
            .ok_or_else(|| err(self.line, format!("expected cr0..cr7, got `{t}`")))?;
        Ok(CrField(n))
    }

    fn imm(&mut self) -> Result<i64, ParseError> {
        let t = self.next()?;
        parse_imm(t).ok_or_else(|| err(self.line, format!("expected an immediate, got `{t}`")))
    }

    fn label(&mut self) -> Result<&'a str, ParseError> {
        self.next()
    }

    /// Parses `d(rA)` memory syntax.
    fn mem(&mut self) -> Result<(i16, Gpr), ParseError> {
        let t = self.next()?;
        let open =
            t.find('(').ok_or_else(|| err(self.line, format!("expected `d(rA)`, got `{t}`")))?;
        let close =
            t.strip_suffix(')').ok_or_else(|| err(self.line, format!("missing `)` in `{t}`")))?;
        let d = parse_imm(t[..open].trim())
            .and_then(|v| i16::try_from(v).ok())
            .ok_or_else(|| err(self.line, format!("bad displacement in `{t}`")))?;
        let ra = parse_gpr(close[open + 1..].trim())
            .ok_or_else(|| err(self.line, format!("bad base register in `{t}`")))?;
        Ok((d, ra))
    }
}

fn parse_gpr(t: &str) -> Option<Gpr> {
    t.strip_prefix('r').and_then(|s| s.parse::<u8>().ok()).filter(|n| *n < 32).map(Gpr)
}

fn parse_imm(t: &str) -> Option<i64> {
    let (neg, t) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t),
    };
    let v = if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else {
        t.parse::<i64>().ok()?
    };
    Some(if neg { -v } else { v })
}

fn i16_of(line: usize, v: i64) -> Result<i16, ParseError> {
    i16::try_from(v).map_err(|_| err(line, format!("immediate {v} does not fit 16 signed bits")))
}

fn u16_of(line: usize, v: i64) -> Result<u16, ParseError> {
    if (0..=0xFFFF).contains(&v) {
        Ok(v as u16)
    } else {
        Err(err(line, format!("immediate {v} does not fit 16 unsigned bits")))
    }
}

fn sh_of(line: usize, v: i64) -> Result<u8, ParseError> {
    if (0..32).contains(&v) {
        Ok(v as u8)
    } else {
        Err(err(line, format!("shift/rotate amount {v} out of 0..32")))
    }
}

/// Assembles a text listing at `base`.
///
/// # Errors
///
/// Returns [`TextAsmError::Parse`] for syntax errors (with line
/// numbers) and [`TextAsmError::Asm`] for unresolved labels or
/// out-of-range branches.
pub fn assemble(base: u32, src: &str) -> Result<Program, TextAsmError> {
    let mut a = Asm::new(base);
    for (i, raw) in src.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split(['#', ';']).next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let line = if let Some(colon) = line.find(':') {
            let (label, rest) = line.split_at(colon);
            a.label(label.trim());
            rest[1..].trim()
        } else {
            line
        };
        if line.is_empty() {
            continue;
        }
        let (mnem, rest) = match line.find(char::is_whitespace) {
            Some(sp) => line.split_at(sp),
            None => (line, ""),
        };
        parse_insn(&mut a, line_no, &mnem.to_ascii_lowercase(), rest.trim())?;
    }
    Ok(a.finish()?)
}

#[allow(clippy::too_many_lines)]
fn parse_insn(a: &mut Asm, line: usize, mnem: &str, rest: &str) -> Result<(), ParseError> {
    let mut o = Operands::new(rest, line);
    match mnem {
        "li" => {
            let (rt, v) = (o.gpr()?, o.imm()?);
            // Accept any 32-bit constant; widen to lis/ori as needed.
            if let Ok(si) = i16::try_from(v) {
                a.li(rt, si);
            } else if (0..=0xFFFF_FFFF).contains(&v) || i32::try_from(v).is_ok() {
                a.li32(rt, v as u32);
            } else {
                return Err(err(line, format!("constant {v} does not fit 32 bits")));
            }
        }
        "lis" => {
            let (rt, v) = (o.gpr()?, o.imm()?);
            a.lis(rt, i16_of(line, v)?);
        }
        "mr" => {
            let (rt, rs) = (o.gpr()?, o.gpr()?);
            a.mr(rt, rs);
        }
        "la" => {
            let rt = o.gpr()?;
            let l = o.label()?;
            a.la(rt, l);
        }
        "nop" => a.nop(),
        "addi" | "addic" | "addic." | "subfic" | "mulli" => {
            let (rt, ra, v) = (o.gpr()?, o.gpr()?, o.imm()?);
            let si = i16_of(line, v)?;
            match mnem {
                "addi" => a.addi(rt, ra, si),
                "addic" => a.addic(rt, ra, si),
                "addic." => a.addic_(rt, ra, si),
                "subfic" => a.subfic(rt, ra, si),
                _ => a.mulli(rt, ra, si),
            }
        }
        "add" | "add." | "addc" | "adde" | "subf" | "subf." | "subfc" | "subfe" | "mullw"
        | "mulhwu" | "divw" | "divwu" | "and" | "and." | "or" | "xor" | "nor" | "andc" => {
            let (d, x, y) = (o.gpr()?, o.gpr()?, o.gpr()?);
            match mnem {
                "add" => a.add(d, x, y),
                "add." => a.add_(d, x, y),
                "addc" => a.addc(d, x, y),
                "adde" => a.adde(d, x, y),
                "subf" => a.subf(d, x, y),
                "subf." => a.subf_(d, x, y),
                "subfc" => a.subfc(d, x, y),
                "subfe" => a.subfe(d, x, y),
                "mullw" => a.mullw(d, x, y),
                "mulhwu" => a.mulhwu(d, x, y),
                "divw" => a.divw(d, x, y),
                "divwu" => a.divwu(d, x, y),
                "and" => a.and(d, x, y),
                "and." => a.and_(d, x, y),
                "or" => a.or(d, x, y),
                "xor" => a.xor(d, x, y),
                "nor" => a.nor(d, x, y),
                _ => a.andc(d, x, y),
            }
        }
        "neg" | "addze" | "extsb" | "extsh" | "cntlzw" => {
            let (d, s) = (o.gpr()?, o.gpr()?);
            match mnem {
                "neg" => a.neg(d, s),
                "addze" => a.addze(d, s),
                "extsb" => a.extsb(d, s),
                "extsh" => a.extsh(d, s),
                _ => a.cntlzw(d, s),
            }
        }
        "andi." | "ori" | "xori" => {
            let (d, s, v) = (o.gpr()?, o.gpr()?, o.imm()?);
            let ui = u16_of(line, v)?;
            match mnem {
                "andi." => a.andi_(d, s, ui),
                "ori" => a.ori(d, s, ui),
                _ => a.xori(d, s, ui),
            }
        }
        "slw" | "srw" | "sraw" => {
            let (d, s, b) = (o.gpr()?, o.gpr()?, o.gpr()?);
            match mnem {
                "slw" => a.slw(d, s, b),
                "srw" => a.srw(d, s, b),
                _ => a.sraw(d, s, b),
            }
        }
        "slwi" | "srwi" | "srawi" | "clrlwi" => {
            let (d, s, v) = (o.gpr()?, o.gpr()?, o.imm()?);
            let sh = sh_of(line, v)?;
            match mnem {
                "slwi" => a.slwi(d, s, sh),
                "srwi" => a.srwi(d, s, sh),
                "srawi" => a.srawi(d, s, sh),
                _ => a.clrlwi(d, s, sh),
            }
        }
        "rlwinm" => {
            let (d, s) = (o.gpr()?, o.gpr()?);
            let (sh, mb, me) =
                (sh_of(line, o.imm()?)?, sh_of(line, o.imm()?)?, sh_of(line, o.imm()?)?);
            a.rlwinm(d, s, sh, mb, me);
        }
        "cmpw" | "cmplw" => {
            let bf = o.crf()?;
            let (x, y) = (o.gpr()?, o.gpr()?);
            if mnem == "cmpw" {
                a.cmpw(bf, x, y);
            } else {
                a.cmplw(bf, x, y);
            }
        }
        "cmpwi" => {
            let bf = o.crf()?;
            let x = o.gpr()?;
            let v = i16_of(line, o.imm()?)?;
            a.cmpwi(bf, x, v);
        }
        "cmplwi" => {
            let bf = o.crf()?;
            let x = o.gpr()?;
            let v = u16_of(line, o.imm()?)?;
            a.cmplwi(bf, x, v);
        }
        "lwz" | "lbz" | "lhz" | "lha" | "lwzu" | "lbzu" | "stw" | "stb" | "sth" | "stwu"
        | "stbu" => {
            let r = o.gpr()?;
            let (d, ra) = o.mem()?;
            match mnem {
                "lwz" => a.lwz(r, d, ra),
                "lbz" => a.lbz(r, d, ra),
                "lhz" => a.lhz(r, d, ra),
                "lha" => a.lha(r, d, ra),
                "lwzu" => a.lwzu(r, d, ra),
                "lbzu" => a.lbzu(r, d, ra),
                "stw" => a.stw(r, d, ra),
                "stb" => a.stb(r, d, ra),
                "sth" => a.sth(r, d, ra),
                "stwu" => a.stwu(r, d, ra),
                _ => a.stbu(r, d, ra),
            }
        }
        "lwzx" | "lbzx" | "lhzx" | "stwx" | "stbx" | "sthx" => {
            let (r, x, y) = (o.gpr()?, o.gpr()?, o.gpr()?);
            match mnem {
                "lwzx" => a.lwzx(r, x, y),
                "lbzx" => a.lbzx(r, x, y),
                "lhzx" => a.lhzx(r, x, y),
                "stwx" => a.stwx(r, x, y),
                "stbx" => a.stbx(r, x, y),
                _ => a.sthx(r, x, y),
            }
        }
        "lmw" | "stmw" => {
            let r = o.gpr()?;
            let (d, ra) = o.mem()?;
            if mnem == "lmw" {
                a.lmw(r, d, ra);
            } else {
                a.stmw(r, d, ra);
            }
        }
        "b" | "bl" => {
            let l = o.label()?;
            if mnem == "b" {
                a.b(l);
            } else {
                a.bl(l);
            }
        }
        "blr" => a.blr(),
        "bctr" => a.bctr(),
        "bctrl" => a.bctrl(),
        "bdnz" | "bdz" => {
            let l = o.label()?;
            if mnem == "bdnz" {
                a.bdnz(l);
            } else {
                a.bdz(l);
            }
        }
        "beq" | "bne" | "blt" | "bge" | "bgt" | "ble" => {
            // Optional leading crN operand, defaulting to cr0.
            let (bf, l) =
                if o.parts.len() == 2 { (o.crf()?, o.label()?) } else { (CrField(0), o.label()?) };
            match mnem {
                "beq" => a.beq(bf, l),
                "bne" => a.bne(bf, l),
                "blt" => a.blt(bf, l),
                "bge" => a.bge(bf, l),
                "bgt" => a.bgt(bf, l),
                _ => a.ble(bf, l),
            }
        }
        "mflr" => a.mflr(o.gpr()?),
        "mtlr" => a.mtlr(o.gpr()?),
        "mfctr" => a.mfctr(o.gpr()?),
        "mtctr" => a.mtctr(o.gpr()?),
        "mfcr" => a.mfcr(o.gpr()?),
        "mfspr" => {
            let rt = o.gpr()?;
            let spr = parse_spr(o.next()?).ok_or_else(|| err(line, "unknown SPR"))?;
            a.emit(Insn::Mfspr { rt, spr });
        }
        "mtspr" => {
            let spr = parse_spr(o.next()?).ok_or_else(|| err(line, "unknown SPR"))?;
            let rs = o.gpr()?;
            a.emit(Insn::Mtspr { spr, rs });
        }
        "cror" => {
            let (bt, ba, bb) = (crbit(&mut o)?, crbit(&mut o)?, crbit(&mut o)?);
            a.cror(bt, ba, bb);
        }
        "crand" => {
            let (bt, ba, bb) = (crbit(&mut o)?, crbit(&mut o)?, crbit(&mut o)?);
            a.crand(bt, ba, bb);
        }
        "sc" => a.sc(),
        "rfi" => a.rfi(),
        "sync" => a.emit(Insn::Sync),
        "isync" => a.emit(Insn::Isync),
        "twi" => {
            let to = o.imm()?;
            let ra = o.gpr()?;
            let si = i16_of(line, o.imm()?)?;
            if !(0..32).contains(&to) {
                return Err(err(line, "trap TO field out of 0..32"));
            }
            a.twi(to as u8, ra, si);
        }
        ".word" => {
            let v = o.imm()?;
            a.word(v as u32);
        }
        other => return Err(err(line, format!("unknown mnemonic `{other}`"))),
    }
    o.done()
}

fn crbit(o: &mut Operands) -> Result<CrBit, ParseError> {
    let v = o.imm()?;
    if (0..32).contains(&v) {
        Ok(CrBit(v as u8))
    } else {
        Err(err(o.line, format!("CR bit {v} out of 0..32")))
    }
}

fn parse_spr(t: &str) -> Option<Spr> {
    Some(match t {
        "xer" => Spr::Xer,
        "lr" => Spr::Lr,
        "ctr" => Spr::Ctr,
        "srr0" => Spr::Srr0,
        "srr1" => Spr::Srr1,
        "dar" => Spr::Dar,
        "dsisr" => Spr::Dsisr,
        "sprg0" => Spr::Sprg0,
        "sprg1" => Spr::Sprg1,
        _ => return None,
    })
}

/// Width helper kept public for tooling that wants to classify parsed
/// memory mnemonics.
pub fn width_of_mnemonic(mnem: &str) -> Option<MemWidth> {
    match mnem {
        "lbz" | "lbzx" | "lbzu" | "stb" | "stbx" | "stbu" => Some(MemWidth::Byte),
        "lhz" | "lhzx" | "lha" | "sth" | "sthx" => Some(MemWidth::Half),
        "lwz" | "lwzx" | "lwzu" | "stw" | "stwx" | "stwu" | "lmw" | "stmw" => Some(MemWidth::Word),
        _ => None,
    }
}

/// Returns the BO field a simplified conditional mnemonic uses (for
/// tests and tooling).
pub fn bo_of(mnem: &str) -> Option<u8> {
    Some(match mnem {
        "beq" | "blt" | "bgt" => bo::IF_TRUE,
        "bne" | "bge" | "ble" => bo::IF_FALSE,
        "bdnz" => bo::DNZ,
        "bdz" => bo::DZ,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{Cpu, StopReason};
    use crate::mem::Memory;

    fn run(src: &str) -> Cpu {
        let prog = assemble(0x1000, src).unwrap();
        let mut mem = Memory::new(0x20000);
        prog.load_into(&mut mem).unwrap();
        let mut cpu = Cpu::new(prog.entry);
        assert_eq!(cpu.run(&mut mem, 1_000_000).unwrap(), StopReason::Syscall);
        cpu
    }

    #[test]
    fn sum_loop_from_text() {
        let cpu = run(r"
            li r3, 0
            li r4, 10
            mtctr r4
        loop:
            mfctr r5
            add r3, r3, r5
            bdnz loop
            sc
        ");
        assert_eq!(cpu.gpr[3], 55);
    }

    #[test]
    fn memory_and_hex_immediates() {
        let cpu = run(r"
            li r1, 0x8000          ; data window
            li r3, -2
            stw r3, 8(r1)
            lhz r4, 8(r1)          # high half of 0xFFFFFFFE
            lbz r5, 11(r1)
            lwzx r6, r1, r0
            sc
        ");
        assert_eq!(cpu.gpr[4], 0xFFFF);
        assert_eq!(cpu.gpr[5], 0xFE);
    }

    #[test]
    fn conditional_branches_with_and_without_cr() {
        let cpu = run(r"
            li r3, 7
            cmpwi cr0, r3, 7
            beq hit
            li r4, 0
            sc
        hit:
            cmpwi cr2, r3, 9
            blt cr2, hit2
            li r4, 1
            sc
        hit2:
            li r4, 42
            sc
        ");
        assert_eq!(cpu.gpr[4], 42);
    }

    #[test]
    fn calls_and_large_constants() {
        let cpu = run(r"
            li r3, 0x12345678
            bl double
            sc
        double:
            add r3, r3, r3
            blr
        ");
        assert_eq!(cpu.gpr[3], 0x2468_ACF0);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let e = assemble(0, "li r3, 1\n frobnicate r1\n").unwrap_err();
        match e {
            TextAsmError::Parse(p) => {
                assert_eq!(p.line, 2);
                assert!(p.message.contains("frobnicate"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
        let e = assemble(0, "li r3, 99999999999").unwrap_err();
        assert!(matches!(e, TextAsmError::Parse(_)));
        let e = assemble(0, "b nowhere").unwrap_err();
        assert!(matches!(e, TextAsmError::Asm(AsmError::UndefinedLabel(_))));
    }

    #[test]
    fn operand_count_is_checked() {
        assert!(assemble(0, "add r1, r2").is_err());
        assert!(assemble(0, "add r1, r2, r3, r4").is_err());
        assert!(assemble(0, "lwz r1, 4").is_err());
    }

    #[test]
    fn text_matches_builder_encoding() {
        let text = assemble(0x1000, "addi r3, r4, -5\nsrawi r6, r7, 3\nsc\n").unwrap();
        let mut b = Asm::new(0x1000);
        b.addi(Gpr(3), Gpr(4), -5);
        b.srawi(Gpr(6), Gpr(7), 3);
        b.sc();
        assert_eq!(text.code, b.finish().unwrap().code);
    }

    #[test]
    fn helpers_classify() {
        assert_eq!(width_of_mnemonic("lhz"), Some(MemWidth::Half));
        assert_eq!(width_of_mnemonic("bogus"), None);
        assert_eq!(bo_of("bdnz"), Some(bo::DNZ));
    }
}
