/root/repo/target/release/deps/daisy_repro-00cc148f4fed5288.d: src/lib.rs

/root/repo/target/release/deps/daisy_repro-00cc148f4fed5288: src/lib.rs

src/lib.rs:
