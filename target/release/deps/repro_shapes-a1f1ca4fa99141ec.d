/root/repo/target/release/deps/repro_shapes-a1f1ca4fa99141ec.d: tests/repro_shapes.rs

/root/repo/target/release/deps/repro_shapes-a1f1ca4fa99141ec: tests/repro_shapes.rs

tests/repro_shapes.rs:
