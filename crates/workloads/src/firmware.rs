//! `soc_firmware` — interrupt-driven firmware for the modeled SoC
//! ([`daisy_soc`]): a tiny round-robin scheduler whose timer interrupt
//! preempts three tasks at arbitrary points, context-switching every
//! architected register through an interrupt frame and logging progress
//! to the UART.
//!
//! This is the system-code workload the paper's compatibility claim is
//! really about (§3.5 precise exceptions, §3.7 group-boundary interrupt
//! delivery): unlike the Chapter 5 user-style kernels, nearly every
//! interesting event here — timer fire, context switch, MMIO access —
//! lands *between* two arbitrary guest instructions, wherever the
//! preemption fuzzer forces it.
//!
//! # Clock exactness (why there is no `b` in this program)
//!
//! The preemption-fuzz harness records each interrupt delivery's
//! retired-instruction count in the translated run and replays it at
//! the same count on the interpreter oracle. The translated tiers
//! count retired instructions at architected commits and branch
//! resolutions, which misses unconditional non-linking branches (`b`,
//! `blr`, `bctr` — they commit nothing and resolve nothing). So this
//! program contains **none**: every unconditional jump is an
//! always-taken `beq cr7, target` with `cr7` pinned EQ, and there are
//! no subroutines (the handler and tasks are jump-threaded instead).
//! That makes the translated tiers' instruction clock *exact*, which
//! in turn makes even the time-dependent code (reading `TIMER_COUNT`,
//! claim-loop iteration counts) bit-reproducible on the oracle.
//!
//! # Memory map
//!
//! | address | contents |
//! |---|---|
//! | `0x500..` | interrupt handler (at the external vector), then boot + tasks |
//! | `0x2_0000` | three 0x100-byte task control blocks (saved GPRs, LR, CTR, CR, XER, SRR0/1) |
//! | `0x2_0400` | `SAVE_PTR`: current task's TCB |
//! | `0x2_0404` | `CUR_IDX`: current task index |
//! | `0x2_0408` | three done flags (bytes) |
//! | `0x2_0410` | three iteration counters (words) |
//! | `0x2_0420` | three result accumulators (words) |
//! | `0x2_0430` | RX log: count word, then received bytes |
//!
//! Each task runs a distinct arithmetic kernel for a fixed quota of
//! iterations, transmitting one UART byte per iteration from its own
//! alphabet (`A–J`, `K–T`, `a–j` — disjoint, so the interleaved
//! transcript can be checked per task regardless of schedule). Task 2
//! additionally reads `TIMER_COUNT` each iteration, so an MMIO load
//! sits in a hot loop body on every tier. When all three tasks have
//! set their done flags, the handler `rfi`s to the `halt` label with
//! interrupts disabled; the harness detects that park as a clean halt.

use crate::Workload;
use daisy_ppc::asm::{Asm, Program};
use daisy_ppc::interp::Cpu;
use daisy_ppc::mem::Memory;
use daisy_ppc::reg::{CrField, Gpr, Spr};
use daisy_ppc::vectors;
use daisy_soc::{reg, Soc, SOC_BASE};

/// Three task control blocks, 0x100 bytes each.
const TCB_BASE: u32 = 0x2_0000;
/// Word holding the current task's TCB address.
const SAVE_PTR: u32 = 0x2_0400;
/// Word holding the current task index (0..3).
const CUR_IDX: u32 = 0x2_0404;
/// Three per-task done flags (bytes).
const DONE: u32 = 0x2_0408;
/// Three per-task iteration counters (words).
const COUNTS: u32 = 0x2_0410;
/// Three per-task result accumulators (words).
const RESULTS: u32 = 0x2_0420;
/// UART RX log: count word at `RX_COUNT`, bytes from `RX_BYTES`.
const RX_COUNT: u32 = 0x2_0430;
/// First received byte of the RX log.
const RX_BYTES: u32 = 0x2_0434;

/// TCB frame offsets: GPR `i` at `4 * i`, then the specials.
const OFF_LR: i16 = 0x80;
const OFF_CTR: i16 = 0x84;
const OFF_CR: i16 = 0x88;
const OFF_XER: i16 = 0x8C;
const OFF_SRR0: i16 = 0x90;
const OFF_SRR1: i16 = 0x94;

/// Per-task iteration quotas.
pub const QUOTAS: [u32; 3] = [40, 30, 35];
/// Per-task UART alphabets (ten consecutive bytes each, disjoint).
pub const BASES: [u8; 3] = [b'A', b'K', b'a'];
/// Timer period in retired guest instructions.
pub const TIMER_TICK: u32 = 250;
/// MSR image with external interrupts enabled.
const MSR_EE: u32 = 0x8000;

/// Pins `cr7` to EQ so `beq cr7, …` is an always-taken — but still
/// *conditional*, hence clock-exact — jump. `scratch` is clobbered.
fn pin_cr7(a: &mut Asm, scratch: Gpr) {
    a.li(scratch, 0);
    a.cmpwi(CrField(7), scratch, 0);
}

fn build() -> Program {
    let mut a = Asm::new(vectors::EXTERNAL);
    let cr0 = CrField(0);
    let cr7 = CrField(7);
    let (r0, r3, r4, r5) = (Gpr(0), Gpr(3), Gpr(4), Gpr(5));
    let (r6, r7, r8, r9) = (Gpr(6), Gpr(7), Gpr(8), Gpr(9));

    // ---- Interrupt handler, placed exactly at the external vector ----
    // Save the full architected context into the current task's TCB.
    a.label("handler");
    a.emit(daisy_ppc::Insn::Mtspr { spr: Spr::Sprg0, rs: r3 });
    a.li32(r3, SAVE_PTR);
    a.lwz(r3, 0, r3);
    a.stmw(r0, 0, r3); // r0..r31; the r3 slot holds the clobbered r3
    a.emit(daisy_ppc::Insn::Mfspr { rt: r4, spr: Spr::Sprg0 });
    a.stw(r4, 12, r3); // fix the r3 slot
    a.mflr(r4);
    a.stw(r4, OFF_LR, r3);
    a.mfctr(r4);
    a.stw(r4, OFF_CTR, r3);
    a.mfcr(r4);
    a.stw(r4, OFF_CR, r3);
    a.emit(daisy_ppc::Insn::Mfspr { rt: r4, spr: Spr::Xer });
    a.stw(r4, OFF_XER, r3);
    a.emit(daisy_ppc::Insn::Mfspr { rt: r4, spr: Spr::Srr0 });
    a.stw(r4, OFF_SRR0, r3);
    a.emit(daisy_ppc::Insn::Mfspr { rt: r4, spr: Spr::Srr1 });
    a.stw(r4, OFF_SRR1, r3);

    pin_cr7(&mut a, r4);
    a.li32(r5, SOC_BASE);

    // Claim-and-service loop: drain every pending enabled source.
    // Tolerates spurious deliveries (fuzzer posts with nothing
    // pending): claim reads 0 and we fall straight through.
    a.label("claim");
    a.lwz(r4, reg::IRQ_CLAIM as i16, r5);
    a.cmpwi(cr0, r4, 0);
    a.beq(cr0, "claim_done");
    a.cmpwi(cr0, r4, (daisy_soc::IRQ_TIMER + 1) as i16);
    a.beq(cr0, "ack_timer");
    // Otherwise: UART RX available. Pop the byte and append it to the
    // RX log in RAM (so received data lands in the bit-diffed state).
    a.lwz(r6, reg::UART_RX as i16, r5);
    a.li32(r7, RX_COUNT);
    a.lwz(r8, 0, r7);
    a.li32(r9, RX_BYTES);
    a.add(r9, r9, r8);
    a.stb(r6, 0, r9);
    a.addi(r8, r8, 1);
    a.stw(r8, 0, r7);
    a.beq(cr7, "claim");
    a.label("ack_timer");
    a.li(r6, 1);
    a.stw(r6, reg::TIMER_ACK as i16, r5);
    a.beq(cr7, "claim");

    // All tasks done? Then rfi to the halt park with interrupts off.
    a.label("claim_done");
    a.li32(r4, DONE);
    a.lbz(r6, 0, r4);
    a.lbz(r7, 1, r4);
    a.lbz(r8, 2, r4);
    a.add(r6, r6, r7);
    a.add(r6, r6, r8);
    a.cmpwi(cr0, r6, 3);
    a.beq(cr0, "shutdown");

    // Round-robin: idx = (idx + 1) % 3, switch SAVE_PTR to that TCB.
    a.li32(r4, CUR_IDX);
    a.lwz(r6, 0, r4);
    a.addi(r6, r6, 1);
    a.cmpwi(cr0, r6, 3);
    a.blt(cr0, "idx_ok");
    a.li(r6, 0);
    a.label("idx_ok");
    a.stw(r6, 0, r4);
    a.slwi(r7, r6, 8);
    a.li32(r3, TCB_BASE);
    a.add(r3, r3, r7);
    a.li32(r4, SAVE_PTR);
    a.stw(r3, 0, r4);

    // Restore the incoming task's full context and return to it.
    a.lwz(r4, OFF_LR, r3);
    a.mtlr(r4);
    a.lwz(r4, OFF_CTR, r3);
    a.mtctr(r4);
    a.lwz(r4, OFF_CR, r3);
    a.mtcrf(0xFF, r4);
    a.lwz(r4, OFF_XER, r3);
    a.emit(daisy_ppc::Insn::Mtspr { spr: Spr::Xer, rs: r4 });
    a.lwz(r4, OFF_SRR0, r3);
    a.emit(daisy_ppc::Insn::Mtspr { spr: Spr::Srr0, rs: r4 });
    a.lwz(r4, OFF_SRR1, r3);
    a.emit(daisy_ppc::Insn::Mtspr { spr: Spr::Srr1, rs: r4 });
    a.lmw(r4, 16, r3); // r4..r31
    a.lwz(r0, 0, r3);
    a.lwz(Gpr(1), 4, r3);
    a.lwz(Gpr(2), 8, r3);
    a.lwz(r3, 12, r3);
    a.rfi();

    a.label("shutdown");
    a.la(r4, "halt");
    a.emit(daisy_ppc::Insn::Mtspr { spr: Spr::Srr0, rs: r4 });
    a.li(r4, 0); // MSR with EE clear: the park is interrupt-proof
    a.emit(daisy_ppc::Insn::Mtspr { spr: Spr::Srr1, rs: r4 });
    a.rfi();

    // ---- Boot: build TCBs, program the SoC, launch task 0 ----
    a.entry_here();
    a.label("boot");
    pin_cr7(&mut a, r4);
    a.li32(r4, CUR_IDX);
    a.li(r5, 0);
    a.stw(r5, 0, r4);
    a.li32(r4, SAVE_PTR);
    a.li32(r5, TCB_BASE);
    a.stw(r5, 0, r4);
    // Fresh TCBs: RAM is zeroed, so only SRR0 (task entry) and SRR1
    // (interrupts enabled) need seeding.
    a.li32(r4, TCB_BASE);
    a.li32(r6, MSR_EE);
    a.la(r5, "task0");
    a.stw(r5, OFF_SRR0, r4);
    a.stw(r6, OFF_SRR1, r4);
    a.addi(r4, r4, 0x100);
    a.la(r5, "task1");
    a.stw(r5, OFF_SRR0, r4);
    a.stw(r6, OFF_SRR1, r4);
    a.addi(r4, r4, 0x100);
    a.la(r5, "task2");
    a.stw(r5, OFF_SRR0, r4);
    a.stw(r6, OFF_SRR1, r4);
    // Program the SoC: timer tick, both IRQ lines, timer on (enable
    // last, so the first tick is anchored here).
    a.li32(r5, SOC_BASE);
    a.li(r4, TIMER_TICK as i16);
    a.stw(r4, reg::TIMER_PERIOD as i16, r5);
    a.li(r4, 0b11);
    a.stw(r4, reg::IRQ_ENABLE as i16, r5);
    a.li(r4, 1);
    a.stw(r4, reg::TIMER_CTRL as i16, r5);
    // Banner, then return-from-interrupt into task 0 with EE on.
    a.li(r4, i16::from(b'='));
    a.stw(r4, reg::UART_TX as i16, r5);
    a.li(r4, i16::from(b'>'));
    a.stw(r4, reg::UART_TX as i16, r5);
    a.la(r4, "task0");
    a.emit(daisy_ppc::Insn::Mtspr { spr: Spr::Srr0, rs: r4 });
    a.li32(r4, MSR_EE);
    a.emit(daisy_ppc::Insn::Mtspr { spr: Spr::Srr1, rs: r4 });
    a.rfi();

    // ---- Tasks ----
    // Register plan (per task, context-switched so tasks don't
    // interfere): r20 SoC base, r21 counter cell, r22 result cell,
    // r23 accumulator, r24 quota, r25 counter, r26 modulus 10,
    // r27 scratch, r28 done-flag cell.
    let (r20, r21, r22, r23) = (Gpr(20), Gpr(21), Gpr(22), Gpr(23));
    let (r24, r25, r26, r27, r28) = (Gpr(24), Gpr(25), Gpr(26), Gpr(27), Gpr(28));
    for i in 0..3u32 {
        let task = format!("task{i}");
        let lp = format!("task{i}_loop");
        let idle = format!("task{i}_idle");
        a.label(&task);
        pin_cr7(&mut a, r27);
        a.li32(r20, SOC_BASE);
        a.li32(r21, COUNTS + 4 * i);
        a.li32(r22, RESULTS + 4 * i);
        a.li32(r28, DONE + i);
        a.li32(r24, QUOTAS[i as usize]);
        a.li(r25, 0);
        a.li(r23, 0);
        a.li(r26, 10);
        a.label(&lp);
        match i {
            // Task 0: acc += 3k + 1.
            0 => {
                a.mulli(r27, r25, 3);
                a.addi(r27, r27, 1);
                a.add(r23, r23, r27);
            }
            // Task 1: acc = (acc ^ (k << 1)) + 5.
            1 => {
                a.slwi(r27, r25, 1);
                a.xor(r23, r23, r27);
                a.addi(r23, r23, 5);
            }
            // Task 2: acc += TIMER_COUNT & 0xFF — an MMIO load in the
            // hot loop body, exercising the bail path on every tier.
            _ => {
                a.lwz(r27, reg::TIMER_COUNT as i16, r20);
                a.clrlwi(r27, r27, 24);
                a.add(r23, r23, r27);
            }
        }
        // Transmit alphabet[k % 10]: k - (k / 10) * 10 + base.
        a.divwu(r27, r25, r26);
        a.mullw(r27, r27, r26);
        a.subf(r27, r27, r25);
        a.addi(r27, r27, i16::from(BASES[i as usize]));
        a.stw(r27, reg::UART_TX as i16, r20);
        a.addi(r25, r25, 1);
        a.stw(r25, 0, r21);
        a.stw(r23, 0, r22);
        a.cmpw(cr0, r25, r24);
        a.blt(cr0, &lp);
        a.li(r27, 1);
        a.stb(r27, 0, r28);
        // Quota reached: spin until the scheduler takes us off the CPU
        // for good (all-done check happens in the handler).
        a.label(&idle);
        a.beq(cr7, &idle);
    }

    // The post-shutdown park. The harness watches for pc == halt with
    // interrupts disabled; the spin keeps the guest architecturally
    // live (the interpreter has no halt instruction) without ever
    // changing state.
    a.label("halt");
    a.beq(cr7, "halt");

    a.finish().expect("soc_firmware assembles")
}

/// Rust recomputation of task 0's accumulator.
pub fn expected_result0() -> u32 {
    (0..QUOTAS[0]).map(|k| 3 * k + 1).fold(0u32, u32::wrapping_add)
}

/// Rust recomputation of task 1's accumulator.
pub fn expected_result1() -> u32 {
    let mut acc = 0u32;
    for k in 0..QUOTAS[1] {
        acc = (acc ^ (k << 1)).wrapping_add(5);
    }
    acc
}

/// The expected UART transcript byte count: the boot banner plus one
/// byte per task iteration.
pub fn expected_tx_len() -> usize {
    2 + QUOTAS.iter().sum::<u32>() as usize
}

fn check(_cpu: &Cpu, mem: &Memory) -> Result<(), String> {
    for i in 0..3u32 {
        let quota = QUOTAS[i as usize];
        let count = mem.read_u32(COUNTS + 4 * i).map_err(|e| format!("{e:?}"))?;
        if count != quota {
            return Err(format!("task {i} iterations: got {count}, want {quota}"));
        }
        let done = mem.read_u8(DONE + i).map_err(|e| format!("{e:?}"))?;
        if done != 1 {
            return Err(format!("task {i} done flag: got {done}, want 1"));
        }
    }
    let r0 = mem.read_u32(RESULTS).map_err(|e| format!("{e:?}"))?;
    if r0 != expected_result0() {
        return Err(format!("task 0 result: got {r0:#x}, want {:#x}", expected_result0()));
    }
    let r1 = mem.read_u32(RESULTS + 4).map_err(|e| format!("{e:?}"))?;
    if r1 != expected_result1() {
        return Err(format!("task 1 result: got {r1:#x}, want {:#x}", expected_result1()));
    }
    // (Task 2's accumulator is timer-derived — schedule-dependent by
    // design — so it is checked only by the campaign's oracle diff.)

    let tx = mem
        .with_bus(|_, b| b.as_any_mut().downcast_mut::<Soc>().map(|s| s.transcript().to_vec()))
        .ok_or_else(|| "no bus attached (firmware needs daisy_soc::standard_bus)".to_owned())?
        .ok_or_else(|| "attached bus is not a daisy_soc::Soc".to_owned())?;
    if !tx.starts_with(b"=>") {
        return Err(format!("transcript missing boot banner: {tx:?}"));
    }
    if tx.len() != expected_tx_len() {
        return Err(format!("transcript length: got {}, want {}", tx.len(), expected_tx_len()));
    }
    // The tasks' alphabets are disjoint, so each task's bytes must form
    // its exact cyclic sequence no matter how the scheduler interleaved
    // them.
    for i in 0..3 {
        let lo = BASES[i];
        let got: Vec<u8> = tx.iter().copied().filter(|&b| b >= lo && b < lo + 10).collect();
        let want: Vec<u8> = (0..QUOTAS[i]).map(|k| lo + (k % 10) as u8).collect();
        if got != want {
            return Err(format!("task {i} transcript bytes: got {got:?}, want {want:?}"));
        }
    }
    Ok(())
}

/// The workload descriptor. Not part of [`crate::all`]: the firmware
/// needs a SoC bus attached and never executes `sc`, so the generic
/// run-to-syscall harnesses cannot drive it — use the preemption-fuzz
/// campaign ([`FaultKind::Preempt`]) or a harness that watches for the
/// `halt` park.
///
/// [`FaultKind::Preempt`]: ../daisy/inject/enum.FaultKind.html
pub fn workload() -> Workload {
    Workload { name: "soc_firmware", mem_size: 0x4_0000, max_instrs: 2_000_000, build, check }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_isa::{Exception, GuestCpu};

    /// Free-runs the firmware on the pure interpreter with a level-
    /// sensitive delivery loop (the same contract `DaisySystem::step`
    /// implements), to the `halt` park. Returns `(cpu, mem)`.
    fn interp_run_firmware() -> (Cpu, Memory) {
        let w = workload();
        let prog = w.program();
        let mut mem = Memory::new(w.mem_size);
        let (base, len, dev) = daisy_soc::standard_bus();
        mem.attach_bus(base, len, dev);
        prog.load_into(&mut mem).unwrap();
        let halt = prog.labels["halt"];
        let mut cpu = Cpu::new(prog.entry);
        let mut budget = w.max_instrs;
        loop {
            mem.set_bus_time(cpu.instret());
            if mem.bus_irq_level() && cpu.interrupts_enabled() {
                let at = GuestCpu::pc(&cpu);
                GuestCpu::deliver(&mut cpu, Exception::External, at);
                continue;
            }
            if GuestCpu::pc(&cpu) == halt && !cpu.interrupts_enabled() {
                break;
            }
            let ev = cpu.step(&mut mem);
            if let Some(stop) = GuestCpu::handle_event(&mut cpu, ev) {
                panic!("firmware stopped unexpectedly: {stop:?}");
            }
            budget -= 1;
            assert!(budget > 0, "firmware ran away (pc {:#x})", GuestCpu::pc(&cpu));
        }
        (cpu, mem)
    }

    #[test]
    fn firmware_runs_to_halt_and_checks_on_the_interpreter() {
        let w = workload();
        let (cpu, mem) = interp_run_firmware();
        (w.check)(&cpu, &mem).unwrap();
        // Every task got preempted mid-quota at least once: the timer
        // tick is far smaller than a task's full quota of work.
        let idx = mem.read_u32(super::CUR_IDX).unwrap();
        assert!(idx < 3);
    }

    #[test]
    fn firmware_is_free_of_clock_blind_instructions() {
        // The preemption-fuzz replay contract requires the translated
        // tiers' retired-instruction clock to be exact, which it is
        // only without unconditional non-linking branches (`b`, `blr`,
        // `bctr`) — and without linking ones either (`bl`, `bctrl`),
        // which this program also never needs.
        let prog = workload().program();
        for (i, &w) in prog.code.iter().enumerate() {
            let insn = daisy_ppc::decode(w);
            let text = format!("{insn}");
            let mnemonic = text.split_whitespace().next().unwrap_or("");
            assert!(
                !matches!(mnemonic, "b" | "ba" | "bl" | "bla" | "blr" | "bctr" | "bctrl"),
                "clock-blind branch {text:?} at word {i} (pc {:#x})",
                prog.base + 4 * i as u32
            );
        }
    }
}
