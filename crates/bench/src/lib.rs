//! Reproduction harness for every table and figure in the paper's
//! Chapter 5, plus the oracle study of Chapter 6.
//!
//! [`runner`] provides the shared measurement plumbing; [`tables`]
//! contains one generator per experiment, each returning structured
//! rows (so integration tests can assert on them) plus a formatter.
//! The `repro` binary prints any or all of them. [`reporting`] and
//! [`health`] back the `report` and `health` binaries; [`json`] is the
//! offline parser the artifact schema tests validate with.

pub mod health;
pub mod json;
pub mod reporting;
pub mod runner;
pub mod tables;
