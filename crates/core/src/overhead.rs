//! The analytic compile-overhead model of paper §5.1.
//!
//! The paper relates the reuse each page needs for dynamic compilation
//! to pay off:
//!
//! ```text
//! r·g·i/PR            = T_R   (base architecture time)
//! r·g·i/PV + g·t      = T_V   (VLIW time incl. translation)
//! break-even:  t = r·i·(1/PR − 1/PV)
//! ```
//!
//! with `r` the per-page reuse factor, `g` pages touched, `i`
//! instructions per page, `t` cycles to translate one page, and
//! `PR`/`PV` the base/VLIW ILP. Table 5.8 instantiates the model for a
//! two-second, 1 GHz, ILP-4 program; Table 5.9 reports measured reuse
//! factors.

/// Parameters of the §5.1 model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadModel {
    /// Average ILP of the VLIW (`PV`, paper uses 4.0).
    pub pv: f64,
    /// Average ILP of the base architecture (`PR`, paper uses 1.5).
    pub pr: f64,
    /// Instructions per page (`i`, paper uses 1024).
    pub instrs_per_page: f64,
}

impl Default for OverheadModel {
    fn default() -> Self {
        OverheadModel { pv: 4.0, pr: 1.5, instrs_per_page: 1024.0 }
    }
}

impl OverheadModel {
    /// Break-even reuse factor for a page that costs `t` cycles to
    /// translate (Equation 5.2 solved for `r`).
    pub fn break_even_reuse(&self, t: f64) -> f64 {
        t / (self.instrs_per_page * (1.0 / self.pr - 1.0 / self.pv))
    }

    /// Break-even reuse on an `n`-user machine running `n` distinct
    /// programs (the paper's multi-user variant: `n×` the reuse).
    pub fn break_even_reuse_multiuser(&self, t: f64, n: f64) -> f64 {
        n * self.break_even_reuse(t)
    }

    /// Cycles to translate one page when each instruction costs
    /// `ins_per_ins` translator instructions executed at ILP
    /// `translator_ilp`.
    pub fn page_translate_cycles(&self, ins_per_ins: f64, translator_ilp: f64) -> f64 {
        ins_per_ins * self.instrs_per_page / translator_ilp
    }
}

/// One row of Table 5.8.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadRow {
    /// Translator instructions per translated instruction.
    pub ins_to_compile: f64,
    /// Unique code pages touched.
    pub unique_pages: f64,
    /// Reuse factor implied by the fixed program length.
    pub reuse: f64,
    /// Percent change in run time versus the base architecture.
    pub time_change_pct: f64,
}

/// Generates Table 5.8: the extra runtime of a two-second program on a
/// 1 GHz VLIW with program and compiler ILP 4.
///
/// The program executes `2 s × 1 GHz × PV` base instructions; each row
/// varies the translation cost and footprint. Time change compares
/// `D/PV + g·i·c` VLIW cycles against `D/PR` base-architecture cycles.
pub fn table_5_8(model: &OverheadModel) -> Vec<OverheadRow> {
    let program_cycles = 2.0e9; // two seconds at 1 GHz
    let dynamic_instrs = program_cycles * model.pv;
    let mut rows = Vec::new();
    for &c in &[4000.0, 1000.0] {
        for &g in &[200.0, 1000.0, 10_000.0] {
            let static_instrs = g * model.instrs_per_page;
            let reuse = dynamic_instrs / static_instrs;
            let vliw = dynamic_instrs / model.pv + g * model.instrs_per_page * c;
            let base = dynamic_instrs / model.pr;
            rows.push(OverheadRow {
                ins_to_compile: c,
                unique_pages: g,
                reuse,
                time_change_pct: 100.0 * (vliw / base - 1.0),
            });
        }
    }
    rows
}

/// A reuse-factor measurement (Table 5.9's definition: dynamic
/// instructions / static instruction words touched).
#[derive(Debug, Clone, PartialEq)]
pub struct ReuseFactor {
    /// Benchmark name.
    pub name: String,
    /// Dynamic instructions executed.
    pub dynamic_instrs: u64,
    /// Static code size in instruction words.
    pub static_words: u64,
}

impl ReuseFactor {
    /// The reuse factor.
    pub fn reuse(&self) -> f64 {
        if self.static_words == 0 {
            0.0
        } else {
            self.dynamic_instrs as f64 / self.static_words as f64
        }
    }
}

/// The paper's Table 5.9 SPEC95 numbers, reprinted for comparison with
/// the reuse factors measured on this reproduction's workloads.
pub fn paper_spec95_reuse() -> Vec<ReuseFactor> {
    let rows: &[(&str, u64, u64)] = &[
        ("go", 28_484_380_204, 135_852),
        ("m88ksim", 74_250_235_201, 84_520),
        ("cc1", 530_917_945, 357_166),
        ("compress95", 46_447_459_568, 52_172),
        ("li", 67_032_228_801, 67_084),
        ("ijpeg", 23_240_395_306, 88_834),
        ("perl", 31_756_251_781, 138_603),
        ("vortex", 81_194_315_906, 212_052),
        ("tomcatv", 19_801_801_846, 81_488),
        ("swim", 23_285_024_298, 81_041),
        ("su2cor", 24_910_592_778, 94_390),
        ("hydro2d", 35_120_255_512, 95_668),
        ("mgrid", 52_075_609_242, 83_119),
        ("applu", 36_216_514_505, 99_526),
        ("turb3d", 61_056_312_213, 90_411),
        ("apsi", 21_194_979_390, 119_956),
        ("fpppp", 97_972_804_125, 91_000),
        ("wave5", 25_265_952_275, 120_091),
    ];
    rows.iter()
        .map(|(n, d, s)| ReuseFactor {
            name: (*n).to_owned(),
            dynamic_instrs: *d,
            static_words: *s,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn break_even_matches_paper_examples() {
        let m = OverheadModel::default();
        // Paper: t = 427·r; with t = 998,400 (3,900 ins/ins at ILP 4,
        // rounded in the text to 4·1024·3900/16 — the paper computes
        // 3900·1024/4): r ≈ 2340.
        let t = m.page_translate_cycles(3900.0, 4.0);
        let r = m.break_even_reuse(t);
        assert!((r - 2340.0).abs() < 5.0, "r = {r}");
        // Optimistic bound: PV = ∞, 200 ins/ins at ILP 5 → r ≈ 60.
        let opt = OverheadModel { pv: f64::INFINITY, pr: 1.5, instrs_per_page: 1024.0 };
        let t = opt.page_translate_cycles(200.0, 5.0);
        let r = opt.break_even_reuse(t);
        assert!((r - 60.0).abs() < 1.0, "r = {r}");
    }

    #[test]
    fn multiuser_scales_linearly() {
        let m = OverheadModel::default();
        let t = m.page_translate_cycles(3900.0, 4.0);
        let r1 = m.break_even_reuse(t);
        let r10 = m.break_even_reuse_multiuser(t, 10.0);
        assert!((r10 / r1 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn table_5_8_matches_paper() {
        let rows = table_5_8(&OverheadModel::default());
        assert_eq!(rows.len(), 6);
        // Paper's rows: (4000,200,39000,-47), (4000,1000,7800,14),
        // (4000,10000,780,707), (1000,200,-59), (1000,1000,-43),
        // (1000,10000,130).
        let expect = [
            (4000.0, 200.0, 39000.0, -47.0),
            (4000.0, 1000.0, 7800.0, 14.0),
            (4000.0, 10_000.0, 780.0, 707.0),
            (1000.0, 200.0, 39000.0, -59.0),
            (1000.0, 1000.0, 7800.0, -43.0),
            (1000.0, 10_000.0, 780.0, 130.0),
        ];
        for (row, (c, g, r, pct)) in rows.iter().zip(expect) {
            assert_eq!(row.ins_to_compile, c);
            assert_eq!(row.unique_pages, g);
            assert!((row.reuse - r).abs() / r < 0.02, "reuse {} vs {r}", row.reuse);
            assert!(
                (row.time_change_pct - pct).abs() < 3.0,
                "pct {} vs {pct}",
                row.time_change_pct
            );
        }
    }

    #[test]
    fn spec_reuse_factors_mean_is_large() {
        let rows = paper_spec95_reuse();
        let mean: f64 = rows.iter().map(ReuseFactor::reuse).sum::<f64>() / rows.len() as f64;
        // Paper reports a mean over 450,000.
        assert!(mean > 400_000.0, "mean reuse {mean}");
    }
}
