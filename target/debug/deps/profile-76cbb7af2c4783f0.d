/root/repo/target/debug/deps/profile-76cbb7af2c4783f0.d: crates/bench/src/bin/profile.rs

/root/repo/target/debug/deps/profile-76cbb7af2c4783f0: crates/bench/src/bin/profile.rs

crates/bench/src/bin/profile.rs:
