/root/repo/target/debug/deps/daisy_bench-a6004faf0a78022a.d: crates/bench/src/lib.rs crates/bench/src/runner.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/libdaisy_bench-a6004faf0a78022a.rmeta: crates/bench/src/lib.rs crates/bench/src/runner.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/runner.rs:
crates/bench/src/tables.rs:
