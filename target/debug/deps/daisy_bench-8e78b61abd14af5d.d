/root/repo/target/debug/deps/daisy_bench-8e78b61abd14af5d.d: crates/bench/src/lib.rs crates/bench/src/runner.rs crates/bench/src/tables.rs Cargo.toml

/root/repo/target/debug/deps/libdaisy_bench-8e78b61abd14af5d.rmeta: crates/bench/src/lib.rs crates/bench/src/runner.rs crates/bench/src/tables.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/runner.rs:
crates/bench/src/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
