//! Structured observability for the VMM: trace events and the
//! per-group execution profiler.
//!
//! The paper's Chapter 5 is built on end-of-run aggregates; this module
//! adds the *where* — a stream of structured [`TraceEvent`]s emitted at
//! every translation-lifecycle transition (translate, cast-out,
//! invalidate, chain install/sever, alias restart, exception,
//! code-modification flush, hot promotion) plus a [`GroupProfiler`]
//! attributing dispatches, VLIWs retired, and stall cycles to each
//! group entry point. Together they expose exactly the fleet-profiling
//! signal that profile-guided reoptimization (§4.3 of the paper, and
//! [`crate::sched::TierPolicy`] here) consumes.
//!
//! Tracing is **cheap by default and free when silenced**: the
//! [`Tracer`] holds an `Option<Box<dyn TraceSink>>` plus an always-on
//! [`FlightRecorder`] — a small fixed ring of the most recent events
//! kept for post-mortems (see [`crate::metrics::PostMortem`]).
//! [`Tracer::emit`] takes a closure that is only evaluated when a sink
//! is installed *or* the recorder is enabled; with the recorder
//! disabled and no sink, a tracer costs one branch per event site and
//! allocates nothing. Event sites are translation-lifecycle
//! transitions, never in-group hot paths, so the default-on recorder
//! costs one ring write per lifecycle event.
//!
//! # Example
//!
//! ```
//! use daisy::prelude::*;
//! use daisy::trace::{RingSink, TraceEvent};
//! use daisy_ppc::{Asm, Gpr, PpcIsa};
//!
//! let sink = RingSink::new(1024);
//! let mut a = Asm::new(0x1000);
//! a.li(Gpr(3), 21);
//! a.sc();
//! let prog = a.finish().unwrap();
//!
//! let mut sys = DaisySystem::<PpcIsa>::builder().trace_sink(sink.clone()).build();
//! sys.load(&prog).unwrap();
//! sys.run(1_000_000).unwrap();
//! assert!(matches!(sink.events()[0], TraceEvent::Translate { entry: 0x1000, .. }));
//! ```

use crate::error::{DegradeCause, Rung};
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::io::Write;
use std::rc::Rc;

/// Translation tier of a group: first-touch translations are cold;
/// profile-guided retranslations of hot entries use the wider
/// [`crate::sched::TierPolicy`] settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Tier {
    /// First-touch translation with the base configuration.
    #[default]
    Cold,
    /// Profile-guided retranslation with the hot-tier configuration.
    Hot,
}

impl Tier {
    /// Short lowercase name (`"cold"` / `"hot"`), for reports.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Cold => "cold",
            Tier::Hot => "hot",
        }
    }
}

/// Classification of a precise exception, for trace consumers that do
/// not want to carry the engine's full exit type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExcClass {
    /// Data-storage fault on a load.
    LoadFault,
    /// Data-storage fault on a store.
    StoreFault,
    /// Trap instruction (program interrupt).
    Trap,
}

impl ExcClass {
    /// Stable lowercase name, for reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            ExcClass::LoadFault => "load_fault",
            ExcClass::StoreFault => "store_fault",
            ExcClass::Trap => "trap",
        }
    }
}

/// One structured observability event.
///
/// Every variant carries base-architecture addresses (entry points,
/// pages, faulting instructions), never translated-code addresses, so a
/// stream can be correlated with the original binary without access to
/// the translation cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceEvent {
    /// A group was translated (first touch, or retranslation after an
    /// invalidation / cast-out / alias / hot promotion).
    Translate {
        /// Group entry point (base address).
        entry: u32,
        /// Translation-page index (`entry / page_size`).
        page: u32,
        /// Tree instructions in the group.
        vliws: u32,
        /// Bytes of translated code produced.
        code_bytes: u32,
        /// Which tier's translator configuration was used.
        tier: Tier,
        /// True when load speculation was inhibited (the conservative
        /// alias-retranslation mode).
        conservative: bool,
    },
    /// A page's translations were cast out of the bounded
    /// translated-code area (LRU victim).
    CastOut {
        /// Translation-page index evicted.
        page: u32,
        /// Groups destroyed with it.
        groups: u32,
    },
    /// A page's translations were destroyed by a code modification.
    Invalidate {
        /// Translation-page index destroyed.
        page: u32,
    },
    /// A store hit translated code and the engine flushed to the VMM
    /// (§3.2); the modifying instruction is re-interpreted.
    CodeModified {
        /// Address of the modifying store instruction.
        addr: u32,
    },
    /// A direct exit link or indirect-cache entry was installed.
    ChainInstall {
        /// Entry point of the linking (source) group.
        from: u32,
        /// Target entry point linked to.
        to: u32,
        /// True for inline indirect-cache installs (LR/CTR exits).
        indirect: bool,
    },
    /// A followed chain link was found severed (its target translation
    /// had been dropped) and was cleared.
    ChainSever {
        /// Entry point of the linking group.
        from: u32,
        /// Target the stale link pointed at.
        target: u32,
    },
    /// A bypassed load failed its commit-time verify (run-time alias);
    /// execution restarts at the load.
    AliasRestart {
        /// Entry point of the group that restarted.
        entry: u32,
        /// Base address of the offending load.
        addr: u32,
    },
    /// An entry crossed the alias-restart threshold and was dropped for
    /// conservative (no load speculation) retranslation.
    AliasRetranslate {
        /// Entry point being retranslated conservatively.
        entry: u32,
    },
    /// A precise exception was delivered.
    Exception {
        /// Fault classification.
        class: ExcClass,
        /// Base address of the responsible instruction.
        base_addr: u32,
    },
    /// An external interrupt was taken at a group boundary (§3.7).
    ExternalInterrupt {
        /// Architected PC at delivery.
        pc: u32,
    },
    /// Translated code bailed to the interpreter for an MMIO device
    /// access (device reads/writes have side effects and must execute
    /// exactly once, in program order).
    MmioBail {
        /// Base address of the device-accessing instruction.
        addr: u32,
    },
    /// A group's dispatch count crossed the hot threshold; its cold
    /// translation was dropped for hot-tier retranslation.
    HotPromotion {
        /// Entry point promoted.
        entry: u32,
        /// Dispatch count at promotion.
        dispatches: u64,
    },
    /// A hot group was lowered to native host code — or refused, with
    /// the stable refusal label as the outcome.
    NativeCompile {
        /// Entry point of the group.
        entry: u32,
        /// `"ok"`, or a refusal label (`"general-parcel"`,
        /// `"too-large"`, …).
        outcome: &'static str,
    },
    /// An entry point stepped down the graceful-degradation ladder
    /// (see [`crate::error`]): a recoverable fault was absorbed by
    /// falling back to a slower-but-sound execution mode instead of
    /// failing the run. `from == to` records a quality degradation
    /// within the same rung (e.g. a truncated interpret-ahead hint
    /// budget).
    Degraded {
        /// Entry point that degraded.
        entry: u32,
        /// Rung before the step.
        from: Rung,
        /// Rung after the step.
        to: Rung,
        /// Why.
        cause: DegradeCause,
    },
}

impl TraceEvent {
    /// Stable lowercase kind name, used by the JSONL sink and the event
    /// histograms of the `profile` report.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Translate { .. } => "translate",
            TraceEvent::CastOut { .. } => "cast_out",
            TraceEvent::Invalidate { .. } => "invalidate",
            TraceEvent::CodeModified { .. } => "code_modified",
            TraceEvent::ChainInstall { .. } => "chain_install",
            TraceEvent::ChainSever { .. } => "chain_sever",
            TraceEvent::AliasRestart { .. } => "alias_restart",
            TraceEvent::AliasRetranslate { .. } => "alias_retranslate",
            TraceEvent::Exception { .. } => "exception",
            TraceEvent::ExternalInterrupt { .. } => "external_interrupt",
            TraceEvent::MmioBail { .. } => "mmio_bail",
            TraceEvent::HotPromotion { .. } => "hot_promotion",
            TraceEvent::NativeCompile { .. } => "native_compile",
            TraceEvent::Degraded { .. } => "degraded",
        }
    }

    /// Renders the event as one JSON object (no trailing newline). The
    /// encoding is hand-rolled — every field is a number or a bare
    /// word, so no escaping is ever needed.
    pub fn to_json(&self) -> String {
        let k = self.kind();
        match *self {
            TraceEvent::Translate { entry, page, vliws, code_bytes, tier, conservative } => {
                format!(
                    "{{\"event\": \"{k}\", \"entry\": {entry}, \"page\": {page}, \
                     \"vliws\": {vliws}, \"code_bytes\": {code_bytes}, \
                     \"tier\": \"{}\", \"conservative\": {conservative}}}",
                    tier.name()
                )
            }
            TraceEvent::CastOut { page, groups } => {
                format!("{{\"event\": \"{k}\", \"page\": {page}, \"groups\": {groups}}}")
            }
            TraceEvent::Invalidate { page } => {
                format!("{{\"event\": \"{k}\", \"page\": {page}}}")
            }
            TraceEvent::CodeModified { addr } => {
                format!("{{\"event\": \"{k}\", \"addr\": {addr}}}")
            }
            TraceEvent::ChainInstall { from, to, indirect } => {
                format!(
                    "{{\"event\": \"{k}\", \"from\": {from}, \"to\": {to}, \
                     \"indirect\": {indirect}}}"
                )
            }
            TraceEvent::ChainSever { from, target } => {
                format!("{{\"event\": \"{k}\", \"from\": {from}, \"target\": {target}}}")
            }
            TraceEvent::AliasRestart { entry, addr } => {
                format!("{{\"event\": \"{k}\", \"entry\": {entry}, \"addr\": {addr}}}")
            }
            TraceEvent::AliasRetranslate { entry } => {
                format!("{{\"event\": \"{k}\", \"entry\": {entry}}}")
            }
            TraceEvent::Exception { class, base_addr } => {
                format!(
                    "{{\"event\": \"{k}\", \"class\": \"{}\", \"base_addr\": {base_addr}}}",
                    class.name()
                )
            }
            TraceEvent::ExternalInterrupt { pc } => {
                format!("{{\"event\": \"{k}\", \"pc\": {pc}}}")
            }
            TraceEvent::MmioBail { addr } => {
                format!("{{\"event\": \"{k}\", \"addr\": {addr}}}")
            }
            TraceEvent::HotPromotion { entry, dispatches } => {
                format!("{{\"event\": \"{k}\", \"entry\": {entry}, \"dispatches\": {dispatches}}}")
            }
            TraceEvent::NativeCompile { entry, outcome } => {
                format!("{{\"event\": \"{k}\", \"entry\": {entry}, \"outcome\": \"{outcome}\"}}")
            }
            TraceEvent::Degraded { entry, from, to, cause } => {
                format!(
                    "{{\"event\": \"{k}\", \"entry\": {entry}, \"from\": \"{}\", \
                     \"to\": \"{}\", \"cause\": \"{}\"}}",
                    from.name(),
                    to.name(),
                    cause.name()
                )
            }
        }
    }
}

impl fmt::Display for TraceEvent {
    /// Human-readable one-liner, used by the flight-recorder post-mortem
    /// dump. Pinned by `tests/display_pin.rs` — treat the formats as
    /// stable output, not debug text.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TraceEvent::Translate { entry, vliws, code_bytes, tier, conservative, .. } => {
                write!(
                    f,
                    "translate 0x{entry:x}: {vliws} vliws, {code_bytes} bytes ({}{})",
                    tier.name(),
                    if conservative { ", conservative" } else { "" }
                )
            }
            TraceEvent::CastOut { page, groups } => {
                write!(f, "cast out page {page} ({groups} groups)")
            }
            TraceEvent::Invalidate { page } => write!(f, "invalidate page {page}"),
            TraceEvent::CodeModified { addr } => write!(f, "code modified by store at 0x{addr:x}"),
            TraceEvent::ChainInstall { from, to, indirect } => {
                write!(
                    f,
                    "chain 0x{from:x} -> 0x{to:x}{}",
                    if indirect { " (indirect)" } else { "" }
                )
            }
            TraceEvent::ChainSever { from, target } => {
                write!(f, "sever 0x{from:x} -> 0x{target:x}")
            }
            TraceEvent::AliasRestart { entry, addr } => {
                write!(f, "alias restart in 0x{entry:x} at load 0x{addr:x}")
            }
            TraceEvent::AliasRetranslate { entry } => {
                write!(f, "alias retranslate 0x{entry:x}")
            }
            TraceEvent::Exception { class, base_addr } => {
                write!(f, "exception {} at 0x{base_addr:x}", class.name())
            }
            TraceEvent::ExternalInterrupt { pc } => {
                write!(f, "external interrupt at 0x{pc:x}")
            }
            TraceEvent::MmioBail { addr } => write!(f, "mmio bail at 0x{addr:x}"),
            TraceEvent::HotPromotion { entry, dispatches } => {
                write!(f, "hot promotion 0x{entry:x} after {dispatches} dispatches")
            }
            TraceEvent::NativeCompile { entry, outcome } => {
                write!(f, "native compile 0x{entry:x}: {outcome}")
            }
            TraceEvent::Degraded { entry, from, to, cause } => {
                write!(f, "degraded entry 0x{entry:x}: {from} -> {to} ({cause})")
            }
        }
    }
}

/// Receives the structured event stream.
///
/// # Contract
///
/// * [`TraceSink::record`] is called **synchronously** at the event
///   site, in program order: the sequence of calls is the exact
///   lifecycle history of the run (the ring-sink unit tests assert on
///   exact sequences).
/// * Sinks must not panic on any event and must tolerate events they do
///   not recognize (the taxonomy grows; match non-exhaustively).
/// * Sinks run on the hot VMM dispatch path; `record` should be O(1)
///   and defer formatting/IO where possible (the JSONL sink formats
///   inline and is intended for offline analysis, not for measured
///   runs).
pub trait TraceSink: fmt::Debug {
    /// Records one event.
    fn record(&mut self, ev: &TraceEvent);

    /// Flushes buffered output, if any. Called when the owning system
    /// is dropped or on explicit request; the default does nothing.
    fn flush(&mut self) {}
}

/// The do-nothing sink: every event is discarded.
///
/// Installing `NullSink` exercises every emission site (useful to test
/// that tracing changes no behaviour) while retaining nothing; *not*
/// installing any sink is cheaper still, as event closures are never
/// evaluated.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _ev: &TraceEvent) {}
}

/// A bounded in-memory sink keeping the most recent events.
///
/// `RingSink` is a cheap shared handle (`Rc<RefCell<…>>`): clone it,
/// hand one clone to [`crate::system::DaisySystemBuilder::trace_sink`],
/// and read [`RingSink::events`] from the other after the run.
#[derive(Debug, Clone)]
pub struct RingSink {
    cap: usize,
    buf: Rc<RefCell<VecDeque<TraceEvent>>>,
    dropped: Rc<RefCell<u64>>,
}

impl RingSink {
    /// Creates a sink retaining at most `cap` events (the oldest are
    /// discarded first).
    pub fn new(cap: usize) -> RingSink {
        RingSink {
            cap: cap.max(1),
            buf: Rc::new(RefCell::new(VecDeque::new())),
            dropped: Rc::new(RefCell::new(0)),
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.buf.borrow().iter().copied().collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.borrow().len()
    }

    /// True when no events have been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.borrow().is_empty()
    }

    /// Events discarded because the ring was full.
    pub fn dropped(&self) -> u64 {
        *self.dropped.borrow()
    }

    /// Clears the buffer (the drop counter is kept).
    pub fn clear(&self) {
        self.buf.borrow_mut().clear();
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, ev: &TraceEvent) {
        let mut buf = self.buf.borrow_mut();
        if buf.len() == self.cap {
            buf.pop_front();
            *self.dropped.borrow_mut() += 1;
        }
        buf.push_back(*ev);
    }
}

/// A sink writing one JSON object per event, newline-delimited, to any
/// [`Write`] target (a file, a pipe, a `Vec<u8>`).
pub struct JsonlSink<W: Write> {
    w: W,
    errored: bool,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer. IO errors are sticky and silent (observability
    /// must never turn into a crash of the observed run); check
    /// [`JsonlSink::errored`] if delivery matters.
    pub fn new(w: W) -> JsonlSink<W> {
        JsonlSink { w, errored: false }
    }

    /// True if any write has failed; subsequent events are dropped.
    pub fn errored(&self) -> bool {
        self.errored
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.w
    }
}

impl<W: Write> fmt::Debug for JsonlSink<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonlSink").field("errored", &self.errored).finish_non_exhaustive()
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, ev: &TraceEvent) {
        if self.errored {
            return;
        }
        if writeln!(self.w, "{}", ev.to_json()).is_err() {
            self.errored = true;
        }
    }

    fn flush(&mut self) {
        if self.w.flush().is_err() {
            self.errored = true;
        }
    }
}

/// Default capacity of the always-on [`FlightRecorder`] ring.
pub const DEFAULT_FLIGHT_RECORDER_CAPACITY: usize = 256;

/// The always-on flight recorder: a fixed-size ring of the most recent
/// [`TraceEvent`]s, kept even when no [`TraceSink`] is installed, so a
/// post-mortem ([`crate::metrics::PostMortem`]) can show what led up to
/// a ladder degradation or a fault-injection divergence.
///
/// Each retained event carries a global sequence number (0-based count
/// of events ever recorded), so dumps stay correlatable after the ring
/// wraps; [`FlightRecorder::dropped`] counts what fell off.
#[derive(Debug)]
pub struct FlightRecorder {
    cap: usize,
    buf: VecDeque<(u64, TraceEvent)>,
    seq: u64,
    /// Whether events are recorded; a disabled recorder is free.
    pub enabled: bool,
}

impl Default for FlightRecorder {
    /// Enabled, with [`DEFAULT_FLIGHT_RECORDER_CAPACITY`] slots.
    fn default() -> FlightRecorder {
        FlightRecorder::with_capacity(DEFAULT_FLIGHT_RECORDER_CAPACITY)
    }
}

impl FlightRecorder {
    /// An enabled recorder retaining at most `cap` events.
    pub fn with_capacity(cap: usize) -> FlightRecorder {
        FlightRecorder { cap: cap.max(1), buf: VecDeque::new(), seq: 0, enabled: true }
    }

    /// A disabled recorder (records nothing, retains nothing).
    pub fn disabled() -> FlightRecorder {
        FlightRecorder { enabled: false, ..FlightRecorder::default() }
    }

    /// Records one event (a no-op when disabled).
    pub fn record(&mut self, ev: &TraceEvent) {
        if !self.enabled {
            return;
        }
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back((self.seq, *ev));
        self.seq += 1;
    }

    /// The retained events with their sequence numbers, oldest first.
    pub fn events(&self) -> Vec<(u64, TraceEvent)> {
        self.buf.iter().copied().collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events ever recorded (sequence numbers run `0..recorded()`).
    pub fn recorded(&self) -> u64 {
        self.seq
    }

    /// Events discarded because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.seq - self.buf.len() as u64
    }

    /// Clears the buffer; sequence numbering (and thus
    /// [`FlightRecorder::dropped`]) keeps counting.
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

/// The emission front-end owned by the VMM: an optional sink plus the
/// always-on [`FlightRecorder`].
///
/// Event sites call [`Tracer::emit`] with a closure building the event;
/// the closure is only run when a sink is installed or the recorder is
/// enabled, so a fully silenced tracer costs one branch per site.
#[derive(Debug, Default)]
pub struct Tracer {
    sink: Option<Box<dyn TraceSink>>,
    /// The post-mortem ring. Public so the owning system can snapshot
    /// it, resize it, or disable it wholesale.
    pub recorder: FlightRecorder,
}

impl Tracer {
    /// A tracer with no sink. The flight recorder is still on (the
    /// default); silence it too with
    /// [`Tracer::recorder`]`= FlightRecorder::disabled()`.
    pub fn disabled() -> Tracer {
        Tracer::default()
    }

    /// A tracer delivering to `sink` (and to the flight recorder).
    pub fn new(sink: Box<dyn TraceSink>) -> Tracer {
        Tracer { sink: Some(sink), recorder: FlightRecorder::default() }
    }

    /// True when a sink is installed. (The flight recorder is
    /// independent: `emit` may retain events while `enabled()` is
    /// false.)
    #[inline]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Emits the event built by `f` — evaluated only when a sink is
    /// installed or the flight recorder is enabled.
    #[inline]
    pub fn emit(&mut self, f: impl FnOnce() -> TraceEvent) {
        if self.sink.is_none() && !self.recorder.enabled {
            return;
        }
        let ev = f();
        self.recorder.record(&ev);
        if let Some(sink) = &mut self.sink {
            sink.record(&ev);
        }
    }

    /// Flushes the sink, if any.
    pub fn flush(&mut self) {
        if let Some(sink) = &mut self.sink {
            sink.flush();
        }
    }
}

/// Execution counters attributed to one group entry point.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupProfile {
    /// Times the group was dispatched (VMM *and* chained dispatches).
    pub dispatches: u64,
    /// Dispatches that arrived through a chain link or the inline
    /// indirect cache rather than the VMM.
    pub chained_dispatches: u64,
    /// Tree instructions retired across all dispatches.
    pub vliws_retired: u64,
    /// Cache-stall cycles attributed to this group's execution.
    pub stall_cycles: u64,
    /// Highest tier of translation executed for this entry.
    pub tier: Tier,
}

impl GroupProfile {
    /// Total cycles attributed to this group (VLIWs + stalls).
    pub fn cycles(&self) -> u64 {
        self.vliws_retired + self.stall_cycles
    }
}

/// Per-group execution profiler: attributes dispatches, VLIWs retired,
/// and stall cycles to group entry points.
///
/// Enabled via [`crate::system::DaisySystemBuilder::profiling`] (and
/// implied by tiered retranslation, which consumes its dispatch
/// counts). One hash-map update per group dispatch; disabled, it costs
/// nothing.
#[derive(Debug, Clone, Default)]
pub struct GroupProfiler {
    map: HashMap<u32, GroupProfile>,
}

impl GroupProfiler {
    /// An empty profiler.
    pub fn new() -> GroupProfiler {
        GroupProfiler::default()
    }

    /// Attributes one dispatch of the group entered at `entry`.
    pub fn record(&mut self, entry: u32, tier: Tier, chained: bool, vliws: u64, stalls: u64) {
        let p = self.map.entry(entry).or_default();
        p.dispatches += 1;
        p.chained_dispatches += u64::from(chained);
        p.vliws_retired += vliws;
        p.stall_cycles += stalls;
        p.tier = p.tier.max(tier);
    }

    /// The profile for `entry`, if it was ever dispatched.
    pub fn get(&self, entry: u32) -> Option<&GroupProfile> {
        self.map.get(&entry)
    }

    /// Number of distinct entry points profiled.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing has been profiled.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over `(entry, profile)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &GroupProfile)> {
        self.map.iter().map(|(k, v)| (*k, v))
    }

    /// The `n` hottest entries by dispatch count, descending (ties
    /// break toward lower addresses for deterministic reports).
    pub fn top_by_dispatches(&self, n: usize) -> Vec<(u32, GroupProfile)> {
        let mut v: Vec<(u32, GroupProfile)> = self.map.iter().map(|(k, p)| (*k, *p)).collect();
        v.sort_by(|a, b| b.1.dispatches.cmp(&a.1.dispatches).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }

    /// The `n` costliest entries by attributed cycles, descending.
    pub fn top_by_cycles(&self, n: usize) -> Vec<(u32, GroupProfile)> {
        let mut v: Vec<(u32, GroupProfile)> = self.map.iter().map(|(k, p)| (*k, *p)).collect();
        v.sort_by(|a, b| b.1.cycles().cmp(&a.1.cycles()).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silenced_tracer_never_builds_events() {
        let mut t = Tracer::disabled();
        t.recorder = FlightRecorder::disabled();
        assert!(!t.enabled());
        t.emit(|| unreachable!("closure must not run with no sink and no recorder"));
    }

    #[test]
    fn default_tracer_flight_records_without_a_sink() {
        let mut t = Tracer::disabled();
        assert!(!t.enabled(), "no sink installed");
        assert!(t.recorder.enabled, "the flight recorder is on by default");
        t.emit(|| TraceEvent::Invalidate { page: 7 });
        assert_eq!(t.recorder.events(), vec![(0, TraceEvent::Invalidate { page: 7 })]);
    }

    #[test]
    fn flight_recorder_wraps_and_keeps_sequence_numbers() {
        let mut r = FlightRecorder::with_capacity(3);
        for page in 0..5 {
            r.record(&TraceEvent::Invalidate { page });
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.recorded(), 5);
        assert_eq!(r.dropped(), 2);
        let seqs: Vec<u64> = r.events().iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![2, 3, 4], "survivors keep their global sequence numbers");
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.recorded(), 5, "clearing does not rewind numbering");
        let mut off = FlightRecorder::disabled();
        off.record(&TraceEvent::Invalidate { page: 0 });
        assert!(off.is_empty() && off.recorded() == 0);
    }

    #[test]
    fn display_one_liners_are_compact() {
        let ev = TraceEvent::Degraded {
            entry: 0x1000,
            from: Rung::Packed,
            to: Rung::Tree,
            cause: DegradeCause::CastOutPressure,
        };
        assert_eq!(ev.to_string(), "degraded entry 0x1000: packed -> tree (cast_out_pressure)");
        assert_eq!(
            TraceEvent::CastOut { page: 4, groups: 2 }.to_string(),
            "cast out page 4 (2 groups)"
        );
    }

    #[test]
    fn ring_sink_keeps_most_recent_and_counts_drops() {
        let sink = RingSink::new(2);
        let mut t = Tracer::new(Box::new(sink.clone()));
        assert!(t.enabled());
        for page in 0..5 {
            t.emit(|| TraceEvent::Invalidate { page });
        }
        assert_eq!(
            sink.events(),
            vec![TraceEvent::Invalidate { page: 3 }, TraceEvent::Invalidate { page: 4 }]
        );
        assert_eq!(sink.dropped(), 3);
        sink.clear();
        assert!(sink.is_empty());
    }

    #[test]
    fn jsonl_sink_writes_one_object_per_line() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&TraceEvent::Translate {
            entry: 0x1000,
            page: 1,
            vliws: 3,
            code_bytes: 96,
            tier: Tier::Hot,
            conservative: false,
        });
        sink.record(&TraceEvent::ChainSever { from: 0x1000, target: 0x2000 });
        assert!(!sink.errored());
        let out = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"event\": \"translate\""));
        assert!(lines[0].contains("\"tier\": \"hot\""));
        assert!(lines[1].contains("\"target\": 8192"));
    }

    #[test]
    fn profiler_ranks_hot_groups() {
        let mut p = GroupProfiler::new();
        for _ in 0..10 {
            p.record(0x1000, Tier::Cold, true, 4, 1);
        }
        p.record(0x2000, Tier::Hot, false, 100, 0);
        let top = p.top_by_dispatches(1);
        assert_eq!(top[0].0, 0x1000);
        assert_eq!(top[0].1.dispatches, 10);
        assert_eq!(top[0].1.chained_dispatches, 10);
        assert_eq!(top[0].1.vliws_retired, 40);
        let costly = p.top_by_cycles(1);
        assert_eq!(costly[0].0, 0x2000);
        assert_eq!(p.get(0x2000).unwrap().tier, Tier::Hot);
    }

    #[test]
    fn every_event_kind_serializes() {
        let evs = [
            TraceEvent::Translate {
                entry: 1,
                page: 0,
                vliws: 1,
                code_bytes: 4,
                tier: Tier::Cold,
                conservative: true,
            },
            TraceEvent::CastOut { page: 2, groups: 3 },
            TraceEvent::Invalidate { page: 1 },
            TraceEvent::CodeModified { addr: 8 },
            TraceEvent::ChainInstall { from: 4, to: 8, indirect: true },
            TraceEvent::ChainSever { from: 4, target: 8 },
            TraceEvent::AliasRestart { entry: 4, addr: 12 },
            TraceEvent::AliasRetranslate { entry: 4 },
            TraceEvent::Exception { class: ExcClass::StoreFault, base_addr: 16 },
            TraceEvent::ExternalInterrupt { pc: 20 },
            TraceEvent::MmioBail { addr: 24 },
            TraceEvent::HotPromotion { entry: 4, dispatches: 64 },
            TraceEvent::NativeCompile { entry: 4, outcome: "ok" },
            TraceEvent::Degraded {
                entry: 4,
                from: Rung::Packed,
                to: Rung::Tree,
                cause: DegradeCause::RecoveryMismatch,
            },
        ];
        for ev in evs {
            let j = ev.to_json();
            assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
            assert!(j.contains(ev.kind()), "{j}");
        }
    }
}
