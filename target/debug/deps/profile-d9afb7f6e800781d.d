/root/repo/target/debug/deps/profile-d9afb7f6e800781d.d: crates/bench/src/bin/profile.rs Cargo.toml

/root/repo/target/debug/deps/libprofile-d9afb7f6e800781d.rmeta: crates/bench/src/bin/profile.rs Cargo.toml

crates/bench/src/bin/profile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
