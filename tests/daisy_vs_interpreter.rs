//! End-to-end equivalence: every workload must produce identical
//! architected state under DAISY translation and under the reference
//! interpreter — the paper's "100% architectural compatibility" claim,
//! checked bit for bit.

use daisy::system::DaisySystem;
use daisy_ppc::interp::{Cpu, StopReason};
use daisy_ppc::mem::Memory;
use daisy_ppc::PpcIsa;
use daisy_workloads::Workload;

fn run_reference(w: &Workload) -> (Cpu, Memory) {
    let prog = w.program();
    let mut mem = Memory::new(w.mem_size);
    prog.load_into(&mut mem).unwrap();
    let mut cpu = Cpu::new(prog.entry);
    let stop = cpu.run(&mut mem, w.max_instrs).unwrap();
    assert_eq!(stop, StopReason::Syscall, "{}: reference run did not finish", w.name);
    (cpu, mem)
}

fn run_daisy(w: &Workload) -> DaisySystem<PpcIsa> {
    let prog = w.program();
    let mut sys = DaisySystem::<PpcIsa>::builder().mem_size(w.mem_size).build();
    sys.load(&prog).unwrap();
    let stop = sys.run(10 * w.max_instrs).unwrap();
    assert_eq!(stop, StopReason::Syscall, "{}: DAISY run did not finish", w.name);
    sys
}

#[test]
fn all_workloads_match_reference_state() {
    for w in daisy_workloads::all() {
        let (ref_cpu, ref_mem) = run_reference(&w);
        let sys = run_daisy(&w);

        assert_eq!(sys.cpu.gpr, ref_cpu.gpr, "{}: GPR state diverged", w.name);
        assert_eq!(sys.cpu.cr, ref_cpu.cr, "{}: CR diverged", w.name);
        assert_eq!(sys.cpu.lr, ref_cpu.lr, "{}: LR diverged", w.name);
        assert_eq!(sys.cpu.ctr, ref_cpu.ctr, "{}: CTR diverged", w.name);
        assert_eq!(sys.cpu.xer, ref_cpu.xer, "{}: XER diverged", w.name);
        assert_eq!(sys.cpu.pc, ref_cpu.pc, "{}: PC diverged", w.name);

        // Full memory image comparison.
        let size = ref_mem.size();
        assert_eq!(
            sys.mem.read_bytes(0, size).unwrap(),
            ref_mem.read_bytes(0, size).unwrap(),
            "{}: memory image diverged",
            w.name
        );

        // And the workload's own semantic checker.
        w.check(&sys.cpu, &sys.mem)
            .unwrap_or_else(|e| panic!("{}: checker failed under DAISY: {e}", w.name));
    }
}

#[test]
fn finite_caches_never_change_semantics() {
    // The cache simulator only stretches time; architected results must
    // be identical under both of the paper's hierarchies.
    use daisy::sched::TranslatorConfig;
    use daisy_cachesim::Hierarchy;
    for name in ["c_sieve", "hist", "wc"] {
        let w = daisy_workloads::by_name(name).unwrap();
        let (ref_cpu, _) = run_reference(&w);
        for cache in [Hierarchy::paper_default(), Hierarchy::paper_eight_issue()] {
            let prog = w.program();
            let mut sys = daisy::system::DaisySystem::<PpcIsa>::builder()
                .mem_size(w.mem_size)
                .translator(TranslatorConfig::default())
                .cache(cache)
                .build();
            sys.load(&prog).unwrap();
            let stop = sys.run(200 * w.max_instrs).unwrap();
            assert_eq!(stop, StopReason::Syscall, "{name}: finite-cache run did not finish");
            assert_eq!(sys.cpu.gpr, ref_cpu.gpr, "{name}: GPRs diverged under finite cache");
            w.check(&sys.cpu, &sys.mem).unwrap();
        }
    }
}

#[test]
fn daisy_extracts_parallelism_on_every_workload() {
    for w in daisy_workloads::all() {
        let (ref_cpu, _) = run_reference(&w);
        let sys = run_daisy(&w);
        let ilp = sys.stats.pathlength_reduction(ref_cpu.ninstrs);
        assert!(
            ilp > 1.2,
            "{}: pathlength reduction {ilp:.2} is too low ({} base instrs, {} VLIWs)",
            w.name,
            ref_cpu.ninstrs,
            sys.stats.vliws_executed
        );
    }
}
