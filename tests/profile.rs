//! Guest-level attribution (`daisy::profile`) under the real system:
//! packed/tree equality, conservation invariants, waste accounting,
//! the §4.2 overhead clock, and the text exporters.

use daisy::prelude::*;
use daisy::profile::{annotated_disassembly, folded_stacks, PcStats};
use daisy_ppc::interp::{Cpu, StopReason};
use daisy_ppc::mem::Memory;
use daisy_ppc::PpcIsa;
use daisy_workloads::Workload;
use std::collections::BTreeMap;

/// Workloads exercised here — kept to a handful so the profiled runs
/// (two per workload in the equality test) stay cheap in debug builds.
const WORKLOADS: &[&str] = &["wc", "cmp", "hist", "xlat"];

fn workload(name: &str) -> Workload {
    daisy_workloads::by_name(name).expect("known workload")
}

fn run_guest_profiled(w: &Workload, packed: bool) -> DaisySystem<PpcIsa> {
    let mut sys = DaisySystem::<PpcIsa>::builder()
        .mem_size(w.mem_size)
        .packed_execution(packed)
        .guest_profiling(true)
        .build();
    sys.load(&w.program()).unwrap();
    let stop = sys.run(50 * w.max_instrs).unwrap();
    assert_eq!(stop, StopReason::Syscall, "{}: run did not finish", w.name);
    w.check(&sys.cpu, &sys.mem).unwrap_or_else(|e| panic!("{}: check failed: {e}", w.name));
    sys
}

fn profile_map(sys: &DaisySystem<PpcIsa>) -> BTreeMap<(u32, u32), PcStats> {
    sys.guest_profile
        .as_ref()
        .expect("guest profiling enabled")
        .iter()
        .map(|(&k, &v)| (k, v))
        .collect()
}

/// Acceptance: attribution is engine-independent. The packed and tree
/// engines record identical retirement traces, so the whole profile —
/// floating-point cycle shares included — must be bitwise identical.
#[test]
fn attribution_identical_between_packed_and_tree_engines() {
    for name in WORKLOADS {
        let w = workload(name);
        let packed = run_guest_profiled(&w, true);
        let tree = run_guest_profiled(&w, false);

        let pm = profile_map(&packed);
        let tm = profile_map(&tree);
        assert_eq!(pm, tm, "{name}: per-PC attribution diverged between engines");

        let (pg, tg) =
            (packed.guest_profile.as_ref().unwrap(), tree.guest_profile.as_ref().unwrap());
        assert_eq!(pg.dispatches(), tg.dispatches(), "{name}: dispatch counts diverged");
        assert_eq!(pg.spec_ops(), tg.spec_ops(), "{name}: spec-op counts diverged");
        assert_eq!(pg.wasted_spec_ops(), tg.wasted_spec_ops(), "{name}: waste diverged");
        assert_eq!(pg.timeline(), tg.timeline(), "{name}: dispatch timelines diverged");
    }
}

/// Conservation: the per-PC issue-cycle shares sum to the run's
/// `vliws_executed` and the stall shares to `stall_cycles` — every
/// engine cycle lands on some guest PC, no cycle is invented.
#[test]
fn attributed_cycles_sum_to_run_totals() {
    for name in WORKLOADS {
        let w = workload(name);
        let sys = run_guest_profiled(&w, true);
        let gp = sys.guest_profile.as_ref().unwrap();

        let issue = gp.total_issue_cycles();
        let want_issue = sys.stats.vliws_executed as f64;
        assert!(
            (issue - want_issue).abs() < 1e-6 * want_issue.max(1.0),
            "{name}: issue cycles {issue} != vliws_executed {want_issue}"
        );

        let stalls = gp.total_stall_cycles();
        let want_stalls = sys.stats.stall_cycles as f64;
        assert!(
            (stalls - want_stalls).abs() < 1e-6 * want_stalls.max(1.0),
            "{name}: stall cycles {stalls} != stall_cycles {want_stalls}"
        );
    }
}

/// Waste accounting stays inside its bounds, and the multi-path
/// workloads genuinely speculate (a waste report over zero speculative
/// ops would be vacuous).
#[test]
fn waste_accounting_is_bounded_and_nonvacuous() {
    let mut any_spec = false;
    for name in WORKLOADS {
        let w = workload(name);
        let sys = run_guest_profiled(&w, true);
        let gp = sys.guest_profile.as_ref().unwrap();

        assert!(gp.wasted_spec_ops() <= gp.spec_ops(), "{name}: wasted > speculative");
        let f = gp.waste_fraction();
        assert!((0.0..=1.0).contains(&f), "{name}: waste fraction {f} out of range");
        for (&(entry, pc), s) in gp.iter() {
            assert!(
                s.wasted_spec_ops <= s.spec_ops,
                "{name}: ({entry:#x},{pc:#x}) wasted > speculative"
            );
            assert!(s.cycles >= 0.0 && s.stall_cycles >= 0.0);
        }
        any_spec |= gp.spec_ops() > 0;
    }
    assert!(any_spec, "at least one workload must execute speculative parcels");
}

/// The §4.2 overhead clock sees the run's translations and prices them
/// at 4000 cycles per scheduled base instruction.
#[test]
fn overhead_clock_tracks_translation_work() {
    let w = workload("cmp");
    let sys = run_guest_profiled(&w, true);
    let gp = sys.guest_profile.as_ref().unwrap();
    let clock = gp.overhead();

    assert!(clock.translations > 0, "a fresh run must translate");
    assert!(clock.translate_instrs > 0);
    let report = clock.report(&sys.stats);
    assert!(
        (report.translate_cycles
            - clock.translate_instrs as f64 * daisy::profile::TRANSLATE_CYCLES_PER_INSTR)
            .abs()
            < 1e-9
    );
    assert!(report.total() > 0.0);
    let base = {
        let prog = w.program();
        let mut mem = Memory::new(w.mem_size);
        prog.load_into(&mut mem).unwrap();
        let mut cpu = Cpu::new(prog.entry);
        cpu.run(&mut mem, w.max_instrs).unwrap();
        cpu.ninstrs
    };
    assert!(report.per_base_instr(base) > 0.0);
}

/// Folded-stack lines are `workload;page;entry;pc weight` with
/// strictly positive integer weights.
#[test]
fn folded_stacks_are_well_formed() {
    let w = workload("wc");
    let sys = run_guest_profiled(&w, true);
    let gp = sys.guest_profile.as_ref().unwrap();
    let folded = folded_stacks(gp, w.name, sys.vmm.cfg.page_size);
    assert!(!folded.is_empty(), "a completed run must attribute something");
    for line in folded.lines() {
        let (stack, weight) = line.rsplit_once(' ').expect("line has a weight");
        let frames: Vec<&str> = stack.split(';').collect();
        assert_eq!(frames.len(), 4, "four frames: workload;page;entry;pc — got {line}");
        assert_eq!(frames[0], w.name);
        assert!(frames[1].starts_with("page_0x"), "bad page frame in {line}");
        assert!(frames[2].starts_with("entry_0x"), "bad entry frame in {line}");
        assert!(frames[3].starts_with("pc_0x"), "bad pc frame in {line}");
        assert!(weight.parse::<u64>().expect("integer weight") > 0);
    }
}

/// The annotated disassembly decodes real instructions for the hot PCs
/// and carries the waste summary in its header.
#[test]
fn annotated_disassembly_renders_decoded_instructions() {
    let w = workload("wc");
    let sys = run_guest_profiled(&w, true);
    let gp = sys.guest_profile.as_ref().unwrap();
    let report = annotated_disassembly::<PpcIsa>(gp, &sys.mem, w.name);
    assert!(report.contains("annotated guest disassembly: wc"));
    assert!(report.contains("spec ops:"));
    // Every profiled PC lies in mapped code, so no line may fail to
    // decode, and at least one real mnemonic must show up.
    assert!(!report.contains("??"), "all profiled PCs must decode");
    let body_lines = report.lines().filter(|l| l.contains("0x")).count();
    assert!(body_lines > 5, "expected a non-trivial number of annotated PCs");
}

/// Degraded entries attribute through the tree engine: profiles exist,
/// conserve cycles, and the timeline carries the degradation instants.
#[test]
fn attribution_survives_forced_degradation() {
    let w = workload("cmp");
    let prog = w.program();
    let mut sys =
        DaisySystem::<PpcIsa>::builder().mem_size(w.mem_size).guest_profiling(true).build();
    sys.load(&prog).unwrap();
    sys.degrade(prog.entry, daisy::DegradeCause::Forced).expect("rung below packed");
    let stop = sys.run(50 * w.max_instrs).unwrap();
    assert_eq!(stop, StopReason::Syscall);
    w.check(&sys.cpu, &sys.mem).expect("degraded run stays correct");

    let gp = sys.guest_profile.as_ref().unwrap();
    assert!(gp.dispatches() > 0);
    let issue = gp.total_issue_cycles();
    let want = sys.stats.vliws_executed as f64;
    assert!((issue - want).abs() < 1e-6 * want.max(1.0), "degraded run must still conserve");
}
