//! Shared plumbing for the `profile` and `report` binaries: workload
//! resolution, the profiled-run harness, the guest-level metric
//! bundle, and the `BENCH_report.json` serializer.
//!
//! Both binaries run workloads to completion under checked conditions
//! ([`run_profiled`] panics if a workload fails its result check — a
//! report over wrong answers is worse than no report); the `report`
//! binary adds guest profiling and renders [`WorkloadReport`]s, the
//! `profile` binary adds a trace sink and renders per-group tables.

use crate::runner::run_reference;
use daisy::prelude::*;
use daisy::profile::chrome_trace_json;
use daisy_ppc::PpcIsa;
use daisy_workloads::Workload;
use std::fmt::Write as _;

/// Configuration for one profiled run (see [`run_profiled`]).
pub struct RunConfig {
    /// Cache hierarchy (default infinite).
    pub cache: Hierarchy,
    /// Enable profile-guided tiered retranslation under this policy.
    pub tiered: Option<TierPolicy>,
    /// Enable guest-level attribution ([`daisy::profile`]).
    pub guest_profiling: bool,
    /// Install a ring sink capturing structured trace events.
    pub sink: Option<RingSink>,
}

impl Default for RunConfig {
    fn default() -> RunConfig {
        RunConfig { cache: Hierarchy::infinite(), tiered: None, guest_profiling: false, sink: None }
    }
}

/// Resolves workload names to [`Workload`]s; an empty list means all
/// nine. Panics on an unknown name, listing the valid ones.
pub fn resolve_workloads(names: &[String]) -> Vec<Workload> {
    if names.is_empty() {
        return daisy_workloads::all();
    }
    names
        .iter()
        .map(|n| {
            daisy_workloads::by_name(n).unwrap_or_else(|| {
                let known: Vec<&str> = daisy_workloads::all().iter().map(|w| w.name).collect();
                panic!("unknown workload: {n} (expected one of {})", known.join(", "))
            })
        })
        .collect()
}

/// Runs `w` to completion under DAISY with group profiling always on
/// and the given extras, asserting the workload's result check.
pub fn run_profiled(w: &Workload, cfg: RunConfig) -> DaisySystem<PpcIsa> {
    let mut builder = DaisySystem::<PpcIsa>::builder()
        .mem_size(w.mem_size)
        .cache(cfg.cache)
        .profiling(true)
        .guest_profiling(cfg.guest_profiling);
    if let Some(policy) = cfg.tiered {
        builder = builder.tiered(policy);
    }
    if let Some(sink) = cfg.sink {
        builder = builder.trace_sink(sink);
    }
    let mut sys = builder.build();
    sys.load(&w.program()).expect("workload fits in memory");
    sys.run(50 * w.max_instrs).expect("workload completes");
    w.check(&sys.cpu, &sys.mem).unwrap_or_else(|e| panic!("{}: check failed: {e}", w.name));
    sys
}

/// The five guest-level metrics the `report` binary publishes per
/// workload (plus the raw counts behind them).
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Workload name.
    pub name: &'static str,
    /// Exact dynamic base-instruction count (reference interpreter).
    pub base_instrs: u64,
    /// ILP with the finite cache model's stalls charged.
    pub finite_ilp: f64,
    /// Infinite-ILP pathlength reduction (stall-free; same VLIW
    /// stream, so one finite-cache run yields both).
    pub infinite_ilp: f64,
    /// Mean parcels per retired VLIW (taken path).
    pub ops_per_vliw: f64,
    /// Modeled VMM overhead cycles per base instruction (§4.2 buckets:
    /// translate, retranslate, chain maintenance, interpret).
    pub overhead_per_base_instr: f64,
    /// Fraction of executed speculative parcels whose results were
    /// never needed on the taken path.
    pub waste_fraction: f64,
    /// Speculative parcels executed.
    pub spec_ops: u64,
    /// Speculative parcels wasted.
    pub wasted_spec_ops: u64,
}

/// Runs `w` once under the paper's finite cache with guest profiling
/// and distills the metric bundle; returns the system too so callers
/// can export traces from the same run.
pub fn report_workload(w: &Workload) -> (WorkloadReport, DaisySystem<PpcIsa>) {
    let base_instrs = run_reference(w).ninstrs;
    let sys = run_profiled(
        w,
        RunConfig {
            cache: Hierarchy::paper_default(),
            guest_profiling: true,
            ..RunConfig::default()
        },
    );
    let gp = sys.guest_profile.as_ref().expect("guest profiling enabled");
    let overhead = gp.overhead().report(&sys.stats);
    let report = WorkloadReport {
        name: w.name,
        base_instrs,
        finite_ilp: sys.stats.finite_ilp(base_instrs),
        infinite_ilp: sys.stats.pathlength_reduction(base_instrs),
        ops_per_vliw: sys.stats.mean_parcels_per_vliw(),
        overhead_per_base_instr: overhead.per_base_instr(base_instrs),
        waste_fraction: gp.waste_fraction(),
        spec_ops: gp.spec_ops(),
        wasted_spec_ops: gp.wasted_spec_ops(),
    };
    (report, sys)
}

/// Renders the Chrome trace for a completed guest-profiled run.
pub fn chrome_trace_for(sys: &DaisySystem<PpcIsa>, workload: &str) -> String {
    let gp = sys.guest_profile.as_ref().expect("guest profiling enabled");
    chrome_trace_json(gp, workload)
}

fn geomean(xs: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = xs.filter(|x| *x > 0.0).collect();
    if v.is_empty() {
        0.0
    } else {
        (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp()
    }
}

fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "0.0".to_owned()
    }
}

/// Serializes the reports as the `BENCH_report.json` document:
///
/// ```json
/// {
///   "cache": "paper_default",
///   "workloads": [ { "name": ..., "base_instrs": ...,
///     "finite_ilp": ..., "infinite_ilp": ..., "ops_per_vliw": ...,
///     "overhead_per_base_instr": ..., "waste_fraction": ...,
///     "spec_ops": ..., "wasted_spec_ops": ... }, ... ],
///   "geomean": { "finite_ilp": ..., "infinite_ilp": ... }
/// }
/// ```
pub fn report_json(reports: &[WorkloadReport]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"cache\": \"paper_default\",\n  \"workloads\": [\n");
    for (i, r) in reports.iter().enumerate() {
        // invariant: write! to a String cannot fail.
        #[allow(clippy::unwrap_used)]
        writeln!(
            out,
            "    {{\"name\": \"{}\", \"base_instrs\": {}, \"finite_ilp\": {}, \
             \"infinite_ilp\": {}, \"ops_per_vliw\": {}, \"overhead_per_base_instr\": {}, \
             \"waste_fraction\": {}, \"spec_ops\": {}, \"wasted_spec_ops\": {}}}{}",
            r.name,
            r.base_instrs,
            json_num(r.finite_ilp),
            json_num(r.infinite_ilp),
            json_num(r.ops_per_vliw),
            json_num(r.overhead_per_base_instr),
            json_num(r.waste_fraction),
            r.spec_ops,
            r.wasted_spec_ops,
            if i + 1 < reports.len() { "," } else { "" },
        )
        .unwrap();
    }
    // invariant: write! to a String cannot fail.
    #[allow(clippy::unwrap_used)]
    write!(
        out,
        "  ],\n  \"geomean\": {{\"finite_ilp\": {}, \"infinite_ilp\": {}}}\n}}\n",
        json_num(geomean(reports.iter().map(|r| r.finite_ilp))),
        json_num(geomean(reports.iter().map(|r| r.infinite_ilp))),
    )
    .unwrap();
    out
}
