//! Quickstart: assemble a PowerPC program, run it under DAISY, and see
//! what the dynamic translator did with it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use daisy::prelude::*;
use daisy_ppc::interp::Cpu;
use daisy_ppc::mem::Memory;
use daisy_ppc::reg::CrField;
use daisy_ppc::PpcIsa;
use daisy_ppc::{Asm, Gpr};

fn main() {
    // A PowerPC program: sum of squares 1..=100 via a counted loop.
    let mut a = Asm::new(0x1000);
    a.li(Gpr(3), 0); // acc
    a.li(Gpr(4), 100);
    a.mtctr(Gpr(4));
    a.label("loop");
    a.mfctr(Gpr(5));
    a.mullw(Gpr(6), Gpr(5), Gpr(5));
    a.add(Gpr(3), Gpr(3), Gpr(6));
    a.bdnz("loop");
    a.cmpwi(CrField(0), Gpr(3), 0);
    a.sc();
    let prog = a.finish().expect("assembles");

    // Reference semantics: the plain interpreter.
    let mut mem = Memory::new(0x10000);
    prog.load_into(&mut mem).unwrap();
    let mut cpu = Cpu::new(prog.entry);
    cpu.run(&mut mem, 100_000).unwrap();
    println!("interpreter: r3 = {} after {} instructions", cpu.gpr[3], cpu.ninstrs);

    // The same binary under DAISY: translated to VLIW tree code on
    // first touch, then executed in parallel.
    let mut sys = DaisySystem::<PpcIsa>::builder().mem_size(0x10000).build();
    sys.load(&prog).unwrap();
    sys.run(1_000_000).unwrap();
    println!(
        "DAISY:       r3 = {} in {} VLIWs  (ILP = {:.2})",
        sys.cpu.gpr[3],
        sys.stats.vliws_executed,
        sys.stats.pathlength_reduction(cpu.ninstrs)
    );
    assert_eq!(sys.cpu.gpr[3], cpu.gpr[3], "architected state must match");

    // Peek at the translation itself.
    let group = sys.vmm.lookup(prog.entry).expect("translated");
    println!(
        "\nthe entry group has {} tree instructions; the first is:\n{}",
        group.group.len(),
        group.group.vliws[0]
    );
}
