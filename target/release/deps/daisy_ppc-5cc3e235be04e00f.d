/root/repo/target/release/deps/daisy_ppc-5cc3e235be04e00f.d: crates/ppc/src/lib.rs crates/ppc/src/asm.rs crates/ppc/src/decode.rs crates/ppc/src/encode.rs crates/ppc/src/insn.rs crates/ppc/src/interp.rs crates/ppc/src/mem.rs crates/ppc/src/parse.rs crates/ppc/src/reg.rs

/root/repo/target/release/deps/daisy_ppc-5cc3e235be04e00f: crates/ppc/src/lib.rs crates/ppc/src/asm.rs crates/ppc/src/decode.rs crates/ppc/src/encode.rs crates/ppc/src/insn.rs crates/ppc/src/interp.rs crates/ppc/src/mem.rs crates/ppc/src/parse.rs crates/ppc/src/reg.rs

crates/ppc/src/lib.rs:
crates/ppc/src/asm.rs:
crates/ppc/src/decode.rs:
crates/ppc/src/encode.rs:
crates/ppc/src/insn.rs:
crates/ppc/src/interp.rs:
crates/ppc/src/mem.rs:
crates/ppc/src/parse.rs:
crates/ppc/src/reg.rs:
