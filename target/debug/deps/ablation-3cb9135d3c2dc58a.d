/root/repo/target/debug/deps/ablation-3cb9135d3c2dc58a.d: crates/bench/benches/ablation.rs

/root/repo/target/debug/deps/ablation-3cb9135d3c2dc58a: crates/bench/benches/ablation.rs

crates/bench/benches/ablation.rs:
