//! Trait-bound pin: the guest-agnostic core must build and run with
//! the RV32I frontend *alone* — this test's `daisy` dev-dependency has
//! default features (no `ppc`), so any stray PowerPC coupling inside
//! the core fails this compilation, not just the CI dependency-graph
//! gate.
//!
//! It also drives every RV32 workload end-to-end through translation
//! and validates the final state against the workload checkers (which
//! recompute results in Rust), plus against a straight interpreter run
//! of the same binary.

use daisy::prelude::*;
use daisy_rv32::{Cpu, Rv32Isa};

#[test]
fn rv32_workloads_translate_and_match_the_interpreter() {
    for w in daisy_rv32::workloads::all() {
        let prog = w.program();

        // Through the translator.
        let mut sys = DaisySystem::<Rv32Isa>::builder().mem_size(w.mem_size).build();
        sys.load(&prog).unwrap();
        let stop = sys.run(10 * w.max_instrs).unwrap();
        assert_eq!(stop, StopReason::Syscall, "{} did not finish: {stop:?}", w.name);
        w.check(&sys.cpu, &sys.mem).unwrap_or_else(|e| panic!("{} (daisy): {e}", w.name));

        // Through the interpreter oracle.
        let mut mem = daisy_rv32::mem::Memory::new(w.mem_size);
        prog.load_into(&mut mem).unwrap();
        let mut cpu = Cpu::new(prog.entry);
        let istop = cpu.run(&mut mem, w.max_instrs);
        assert_eq!(istop, StopReason::Syscall, "{} (interp): {istop:?}", w.name);
        w.check(&cpu, &mem).unwrap_or_else(|e| panic!("{} (interp): {e}", w.name));

        // Same architected end state either way. (`ninstrs` is not
        // compared: translated groups retire instructions outside the
        // interpreter's counter, as on the PowerPC side.)
        if let Some(diff) = daisy_isa::GuestCpu::state_diff(&sys.cpu, &cpu, true) {
            panic!("{}: translated vs interpreted state differs: {diff}", w.name);
        }
    }
}

#[test]
fn small_control_flow_kernels_translate() {
    // Exercise jal/jalr linking and slt through the translator with a
    // call-return kernel: a0 = sum of f(i) for i in 0..10, f via jalr.
    use daisy_rv32::insn::Xr;
    let (a0, i, lim, ra, t) = (Xr(10), Xr(5), Xr(6), Xr(1), Xr(7));
    let mut a = daisy_rv32::Asm::new(0x1000);
    a.li(a0, 0);
    a.li(i, 0);
    a.li(lim, 10);
    a.label("loop");
    a.jal(ra, "double");
    a.addi(i, i, 1);
    a.blt(i, lim, "loop");
    a.ecall();
    a.label("double");
    a.add(t, i, i);
    a.add(a0, a0, t);
    a.jalr(Xr(0), ra, 0);
    let prog = a.finish().unwrap();

    let mut sys = DaisySystem::<Rv32Isa>::builder().mem_size(0x2_0000).build();
    sys.load(&prog).unwrap();
    let stop = sys.run(1_000_000).unwrap();
    assert_eq!(stop, StopReason::Syscall);
    assert_eq!(sys.cpu.x[10], (0..10u32).map(|i| 2 * i).sum());
}
