/root/repo/target/debug/deps/daisy_repro-28ee9eb13d30982d.d: src/lib.rs

/root/repo/target/debug/deps/daisy_repro-28ee9eb13d30982d: src/lib.rs

src/lib.rs:
