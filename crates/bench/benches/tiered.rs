//! Profile-guided tiered retranslation: cold groups are translated
//! with the paper-default window; groups that cross the hot dispatch
//! threshold are dropped and rebuilt with a wider window, deeper
//! speculation, and interpretive profiling hints (§4.3's reoptimized
//! translations).
//!
//! Besides the criterion timings, writes `BENCH_tiered.json` at the
//! repository root comparing finite-cache ILP, dispatch counts, and
//! promotions with tiering off versus on, per workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use daisy::prelude::*;
use daisy_bench::runner::{self, Measurement};
use daisy_cachesim::Hierarchy;
use daisy_workloads::Workload;
use std::fmt::Write as _;
use std::hint::black_box;

const WORKLOADS: &[&str] = &["compress", "sort", "xlat"];

fn run_once(w: &Workload, tiered: bool) -> Measurement {
    let policy = tiered.then(TierPolicy::default);
    runner::run_daisy_tiered(w, TranslatorConfig::default(), Hierarchy::paper_default(), policy)
}

fn bench_tiered(c: &mut Criterion) {
    let mut g = c.benchmark_group("tiered");
    g.sample_size(10);
    let mut rows = Vec::new();
    for &name in WORKLOADS {
        let w = daisy_workloads::by_name(name).unwrap();
        for tiered in [false, true] {
            let mode = if tiered { "tiered" } else { "cold" };
            g.bench_with_input(BenchmarkId::new(name, mode), &tiered, |b, &t| {
                b.iter(|| black_box(run_once(&w, t)));
            });
        }

        // One measured pass per mode for the JSON report.
        let cell = |m: &Measurement| {
            format!(
                concat!(
                    "{{\"finite_ilp\": {:.4}, \"ilp\": {:.4}, \"vliws\": {}, ",
                    "\"stall_cycles\": {}, \"total_dispatches\": {}, ",
                    "\"hot_promotions\": {}}}"
                ),
                m.finite_ilp(),
                m.ilp(),
                m.stats.vliws_executed,
                m.stats.stall_cycles,
                m.stats.total_dispatches(),
                m.hot_promotions
            )
        };
        let cold = run_once(&w, false);
        let hot = run_once(&w, true);
        let delta = (hot.finite_ilp() / cold.finite_ilp() - 1.0) * 100.0;
        let mut row = String::new();
        let _ = write!(
            row,
            concat!(
                "    {{\"name\": \"{}\", \"cold\": {}, \"tiered\": {}, ",
                "\"finite_ilp_delta_pct\": {:.2}}}"
            ),
            name,
            cell(&cold),
            cell(&hot),
            delta
        );
        rows.push(row);
    }
    g.finish();

    let json = format!(
        "{{\n  \"bench\": \"tiered\",\n  \"workloads\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_tiered.json");
    std::fs::write(path, json).expect("write BENCH_tiered.json");
}

criterion_group!(benches, bench_tiered);
criterion_main!(benches);
