//! VLIW tree instructions and groups.
//!
//! "VLIW instructions are trees of operations with multiple conditional
//! branches allowed in each VLIW. All the branch conditions are
//! evaluated prior to execution of the VLIW, and ALU/Memory operations
//! from the resulting path in the VLIW are executed in parallel"
//! (paper §2). A *group* is the tree of VLIWs created for one entry
//! point of a page (`CreateVLIWGroupForEntry`).

use crate::machine::{MachineConfig, ResClass, ResCounts};
use crate::op::{OpKind, Operation};
use crate::reg::Reg;
use std::fmt;

/// Index of a VLIW within its [`Group`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VliwId(pub u32);

/// Index of a node within its [`Vliw`] tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Root node of every tree.
pub const ROOT: NodeId = NodeId(0);

/// A branch condition: test one bit of a 4-bit condition value held in
/// `src` (an architected CR field or a renamed register).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cond {
    /// Register holding the 4-bit condition field value.
    pub src: Reg,
    /// Mask selecting the bit within the field (LT = 0b1000 … SO = 0b0001).
    pub mask: u32,
    /// Branch taken when the masked bit equals this.
    pub want_set: bool,
    /// `Some(T)`: this split is an indirect-branch specialization check
    /// (`if reg == T continue at T`, paper Ch. 6); the *fall* side
    /// continues at base address `T`. Needed by exception recovery.
    pub spec_target: Option<u32>,
    /// Base-architecture address of the branch instruction this split
    /// was scheduled for. Pure provenance: never consulted on the
    /// execution fast path, only at retirement/sampling points so
    /// branch-resolution work can be attributed to the guest PC that
    /// caused it (`daisy::profile`).
    pub origin: u32,
}

impl Cond {
    /// Evaluates the condition over the field's runtime value.
    pub fn holds(&self, field_value: u32) -> bool {
        (field_value & self.mask != 0) == self.want_set
    }
}

/// Which register an indirect branch goes through — used for the
/// cross-page branch statistics of Table 5.6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndirectVia {
    /// Through the link register.
    Lr,
    /// Through the count register.
    Ctr,
}

/// How control leaves a tree path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exit {
    /// Fall into another VLIW of the same group (the `b VLIW2` arrows
    /// of paper Fig. 2.2). Free: not a "branch" resource.
    Goto(VliwId),
    /// Direct branch to a base-architecture address; the VMM dispatcher
    /// resolves it to an entry point (same page) or a cross-page branch.
    Branch {
        /// Base-architecture target address.
        target: u32,
    },
    /// Indirect branch through a (possibly renamed) register — the
    /// paper's `GO_ACROSS_PAGE offset(reg)`.
    Indirect {
        /// Register read for the target address.
        src: Reg,
        /// Which architected register this stands for.
        via: IndirectVia,
    },
    /// Hand the instruction at `addr` to the VMM for interpretation
    /// (`sc`, `rfi`, privileged SPR access, unsupported encodings).
    Interp {
        /// Base-architecture address of the instruction to interpret.
        addr: u32,
    },
}

/// What a tree node is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// Still being extended by the scheduler; becomes `Branch` or `Exit`.
    Open,
    /// Conditional split: all conditions evaluate against VLIW-entry state.
    Branch {
        /// The tested condition.
        cond: Cond,
        /// Child when the condition holds.
        taken: NodeId,
        /// Child when it does not.
        fall: NodeId,
    },
    /// Leaf continuation.
    Exit(Exit),
}

/// One node of a tree instruction: operations executed when the taken
/// path passes through it, plus its continuation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// Parcels on this node.
    pub ops: Vec<Operation>,
    /// Structure.
    pub kind: NodeKind,
}

/// One VLIW tree instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Vliw {
    nodes: Vec<Node>,
    counts: ResCounts,
    /// Base-architecture address corresponding to this VLIW's entry —
    /// the anchor for precise-exception recovery (paper §3.5).
    pub base_entry: u32,
}

impl Vliw {
    /// Creates an empty tree (a single open root) anchored at
    /// base-architecture address `base_entry`.
    pub fn new(base_entry: u32) -> Vliw {
        Vliw {
            nodes: vec![Node { ops: Vec::new(), kind: NodeKind::Open }],
            counts: ResCounts::default(),
            base_entry,
        }
    }

    /// The node table.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// A node by id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Resource usage over the whole tree.
    pub fn counts(&self) -> &ResCounts {
        &self.counts
    }

    /// Resource class of an operation for accounting.
    pub fn class_of(op: &Operation) -> ResClass {
        match op.kind {
            OpKind::Load { .. } => ResClass::Load,
            OpKind::Store { .. } => ResClass::Store,
            _ => ResClass::Alu,
        }
    }

    /// True if the machine allows adding `op` to this tree.
    pub fn has_room(&self, cfg: &MachineConfig, op: &Operation) -> bool {
        cfg.has_room(&self.counts, Vliw::class_of(op))
    }

    /// True if the machine allows one more conditional branch.
    pub fn has_branch_room(&self, cfg: &MachineConfig) -> bool {
        cfg.has_branch_room(&self.counts)
    }

    /// Appends an operation to a node (the "tip" of some path).
    ///
    /// Ops may be added even after the node has been split or sealed:
    /// parcels on a node always execute before its branch condition or
    /// exit takes effect, so later out-of-order placements into an
    /// earlier VLIW of a path are well defined.
    pub fn add_op(&mut self, node: NodeId, op: Operation) {
        match Vliw::class_of(&op) {
            ResClass::Alu => self.counts.alu += 1,
            ResClass::Load => self.counts.loads += 1,
            ResClass::Store => self.counts.stores += 1,
        }
        self.nodes[node.0 as usize].ops.push(op);
    }

    /// Splits an open node with a conditional branch, returning the
    /// `(taken, fall)` children (both open).
    ///
    /// # Panics
    ///
    /// Panics if the node is not open.
    pub fn split(&mut self, node: NodeId, cond: Cond) -> (NodeId, NodeId) {
        assert!(
            matches!(self.nodes[node.0 as usize].kind, NodeKind::Open),
            "can only split an open node"
        );
        let taken = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { ops: Vec::new(), kind: NodeKind::Open });
        let fall = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { ops: Vec::new(), kind: NodeKind::Open });
        self.nodes[node.0 as usize].kind = NodeKind::Branch { cond, taken, fall };
        self.counts.branches += 1;
        (taken, fall)
    }

    /// Seals an open node with an exit.
    ///
    /// # Panics
    ///
    /// Panics if the node is not open.
    pub fn seal(&mut self, node: NodeId, exit: Exit) {
        assert!(
            matches!(self.nodes[node.0 as usize].kind, NodeKind::Open),
            "can only seal an open node"
        );
        self.nodes[node.0 as usize].kind = NodeKind::Exit(exit);
    }

    /// Replaces the exit of a leaf (used when a path is re-pointed at a
    /// newly created entry).
    ///
    /// # Panics
    ///
    /// Panics if the node is not an exit.
    pub fn reseal(&mut self, node: NodeId, exit: Exit) {
        assert!(matches!(self.nodes[node.0 as usize].kind, NodeKind::Exit(_)));
        self.nodes[node.0 as usize].kind = NodeKind::Exit(exit);
    }

    /// Estimated binary size in bytes: one word per parcel, one per
    /// branch, one per exit, one header word. This stands in for the
    /// paper's generated binary VLIW code when measuring code explosion
    /// (Table 5.1, Fig. 5.4).
    pub fn code_bytes(&self) -> u32 {
        let exits =
            self.nodes.iter().filter(|n| matches!(n.kind, NodeKind::Exit(_))).count() as u32;
        4 * (1 + self.counts.issue() + self.counts.branches + exits)
    }

    /// Total parcels (ops) in the tree.
    pub fn num_ops(&self) -> u32 {
        self.counts.issue()
    }
}

impl fmt::Display for Vliw {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "VLIW @{:#x}:", self.base_entry)?;
        for (i, n) in self.nodes.iter().enumerate() {
            write!(f, "  n{i}:")?;
            for op in &n.ops {
                write!(f, " [{op}]")?;
            }
            match &n.kind {
                NodeKind::Open => writeln!(f, " <open>")?,
                NodeKind::Branch { cond, taken, fall } => writeln!(
                    f,
                    " if {}&{:#x}=={} -> n{} else n{}",
                    cond.src, cond.mask, cond.want_set, taken.0, fall.0
                )?,
                NodeKind::Exit(e) => writeln!(f, " exit {e:?}")?,
            }
        }
        Ok(())
    }
}

/// A group of VLIWs translated from one entry point (the unit the
/// Pathlist algorithm produces, laid out from the entry offset in the
/// translated code page).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    /// Base-architecture address of the group's entry instruction.
    pub entry: u32,
    /// The tree instructions, `vliws[0]` being the root.
    pub vliws: Vec<Vliw>,
    /// Dynamic count of base-architecture instructions covered (for
    /// diagnostics; paths overlap so this is not a code-size measure).
    pub base_instrs: u32,
}

impl Group {
    /// Creates a group with a single empty root VLIW.
    pub fn new(entry: u32) -> Group {
        Group { entry, vliws: vec![Vliw::new(entry)], base_instrs: 0 }
    }

    /// The VLIW with the given id.
    pub fn vliw(&self, id: VliwId) -> &Vliw {
        &self.vliws[id.0 as usize]
    }

    /// Mutable access to a VLIW.
    pub fn vliw_mut(&mut self, id: VliwId) -> &mut Vliw {
        &mut self.vliws[id.0 as usize]
    }

    /// Appends a new empty VLIW anchored at `base_entry`, returning its id.
    pub fn push_vliw(&mut self, base_entry: u32) -> VliwId {
        let id = VliwId(self.vliws.len() as u32);
        self.vliws.push(Vliw::new(base_entry));
        id
    }

    /// Number of VLIWs.
    pub fn len(&self) -> usize {
        self.vliws.len()
    }

    /// True when the group has no VLIWs (never after construction).
    pub fn is_empty(&self) -> bool {
        self.vliws.is_empty()
    }

    /// Total estimated binary size of the group in bytes.
    pub fn code_bytes(&self) -> u32 {
        self.vliws.iter().map(Vliw::code_bytes).sum()
    }

    /// Checks the structural invariants a finished translation must
    /// satisfy; returns the first violation.
    ///
    /// * no node is left `Open` (every path was sealed),
    /// * every `Goto` targets a VLIW of the group (backward targets are
    ///   legal: loop rerolling closes single-group loops with a
    ///   backward `Goto`, and every engine bounds them with the shared
    ///   back-edge budget),
    /// * branch and child node ids are in range,
    /// * commit parcels write architected registers from renamed ones.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        for (vi, v) in self.vliws.iter().enumerate() {
            for (ni, n) in v.nodes().iter().enumerate() {
                for op in &n.ops {
                    if op.is_commit {
                        let d =
                            op.dest.ok_or_else(|| format!("v{vi}/n{ni}: commit without dest"))?;
                        if !d.is_architected() {
                            return Err(format!("v{vi}/n{ni}: commit into rename reg {d}"));
                        }
                        if !op.srcs().first().is_some_and(|s| s.is_rename()) {
                            return Err(format!("v{vi}/n{ni}: commit not from a rename reg"));
                        }
                    }
                    if op.speculative {
                        for d in [op.dest, op.dest2].into_iter().flatten() {
                            if d.is_architected() {
                                return Err(format!(
                                    "v{vi}/n{ni}: speculative op writes architected {d}"
                                ));
                            }
                        }
                    }
                }
                match &n.kind {
                    NodeKind::Open => return Err(format!("v{vi}/n{ni}: node left open")),
                    NodeKind::Branch { taken, fall, .. } => {
                        if taken.0 as usize >= v.nodes().len() || fall.0 as usize >= v.nodes().len()
                        {
                            return Err(format!("v{vi}/n{ni}: branch child out of range"));
                        }
                    }
                    NodeKind::Exit(Exit::Goto(t)) => {
                        if t.0 as usize >= self.vliws.len() {
                            return Err(format!("v{vi}/n{ni}: goto out of range"));
                        }
                    }
                    NodeKind::Exit(_) => {}
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::MemWidth;

    fn alu_op() -> Operation {
        Operation::new(OpKind::Add, 0).dst(Reg(32)).src(Reg(1)).src(Reg(2))
    }

    #[test]
    fn build_a_tree() {
        let mut v = Vliw::new(0x1000);
        v.add_op(ROOT, alu_op());
        let cond =
            Cond { src: Reg(64), mask: 0b0010, want_set: true, spec_target: None, origin: 0x1000 };
        let (t, fall) = v.split(ROOT, cond);
        v.seal(t, Exit::Branch { target: 0x2000 });
        v.add_op(fall, alu_op());
        v.seal(fall, Exit::Goto(VliwId(1)));

        assert_eq!(v.counts().alu, 2);
        assert_eq!(v.counts().branches, 1);
        assert_eq!(v.nodes().len(), 3);
        match v.node(ROOT).kind {
            NodeKind::Branch { taken, fall: f2, .. } => {
                assert_eq!(taken, t);
                assert_eq!(f2, fall);
            }
            _ => panic!("root should be a branch"),
        }
    }

    #[test]
    fn ops_may_follow_a_seal() {
        // Out-of-order placement into an earlier, already-sealed VLIW.
        let mut v = Vliw::new(0);
        v.seal(ROOT, Exit::Goto(VliwId(1)));
        v.add_op(ROOT, alu_op());
        assert_eq!(v.counts().alu, 1);
    }

    #[test]
    fn resource_counting_by_class() {
        let mut v = Vliw::new(0);
        v.add_op(ROOT, alu_op());
        v.add_op(
            ROOT,
            Operation::new(OpKind::Load { width: MemWidth::Word, algebraic: false }, 0)
                .dst(Reg(33))
                .src(Reg(1)),
        );
        v.add_op(
            ROOT,
            Operation::new(OpKind::Store { width: MemWidth::Byte }, 0).src(Reg(2)).src(Reg(1)),
        );
        assert_eq!(v.counts().alu, 1);
        assert_eq!(v.counts().loads, 1);
        assert_eq!(v.counts().stores, 1);
        assert_eq!(v.counts().issue(), 3);
        assert_eq!(v.num_ops(), 3);
    }

    #[test]
    fn cond_evaluation() {
        let c =
            Cond { src: Reg(64), mask: 0b0010, want_set: true, spec_target: None, origin: 0x1000 };
        assert!(c.holds(0b0010));
        assert!(!c.holds(0b1000));
        let c =
            Cond { src: Reg(64), mask: 0b0010, want_set: false, spec_target: None, origin: 0x1000 };
        assert!(!c.holds(0b0010));
        assert!(c.holds(0b0100));
    }

    #[test]
    fn validate_catches_structural_violations() {
        // Open node.
        let g = Group::new(0x1000);
        assert!(g.validate().unwrap_err().contains("open"));

        // Backward goto is legal (loop rerolling); out-of-range is not.
        let mut g = Group::new(0x1000);
        g.vliw_mut(VliwId(0)).seal(ROOT, Exit::Goto(VliwId(0)));
        assert!(g.validate().is_ok());
        let mut g = Group::new(0x1000);
        g.vliw_mut(VliwId(0)).seal(ROOT, Exit::Goto(VliwId(7)));
        assert!(g.validate().unwrap_err().contains("range"));

        // Speculative op writing an architected register.
        let mut g = Group::new(0x1000);
        let mut op = Operation::new(OpKind::Add, 0).dst(Reg(3)).src(Reg(1)).src(Reg(2));
        op.speculative = true;
        g.vliw_mut(VliwId(0)).add_op(ROOT, op);
        g.vliw_mut(VliwId(0)).seal(ROOT, Exit::Interp { addr: 0 });
        assert!(g.validate().unwrap_err().contains("architected"));

        // Commit from an architected (non-rename) source.
        let mut g = Group::new(0x1000);
        let mut op = Operation::new(OpKind::Copy, 0).dst(Reg(3)).src(Reg(4));
        op.is_commit = true;
        g.vliw_mut(VliwId(0)).add_op(ROOT, op);
        g.vliw_mut(VliwId(0)).seal(ROOT, Exit::Interp { addr: 0 });
        assert!(g.validate().unwrap_err().contains("rename"));

        // A well-formed group passes.
        let mut g = Group::new(0x1000);
        let next = g.push_vliw(0x1004);
        g.vliw_mut(VliwId(0)).seal(ROOT, Exit::Goto(next));
        g.vliw_mut(next).seal(ROOT, Exit::Branch { target: 0x2000 });
        assert_eq!(g.validate(), Ok(()));
    }

    #[test]
    fn group_growth_and_size() {
        let mut g = Group::new(0x1000);
        assert_eq!(g.len(), 1);
        let v2 = g.push_vliw(0x1008);
        assert_eq!(v2, VliwId(1));
        g.vliw_mut(v2).add_op(ROOT, alu_op());
        g.vliw_mut(v2).seal(ROOT, Exit::Branch { target: 0x1010 });
        g.vliw_mut(VliwId(0)).seal(ROOT, Exit::Goto(v2));
        // vliw0: header + exit = 8; vliw1: header + op + exit = 12.
        assert_eq!(g.code_bytes(), 20);
    }
}
