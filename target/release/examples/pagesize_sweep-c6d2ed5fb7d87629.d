/root/repo/target/release/examples/pagesize_sweep-c6d2ed5fb7d87629.d: examples/pagesize_sweep.rs

/root/repo/target/release/examples/pagesize_sweep-c6d2ed5fb7d87629: examples/pagesize_sweep.rs

examples/pagesize_sweep.rs:
