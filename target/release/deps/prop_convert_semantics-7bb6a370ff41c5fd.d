/root/repo/target/release/deps/prop_convert_semantics-7bb6a370ff41c5fd.d: tests/prop_convert_semantics.rs

/root/repo/target/release/deps/prop_convert_semantics-7bb6a370ff41c5fd: tests/prop_convert_semantics.rs

tests/prop_convert_semantics.rs:
