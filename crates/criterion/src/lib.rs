//! A small, self-contained subset of the [criterion](https://docs.rs/criterion)
//! API, used so this workspace's benches compile and run in environments
//! with no access to crates.io.
//!
//! Behaviour: when the harness is invoked by `cargo bench` (a `--bench`
//! argument is present) each benchmark is warmed up and timed over a
//! number of samples, and a mean wall-clock time — plus throughput, if
//! declared — is printed. Under `cargo test`, benches run a single
//! iteration each so the target stays a smoke test. There are no
//! statistics, plots, or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// True when the binary is being driven by `cargo bench`.
fn full_measurement() -> bool {
    std::env::args().any(|a| a == "--bench")
}

/// Declared work per iteration, used for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark name with a parameter, e.g. `window/64`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `name/param`.
    pub fn new(name: impl Display, param: impl Display) -> BenchmarkId {
        BenchmarkId { id: format!("{name}/{param}") }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times the closure passed to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the configured number of iterations and records the
    /// total elapsed time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// The top-level harness state.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into(), sample_size: 20, throughput: None }
    }
}

/// A group of benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), |b| f(b));
        self
    }

    /// Runs one benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let full = full_measurement();
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        if !full {
            // Smoke-test mode (`cargo test`): one iteration, no timing.
            f(&mut b);
            return;
        }
        // Warm-up.
        f(&mut b);
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.sample_size {
            f(&mut b);
            total += b.elapsed;
            iters += b.iters;
        }
        let mean = total.as_secs_f64() / iters.max(1) as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean > 0.0 => {
                format!("  {:.3} Melem/s", n as f64 / mean / 1e6)
            }
            Some(Throughput::Bytes(n)) if mean > 0.0 => {
                format!("  {:.3} MiB/s", n as f64 / mean / (1024.0 * 1024.0))
            }
            _ => String::new(),
        };
        println!("{}/{}  time: {:.3} ms{}", self.name, id, mean * 1e3, rate);
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Groups benchmark functions under one name, like the real crate.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the harness entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
