//! The runtime VLIW register file with exception tag bits.
//!
//! "Each register of the VLIW has an additional exception tag bit,
//! indicating that the register contains the result of an operation that
//! caused an error. … When a register with the exception tag is used by
//! a non-speculative commit operation, or any non-speculative operation,
//! an exception occurs" (paper §2.1).
//!
//! The file extends the base architecture's state; each frontend's
//! `GuestCpu::fill_regfile` and `GuestCpu::write_back` convert between
//! the two. Non-architected registers are *not* part of base state and
//! are deliberately dropped on write-back — the paper's point that
//! nothing extra needs saving at context switches.

use crate::reg::{Reg, NUM_REGS};

/// Runtime register values plus exception tags.
#[derive(Debug, Clone)]
pub struct RegFile {
    vals: [u32; NUM_REGS],
    tags: [bool; NUM_REGS],
}

impl Default for RegFile {
    fn default() -> Self {
        RegFile::new()
    }
}

impl RegFile {
    /// All-zero file with no tags set.
    pub fn new() -> RegFile {
        RegFile { vals: [0; NUM_REGS], tags: [false; NUM_REGS] }
    }

    /// Reads a register value.
    pub fn get(&self, r: Reg) -> u32 {
        self.vals[r.index()]
    }

    /// Writes a register value, clearing its exception tag.
    pub fn set(&mut self, r: Reg, v: u32) {
        self.vals[r.index()] = v;
        self.tags[r.index()] = false;
    }

    /// Reads an exception tag.
    pub fn tag(&self, r: Reg) -> bool {
        self.tags[r.index()]
    }

    /// Marks a register as holding a poisoned speculative result.
    pub fn set_tag(&mut self, r: Reg, t: bool) {
        self.tags[r.index()] = t;
    }

    /// Direct mutable views of the value and tag arrays, indexed by
    /// [`Reg::index`]. The packed execution engine borrows these once
    /// per dispatch so its inlined hot loop reads and writes registers
    /// as plain array accesses instead of per-operand accessor calls
    /// (which stay outlined for the reference tree engine).
    #[inline]
    pub fn arrays_mut(&mut self) -> (&mut [u32; NUM_REGS], &mut [bool; NUM_REGS]) {
        (&mut self.vals, &mut self.tags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_clears_tag() {
        let mut f = RegFile::new();
        let r = Reg::rename(3);
        f.set_tag(r, true);
        assert!(f.tag(r));
        f.set(r, 9);
        assert!(!f.tag(r));
        assert_eq!(f.get(r), 9);
    }
}
