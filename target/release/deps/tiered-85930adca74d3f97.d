/root/repo/target/release/deps/tiered-85930adca74d3f97.d: crates/bench/benches/tiered.rs

/root/repo/target/release/deps/tiered-85930adca74d3f97: crates/bench/benches/tiered.rs

crates/bench/benches/tiered.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
