/root/repo/target/release/deps/chaining-b9b5262e7a6472b3.d: tests/chaining.rs

/root/repo/target/release/deps/chaining-b9b5262e7a6472b3: tests/chaining.rs

tests/chaining.rs:
