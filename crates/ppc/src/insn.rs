//! The PowerPC instruction subset as a typed enum.
//!
//! The subset covers everything the paper's workloads and mechanisms
//! exercise: full fixed-point arithmetic and logic (including carry and
//! record forms), rotates and shifts, byte/half/word loads and stores
//! (D-form, X-form, and update forms), the CISCy `lmw`/`stmw` multiple
//! transfers (which DAISY decomposes into RISC primitives), all four
//! branch forms with complete BO/BI semantics, CR-logical operations,
//! SPR/MSR/CR moves, traps, `sc` and `rfi`.

use crate::reg::{CrBit, CrField, Gpr, Spr};
use std::fmt;

// Shared with the ISA-neutral layers; historical paths preserved here.
pub use daisy_isa::convert::{BranchInfo, BranchKind};
pub use daisy_vliw::op::{CrOp, MemWidth};

/// Three-register XO-form arithmetic operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    /// `add rt,ra,rb`
    Add,
    /// `addc` — add carrying (sets CA).
    Addc,
    /// `adde` — add extended (reads and sets CA).
    Adde,
    /// `subf rt,ra,rb` = rb - ra.
    Subf,
    /// `subfc` — subtract from carrying.
    Subfc,
    /// `subfe` — subtract from extended.
    Subfe,
    /// `mullw` — multiply low word.
    Mullw,
    /// `mulhw` — multiply high word signed.
    Mulhw,
    /// `mulhwu` — multiply high word unsigned.
    Mulhwu,
    /// `divw` — divide word signed.
    Divw,
    /// `divwu` — divide word unsigned.
    Divwu,
}

/// Two-register XO-form arithmetic operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arith2Op {
    /// `neg rt,ra`
    Neg,
    /// `addze rt,ra` — add CA to ra.
    Addze,
    /// `addme rt,ra` — add CA - 1 to ra.
    Addme,
    /// `subfze rt,ra` — CA - ra.
    Subfze,
    /// `subfme rt,ra` — CA - ra - 1... (¬ra + CA - 1).
    Subfme,
}

/// X-form register-register logical operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogicOp {
    /// `and ra,rs,rb`
    And,
    /// `or ra,rs,rb`
    Or,
    /// `xor ra,rs,rb`
    Xor,
    /// `nand ra,rs,rb`
    Nand,
    /// `nor ra,rs,rb`
    Nor,
    /// `andc ra,rs,rb` — and with complement.
    Andc,
    /// `orc ra,rs,rb` — or with complement.
    Orc,
    /// `eqv ra,rs,rb` — equivalence (xnor).
    Eqv,
}

/// D-form logical-immediate operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogicImmOp {
    /// `andi. ra,rs,ui` — always records to cr0.
    Andi,
    /// `andis. ra,rs,ui` — always records to cr0.
    Andis,
    /// `ori ra,rs,ui`
    Ori,
    /// `oris ra,rs,ui`
    Oris,
    /// `xori ra,rs,ui`
    Xori,
    /// `xoris ra,rs,ui`
    Xoris,
}

impl LogicImmOp {
    /// `andi.`/`andis.` record to cr0 by definition.
    pub fn records(self) -> bool {
        matches!(self, LogicImmOp::Andi | LogicImmOp::Andis)
    }
}

/// X-form variable shifts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShiftOp {
    /// `slw ra,rs,rb` — shift left word.
    Slw,
    /// `srw ra,rs,rb` — shift right word logical.
    Srw,
    /// `sraw ra,rs,rb` — shift right algebraic (sets CA).
    Sraw,
}

/// Single-source X-form operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// `cntlzw ra,rs` — count leading zeros.
    Cntlzw,
    /// `extsb ra,rs` — sign-extend byte.
    Extsb,
    /// `extsh ra,rs` — sign-extend half.
    Extsh,
}

/// A decoded PowerPC instruction.
///
/// Field names follow the architecture manual: `rt` target, `ra`/`rb`
/// sources, `rs` store/logical source, `si` signed immediate, `ui`
/// unsigned immediate, `bo`/`bi` branch operand/condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Insn {
    /// `addi rt,ra,si`; `ra = r0` means the literal value 0 (`li`).
    Addi { rt: Gpr, ra: Gpr, si: i16 },
    /// `addis rt,ra,si` — add shifted immediate; `ra = r0` literal 0 (`lis`).
    Addis { rt: Gpr, ra: Gpr, si: i16 },
    /// `addic`/`addic.` — add immediate carrying; the paper's `ai`.
    Addic { rt: Gpr, ra: Gpr, si: i16, rc: bool },
    /// `subfic rt,ra,si` = si - ra, sets CA.
    Subfic { rt: Gpr, ra: Gpr, si: i16 },
    /// `mulli rt,ra,si`
    Mulli { rt: Gpr, ra: Gpr, si: i16 },
    /// Three-register XO-form arithmetic.
    Arith { op: ArithOp, rt: Gpr, ra: Gpr, rb: Gpr, oe: bool, rc: bool },
    /// Two-register XO-form arithmetic.
    Arith2 { op: Arith2Op, rt: Gpr, ra: Gpr, oe: bool, rc: bool },
    /// Register-register logical.
    Logic { op: LogicOp, ra: Gpr, rs: Gpr, rb: Gpr, rc: bool },
    /// Logical immediate.
    LogicImm { op: LogicImmOp, ra: Gpr, rs: Gpr, ui: u16 },
    /// Variable shift.
    Shift { op: ShiftOp, ra: Gpr, rs: Gpr, rb: Gpr, rc: bool },
    /// `srawi ra,rs,sh` — shift right algebraic immediate (sets CA).
    Srawi { ra: Gpr, rs: Gpr, sh: u8, rc: bool },
    /// `rlwinm ra,rs,sh,mb,me` — rotate left and AND with mask.
    Rlwinm { ra: Gpr, rs: Gpr, sh: u8, mb: u8, me: u8, rc: bool },
    /// `rlwimi ra,rs,sh,mb,me` — rotate left and insert under mask.
    Rlwimi { ra: Gpr, rs: Gpr, sh: u8, mb: u8, me: u8, rc: bool },
    /// `rlwnm ra,rs,rb,mb,me` — rotate left by register and AND with mask.
    Rlwnm { ra: Gpr, rs: Gpr, rb: Gpr, mb: u8, me: u8, rc: bool },
    /// Single-source operation.
    Unary { op: UnaryOp, ra: Gpr, rs: Gpr, rc: bool },
    /// `cmp`/`cmpl bf,ra,rb`
    Cmp { bf: CrField, signed: bool, ra: Gpr, rb: Gpr },
    /// `cmpi`/`cmpli bf,ra,imm` — immediate already extended to 32 bits.
    CmpImm { bf: CrField, signed: bool, ra: Gpr, imm: i32 },
    /// Any load: `l{b,h,w}z[u][x]`, `lha[u][x]`.
    Load {
        width: MemWidth,
        /// Algebraic (sign-extending) load — only `lha` forms.
        algebraic: bool,
        /// Update form: write the effective address back to `ra`.
        update: bool,
        /// X-form: effective address is `ra|0 + rb` instead of `ra|0 + d`.
        indexed: bool,
        rt: Gpr,
        ra: Gpr,
        rb: Gpr,
        d: i16,
    },
    /// Any store: `st{b,h,w}[u][x]`.
    Store { width: MemWidth, update: bool, indexed: bool, rs: Gpr, ra: Gpr, rb: Gpr, d: i16 },
    /// `lmw rt,d(ra)` — load multiple words rt..r31 (CISCy; decomposed by DAISY).
    Lmw { rt: Gpr, ra: Gpr, d: i16 },
    /// `stmw rs,d(ra)` — store multiple words rs..r31.
    Stmw { rs: Gpr, ra: Gpr, d: i16 },
    /// `b`/`ba`/`bl`/`bla` — I-form branch, `li` is the 26-bit byte displacement.
    BranchI { li: i32, aa: bool, lk: bool },
    /// `bc`/`bca`/`bcl`/`bcla` — B-form conditional branch.
    BranchC { bo: u8, bi: CrBit, bd: i16, aa: bool, lk: bool },
    /// `bclr` — branch conditional to link register (`blr`).
    BranchClr { bo: u8, bi: CrBit, lk: bool },
    /// `bcctr` — branch conditional to count register (`bctr`).
    BranchCctr { bo: u8, bi: CrBit, lk: bool },
    /// CR-logical operation on individual CR bits.
    CrLogic { op: CrOp, bt: CrBit, ba: CrBit, bb: CrBit },
    /// `mcrf bf,bfa` — move CR field.
    Mcrf { bf: CrField, bfa: CrField },
    /// `mfcr rt` — move all 8 CR fields to a GPR.
    Mfcr { rt: Gpr },
    /// `mtcrf fxm,rs` — move GPR to the CR fields selected by `fxm`.
    Mtcrf { fxm: u8, rs: Gpr },
    /// `mfspr rt,spr`
    Mfspr { rt: Gpr, spr: Spr },
    /// `mtspr spr,rs`
    Mtspr { spr: Spr, rs: Gpr },
    /// `mfmsr rt` — privileged.
    Mfmsr { rt: Gpr },
    /// `mtmsr rs` — privileged.
    Mtmsr { rs: Gpr },
    /// `sc` — system call.
    Sc,
    /// `rfi` — return from interrupt; privileged.
    Rfi,
    /// `sync` — memory barrier (no-op in this single-processor model).
    Sync,
    /// `isync` — instruction barrier.
    Isync,
    /// `eieio` — enforce in-order I/O.
    Eieio,
    /// `tw to,ra,rb` — trap word on condition.
    Tw { to: u8, ra: Gpr, rb: Gpr },
    /// `twi to,ra,si` — trap word immediate.
    Twi { to: u8, ra: Gpr, si: i16 },
    /// A word that does not decode to a supported instruction.
    Invalid(u32),
}

/// BO-field helpers (PowerPC numbers BO bits 0..4 most-significant first).
pub mod bo {
    /// Branch always.
    pub const ALWAYS: u8 = 0b10100;
    /// Branch if condition bit is true.
    pub const IF_TRUE: u8 = 0b01100;
    /// Branch if condition bit is false.
    pub const IF_FALSE: u8 = 0b00100;
    /// Decrement CTR, branch if CTR != 0 (`bdnz`).
    pub const DNZ: u8 = 0b10000;
    /// Decrement CTR, branch if CTR == 0 (`bdz`).
    pub const DZ: u8 = 0b10010;

    /// True if the BO encoding ignores the condition bit.
    pub fn ignores_cond(bo_field: u8) -> bool {
        bo_field & 0b10000 != 0
    }

    /// True if the BO encoding wants the condition bit set.
    pub fn wants_true(bo_field: u8) -> bool {
        bo_field & 0b01000 != 0
    }

    /// True if the BO encoding does not touch CTR.
    pub fn ignores_ctr(bo_field: u8) -> bool {
        bo_field & 0b00100 != 0
    }

    /// True if the BO encoding wants CTR == 0 after decrement.
    pub fn wants_ctr_zero(bo_field: u8) -> bool {
        bo_field & 0b00010 != 0
    }

    /// True if this BO makes the branch unconditional (ignores both
    /// condition and CTR).
    pub fn unconditional(bo_field: u8) -> bool {
        ignores_cond(bo_field) && ignores_ctr(bo_field)
    }
}

impl Insn {
    /// Returns control-flow information if this instruction is a branch,
    /// resolving direct targets against the branch's own address `pc`.
    pub fn branch_info(&self, pc: u32) -> Option<BranchInfo> {
        match *self {
            Insn::BranchI { li, aa, lk } => Some(BranchInfo {
                kind: BranchKind::Direct(if aa { li as u32 } else { pc.wrapping_add(li as u32) }),
                unconditional: true,
                links: lk,
                decrements_ctr: false,
            }),
            Insn::BranchC { bo: b, bd, aa, lk, .. } => Some(BranchInfo {
                kind: BranchKind::Direct(if aa {
                    bd as i32 as u32
                } else {
                    pc.wrapping_add(bd as i32 as u32)
                }),
                unconditional: bo::unconditional(b),
                links: lk,
                decrements_ctr: !bo::ignores_ctr(b),
            }),
            Insn::BranchClr { bo: b, lk, .. } => Some(BranchInfo {
                kind: BranchKind::ViaLr,
                unconditional: bo::unconditional(b),
                links: lk,
                decrements_ctr: !bo::ignores_ctr(b),
            }),
            Insn::BranchCctr { bo: b, lk, .. } => Some(BranchInfo {
                kind: BranchKind::ViaCtr,
                unconditional: bo::unconditional(b),
                links: lk,
                decrements_ctr: false,
            }),
            _ => None,
        }
    }

    /// True for any branch instruction.
    pub fn is_branch(&self) -> bool {
        matches!(
            self,
            Insn::BranchI { .. }
                | Insn::BranchC { .. }
                | Insn::BranchClr { .. }
                | Insn::BranchCctr { .. }
        )
    }

    /// True for loads (including `lmw`).
    pub fn is_load(&self) -> bool {
        matches!(self, Insn::Load { .. } | Insn::Lmw { .. })
    }

    /// True for stores (including `stmw`).
    pub fn is_store(&self) -> bool {
        matches!(self, Insn::Store { .. } | Insn::Stmw { .. })
    }

    /// True for instructions only supervisor state may execute.
    pub fn is_privileged(&self) -> bool {
        match self {
            Insn::Rfi | Insn::Mtmsr { .. } | Insn::Mfmsr { .. } => true,
            Insn::Mfspr { spr, .. } | Insn::Mtspr { spr, .. } => !spr.user_accessible(),
            _ => false,
        }
    }
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn rc(b: bool) -> &'static str {
            if b {
                "."
            } else {
                ""
            }
        }
        match *self {
            Insn::Addi { rt, ra, si } => write!(f, "addi {rt},{ra},{si}"),
            Insn::Addis { rt, ra, si } => write!(f, "addis {rt},{ra},{si}"),
            Insn::Addic { rt, ra, si, rc: r } => write!(f, "addic{} {rt},{ra},{si}", rc(r)),
            Insn::Subfic { rt, ra, si } => write!(f, "subfic {rt},{ra},{si}"),
            Insn::Mulli { rt, ra, si } => write!(f, "mulli {rt},{ra},{si}"),
            Insn::Arith { op, rt, ra, rb, oe, rc: r } => {
                let n = match op {
                    ArithOp::Add => "add",
                    ArithOp::Addc => "addc",
                    ArithOp::Adde => "adde",
                    ArithOp::Subf => "subf",
                    ArithOp::Subfc => "subfc",
                    ArithOp::Subfe => "subfe",
                    ArithOp::Mullw => "mullw",
                    ArithOp::Mulhw => "mulhw",
                    ArithOp::Mulhwu => "mulhwu",
                    ArithOp::Divw => "divw",
                    ArithOp::Divwu => "divwu",
                };
                write!(f, "{n}{}{} {rt},{ra},{rb}", if oe { "o" } else { "" }, rc(r))
            }
            Insn::Arith2 { op, rt, ra, oe, rc: r } => {
                let n = match op {
                    Arith2Op::Neg => "neg",
                    Arith2Op::Addze => "addze",
                    Arith2Op::Addme => "addme",
                    Arith2Op::Subfze => "subfze",
                    Arith2Op::Subfme => "subfme",
                };
                write!(f, "{n}{}{} {rt},{ra}", if oe { "o" } else { "" }, rc(r))
            }
            Insn::Logic { op, ra, rs, rb, rc: r } => {
                let n = match op {
                    LogicOp::And => "and",
                    LogicOp::Or => "or",
                    LogicOp::Xor => "xor",
                    LogicOp::Nand => "nand",
                    LogicOp::Nor => "nor",
                    LogicOp::Andc => "andc",
                    LogicOp::Orc => "orc",
                    LogicOp::Eqv => "eqv",
                };
                write!(f, "{n}{} {ra},{rs},{rb}", rc(r))
            }
            Insn::LogicImm { op, ra, rs, ui } => {
                let n = match op {
                    LogicImmOp::Andi => "andi.",
                    LogicImmOp::Andis => "andis.",
                    LogicImmOp::Ori => "ori",
                    LogicImmOp::Oris => "oris",
                    LogicImmOp::Xori => "xori",
                    LogicImmOp::Xoris => "xoris",
                };
                write!(f, "{n} {ra},{rs},{ui}")
            }
            Insn::Shift { op, ra, rs, rb, rc: r } => {
                let n = match op {
                    ShiftOp::Slw => "slw",
                    ShiftOp::Srw => "srw",
                    ShiftOp::Sraw => "sraw",
                };
                write!(f, "{n}{} {ra},{rs},{rb}", rc(r))
            }
            Insn::Srawi { ra, rs, sh, rc: r } => write!(f, "srawi{} {ra},{rs},{sh}", rc(r)),
            Insn::Rlwinm { ra, rs, sh, mb, me, rc: r } => {
                write!(f, "rlwinm{} {ra},{rs},{sh},{mb},{me}", rc(r))
            }
            Insn::Rlwimi { ra, rs, sh, mb, me, rc: r } => {
                write!(f, "rlwimi{} {ra},{rs},{sh},{mb},{me}", rc(r))
            }
            Insn::Rlwnm { ra, rs, rb, mb, me, rc: r } => {
                write!(f, "rlwnm{} {ra},{rs},{rb},{mb},{me}", rc(r))
            }
            Insn::Unary { op, ra, rs, rc: r } => {
                let n = match op {
                    UnaryOp::Cntlzw => "cntlzw",
                    UnaryOp::Extsb => "extsb",
                    UnaryOp::Extsh => "extsh",
                };
                write!(f, "{n}{} {ra},{rs}", rc(r))
            }
            Insn::Cmp { bf, signed, ra, rb } => {
                write!(f, "{} {bf},{ra},{rb}", if signed { "cmpw" } else { "cmplw" })
            }
            Insn::CmpImm { bf, signed, ra, imm } => {
                write!(f, "{} {bf},{ra},{imm}", if signed { "cmpwi" } else { "cmplwi" })
            }
            Insn::Load { width, algebraic, update, indexed, rt, ra, rb, d } => {
                let w = match width {
                    MemWidth::Byte => "b",
                    MemWidth::Half => "h",
                    MemWidth::Word => "w",
                };
                let z = if algebraic { "a" } else { "z" };
                let u = if update { "u" } else { "" };
                if indexed {
                    write!(f, "l{w}{z}{u}x {rt},{ra},{rb}")
                } else {
                    write!(f, "l{w}{z}{u} {rt},{d}({ra})")
                }
            }
            Insn::Store { width, update, indexed, rs, ra, rb, d } => {
                let w = match width {
                    MemWidth::Byte => "b",
                    MemWidth::Half => "h",
                    MemWidth::Word => "w",
                };
                let u = if update { "u" } else { "" };
                if indexed {
                    write!(f, "st{w}{u}x {rs},{ra},{rb}")
                } else {
                    write!(f, "st{w}{u} {rs},{d}({ra})")
                }
            }
            Insn::Lmw { rt, ra, d } => write!(f, "lmw {rt},{d}({ra})"),
            Insn::Stmw { rs, ra, d } => write!(f, "stmw {rs},{d}({ra})"),
            Insn::BranchI { li, aa, lk } => {
                write!(f, "b{}{} {li:+}", if lk { "l" } else { "" }, if aa { "a" } else { "" })
            }
            Insn::BranchC { bo, bi, bd, aa, lk } => write!(
                f,
                "bc{}{} {bo},{bi},{bd:+}",
                if lk { "l" } else { "" },
                if aa { "a" } else { "" }
            ),
            Insn::BranchClr { bo, bi, lk } => {
                write!(f, "bclr{} {bo},{bi}", if lk { "l" } else { "" })
            }
            Insn::BranchCctr { bo, bi, lk } => {
                write!(f, "bcctr{} {bo},{bi}", if lk { "l" } else { "" })
            }
            Insn::CrLogic { op, bt, ba, bb } => {
                let n = match op {
                    CrOp::And => "crand",
                    CrOp::Or => "cror",
                    CrOp::Xor => "crxor",
                    CrOp::Nand => "crnand",
                    CrOp::Nor => "crnor",
                    CrOp::Eqv => "creqv",
                    CrOp::Andc => "crandc",
                    CrOp::Orc => "crorc",
                };
                write!(f, "{n} {},{},{}", bt.0, ba.0, bb.0)
            }
            Insn::Mcrf { bf, bfa } => write!(f, "mcrf {bf},{bfa}"),
            Insn::Mfcr { rt } => write!(f, "mfcr {rt}"),
            Insn::Mtcrf { fxm, rs } => write!(f, "mtcrf {fxm:#x},{rs}"),
            Insn::Mfspr { rt, spr } => write!(f, "mfspr {rt},{spr}"),
            Insn::Mtspr { spr, rs } => write!(f, "mtspr {spr},{rs}"),
            Insn::Mfmsr { rt } => write!(f, "mfmsr {rt}"),
            Insn::Mtmsr { rs } => write!(f, "mtmsr {rs}"),
            Insn::Sc => write!(f, "sc"),
            Insn::Rfi => write!(f, "rfi"),
            Insn::Sync => write!(f, "sync"),
            Insn::Isync => write!(f, "isync"),
            Insn::Eieio => write!(f, "eieio"),
            Insn::Tw { to, ra, rb } => write!(f, "tw {to},{ra},{rb}"),
            Insn::Twi { to, ra, si } => write!(f, "twi {to},{ra},{si}"),
            Insn::Invalid(w) => write!(f, ".long {w:#010x}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_info_direct_relative() {
        let i = Insn::BranchI { li: -8, aa: false, lk: false };
        let info = i.branch_info(0x100).unwrap();
        assert_eq!(info.kind, BranchKind::Direct(0xF8));
        assert!(info.unconditional);
        assert!(!info.links);
    }

    #[test]
    fn branch_info_absolute() {
        let i = Insn::BranchI { li: 0x2000, aa: true, lk: true };
        let info = i.branch_info(0x100).unwrap();
        assert_eq!(info.kind, BranchKind::Direct(0x2000));
        assert!(info.links);
    }

    #[test]
    fn bo_semantics() {
        assert!(bo::unconditional(bo::ALWAYS));
        assert!(!bo::unconditional(bo::IF_TRUE));
        assert!(bo::wants_true(bo::IF_TRUE));
        assert!(!bo::wants_true(bo::IF_FALSE));
        assert!(!bo::ignores_ctr(bo::DNZ));
        assert!(bo::wants_ctr_zero(bo::DZ));
    }

    #[test]
    fn conditional_bc_is_not_unconditional() {
        let i = Insn::BranchC { bo: bo::IF_TRUE, bi: CrBit(2), bd: 16, aa: false, lk: false };
        let info = i.branch_info(0x1000).unwrap();
        assert!(!info.unconditional);
        assert_eq!(info.kind, BranchKind::Direct(0x1010));
    }

    #[test]
    fn classification() {
        assert!(Insn::Lmw { rt: Gpr(29), ra: Gpr(1), d: 0 }.is_load());
        assert!(Insn::Stmw { rs: Gpr(29), ra: Gpr(1), d: 0 }.is_store());
        assert!(Insn::Rfi.is_privileged());
        assert!(Insn::Mfspr { rt: Gpr(0), spr: Spr::Srr0 }.is_privileged());
        assert!(!Insn::Mfspr { rt: Gpr(0), spr: Spr::Lr }.is_privileged());
    }

    #[test]
    fn display_smoke() {
        let i = Insn::Load {
            width: MemWidth::Word,
            algebraic: false,
            update: false,
            indexed: false,
            rt: Gpr(5),
            ra: Gpr(3),
            rb: Gpr(0),
            d: 8,
        };
        assert_eq!(i.to_string(), "lwz r5,8(r3)");
    }
}
