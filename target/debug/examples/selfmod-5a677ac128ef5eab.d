/root/repo/target/debug/examples/selfmod-5a677ac128ef5eab.d: examples/selfmod.rs Cargo.toml

/root/repo/target/debug/examples/libselfmod-5a677ac128ef5eab.rmeta: examples/selfmod.rs Cargo.toml

examples/selfmod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
