/root/repo/target/debug/examples/selfmod-6b6db93b507b456c.d: examples/selfmod.rs

/root/repo/target/debug/examples/selfmod-6b6db93b507b456c: examples/selfmod.rs

examples/selfmod.rs:
