/root/repo/target/debug/deps/engine-64b3c84397883861.d: crates/bench/benches/engine.rs

/root/repo/target/debug/deps/engine-64b3c84397883861: crates/bench/benches/engine.rs

crates/bench/benches/engine.rs:
