//! Deterministic RNG, per-test configuration, and failure reporting.

/// Per-test configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 256 }
    }
}

impl Config {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }

    /// Cases to run after applying the `PROPTEST_CASES` override.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(self.cases)
    }
}

/// SplitMix64: tiny, fast, and plenty for test-case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG seeded from a test identifier and case index, so every
    /// case is reproducible from the test output alone.
    pub fn for_case(test_id: &str, case: u32) -> TestRng {
        // FNV-1a over the id, mixed with the case number.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_id.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)) }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Modulo bias is irrelevant for test-case generation.
        self.next_u64() % bound
    }
}

/// Runs a closure when dropped during a panic — used to print the
/// failing inputs of a property test without catching the unwind.
pub struct PanicReporter<F: Fn()> {
    report: F,
}

impl<F: Fn()> PanicReporter<F> {
    /// Arms the reporter.
    pub fn new(report: F) -> PanicReporter<F> {
        PanicReporter { report }
    }
}

impl<F: Fn()> Drop for PanicReporter<F> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            (self.report)();
        }
    }
}
