//! Direct group-to-group chaining: the dispatch loop may skip the VMM
//! on hot exits, but never at the expense of architectural
//! compatibility. These tests drive the two hazards the link/sever
//! protocol exists for — self-modifying code and alias retranslation —
//! and pin down the accounting invariants between chained and
//! unchained runs.

use daisy::prelude::*;
use daisy_ppc::encode::encode;
use daisy_ppc::insn::Insn;
use daisy_ppc::interp::{Cpu, StopReason};
use daisy_ppc::mem::Memory;
use proptest::prelude::*;

const PAGE: u32 = 256;
const TABLE: u32 = 0x8000;

/// A loop that rewrites one of its own instructions every iteration.
///
/// Each pass fetches the next encoding of `addi r5, 0, imm` from a data
/// table, stores it over the `patch:` site, executes the patched
/// instruction, and accumulates r5 into r7. Stale translations — or
/// stale chain links — would execute the previous iteration's immediate
/// and corrupt the accumulator.
///
/// The loop starts at 0x1F00 so the patch site (padded up to 0x2000)
/// lands in the *next* 4 KiB invalidation unit: the store kills only
/// the patch group, while the storing group — and its chain link into
/// the patch page — survives to observe the sever.
fn selfmod_program(imms: &[i16], filler: &[u8]) -> daisy_ppc::asm::Program {
    let mut a = Asm::new(0x1F00);
    for r in [0u8, 1, 2, 3, 6] {
        a.li(Gpr(r), i16::from(r) + 1);
    }
    a.li(Gpr(7), 0); // accumulator
    a.li32(Gpr(9), TABLE);
    a.li(Gpr(8), 0); // table index
    a.li(Gpr(31), imms.len() as i16);
    a.mtctr(Gpr(31));
    a.label("loop");
    a.lwzx(Gpr(4), Gpr(9), Gpr(8)); // next encoding
    a.la(Gpr(3), "patch");
    a.stw(Gpr(4), 0, Gpr(3)); // the code modification
    for &op in filler {
        match op % 6 {
            0 => a.addi(Gpr(0), Gpr(0), 7),
            1 => a.add(Gpr(1), Gpr(1), Gpr(0)),
            2 => a.xor(Gpr(2), Gpr(2), Gpr(1)),
            3 => a.srwi(Gpr(3), Gpr(2), 3),
            4 => a.add(Gpr(6), Gpr(1), Gpr(3)),
            _ => a.mullw(Gpr(1), Gpr(1), Gpr(2)),
        }
    }
    // Park the patch site on its own page: the store above then
    // invalidates a page other than the one it executes from.
    while !a.here().is_multiple_of(PAGE) {
        a.nop();
    }
    a.label("patch");
    a.li(Gpr(5), 0); // overwritten at run time, every iteration
    a.add(Gpr(7), Gpr(7), Gpr(5));
    a.addi(Gpr(8), Gpr(8), 4);
    a.bdnz("loop");
    a.sc();

    let words: Vec<u32> =
        imms.iter().map(|&si| encode(&Insn::Addi { rt: Gpr(5), ra: Gpr(0), si })).collect();
    a.data_words(TABLE, &words);
    a.finish().expect("selfmod program assembles")
}

fn small_page_config() -> TranslatorConfig {
    TranslatorConfig { page_size: PAGE, ..TranslatorConfig::default() }
}

fn run_reference(prog: &daisy_ppc::asm::Program, mem_size: u32) -> (Cpu, Memory) {
    let mut mem = Memory::new(mem_size);
    prog.load_into(&mut mem).unwrap();
    let mut cpu = Cpu::new(prog.entry);
    let stop = cpu.run(&mut mem, 1_000_000).unwrap();
    assert_eq!(stop, StopReason::Syscall, "reference run did not finish");
    (cpu, mem)
}

fn run_chained(prog: &daisy_ppc::asm::Program, mem_size: u32, chaining: bool) -> DaisySystem {
    let mut sys = DaisySystem::builder()
        .mem_size(mem_size)
        .translator(small_page_config())
        .chaining(chaining)
        .build();
    sys.load(prog).unwrap();
    let stop = sys.run(10_000_000).unwrap();
    assert_eq!(stop, StopReason::Syscall, "DAISY run did not finish");
    sys
}

fn assert_state_matches(sys: &DaisySystem, cpu: &Cpu, mem: &Memory, what: &str) {
    assert_eq!(sys.cpu.gpr, cpu.gpr, "{what}: GPR state diverged");
    assert_eq!(sys.cpu.cr, cpu.cr, "{what}: CR diverged");
    assert_eq!(sys.cpu.ctr, cpu.ctr, "{what}: CTR diverged");
    assert_eq!(sys.cpu.xer, cpu.xer, "{what}: XER diverged");
    assert_eq!(sys.cpu.pc, cpu.pc, "{what}: PC diverged");
    let size = mem.size();
    assert_eq!(
        sys.mem.read_bytes(0, size).unwrap(),
        mem.read_bytes(0, size).unwrap(),
        "{what}: memory image diverged"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Chained execution of self-modifying programs is bit-for-bit the
    /// interpreter's: every store over the patch page must sever the
    /// inbound links before the next dispatch can follow one.
    #[test]
    fn prop_selfmod_chaining_matches_interpreter(
        imms in proptest::collection::vec(1i16..1000, 1..6),
        filler in proptest::collection::vec(0u8..6, 0..12),
    ) {
        let prog = selfmod_program(&imms, &filler);
        let (cpu, mem) = run_reference(&prog, 0x2_0000);
        let sys = run_chained(&prog, 0x2_0000, true);
        assert_state_matches(&sys, &cpu, &mem, "selfmod");
        // The first iteration stores before the patch page is ever
        // translated; only later iterations hit a protected unit.
        if imms.len() >= 2 {
            prop_assert!(sys.stats.code_modifications >= 1, "patch stores must invalidate");
        }
        let want: u32 = imms.iter().map(|&i| i as u32).sum();
        prop_assert_eq!(sys.cpu.gpr[7], want, "accumulator saw a stale patch");
    }
}

/// Deterministic version with enough iterations to watch the protocol
/// itself: links get installed into the patch group, each invalidation
/// drops the only strong reference, and the next dispatch finds the
/// link severed instead of following it into dead code.
#[test]
fn selfmod_loop_severs_chain_links() {
    let imms: Vec<i16> = (1..=8).collect();
    let prog = selfmod_program(&imms, &[1, 2]);
    let (cpu, mem) = run_reference(&prog, 0x2_0000);
    let sys = run_chained(&prog, 0x2_0000, true);
    assert_state_matches(&sys, &cpu, &mem, "selfmod sever");
    assert_eq!(sys.cpu.gpr[7], 36);
    assert!(sys.stats.chain.link_installs >= 1, "hot exits should get links");
    assert!(
        sys.stats.chain.severs >= 1,
        "invalidating the patch page must sever inbound links; stats: {:?}",
        sys.stats.chain
    );
    assert!(sys.stats.code_modifications >= 2);
}

/// Alias restarts reached through a chained edge still retranslate the
/// offending entry conservatively — and the retranslation drops the old
/// group, severing any chain links that pointed at it.
#[test]
fn alias_restart_through_chained_edge_retranslates_conservatively() {
    let w = daisy_workloads::by_name("hist").expect("hist workload");
    let prog = w.program();
    let mut sys = DaisySystem::builder().mem_size(w.mem_size).build();
    sys.vmm.alias_retranslate_after = Some(3);
    sys.load(&prog).unwrap();
    sys.run(50 * w.max_instrs).unwrap();
    w.check(&sys.cpu, &sys.mem).expect("hist result exact under retranslation");
    assert!(sys.vmm.stats.alias_retranslations >= 1, "threshold should trip");
    assert!(sys.stats.chain.chained_dispatches > 0, "hot loop should chain");
    assert!(
        sys.stats.chain.severs >= 1,
        "retranslation must sever links into the replaced group; stats: {:?}",
        sys.stats.chain
    );
}

/// Chaining is pure plumbing: with it off the dispatch loop goes
/// through the VMM every time (chain counters stay zero), and with it
/// on the *total* number of group dispatches is unchanged — links only
/// reroute lookups, they never add or skip group entries. Architected
/// results are identical either way, and on hot workloads chaining
/// absorbs at least half of all VMM dispatches.
#[test]
fn chaining_cuts_vmm_dispatches_without_changing_results() {
    for name in ["hist", "compress"] {
        let w = daisy_workloads::by_name(name).expect("workload");
        let prog = w.program();
        let run = |chaining: bool| {
            let mut sys = DaisySystem::builder().mem_size(w.mem_size).chaining(chaining).build();
            sys.load(&prog).unwrap();
            let stop = sys.run(50 * w.max_instrs).unwrap();
            assert_eq!(stop, StopReason::Syscall, "{name}: run did not finish");
            w.check(&sys.cpu, &sys.mem).unwrap();
            sys
        };
        let on = run(true);
        let off = run(false);

        assert_eq!(off.stats.chain, ChainStats::default(), "{name}: chaining off must be inert");
        assert_eq!(on.cpu.gpr, off.cpu.gpr, "{name}: GPRs diverged across modes");
        assert_eq!(on.cpu.pc, off.cpu.pc, "{name}: PC diverged across modes");
        assert_eq!(
            on.stats.total_dispatches(),
            off.stats.groups_entered,
            "{name}: chaining changed the number of group dispatches"
        );
        assert!(
            2 * on.stats.groups_entered <= off.stats.groups_entered,
            "{name}: expected >=50% fewer VMM dispatches, got {} chained vs {} unchained",
            on.stats.groups_entered,
            off.stats.groups_entered
        );
    }
}
