//! Direct group-to-group chaining: the dispatch loop may skip the VMM
//! on hot exits, but never at the expense of architectural
//! compatibility. These tests drive the two hazards the link/sever
//! protocol exists for — self-modifying code and alias retranslation —
//! and pin down the accounting invariants between chained and
//! unchained runs.

use daisy::prelude::*;
use daisy_ppc::encode::encode;
use daisy_ppc::insn::Insn;
use daisy_ppc::interp::{Cpu, StopReason};
use daisy_ppc::mem::Memory;
use daisy_ppc::PpcIsa;
use daisy_ppc::{Asm, Gpr};
use proptest::prelude::*;

const PAGE: u32 = 256;
const TABLE: u32 = 0x8000;

/// A loop that rewrites one of its own instructions every iteration.
///
/// Each pass fetches the next encoding of `addi r5, 0, imm` from a data
/// table, stores it over the `patch:` site, executes the patched
/// instruction, and accumulates r5 into r7. Stale translations — or
/// stale chain links — would execute the previous iteration's immediate
/// and corrupt the accumulator.
///
/// The loop starts at 0x1F00 so the patch site (padded up to 0x2000)
/// lands in the *next* 4 KiB invalidation unit: the store kills only
/// the patch group, while the storing group — and its chain link into
/// the patch page — survives to observe the sever.
fn selfmod_program(imms: &[i16], filler: &[u8]) -> daisy_ppc::asm::Program {
    let mut a = Asm::new(0x1F00);
    for r in [0u8, 1, 2, 3, 6] {
        a.li(Gpr(r), i16::from(r) + 1);
    }
    a.li(Gpr(7), 0); // accumulator
    a.li32(Gpr(9), TABLE);
    a.li(Gpr(8), 0); // table index
    a.li(Gpr(31), imms.len() as i16);
    a.mtctr(Gpr(31));
    a.label("loop");
    a.lwzx(Gpr(4), Gpr(9), Gpr(8)); // next encoding
    a.la(Gpr(3), "patch");
    a.stw(Gpr(4), 0, Gpr(3)); // the code modification
    for &op in filler {
        match op % 6 {
            0 => a.addi(Gpr(0), Gpr(0), 7),
            1 => a.add(Gpr(1), Gpr(1), Gpr(0)),
            2 => a.xor(Gpr(2), Gpr(2), Gpr(1)),
            3 => a.srwi(Gpr(3), Gpr(2), 3),
            4 => a.add(Gpr(6), Gpr(1), Gpr(3)),
            _ => a.mullw(Gpr(1), Gpr(1), Gpr(2)),
        }
    }
    // Park the patch site on its own page: the store above then
    // invalidates a page other than the one it executes from.
    while !a.here().is_multiple_of(PAGE) {
        a.nop();
    }
    a.label("patch");
    a.li(Gpr(5), 0); // overwritten at run time, every iteration
    a.add(Gpr(7), Gpr(7), Gpr(5));
    a.addi(Gpr(8), Gpr(8), 4);
    a.bdnz("loop");
    a.sc();

    let words: Vec<u32> =
        imms.iter().map(|&si| encode(&Insn::Addi { rt: Gpr(5), ra: Gpr(0), si })).collect();
    a.data_words(TABLE, &words);
    a.finish().expect("selfmod program assembles")
}

fn small_page_config() -> TranslatorConfig {
    TranslatorConfig { page_size: PAGE, ..TranslatorConfig::default() }
}

fn run_reference(prog: &daisy_ppc::asm::Program, mem_size: u32) -> (Cpu, Memory) {
    let mut mem = Memory::new(mem_size);
    prog.load_into(&mut mem).unwrap();
    let mut cpu = Cpu::new(prog.entry);
    let stop = cpu.run(&mut mem, 1_000_000).unwrap();
    assert_eq!(stop, StopReason::Syscall, "reference run did not finish");
    (cpu, mem)
}

fn run_chained(
    prog: &daisy_ppc::asm::Program,
    mem_size: u32,
    chaining: bool,
) -> DaisySystem<PpcIsa> {
    let mut sys = DaisySystem::<PpcIsa>::builder()
        .mem_size(mem_size)
        .translator(small_page_config())
        .chaining(chaining)
        .build();
    sys.load(prog).unwrap();
    let stop = sys.run(10_000_000).unwrap();
    assert_eq!(stop, StopReason::Syscall, "DAISY run did not finish");
    sys
}

fn assert_state_matches(sys: &DaisySystem<PpcIsa>, cpu: &Cpu, mem: &Memory, what: &str) {
    assert_eq!(sys.cpu.gpr, cpu.gpr, "{what}: GPR state diverged");
    assert_eq!(sys.cpu.cr, cpu.cr, "{what}: CR diverged");
    assert_eq!(sys.cpu.ctr, cpu.ctr, "{what}: CTR diverged");
    assert_eq!(sys.cpu.xer, cpu.xer, "{what}: XER diverged");
    assert_eq!(sys.cpu.pc, cpu.pc, "{what}: PC diverged");
    let size = mem.size();
    assert_eq!(
        sys.mem.read_bytes(0, size).unwrap(),
        mem.read_bytes(0, size).unwrap(),
        "{what}: memory image diverged"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Chained execution of self-modifying programs is bit-for-bit the
    /// interpreter's: every store over the patch page must sever the
    /// inbound links before the next dispatch can follow one.
    #[test]
    fn prop_selfmod_chaining_matches_interpreter(
        imms in proptest::collection::vec(1i16..1000, 1..6),
        filler in proptest::collection::vec(0u8..6, 0..12),
    ) {
        let prog = selfmod_program(&imms, &filler);
        let (cpu, mem) = run_reference(&prog, 0x2_0000);
        let sys = run_chained(&prog, 0x2_0000, true);
        assert_state_matches(&sys, &cpu, &mem, "selfmod");
        // The first iteration stores before the patch page is ever
        // translated; only later iterations hit a protected unit.
        if imms.len() >= 2 {
            prop_assert!(sys.stats.code_modifications >= 1, "patch stores must invalidate");
        }
        let want: u32 = imms.iter().map(|&i| i as u32).sum();
        prop_assert_eq!(sys.cpu.gpr[7], want, "accumulator saw a stale patch");
    }
}

/// Deterministic version with enough iterations to watch the protocol
/// itself: links get installed into the patch group, each invalidation
/// drops the only strong reference, and the next dispatch finds the
/// link severed instead of following it into dead code.
#[test]
fn selfmod_loop_severs_chain_links() {
    let imms: Vec<i16> = (1..=8).collect();
    let prog = selfmod_program(&imms, &[1, 2]);
    let (cpu, mem) = run_reference(&prog, 0x2_0000);
    let sys = run_chained(&prog, 0x2_0000, true);
    assert_state_matches(&sys, &cpu, &mem, "selfmod sever");
    assert_eq!(sys.cpu.gpr[7], 36);
    assert!(sys.stats.chain.link_installs >= 1, "hot exits should get links");
    assert!(
        sys.stats.chain.severs >= 1,
        "invalidating the patch page must sever inbound links; stats: {:?}",
        sys.stats.chain
    );
    assert!(sys.stats.code_modifications >= 2);
}

/// Alias restarts reached through a chained edge still retranslate the
/// offending entry conservatively — and the retranslation drops the old
/// group, severing any chain links that pointed at it.
#[test]
fn alias_restart_through_chained_edge_retranslates_conservatively() {
    let w = daisy_workloads::by_name("hist").expect("hist workload");
    let prog = w.program();
    let mut sys = DaisySystem::<PpcIsa>::builder().mem_size(w.mem_size).build();
    sys.vmm.alias_retranslate_after = Some(3);
    sys.load(&prog).unwrap();
    sys.run(50 * w.max_instrs).unwrap();
    w.check(&sys.cpu, &sys.mem).expect("hist result exact under retranslation");
    assert!(sys.vmm.stats.alias_retranslations >= 1, "threshold should trip");
    assert!(sys.stats.chain.chained_dispatches > 0, "hot loop should chain");
    assert!(
        sys.stats.chain.severs >= 1,
        "retranslation must sever links into the replaced group; stats: {:?}",
        sys.stats.chain
    );
}

/// Chaining is pure plumbing: with it off the dispatch loop goes
/// through the VMM every time (chain counters stay zero), and with it
/// on the *total* number of group dispatches is unchanged — links only
/// reroute lookups, they never add or skip group entries. Architected
/// results are identical either way, and on hot workloads chaining
/// absorbs at least half of all VMM dispatches.
#[test]
fn chaining_cuts_vmm_dispatches_without_changing_results() {
    for name in ["hist", "compress"] {
        let w = daisy_workloads::by_name(name).expect("workload");
        let prog = w.program();
        let run = |chaining: bool| {
            let mut sys =
                DaisySystem::<PpcIsa>::builder().mem_size(w.mem_size).chaining(chaining).build();
            sys.load(&prog).unwrap();
            let stop = sys.run(50 * w.max_instrs).unwrap();
            assert_eq!(stop, StopReason::Syscall, "{name}: run did not finish");
            w.check(&sys.cpu, &sys.mem).unwrap();
            sys
        };
        let on = run(true);
        let off = run(false);

        assert_eq!(off.stats.chain, ChainStats::default(), "{name}: chaining off must be inert");
        assert_eq!(on.cpu.gpr, off.cpu.gpr, "{name}: GPRs diverged across modes");
        assert_eq!(on.cpu.pc, off.cpu.pc, "{name}: PC diverged across modes");
        assert_eq!(
            on.stats.total_dispatches(),
            off.stats.groups_entered,
            "{name}: chaining changed the number of group dispatches"
        );
        assert!(
            2 * on.stats.groups_entered <= off.stats.groups_entered,
            "{name}: expected >=50% fewer VMM dispatches, got {} chained vs {} unchained",
            on.stats.groups_entered,
            off.stats.groups_entered
        );
    }
}

// ---------------------------------------------------------------------
// The native tier's chain edges: compiled groups jump directly to each
// other through patched stubs, which must obey exactly the sever
// protocol the Rust-level weak links do — invalidation retires them
// before the next entry, and an explicit sever cuts them with the
// links.

fn run_native_chained(prog: &daisy_ppc::asm::Program, mem_size: u32) -> DaisySystem<PpcIsa> {
    let mut sys = DaisySystem::<PpcIsa>::builder()
        .mem_size(mem_size)
        .translator(small_page_config())
        .native_execution(true)
        .native_threshold(2)
        .build();
    sys.load(prog).unwrap();
    let stop = sys.run(10_000_000).unwrap();
    assert_eq!(stop, StopReason::Syscall, "native DAISY run did not finish");
    sys
}

/// The self-modifying loop under the native tier: every store over the
/// patch page invalidates, and the invalidation must retire compiled
/// code and patched native jumps before the next dispatch could enter
/// stale host code. Stale code would execute the previous iteration's
/// immediate and corrupt the accumulator — so bit-exactness *is* the
/// sever check; the flush counter pins that it happened natively too.
#[test]
fn selfmod_loop_severs_native_slots() {
    let imms: Vec<i16> = (1..=8).collect();
    let prog = selfmod_program(&imms, &[1, 2]);
    let (cpu, mem) = run_reference(&prog, 0x2_0000);
    let sys = run_native_chained(&prog, 0x2_0000);
    assert_state_matches(&sys, &cpu, &mem, "native selfmod sever");
    assert_eq!(sys.cpu.gpr[7], 36);
    assert!(sys.stats.code_modifications >= 2);
    assert!(
        sys.stats.chain.severs >= 1,
        "invalidating the patch page must sever inbound links; stats: {:?}",
        sys.stats.chain
    );
    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    {
        let ns = sys.native_stats().expect("native tier active");
        assert!(ns.compiles >= 1, "the hot loop should compile: {ns:?}");
        assert!(
            ns.flushes >= 1,
            "each invalidation epoch must flush native code and patches: {ns:?}"
        );
    }
}

/// An explicit [`DaisySystem::sever_chains`] mid-run must cut patched
/// native jumps together with the Rust-level links — a patched edge
/// surviving the sever would carry execution across a boundary the
/// dispatcher believes severed.
#[test]
fn sever_chains_retires_native_patches() {
    let w = daisy_workloads::by_name("compress").expect("compress workload");
    let mut sys = DaisySystem::<PpcIsa>::builder()
        .mem_size(w.mem_size)
        .native_execution(true)
        .native_threshold(2)
        .build();
    sys.load(&w.program()).unwrap();
    // Warm up until patched edges exist, then sever, then run to
    // completion. (Bounded: with the general templates and the inline
    // indirect-branch cache, whole chained regions execute in a single
    // step, so a fixed large warmup could finish the workload.)
    for _ in 0..400 {
        if sys.native_stats().is_some_and(|ns| ns.edge_patches > 0) {
            break;
        }
        if sys.step().unwrap().is_some() {
            panic!("compress finished during warmup");
        }
    }
    sys.sever_chains();
    let stop = sys.run(10 * w.max_instrs).unwrap();
    assert_eq!(stop, StopReason::Syscall);
    w.check(&sys.cpu, &sys.mem).expect("compress result exact across the sever");
    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    {
        let ns = sys.native_stats().expect("native tier active");
        assert!(ns.flushes >= 1, "sever_chains must flush the native tier: {ns:?}");
        assert!(ns.dispatches > 0, "compress should run natively: {ns:?}");
    }
}

/// Alias-restart retranslation reached through native dispatch: the
/// retranslated entry's old compiled body must be retired (identity
/// check), and results stay exact.
#[test]
fn alias_restart_retranslation_retires_native_code() {
    let w = daisy_workloads::by_name("hist").expect("hist workload");
    let mut sys = DaisySystem::<PpcIsa>::builder()
        .mem_size(w.mem_size)
        .native_execution(true)
        .native_threshold(2)
        .build();
    sys.vmm.alias_retranslate_after = Some(3);
    sys.load(&w.program()).unwrap();
    sys.run(50 * w.max_instrs).unwrap();
    w.check(&sys.cpu, &sys.mem).expect("hist result exact under retranslation");
    assert!(sys.vmm.stats.alias_retranslations >= 1, "threshold should trip");
}

// ---------------------------------------------------------------------
// Interrupt storms under chaining (§3.7): external interrupts delivered
// at every group boundary while the dispatch loop is chaining hot exits
// must still be *precise* — every SRR0 the handler observes is an
// instruction boundary the reference interpreter actually reached, and
// SRR1 is the exact pre-delivery MSR.

const STORM_COUNT: u32 = 0x7000;
// Stop posting after this many boundaries: a pending interrupt at a
// boundary forces the dispatch back through the VMM, so the tail of the
// run (storm subsided) is what exercises chaining underneath.
const STORM_POST_CAP: u32 = 48;

/// An external-interrupt handler that logs each delivery. Saves r3/r4
/// to SPRG0/1, bumps a counter at `STORM_COUNT`, appends (SRR0, SRR1)
/// to the log window right after it, restores, and returns via `rfi`.
fn storm_handler() -> daisy_ppc::asm::Program {
    use daisy_ppc::reg::Spr;
    let mut a = Asm::new(daisy_ppc::vectors::EXTERNAL);
    a.emit(Insn::Mtspr { spr: Spr::Sprg0, rs: Gpr(3) });
    a.emit(Insn::Mtspr { spr: Spr::Sprg1, rs: Gpr(4) });
    a.li32(Gpr(3), STORM_COUNT);
    a.lwz(Gpr(4), 0, Gpr(3));
    a.addi(Gpr(4), Gpr(4), 1);
    a.stw(Gpr(4), 0, Gpr(3));
    a.slwi(Gpr(4), Gpr(4), 3); // slot = COUNT + 8 * new_count
    a.add(Gpr(3), Gpr(3), Gpr(4));
    a.emit(Insn::Mfspr { rt: Gpr(4), spr: Spr::Srr0 });
    a.stw(Gpr(4), 0, Gpr(3));
    a.emit(Insn::Mfspr { rt: Gpr(4), spr: Spr::Srr1 });
    a.stw(Gpr(4), 4, Gpr(3));
    a.emit(Insn::Mfspr { rt: Gpr(3), spr: Spr::Sprg0 });
    a.emit(Insn::Mfspr { rt: Gpr(4), spr: Spr::Sprg1 });
    a.rfi();
    a.finish().expect("storm handler assembles")
}

/// A plain arithmetic loop — enough boundaries for a storm to matter.
fn storm_program(iters: i16, filler: &[u8]) -> daisy_ppc::asm::Program {
    let mut a = Asm::new(0x1000);
    for r in [0u8, 1, 2, 3, 6] {
        a.li(Gpr(r), i16::from(r) + 1);
    }
    a.li(Gpr(31), iters);
    a.mtctr(Gpr(31));
    a.label("loop");
    for &op in filler {
        match op % 6 {
            0 => a.addi(Gpr(0), Gpr(0), 7),
            1 => a.add(Gpr(1), Gpr(1), Gpr(0)),
            2 => a.xor(Gpr(2), Gpr(2), Gpr(1)),
            3 => a.srwi(Gpr(3), Gpr(2), 3),
            4 => a.add(Gpr(6), Gpr(1), Gpr(3)),
            _ => a.mullw(Gpr(1), Gpr(1), Gpr(2)),
        }
    }
    a.bdnz("loop");
    a.sc();
    a.finish().expect("storm program assembles")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Satellite: an external interrupt posted at (almost) every group
    /// boundary with chaining enabled. Bit-exact final state, and every
    /// logged (SRR0, SRR1) pair is precise.
    #[test]
    fn prop_interrupt_storm_under_chaining_is_precise(
        iters in 20i16..60,
        filler in proptest::collection::vec(0u8..6, 1..10),
    ) {
        use daisy_ppc::reg::msr_bits;

        let prog = storm_program(iters, &filler);
        let handler = storm_handler();

        // Oracle: same image, EE set, no interrupts ever posted. Record
        // every PC it executes — the universe of precise SRR0 values.
        let mut ref_mem = Memory::new(0x2_0000);
        prog.load_into(&mut ref_mem).unwrap();
        handler.load_into(&mut ref_mem).unwrap();
        let mut ref_cpu = Cpu::new(prog.entry);
        ref_cpu.msr |= msr_bits::EE;
        let mut executed = std::collections::HashSet::new();
        let stop = ref_cpu
            .run_traced(&mut ref_mem, 1_000_000, |pc, _| {
                executed.insert(pc);
            })
            .unwrap();
        prop_assert_eq!(stop, StopReason::Syscall);

        let mut sys =
            DaisySystem::<PpcIsa>::builder().mem_size(0x2_0000).translator(small_page_config()).build();
        sys.load(&prog).unwrap();
        handler.load_into(&mut sys.mem).unwrap();
        sys.cpu.msr |= msr_bits::EE;
        let expected_srr1 = sys.cpu.msr;

        let mut posts = 0u32;
        let stop = loop {
            if posts < STORM_POST_CAP {
                sys.post_external_interrupt();
                posts += 1;
            }
            if let Some(s) = sys.step().unwrap() {
                break s;
            }
        };
        prop_assert_eq!(stop, StopReason::Syscall);

        // The storm must actually have delivered, and chaining must
        // actually have been exercised underneath it.
        let delivered = sys.mem.read_u32(STORM_COUNT).unwrap();
        prop_assert!(delivered >= 1, "no interrupt was ever delivered");
        prop_assert!(sys.stats.chain.link_installs >= 1, "storm run never chained");

        // Precision: every logged SRR0 is a PC the oracle executed, and
        // every logged SRR1 is the exact pre-delivery MSR.
        for i in 1..=delivered {
            let srr0 = sys.mem.read_u32(STORM_COUNT + 8 * i).unwrap();
            let srr1 = sys.mem.read_u32(STORM_COUNT + 8 * i + 4).unwrap();
            prop_assert!(
                executed.contains(&srr0),
                "delivery {i}: SRR0 {srr0:#x} is not an executed instruction boundary"
            );
            prop_assert_eq!(srr1, expected_srr1, "delivery {} saved a wrong MSR", i);
        }

        // Bit-exact final state, excluding the handler's log window
        // (and SRR0/1 + SPRG, which only the stormed run touches).
        prop_assert_eq!(sys.cpu.gpr, ref_cpu.gpr, "GPR state diverged");
        prop_assert_eq!(sys.cpu.cr, ref_cpu.cr, "CR diverged");
        prop_assert_eq!(sys.cpu.ctr, ref_cpu.ctr, "CTR diverged");
        prop_assert_eq!(sys.cpu.xer, ref_cpu.xer, "XER diverged");
        prop_assert_eq!(sys.cpu.msr, ref_cpu.msr, "MSR diverged");
        prop_assert_eq!(sys.cpu.pc, ref_cpu.pc, "PC diverged");
        let log_end = STORM_COUNT + 8 * (STORM_POST_CAP + 1) + 8;
        prop_assert_eq!(
            sys.mem.read_bytes(0, STORM_COUNT).unwrap(),
            ref_mem.read_bytes(0, STORM_COUNT).unwrap(),
            "memory below the log window diverged"
        );
        prop_assert_eq!(
            sys.mem.read_bytes(log_end, ref_mem.size() - log_end).unwrap(),
            ref_mem.read_bytes(log_end, ref_mem.size() - log_end).unwrap(),
            "memory above the log window diverged"
        );
    }
}
