/root/repo/target/debug/deps/prop_equivalence-f2fc60f4a32ff3d6.d: tests/prop_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libprop_equivalence-f2fc60f4a32ff3d6.rmeta: tests/prop_equivalence.rs Cargo.toml

tests/prop_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
