/root/repo/target/debug/deps/daisy_cachesim-e4954d6905f2563f.d: crates/cachesim/src/lib.rs

/root/repo/target/debug/deps/libdaisy_cachesim-e4954d6905f2563f.rlib: crates/cachesim/src/lib.rs

/root/repo/target/debug/deps/libdaisy_cachesim-e4954d6905f2563f.rmeta: crates/cachesim/src/lib.rs

crates/cachesim/src/lib.rs:
