#!/usr/bin/env bash
# Lint gate: clippy warnings are errors and formatting is canonical
# (see rustfmt.toml). Run before sending changes; CI runs the same.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check
