//! Runtime statistics of a DAISY execution — the raw material for every
//! table and figure of the paper's Chapter 5.

/// Cross-page branch counts by type (Table 5.6: PowerPC's three kinds
/// of cross-page branch).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CrossPage {
    /// Direct branches whose target lies on another page.
    pub direct: u64,
    /// Branches via the link register.
    pub via_lr: u64,
    /// Branches via the count register.
    pub via_ctr: u64,
}

impl CrossPage {
    /// All cross-page branches.
    pub fn total(&self) -> u64 {
        self.direct + self.via_lr + self.via_ctr
    }
}

/// Direct group-to-group chaining counters: dispatches that skipped the
/// VMM by following links installed on hot exits, and the bookkeeping
/// around those links.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChainStats {
    /// Dispatches that followed a live chain link or indirect-cache
    /// entry straight to the next group, bypassing the VMM.
    pub chained_dispatches: u64,
    /// Chain links installed on direct exits.
    pub link_installs: u64,
    /// Dispatches that found a severed link (its target translation had
    /// been invalidated, cast out, or retranslated).
    pub severs: u64,
    /// Inline indirect-dispatch cache hits (LR/CTR exits).
    pub icache_hits: u64,
    /// Inline indirect-dispatch cache misses (LR/CTR exits).
    pub icache_misses: u64,
}

/// Counters accumulated while running translated code.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Tree instructions executed (one cycle each before stalls).
    pub vliws_executed: u64,
    /// Cycles lost to cache misses.
    pub stall_cycles: u64,
    /// Instructions executed by the VMM's interpreter (`sc`, `rfi`,
    /// post-`rfi` windows, alias restarts); charged one cycle each.
    pub interp_instrs: u64,
    /// Load parcels executed.
    pub loads: u64,
    /// Store parcels executed.
    pub stores: u64,
    /// Loads missing the first-level data cache.
    pub load_l0_misses: u64,
    /// Stores missing the first-level data cache.
    pub store_l0_misses: u64,
    /// Run-time load-store alias failures (Table 5.7).
    pub alias_failures: u64,
    /// Cross-page branches executed, by type (Table 5.6).
    pub crosspage: CrossPage,
    /// Dispatches that stayed on the same page.
    pub onpage_dispatches: u64,
    /// Dispatches that went through the VMM (translation lookup or
    /// creation). With chaining enabled this counts only VMM entries;
    /// add [`ChainStats::chained_dispatches`] for total group entries.
    pub groups_entered: u64,
    /// Direct-chaining counters.
    pub chain: ChainStats,
    /// Precise exceptions delivered.
    pub exceptions: u64,
    /// Code-modification (self-modifying code) invalidations taken.
    pub code_modifications: u64,
    /// MMIO device accesses serviced (each one a bail from translated
    /// code to the interpreter, counted at the `step()` boundary so
    /// every engine tier reports the same value).
    pub mmio_ops: u64,
    /// External interrupts delivered to the guest.
    pub interrupts_taken: u64,
    /// See [`RunStats::approx_base_instrs`].
    pub(crate) base_instrs: u64,
    /// Histogram of parcels executed per tree instruction (taken path;
    /// index 24 buckets everything ≥ 24) — the paper's "ALU usage
    /// histograms and other statistical data … obtained at the end of
    /// the run".
    pub issue_histogram: [u64; 25],
}

impl RunStats {
    /// Total simulated cycles: one per VLIW, plus stalls, plus one per
    /// interpreted instruction.
    pub fn cycles(&self) -> u64 {
        self.vliws_executed + self.stall_cycles + self.interp_instrs
    }

    /// Base instructions completed, *approximately*: counted at
    /// architected-commit boundaries and branch resolutions, so
    /// event-less instructions (unconditional `b`, which neither
    /// commits a register nor resolves a condition) are missed — the
    /// canonical `nop` (`ori r0, r0, 0`) *does* count, since it
    /// commits r0.
    /// Re-execution paths are deduplicated — a dispatch retried down
    /// the degradation ladder rolls its partial count back, and the
    /// idempotent re-interpretation after a code-modification exit does
    /// not count the modifying store twice (`tests/stats_pin.rs` pins
    /// both against the reference interpreter). For fully interpreted
    /// runs the count is exact; for translated runs use the reference
    /// interpreter's count for ILP figures — this value is for coarse
    /// progress monitoring.
    pub fn approx_base_instrs(&self) -> u64 {
        self.base_instrs
    }

    /// All group dispatches: through the VMM plus chained.
    pub fn total_dispatches(&self) -> u64 {
        self.groups_entered + self.chain.chained_dispatches
    }

    /// Infinite-cache ILP ("pathlength reduction"): base instructions
    /// per VLIW, ignoring stalls.
    pub fn pathlength_reduction(&self, base_instrs: u64) -> f64 {
        if self.vliws_executed + self.interp_instrs == 0 {
            0.0
        } else {
            base_instrs as f64 / (self.vliws_executed + self.interp_instrs) as f64
        }
    }

    /// Finite-cache ILP: base instructions per cycle including stalls.
    pub fn finite_ilp(&self, base_instrs: u64) -> f64 {
        if self.cycles() == 0 {
            0.0
        } else {
            base_instrs as f64 / self.cycles() as f64
        }
    }

    /// Loads per VLIW (Table 5.4).
    pub fn loads_per_vliw(&self) -> f64 {
        if self.vliws_executed == 0 {
            0.0
        } else {
            self.loads as f64 / self.vliws_executed as f64
        }
    }

    /// Stores per VLIW (Table 5.4).
    pub fn stores_per_vliw(&self) -> f64 {
        if self.vliws_executed == 0 {
            0.0
        } else {
            self.stores as f64 / self.vliws_executed as f64
        }
    }

    /// Mean VLIWs between events of the given count (Tables 5.4, 5.6,
    /// 5.7).
    ///
    /// # Contract
    ///
    /// Returns `None` — not `0.0`, not infinity — when `events` is
    /// zero: a mean interval between events that never occurred is
    /// undefined. Callers rendering tables must print a placeholder
    /// for `None` (the `repro` tables print `-`) rather than coercing
    /// to a number; coercing to `0.0` would read as "an event every
    /// zero VLIWs", the exact opposite of "never".
    ///
    /// ```
    /// use daisy::stats::RunStats;
    ///
    /// let mut s = RunStats::default();
    /// s.vliws_executed = 100;
    /// assert_eq!(s.vliws_between(4), Some(25.0));
    /// assert_eq!(s.vliws_between(0), None); // never occurred: undefined
    /// ```
    pub fn vliws_between(&self, events: u64) -> Option<f64> {
        (events > 0).then(|| self.vliws_executed as f64 / events as f64)
    }

    /// Mean parcels executed per tree instruction (issue-slot
    /// utilization on the taken path).
    pub fn mean_parcels_per_vliw(&self) -> f64 {
        let (mut n, mut sum) = (0u64, 0u64);
        for (i, c) in self.issue_histogram.iter().enumerate() {
            n += c;
            sum += c * i as u64;
        }
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_ratios() {
        let s = RunStats {
            vliws_executed: 100,
            stall_cycles: 50,
            interp_instrs: 10,
            loads: 150,
            stores: 25,
            alias_failures: 4,
            ..RunStats::default()
        };
        assert_eq!(s.cycles(), 160);
        assert!((s.pathlength_reduction(440) - 4.0).abs() < 1e-12);
        assert!((s.finite_ilp(320) - 2.0).abs() < 1e-12);
        assert!((s.loads_per_vliw() - 1.5).abs() < 1e-12);
        assert_eq!(s.vliws_between(4), Some(25.0));
        assert_eq!(s.vliws_between(0), None);
    }
}
