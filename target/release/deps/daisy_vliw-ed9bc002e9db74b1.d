/root/repo/target/release/deps/daisy_vliw-ed9bc002e9db74b1.d: crates/vliw/src/lib.rs crates/vliw/src/machine.rs crates/vliw/src/op.rs crates/vliw/src/reg.rs crates/vliw/src/regfile.rs crates/vliw/src/tree.rs

/root/repo/target/release/deps/daisy_vliw-ed9bc002e9db74b1: crates/vliw/src/lib.rs crates/vliw/src/machine.rs crates/vliw/src/op.rs crates/vliw/src/reg.rs crates/vliw/src/regfile.rs crates/vliw/src/tree.rs

crates/vliw/src/lib.rs:
crates/vliw/src/machine.rs:
crates/vliw/src/op.rs:
crates/vliw/src/reg.rs:
crates/vliw/src/regfile.rs:
crates/vliw/src/tree.rs:
