/root/repo/target/debug/examples/pagesize_sweep-1e7de75d2520e574.d: examples/pagesize_sweep.rs

/root/repo/target/debug/examples/pagesize_sweep-1e7de75d2520e574: examples/pagesize_sweep.rs

examples/pagesize_sweep.rs:
