//! Shape assertions for the paper's headline results.
//!
//! Absolute numbers cannot match a 1996 RS/6000 testbed, but the
//! *relationships* each exhibit demonstrates must hold: who wins, by
//! roughly what factor, and where the trends bend. These tests pin
//! those relationships on a fast subset of the suite so regressions in
//! the translator show up as broken science, not just broken code.

use daisy::sched::TranslatorConfig;
use daisy::system::DaisySystem;
use daisy_baseline::{ppc604e, trad};
use daisy_cachesim::Hierarchy;
use daisy_ppc::interp::Cpu;
use daisy_ppc::mem::Memory;
use daisy_ppc::PpcIsa;
use daisy_vliw::machine::MachineConfig;
use daisy_workloads::Workload;

/// The fast subset used for sweeps (each under ~1M dynamic instrs).
fn fast_suite() -> Vec<Workload> {
    ["fgrep", "wc", "cmp", "c_sieve", "hist"]
        .iter()
        .map(|n| daisy_workloads::by_name(n).expect("known"))
        .collect()
}

fn base_instrs(w: &Workload) -> u64 {
    let prog = w.program();
    let mut mem = Memory::new(w.mem_size);
    prog.load_into(&mut mem).unwrap();
    let mut cpu = Cpu::new(prog.entry);
    cpu.run(&mut mem, w.max_instrs).unwrap();
    cpu.ninstrs
}

fn ilp_with(w: &Workload, cfg: TranslatorConfig, cache: Hierarchy) -> (f64, DaisySystem<PpcIsa>) {
    let base = base_instrs(w);
    let prog = w.program();
    let mut sys =
        DaisySystem::<PpcIsa>::builder().mem_size(w.mem_size).translator(cfg).cache(cache).build();
    sys.load(&prog).unwrap();
    sys.run(50 * w.max_instrs).unwrap();
    w.check(&sys.cpu, &sys.mem).unwrap();
    let ilp = if sys.cache.is_infinite() {
        sys.stats.pathlength_reduction(base)
    } else {
        sys.stats.finite_ilp(base)
    };
    (ilp, sys)
}

#[test]
fn table_5_1_shape_mean_ilp_and_ranking() {
    // Paper: mean 4.2 across the suite, all benchmarks well above 1.
    let mut ilps = Vec::new();
    for w in fast_suite() {
        let (ilp, _) = ilp_with(&w, TranslatorConfig::default(), Hierarchy::infinite());
        assert!(ilp > 1.5, "{}: ILP {ilp:.2} too low", w.name);
        ilps.push(ilp);
    }
    let mean = ilps.iter().sum::<f64>() / ilps.len() as f64;
    assert!((2.5..7.0).contains(&mean), "suite mean ILP {mean:.2} out of band");
}

#[test]
fn figure_5_1_shape_ilp_grows_with_machine_size() {
    // Paper: ~2 on the 4-issue machine, diverging upward to the 24-issue
    // machine; bigger machines never hurt.
    let cfgs = MachineConfig::paper_configs();
    let picks = [0usize, 4, 9]; // 4-2-2-1, 8-8-4-3, 24-16-8-7
    for w in fast_suite() {
        let mut prev = 0.0;
        let mut vals = Vec::new();
        for &i in &picks {
            let cfg = TranslatorConfig { machine: cfgs[i].clone(), ..TranslatorConfig::default() };
            let (ilp, _) = ilp_with(&w, cfg, Hierarchy::infinite());
            assert!(
                ilp + 0.05 >= prev,
                "{}: ILP fell from {prev:.2} to {ilp:.2} on a bigger machine",
                w.name
            );
            prev = ilp;
            vals.push(ilp);
        }
        assert!(
            (1.2..3.5).contains(&vals[0]),
            "{}: smallest machine ILP {:.2} out of the paper's ~2 band",
            w.name,
            vals[0]
        );
        assert!(vals[2] > vals[0], "{}: no divergence with machine size", w.name);
    }
}

#[test]
fn table_5_2_shape_traditional_wins_but_not_by_much() {
    // Paper: DAISY within ~25% of the traditional compiler (mean 4.4 vs
    // 5.8), at far lower compile cost.
    let mut daisy_sum = 0.0;
    let mut trad_sum = 0.0;
    for w in fast_suite() {
        let (d, sys) = ilp_with(&w, TranslatorConfig::default(), Hierarchy::infinite());
        let prog = w.program();
        let t = trad::run_traditional(&prog, w.mem_size, MachineConfig::big(), w.max_instrs);
        daisy_sum += d;
        trad_sum += t.ilp();
        assert!(
            t.instrs_compiled >= sys.vmm.cost.instrs_scheduled,
            "{}: traditional compiled fewer instructions than DAISY",
            w.name
        );
    }
    assert!(trad_sum >= daisy_sum, "traditional should win in aggregate");
    assert!(
        daisy_sum >= 0.55 * trad_sum,
        "DAISY {daisy_sum:.1} fell more than ~45% behind traditional {trad_sum:.1}"
    );
}

#[test]
fn table_5_3_shape_finite_caches_cost_little_here_and_604e_loses_big() {
    // Paper: finite caches cost ~20% on average; DAISY's finite-cache
    // ILP beats the 604E by several-fold (paper: 3.3 vs 0.7).
    let mut fin_sum = 0.0;
    let mut p604_sum = 0.0;
    let mut n = 0.0;
    for w in fast_suite() {
        let (inf, _) = ilp_with(&w, TranslatorConfig::default(), Hierarchy::infinite());
        let (fin, _) = ilp_with(&w, TranslatorConfig::default(), Hierarchy::paper_default());
        assert!(fin <= inf + 1e-9, "{}: finite cannot beat infinite", w.name);
        assert!(fin >= 0.5 * inf, "{}: cache penalty implausibly large", w.name);
        let prog = w.program();
        let p = ppc604e::run(
            &prog,
            w.mem_size,
            &ppc604e::P604Config::default(),
            Hierarchy::paper_default(),
            w.max_instrs,
        );
        fin_sum += fin;
        p604_sum += p.ipc();
        n += 1.0;
    }
    let (fin_mean, p604_mean) = (fin_sum / n, p604_sum / n);
    assert!(
        fin_mean > 2.0 * p604_mean,
        "DAISY finite mean {fin_mean:.2} should be a multiple of the 604E's {p604_mean:.2}"
    );
    assert!(p604_mean < 2.0, "604E IPC {p604_mean:.2} exceeds its issue width plausibility");
}

#[test]
fn table_5_5_shape_smaller_machine_uses_resources_more_efficiently() {
    // Paper: 24-issue reaches 4.2, 8-issue reaches 3.0 — lower ILP but
    // much higher ILP-per-issue-slot.
    let mut big_sum = 0.0;
    let mut eight_sum = 0.0;
    for w in fast_suite() {
        let (b, _) = ilp_with(&w, TranslatorConfig::default(), Hierarchy::infinite());
        let cfg = TranslatorConfig {
            machine: MachineConfig::eight_issue(),
            ..TranslatorConfig::default()
        };
        let (e, _) = ilp_with(&w, cfg, Hierarchy::infinite());
        big_sum += b;
        eight_sum += e;
    }
    assert!(eight_sum <= big_sum, "8-issue cannot beat 24-issue in aggregate");
    assert!(
        eight_sum / 8.0 > big_sum / 24.0,
        "8-issue should be more efficient per slot ({:.3} vs {:.3})",
        eight_sum / 8.0,
        big_sum / 24.0
    );
}

#[test]
fn table_5_6_shape_interpreter_like_code_is_crosspage_heavy() {
    // Paper: gcc takes a cross-page jump every ~10 VLIWs, tiny utilities
    // almost never. xlat (the gcc stand-in) must dominate; compress's
    // cross-page output routine must register.
    let xlat = daisy_workloads::by_name("xlat").unwrap();
    let (_, sys) = ilp_with(&xlat, TranslatorConfig::default(), Hierarchy::infinite());
    let x_total = sys.stats.crosspage.total();
    let per = sys.stats.vliws_executed as f64 / x_total as f64;
    assert!(x_total > 10_000, "xlat cross-page count {x_total} too small");
    assert!((2.0..40.0).contains(&per), "xlat VLIWs/cross-page {per:.1} out of band");
    assert!(sys.stats.crosspage.via_ctr > 0, "xlat must branch via CTR");

    let w = daisy_workloads::by_name("wc").unwrap();
    let (_, sys) = ilp_with(&w, TranslatorConfig::default(), Hierarchy::infinite());
    assert_eq!(sys.stats.crosspage.total(), 0, "wc fits one page");
}

#[test]
fn table_5_7_shape_runtime_aliasing_is_rare_but_real() {
    // Paper: aliasing-heavy benchmarks fail load-verify once every
    // 65–500 VLIWs; clean array codes almost never.
    let hist = daisy_workloads::by_name("hist").unwrap();
    let (_, sys) = ilp_with(&hist, TranslatorConfig::default(), Hierarchy::infinite());
    let per = sys.stats.vliws_between(sys.stats.alias_failures);
    let per = per.expect("hist must hit runtime aliases");
    assert!((30.0..5_000.0).contains(&per), "hist VLIWs/alias {per:.0} out of band");

    let sieve = daisy_workloads::by_name("c_sieve").unwrap();
    let (_, sys) = ilp_with(&sieve, TranslatorConfig::default(), Hierarchy::infinite());
    assert_eq!(sys.stats.alias_failures, 0, "sieve is alias-free");
}

#[test]
fn figures_5_3_to_5_5_shape_page_size_tradeoffs() {
    // Paper Fig 5.3: splitting a critical loop across tiny pages
    // destroys ILP (their c_sieve at 256→1024; our sort at 128→256).
    let sort = daisy_workloads::by_name("sort").unwrap();
    let tiny = TranslatorConfig { page_size: 128, ..TranslatorConfig::default() };
    let (ilp_tiny, sys_tiny) = ilp_with(&sort, tiny, Hierarchy::infinite());
    let (ilp_4k, _) = ilp_with(&sort, TranslatorConfig::default(), Hierarchy::infinite());
    assert!(
        ilp_4k > ilp_tiny * 1.2,
        "sort: 4K pages ({ilp_4k:.2}) should clearly beat 128-byte pages ({ilp_tiny:.2})"
    );
    // Fig 5.5: cross-page jumps collapse as pages grow.
    let (_, sys_4k) = ilp_with(&sort, TranslatorConfig::default(), Hierarchy::infinite());
    assert!(
        sys_tiny.stats.crosspage.total() > 100 * (sys_4k.stats.crosspage.total() + 1),
        "tiny pages must multiply cross-page jumps ({} vs {})",
        sys_tiny.stats.crosspage.total(),
        sys_4k.stats.crosspage.total()
    );
    // Fig 5.4: code size never shrinks with page size on this workload.
    let (_, sys128) = (ilp_tiny, sys_tiny);
    let _ = sys128;
}

#[test]
fn chapter_6_shape_interpretive_compilation_helps() {
    // Paper Ch. 6: interpretation-driven path selection beats static
    // heuristics; wc/fgrep-style scan loops gain the most here.
    let mut static_sum = 0.0;
    let mut interp_sum = 0.0;
    for w in fast_suite() {
        let (s, _) = ilp_with(&w, TranslatorConfig::default(), Hierarchy::infinite());
        let cfg = TranslatorConfig { interpretive: true, ..TranslatorConfig::default() };
        let (i, _) = ilp_with(&w, cfg, Hierarchy::infinite());
        static_sum += s;
        interp_sum += i;
    }
    assert!(
        interp_sum > static_sum,
        "interpretive ({interp_sum:.1}) should beat static ({static_sum:.1}) in aggregate"
    );
    // The scan-loop poster child individually.
    let wc = daisy_workloads::by_name("wc").unwrap();
    let (s, _) = ilp_with(&wc, TranslatorConfig::default(), Hierarchy::infinite());
    let cfg = TranslatorConfig { interpretive: true, ..TranslatorConfig::default() };
    let (i, _) = ilp_with(&wc, cfg, Hierarchy::infinite());
    assert!(i > 1.2 * s, "wc: interpretive {i:.2} should clearly beat static {s:.2}");
}

#[test]
fn chapter_6_shape_oracle_dominates_daisy() {
    for w in fast_suite() {
        let (d, _) = ilp_with(&w, TranslatorConfig::default(), Hierarchy::infinite());
        let prog = w.program();
        let mut mem = Memory::new(w.mem_size);
        prog.load_into(&mut mem).unwrap();
        let (inf, _) =
            daisy::oracle::run_oracle_to_stop::<PpcIsa>(&mut mem, prog.entry, None, w.max_instrs);
        let mut mem = Memory::new(w.mem_size);
        prog.load_into(&mut mem).unwrap();
        let (capped, _) = daisy::oracle::run_oracle_to_stop::<PpcIsa>(
            &mut mem,
            prog.entry,
            Some(MachineConfig::big()),
            w.max_instrs,
        );
        assert!(
            inf.ilp() + 1e-9 >= capped.ilp(),
            "{}: capping resources cannot raise oracle ILP",
            w.name
        );
        assert!(
            inf.ilp() > 0.9 * d,
            "{}: oracle {:.2} implausibly below DAISY {d:.2}",
            w.name,
            inf.ilp()
        );
    }
}
