//! The guest-agnostic frontend boundary of the DAISY reproduction.
//!
//! DAISY's design (paper §2) deliberately separates the *base
//! architecture* — the guest ISA being emulated — from the VMM,
//! scheduler, and VLIW execution machinery. This crate is that
//! separation made explicit: everything the translation core needs to
//! know about a guest is captured by the [`Isa`] trait (static
//! properties: decode, conversion to RISC primitives, control-flow
//! analysis) and the [`GuestCpu`] trait (dynamic properties: the
//! architected register state, the reference interpreter, exception
//! delivery).
//!
//! The crate also owns the machinery that is *shared* by every guest:
//!
//! * [`mem::Memory`] — emulated physical memory with the paper's §3.2
//!   read-only (translated) page bits, and [`mem::Mmu`], the guest's own
//!   page table.
//! * [`Program`] — an assembled guest program image (code words, data
//!   blobs, labels). Guest assemblers produce these; the loader and the
//!   workload harnesses consume them without caring which ISA the words
//!   encode.
//! * [`Event`] / [`StopReason`] / [`Exception`] — the interpreter-step
//!   outcome, run-stop, and architected-interrupt vocabularies.
//! * [`convert`] — the ISA-neutral output types of instruction
//!   conversion ([`convert::Converted`], [`convert::Flow`],
//!   [`convert::CondSpec`]) plus static branch descriptions
//!   ([`convert::BranchInfo`]).
//! * [`DecodeCache`] — a per-ISA-salted memo table for decoded
//!   instructions.
//! * [`Workload`] — a benchmark program plus its result checker,
//!   generic over the guest that the program was assembled for.
//!
//! # Adding a frontend
//!
//! A frontend crate implements [`Isa`] for a zero-sized marker type and
//! [`GuestCpu`] for its architected-state struct; see `docs/isa.md` in
//! the repository for the walkthrough. `daisy-ppc` (PowerPC) and
//! `daisy-rv32` (RV32I) are the two in-tree implementations.

#![warn(missing_docs)]

pub mod convert;
mod decode;
mod event;
pub mod mem;
mod program;
pub mod synth;
mod workload;

pub use decode::DecodeCache;
pub use event::{Event, Exception, StopReason};
pub use program::Program;
pub use workload::Workload;

use daisy_vliw::regfile::RegFile;

/// Base-architecture page size. The VMM translates code in page-sized
/// units and the §3.2 translated bits are tracked per page.
pub const PAGE_SIZE: u32 = 4096;

/// Identifies a guest ISA. Translation caches key on this in addition
/// to the guest address, so two frontends sharing one VMM can never
/// alias each other's translations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IsaId(pub u16);

impl IsaId {
    /// The PowerPC (subset) frontend, `daisy-ppc`.
    pub const PPC: IsaId = IsaId(1);
    /// The RV32I (subset) frontend, `daisy-rv32`.
    pub const RV32: IsaId = IsaId(2);
}

/// Static description of a guest ISA: everything the translator needs
/// that does not involve architected state.
///
/// Implementations are zero-sized marker types; all methods are
/// associated functions. The dynamic half of the boundary — register
/// state, the reference interpreter, exception delivery — lives on the
/// associated [`Isa::Cpu`] type through the [`GuestCpu`] trait.
///
/// # Example
///
/// A toy single-instruction guest, showing the shape of an
/// implementation (the in-tree frontends are `daisy_ppc::PpcIsa` and
/// `daisy_rv32::Rv32Isa`):
///
/// ```
/// use daisy_isa::convert::{BranchInfo, Converted, Flow};
/// use daisy_isa::{Isa, IsaId};
///
/// #[derive(Debug, Clone, Copy)]
/// enum ToyInsn {
///     Halt,
/// }
///
/// struct ToyIsa;
///
/// impl Isa for ToyIsa {
///     type Insn = ToyInsn;
///     type Cpu = ToyCpu; // a GuestCpu implementation, elided here
///     type DecodeError = u32;
///
///     const ID: IsaId = IsaId(0xFFFF);
///     const NAME: &'static str = "toy";
///
///     fn decode(word: u32) -> Result<ToyInsn, u32> {
///         if word == 0 {
///             Ok(ToyInsn::Halt)
///         } else {
///             Err(word) // scheduler stops the path and falls back to interpretation
///         }
///     }
///
///     fn convert(_insn: &ToyInsn, _addr: u32) -> Converted {
///         Converted { ops: Vec::new(), flow: Flow::Interp, links: false }
///     }
///
///     fn branch_info(_insn: &ToyInsn, _pc: u32) -> Option<BranchInfo> {
///         None
///     }
///
///     fn ends_interp_window(_insn: &ToyInsn) -> bool {
///         false
///     }
///
///     fn disasm(word: u32) -> String {
///         if word == 0 { "halt".into() } else { format!(".word {word:#x}") }
///     }
///
///     fn illegal_words() -> &'static [u32] {
///         &[0xFFFF_FFFF]
///     }
///
///     fn interrupt_return_word() -> u32 {
///         0
///     }
///
///     fn external_vector() -> u32 {
///         0x100
///     }
/// }
///
/// assert!(ToyIsa::decode(0).is_ok());
/// assert_eq!(ToyIsa::convert(&ToyInsn::Halt, 0x1000).flow, Flow::Interp);
/// # use daisy_isa::{Event, Exception, GuestCpu, StopReason, DecodeCache};
/// # use daisy_isa::mem::Memory;
/// # use daisy_vliw::regfile::RegFile;
/// # #[derive(Debug, Clone)]
/// # struct ToyCpu;
/// # impl GuestCpu for ToyCpu {
/// #     type Insn = ToyInsn;
/// #     fn new(_entry: u32) -> Self { ToyCpu }
/// #     fn pc(&self) -> u32 { 0 }
/// #     fn set_pc(&mut self, _pc: u32) {}
/// #     fn instret(&self) -> u64 { 0 }
/// #     fn vectored(&self) -> bool { false }
/// #     fn set_vectored(&mut self, _v: bool) {}
/// #     fn fetch(&self, _mem: &Memory) -> Result<ToyInsn, Event> { Ok(ToyInsn::Halt) }
/// #     fn fetch_cached(&self, mem: &Memory, _c: &mut DecodeCache<ToyInsn>) -> Result<ToyInsn, Event> { self.fetch(mem) }
/// #     fn execute(&mut self, _mem: &mut Memory, _insn: ToyInsn) -> Event { Event::Syscall }
/// #     fn handle_event(&mut self, _ev: Event) -> Option<StopReason> { Some(StopReason::Syscall) }
/// #     fn interp_run(&mut self, _mem: &mut Memory, _max: u64) -> StopReason { StopReason::Syscall }
/// #     fn deliver(&mut self, _e: Exception, _at: u32) {}
/// #     fn record_data_fault(&mut self, _addr: u32, _write: bool) {}
/// #     fn interrupts_enabled(&self) -> bool { false }
/// #     fn enable_interrupts(&mut self) {}
/// #     fn effective_address(&self, _insn: &ToyInsn) -> Option<u32> { None }
/// #     fn fill_regfile(&self, _rf: &mut RegFile) {}
/// #     fn write_back(&mut self, _rf: &RegFile) {}
/// #     fn state_diff(&self, _other: &Self, _skip_resume: bool) -> Option<String> { None }
/// # }
/// ```
pub trait Isa {
    /// A decoded guest instruction.
    type Insn: Copy + std::fmt::Debug + 'static;
    /// The guest's full architected processor state.
    type Cpu: GuestCpu<Insn = Self::Insn> + Clone + std::fmt::Debug;
    /// Why a word failed to decode. Frontends whose decoder is total
    /// (e.g. PowerPC's, which maps unknown words to an `Invalid`
    /// variant routed to the interpreter) use
    /// [`std::convert::Infallible`].
    type DecodeError: std::fmt::Debug;

    /// Unique ISA identifier, mixed into every translation-cache key.
    const ID: IsaId;
    /// Human-readable name for reports and traces.
    const NAME: &'static str;
    /// Guest page size. All in-tree guests use the shared 4 KiB
    /// [`PAGE_SIZE`]; the VMM's translated-bit granularity follows it.
    const PAGE_SIZE: u32 = PAGE_SIZE;

    /// Decodes a 32-bit instruction word.
    ///
    /// An `Err` tells the scheduler the word is not translatable; the
    /// path is closed with an interpreter exit (the word may still be
    /// data-in-code that execution never reaches).
    fn decode(word: u32) -> Result<Self::Insn, Self::DecodeError>;

    /// Converts the instruction at `addr` into VLIW RISC primitives
    /// plus its control behaviour (paper §2: "converted into RISC
    /// primitives (if a CISCy operation)").
    fn convert(insn: &Self::Insn, addr: u32) -> convert::Converted;

    /// Static control-flow description if `insn` is a branch, with
    /// direct targets resolved against the branch's own address `pc`.
    fn branch_info(insn: &Self::Insn, pc: u32) -> Option<convert::BranchInfo>;

    /// True for the instruction that ends an interpretive window — the
    /// guest's return-from-interrupt (paper §3.4 interprets a few
    /// instructions after it rather than creating new entry points).
    fn ends_interp_window(insn: &Self::Insn) -> bool;

    /// One-line disassembly of a raw word, for profiles and reports.
    fn disasm(word: u32) -> String;

    /// Words guaranteed not to decode to a valid instruction, used by
    /// the fault-injection harness to corrupt code.
    fn illegal_words() -> &'static [u32];

    /// An encoded return-from-interrupt instruction, used by harnesses
    /// that synthesize guest interrupt handlers.
    fn interrupt_return_word() -> u32;

    /// The architected vector of the external (timer) interrupt.
    fn external_vector() -> u32;
}

/// The dynamic half of the frontend boundary: a guest's architected
/// processor state, its reference interpreter, and its exception
/// delivery rules.
///
/// The translation core holds exactly one of these per emulated guest
/// and speaks to it only through this trait — reading and writing the
/// unified VLIW register file around each group dispatch, stepping the
/// reference interpreter for untranslatable instructions, and
/// delivering architected interrupts.
pub trait GuestCpu: Clone + std::fmt::Debug {
    /// The decoded-instruction type (equals the owning [`Isa::Insn`]).
    type Insn: Copy;

    /// Creates a CPU at `entry` in the guest's reset state.
    fn new(entry: u32) -> Self;

    /// Current program counter.
    fn pc(&self) -> u32;

    /// Redirects the program counter.
    fn set_pc(&mut self, pc: u32);

    /// Dynamic count of retired guest instructions.
    fn instret(&self) -> u64;

    /// True when interrupts deliver to architected vectors instead of
    /// stopping the run (OS-present emulation).
    fn vectored(&self) -> bool;

    /// Switches between vectored delivery and stop-on-exception.
    fn set_vectored(&mut self, v: bool);

    /// Fetches and decodes the instruction at the current PC without
    /// executing it.
    ///
    /// # Errors
    ///
    /// The fetch-side [`Event`] (instruction storage fault) on failure.
    fn fetch(&self, mem: &mem::Memory) -> Result<Self::Insn, Event>;

    /// Like [`GuestCpu::fetch`], memoizing decodes through `cache`.
    /// The raw word is still read every time so self-modifying code is
    /// observed.
    ///
    /// # Errors
    ///
    /// The fetch-side [`Event`] on failure.
    fn fetch_cached(
        &self,
        mem: &mem::Memory,
        cache: &mut DecodeCache<Self::Insn>,
    ) -> Result<Self::Insn, Event>;

    /// Executes one already-decoded instruction at the current PC. On
    /// [`Event::Continue`] the PC has advanced; on faults the PC still
    /// addresses the faulting instruction and no architected state has
    /// changed.
    fn execute(&mut self, mem: &mut mem::Memory, insn: Self::Insn) -> Event;

    /// Resolves an interpreter event: delivers it to an architected
    /// vector (when [`GuestCpu::vectored`]) or turns it into a stop.
    fn handle_event(&mut self, ev: Event) -> Option<StopReason>;

    /// Runs the reference interpreter until a stop condition or `max`
    /// further instructions.
    fn interp_run(&mut self, mem: &mut mem::Memory, max: u64) -> StopReason;

    /// Delivers an architected exception, with `at` as the resume (or
    /// faulting-instruction) address the guest's save/restore state
    /// records. For [`Exception::Data`] the implementation also records
    /// the faulting data address in the guest's fault registers.
    fn deliver(&mut self, e: Exception, at: u32);

    /// Records a data-fault address/direction in the guest's fault
    /// registers *without* redirecting control — used when a run stops
    /// on an unhandled storage fault so harnesses can inspect it.
    fn record_data_fault(&mut self, addr: u32, write: bool);

    /// True when external interrupts are enabled in the guest's
    /// machine state.
    fn interrupts_enabled(&self) -> bool;

    /// Enables external interrupts (harness/bring-up helper).
    fn enable_interrupts(&mut self);

    /// The effective data address `insn` would access in the current
    /// state, if it is a load or store (oracle-scheduler support).
    fn effective_address(&self, insn: &Self::Insn) -> Option<u32>;

    /// Loads architected state into the unified VLIW register file
    /// (rename registers are zeroed — they carry no base state).
    fn fill_regfile(&self, rf: &mut RegFile);

    /// Stores the architected portion of the register file back. The
    /// PC and machine state are managed by the VMM, not the file.
    fn write_back(&mut self, rf: &RegFile);

    /// Human-readable first difference between two architected states,
    /// or `None` when equivalent. With `skip_resume` set, resume-point
    /// bookkeeping (save/restore registers) is ignored — used when
    /// comparing against an interpreter that took a different but
    /// equivalent interrupt path.
    fn state_diff(&self, other: &Self, skip_resume: bool) -> Option<String>;
}
