/root/repo/target/release/deps/repro-86746c0ea3bfe168.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-86746c0ea3bfe168: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
