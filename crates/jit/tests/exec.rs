//! End-to-end tests: build tiny tree groups with the `daisy-vliw`
//! API, lower them to packed form, compile to native code, execute,
//! and check architected state, the counter mirrors, the path log,
//! and the exit record — the same observables the core crate's
//! native≡packed property tests compare at scale.
#![cfg(all(target_arch = "x86_64", target_os = "linux"))]

use daisy_jit::ctx::{JitCtx, EXIT_BAIL, EXIT_BRANCH};
use daisy_jit::{CompileOpts, CompiledGroup, Jit, LOG_CAPACITY};
use daisy_vliw::op::{MemWidth, OpKind, Operation};
use daisy_vliw::tree::{Cond, Exit, ROOT};
use daisy_vliw::{Group, PackedGroup, Reg};
use std::rc::Rc;

const MEM_LEN: usize = 1 << 16;
const PAGE: u32 = 4096;

/// Everything a native run needs, owned in one place so pointers stay
/// valid for the duration of `run`.
struct Harness {
    vals: Vec<u32>,
    mem: Vec<u8>,
    translated: Vec<u8>,
    log: Vec<u8>,
    ctx: JitCtx,
}

impl Harness {
    fn new() -> Harness {
        Harness {
            vals: vec![0u32; 80],
            mem: vec![0u8; MEM_LEN],
            translated: vec![0u8; MEM_LEN >> 12],
            log: vec![0u8; LOG_CAPACITY],
            ctx: JitCtx::new(),
        }
    }

    fn run(&mut self, jit: &Jit, group: &CompiledGroup, budget: u64) {
        self.ctx.reset_counters();
        self.ctx.vals = self.vals.as_mut_ptr();
        self.ctx.mem_base = self.mem.as_mut_ptr();
        self.ctx.translated_base = self.translated.as_ptr();
        self.ctx.log_base = self.log.as_mut_ptr();
        self.ctx.budget_vliws = budget;
        unsafe { jit.run(&mut self.ctx, group) };
    }

    fn log_len(&self) -> usize {
        self.ctx.log_end as usize - self.log.as_ptr() as usize
    }
}

fn compile(jit: &Jit, g: &Group, entry: u32) -> Rc<CompiledGroup> {
    let p = PackedGroup::lower(g);
    jit.compile(&p, entry, PAGE, MEM_LEN as u32, 12, CompileOpts::default())
        .expect("group lowers to native")
}

#[test]
fn straight_line_alu_state_counters_and_exit_record() {
    let jit = Jit::new(1 << 20).expect("host supports the native tier");
    let mut g = Group::new(0x1000);
    let v0 = &mut g.vliws[0];
    v0.add_op(ROOT, Operation::new(OpKind::Li, 0x1000).dst(Reg(5)).with_imm(-7));
    v0.add_op(ROOT, Operation::new(OpKind::Add, 0x1004).dst(Reg(3)).src(Reg(1)).src(Reg(2)));
    v0.add_op(ROOT, Operation::new(OpKind::AddImm, 0x1008).dst(Reg(4)).src(Reg(1)).with_imm(100));
    v0.seal(ROOT, Exit::Branch { target: 0x2000 });
    let cg = compile(&jit, &g, 0x1000);

    let mut h = Harness::new();
    h.vals[1] = 7;
    h.vals[2] = 9;
    h.run(&jit, &cg, u64::MAX);

    assert_eq!(h.vals[5], (-7i32) as u32);
    assert_eq!(h.vals[3], 16);
    assert_eq!(h.vals[4], 107);
    assert_eq!(h.ctx.exit_kind, EXIT_BRANCH);
    assert_eq!(h.ctx.exit_a, 0x2000);
    assert_eq!(h.ctx.exit_b, 0); // only exit target → slot 0
    assert_eq!(h.ctx.cur_group, cg.group_id);
    assert_eq!(h.ctx.vliws, 1);
    assert_eq!(h.ctx.base_instrs, 3);
    assert_eq!(h.ctx.histogram[3], 1);
    assert_eq!(h.log_len(), 0);
}

#[test]
fn conditional_logs_direction_and_picks_exit() {
    let jit = Jit::new(1 << 20).expect("host supports the native tier");
    let mut g = Group::new(0x1000);
    let v0 = &mut g.vliws[0];
    let cond =
        Cond { src: Reg(64), mask: 0b0010, want_set: true, spec_target: None, origin: 0x1000 };
    let (t, f) = v0.split(ROOT, cond);
    v0.seal(t, Exit::Branch { target: 0x2000 });
    v0.seal(f, Exit::Branch { target: 0x3000 });
    let cg = compile(&jit, &g, 0x1000);

    let mut h = Harness::new();
    h.vals[64] = 0b0010;
    h.run(&jit, &cg, u64::MAX);
    assert_eq!(h.ctx.exit_a, 0x2000);
    assert_eq!(h.log_len(), 1);
    assert_eq!(h.log[0], 1); // taken

    h.vals[64] = 0;
    h.run(&jit, &cg, u64::MAX);
    assert_eq!(h.ctx.exit_a, 0x3000);
    assert_eq!(h.log_len(), 1);
    assert_eq!(h.log[0], 0); // fall-through
}

#[test]
fn store_then_load_roundtrips_big_endian() {
    let jit = Jit::new(1 << 20).expect("host supports the native tier");
    let mut g = Group::new(0x1000);
    let v0 = &mut g.vliws[0];
    // mem[r2+4] <- r1 (word), then r3 <- mem[r2+4] (word)
    v0.add_op(
        ROOT,
        Operation::new(OpKind::Store { width: MemWidth::Word }, 0x1000)
            .src(Reg(1))
            .src(Reg(2))
            .with_imm(4),
    );
    v0.add_op(
        ROOT,
        Operation::new(OpKind::Load { width: MemWidth::Word, algebraic: false }, 0x1004)
            .dst(Reg(3))
            .src(Reg(2))
            .with_imm(4),
    );
    v0.seal(ROOT, Exit::Branch { target: 0x2000 });
    let cg = compile(&jit, &g, 0x1000);

    let mut h = Harness::new();
    h.vals[1] = 0x1122_3344;
    h.vals[2] = 0x100;
    h.run(&jit, &cg, u64::MAX);

    assert_eq!(h.vals[3], 0x1122_3344);
    assert_eq!(&h.mem[0x104..0x108], &[0x11, 0x22, 0x33, 0x44]); // big-endian guest
    assert_eq!(h.ctx.loads, 1);
    assert_eq!(h.ctx.stores, 1);
    assert_eq!(h.ctx.exit_kind, EXIT_BRANCH);
}

#[test]
fn store_to_translated_page_bails_before_side_effects() {
    let jit = Jit::new(1 << 20).expect("host supports the native tier");
    let mut g = Group::new(0x1000);
    let v0 = &mut g.vliws[0];
    v0.add_op(
        ROOT,
        Operation::new(OpKind::Store { width: MemWidth::Word }, 0x1000).src(Reg(1)).src(Reg(2)),
    );
    v0.seal(ROOT, Exit::Branch { target: 0x2000 });
    let cg = compile(&jit, &g, 0x1000);

    let mut h = Harness::new();
    h.vals[1] = 0xdead_beef;
    h.vals[2] = 0x2000;
    h.translated[0x2000 >> 12] = 1; // guest code lives on that page
    h.run(&jit, &cg, u64::MAX);

    assert_eq!(h.ctx.exit_kind, EXIT_BAIL);
    let bail = &cg.bails[h.ctx.exit_b as usize];
    assert_eq!(bail.op, 0); // first parcel in the arena
    assert_eq!(h.ctx.stores, 0);
    assert_eq!(&h.mem[0x2000..0x2004], &[0, 0, 0, 0]); // nothing written
}

#[test]
fn out_of_bounds_access_bails() {
    let jit = Jit::new(1 << 20).expect("host supports the native tier");
    let mut g = Group::new(0x1000);
    let v0 = &mut g.vliws[0];
    v0.add_op(
        ROOT,
        Operation::new(OpKind::Load { width: MemWidth::Word, algebraic: false }, 0x1000)
            .dst(Reg(3))
            .src(Reg(2)),
    );
    v0.seal(ROOT, Exit::Branch { target: 0x2000 });
    let cg = compile(&jit, &g, 0x1000);

    let mut h = Harness::new();
    h.vals[2] = MEM_LEN as u32 - 2; // word load straddles the end
    h.run(&jit, &cg, u64::MAX);
    assert_eq!(h.ctx.exit_kind, EXIT_BAIL);
    assert_eq!(h.ctx.loads, 0);
}

fn leave_group(entry: u32, dst_reg: u8, li: i32, target: u32) -> Group {
    let mut g = Group::new(entry);
    let v0 = &mut g.vliws[0];
    v0.add_op(ROOT, Operation::new(OpKind::Li, entry).dst(Reg(dst_reg)).with_imm(li));
    v0.seal(ROOT, Exit::Branch { target });
    g
}

#[test]
fn patched_chain_edge_runs_both_groups_in_one_entry() {
    let jit = Jit::new(1 << 20).expect("host supports the native tier");
    // A at 0x1000 leaves to 0x1100 (same page → onpage); B leaves to
    // 0x3000 and stays unlinked, so the run returns from B.
    let a = compile(&jit, &leave_group(0x1000, 1, 11, 0x1100), 0x1000);
    let b = compile(&jit, &leave_group(0x1100, 2, 22, 0x3000), 0x1100);
    assert_eq!(jit.link(&a, 0, &b), 1);
    assert_eq!(jit.active_patches(), 1);

    let mut h = Harness::new();
    h.run(&jit, &a, 1 << 20);
    assert_eq!((h.vals[1], h.vals[2]), (11, 22));
    assert_eq!(h.ctx.exit_kind, EXIT_BRANCH);
    assert_eq!(h.ctx.exit_a, 0x3000);
    assert_eq!(h.ctx.cur_group, b.group_id); // attribution follows the chain
    assert_eq!(h.ctx.vliws, 2);
    assert_eq!(h.ctx.chained_dispatches, 1);
    assert_eq!(h.ctx.onpage_dispatches, 1);
    assert_eq!(h.ctx.crosspage_direct, 0);

    // Severing restores the dispatcher boundary.
    assert_eq!(jit.unlink_all(), 1);
    let mut h2 = Harness::new();
    h2.run(&jit, &a, 1 << 20);
    assert_eq!(h2.ctx.exit_a, 0x1100);
    assert_eq!(h2.ctx.chained_dispatches, 0);
    assert_eq!(h2.vals[2], 0); // B never ran
}

#[test]
fn cross_page_chain_counts_as_crosspage_direct() {
    let jit = Jit::new(1 << 20).expect("host supports the native tier");
    let a = compile(&jit, &leave_group(0x1000, 1, 1, 0x2000), 0x1000);
    let b = compile(&jit, &leave_group(0x2000, 2, 2, 0x3000), 0x2000);
    jit.link(&a, 0, &b);
    let mut h = Harness::new();
    h.run(&jit, &a, 1 << 20);
    assert_eq!(h.ctx.chained_dispatches, 1);
    assert_eq!(h.ctx.onpage_dispatches, 0);
    assert_eq!(h.ctx.crosspage_direct, 1);
    jit.unlink_all();
}

#[test]
fn budget_stops_self_loop() {
    let jit = Jit::new(1 << 20).expect("host supports the native tier");
    let a = compile(&jit, &leave_group(0x1000, 1, 1, 0x1000), 0x1000);
    jit.link(&a, 0, &a);
    let mut h = Harness::new();
    h.run(&jit, &a, 10);
    // Each entry executes one VLIW; the stub refuses the 11th entry.
    assert_eq!(h.ctx.vliws, 10);
    assert_eq!(h.ctx.chained_dispatches, 9);
    assert_eq!(h.ctx.exit_kind, EXIT_BRANCH);
    assert_eq!(h.ctx.exit_a, 0x1000);
    jit.unlink_all();
}

#[test]
fn dropping_a_group_severs_inbound_edges_via_alive_byte() {
    let jit = Jit::new(1 << 20).expect("host supports the native tier");
    let a = compile(&jit, &leave_group(0x1000, 1, 1, 0x1100), 0x1000);
    let b = compile(&jit, &leave_group(0x1100, 2, 2, 0x3000), 0x1100);
    jit.link(&a, 0, &b);
    drop(b); // cast-out / invalidation: alive byte flips to 0
    let mut h = Harness::new();
    h.run(&jit, &a, 1 << 20);
    // The patched edge is still installed but the stub refuses it.
    assert_eq!(h.ctx.exit_kind, EXIT_BRANCH);
    assert_eq!(h.ctx.exit_a, 0x1100);
    assert_eq!(h.ctx.chained_dispatches, 0);
    assert_eq!(h.vals[2], 0);
    jit.unlink_all();
}

/// With the general templates ablated off, a trap-check parcel still
/// refuses the whole group (the pre-scan that used to be the default).
#[test]
fn general_parcels_are_refused_under_ablation() {
    let jit = Jit::new(1 << 20).expect("host supports the native tier");
    let mut g = Group::new(0x1000);
    let v0 = &mut g.vliws[0];
    v0.add_op(ROOT, Operation::new(OpKind::TrapIf { to: 0 }, 0x1000).src(Reg(1)));
    v0.seal(ROOT, Exit::Branch { target: 0x2000 });
    let p = PackedGroup::lower(&g);
    let opts = CompileOpts { general_templates: false, ..CompileOpts::default() };
    assert!(jit.compile(&p, 0x1000, PAGE, MEM_LEN as u32, 12, opts).is_err());
}
