//! Minimal recursive-descent JSON parser for schema tests.
//!
//! The environment is offline, so artifact validation cannot lean on a
//! JSON crate; this parser is strict enough to reject malformed output
//! (trailing commas, bare NaN, unquoted keys) and small enough to
//! audit at a glance. Used by `tests/report_schema.rs` and
//! `tests/health_schema.rs`.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as finite `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, keys sorted.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field lookup; `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The object's map; `None` on non-objects.
    pub fn obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The array's slice; `None` on non-arrays.
    pub fn arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The numeric value; `None` on non-numbers.
    pub fn num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value; `None` on non-strings.
    pub fn str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses `text` as a single JSON document.
///
/// # Errors
///
/// Returns a byte-positioned description of the first syntax error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser { s: text.as_bytes(), i: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(format!("trailing garbage at byte {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.s.get(self.i).copied().ok_or_else(|| "unexpected end of input".to_owned())
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek()? == c {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(format!("unexpected byte '{}' at {}", c as char, self.i)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        self.skip_ws();
        if self.s[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.i;
        while self.i < self.s.len()
            && matches!(self.s[self.i], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.s[start..self.i])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let c = *self.s.get(self.i).ok_or_else(|| "unterminated string".to_owned())?;
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self.s.get(self.i).ok_or_else(|| "unterminated escape".to_owned())?;
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .s
                                .get(self.i..self.i + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| "bad \\u escape".to_owned())?;
                            self.i += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.i)),
                    }
                }
                c if c < 0x20 => return Err("raw control byte in string".to_owned()),
                c => out.push(c as char),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut v = Vec::new();
        if self.peek()? == b']' {
            self.i += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            v.push(self.value()?);
            match self.peek()? {
                b',' => self.i += 1,
                b']' => {
                    self.i += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut m = BTreeMap::new();
        if self.peek()? == b'}' {
            self.i += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            m.insert(key, self.value()?);
            match self.peek()? {
                b',' => self.i += 1,
                b'}' => {
                    self.i += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }
}
