/root/repo/target/release/deps/daisy_baseline-37f7be8acb76c53f.d: crates/baseline/src/lib.rs crates/baseline/src/ppc604e.rs crates/baseline/src/profile.rs crates/baseline/src/trad.rs

/root/repo/target/release/deps/daisy_baseline-37f7be8acb76c53f: crates/baseline/src/lib.rs crates/baseline/src/ppc604e.rs crates/baseline/src/profile.rs crates/baseline/src/trad.rs

crates/baseline/src/lib.rs:
crates/baseline/src/ppc604e.rs:
crates/baseline/src/profile.rs:
crates/baseline/src/trad.rs:
