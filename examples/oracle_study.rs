//! Approaching oracle parallelism (paper Chapter 6).
//!
//! Schedules each workload's dynamic trace at the earliest cycle data
//! dependences allow — unlimited resources, then capped at the paper's
//! machines — and compares against what DAISY's real-time translator
//! achieves.
//!
//! ```sh
//! cargo run --release --example oracle_study
//! ```

use daisy::oracle::run_oracle_to_stop;
use daisy::prelude::*;
use daisy_ppc::mem::Memory;
use daisy_ppc::PpcIsa;
use daisy_vliw::machine::MachineConfig;

fn main() {
    println!(
        "{:<10} {:>9} {:>12} {:>11} {:>10}",
        "Program", "DAISY", "oracle(inf)", "oracle(24)", "oracle(8)"
    );
    for w in daisy_workloads::all() {
        let prog = w.program();

        let mut sys = DaisySystem::<PpcIsa>::builder().mem_size(w.mem_size).build();
        sys.load(&prog).unwrap();
        sys.run(50 * w.max_instrs).unwrap();

        let oracle = |machine: Option<MachineConfig>| {
            let mut mem = Memory::new(w.mem_size);
            prog.load_into(&mut mem).unwrap();
            let (r, _) = run_oracle_to_stop::<PpcIsa>(&mut mem, prog.entry, machine, w.max_instrs);
            (r.ilp(), r.instrs)
        };
        let (inf, instrs) = oracle(None);
        let (big, _) = oracle(Some(MachineConfig::big()));
        let (eight, _) = oracle(Some(MachineConfig::eight_issue()));
        println!(
            "{:<10} {:>9.2} {:>12.2} {:>11.2} {:>10.2}",
            w.name,
            sys.stats.pathlength_reduction(instrs),
            inf,
            big,
            eight
        );
    }
    println!("\n(the gap between the DAISY column and the capped-oracle columns is");
    println!(" the headroom Chapter 6's interpretive-compilation ideas target)");
}
