/root/repo/target/debug/deps/repro-198485a78674d627.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-198485a78674d627: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
