/root/repo/target/debug/deps/repro_shapes-dcdc35ec8072c32c.d: tests/repro_shapes.rs

/root/repo/target/debug/deps/repro_shapes-dcdc35ec8072c32c: tests/repro_shapes.rs

tests/repro_shapes.rs:
