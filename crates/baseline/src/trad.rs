//! The "traditional VLIW compiler" baseline of Table 5.2.
//!
//! The paper compares DAISY's one-pass dynamic scheduler against IBM's
//! offline VLIW compiler "performing a great number of sophisticated
//! optimizations", finding DAISY within ~25% (and ahead on `c_sieve`).
//! That compiler is proprietary; this baseline grants the *same
//! scheduling substrate* the structural advantages the paper attributes
//! to offline compilation:
//!
//! * **whole-program scope** — no page boundaries, so groups span the
//!   entire binary and loops unroll freely across pages;
//! * **profile-directed feedback** — path probabilities come from a
//!   prior profiling run instead of static heuristics;
//! * **large windows** — far bigger per-path instruction windows, join
//!   revisit budgets, and group sizes than a real-time translator could
//!   afford.
//!
//! Because compile time is unconstrained here, the measured translation
//! cost is also reported, reproducing the paper's point that the
//! traditional approach extracts more ILP at much higher overhead.

use crate::profile;
use daisy::sched::TranslatorConfig;
use daisy::stats::RunStats;
use daisy::system::DaisySystem;
use daisy_cachesim::Hierarchy;
use daisy_ppc::asm::Program;
use daisy_ppc::interp::{Cpu, StopReason};
use daisy_ppc::mem::Memory;
use daisy_ppc::PpcIsa;
use daisy_vliw::machine::MachineConfig;

/// Result of a traditional-compiler run.
#[derive(Debug, Clone)]
pub struct TradResult {
    /// Execution statistics on the same engine DAISY uses.
    pub stats: RunStats,
    /// Base instructions executed (reference interpreter count).
    pub base_instrs: u64,
    /// Base instructions *scheduled* during compilation (compile cost).
    pub instrs_compiled: u64,
    /// How the run stopped.
    pub stop: StopReason,
}

impl TradResult {
    /// Infinite-cache ILP.
    pub fn ilp(&self) -> f64 {
        self.stats.pathlength_reduction(self.base_instrs)
    }
}

/// The offline compiler's configuration: whole-program scope, profile
/// feedback, and generous windows on the given machine.
pub fn traditional_config(
    machine: MachineConfig,
    profile: std::collections::HashMap<u32, f64>,
) -> TranslatorConfig {
    TranslatorConfig {
        machine,
        window_size: 256,
        max_join_visits: 8,
        max_vliws_per_group: 768,
        max_paths: 24,
        whole_program: true,
        profile: Some(profile),
        ..TranslatorConfig::default()
    }
}

/// Profiles, "compiles", and runs a program with the traditional
/// configuration on an infinite cache.
pub fn run_traditional(
    prog: &Program,
    mem_size: u32,
    machine: MachineConfig,
    max_instrs: u64,
) -> TradResult {
    // Profiling run (also yields the exact base instruction count).
    let mut pmem = Memory::new(mem_size);
    prog.load_into(&mut pmem).expect("program fits");
    let prof = profile::collect(&mut pmem, prog.entry, max_instrs);

    let mut rmem = Memory::new(mem_size);
    prog.load_into(&mut rmem).expect("program fits");
    let mut rcpu = Cpu::new(prog.entry);
    rcpu.run(&mut rmem, max_instrs).expect("reference run");
    let base_instrs = rcpu.ninstrs;

    let mut sys = DaisySystem::<PpcIsa>::with_config(
        mem_size,
        traditional_config(machine, prof),
        Hierarchy::infinite(),
    );
    sys.load(prog).expect("program fits");
    let stop = sys.run(10 * max_instrs).expect("traditional run");
    TradResult {
        stats: sys.stats,
        base_instrs,
        instrs_compiled: sys.vmm.cost.instrs_scheduled,
        stop,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_ppc::asm::Asm;
    use daisy_ppc::reg::{CrField, Gpr};

    #[test]
    fn traditional_beats_one_page_scheduling_on_a_cross_page_loop() {
        // A loop whose body straddles a page boundary: DAISY pays a
        // cross-page dispatch every iteration, the whole-program
        // compiler does not.
        let build = || {
            let mut a = Asm::new(0xFC0); // loop body crosses 0x1000 page
            a.li(Gpr(4), 2000);
            a.mtctr(Gpr(4));
            a.label("loop");
            for i in 0..24u8 {
                a.addi(Gpr(5 + i % 8), Gpr(5 + i % 8), 1);
            }
            a.bdnz("loop");
            a.sc();
            a.finish().unwrap()
        };
        let prog = build();
        let machine = MachineConfig::big();
        let trad = run_traditional(&prog, 0x20000, machine.clone(), 1_000_000);
        assert_eq!(trad.stop, StopReason::Syscall);

        let mut sys = DaisySystem::<PpcIsa>::new(0x20000);
        sys.load(&prog).unwrap();
        sys.run(10_000_000).unwrap();
        let daisy_ilp = sys.stats.pathlength_reduction(trad.base_instrs);

        assert!(
            trad.ilp() >= daisy_ilp * 0.99,
            "traditional {:.2} should be at least DAISY {:.2}",
            trad.ilp(),
            daisy_ilp
        );
        assert!(trad.ilp() > 2.0, "traditional ILP too low: {:.2}", trad.ilp());
    }

    #[test]
    fn profile_feedback_prefers_the_hot_arm() {
        // A branch taken 95% of the time, against the static forward-
        // not-taken heuristic: the profiled compiler should still
        // schedule well (smoke test: it runs correctly).
        let mut a = Asm::new(0x1000);
        a.li(Gpr(3), 0);
        a.li(Gpr(4), 1000);
        a.mtctr(Gpr(4));
        a.label("loop");
        a.mfctr(Gpr(5));
        a.andi_(Gpr(6), Gpr(5), 31);
        a.cmpwi(CrField(1), Gpr(6), 0);
        a.beq(CrField(1), "rare");
        a.addi(Gpr(3), Gpr(3), 1);
        a.label("back");
        a.bdnz("loop");
        a.sc();
        a.label("rare");
        a.addi(Gpr(3), Gpr(3), 100);
        a.b("back");
        let prog = a.finish().unwrap();
        let r = run_traditional(&prog, 0x20000, MachineConfig::big(), 1_000_000);
        assert_eq!(r.stop, StopReason::Syscall);
        assert!(r.instrs_compiled > 0);
    }
}
