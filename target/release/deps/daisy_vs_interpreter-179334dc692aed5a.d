/root/repo/target/release/deps/daisy_vs_interpreter-179334dc692aed5a.d: tests/daisy_vs_interpreter.rs

/root/repo/target/release/deps/daisy_vs_interpreter-179334dc692aed5a: tests/daisy_vs_interpreter.rs

tests/daisy_vs_interpreter.rs:
