/root/repo/target/debug/deps/engine-d3ea28288dc54f56.d: crates/bench/benches/engine.rs

/root/repo/target/debug/deps/engine-d3ea28288dc54f56: crates/bench/benches/engine.rs

crates/bench/benches/engine.rs:
