//! Pins for `RunStats::approx_base_instrs` after the double-count
//! audit: re-execution paths (degradation-ladder retries, the
//! idempotent re-interpretation after a code-modification exit) must
//! not count a base instruction twice, and fully interpreted runs must
//! count *exactly* — one per instruction, same as the reference
//! interpreter's `ninstrs`.

use daisy::prelude::*;
use daisy::DegradeCause;
use daisy_ppc::encode::encode;
use daisy_ppc::insn::Insn;
use daisy_ppc::interp::{Cpu, StopReason};
use daisy_ppc::mem::Memory;
use daisy_ppc::PpcIsa;
use daisy_ppc::{Asm, Gpr};

const PAGE: u32 = 256;
const TABLE: u32 = 0x8000;

/// Single-page loop: `iters` passes of four counted instructions plus
/// a five-instruction prologue and the final `sc`. No `nop`s and no
/// unconditional branches, so the approximate count has no structural
/// blind spots.
fn loop_program(iters: i16) -> daisy_ppc::asm::Program {
    let mut a = Asm::new(0x1000);
    a.li(Gpr(3), 0);
    a.li(Gpr(31), iters);
    a.mtctr(Gpr(31));
    a.label("loop");
    a.addi(Gpr(3), Gpr(3), 2);
    a.addi(Gpr(3), Gpr(3), -1);
    a.bdnz("loop");
    a.sc();
    a.finish().expect("loop program assembles")
}

fn reference_ninstrs(prog: &daisy_ppc::asm::Program, mem_size: u32) -> u64 {
    let mut mem = Memory::new(mem_size);
    prog.load_into(&mut mem).unwrap();
    let mut cpu = Cpu::new(prog.entry);
    let stop = cpu.run(&mut mem, 10_000_000).unwrap();
    assert_eq!(stop, StopReason::Syscall);
    cpu.ninstrs
}

/// On the Interpret floor every instruction goes through the
/// interpreter, which counts each one — the approximate count must
/// equal the reference interpreter's exact `ninstrs`.
#[test]
fn interpret_floor_count_is_exact() {
    let prog = loop_program(50);
    let exact = reference_ninstrs(&prog, 0x20000);

    let mut sys = DaisySystem::<PpcIsa>::builder().mem_size(0x20000).build();
    sys.load(&prog).unwrap();
    for _ in 0..3 {
        sys.degrade(prog.entry, DegradeCause::Forced).expect("ladder has a rung left");
    }
    assert_eq!(sys.rung(prog.entry), daisy::Rung::Interpret);
    let stop = sys.run(10_000_000).unwrap();
    assert_eq!(stop, StopReason::Syscall);

    assert_eq!(
        sys.stats.approx_base_instrs(),
        exact,
        "interpret-floor run must count every instruction exactly once"
    );
    assert_eq!(sys.stats.interp_instrs, exact, "everything ran through the interpreter");
}

/// Three-iteration self-modifying loop (the `trace_events.rs` shape):
/// each pass stores a fresh `addi r5, 0, imm` over the `patch:` site on
/// the next translation page and accumulates r5 into r7.
fn selfmod_program(imms: &[i16]) -> daisy_ppc::asm::Program {
    let mut a = Asm::new(0x1F00);
    a.li(Gpr(7), 0);
    a.li32(Gpr(9), TABLE);
    a.li(Gpr(8), 0);
    a.li(Gpr(31), imms.len() as i16);
    a.mtctr(Gpr(31));
    a.label("loop");
    a.lwzx(Gpr(4), Gpr(9), Gpr(8));
    a.la(Gpr(3), "patch");
    a.stw(Gpr(4), 0, Gpr(3));
    while !a.here().is_multiple_of(PAGE) {
        a.nop();
    }
    a.label("patch");
    a.li(Gpr(5), 0);
    a.add(Gpr(7), Gpr(7), Gpr(5));
    a.addi(Gpr(8), Gpr(8), 4);
    a.bdnz("loop");
    a.sc();
    let words: Vec<u32> =
        imms.iter().map(|&si| encode(&Insn::Addi { rt: Gpr(5), ra: Gpr(0), si })).collect();
    a.data_words(TABLE, &words);
    a.finish().expect("selfmod program assembles")
}

/// The modifying store must count once per execution, not once in the
/// group plus once in the idempotent re-interpretation that follows
/// the code-modification exit. Every instruction in this program
/// commits architected state (the canonical `nop` is `ori r0, r0, 0`,
/// which writes r0; `bdnz` is counted at branch resolution; there is
/// no unconditional `b`), so the approximate count must equal the
/// reference interpreter's exact count — any surplus is a re-execution
/// double count.
#[test]
fn selfmod_store_counts_once_per_execution() {
    let imms: &[i16] = &[11, 31, 50];
    let prog = selfmod_program(imms);
    let exact = reference_ninstrs(&prog, 0x2_0000);

    let mut sys = DaisySystem::<PpcIsa>::builder()
        .mem_size(0x2_0000)
        .translator(TranslatorConfig { page_size: PAGE, ..TranslatorConfig::default() })
        .build();
    sys.load(&prog).unwrap();
    let stop = sys.run(10_000_000).unwrap();
    assert_eq!(stop, StopReason::Syscall);
    assert_eq!(sys.cpu.gpr[7], 11 + 31 + 50, "patched immediates must accumulate");
    assert!(sys.stats.code_modifications >= 1, "the store must trip code modification");

    assert_eq!(
        sys.stats.approx_base_instrs(),
        exact,
        "every instruction here commits, so the counts must agree exactly — \
         a surplus means the modifying store was counted twice"
    );
}
