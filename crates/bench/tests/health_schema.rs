//! Schema tests for the `health` binary's artifacts: the
//! `BENCH_health.json` document must be valid JSON carrying every
//! registered metric for every workload, and the Prometheus text
//! exposition must follow the format's conventions (HELP/TYPE pairs,
//! `_total` counters, cumulative histogram buckets closed by `+Inf`).
//!
//! CI's `scripts/check_health_shape.sh` greps committed artifacts for
//! the same shapes; this test validates the generators structurally,
//! using the offline parser in [`daisy_bench::json`].

use daisy::metrics::{
    prometheus_text, Counter, Gauge, DEGRADATIONS_METRIC, IRQ_HIST_METRIC, ISSUE_HIST_METRIC,
    RUNG_ENTRIES_METRIC,
};
use daisy::prelude::*;
use daisy_bench::health::{health_json, run_health, Mode};
use daisy_bench::json::{parse, Json};

fn two_quick_records() -> Vec<daisy_bench::health::HealthRecord> {
    ["cmp", "hist"]
        .iter()
        .map(|n| {
            let w = daisy_workloads::by_name(n).expect("known workload");
            run_health(&w, Mode::Packed, 1024, false)
        })
        .collect()
}

/// Acceptance: `BENCH_health.json` parses as JSON, carries the schema
/// tag, and each workload's metrics object holds exactly the
/// registered counter/gauge names, all nine degradation causes, all
/// five ladder rungs, and both histograms. Runs two real workloads —
/// the same pair CI smokes.
#[test]
fn bench_health_json_schema_holds() {
    let records = two_quick_records();
    let text = health_json(&records, Mode::Packed, 1024);
    let doc = parse(&text).expect("health output must parse as JSON");

    assert_eq!(doc.get("schema").and_then(Json::str), Some("daisy-health-v1"));
    assert_eq!(doc.get("mode").and_then(Json::str), Some("packed"));
    assert_eq!(doc.get("interval").and_then(Json::num), Some(1024.0));

    let workloads = doc.get("workloads").and_then(Json::arr).expect("workloads array");
    assert_eq!(workloads.len(), 2);
    for (entry, want_name) in workloads.iter().zip(["cmp", "hist"]) {
        assert_eq!(entry.get("name").and_then(Json::str), Some(want_name));
        let boundaries = entry.get("boundaries").and_then(Json::num).expect("boundaries");
        assert!(boundaries > 0.0, "{want_name}: must step at least one boundary");
        let snapshots = entry.get("snapshots").and_then(Json::num).expect("snapshots");
        assert!(snapshots >= 1.0, "{want_name}: the final snapshot always lands");

        let metrics = entry.get("metrics").expect("metrics object");
        let counters = metrics.get("counters").and_then(Json::obj).expect("counters object");
        assert_eq!(counters.len(), Counter::COUNT, "{want_name}: counter set drifted");
        for c in Counter::ALL {
            assert!(counters.contains_key(c.name()), "{want_name}: missing counter {}", c.name());
        }
        let gauges = metrics.get("gauges").and_then(Json::obj).expect("gauges object");
        assert_eq!(gauges.len(), Gauge::COUNT, "{want_name}: gauge set drifted");
        let causes =
            metrics.get("degradations_by_cause").and_then(Json::obj).expect("causes object");
        assert_eq!(causes.len(), DegradeCause::ALL.len());
        let rungs = metrics.get("ladder_rung_entries").and_then(Json::obj).expect("rungs object");
        assert_eq!(rungs.len(), Rung::ALL.len());
        let hists = metrics.get("histograms").and_then(Json::obj).expect("histograms object");
        assert!(hists.contains_key(ISSUE_HIST_METRIC) && hists.contains_key(IRQ_HIST_METRIC));
        for h in hists.values() {
            let buckets = h.get("buckets").and_then(Json::arr).expect("bucket array");
            let bounds = h.get("bounds").and_then(Json::arr).expect("bounds array");
            assert_eq!(buckets.len(), bounds.len() + 1, "one overflow bucket past the bounds");
            let total: f64 = buckets.iter().filter_map(Json::num).sum();
            assert_eq!(Some(total), h.get("count").and_then(Json::num), "count = Σ buckets");
        }

        // A completed run retired real work and the suite stayed on
        // the top rung — health output where everything is zero would
        // mean the publishers went silent.
        let retired = counters.get(Counter::RetiredInstrs.name()).and_then(Json::num);
        assert!(retired.unwrap_or(0.0) > 0.0, "{want_name}: retired instructions");
        let degraded = gauges.get(Gauge::DegradedEntries.name()).and_then(Json::num);
        assert_eq!(degraded, Some(0.0), "{want_name}: no degradations expected");
    }
}

/// Acceptance: the Prometheus exposition groups all workloads' series
/// under one HELP/TYPE header per family, names counters `*_total`,
/// renders labelled families for degradation causes and ladder rungs,
/// and emits cumulative histograms closed by an `+Inf` bucket with
/// `_sum`/`_count`.
#[test]
fn prometheus_exposition_follows_conventions() {
    let records = two_quick_records();
    let series: Vec<(&str, &MetricsSnapshot)> = records.iter().map(|r| (r.name, &r.last)).collect();
    let text = prometheus_text(&series);

    let mut families = Vec::new();
    let mut prev_help: Option<&str> = None;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            prev_help = rest.split_whitespace().next();
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let (fam, ty) = (it.next().expect("family"), it.next().expect("type"));
            assert_eq!(prev_help, Some(fam), "TYPE must directly follow its HELP");
            assert!(matches!(ty, "counter" | "gauge" | "histogram"), "{fam}: type {ty}");
            if ty == "counter" {
                assert!(fam.ends_with("_total"), "{fam}: counters are *_total");
            }
            families.push((fam.to_owned(), ty.to_owned()));
        }
    }
    // 40 counters + 5 gauges + the two labelled families + two
    // histograms, each exactly once regardless of workload count.
    let expected = Counter::COUNT + Gauge::COUNT + 2 + 2;
    assert_eq!(families.len(), expected, "one header block per family");
    let names: Vec<&str> = families.iter().map(|(f, _)| f.as_str()).collect();
    assert!(names.contains(&DEGRADATIONS_METRIC) && names.contains(&RUNG_ENTRIES_METRIC));

    // Every sample line belongs to a declared family and carries the
    // workload label; histograms are cumulative and closed.
    for (fam, ty) in &families {
        match ty.as_str() {
            "histogram" => {
                for r in &records {
                    let label = format!("workload=\"{}\"", r.name);
                    let bucket_lines: Vec<&str> = text
                        .lines()
                        .filter(|l| l.starts_with(&format!("{fam}_bucket{{")) && l.contains(&label))
                        .collect();
                    assert!(!bucket_lines.is_empty(), "{fam}: buckets for {}", r.name);
                    let mut last = -1.0;
                    for l in &bucket_lines {
                        let v: f64 =
                            l.rsplit(' ').next().expect("value").parse().expect("numeric sample");
                        assert!(v >= last, "{fam}: buckets must be cumulative");
                        last = v;
                    }
                    let inf = bucket_lines.last().expect("at least one bucket");
                    assert!(inf.contains("le=\"+Inf\""), "{fam}: last bucket is +Inf");
                    for suffix in ["_sum", "_count"] {
                        assert!(
                            text.lines().any(|l| l.starts_with(&format!("{fam}{suffix}{{"))
                                && l.contains(&label)),
                            "{fam}: missing {suffix} for {}",
                            r.name
                        );
                    }
                }
            }
            _ => {
                let samples = text
                    .lines()
                    .filter(|l| {
                        l.starts_with(&format!("{fam}{{")) || l.starts_with(&format!("{fam} "))
                    })
                    .count();
                assert!(samples >= records.len(), "{fam}: one sample per workload at least");
            }
        }
    }
}
