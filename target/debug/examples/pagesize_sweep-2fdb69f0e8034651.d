/root/repo/target/debug/examples/pagesize_sweep-2fdb69f0e8034651.d: examples/pagesize_sweep.rs Cargo.toml

/root/repo/target/debug/examples/libpagesize_sweep-2fdb69f0e8034651.rmeta: examples/pagesize_sweep.rs Cargo.toml

examples/pagesize_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
