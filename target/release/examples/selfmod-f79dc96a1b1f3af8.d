/root/repo/target/release/examples/selfmod-f79dc96a1b1f3af8.d: examples/selfmod.rs

/root/repo/target/release/examples/selfmod-f79dc96a1b1f3af8: examples/selfmod.rs

examples/selfmod.rs:
