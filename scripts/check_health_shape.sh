#!/usr/bin/env bash
# Shape assertion for the `health` binary's artifacts: the JSON
# document must carry the schema tag and a full metrics object per
# workload, and the optional Prometheus text must be well-formed
# exposition (every series preceded by matching # HELP / # TYPE lines,
# counters ending in _total). Pure grep/sed — no JSON tooling assumed
# on the CI host; the strict structural validation lives in
# crates/bench/tests/health_schema.rs.
set -euo pipefail

health="${1:?usage: check_health_shape.sh <BENCH_health.json> [health.prom] [expected-workloads]}"
prom="${2:-}"
expected="${3:-}"

[ -s "$health" ] || { echo "error: $health is missing or empty" >&2; exit 1; }

grep -q '"schema": "daisy-health-v1"' "$health" || {
  echo "error: schema tag daisy-health-v1 missing in $health" >&2
  exit 1
}
grep -Eq '"mode": "(packed|tree|native)"' "$health" || {
  echo "error: mode field missing or invalid in $health" >&2
  exit 1
}

entries=$(grep -c '"name":' "$health" || true)
for key in boundaries snapshots metrics counters gauges degradations_by_cause \
           ladder_rung_entries histograms; do
  n=$(grep -c "\"$key\":" "$health" || true)
  if [ "$n" -ne "$entries" ]; then
    echo "error: key '$key' appears $n times for $entries workloads in $health" >&2
    exit 1
  fi
done

# Spot-check one counter from each publishing layer reaches the
# document: the VMM, the dispatch path, the engine, the native tier,
# and the flight recorder.
for metric in daisy_vmm_pages_translated_total daisy_dispatch_chained_total \
              daisy_engine_retired_instrs_total daisy_native_compiles_total \
              daisy_flight_recorder_dropped_total daisy_irq_latency_instrs; do
  n=$(grep -c "\"$metric\"" "$health" || true)
  if [ "$n" -ne "$entries" ]; then
    echo "error: metric '$metric' appears $n times for $entries workloads in $health" >&2
    exit 1
  fi
done

if [ -n "$expected" ] && [ "$entries" -ne "$expected" ]; then
  echo "error: expected $expected workloads, found $entries in $health" >&2
  exit 1
fi

if [ -n "$prom" ]; then
  [ -s "$prom" ] || { echo "error: $prom is missing or empty" >&2; exit 1; }
  # Every exposed metric family needs exactly one HELP and one TYPE
  # line, and they must pair up.
  helps=$(grep -c '^# HELP ' "$prom" || true)
  types=$(grep -c '^# TYPE ' "$prom" || true)
  if [ "$helps" -eq 0 ] || [ "$helps" -ne "$types" ]; then
    echo "error: $prom has $helps HELP lines but $types TYPE lines" >&2
    exit 1
  fi
  # Counters must follow the _total naming convention.
  bad=$(awk '$3 == "counter" && $2 !~ /_total$/ { print $2 }' <(grep '^# TYPE ' "$prom"))
  if [ -n "$bad" ]; then
    echo "error: counter families without _total suffix in $prom:" >&2
    echo "$bad" >&2
    exit 1
  fi
  # Histograms must expose cumulative buckets with an +Inf bound plus
  # _sum and _count series.
  for family in $(awk '$3 == "histogram" { print $2 }' <(grep '^# TYPE ' "$prom")); do
    grep -q "^${family}_bucket{.*le=\"+Inf\"" "$prom" || {
      echo "error: histogram $family lacks an le=\"+Inf\" bucket in $prom" >&2
      exit 1
    }
    grep -q "^${family}_sum" "$prom" || {
      echo "error: histogram $family lacks a _sum series in $prom" >&2
      exit 1
    }
    grep -q "^${family}_count" "$prom" || {
      echo "error: histogram $family lacks a _count series in $prom" >&2
      exit 1
    }
  done
  # No stray series without a TYPE declaration.
  undeclared=$(grep -v '^#' "$prom" | sed 's/[{ ].*//' \
    | sed 's/_bucket$//;s/_sum$//;s/_count$//' | sort -u \
    | while read -r fam; do
        grep -q "^# TYPE $fam " "$prom" || echo "$fam"
      done)
  if [ -n "$undeclared" ]; then
    echo "error: series without # TYPE declarations in $prom:" >&2
    echo "$undeclared" >&2
    exit 1
  fi
  echo "ok: $prom is well-formed exposition ($helps families)"
fi

echo "ok: $health carries full metrics for $entries workload(s)"
